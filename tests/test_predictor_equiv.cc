// Interior/rim equivalence tests: the optimized predictor kernels
// (branchless interior walk + guarded boundary rim, hoisted dispatch,
// incremental indices) must be *byte-identical* to the retained naive
// formulations in predictor/reference.cc — same quant codes, anchors,
// outliers, and reconstruction bits on every shape, because the
// optimization only restructures control flow, never the arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "datagen/rng.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"
#include "predictor/lorenzo.hh"
#include "predictor/reference.hh"

namespace {

using szi::dev::Dim3;
using szi::predictor::InterpConfig;

// Shapes chosen to exercise every rim case: odd/even extents, dims smaller
// than one 32x8x8 tile, single-element axes (2D/1D degeneration), extents
// that leave 1-wide tile remainders, and multi-tile grids.
const Dim3 kShapes[] = {
    {40, 33, 29},  // odd extents, partial tiles on every axis
    {64, 16, 16},  // exact multiples of the tile
    {33, 9, 9},    // one tile plus a 1-wide remainder on each axis
    {7, 5, 3},     // smaller than one tile in every dimension
    {1, 1, 1},     // degenerate single point
    {257, 3, 1},   // 2D with a tiny y extent
    {100, 1, 1},   // 1D
    {2, 2, 2},     // tiny even cube
    {31, 8, 7},    // just under the tile on x and z
};

template <typename T>
std::vector<T> smooth_field(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  const double fx = rng.uniform(0.5, 2.0), fy = rng.uniform(0.5, 2.0),
               fz = rng.uniform(0.5, 2.0);
  std::vector<T> v(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        v[szi::dev::linearize(dims, x, y, z)] = static_cast<T>(
            std::sin(fx * x * 0.1) * std::cos(fy * y * 0.07) +
            0.5 * std::sin(fz * z * 0.05) + 0.05 * rng.gaussian());
  return v;
}

template <typename T>
void expect_bit_equal(const std::vector<T>& got, const std::vector<T>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(), got.size() * sizeof(T)))
      << what << " differ";
}

template <typename T>
void check_ginterp(const Dim3& dims, double eb, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "dims " << dims.x << "x" << dims.y
                                    << "x" << dims.z << " eb " << eb);
  const auto data = smooth_field<T>(dims, seed);
  const auto prof = szi::predictor::autotune(data, dims, eb);

  const auto opt = szi::predictor::ginterp_compress(data, dims, eb, prof.config);
  const auto ref =
      szi::predictor::reference::ginterp_compress(data, dims, eb, prof.config);

  expect_bit_equal(opt.codes, ref.codes, "quant codes");
  expect_bit_equal(opt.anchors, ref.anchors, "anchors");
  expect_bit_equal(opt.outliers.indices, ref.outliers.indices,
                   "outlier indices");
  expect_bit_equal(opt.outliers.values, ref.outliers.values, "outlier values");

  const auto opt_dec = szi::predictor::ginterp_decompress(
      opt.codes, opt.anchors, opt.outliers, dims, eb, prof.config);
  const auto ref_dec = szi::predictor::reference::ginterp_decompress(
      ref.codes, ref.anchors, ref.outliers, dims, eb, prof.config);
  expect_bit_equal(opt_dec, ref_dec, "reconstruction");
}

TEST(PredictorEquiv, GInterpF32MatchesReferenceAcrossShapes) {
  std::uint64_t seed = 100;
  for (const auto& dims : kShapes) check_ginterp<float>(dims, 1e-3, seed++);
}

TEST(PredictorEquiv, GInterpF64MatchesReferenceAcrossShapes) {
  std::uint64_t seed = 200;
  for (const auto& dims : kShapes) check_ginterp<double>(dims, 1e-4, seed++);
}

TEST(PredictorEquiv, GInterpTightBoundMatchesReference) {
  // Tight bound => many outliers, exercising the stored-code border path.
  check_ginterp<float>({40, 33, 29}, 1e-6, 7);
  check_ginterp<float>({33, 9, 9}, 1e-6, 8);
}

TEST(PredictorEquiv, GInterpNonDefaultConfigMatchesReference) {
  // Force a fixed config (every cubic kind + a non-identity dim order) so the
  // equivalence does not depend on what autotune happens to pick.
  InterpConfig cfg;
  cfg.dim_order = {2, 0, 1};
  cfg.cubic = {szi::predictor::CubicKind::NotAKnot,
               szi::predictor::CubicKind::Natural,
               szi::predictor::CubicKind::NotAKnot};
  cfg.alpha = 1.5;
  for (const auto& dims : kShapes) {
    SCOPED_TRACE(::testing::Message()
                 << "dims " << dims.x << "x" << dims.y << "x" << dims.z);
    const auto data = smooth_field<float>(dims, 300);
    const auto opt = szi::predictor::ginterp_compress(data, dims, 1e-3, cfg);
    const auto ref =
        szi::predictor::reference::ginterp_compress(data, dims, 1e-3, cfg);
    expect_bit_equal(opt.codes, ref.codes, "quant codes");
    expect_bit_equal(opt.outliers.values, ref.outliers.values,
                     "outlier values");
  }
}

TEST(PredictorEquiv, LorenzoMatchesReferenceAcrossShapes) {
  std::uint64_t seed = 400;
  for (const auto& dims : kShapes) {
    SCOPED_TRACE(::testing::Message()
                 << "dims " << dims.x << "x" << dims.y << "x" << dims.z);
    const auto data = smooth_field<float>(dims, seed++);
    const auto opt = szi::predictor::lorenzo_compress(data, dims, 1e-3);
    const auto ref =
        szi::predictor::reference::lorenzo_compress(data, dims, 1e-3);
    expect_bit_equal(opt.codes, ref.codes, "quant codes");
    expect_bit_equal(opt.outliers.indices, ref.outliers.indices,
                     "outlier indices");
    expect_bit_equal(opt.outliers.values, ref.outliers.values,
                     "outlier values");
  }
}

TEST(PredictorEquiv, LorenzoTightBoundMatchesReference) {
  const Dim3 dims{40, 33, 29};
  const auto data = smooth_field<float>(dims, 500);
  const auto opt = szi::predictor::lorenzo_compress(data, dims, 1e-7);
  const auto ref =
      szi::predictor::reference::lorenzo_compress(data, dims, 1e-7);
  expect_bit_equal(opt.codes, ref.codes, "quant codes");
  expect_bit_equal(opt.outliers.values, ref.outliers.values, "outlier values");
}

}  // namespace
