// Per-segment lossless orchestration (§VI-B de-redundancy pass): every
// forced method must round-trip byte-exactly over every dataset in both
// precisions, the sampled chooser must agree with the forced winner on
// corpora engineered to have one, and the legacy single-stream ('BBCP')
// wrapper must keep decoding bit-identically forever.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <random>
#include <vector>

#include "core/bytes.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "lossless/lzss.hh"
#include "lossless/orchestrate.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;
using szi::lossless::Method;
using szi::lossless::MethodPolicy;

constexpr CompressParams kRel{ErrorMode::Rel, 1e-3};

constexpr MethodPolicy kAllPolicies[] = {
    MethodPolicy::Auto, MethodPolicy::ForceLzss, MethodPolicy::ForceZeroRle,
    MethodPolicy::ForceBitshuffle};

const char* policy_name(MethodPolicy p) {
  switch (p) {
    case MethodPolicy::Auto:
      return "auto";
    case MethodPolicy::ForceLzss:
      return "force-lzss";
    case MethodPolicy::ForceZeroRle:
      return "force-zero-rle";
    case MethodPolicy::ForceBitshuffle:
      return "force-bitshuffle";
  }
  return "?";
}

/// Hand-built legacy 'BBCP' framing — the pre-method-byte wrapper no writer
/// emits anymore but every decoder must accept forever.
std::vector<std::byte> wrap_legacy(std::span<const std::byte> inner) {
  szi::core::ByteWriter w;
  w.put(szi::kBitcompWrapMagic);
  w.put_blob(szi::lossless::lzss_compress(inner, szi::lossless::kLzssBlock,
                                          szi::lossless::LzssMode::Lazy));
  return w.take();
}

// Every forced method x every dataset x both precisions: wrap the real
// inner archive, unwrap it byte-exactly, and decode the wrapped archive
// through the pipelined path (which exercises the transformed decode
// units) to the same values as the plain inner decode.
TEST(Orchestrate, ForcedMethodsRoundTripEveryDatasetBothPrecisions) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto& name : szi::datagen::dataset_names()) {
    const auto f =
        szi::datagen::make_dataset(name, szi::datagen::Size::Small).front();
    const std::span<const float> d32(f.data);
    std::vector<double> v64(f.data.begin(), f.data.end());
    const std::span<const double> d64(v64);

    const auto inner32 = szi::cuszi_compress(d32, f.dims, kRel);
    const auto inner64 = szi::cuszi_compress(d64, f.dims, kRel);
    const auto ref32 = szi::cuszi_decompress_f32(inner32);
    const auto ref64 = szi::cuszi_decompress_f64(inner64);

    for (const auto policy : kAllPolicies) {
      SCOPED_TRACE(std::string(name) + " / " + policy_name(policy));
      const auto w32 = szi::bitcomp_wrap_archive(
          inner32, szi::lossless::LzssMode::Lazy, policy);
      ASSERT_EQ(szi::bitcomp_unwrap_archive(w32), inner32);
      ASSERT_EQ(szi::cuszi_decompress_bitcomp_f32(w32, ws), ref32);

      const auto w64 = szi::bitcomp_wrap_archive(
          inner64, szi::lossless::LzssMode::Lazy, policy);
      ASSERT_EQ(szi::bitcomp_unwrap_archive(w64), inner64);
      ASSERT_EQ(szi::cuszi_decompress_bitcomp_f64(w64, ws), ref64);
    }
  }
}

// Non-SZI2 payloads wrap as a single segment; tiny and odd-length buffers
// stress the bitshuffle even-prefix/tail split and the zero-RLE unit
// boundary in every method.
TEST(Orchestrate, ForcedMethodsRoundTripDegenerateSizes) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  std::mt19937 rng(7);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{31}, std::size_t{32},
                              std::size_t{2047}, std::size_t{2048},
                              std::size_t{2049}, std::size_t{70000}}) {
    std::vector<std::byte> buf(n);
    for (auto& b : buf) b = static_cast<std::byte>(rng() & 0x7);
    for (const auto policy : kAllPolicies) {
      SCOPED_TRACE(std::to_string(n) + " bytes / " + policy_name(policy));
      const auto wrapped = szi::bitcomp_wrap_archive(
          buf, szi::lossless::LzssMode::Lazy, policy);
      EXPECT_EQ(szi::bitcomp_unwrap_archive(wrapped), buf);
    }
  }
}

// The chooser must pick the clear winner on corpora engineered to have
// one: all-zero -> zero-RLE, incompressible noise -> plain LZSS via the
// entropy shortcut (no candidate compression spent at all).
TEST(Orchestrate, ChooserAgreesWithForcedWinnerOnAdversarialCorpora) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  constexpr std::size_t kN = 1 << 20;

  const std::vector<std::byte> zeros(kN);
  szi::lossless::ChoiceAudit audit;
  EXPECT_EQ(szi::lossless::choose_method(zeros, szi::lossless::LzssMode::Lazy,
                                         ws, &audit),
            Method::ZeroRle);
  EXPECT_FALSE(audit.entropy_shortcut);
  ws.reset();

  std::vector<std::byte> noise(kN);
  std::mt19937_64 rng(42);
  for (std::size_t i = 0; i < kN; i += 8) {
    const std::uint64_t r = rng();
    std::memcpy(noise.data() + i, &r, 8);
  }
  EXPECT_EQ(szi::lossless::choose_method(noise, szi::lossless::LzssMode::Lazy,
                                         ws, &audit),
            Method::Lzss);
  EXPECT_TRUE(audit.entropy_shortcut);
  EXPECT_GT(audit.entropy_bits, szi::lossless::kEntropyShortcutBits);
  ws.reset();

  // An ambiguous corpus (alternating u16 pattern: LZSS, RLE-after-LZSS and
  // bitshuffle all do well) has no engineered winner — the contract is
  // weaker but still strict: auto never loses to forced-LZSS, and whatever
  // was picked round-trips byte-exactly.
  std::vector<std::byte> alt(kN);
  for (std::size_t i = 0; i < kN; ++i)
    alt[i] = static_cast<std::byte>((i & 1) ? 0xF0 : 0x0D);
  for (const auto& corpus : {zeros, noise, alt}) {
    const auto a = szi::bitcomp_wrap_archive(
        corpus, szi::lossless::LzssMode::Lazy, MethodPolicy::Auto);
    const auto l = szi::bitcomp_wrap_archive(
        corpus, szi::lossless::LzssMode::Lazy, MethodPolicy::ForceLzss);
    EXPECT_LE(a.size(), l.size());
    EXPECT_EQ(szi::bitcomp_unwrap_archive(a), corpus);
  }
}

// The chooser's decision, made on a ~1-2% sample, must match the winner of
// compressing the full segment with each method on decisive corpora (the
// acceptance bar for the sampled predictor-of-ratio).
TEST(Orchestrate, SampledChoiceMatchesFullCompressionWinner) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  constexpr std::size_t kN = 1 << 20;

  // Zero-dominated with sparse structure: the kind of level stream RLE wins.
  std::vector<std::byte> sparse(kN);
  for (std::size_t i = 0; i < kN; i += 513)
    sparse[i] = static_cast<std::byte>(i * 31);

  const auto full_cost = [&](std::span<const std::byte> seg, Method m) {
    const auto t = szi::lossless::method_transform(seg, m, ws);
    const auto c = szi::lossless::lzss_compress(t, szi::lossless::kLzssBlock,
                                                szi::lossless::LzssMode::Lazy);
    ws.reset();
    return c.size();
  };
  Method best = Method::Lzss;
  std::size_t best_cost = full_cost(sparse, Method::Lzss);
  for (const Method m : {Method::ZeroRle, Method::Bitshuffle}) {
    const std::size_t c = full_cost(sparse, m);
    if (c < best_cost) {
      best = m;
      best_cost = c;
    }
  }
  const Method chosen = szi::lossless::choose_method(
      sparse, szi::lossless::LzssMode::Lazy, ws);
  // On this corpus RLE wins by a wide margin — sampling must find it.
  EXPECT_EQ(chosen, best);
  EXPECT_EQ(chosen, Method::ZeroRle);
}

// Legacy 'BBCP' archives (no method byte) must keep decoding bit-identically
// through every path: unwrap, the pipelined bitcomp decode, progressive
// preview, and segment introspection.
TEST(Orchestrate, LegacyBbcpDecodesBitIdentical) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto f =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small).front();
  const std::span<const float> d(f.data);
  const auto inner = szi::cuszi_compress(d, f.dims, kRel);
  const auto legacy = wrap_legacy(inner);

  EXPECT_EQ(szi::bitcomp_unwrap_archive(legacy), inner);
  const auto ref = szi::cuszi_decompress_f32(inner);
  EXPECT_EQ(szi::cuszi_decompress_bitcomp_f32(legacy, ws), ref);

  const auto prog_ref = szi::cuszi_decompress_progressive_f32(inner, 2);
  const auto prog = szi::cuszi_decompress_progressive_f32(legacy, 2);
  EXPECT_EQ(prog.data, prog_ref.data);
  EXPECT_EQ(prog.level, prog_ref.level);
  EXPECT_LT(prog.bytes_read, legacy.size());

  const auto segs_ref = szi::cuszi_archive_segments(inner);
  const auto segs = szi::cuszi_archive_segments(legacy);
  ASSERT_EQ(segs.size(), segs_ref.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].kind, segs_ref[i].kind);
    EXPECT_EQ(segs[i].size, segs_ref[i].size);
  }

  // A legacy-wrapped legacy inner (SZI1) takes the full-decode fallback.
  const auto v1 = szi::cuszi_compress_v1(d, f.dims, kRel);
  const auto legacy_v1 = wrap_legacy(v1);
  EXPECT_EQ(szi::cuszi_decompress_bitcomp_f32(legacy_v1, ws),
            szi::cuszi_decompress_f32(v1));
  const auto prog_v1 = szi::cuszi_decompress_progressive_f32(legacy_v1, 3);
  EXPECT_EQ(prog_v1.bytes_read, legacy_v1.size());
}

// The BBC2 table is the audit trail: parse a fresh fused archive and check
// the directory's methods/sizes reconcile with the payloads and with the
// audits the wrap path reports.
TEST(Orchestrate, ContainerTableMatchesAudits) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto f =
      szi::datagen::make_dataset("nyx", szi::datagen::Size::Small).front();
  const std::span<const float> d(f.data);
  const auto inner = szi::cuszi_compress(d, f.dims, kRel);

  std::vector<szi::lossless::ChoiceAudit> audits;
  const auto wrapped = szi::bitcomp_wrap_archive(
      inner, szi::lossless::LzssMode::Lazy, MethodPolicy::Auto, &audits);
  const auto view = szi::bitcomp_parse_container(wrapped);
  EXPECT_FALSE(view.legacy);
  ASSERT_EQ(view.segments.size(), audits.size());
  // One wrapper segment per inner segment plus the header+directory range.
  ASSERT_EQ(view.segments.size(), szi::cuszi_archive_segments(inner).size() + 1);

  std::uint64_t raw_total = 0;
  std::size_t payload_total = 0;
  for (std::size_t i = 0; i < view.segments.size(); ++i) {
    raw_total += view.segments[i].raw_size;
    payload_total += view.payloads[i].size();
    EXPECT_EQ(view.segments[i].size, view.payloads[i].size());
    // Auto decisions either shortcut on entropy or carry all three costs.
    const auto& a = audits[i];
    if (view.segments[i].raw_size > 0 && !a.entropy_shortcut) {
      EXPECT_GT(a.cost[0], 0u) << "segment " << i;
    }
  }
  EXPECT_EQ(raw_total, inner.size());
  EXPECT_EQ(view.table_bytes + payload_total, wrapped.size());

  // The fused pipeline must emit this exact container.
  szi::StageTimings t;
  const auto fused =
      szi::cuszi_compress_bitcomp(d, f.dims, kRel, &t, ws);
  EXPECT_EQ(fused, wrapped);
}

}  // namespace
