// Dataset generator tests: determinism (benches depend on bit-identical
// inputs), physical-plausibility properties per dataset family, registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "datagen/datasets.hh"
#include "datagen/rng.hh"
#include "metrics/stats.hh"

namespace {

using namespace szi::datagen;

TEST(Rng, DeterministicAndUniform) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());
  Rng r(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng r(9);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Datagen, DeterministicAcrossCalls) {
  const auto a = miranda(Size::Small);
  const auto b = miranda(Size::Small);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].data, b[i].data);
}

TEST(Datagen, RegistryCoversAllSixAndRejectsUnknown) {
  EXPECT_EQ(dataset_names().size(), 6u);
  for (const auto& name : dataset_names()) {
    const auto fields = make_dataset(name, Size::Small);
    ASSERT_FALSE(fields.empty()) << name;
    for (const auto& f : fields) {
      EXPECT_EQ(f.dataset, name);
      EXPECT_EQ(f.data.size(), f.dims.volume());
      EXPECT_GT(szi::metrics::value_range(f.data), 0.0) << f.label();
      for (const float v : f.data) ASSERT_TRUE(std::isfinite(v));
    }
  }
  EXPECT_THROW((void)make_dataset("hacc", Size::Small), std::invalid_argument);
}

TEST(Datagen, NyxDensityIsPositiveWithHugeDynamicRange) {
  const auto fields = nyx(Size::Small);
  const auto& rho = fields[0];
  float lo = rho.data[0], hi = rho.data[0];
  for (const float v : rho.data) {
    ASSERT_GT(v, 0.0f);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 100.0f) << "log-normal density needs dynamic range";
}

TEST(Datagen, S3dSpeciesAreBoundedMassFractions) {
  const auto fields = s3d(Size::Small);
  for (const auto& f : fields) {
    if (f.name != "CO" && f.name != "CH4") continue;
    for (const float v : f.data) {
      ASSERT_GE(v, 0.0f) << f.label();
      ASSERT_LE(v, 1.0f) << f.label();
    }
  }
}

TEST(Datagen, RtmInitializationPhaseIsQuiet) {
  // Before the first source fires, the wavefield is empty — the phase the
  // paper excludes from Fig. 6.
  const auto quiet = rtm_snapshot(10, Size::Small);
  double energy = 0;
  for (const float v : quiet.data) energy += std::abs(v);
  EXPECT_EQ(energy, 0.0);
  const auto active = rtm_snapshot(1500, Size::Small);
  double active_energy = 0;
  for (const float v : active.data) active_energy += std::abs(v);
  EXPECT_GT(active_energy, 0.0);
}

TEST(Datagen, RtmSnapshotsEvolve) {
  const auto a = rtm_snapshot(1000, Size::Small);
  const auto b = rtm_snapshot(1400, Size::Small);
  EXPECT_NE(a.data, b.data);
  EXPECT_EQ(a.dims, b.dims);
}

TEST(Datagen, QmcpackStacksOrbitalsAlongZ) {
  const auto fields = qmcpack(Size::Small);
  const auto& f = fields.front();
  EXPECT_EQ(f.dims.x, 69u);
  EXPECT_EQ(f.dims.y, 69u);
  EXPECT_EQ(f.dims.z % 115, 0u) << "z = orbitals * 115 planes";
}

TEST(Datagen, MirandaIsSmootherThanJhtdb) {
  // The compressibility ordering the paper relies on: hydro interfaces are
  // gentler than turbulence. Compare mean |x-derivative| relative to range.
  auto roughness = [](const szi::Field& f) {
    double acc = 0;
    std::size_t cnt = 0;
    for (std::size_t z = 0; z < f.dims.z; ++z)
      for (std::size_t y = 0; y < f.dims.y; ++y)
        for (std::size_t x = 1; x < f.dims.x; ++x, ++cnt)
          acc += std::abs(f.at(x, y, z) - f.at(x - 1, y, z));
    return acc / static_cast<double>(cnt) /
           szi::metrics::value_range(f.data);
  };
  EXPECT_LT(roughness(miranda(Size::Small).front()),
            roughness(jhtdb(Size::Small).front()));
}

TEST(Datagen, SizeFromEnvDefaultsSmall) {
  // (SZI_LARGE is not set in the test environment.)
  EXPECT_EQ(size_from_env(), Size::Small);
}

}  // namespace
