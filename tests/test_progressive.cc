// Progressive (preview) decode over level-segmented SZI2 archives: preview
// == subsample of the full decode at every level, full-fidelity progressive
// decode bit-identical to the plain decode, quality monotonically
// non-decreasing as levels stream in, byte accounting (a preview reads only
// its prefix of segments, proven by truncation), legacy SZI1 back-compat,
// and the unified-codebook ablation writer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "lossless/orchestrate.hh"
#include "metrics/ssim.hh"
#include "metrics/stats.hh"
#include "predictor/ginterp.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;
using szi::dev::Dim3;

/// Nearest-neighbor upsample of a preview back onto the full grid (each
/// full-grid point takes its floor-stride preview neighbor). Dims the
/// preview kept at full extent (degenerate dims) map through unchanged.
template <typename T>
std::vector<T> nn_upsample(const std::vector<T>& pre, const Dim3& pd,
                           const Dim3& fd, int level) {
  const std::size_t s = std::size_t{1} << (level - 1);
  const auto map = [&](std::size_t x, std::size_t pn, std::size_t fn) {
    return pn == fn ? x : std::min(x / s, pn - 1);
  };
  std::vector<T> out(fd.volume());
  std::size_t i = 0;
  for (std::size_t z = 0; z < fd.z; ++z)
    for (std::size_t y = 0; y < fd.y; ++y)
      for (std::size_t x = 0; x < fd.x; ++x, ++i)
        out[i] = pre[(map(z, pd.z, fd.z) * pd.y + map(y, pd.y, fd.y)) * pd.x +
                     map(x, pd.x, fd.x)];
  return out;
}

std::vector<double> smooth_f64(const Dim3& dims) {
  std::vector<double> v(dims.volume());
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x, ++i)
        v[i] = std::sin(0.07 * static_cast<double>(x)) *
                   std::cos(0.05 * static_cast<double>(y)) +
               0.3 * std::sin(0.11 * static_cast<double>(z));
  return v;
}

/// Every level's preview must be bitwise the subsample of the full decode:
/// coarse passes touch only coarse grid positions, so decoding fewer
/// segments cannot perturb the points it does reconstruct.
TEST(Progressive, PreviewMatchesSubsampleOfFullDecode) {
  for (const char* ds : {"miranda", "nyx", "s3d"}) {
    const auto fields = szi::datagen::make_dataset(ds, szi::datagen::Size::Small);
    const auto& f = fields.front();
    const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                           f.dims, {ErrorMode::Rel, 1e-3});
    const auto full = szi::cuszi_decompress_f32(bytes);
    const int nlevels = szi::predictor::ginterp_level_count(f.dims);
    const auto wrapped = szi::bitcomp_wrap_archive(bytes);
    for (int L = 1; L <= nlevels + 1; ++L) {
      const auto r = szi::cuszi_decompress_progressive_f32(bytes, L);
      EXPECT_EQ(r.level, L);
      const auto pd = szi::predictor::ginterp_preview_dims(f.dims, L);
      ASSERT_EQ(r.dims.x, pd.x);
      ASSERT_EQ(r.dims.y, pd.y);
      ASSERT_EQ(r.dims.z, pd.z);
      const auto sub = szi::predictor::ginterp_subsample(
          std::span<const float>(full), f.dims, L);
      ASSERT_EQ(r.data.size(), sub.size()) << ds << " L=" << L;
      EXPECT_EQ(0, std::memcmp(r.data.data(), sub.data(),
                               sub.size() * sizeof(float)))
          << ds << " L=" << L;
      // The wrapped archive previews to the same values, reading fewer
      // LZSS blocks for coarser levels.
      const auto rw = szi::cuszi_decompress_progressive_f32(wrapped, L);
      ASSERT_EQ(rw.data.size(), r.data.size());
      EXPECT_EQ(0, std::memcmp(rw.data.data(), r.data.data(),
                               r.data.size() * sizeof(float)))
          << ds << " wrapped L=" << L;
      EXPECT_LE(rw.bytes_read, wrapped.size());
    }
  }
}

/// max_level <= 1 must be the full-fidelity reconstruction, bit-identical
/// to the plain decode — raw and wrapped — and consume the whole archive.
TEST(Progressive, FullFidelityIsBitIdenticalToPlainDecode) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const auto full = szi::cuszi_decompress_f32(bytes);
  // The archive ends with the tile index, which previews never need: full
  // fidelity consumes exactly through the last level segment.
  const auto segs = szi::cuszi_archive_segments(bytes);
  std::uint64_t level_extent = 0;
  for (const auto& s : segs)
    if (s.kind == 2) level_extent = s.offset + s.size;
  for (const int L : {1, 0, -5}) {  // clamped to 1
    const auto r = szi::cuszi_decompress_progressive_f32(bytes, L);
    EXPECT_EQ(r.level, 1);
    ASSERT_EQ(r.data.size(), full.size());
    EXPECT_EQ(0, std::memcmp(r.data.data(), full.data(),
                             full.size() * sizeof(float)));
    EXPECT_EQ(r.bytes_read, level_extent);
    EXPECT_LT(r.bytes_read, bytes.size());
  }
  const auto wrapped = szi::bitcomp_wrap_archive(bytes);
  const auto rw = szi::cuszi_decompress_progressive_f32(wrapped, 1);
  ASSERT_EQ(rw.data.size(), full.size());
  EXPECT_EQ(0, std::memcmp(rw.data.data(), full.data(),
                           full.size() * sizeof(float)));
  // Wrapped: the tile index's wrapper payload trails everything the full
  // preview reads; the consumed prefix still decodes the identical field.
  EXPECT_LT(rw.bytes_read, wrapped.size());
  const std::vector<std::byte> prefix(
      wrapped.begin(),
      wrapped.begin() + static_cast<std::ptrdiff_t>(rw.bytes_read));
  const auto rt = szi::cuszi_decompress_progressive_f32(prefix, 1);
  ASSERT_EQ(rt.data.size(), full.size());
  EXPECT_EQ(0, std::memcmp(rt.data.data(), full.data(),
                           full.size() * sizeof(float)));
}

/// Streaming refinement: as max_level decreases toward full fidelity, the
/// NN-upsampled preview's PSNR and SSIM against the original must be
/// monotonically non-decreasing (0.5 dB / 1e-3 slack for level pairs whose
/// refinement is negligible on smooth data).
TEST(Progressive, QualityMonotoneAsLevelsStreamIn) {
  for (const char* ds : {"miranda", "s3d"}) {
    const auto fields = szi::datagen::make_dataset(ds, szi::datagen::Size::Small);
    const auto& f = fields.front();
    const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                           f.dims, {ErrorMode::Rel, 1e-3});
    const int nlevels = szi::predictor::ginterp_level_count(f.dims);
    double prev_psnr = -1e30;
    double prev_ssim = -1e30;
    for (int L = nlevels + 1; L >= 1; --L) {
      const auto r = szi::cuszi_decompress_progressive_f32(bytes, L);
      const auto up = nn_upsample(r.data, r.dims, f.dims, L);
      const double psnr = szi::metrics::distortion(f.data, up).psnr;
      const double s = szi::metrics::ssim(f.data, up, f.dims);
      EXPECT_GE(psnr, prev_psnr - 0.5) << ds << " level " << L;
      EXPECT_GE(s, prev_ssim - 1e-3) << ds << " level " << L;
      prev_psnr = psnr;
      prev_ssim = s;
    }
  }
}

/// Byte accounting: a preview at level L reads exactly through level L's
/// segment — bytes_read matches the directory's extent, and truncating the
/// archive to bytes_read still yields the identical preview.
TEST(Progressive, PreviewReadsOnlyItsPrefixOfSegments) {
  const auto fields =
      szi::datagen::make_dataset("nyx", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const auto segs = szi::cuszi_archive_segments(bytes);
  const int nlevels = szi::predictor::ginterp_level_count(f.dims);
  ASSERT_EQ(segs.size(), static_cast<std::size_t>(nlevels) + 3);
  for (int L = 2; L <= nlevels + 1; ++L) {
    const auto r = szi::cuszi_decompress_progressive_f32(bytes, L);
    // Last segment the preview needs: the deepest with level >= L (or the
    // outlier segment when no level qualifies).
    std::size_t last = 1;
    for (std::size_t i = 2; i < segs.size() && segs[i].level >= L; ++i)
      last = i;
    EXPECT_EQ(r.bytes_read, segs[last].offset + segs[last].size)
        << "L=" << L;
    EXPECT_LT(r.bytes_read, bytes.size()) << "L=" << L;
    const std::vector<std::byte> prefix(
        bytes.begin(),
        bytes.begin() + static_cast<std::ptrdiff_t>(r.bytes_read));
    const auto rt = szi::cuszi_decompress_progressive_f32(prefix, L);
    EXPECT_EQ(rt.bytes_read, r.bytes_read);
    ASSERT_EQ(rt.data.size(), r.data.size());
    EXPECT_EQ(0, std::memcmp(rt.data.data(), r.data.data(),
                             r.data.size() * sizeof(float)));
  }
}

/// The wrapped ('BBC2') path honors the same truncation contract: the
/// wrapper segmentation mirrors the inner directory, so `bytes_read` lands
/// on a wrapper-payload boundary, truncating the wrapped archive there
/// decodes the identical preview, and cutting one byte deeper — into a
/// payload the preview needs — throws instead of misdecoding. Forced
/// transformed methods take the all-or-nothing payload path.
TEST(Progressive, WrappedPreviewDecodesFromItsOwnPrefix) {
  const auto fields =
      szi::datagen::make_dataset("nyx", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto inner = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const int nlevels = szi::predictor::ginterp_level_count(f.dims);
  for (const auto policy :
       {szi::lossless::MethodPolicy::Auto, szi::lossless::MethodPolicy::ForceZeroRle,
        szi::lossless::MethodPolicy::ForceBitshuffle}) {
    const auto wrapped = szi::bitcomp_wrap_archive(
        inner, szi::lossless::LzssMode::Lazy, policy);
    for (int L = 2; L <= nlevels + 1; ++L) {
      const auto r = szi::cuszi_decompress_progressive_f32(wrapped, L);
      ASSERT_GT(r.bytes_read, 0u);
      EXPECT_LT(r.bytes_read, wrapped.size()) << "L=" << L;
      const std::vector<std::byte> prefix(
          wrapped.begin(),
          wrapped.begin() + static_cast<std::ptrdiff_t>(r.bytes_read));
      const auto rt = szi::cuszi_decompress_progressive_f32(prefix, L);
      EXPECT_EQ(rt.bytes_read, r.bytes_read) << "L=" << L;
      ASSERT_EQ(rt.data.size(), r.data.size());
      EXPECT_EQ(0, std::memcmp(rt.data.data(), r.data.data(),
                               r.data.size() * sizeof(float)))
          << "L=" << L;
      const std::vector<std::byte> cut(
          wrapped.begin(),
          wrapped.begin() + static_cast<std::ptrdiff_t>(r.bytes_read) - 1);
      EXPECT_THROW((void)szi::cuszi_decompress_progressive_f32(cut, L),
                   szi::core::CorruptArchive)
          << "L=" << L;
    }
  }
}

/// The coarsest preview (level_count + 1) is the raw anchor grid, which is
/// stored lossless: it must equal the subsample of the *original* exactly.
TEST(Progressive, AnchorGridPreviewIsLossless) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const int nlevels = szi::predictor::ginterp_level_count(f.dims);
  const auto r = szi::cuszi_decompress_progressive_f32(bytes, nlevels + 1);
  const auto sub = szi::predictor::ginterp_subsample(
      std::span<const float>(f.data), f.dims, nlevels + 1);
  ASSERT_EQ(r.data.size(), sub.size());
  EXPECT_EQ(0,
            std::memcmp(r.data.data(), sub.data(), sub.size() * sizeof(float)));
  // Levels beyond the range clamp to the anchor grid.
  const auto rc =
      szi::cuszi_decompress_progressive_f32(bytes, nlevels + 99);
  EXPECT_EQ(rc.level, nlevels + 1);
  EXPECT_EQ(rc.data, r.data);
}

/// Legacy SZI1 archives decode through the same entry points: plain decode
/// dispatches on the magic, and progressive requests fall back to full
/// decode + subsample (bytes_read = whole archive).
TEST(Progressive, LegacyV1ArchivesStillDecode) {
  const auto fields =
      szi::datagen::make_dataset("s3d", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const double rel = 1e-3;
  const auto v1 = szi::cuszi_compress_v1(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, rel});
  const auto dec = szi::cuszi_decompress_f32(v1);
  const double eb = rel * szi::metrics::value_range(f.data);
  EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, eb));
  EXPECT_TRUE(szi::cuszi_archive_segments(v1).empty());

  const int nlevels = szi::predictor::ginterp_level_count(f.dims);
  for (const int L : {1, 2, nlevels + 1}) {
    const auto r = szi::cuszi_decompress_progressive_f32(v1, L);
    EXPECT_EQ(r.bytes_read, v1.size());
    const auto sub = szi::predictor::ginterp_subsample(
        std::span<const float>(dec), f.dims, L);
    ASSERT_EQ(r.data.size(), sub.size()) << "L=" << L;
    EXPECT_EQ(0, std::memcmp(r.data.data(), sub.data(),
                             sub.size() * sizeof(float)))
        << "L=" << L;
  }
  // Wrapped v1 falls back the same way.
  const auto wrapped = szi::bitcomp_wrap_archive(v1);
  const auto rw = szi::cuszi_decompress_progressive_f32(wrapped, 2);
  EXPECT_EQ(rw.bytes_read, wrapped.size());
  const auto sub2 = szi::predictor::ginterp_subsample(
      std::span<const float>(dec), f.dims, 2);
  EXPECT_EQ(0, std::memcmp(rw.data.data(), sub2.data(),
                           sub2.size() * sizeof(float)));
}

/// The unified-codebook ablation writer emits valid SZI2: same decoded
/// field bit-for-bit (codes are identical; only the books differ), same
/// directory shape, progressive decode included.
TEST(Progressive, UnifiedBookArchiveRoundTrips) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const CompressParams p{ErrorMode::Rel, 1e-3};
  const auto per_level =
      szi::cuszi_compress(std::span<const float>(f.data), f.dims, p);
  const auto unified = szi::cuszi_compress_unified_book(
      std::span<const float>(f.data), f.dims, p);
  const auto a = szi::cuszi_decompress_f32(per_level);
  const auto b = szi::cuszi_decompress_f32(unified);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  EXPECT_EQ(szi::cuszi_archive_segments(per_level).size(),
            szi::cuszi_archive_segments(unified).size());
  const auto r = szi::cuszi_decompress_progressive_f32(unified, 2);
  const auto sub =
      szi::predictor::ginterp_subsample(std::span<const float>(a), f.dims, 2);
  EXPECT_EQ(0,
            std::memcmp(r.data.data(), sub.data(), sub.size() * sizeof(float)));
}

/// f64 archives go through the same segmented layout and progressive path.
TEST(Progressive, F64PreviewAndBackCompat) {
  const Dim3 dims{48, 40, 24};
  const auto data = smooth_f64(dims);
  const CompressParams p{ErrorMode::Rel, 1e-4};
  const auto bytes =
      szi::cuszi_compress(std::span<const double>(data), dims, p);
  const auto full = szi::cuszi_decompress_f64(bytes);
  const int nlevels = szi::predictor::ginterp_level_count(dims);
  for (int L = 1; L <= nlevels + 1; ++L) {
    const auto r = szi::cuszi_decompress_progressive_f64(bytes, L);
    const auto sub = szi::predictor::ginterp_subsample(
        std::span<const double>(full), dims, L);
    ASSERT_EQ(r.data.size(), sub.size()) << "L=" << L;
    EXPECT_EQ(0, std::memcmp(r.data.data(), sub.data(),
                             sub.size() * sizeof(double)))
        << "L=" << L;
  }
  const auto v1 = szi::cuszi_compress_v1(std::span<const double>(data), dims, p);
  const auto dec1 = szi::cuszi_decompress_f64(v1);
  ASSERT_EQ(dec1.size(), full.size());
  // v1 and v2 carry the same codes/anchors/outliers, so the fields match.
  EXPECT_EQ(0, std::memcmp(dec1.data(), full.data(),
                           full.size() * sizeof(double)));
}

/// cuszi_archive_segments: validated directory view — contiguous offsets
/// ending exactly at the archive size, closed-form symbol counts, 'BBCP'
/// unwrapped transparently.
TEST(Progressive, ArchiveSegmentsDirectoryView) {
  const auto fields =
      szi::datagen::make_dataset("s3d", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const auto segs = szi::cuszi_archive_segments(bytes);
  const int nlevels = szi::predictor::ginterp_level_count(f.dims);
  ASSERT_EQ(segs.size(), static_cast<std::size_t>(nlevels) + 3);
  EXPECT_EQ(segs[0].kind, 0);
  EXPECT_EQ(segs[1].kind, 1);
  std::uint64_t cursor = segs[0].offset;
  std::uint64_t symbols = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].offset, cursor) << "segment " << i;
    cursor += segs[i].size;
    if (i >= 2 && segs[i].kind == 2) {
      EXPECT_EQ(static_cast<int>(segs[i].level),
                nlevels - static_cast<int>(i) + 2);
      EXPECT_EQ(segs[i].count, szi::predictor::ginterp_level_volume(
                                   f.dims, segs[i].level));
      symbols += segs[i].count;
    }
  }
  // The trailing tile index: one entry per (level, tile z-slab).
  EXPECT_EQ(segs.back().kind, 3);
  EXPECT_EQ(segs.back().level, 0);
  EXPECT_GT(segs.back().count, 0u);
  EXPECT_EQ(cursor, bytes.size());
  // Levels + anchors partition the volume.
  EXPECT_EQ(symbols + segs[0].count, f.dims.volume());
  const auto wrapped = szi::bitcomp_wrap_archive(bytes);
  const auto segs_w = szi::cuszi_archive_segments(wrapped);
  ASSERT_EQ(segs_w.size(), segs.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs_w[i].offset, segs[i].offset);
    EXPECT_EQ(segs_w[i].size, segs[i].size);
  }
}

}  // namespace
