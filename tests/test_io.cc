// I/O tests: raw f32 files, PGM dumps, the multi-field bundle, SSIM metric,
// and the ArchiveSource random-access layer (pread retry/short-read paths,
// concurrent mmap readers).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "datagen/rng.hh"
#include "io/archive_source.hh"
#include "io/bin_io.hh"
#include "io/bundle.hh"
#include "metrics/ssim.hh"

namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: gtest_discover_tests runs each TEST as its own ctest
    // process, so a shared path would let one process's TearDown remove_all
    // the directory while a concurrently scheduled sibling is mid-write.
    dir_ = fs::temp_directory_path() /
           ("szi_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(IoTest, F32RoundTrip) {
  std::vector<float> v{1.0f, -2.5f, 3.25f, 0.0f};
  const auto path = (dir_ / "a.f32").string();
  szi::io::write_f32(path, v);
  EXPECT_EQ(szi::io::read_f32(path), v);
  EXPECT_EQ(szi::io::read_f32(path, 4), v);
  EXPECT_THROW((void)szi::io::read_f32(path, 5), std::runtime_error);
  EXPECT_THROW((void)szi::io::read_f32((dir_ / "missing").string()),
               std::runtime_error);
}

TEST_F(IoTest, BytesRoundTrip) {
  std::vector<std::byte> b{std::byte{1}, std::byte{255}, std::byte{0}};
  const auto path = (dir_ / "b.bin").string();
  szi::io::write_bytes(path, b);
  EXPECT_EQ(szi::io::read_bytes(path), b);
}

TEST_F(IoTest, PgmSliceIsWellFormed) {
  szi::Field f("t", "f", {8, 4, 3});
  for (std::size_t i = 0; i < f.size(); ++i)
    f.data[i] = static_cast<float>(i);
  const auto path = (dir_ / "s.pgm").string();
  szi::io::write_pgm_slice(path, f, 1);
  const auto bytes = szi::io::read_bytes(path);
  const std::string header(reinterpret_cast<const char*>(bytes.data()), 2);
  EXPECT_EQ(header, "P5");
  // header line + dims + maxval + 8*4 pixels
  EXPECT_GT(bytes.size(), 8u * 4u);
  EXPECT_THROW(szi::io::write_pgm_slice(path, f, 5), std::runtime_error);
}

TEST_F(IoTest, BundleRoundTrip) {
  szi::io::Bundle b;
  szi::datagen::Rng rng(1);
  for (int i = 0; i < 3; ++i) {
    szi::io::BundleEntry e;
    e.name = "field" + std::to_string(i);
    e.compressor = "cusz-i";
    e.dims = {16, 8, 4};
    e.raw_bytes = 16 * 8 * 4 * 4;
    e.archive.resize(100 + 50 * static_cast<std::size_t>(i));
    for (auto& byte : e.archive)
      byte = static_cast<std::byte>(rng.next_u64());
    b.add(std::move(e));
  }
  const auto path = (dir_ / "bundle.szib").string();
  b.save(path);
  const auto back = szi::io::Bundle::load(path);
  ASSERT_EQ(back.entries().size(), 3u);
  EXPECT_EQ(back.total_raw_bytes(), b.total_raw_bytes());
  EXPECT_EQ(back.total_archive_bytes(), b.total_archive_bytes());
  const auto* e1 = back.find("field1");
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->compressor, "cusz-i");
  EXPECT_EQ(e1->dims, (szi::dev::Dim3{16, 8, 4}));
  EXPECT_EQ(e1->archive, b.entries()[1].archive);
  EXPECT_EQ(back.find("nope"), nullptr);
}

TEST_F(IoTest, BundleRejectsCorruptStream) {
  std::vector<std::byte> junk(32, std::byte{0x42});
  EXPECT_THROW((void)szi::io::Bundle::deserialize(junk), std::runtime_error);
}

// ---------------------------------------------------------------------------
// ArchiveSource: the pread loop's EINTR/short-read handling and concurrent
// readers on a shared mmap source (the multi-tenant ROI access pattern).

/// RAII install/restore of the StreamSource pread test seam.
class PreadHookGuard {
 public:
  explicit PreadHookGuard(szi::io::detail::PreadFn fn)
      : prev_(szi::io::detail::set_pread_hook(fn)) {}
  ~PreadHookGuard() { szi::io::detail::set_pread_hook(prev_); }

 private:
  szi::io::detail::PreadFn prev_;
};

int g_eintr_remaining = 0;

ssize_t pread_eintr(int fd, void* buf, std::size_t count, off_t off) {
  if (g_eintr_remaining > 0) {
    --g_eintr_remaining;
    errno = EINTR;
    return -1;
  }
  return ::pread(fd, buf, count, off);
}

// Caps every read at 7 bytes — the loop must reassemble the range from
// many partial reads at advancing offsets.
ssize_t pread_short(int fd, void* buf, std::size_t count, off_t off) {
  return ::pread(fd, buf, count < 7 ? count : 7, off);
}

ssize_t pread_eof(int, void*, std::size_t, off_t) { return 0; }

ssize_t pread_eio(int, void*, std::size_t, off_t) {
  errno = EIO;
  return -1;
}

class ArchiveSourceTest : public IoTest {
 protected:
  std::string write_pattern(std::size_t n) {
    std::vector<std::byte> bytes(n);
    for (std::size_t i = 0; i < n; ++i)
      bytes[i] = static_cast<std::byte>(i * 37 + 11);
    const auto path = (dir_ / "archive.bin").string();
    szi::io::write_bytes(path, bytes);
    pattern_ = std::move(bytes);
    return path;
  }
  std::vector<std::byte> pattern_;
};

TEST_F(ArchiveSourceTest, StreamSourceRetriesEintr) {
  const auto path = write_pattern(256);
  szi::io::StreamSource src(path);
  g_eintr_remaining = 3;
  PreadHookGuard guard(pread_eintr);
  std::vector<std::byte> scratch;
  const auto v = src.view(0, 256, scratch);
  EXPECT_EQ(g_eintr_remaining, 0);
  ASSERT_EQ(v.size(), 256u);
  EXPECT_EQ(0, std::memcmp(v.data(), pattern_.data(), 256));
  // The interrupted attempts transferred nothing; accounting counts the
  // range served, once.
  EXPECT_EQ(src.bytes_read(), 256u);
}

TEST_F(ArchiveSourceTest, StreamSourceReassemblesShortReads) {
  const auto path = write_pattern(100);
  szi::io::StreamSource src(path);
  PreadHookGuard guard(pread_short);
  std::vector<std::byte> scratch;
  const auto v = src.view(5, 90, scratch);  // 13 partial reads
  ASSERT_EQ(v.size(), 90u);
  EXPECT_EQ(0, std::memcmp(v.data(), pattern_.data() + 5, 90));
  EXPECT_EQ(src.bytes_read(), 90u);
}

TEST_F(ArchiveSourceTest, StreamSourceThrowsOnTruncationMidRead) {
  const auto path = write_pattern(64);
  szi::io::StreamSource src(path);
  PreadHookGuard guard(pread_eof);
  std::vector<std::byte> scratch;
  EXPECT_THROW((void)src.view(0, 64, scratch), std::runtime_error);
  EXPECT_EQ(src.bytes_read(), 0u);  // failed views account nothing
}

TEST_F(ArchiveSourceTest, StreamSourceThrowsOnHardError) {
  const auto path = write_pattern(64);
  szi::io::StreamSource src(path);
  PreadHookGuard guard(pread_eio);
  std::vector<std::byte> scratch;
  EXPECT_THROW((void)src.view(0, 64, scratch), std::runtime_error);
}

TEST_F(ArchiveSourceTest, ViewRejectsRangePastEnd) {
  const auto path = write_pattern(32);
  szi::io::StreamSource src(path);
  std::vector<std::byte> scratch;
  EXPECT_THROW((void)src.view(16, 17, scratch), std::out_of_range);
  EXPECT_THROW((void)src.view(33, 0, scratch), std::out_of_range);
}

// Many readers, one mmap'd archive: the multi-tenant ROI pattern szi::serve
// schedules. Every thread decodes its own box through the shared source;
// results must match the cropped full decode, and the (atomic) byte
// accounting must cover all readers.
TEST_F(ArchiveSourceTest, MmapSourceConcurrentRoiReaders) {
  const auto fields = szi::datagen::miranda(szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto archive =
      szi::cuszi_compress(f.view(), f.dims, {szi::ErrorMode::Rel, 1e-3});
  const auto path = (dir_ / "field.szi").string();
  szi::io::write_bytes(path, archive);

  const auto full = szi::cuszi_decompress_f32(archive);
  szi::io::MmapSource src(path);

  constexpr int kReaders = 8;
  std::vector<szi::RoiBox> boxes;
  for (int i = 0; i < kReaders; ++i) {
    const std::size_t x0 = static_cast<std::size_t>(i) % 4 * (f.dims.x / 8);
    const std::size_t z0 = static_cast<std::size_t>(i) / 4 * (f.dims.z / 4);
    boxes.push_back({{x0, 0, z0},
                     {f.dims.x / 4, f.dims.y / 2, std::min<std::size_t>(
                                                      f.dims.z - z0, 8)}});
  }
  std::vector<std::vector<float>> got(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i)
    readers.emplace_back([&, i] {
      got[static_cast<std::size_t>(i)] =
          szi::cuszi_decompress_roi_f32(src, boxes[static_cast<std::size_t>(i)])
              .data;
    });
  for (auto& t : readers) t.join();

  for (int i = 0; i < kReaders; ++i) {
    const auto& box = boxes[static_cast<std::size_t>(i)];
    const auto& out = got[static_cast<std::size_t>(i)];
    ASSERT_EQ(out.size(), box.ext.volume()) << "reader " << i;
    for (std::size_t z = 0; z < box.ext.z; ++z)
      for (std::size_t y = 0; y < box.ext.y; ++y)
        for (std::size_t x = 0; x < box.ext.x; ++x) {
          const float want = full[szi::dev::linearize(
              f.dims, box.lo.x + x, box.lo.y + y, box.lo.z + z)];
          const float have = out[szi::dev::linearize(box.ext, x, y, z)];
          ASSERT_EQ(want, have) << "reader " << i;
        }
  }
  EXPECT_GT(src.bytes_read(), 0u);
}

TEST(Ssim, IdenticalFieldsScoreOne) {
  const auto fields = szi::datagen::miranda(szi::datagen::Size::Small);
  const auto& f = fields.front();
  EXPECT_NEAR(szi::metrics::ssim(f.data, f.data, f.dims), 1.0, 1e-12);
}

TEST(Ssim, DegradesWithNoiseMonotonically) {
  const auto fields = szi::datagen::miranda(szi::datagen::Size::Small);
  const auto& f = fields.front();
  szi::datagen::Rng rng(5);
  double prev = 1.0;
  for (const float amp : {0.001f, 0.01f, 0.1f}) {
    auto noisy = f.data;
    szi::datagen::Rng r2(6);
    for (auto& v : noisy) v += amp * static_cast<float>(r2.gaussian());
    const double s = szi::metrics::ssim(f.data, noisy, f.dims);
    EXPECT_LT(s, prev) << "amp=" << amp;
    prev = s;
  }
  EXPECT_LT(prev, 0.9);
  (void)rng;
}

TEST(Ssim, RejectsSizeMismatch) {
  std::vector<float> a(8), b(9);
  EXPECT_THROW((void)szi::metrics::ssim(a, b, {8, 1, 1}),
               std::invalid_argument);
}

}  // namespace
