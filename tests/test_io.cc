// I/O tests: raw f32 files, PGM dumps, the multi-field bundle, SSIM metric.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "datagen/datasets.hh"
#include "datagen/rng.hh"
#include "io/bin_io.hh"
#include "io/bundle.hh"
#include "metrics/ssim.hh"

namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: gtest_discover_tests runs each TEST as its own ctest
    // process, so a shared path would let one process's TearDown remove_all
    // the directory while a concurrently scheduled sibling is mid-write.
    dir_ = fs::temp_directory_path() /
           ("szi_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(IoTest, F32RoundTrip) {
  std::vector<float> v{1.0f, -2.5f, 3.25f, 0.0f};
  const auto path = (dir_ / "a.f32").string();
  szi::io::write_f32(path, v);
  EXPECT_EQ(szi::io::read_f32(path), v);
  EXPECT_EQ(szi::io::read_f32(path, 4), v);
  EXPECT_THROW((void)szi::io::read_f32(path, 5), std::runtime_error);
  EXPECT_THROW((void)szi::io::read_f32((dir_ / "missing").string()),
               std::runtime_error);
}

TEST_F(IoTest, BytesRoundTrip) {
  std::vector<std::byte> b{std::byte{1}, std::byte{255}, std::byte{0}};
  const auto path = (dir_ / "b.bin").string();
  szi::io::write_bytes(path, b);
  EXPECT_EQ(szi::io::read_bytes(path), b);
}

TEST_F(IoTest, PgmSliceIsWellFormed) {
  szi::Field f("t", "f", {8, 4, 3});
  for (std::size_t i = 0; i < f.size(); ++i)
    f.data[i] = static_cast<float>(i);
  const auto path = (dir_ / "s.pgm").string();
  szi::io::write_pgm_slice(path, f, 1);
  const auto bytes = szi::io::read_bytes(path);
  const std::string header(reinterpret_cast<const char*>(bytes.data()), 2);
  EXPECT_EQ(header, "P5");
  // header line + dims + maxval + 8*4 pixels
  EXPECT_GT(bytes.size(), 8u * 4u);
  EXPECT_THROW(szi::io::write_pgm_slice(path, f, 5), std::runtime_error);
}

TEST_F(IoTest, BundleRoundTrip) {
  szi::io::Bundle b;
  szi::datagen::Rng rng(1);
  for (int i = 0; i < 3; ++i) {
    szi::io::BundleEntry e;
    e.name = "field" + std::to_string(i);
    e.compressor = "cusz-i";
    e.dims = {16, 8, 4};
    e.raw_bytes = 16 * 8 * 4 * 4;
    e.archive.resize(100 + 50 * static_cast<std::size_t>(i));
    for (auto& byte : e.archive)
      byte = static_cast<std::byte>(rng.next_u64());
    b.add(std::move(e));
  }
  const auto path = (dir_ / "bundle.szib").string();
  b.save(path);
  const auto back = szi::io::Bundle::load(path);
  ASSERT_EQ(back.entries().size(), 3u);
  EXPECT_EQ(back.total_raw_bytes(), b.total_raw_bytes());
  EXPECT_EQ(back.total_archive_bytes(), b.total_archive_bytes());
  const auto* e1 = back.find("field1");
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->compressor, "cusz-i");
  EXPECT_EQ(e1->dims, (szi::dev::Dim3{16, 8, 4}));
  EXPECT_EQ(e1->archive, b.entries()[1].archive);
  EXPECT_EQ(back.find("nope"), nullptr);
}

TEST_F(IoTest, BundleRejectsCorruptStream) {
  std::vector<std::byte> junk(32, std::byte{0x42});
  EXPECT_THROW((void)szi::io::Bundle::deserialize(junk), std::runtime_error);
}

TEST(Ssim, IdenticalFieldsScoreOne) {
  const auto fields = szi::datagen::miranda(szi::datagen::Size::Small);
  const auto& f = fields.front();
  EXPECT_NEAR(szi::metrics::ssim(f.data, f.data, f.dims), 1.0, 1e-12);
}

TEST(Ssim, DegradesWithNoiseMonotonically) {
  const auto fields = szi::datagen::miranda(szi::datagen::Size::Small);
  const auto& f = fields.front();
  szi::datagen::Rng rng(5);
  double prev = 1.0;
  for (const float amp : {0.001f, 0.01f, 0.1f}) {
    auto noisy = f.data;
    szi::datagen::Rng r2(6);
    for (auto& v : noisy) v += amp * static_cast<float>(r2.gaussian());
    const double s = szi::metrics::ssim(f.data, noisy, f.dims);
    EXPECT_LT(s, prev) << "amp=" << amp;
    prev = s;
  }
  EXPECT_LT(prev, 0.9);
  (void)rng;
}

TEST(Ssim, RejectsSizeMismatch) {
  std::vector<float> a(8), b(9);
  EXPECT_THROW((void)szi::metrics::ssim(a, b, {8, 1, 1}),
               std::invalid_argument);
}

}  // namespace
