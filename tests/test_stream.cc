// The stream + arena execution layer: in-order async queues, cross-stream
// events, exception poisoning, pooled workspaces, and the multi-launch
// thread pool underneath them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "device/arena.hh"
#include "device/launch.hh"
#include "device/stream.hh"

namespace {

using szi::dev::Arena;
using szi::dev::Event;
using szi::dev::PooledBuffer;
using szi::dev::Stream;
using szi::dev::Workspace;

TEST(Stream, RunsTasksInSubmissionOrder) {
  Stream s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    s.submit([i, &order] { order.push_back(i); });
  s.synchronize();
  std::vector<int> expect(100);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(Stream, AsyncLaunchMatchesSyncLaunch) {
  const std::size_t n = 10000;
  std::vector<std::uint64_t> sync_out(n), async_out(n);
  szi::dev::launch_linear(n, [&](std::size_t i) { sync_out[i] = i * i; });

  Stream s;
  szi::dev::launch_linear_async(
      s, n, [&](std::size_t i) { async_out[i] = i * i; });
  s.synchronize();
  EXPECT_EQ(sync_out, async_out);
}

TEST(Stream, AsyncBlockLaunchCoversGrid) {
  Stream s;
  const szi::dev::Dim3 grid{4, 3, 2};
  std::vector<int> hits(grid.volume(), 0);
  szi::dev::launch_blocks_async(
      s, grid, [&](const szi::dev::BlockIdx& b) { hits[b.linear] += 1; });
  s.synchronize();
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Stream, SubmitReturnsBeforeTaskCompletes) {
  Stream s;
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  s.submit([&] {
    while (!release.load()) std::this_thread::yield();
    ran = true;
  });
  // If submit were synchronous this would deadlock before the assertions.
  EXPECT_FALSE(ran.load());
  release = true;
  s.synchronize();
  EXPECT_TRUE(ran.load());
}

TEST(Event, DefaultConstructedIsComplete) {
  Event e;
  EXPECT_TRUE(e.query());
  e.wait();  // must not block
}

TEST(Event, OrdersWorkAcrossStreams) {
  for (int round = 0; round < 20; ++round) {
    Stream a, b;
    std::atomic<int> value{0};
    std::atomic<bool> release{false};
    a.submit([&] {
      while (!release.load()) std::this_thread::yield();
      value = 42;
    });
    Event done_a = a.record();
    b.wait(done_a);
    int seen = -1;
    b.submit([&] { seen = value.load(); });
    release = true;
    b.synchronize();
    a.synchronize();
    EXPECT_EQ(seen, 42);
  }
}

TEST(Event, QueryFlipsAfterStreamReachesRecordPoint) {
  Stream s;
  std::atomic<bool> release{false};
  s.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  Event e = s.record();
  EXPECT_FALSE(e.query());
  release = true;
  e.wait();
  EXPECT_TRUE(e.query());
  s.synchronize();
}

TEST(Stream, ExceptionPoisonsSkipsAndRethrows) {
  Stream s;
  std::atomic<bool> later_ran{false};
  s.submit([] { throw std::runtime_error("task failed"); });
  s.submit([&] { later_ran = true; });  // must be skipped
  EXPECT_THROW(s.synchronize(), std::runtime_error);
  EXPECT_FALSE(later_ran.load());

  // synchronize() cleared the poison: the stream is usable again.
  std::atomic<bool> after_ran{false};
  s.submit([&] { after_ran = true; });
  s.synchronize();
  EXPECT_TRUE(after_ran.load());
}

TEST(Stream, ExceptionInsideAsyncKernelPropagates) {
  Stream s;
  szi::dev::launch_linear_async(s, 1000, [](std::size_t i) {
    if (i == 567) throw std::invalid_argument("bad block");
  });
  EXPECT_THROW(s.synchronize(), std::invalid_argument);
}

TEST(Stream, EventCompletesOnPoisonedStream) {
  Stream s;
  s.submit([] { throw std::runtime_error("poison"); });
  Event e = s.record();
  e.wait();  // control tasks run even after a failure — must not hang
  EXPECT_TRUE(s.errored());
  EXPECT_THROW(s.synchronize(), std::runtime_error);
}

TEST(Stream, ConcurrentStreamsShareThePool) {
  // Two streams launching pool kernels at once exercises the multi-launch
  // queue; each must see exactly its own result.
  Stream a, b;
  const std::size_t n = 50000;
  std::vector<std::uint32_t> va(n), vb(n);
  szi::dev::launch_linear_async(a, n, [&](std::size_t i) { va[i] = 1; });
  szi::dev::launch_linear_async(b, n, [&](std::size_t i) { vb[i] = 2; });
  a.synchronize();
  b.synchronize();
  EXPECT_EQ(std::accumulate(va.begin(), va.end(), std::uint64_t{0}), n);
  EXPECT_EQ(std::accumulate(vb.begin(), vb.end(), std::uint64_t{0}), 2 * n);
}

TEST(Arena, RoundsUpAndReusesBlocks) {
  Arena a;
  std::size_t cap = 0;
  std::byte* p = a.acquire(1000, cap);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(cap, 1000u);
  a.release(p, cap);

  // Same bucket: the freed block must come back (LIFO reuse).
  std::size_t cap2 = 0;
  std::byte* q = a.acquire(cap, cap2);
  EXPECT_EQ(q, p);
  EXPECT_EQ(cap2, cap);
  a.release(q, cap2);

  const auto st = a.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.outstanding, 0u);
}

TEST(Arena, TrimFreesIdleBlocks) {
  Arena a;
  std::size_t cap = 0;
  std::byte* p = a.acquire(4096, cap);
  a.release(p, cap);
  EXPECT_GT(a.stats().pooled_bytes, 0u);
  a.trim();
  EXPECT_EQ(a.stats().pooled_blocks, 0u);
  EXPECT_EQ(a.stats().pooled_bytes, 0u);
}

TEST(Workspace, SpansAreDistinctAndWritable) {
  Arena a;
  Workspace ws(a);
  auto x = ws.make<std::uint32_t>(1000);
  auto y = ws.make<std::uint32_t>(1000);
  ASSERT_EQ(x.size(), 1000u);
  ASSERT_EQ(y.size(), 1000u);
  // Distinct blocks: writing one never touches the other.
  for (std::size_t i = 0; i < 1000; ++i) x[i] = 7;
  for (std::size_t i = 0; i < 1000; ++i) y[i] = 9;
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(x[i], 7u);
}

TEST(Workspace, ResetReturnsBlocksForReuse) {
  Arena a;
  Workspace ws(a);
  auto x = ws.make<std::uint8_t>(10000);
  std::uint8_t* first = x.data();
  ws.reset();
  EXPECT_EQ(a.stats().outstanding, 0u);

  // Same-size request after reset reuses the exact block (pool hit).
  auto y = ws.make<std::uint8_t>(10000);
  EXPECT_EQ(y.data(), first);
  EXPECT_GE(a.stats().hits, 1u);
}

TEST(Workspace, DestructorReleasesEverything) {
  Arena a;
  {
    Workspace ws(a);
    (void)ws.make<double>(512);
    (void)ws.make<double>(2048);
    EXPECT_EQ(a.stats().outstanding, 2u);
  }
  EXPECT_EQ(a.stats().outstanding, 0u);
}

TEST(PooledBufferTest, ConcurrentAcquireReleaseFromKernels) {
  Arena a;
  const std::size_t n = 2000;
  std::vector<std::uint64_t> sums(n);
  szi::dev::launch_linear(
      n,
      [&](std::size_t i) {
        PooledBuffer buf(a, 256 * sizeof(std::uint32_t));
        auto scratch = buf.as<std::uint32_t>(256);
        for (std::size_t j = 0; j < 256; ++j)
          scratch[j] = static_cast<std::uint32_t>(i + j);
        std::uint64_t s = 0;
        for (std::size_t j = 0; j < 256; ++j) s += scratch[j];
        sums[i] = s;
      },
      16);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(sums[i], 256 * i + (255 * 256) / 2);
  EXPECT_EQ(a.stats().outstanding, 0u);
}

TEST(Arena, TracksHeldAndHighWaterBytes) {
  Arena a;
  std::size_t cap1 = 0, cap2 = 0;
  std::byte* p = a.acquire(5000, cap1);
  std::byte* q = a.acquire(50000, cap2);
  auto st = a.stats();
  EXPECT_EQ(st.outstanding_bytes, cap1 + cap2);
  EXPECT_EQ(st.held_bytes, cap1 + cap2);
  EXPECT_EQ(st.high_water_bytes, cap1 + cap2);

  a.release(p, cap1);
  a.release(q, cap2);
  st = a.stats();
  EXPECT_EQ(st.outstanding_bytes, 0u);
  // Released blocks stay pooled: the OS footprint (held) is unchanged, and
  // the peak never drops on release.
  EXPECT_EQ(st.held_bytes, cap1 + cap2);
  EXPECT_EQ(st.high_water_bytes, cap1 + cap2);

  // A pool hit recycles held bytes: no new footprint, no new peak.
  std::size_t cap3 = 0;
  std::byte* r = a.acquire(cap2, cap3);
  EXPECT_EQ(a.stats().held_bytes, cap1 + cap2);
  EXPECT_EQ(a.stats().high_water_bytes, cap1 + cap2);
  a.release(r, cap3);

  a.trim();
  st = a.stats();
  EXPECT_EQ(st.held_bytes, 0u);
  EXPECT_EQ(st.high_water_bytes, cap1 + cap2);  // trim never lowers the peak

  a.reset_high_water();
  EXPECT_EQ(a.stats().high_water_bytes, 0u);  // restarts from held (now 0)
}

TEST(Arena, TrimAllReleasesPooledAcrossGlobalArenas) {
  {
    Workspace ws(Arena::instance());
    (void)ws.make<float>(4096);
    Workspace ws3(Arena::shard(3));
    (void)ws3.make<float>(4096);
  }
  const auto before = Arena::aggregate_stats();
  EXPECT_GT(before.pooled_bytes, 0u);
  EXPECT_GT(before.held_bytes, 0u);
  EXPECT_GT(before.high_water_bytes, 0u);

  const std::size_t released = Arena::trim_all();
  EXPECT_GT(released, 0u);
  const auto after = Arena::aggregate_stats();
  EXPECT_EQ(after.pooled_bytes, 0u);
  EXPECT_EQ(after.held_bytes, before.held_bytes - released);
  EXPECT_GE(after.high_water_bytes, before.high_water_bytes);

  Arena::reset_high_water_all();
  const auto reset = Arena::aggregate_stats();
  EXPECT_EQ(reset.high_water_bytes, reset.held_bytes);
}

}  // namespace
