// Device substrate tests: pool scheduling, exception propagation, scan /
// reduce / compaction correctness, index arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "device/compaction.hh"
#include "device/dims.hh"
#include "device/launch.hh"
#include "device/reduce.hh"
#include "device/scan.hh"
#include "device/thread_pool.hh"

namespace {

using namespace szi::dev;

TEST(Dims, LinearizeRoundTrip) {
  const Dim3 dims{7, 5, 3};
  for (std::size_t i = 0; i < dims.volume(); ++i) {
    const Coord3 c = delinearize(dims, i);
    EXPECT_EQ(linearize(dims, c.x, c.y, c.z), i);
  }
}

TEST(Dims, Rank) {
  EXPECT_EQ((Dim3{5, 1, 1}.rank()), 1);
  EXPECT_EQ((Dim3{5, 2, 1}.rank()), 2);
  EXPECT_EQ((Dim3{5, 1, 2}.rank()), 3);  // z > 1 forces rank 3
  EXPECT_EQ((Dim3{1, 1, 1}.rank()), 1);
}

TEST(Dims, GridFor) {
  const Dim3 g = grid_for({65, 8, 9}, {32, 8, 8});
  EXPECT_EQ(g, (Dim3{3, 1, 2}));
}

TEST(ThreadPool, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManySmallLaunches) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(round + 1, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(),
              static_cast<std::size_t>(round) * (round + 1) / 2);
  }
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   1000,
                   [&](std::size_t i) {
                     if (i == 567) throw std::runtime_error("boom");
                   },
                   1),
               std::runtime_error);
  // Pool must stay usable after a failed launch.
  std::atomic<int> n{0};
  pool.parallel_for(100, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, NestedLaunchRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.parallel_for(8, [&](std::size_t) {
    // A kernel launching a kernel must not deadlock the pool.
    ThreadPool::instance().parallel_for(10, [&](std::size_t) { n++; });
  });
  EXPECT_EQ(n.load(), 80);
}

TEST(Scan, MatchesSerial) {
  std::vector<std::uint64_t> in(100001);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = (i * 37) % 11;
  std::vector<std::uint64_t> out(in.size());
  const auto total = exclusive_scan<std::uint64_t>(in, out, 1000);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], acc);
    acc += in[i];
  }
  EXPECT_EQ(total, acc);
}

TEST(Scan, EmptyAndSingle) {
  std::vector<int> in, out;
  EXPECT_EQ(exclusive_scan<int>(in, out), 0);
  in = {42};
  out.resize(1);
  EXPECT_EQ(exclusive_scan<int>(in, out), 42);
  EXPECT_EQ(out[0], 0);
}

TEST(Reduce, SumAndMinMax) {
  std::vector<float> v(54321);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<float>((i * 7919) % 1000) - 500.0f;
  const auto mm = minmax<float>(v);
  EXPECT_EQ(mm.min, *std::min_element(v.begin(), v.end()));
  EXPECT_EQ(mm.max, *std::max_element(v.begin(), v.end()));
  std::vector<double> dv(v.begin(), v.end());
  const auto s = reduce<double>(dv, 0.0, [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(s, std::accumulate(v.begin(), v.end(), 0.0));
}

TEST(Compaction, OrderPreserving) {
  const std::size_t n = 100000;
  std::vector<std::size_t> picked;
  std::vector<std::size_t> out(n);
  const auto total = compact_indices(
      n, [](std::size_t i) { return i % 7 == 0; },
      [&](std::size_t i, std::size_t slot) { out[slot] = i; }, 1024);
  EXPECT_EQ(total, (n + 6) / 7);
  for (std::size_t k = 0; k + 1 < total; ++k) EXPECT_LT(out[k], out[k + 1]);
  for (std::size_t k = 0; k < total; ++k) EXPECT_EQ(out[k] % 7, 0u);
}

TEST(Compaction, UnorderedCountsMatch) {
  const std::size_t n = 50000;
  std::vector<char> seen(n, 0);
  const auto total = compact_indices_unordered(
      n, [](std::size_t i) { return i % 3 == 1; },
      [&](std::size_t i, std::size_t) { seen[i] = 1; });
  EXPECT_EQ(total, n / 3 + (n % 3 >= 2 ? 1 : 0));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i] == 1, i % 3 == 1);
}

TEST(Launch, BlocksCoverGrid) {
  std::atomic<std::size_t> count{0};
  std::vector<std::atomic<int>> hit(3 * 4 * 5);
  launch_blocks({3, 4, 5}, [&](const BlockIdx& b) {
    count++;
    hit[b.linear]++;
    EXPECT_EQ(b.linear, (b.z * 4 + b.y) * 3 + b.x);
  });
  EXPECT_EQ(count.load(), 60u);
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

// The decoders rely on exceptions thrown inside plain (synchronous) launch
// workers reaching the caller — e.g. huffman::decode_chunks throwing
// core::CorruptArchive from a pool worker. The Stream tests cover the async
// poisoning path; these cover the sync launches.
TEST(Launch, LinearExceptionPropagatesToCaller) {
  EXPECT_THROW(
      launch_linear(
          10000,
          [](std::size_t i) {
            if (i == 8191) throw std::invalid_argument("bad element");
          },
          16),
      std::invalid_argument);
}

TEST(Launch, BlocksExceptionPropagatesToCaller) {
  EXPECT_THROW(launch_blocks({8, 8, 8},
                             [](const BlockIdx& b) {
                               if (b.linear == 300)
                                 throw std::runtime_error("bad block");
                             }),
               std::runtime_error);
}

TEST(Launch, LaunchUsableAfterWorkerException) {
  try {
    launch_linear(
        1000, [](std::size_t) { throw std::runtime_error("poison"); }, 8);
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error&) {
  }
  // The pool must survive a throwing launch: later launches run normally.
  std::atomic<std::size_t> count{0};
  launch_linear(1000, [&](std::size_t) { count++; }, 8);
  EXPECT_EQ(count.load(), 1000u);
}

}  // namespace
