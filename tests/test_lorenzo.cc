// Lorenzo dual-quant predictor tests (§III-A, cuSZ baseline).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "datagen/rng.hh"
#include "metrics/stats.hh"
#include "predictor/lorenzo.hh"

namespace {

using szi::dev::Dim3;
using szi::predictor::lorenzo_compress;
using szi::predictor::lorenzo_decompress;

std::vector<float> wave_field(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  const double f = rng.uniform(0.02, 0.2);
  std::vector<float> v(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        v[szi::dev::linearize(dims, x, y, z)] = static_cast<float>(
            std::sin(f * (x + 2.0 * y + 3.0 * z)) + 0.1 * rng.gaussian());
  return v;
}

TEST(Lorenzo, RoundTrip3D) {
  const Dim3 dims{41, 23, 17};
  const auto data = wave_field(dims, 11);
  const double eb = 1e-3;
  const auto enc = lorenzo_compress(data, dims, eb);
  const auto dec = lorenzo_decompress(enc.codes, enc.outliers, dims, eb);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(Lorenzo, RoundTrip2D) {
  const Dim3 dims{129, 65, 1};
  const auto data = wave_field(dims, 12);
  const double eb = 1e-4;
  const auto enc = lorenzo_compress(data, dims, eb);
  const auto dec = lorenzo_decompress(enc.codes, enc.outliers, dims, eb);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(Lorenzo, RoundTrip1D) {
  const Dim3 dims{5000, 1, 1};
  const auto data = wave_field(dims, 13);
  const double eb = 1e-3;
  const auto enc = lorenzo_compress(data, dims, eb);
  const auto dec = lorenzo_decompress(enc.codes, enc.outliers, dims, eb);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(Lorenzo, ConstantFieldIsAllZeroCodes) {
  const Dim3 dims{32, 32, 8};
  std::vector<float> data(dims.volume(), 4.25f);
  const auto enc = lorenzo_compress(data, dims, 1e-3);
  // d_i identical -> every Lorenzo residual except the first is 0; the first
  // equals d_0 = round(4.25/2e-3), which escapes the radius as an outlier.
  EXPECT_LE(enc.outliers.count(), 1u);
  std::size_t nonzero = 0;
  for (std::size_t i = 1; i < enc.codes.size(); ++i)
    if (enc.codes[i] != szi::quant::kDefaultRadius) ++nonzero;
  EXPECT_EQ(nonzero, 0u);
}

TEST(Lorenzo, SpikesBecomeOutliersAndStayExactWithinBound) {
  const Dim3 dims{30, 20, 10};
  auto data = wave_field(dims, 14);
  data[1234] += 500.0f;
  data[42] -= 900.0f;
  const double eb = 1e-4;
  const auto enc = lorenzo_compress(data, dims, eb);
  EXPECT_GT(enc.outliers.count(), 0u);
  const auto dec = lorenzo_decompress(enc.codes, enc.outliers, dims, eb);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(Lorenzo, RejectsBadArguments) {
  std::vector<float> data(10);
  EXPECT_THROW(lorenzo_compress(data, Dim3{11, 1, 1}, 1e-3),
               std::invalid_argument);
  EXPECT_THROW(lorenzo_compress(data, Dim3{10, 1, 1}, 0.0),
               std::invalid_argument);
}

class LorenzoSweep
    : public ::testing::TestWithParam<std::tuple<Dim3, double>> {};

TEST_P(LorenzoSweep, ErrorBoundHolds) {
  const auto& [dims, eb] = GetParam();
  const auto data = wave_field(dims, dims.volume());
  const auto enc = lorenzo_compress(data, dims, eb);
  const auto dec = lorenzo_decompress(enc.codes, enc.outliers, dims, eb);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBounds, LorenzoSweep,
    ::testing::Combine(::testing::Values(Dim3{16, 16, 16}, Dim3{31, 17, 5},
                                         Dim3{64, 64, 1}, Dim3{999, 1, 1},
                                         Dim3{2, 2, 2}, Dim3{1, 1, 1}),
                       ::testing::Values(1e-2, 1e-3, 1e-5)));

}  // namespace
