// Deterministic archive mutator shared by the decode-fuzz tests.
//
// Each call applies one seeded mutation drawn from the classes that have
// historically broken archive decoders:
//   - bit-flip bursts (random corruption anywhere in the stream),
//   - truncations (partial writes / short reads),
//   - length-field inflation (huge u64/u32 counts that overflow n * elem_size
//     products or drive over-allocation),
//   - span fills (zeroed or saturated regions, e.g. torn pages).
//
// The mutator is pure: same RNG state in, same mutant out, so any failing
// trial is reproducible from its (seed, trial) pair alone.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "datagen/rng.hh"

namespace szi::testing {

/// Huge counts chosen to probe distinct failure modes: the first wraps
/// n * 8 to zero on 64-bit size_t, the middle ones overflow more general
/// products, the last is a "merely absurd" allocation request.
inline constexpr std::uint64_t kInflatedLengths[] = {
    0x2000000000000000ULL,  // * 8 == 2^64: defeats unchecked length checks
    0xFFFFFFFFFFFFFFFFULL,  // all-ones
    0x8000000000000000ULL,  // sign-bit corner for size_t/int64 confusion
    0x0000000100000000ULL,  // 4 Gi elements: passes 32-bit checks, huge alloc
};

/// Applies one seeded mutation to a copy of `original`. Never returns the
/// input unchanged unless the archive is empty.
inline std::vector<std::byte> mutate_archive(
    std::span<const std::byte> original, datagen::Rng& rng) {
  std::vector<std::byte> bytes(original.begin(), original.end());
  if (bytes.empty()) return bytes;

  const auto pick_offset = [&](std::size_t width) {
    return bytes.size() > width
               ? static_cast<std::size_t>(rng.next_u64() %
                                          (bytes.size() - width + 1))
               : std::size_t{0};
  };

  switch (rng.next_u64() % 6) {
    case 0: {  // bit-flip burst
      const int flips = 1 + static_cast<int>(rng.next_u64() % 16);
      for (int k = 0; k < flips; ++k) {
        const std::size_t pos = pick_offset(1);
        bytes[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
      }
      break;
    }
    case 1: {  // truncation (including to zero)
      bytes.resize(static_cast<std::size_t>(rng.next_u64() % bytes.size()));
      break;
    }
    case 2: {  // u64 length-field inflation
      const std::uint64_t v =
          kInflatedLengths[rng.next_u64() %
                           (sizeof(kInflatedLengths) / sizeof(std::uint64_t))];
      const std::size_t pos = pick_offset(sizeof(v));
      std::memcpy(bytes.data() + pos, &v,
                  std::min(sizeof(v), bytes.size() - pos));
      break;
    }
    case 3: {  // u32 length-field inflation
      const std::uint32_t v = 0xFFFFFFFFu;
      const std::size_t pos = pick_offset(sizeof(v));
      std::memcpy(bytes.data() + pos, &v,
                  std::min(sizeof(v), bytes.size() - pos));
      break;
    }
    case 4: {  // zero-fill span
      const std::size_t pos = pick_offset(1);
      const std::size_t len =
          std::min<std::size_t>(1 + rng.next_u64() % 64, bytes.size() - pos);
      std::memset(bytes.data() + pos, 0, len);
      break;
    }
    default: {  // 0xFF-fill span
      const std::size_t pos = pick_offset(1);
      const std::size_t len =
          std::min<std::size_t>(1 + rng.next_u64() % 64, bytes.size() - pos);
      std::memset(bytes.data() + pos, 0xFF, len);
      break;
    }
  }
  return bytes;
}

}  // namespace szi::testing
