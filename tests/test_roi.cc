// Random-access (ROI) decode: every box must be bit-identical to the same
// crop of the full decompress — raw and 'BBC2'-wrapped, f32 and f64 — while
// the indexed path reads only a fraction of the archive. Archives the tile
// index cannot steer (legacy SZI1, pre-index SZI2, wrapped SZI1) fall back
// to full decode + crop through the same entry points, and every
// ArchiveSource backend (memory, mmap, pread) returns the same bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <vector>

#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "io/archive_source.hh"
#include "io/bin_io.hh"
#include "predictor/ginterp.hh"

namespace {

namespace fs = std::filesystem;

using szi::CompressParams;
using szi::ErrorMode;
using szi::RoiBox;
using szi::dev::Dim3;

template <typename T>
std::vector<T> crop(const std::vector<T>& full, const Dim3& dims,
                    const RoiBox& box) {
  std::vector<T> out(box.ext.volume());
  for (std::size_t z = 0; z < box.ext.z; ++z)
    for (std::size_t y = 0; y < box.ext.y; ++y)
      std::memcpy(
          out.data() + szi::dev::linearize(box.ext, 0, y, z),
          full.data() + szi::dev::linearize(dims, box.lo.x, box.lo.y + y,
                                            box.lo.z + z),
          box.ext.x * sizeof(T));
  return out;
}

/// Directory surgery: rewrite an indexed SZI2 archive as its pre-index
/// form — drop the trailing TIDX entry and payload, shift the remaining
/// segment offsets back by one directory row. Minting these proves the
/// fallback contract without keeping an old writer around.
std::vector<std::byte> strip_tidx(std::span<const std::byte> bytes) {
  const auto segs = szi::cuszi_archive_segments(bytes);
  EXPECT_EQ(segs.back().kind, 3);
  constexpr std::size_t kFixed = 53;   // inner header through PackedConfig
  constexpr std::size_t kEntry = 32;   // directory row stride
  const auto nseg = static_cast<std::uint32_t>(segs.size());
  std::vector<std::byte> out(bytes.begin(), bytes.begin() + kFixed);
  const std::uint32_t n2 = nseg - 1;
  out.resize(kFixed + sizeof(n2));
  std::memcpy(out.data() + kFixed, &n2, sizeof(n2));
  for (std::uint32_t i = 0; i < n2; ++i) {
    std::byte entry[kEntry];
    std::memcpy(entry, bytes.data() + kFixed + 4 + i * kEntry, kEntry);
    std::uint64_t off = 0;
    std::memcpy(&off, entry + 16, sizeof(off));
    off -= kEntry;
    std::memcpy(entry + 16, &off, sizeof(off));
    out.insert(out.end(), entry, entry + kEntry);
  }
  // Payloads, minus the trailing tile-index payload.
  out.insert(out.end(),
             bytes.begin() + static_cast<std::ptrdiff_t>(segs[0].offset),
             bytes.begin() + static_cast<std::ptrdiff_t>(segs.back().offset));
  return out;
}

/// Every box — interior, origin corner, far corner, 1-wide slivers, the
/// whole field — decodes bit-identical to the cropped full decompress, raw
/// and wrapped, with the tile index steering both.
TEST(Roi, MatchesCroppedFullDecode) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();  // 128 x 128 x 96
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const auto wrapped = szi::bitcomp_wrap_archive(bytes);
  const auto full = szi::cuszi_decompress_f32(bytes);
  const std::vector<RoiBox> boxes = {
      {{40, 33, 21}, {32, 32, 32}},                    // interior, unaligned
      {{0, 0, 0}, {16, 16, 16}},                       // origin corner
      {{128 - 17, 128 - 5, 96 - 9}, {17, 5, 9}},       // far corner
      {{63, 0, 0}, {1, 128, 96}},                      // 1-wide x sliver
      {{0, 0, 47}, {128, 128, 1}},                     // single z-plane
      {{0, 0, 0}, {128, 128, 96}},                     // whole field
  };
  for (const auto& box : boxes) {
    const auto want = crop(full, f.dims, box);
    const auto r = szi::cuszi_decompress_roi_f32(bytes, box);
    EXPECT_TRUE(r.indexed);
    EXPECT_EQ(r.dims, box.ext);
    ASSERT_EQ(r.data.size(), want.size());
    EXPECT_EQ(0, std::memcmp(r.data.data(), want.data(),
                             want.size() * sizeof(float)))
        << "box lo=(" << box.lo.x << "," << box.lo.y << "," << box.lo.z << ")";
    const auto rw = szi::cuszi_decompress_roi_f32(wrapped, box);
    EXPECT_TRUE(rw.indexed);
    ASSERT_EQ(rw.data.size(), want.size());
    EXPECT_EQ(0, std::memcmp(rw.data.data(), want.data(),
                             want.size() * sizeof(float)));
  }
}

/// The point of the index: a small box touches a small fraction of the
/// archive. Headers, directory, anchors, and the whole outlier blob are
/// fixed overhead, so the bound here is loose; bench/roi checks the paper
/// target (<= 10% for a 64^3 box of the full-size field).
TEST(Roi, SmallBoxReadsSmallFractionOfArchive) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const RoiBox box{{48, 48, 32}, {16, 16, 16}};
  const auto r = szi::cuszi_decompress_roi_f32(bytes, box);
  EXPECT_TRUE(r.indexed);
  EXPECT_GT(r.bytes_read, 0u);
  EXPECT_LT(r.bytes_read, bytes.size() / 2);
  // The wrapped archive reads only covering LZSS blocks. 64 KiB block
  // granularity dominates on this small archive (a couple of blocks span
  // most of it), so only strict improvement is asserted here; the bench
  // measures the real fraction on the paper-size field.
  const auto wrapped = szi::bitcomp_wrap_archive(bytes);
  const auto rw = szi::cuszi_decompress_roi_f32(wrapped, box);
  EXPECT_TRUE(rw.indexed);
  EXPECT_LT(rw.bytes_read, wrapped.size());
}

/// f64 archives steer through the identical index.
TEST(Roi, F64MatchesCroppedFullDecode) {
  const Dim3 dims{96, 80, 64};
  std::vector<double> data(dims.volume());
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x, ++i)
        data[i] = std::sin(0.07 * static_cast<double>(x)) *
                      std::cos(0.05 * static_cast<double>(y)) +
                  0.3 * std::sin(0.11 * static_cast<double>(z));
  const auto bytes = szi::cuszi_compress(std::span<const double>(data), dims,
                                         {ErrorMode::Rel, 1e-4});
  const auto full = szi::cuszi_decompress_f64(bytes);
  const RoiBox box{{17, 9, 30}, {40, 33, 20}};
  const auto want = crop(full, dims, box);
  const auto r = szi::cuszi_decompress_roi_f64(bytes, box);
  EXPECT_TRUE(r.indexed);
  ASSERT_EQ(r.data.size(), want.size());
  EXPECT_EQ(0, std::memcmp(r.data.data(), want.data(),
                           want.size() * sizeof(double)));
  const auto rw =
      szi::cuszi_decompress_roi_f64(szi::bitcomp_wrap_archive(bytes), box);
  EXPECT_TRUE(rw.indexed);
  EXPECT_EQ(0, std::memcmp(rw.data.data(), want.data(),
                           want.size() * sizeof(double)));
}

/// Archives without a tile index still serve ROI requests — legacy SZI1,
/// surgically de-indexed SZI2, and wrapped SZI1 all fall back to full
/// decode + crop (indexed=false, whole archive read).
TEST(Roi, PreIndexArchivesFallBackToFullDecode) {
  const auto fields =
      szi::datagen::make_dataset("s3d", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const CompressParams p{ErrorMode::Rel, 1e-3};
  const auto v2 = szi::cuszi_compress(std::span<const float>(f.data), f.dims, p);
  const auto full = szi::cuszi_decompress_f32(v2);
  const RoiBox box{{10, 20, 30}, {24, 24, 24}};
  const auto want = crop(full, f.dims, box);

  // Pre-index SZI2: same stream contents, directory one row shorter.
  const auto pre = strip_tidx(v2);
  const auto dec_pre = szi::cuszi_decompress_f32(pre);
  ASSERT_EQ(dec_pre.size(), full.size());
  EXPECT_EQ(0, std::memcmp(dec_pre.data(), full.data(),
                           full.size() * sizeof(float)));
  const auto r_pre = szi::cuszi_decompress_roi_f32(pre, box);
  EXPECT_FALSE(r_pre.indexed);
  ASSERT_EQ(r_pre.data.size(), want.size());
  EXPECT_EQ(0, std::memcmp(r_pre.data.data(), want.data(),
                           want.size() * sizeof(float)));

  // Legacy SZI1 and its wrapped form: same field, so same crop.
  const auto v1 = szi::cuszi_compress_v1(std::span<const float>(f.data),
                                         f.dims, p);
  const auto full1 = szi::cuszi_decompress_f32(v1);
  const auto want1 = crop(full1, f.dims, box);
  const auto r1 = szi::cuszi_decompress_roi_f32(v1, box);
  EXPECT_FALSE(r1.indexed);
  EXPECT_GE(r1.bytes_read, v1.size());  // magic peek + whole-archive read
  ASSERT_EQ(r1.data.size(), want1.size());
  EXPECT_EQ(0, std::memcmp(r1.data.data(), want1.data(),
                           want1.size() * sizeof(float)));
  const auto r1w =
      szi::cuszi_decompress_roi_f32(szi::bitcomp_wrap_archive(v1), box);
  EXPECT_FALSE(r1w.indexed);
  EXPECT_EQ(0, std::memcmp(r1w.data.data(), want1.data(),
                           want1.size() * sizeof(float)));
}

/// Memory, mmap, and pread sources return the identical box; file-backed
/// sources never need the archive in RAM.
TEST(Roi, AllArchiveSourcesAgree) {
  const auto fields =
      szi::datagen::make_dataset("nyx", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  const fs::path dir = fs::temp_directory_path() /
                       ("szi_roi_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto path = (dir / "a.szi").string();
  szi::io::write_bytes(path, bytes);

  const RoiBox box{{30, 40, 50}, {20, 24, 28}};
  const auto rm = szi::cuszi_decompress_roi_f32(bytes, box);
  EXPECT_TRUE(rm.indexed);
  {
    szi::io::MmapSource src(path);
    auto r = szi::cuszi_decompress_roi_f32(src, box);
    EXPECT_TRUE(r.indexed);
    EXPECT_EQ(r.data, rm.data);
    EXPECT_EQ(r.bytes_read, rm.bytes_read);
  }
  {
    szi::io::StreamSource src(path);
    auto r = szi::cuszi_decompress_roi_f32(src, box);
    EXPECT_TRUE(r.indexed);
    EXPECT_EQ(r.data, rm.data);
    EXPECT_EQ(r.bytes_read, rm.bytes_read);
  }
  {
    auto src = szi::io::open_archive(path);
    auto r = szi::cuszi_decompress_roi_f32(*src, box);
    EXPECT_EQ(r.data, rm.data);
  }
  fs::remove_all(dir);
}

/// Degenerate and out-of-range boxes are rejected up front — indexed and
/// fallback paths alike — and baseline compressors report no ROI support.
TEST(Roi, RejectsBadBoxesAndUnsupportedCompressors) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const CompressParams p{ErrorMode::Rel, 1e-3};
  const auto v2 = szi::cuszi_compress(std::span<const float>(f.data), f.dims, p);
  const auto v1 = szi::cuszi_compress_v1(std::span<const float>(f.data),
                                         f.dims, p);
  for (const auto& box : std::vector<RoiBox>{
           {{0, 0, 0}, {0, 8, 8}},        // empty extent
           {{0, 0, 0}, {129, 8, 8}},      // wider than the field
           {{128, 0, 0}, {1, 1, 1}},      // origin past the edge
           {{120, 0, 0}, {16, 8, 8}},     // spills past the edge
       }) {
    EXPECT_THROW((void)szi::cuszi_decompress_roi_f32(v2, box),
                 std::invalid_argument);
    EXPECT_THROW((void)szi::cuszi_decompress_roi_f32(v1, box),
                 std::invalid_argument);
  }
  // Through the Compressor interface: cuSZ-i serves ROI (wrapped too),
  // baselines throw the not-supported error.
  auto cuszi = szi::make_cuszi();
  const auto r = cuszi->decompress_roi(v2, {{8, 8, 8}, {16, 16, 16}});
  EXPECT_TRUE(r.indexed);
  auto sz3 = szi::baselines::make_compressor("sz3");
  const auto a = sz3->compress(f, p);
  EXPECT_THROW((void)sz3->decompress_roi(a.bytes, {{0, 0, 0}, {8, 8, 8}}),
               std::invalid_argument);
}

/// ROI reads are byte-identical across worker counts: the slab fan-out
/// changes scheduling, never values. (CI sweeps SZI_THREADS over this
/// suite; within one process the pool size is fixed, so this guards the
/// sequential/overlapped boundary via a 1-slab box vs a many-slab box.)
TEST(Roi, ManySlabBoxMatchesSingleSlabUnion) {
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const auto bytes = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {ErrorMode::Rel, 1e-3});
  // One tall box spanning many z-slabs...
  const RoiBox tall{{32, 32, 0}, {32, 32, 96}};
  const auto rt = szi::cuszi_decompress_roi_f32(bytes, tall);
  // ...must equal the concatenation of its single-slab slices.
  const std::size_t slab_z = 8;  // 3D tile depth
  for (std::size_t z0 = 0; z0 < 96; z0 += slab_z) {
    const RoiBox slice{{32, 32, z0}, {32, 32, slab_z}};
    const auto rs = szi::cuszi_decompress_roi_f32(bytes, slice);
    EXPECT_EQ(0, std::memcmp(
                     rs.data.data(),
                     rt.data.data() + z0 * 32 * 32,
                     rs.data.size() * sizeof(float)))
        << "slab at z=" << z0;
  }
}

}  // namespace
