// Double-precision cuSZ-i pipeline tests: the typed API must honor error
// bounds far below float precision, reject cross-precision decodes, and
// share the archive format (precision byte aside) with the f32 path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cuszi.hh"
#include "datagen/rng.hh"
#include "metrics/stats.hh"

namespace {

using szi::CompressParams;
using szi::dev::Dim3;
using szi::ErrorMode;

std::vector<double> smooth_f64(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  const double fx = rng.uniform(0.02, 0.1), fy = rng.uniform(0.02, 0.1),
               fz = rng.uniform(0.02, 0.1);
  std::vector<double> v(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        v[szi::dev::linearize(dims, x, y, z)] =
            std::sin(fx * x) * std::cos(fy * y) + 0.4 * std::sin(fz * z);
  return v;
}

TEST(CusziF64, RoundTripRelMode) {
  const Dim3 dims{80, 64, 40};
  const auto data = smooth_f64(dims, 1);
  const double rel = 1e-4;
  const auto bytes = szi::cuszi_compress(data, dims, {ErrorMode::Rel, rel});
  const auto dec = szi::cuszi_decompress_f64(bytes);
  ASSERT_EQ(dec.size(), data.size());
  const double eb = rel * szi::metrics::value_range(data);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(CusziF64, HonorsBoundsBelowFloatPrecision) {
  // eb 1e-9 on O(1) values is unrepresentable in f32 archives; the f64
  // pipeline must deliver it.
  const Dim3 dims{40, 32, 16};
  const auto data = smooth_f64(dims, 2);
  const double eb = 1e-9;
  const auto bytes = szi::cuszi_compress(data, dims, {ErrorMode::Abs, eb});
  const auto dec = szi::cuszi_decompress_f64(bytes);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
  double max_err = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    max_err = std::max(max_err, std::abs(data[i] - dec[i]));
  EXPECT_LE(max_err, eb * (1 + 1e-6) + 4e-16);
}

TEST(CusziF64, ArchiveDeclaresPrecision) {
  const Dim3 dims{24, 24, 24};
  const auto d64 = smooth_f64(dims, 3);
  std::vector<float> d32(d64.begin(), d64.end());
  const auto a64 = szi::cuszi_compress(d64, dims, {ErrorMode::Rel, 1e-3});
  const auto a32 = szi::cuszi_compress(std::span<const float>(d32), dims,
                                       {ErrorMode::Rel, 1e-3});
  EXPECT_EQ(szi::cuszi_archive_precision(a64), szi::Precision::F64);
  EXPECT_EQ(szi::cuszi_archive_precision(a32), szi::Precision::F32);
}

TEST(CusziF64, RejectsCrossPrecisionDecode) {
  const Dim3 dims{24, 24, 24};
  const auto d64 = smooth_f64(dims, 4);
  std::vector<float> d32(d64.begin(), d64.end());
  const auto a64 = szi::cuszi_compress(d64, dims, {ErrorMode::Rel, 1e-3});
  const auto a32 = szi::cuszi_compress(std::span<const float>(d32), dims,
                                       {ErrorMode::Rel, 1e-3});
  EXPECT_THROW((void)szi::cuszi_decompress_f32(a64), std::runtime_error);
  EXPECT_THROW((void)szi::cuszi_decompress_f64(a32), std::runtime_error);
}

TEST(CusziF64, CompressesSmoothDoubleDataWell) {
  const Dim3 dims{96, 64, 48};
  const auto data = smooth_f64(dims, 5);
  const auto bytes = szi::cuszi_compress(data, dims, {ErrorMode::Rel, 1e-3});
  const double cr = szi::metrics::compression_ratio(
      data.size() * sizeof(double), bytes.size());
  EXPECT_GT(cr, 40.0);  // f64 input doubles the numerator
}

TEST(CusziF64, ExtremeDynamicRange) {
  const Dim3 dims{32, 32, 32};
  auto data = smooth_f64(dims, 6);
  for (auto& v : data) v = std::exp(12.0 * v);  // ~10 orders of magnitude
  const double rel = 1e-5;
  const auto bytes = szi::cuszi_compress(data, dims, {ErrorMode::Rel, rel});
  const auto dec = szi::cuszi_decompress_f64(bytes);
  EXPECT_TRUE(szi::metrics::error_bounded(
      data, dec, rel * szi::metrics::value_range(data)));
}

TEST(CusziF64, TimingsPopulated) {
  const Dim3 dims{32, 32, 32};
  const auto data = smooth_f64(dims, 7);
  szi::StageTimings t;
  (void)szi::cuszi_compress(data, dims, {ErrorMode::Rel, 1e-3}, &t);
  EXPECT_GT(t.total, 0.0);
  EXPECT_GT(t.predict, 0.0);
}

}  // namespace
