// End-to-end cuSZ-i pipeline tests: round trips over real generator output,
// error-bound modes, archive robustness, and the de-redundancy wrapper.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;

szi::Field small_field(const std::string& dataset) {
  auto fields = szi::datagen::make_dataset(dataset, szi::datagen::Size::Small);
  auto f = std::move(fields.front());
  return f;
}

TEST(Cuszi, RoundTripAbsMode) {
  auto c = szi::make_cuszi();
  const auto f = small_field("miranda");
  const double eb = 1e-3;
  const auto enc = c->compress(f, {ErrorMode::Abs, eb});
  const auto dec = c->decompress(enc.bytes);
  ASSERT_EQ(dec.size(), f.size());
  EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, eb));
}

TEST(Cuszi, RoundTripRelMode) {
  auto c = szi::make_cuszi();
  const auto f = small_field("nyx");  // huge dynamic range
  const double rel = 1e-3;
  const auto range = szi::metrics::value_range(f.data);
  const auto enc = c->compress(f, {ErrorMode::Rel, rel});
  const auto dec = c->decompress(enc.bytes);
  EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, rel * range));
}

TEST(Cuszi, CompressesSmoothDataWell) {
  auto c = szi::make_cuszi();
  const auto f = small_field("miranda");
  const auto enc = c->compress(f, {ErrorMode::Rel, 1e-3});
  const double cr = szi::metrics::compression_ratio(f.bytes(), enc.bytes.size());
  EXPECT_GT(cr, 20.0) << "Miranda at 1e-3 should compress well";
}

TEST(Cuszi, RejectsFixedRate) {
  auto c = szi::make_cuszi();
  const auto f = small_field("qmcpack");
  EXPECT_THROW((void)c->compress(f, {ErrorMode::FixedRate, 4.0}),
               std::invalid_argument);
}

TEST(Cuszi, ThrowsOnCorruptArchive) {
  auto c = szi::make_cuszi();
  const auto f = small_field("rtm");
  auto enc = c->compress(f, {ErrorMode::Rel, 1e-2});
  enc.bytes[0] = std::byte{0xFF};  // break the magic
  EXPECT_THROW((void)c->decompress(enc.bytes), std::runtime_error);
  auto enc2 = c->compress(f, {ErrorMode::Rel, 1e-2});
  enc2.bytes.resize(enc2.bytes.size() / 3);
  EXPECT_THROW((void)c->decompress(enc2.bytes), std::runtime_error);
}

TEST(Cuszi, TimingsArePopulated) {
  auto c = szi::make_cuszi();
  const auto f = small_field("s3d");
  const auto enc = c->compress(f, {ErrorMode::Rel, 1e-3});
  EXPECT_GT(enc.timings.total, 0.0);
  EXPECT_GT(enc.timings.predict, 0.0);
  EXPECT_LE(enc.timings.kernel_time(), enc.timings.total);
  double dec_s = -1;
  (void)c->decompress(enc.bytes, &dec_s);
  EXPECT_GT(dec_s, 0.0);
}

TEST(Cuszi, TopkAndBaselineHistogramsAgreeByteForByte) {
  const auto f = small_field("jhtdb");
  auto a = szi::make_cuszi(true)->compress(f, {ErrorMode::Rel, 1e-3});
  auto b = szi::make_cuszi(false)->compress(f, {ErrorMode::Rel, 1e-3});
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(CusziBitcomp, WrapperRoundTripsAndShrinks) {
  auto plain = szi::make_cuszi();
  auto wrapped = szi::with_bitcomp(szi::make_cuszi());
  const auto f = small_field("s3d");  // mostly-zero CO field: best case
  const CompressParams p{ErrorMode::Rel, 1e-2};
  const auto a = plain->compress(f, p);
  const auto b = wrapped->compress(f, p);
  EXPECT_LT(b.bytes.size(), a.bytes.size());
  const auto dec = wrapped->decompress(b.bytes);
  const auto range = szi::metrics::value_range(f.data);
  EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, 1e-2 * range));
  EXPECT_EQ(wrapped->name(), "cuSZ-i w/ Bitcomp");
}

TEST(CusziBitcomp, WrapperRejectsPlainArchive) {
  auto plain = szi::make_cuszi();
  auto wrapped = szi::with_bitcomp(szi::make_cuszi());
  const auto f = small_field("miranda");
  const auto enc = plain->compress(f, {ErrorMode::Rel, 1e-3});
  EXPECT_THROW((void)wrapped->decompress(enc.bytes), std::runtime_error);
}

// Every dataset x error bound must round-trip within bound — the paper's
// TABLE III grid as a correctness property.
class CusziDatasetSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(CusziDatasetSweep, ErrorBounded) {
  const auto& [dataset, rel] = GetParam();
  auto c = szi::make_cuszi();
  for (const auto& f :
       szi::datagen::make_dataset(dataset, szi::datagen::Size::Small)) {
    const auto enc = c->compress(f, {ErrorMode::Rel, rel});
    const auto dec = c->decompress(enc.bytes);
    const auto range = szi::metrics::value_range(f.data);
    EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, rel * range))
        << f.label();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, CusziDatasetSweep,
    ::testing::Combine(::testing::ValuesIn(szi::datagen::dataset_names()),
                       ::testing::Values(1e-2, 1e-3, 1e-4)));

// A corrupt field mid-batch must fail only its own slot: every other field
// still produces an archive byte-identical to its per-field compress, on
// every worker count (the field after the corrupt one shares its stream).
TEST(CusziBatchChecked, CorruptFieldMidBatchIsIsolated) {
  const auto f = small_field("miranda");
  szi::Field corrupt = f;
  std::fill(corrupt.data.begin(), corrupt.data.end(), 42.f);
  // Constant field + Rel mode: zero value range -> non-positive abs bound.
  const CompressParams p{ErrorMode::Rel, 1e-3};
  const std::vector<szi::FieldView> views{{f.view(), f.dims},
                                          {corrupt.view(), corrupt.dims},
                                          {f.view(), f.dims},
                                          {f.view(), f.dims}};
  const auto direct = szi::cuszi_compress(f.view(), f.dims, p);

  for (std::size_t streams : {std::size_t{1}, std::size_t{2}}) {
    const auto items = szi::cuszi_compress_many_checked(views, p, streams);
    ASSERT_EQ(items.size(), views.size());
    EXPECT_TRUE(items[0].ok());
    EXPECT_FALSE(items[1].ok());
    EXPECT_TRUE(items[2].ok());  // same stream as the corrupt field
    EXPECT_TRUE(items[3].ok());
    EXPECT_EQ(items[0].bytes, direct);
    EXPECT_EQ(items[2].bytes, direct);
    EXPECT_EQ(items[3].bytes, direct);
    EXPECT_TRUE(items[1].bytes.empty());
    EXPECT_THROW(std::rethrow_exception(items[1].error),
                 std::invalid_argument);
  }

  // The unchecked API keeps its legacy contract: first failure rethrows.
  EXPECT_THROW((void)szi::cuszi_compress_many(views, p),
               std::invalid_argument);
}

}  // namespace
