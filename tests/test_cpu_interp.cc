// CPU global-interpolation predictor tests (the SZ3/QoZ reference of
// baselines/cpu_interp.*): bound sweeps, anchor handling, parameter
// validation, and the SZ3-vs-QoZ behavioural contrasts the paper leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/cpu_interp.hh"
#include "datagen/rng.hh"
#include "metrics/stats.hh"
#include "predictor/autotune.hh"

namespace {

using szi::baselines::cpu_interp_compress;
using szi::baselines::cpu_interp_decompress;
using szi::baselines::CpuInterpParams;
using szi::baselines::pow2_at_least;
using szi::dev::Dim3;

std::vector<float> wavy(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  const double f = rng.uniform(0.03, 0.15);
  std::vector<float> v(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        v[szi::dev::linearize(dims, x, y, z)] = static_cast<float>(
            std::sin(f * x) * std::cos(1.3 * f * y) + 0.5 * std::sin(0.7 * f * z));
  return v;
}

CpuInterpParams sz3_params(const Dim3& dims) {
  CpuInterpParams p;
  p.anchor_stride = pow2_at_least(std::max({dims.x, dims.y, dims.z}));
  p.alpha = 1.0;
  return p;
}

TEST(Pow2AtLeast, Values) {
  EXPECT_EQ(pow2_at_least(1), 1u);
  EXPECT_EQ(pow2_at_least(2), 2u);
  EXPECT_EQ(pow2_at_least(3), 4u);
  EXPECT_EQ(pow2_at_least(96), 128u);
  EXPECT_EQ(pow2_at_least(129), 256u);
}

TEST(CpuInterp, RoundTripSz3Style) {
  const Dim3 dims{50, 40, 30};
  const auto data = wavy(dims, 1);
  const double eb = 1e-3;
  const auto p = sz3_params(dims);
  const auto enc = cpu_interp_compress(data, dims, eb, p);
  // SZ3 stores essentially one anchor (the origin).
  EXPECT_EQ(enc.anchors.size(), 1u);
  const auto dec =
      cpu_interp_decompress(enc.codes, enc.anchors, enc.outliers, dims, eb, p);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(CpuInterp, RoundTripQozStyleWithDenseAnchors) {
  const Dim3 dims{70, 50, 40};
  const auto data = wavy(dims, 2);
  const double eb = 1e-4;
  CpuInterpParams p;
  p.anchor_stride = 64;
  p.alpha = 1.5;
  const auto prof = szi::predictor::autotune(data, dims, eb);
  p.config = prof.config;
  const auto enc = cpu_interp_compress(data, dims, eb, p);
  EXPECT_GT(enc.anchors.size(), 1u);
  const auto dec =
      cpu_interp_decompress(enc.codes, enc.anchors, enc.outliers, dims, eb, p);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

TEST(CpuInterp, LevelwiseEbImprovesPsnrAtSameBound) {
  // §V-B.2 via the CPU path: alpha > 1 must raise PSNR versus alpha = 1.
  const Dim3 dims{64, 64, 32};
  const auto data = wavy(dims, 3);
  const double eb = 1e-2 * szi::metrics::value_range(data);
  CpuInterpParams flat;
  flat.anchor_stride = 64;
  flat.alpha = 1.0;
  CpuInterpParams tuned = flat;
  tuned.alpha = 1.75;
  auto psnr_of = [&](const CpuInterpParams& p) {
    const auto enc = cpu_interp_compress(data, dims, eb, p);
    const auto dec = cpu_interp_decompress(enc.codes, enc.anchors,
                                           enc.outliers, dims, eb, p);
    return szi::metrics::distortion(data, dec).psnr;
  };
  EXPECT_GT(psnr_of(tuned), psnr_of(flat) + 1.0);
}

TEST(CpuInterp, RejectsBadParams) {
  const Dim3 dims{16, 16, 16};
  std::vector<float> data(dims.volume());
  CpuInterpParams p = sz3_params(dims);
  EXPECT_THROW(
      (void)cpu_interp_compress(std::span<const float>(data.data(), 7), dims,
                                1e-3, p),
      std::invalid_argument);
  EXPECT_THROW((void)cpu_interp_compress(data, dims, 0.0, p),
               std::invalid_argument);
  p.anchor_stride = 48;  // not a power of two
  EXPECT_THROW((void)cpu_interp_compress(data, dims, 1e-3, p),
               std::invalid_argument);
  p.anchor_stride = 1;
  EXPECT_THROW((void)cpu_interp_compress(data, dims, 1e-3, p),
               std::invalid_argument);
}

class CpuInterpSweep
    : public ::testing::TestWithParam<std::tuple<Dim3, double>> {};

TEST_P(CpuInterpSweep, ErrorBoundHolds) {
  const auto& [dims, eb] = GetParam();
  const auto data = wavy(dims, dims.volume());
  const auto p = sz3_params(dims);
  const auto enc = cpu_interp_compress(data, dims, eb, p);
  const auto dec =
      cpu_interp_decompress(enc.codes, enc.anchors, enc.outliers, dims, eb, p);
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBounds, CpuInterpSweep,
    ::testing::Combine(::testing::Values(Dim3{33, 17, 9}, Dim3{8, 8, 8},
                                         Dim3{100, 3, 1}, Dim3{513, 1, 1},
                                         Dim3{65, 65, 1}),
                       ::testing::Values(1e-2, 1e-4)));

}  // namespace
