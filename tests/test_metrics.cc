// Metrics unit tests: PSNR/NRMSE math against hand-computed values,
// error-bound verification edges, size accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/stats.hh"

namespace {

using szi::metrics::bit_rate;
using szi::metrics::compression_ratio;
using szi::metrics::distortion;
using szi::metrics::error_bounded;
using szi::metrics::value_range;

TEST(Metrics, DistortionKnownValues) {
  // orig in [0, 3] (range 3), every error exactly 0.1 -> mse 0.01,
  // psnr = 20 log10(3) - 10 log10(0.01) = 9.542 + 20 = 29.542.
  std::vector<float> orig{0.0f, 1.0f, 2.0f, 3.0f};
  std::vector<float> recon{0.1f, 1.1f, 2.1f, 3.1f};
  const auto d = distortion(orig, recon);
  EXPECT_NEAR(d.mse, 0.01, 1e-6);
  EXPECT_NEAR(d.range, 3.0, 1e-9);
  EXPECT_NEAR(d.max_err, 0.1, 1e-6);
  EXPECT_NEAR(d.psnr, 20.0 * std::log10(3.0) + 20.0, 1e-3);
  EXPECT_NEAR(d.nrmse, 0.1 / 3.0, 1e-6);
}

TEST(Metrics, PerfectReconstructionIsInfinitePsnr) {
  std::vector<float> v{1.0f, 2.0f, 5.0f};
  const auto d = distortion(v, v);
  EXPECT_TRUE(std::isinf(d.psnr));
  EXPECT_EQ(d.max_err, 0.0);
}

TEST(Metrics, DistortionRejectsSizeMismatch) {
  std::vector<float> a(4), b(5);
  EXPECT_THROW((void)distortion(a, b), std::invalid_argument);
}

TEST(Metrics, ErrorBoundedEdges) {
  std::vector<float> orig{1.0f, 2.0f};
  std::vector<float> within{1.0009f, 1.9991f};
  std::vector<float> outside{1.02f, 2.0f};
  EXPECT_TRUE(error_bounded(orig, within, 1e-3));
  EXPECT_FALSE(error_bounded(orig, outside, 1e-3));
  std::vector<float> other(3);
  EXPECT_FALSE(error_bounded(orig, other, 1.0));  // size mismatch
}

TEST(Metrics, ErrorBoundedUlpToleranceScalesWithMagnitude) {
  // A half-ulp overshoot at magnitude 1e6 (ulp ~ 0.06) must pass even for a
  // tiny absolute bound — the documented GPU float-arithmetic allowance.
  std::vector<float> orig{1.0e6f};
  std::vector<float> recon{std::nextafter(1.0e6f, 2.0e6f)};
  EXPECT_TRUE(error_bounded(orig, recon, 1e-6));
}

TEST(Metrics, ValueRange) {
  std::vector<float> v{-2.0f, 5.0f, 1.0f};
  EXPECT_DOUBLE_EQ(value_range(v), 7.0);
  EXPECT_DOUBLE_EQ(value_range(std::vector<float>{}), 0.0);
  std::vector<double> dv{-2.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(value_range(dv), 7.0);
}

TEST(Metrics, RatioAndBitRate) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 0.0);
  // 1M floats -> 1 MB compressed = 8 bits/value; 32/CR identity.
  EXPECT_DOUBLE_EQ(bit_rate(1u << 20, 1u << 20), 8.0);
  EXPECT_DOUBLE_EQ(bit_rate(0, 10), 0.0);
  const double cr = compression_ratio((1u << 20) * 4, 1u << 20);
  EXPECT_DOUBLE_EQ(32.0 / cr, bit_rate(1u << 20, 1u << 20));
}

TEST(Metrics, DoubleOverloadsAgreeWithFloat) {
  std::vector<float> of{0.5f, 1.5f, 2.5f};
  std::vector<float> rf{0.6f, 1.4f, 2.5f};
  std::vector<double> od(of.begin(), of.end());
  std::vector<double> rd(rf.begin(), rf.end());
  const auto df = distortion(of, rf);
  const auto dd = distortion(od, rd);
  EXPECT_NEAR(df.psnr, dd.psnr, 1e-4);
  EXPECT_NEAR(df.max_err, dd.max_err, 1e-7);
}

}  // namespace
