// Unit tests for the spline formulas (§V-B.1), the geometry table (§V-A),
// Eq. (1)'s α(ε) (§V-C), the level-eb schedule (§V-B.2), the transfer-cost
// model, and the byte serializer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bytes.hh"
#include "predictor/interp_config.hh"
#include "predictor/spline.hh"
#include "transfer/globus_model.hh"

namespace {

using namespace szi::predictor;

TEST(Splines, WeightsSumToOne) {
  // Any consistent interpolator reproduces constants exactly.
  const float c = 7.25f;
  EXPECT_FLOAT_EQ(cubic_nak(c, c, c, c), c);
  EXPECT_FLOAT_EQ(cubic_natural(c, c, c, c), c);
  EXPECT_FLOAT_EQ(quad_left(c, c, c), c);
  EXPECT_FLOAT_EQ(quad_right(c, c, c), c);
  EXPECT_FLOAT_EQ(linear(c, c), c);
}

TEST(Splines, ExactOnLinearRamps) {
  // Samples at t = -3, -1, +1, +3 of f(t) = 2t + 5; predict f(0) = 5.
  auto f = [](double t) { return static_cast<float>(2 * t + 5); };
  EXPECT_FLOAT_EQ(cubic_nak(f(-3), f(-1), f(1), f(3)), 5.0f);
  EXPECT_FLOAT_EQ(cubic_natural(f(-3), f(-1), f(1), f(3)), 5.0f);
  EXPECT_FLOAT_EQ(quad_left(f(-3), f(-1), f(1)), 5.0f);
  EXPECT_FLOAT_EQ(quad_right(f(-1), f(1), f(3)), 5.0f);
  EXPECT_FLOAT_EQ(linear(f(-1), f(1)), 5.0f);
}

TEST(Splines, NotAKnotExactOnQuadratics) {
  // f(t) = t^2: f(0) = 0; nak: (-9 + 9 + 9 - 9)/16 = 0.
  auto f = [](double t) { return static_cast<float>(t * t); };
  EXPECT_NEAR(cubic_nak(f(-3), f(-1), f(1), f(3)), 0.0f, 1e-6);
  EXPECT_NEAR(quad_left(f(-3), f(-1), f(1)), 0.0f, 1e-6);
  EXPECT_NEAR(quad_right(f(-1), f(1), f(3)), 0.0f, 1e-6);
}

TEST(Splines, DispatchFollowsAvailability) {
  const float a = 1, b = 2, c = 4, d = 8;
  EXPECT_FLOAT_EQ(
      spline_predict(true, a, true, b, true, c, true, d, CubicKind::NotAKnot),
      cubic_nak(a, b, c, d));
  EXPECT_FLOAT_EQ(
      spline_predict(true, a, true, b, true, c, true, d, CubicKind::Natural),
      cubic_natural(a, b, c, d));
  EXPECT_FLOAT_EQ(spline_predict(true, a, true, b, true, c, false, 0.0f,
                                 CubicKind::NotAKnot),
                  quad_left(a, b, c));
  EXPECT_FLOAT_EQ(spline_predict(false, 0.0f, true, b, true, c, true, d,
                                 CubicKind::NotAKnot),
                  quad_right(b, c, d));
  EXPECT_FLOAT_EQ(spline_predict(false, 0.0f, true, b, true, c, false, 0.0f,
                                 CubicKind::NotAKnot),
                  linear(b, c));
  EXPECT_FLOAT_EQ(spline_predict(false, 0.0f, true, b, false, 0.0f, false,
                                 0.0f, CubicKind::NotAKnot),
                  b);
  EXPECT_FLOAT_EQ(spline_predict(false, 0.0f, false, 0.0f, true, c, false,
                                 0.0f, CubicKind::NotAKnot),
                  c);
  EXPECT_FLOAT_EQ(spline_predict(false, 0, false, 0, false, 0, false, 0,
                                 CubicKind::NotAKnot),
                  0.0f);
}

TEST(Geometry, MatchesPaperPerRank) {
  const auto g3 = geometry_for({96, 96, 96});
  EXPECT_EQ(g3.tile, (szi::dev::Dim3{32, 8, 8}));
  EXPECT_EQ(g3.anchor, (szi::dev::Dim3{8, 8, 8}));
  EXPECT_EQ(g3.top_stride, 4u);
  const auto g2 = geometry_for({128, 128, 1});
  EXPECT_EQ(g2.tile, (szi::dev::Dim3{16, 16, 1}));
  EXPECT_EQ(g2.top_stride, 8u);
  const auto g1 = geometry_for({4096, 1, 1});
  EXPECT_EQ(g1.tile, (szi::dev::Dim3{512, 1, 1}));
  EXPECT_EQ(g1.top_stride, 256u);
}

TEST(Eq1, AlphaPiecewiseLinear) {
  // Exact values at the segment boundaries of Eq. (1).
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(0.5), 2.0);
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(1e-1), 2.0);
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(1e-2), 1.75);
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(1e-3), 1.5);
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(1e-4), 1.25);
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(1e-5), 1.0);
  EXPECT_DOUBLE_EQ(alpha_of_epsilon(1e-7), 1.0);
  // Midpoint of the [1e-3, 1e-2) segment.
  EXPECT_NEAR(alpha_of_epsilon(5.5e-3), 1.5 + 0.25 * 0.5, 1e-12);
  // Monotone non-decreasing in ε.
  double prev = 0;
  for (double e = 1e-8; e < 1.0; e *= 1.3) {
    const double a = alpha_of_epsilon(e);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(LevelEb, ScheduleMatchesPaper) {
  EXPECT_EQ(level_of_stride(1), 1);
  EXPECT_EQ(level_of_stride(2), 2);
  EXPECT_EQ(level_of_stride(4), 3);
  EXPECT_EQ(level_of_stride(256), 9);
  // e_l = e / alpha^(l-1): stride-1 gets the full bound.
  EXPECT_DOUBLE_EQ(level_eb(1e-3, 2.0, 1), 1e-3);
  EXPECT_DOUBLE_EQ(level_eb(1e-3, 2.0, 3), 1e-3 / 4.0);
  EXPECT_DOUBLE_EQ(level_eb(1e-3, 1.0, 5), 1e-3);
}

TEST(Transfer, CostModel) {
  // 2 GB at 1 GB/s plus 0.5 s codec time each way.
  const auto c = szi::transfer::transfer_cost(0.5, 2'000'000'000ull, 0.5);
  EXPECT_DOUBLE_EQ(c.wire_seconds, 2.0);
  EXPECT_DOUBLE_EQ(c.total(), 3.0);
  const auto raw = szi::transfer::raw_transfer_cost(1'000'000'000ull);
  EXPECT_DOUBLE_EQ(raw.total(), 1.0);
}

TEST(Bytes, RoundTripAndTruncation) {
  szi::core::ByteWriter w;
  w.put(std::uint32_t{0xDEADBEEF});
  w.put(3.5);
  w.put_vector(std::vector<float>{1.0f, 2.0f});
  std::vector<std::byte> blob{std::byte{9}, std::byte{8}};
  w.put_blob(blob);
  const auto bytes = w.take();

  szi::core::ByteReader r(bytes, "test");
  EXPECT_EQ(r.read<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read_length_prefixed_array<float>(),
            (std::vector<float>{1.0f, 2.0f}));
  const auto back = r.read_length_prefixed();
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(r.remaining(), 0u);

  szi::core::ByteReader trunc(std::span<const std::byte>(bytes).first(6),
                              "test");
  (void)trunc.read<std::uint32_t>();
  EXPECT_THROW((void)trunc.read<double>(), szi::core::CorruptArchive);
}

TEST(Bytes, ReaderRejectsOverflowAndOverAllocation) {
  // A length prefix claiming 2^61 elements must throw CorruptArchive, not
  // wrap the byte count or attempt the allocation.
  szi::core::ByteWriter w;
  w.put(std::uint64_t{0x2000000000000000ull});
  const auto bytes = w.take();
  szi::core::ByteReader r(bytes, "test");
  EXPECT_THROW((void)r.read_length_prefixed(), szi::core::CorruptArchive);

  szi::core::ByteReader r2(bytes, "test");
  const auto n = r2.read<std::uint64_t>();
  EXPECT_THROW((void)r2.checked_array_bytes(n, sizeof(double)),
               szi::core::CorruptArchive);

  // The decode allocation cap turns huge-but-non-overflowing requests into
  // structured errors as well.
  szi::core::ScopedDecodeAllocCap cap(1 << 20);
  szi::core::ByteReader r3(bytes, "test");
  EXPECT_THROW(r3.guard_alloc(2 << 20), szi::core::CorruptArchive);
  EXPECT_NO_THROW(r3.guard_alloc(1 << 19));
}

}  // namespace
