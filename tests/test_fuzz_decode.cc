// Corruption-fuzz harness for every archive decoder (labelled `fuzz` in
// ctest). Each codec compresses one small field, then decodes thousands of
// seeded mutants (bit flips, truncations, length-field inflations, span
// fills — see fuzz_mutator.hh). The contract under test:
//
//   every mutant either decodes (silently-wrong output is acceptable) or
//   throws core::CorruptArchive — never any other exception type, never a
//   crash, never a hang, and never an allocation above the decode cap.
//
// The cap is lowered to 256 MiB for the whole binary so an over-allocation
// driven by a corrupt length field surfaces as a hard failure rather than
// an OOM. All RNG seeds derive from the codec name, so a failing trial is
// reproducible from the test name plus its trial index.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <typeinfo>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.hh"
#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "datagen/rng.hh"
#include "device/arena.hh"
#include "fuzz_mutator.hh"
#include "huffman/huffman.hh"
#include "io/bundle.hh"
#include "lossless/lzss.hh"
#include "lossless/orchestrate.hh"
#include "quant/outlier.hh"

namespace {

using szi::baselines::make_compressor;

constexpr int kTrials = 10'000;
constexpr std::size_t kAllocCap = std::size_t{256} << 20;  // 256 MiB

/// FNV-1a: a stable per-codec seed independent of std::hash.
std::uint64_t seed_of(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Small smooth field: big enough to exercise multi-level interpolation and
/// several Huffman chunks, small enough for thousands of decodes.
const szi::Field& tiny_field() {
  static const szi::Field field = [] {
    szi::Field f("fuzz", "synthetic", {33, 17, 9});
    for (std::size_t z = 0; z < f.dims.z; ++z)
      for (std::size_t y = 0; y < f.dims.y; ++y)
        for (std::size_t x = 0; x < f.dims.x; ++x)
          f.at(x, y, z) = static_cast<float>(
              std::sin(0.31 * static_cast<double>(x)) *
                  std::cos(0.17 * static_cast<double>(y)) +
              0.05 * static_cast<double>(z));
    f.data[7] = 0.0f;  // pwrel's zero class must stay covered
    return f;
  }();
  return field;
}

std::unique_ptr<szi::Compressor> build_compressor(const std::string& spec) {
  if (spec == "cusz-i+bitcomp")
    return szi::with_bitcomp(make_compressor("cusz-i"));
  if (spec == "cusz-i+pwrel")
    return szi::with_pointwise_rel(make_compressor("cusz-i"));
  return make_compressor(spec);
}

szi::CompressParams params_for(const std::string& spec) {
  if (spec == "cuzfp") return {szi::ErrorMode::FixedRate, 4.0};
  if (spec == "cusz-i+pwrel") return {szi::ErrorMode::PwRel, 1e-3};
  return {szi::ErrorMode::Rel, 1e-3};
}

/// Decodes one mutant and enforces the contract. Returns false (and records
/// a gtest failure) on any exception other than CorruptArchive.
template <typename DecodeFn>
void run_trials(const std::string& label, std::span<const std::byte> archive,
                DecodeFn&& decode) {
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::datagen::Rng rng(seed_of(label));
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto mutant = szi::testing::mutate_archive(archive, rng);
    try {
      decode(mutant);
    } catch (const szi::core::CorruptArchive&) {
      // the structured rejection path — expected for most mutants
    } catch (const std::exception& e) {
      ADD_FAILURE() << label << " trial " << trial << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
  }
}

class FuzzDecode : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzDecode, MutantsDecodeOrThrowCorruptArchive) {
  const auto spec = GetParam();
  auto c = build_compressor(spec);
  const auto enc = c->compress(tiny_field(), params_for(spec));
  run_trials(spec, enc.bytes,
             [&](std::span<const std::byte> mutant) { (void)c->decompress(mutant); });
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, FuzzDecode,
                         ::testing::Values("cusz-i", "cusz", "cuszp", "cuszx",
                                           "fz-gpu", "cuzfp", "sz3", "qoz",
                                           "cusz-i+bitcomp", "cusz-i+pwrel"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-' || ch == '+') ch = '_';
                           return n;
                         });

// The lazy-match LZSS encoder path: mutants of its output (a token format
// identical to the greedy encoder's, so the untouched decoder is the unit
// under test) must decode or throw CorruptArchive like every other codec.
TEST(FuzzDecode, LzssLazyEncoderStream) {
  szi::datagen::Rng gen(seed_of("lzss-lazy-corpus"));
  std::vector<std::byte> data(96 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Zero-run-dominated with noise bursts: exercises match, literal,
    // skip-ahead, and raw-fallback token paths in one archive.
    data[i] = gen.uniform() < 0.9
                  ? std::byte{0}
                  : std::byte(static_cast<std::uint8_t>(gen.next_u64()));
  }
  const auto enc = szi::lossless::lzss_compress(
      data, szi::lossless::kLzssBlock, szi::lossless::LzssMode::Lazy);
  run_trials("lzss-lazy", enc, [](std::span<const std::byte> mutant) {
    (void)szi::lossless::lzss_decompress(mutant);
  });
}

TEST(FuzzDecode, CuszIF64Archive) {
  const auto& f = tiny_field();
  std::vector<double> data(f.data.begin(), f.data.end());
  const auto archive =
      szi::cuszi_compress(data, f.dims, {szi::ErrorMode::Rel, 1e-3});
  run_trials("cusz-i-f64", archive, [](std::span<const std::byte> mutant) {
    (void)szi::cuszi_decompress_f64(mutant);
  });
}

TEST(FuzzDecode, BundleToc) {
  auto c = make_compressor("cusz-i");
  const auto enc = c->compress(tiny_field(), {szi::ErrorMode::Rel, 1e-3});
  szi::io::Bundle bundle;
  bundle.add({"pressure", "cusz-i", tiny_field().dims,
              tiny_field().bytes(), enc.bytes});
  bundle.add({"density", "cusz-i", tiny_field().dims, tiny_field().bytes(),
              enc.bytes});
  const auto bytes = bundle.serialize();
  run_trials("bundle", bytes, [](std::span<const std::byte> mutant) {
    (void)szi::io::Bundle::deserialize(mutant);
  });
}

// Every prefix of a wrapped archive, shortest to longest: deterministic
// truncation coverage for the overhauled decode path. Truncations inside the
// Huffman payload land mid-window for the buffered BitReader's 8-byte refill
// (the reader must serve the remaining bits then zeros, and the chunk-extent
// check must catch any overrun); truncations inside the LZSS frame exercise
// the parallel block decode's raw/token bounds checks.
TEST(FuzzDecode, TruncationSweepWrappedArchive) {
  auto c = build_compressor("cusz-i+bitcomp");
  const auto enc = c->compress(tiny_field(), params_for("cusz-i+bitcomp"));
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  for (std::size_t len = 0; len <= enc.bytes.size(); ++len) {
    try {
      (void)c->decompress(std::span<const std::byte>(enc.bytes).first(len));
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "truncation at " << len << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
  }
}

// A Kraft-complete codebook with lengths far past the 12-bit LUT window
// (counts 2^i force the canonical chain 1, 2, ..., k, k): every deep symbol
// escapes the pack table into the bit-serial fallback, so mutants of this
// stream stress the LUT-escape path and the corrupt-stream guards inside
// DecodeTable::decode.
TEST(FuzzDecode, HuffmanDeepCodebookMutants) {
  constexpr std::size_t kSyms = 18;
  std::vector<szi::quant::Code> codes;
  for (std::size_t s = 0; s < kSyms; ++s)
    codes.insert(codes.end(), std::size_t{1} << s,
                 static_cast<szi::quant::Code>(s));
  // Interleave deterministically so deep codes appear in every chunk.
  std::vector<szi::quant::Code> shuffled(codes.size());
  std::size_t w = 0;
  for (std::size_t stride = 0; stride < 64; ++stride)
    for (std::size_t i = stride; i < codes.size(); i += 64)
      shuffled[w++] = codes[i];
  const auto stream = szi::huffman::encode(shuffled, kSyms);
  ASSERT_EQ(szi::huffman::decode(stream), shuffled);
  run_trials("huffman-deep-book", stream,
             [](std::span<const std::byte> mutant) {
               (void)szi::huffman::decode(mutant);
             });
}

// Mutants confined to the LZSS frame's block-offset table: the parallel
// block decode trusts lzss_parse_frame's validation (monotone offsets inside
// the stream), so every table corruption must be rejected there or surface
// as a per-block CorruptArchive — never as an out-of-range read in a pool
// worker (ASan-checked in CI).
TEST(FuzzDecode, LzssBlockOffsetTableMutants) {
  szi::datagen::Rng gen(seed_of("lzss-offset-corpus"));
  std::vector<std::byte> data(5 * szi::lossless::kLzssBlock + 333);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = gen.uniform() < 0.8
                  ? std::byte{0x5A}
                  : std::byte(static_cast<std::uint8_t>(gen.next_u64()));
  const auto enc = szi::lossless::lzss_compress(data);
  // Frame header: u64 raw_size | u32 block_size | u32 nblocks | u64 offsets[].
  constexpr std::size_t kTableOff = 16;
  std::uint32_t nblocks = 0;
  std::memcpy(&nblocks, enc.data() + 12, sizeof(nblocks));
  ASSERT_EQ(nblocks, 6u);
  const std::size_t table_bytes = nblocks * sizeof(std::uint64_t);

  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::datagen::Rng rng(seed_of("lzss-offset-mutants"));
  for (int trial = 0; trial < kTrials; ++trial) {
    auto mutant = enc;
    // 1-3 corruptions inside the table: byte flips or whole-u64 rewrites.
    const int edits = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int e = 0; e < edits; ++e) {
      if (rng.uniform() < 0.5) {
        const std::size_t at = kTableOff + rng.next_u64() % table_bytes;
        mutant[at] ^= std::byte(static_cast<std::uint8_t>(
            1u << (rng.next_u64() % 8)));
      } else {
        const std::size_t slot = rng.next_u64() % nblocks;
        std::uint64_t v = rng.next_u64();
        if (rng.uniform() < 0.5) v %= (enc.size() + 7);  // near-valid range
        std::memcpy(mutant.data() + kTableOff + slot * sizeof(v), &v,
                    sizeof(v));
      }
    }
    try {
      (void)szi::lossless::lzss_decompress(mutant);
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "lzss offset mutant trial " << trial
                    << ": decoder threw " << typeid(e).name() << " ("
                    << e.what() << ") instead of CorruptArchive";
      return;
    }
  }
}

// Mutants confined to the SZI2 segment directory (u32 nseg + 32-byte
// entries between the fixed header and the first segment): kinds, levels,
// counts, offsets, and sizes are all validated against their closed forms,
// so every corruption must be rejected by parse_v2_directory or surface as
// a bounds-checked CorruptArchive downstream — both the full decoder and
// the prefix-reading progressive decoder are under contract.
TEST(FuzzDecode, SegmentDirectoryMutants) {
  const auto& f = tiny_field();
  const auto archive = szi::cuszi_compress(std::span<const float>(f.data),
                                           f.dims, {szi::ErrorMode::Rel, 1e-3});
  const auto segs = szi::cuszi_archive_segments(archive);
  ASSERT_FALSE(segs.empty());
  // Fixed header: magic(4) + precision(1) + dims(24) + eb(8) + config(16).
  constexpr std::size_t kDirOff = 53;
  const std::size_t dir_end = static_cast<std::size_t>(segs[0].offset);
  ASSERT_GT(dir_end, kDirOff);
  const std::size_t dir_bytes = dir_end - kDirOff;

  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::datagen::Rng rng(seed_of("szi2-directory-mutants"));
  for (int trial = 0; trial < kTrials; ++trial) {
    auto mutant = archive;
    const int edits = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int e = 0; e < edits; ++e) {
      if (rng.uniform() < 0.5) {
        const std::size_t at = kDirOff + rng.next_u64() % dir_bytes;
        mutant[at] ^=
            std::byte(static_cast<std::uint8_t>(1u << (rng.next_u64() % 8)));
      } else if (dir_bytes >= sizeof(std::uint64_t)) {
        // Whole-u64 rewrite of a count/offset/size slot, half the time
        // clamped near the valid range to probe off-by-one acceptance.
        const std::size_t at =
            kDirOff + rng.next_u64() % (dir_bytes - sizeof(std::uint64_t) + 1);
        std::uint64_t v = rng.next_u64();
        if (rng.uniform() < 0.5) v %= (archive.size() + 7);
        std::memcpy(mutant.data() + at, &v, sizeof(v));
      }
    }
    try {
      if (trial % 2 == 0)
        (void)szi::cuszi_decompress_f32(mutant);
      else
        (void)szi::cuszi_decompress_progressive_f32(
            mutant, 1 + static_cast<int>(rng.next_u64() % 4));
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "directory mutant trial " << trial << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
  }
}

// Deterministic truncation coverage for the raw SZI2 layout: every prefix,
// with extra attention (full + progressive decode at every level) at each
// segment boundary +/- 1 — the exact cut points a partially transferred
// progressive archive produces.
TEST(FuzzDecode, TruncationSweepRawV2Archive) {
  const auto& f = tiny_field();
  const auto archive = szi::cuszi_compress(std::span<const float>(f.data),
                                           f.dims, {szi::ErrorMode::Rel, 1e-3});
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  const auto try_decode = [&](std::size_t len, int level) {
    const auto prefix = std::span<const std::byte>(archive).first(len);
    try {
      if (level == 0)
        (void)szi::cuszi_decompress_f32(prefix);
      else
        (void)szi::cuszi_decompress_progressive_f32(prefix, level);
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "truncation at " << len << " (level " << level
                    << "): decoder threw " << typeid(e).name() << " ("
                    << e.what() << ") instead of CorruptArchive";
    }
  };
  for (std::size_t len = 0; len <= archive.size(); ++len) try_decode(len, 0);
  const auto segs = szi::cuszi_archive_segments(archive);
  const int nlevels = static_cast<int>(segs.size()) - 2;
  for (const auto& s : segs) {
    for (const std::size_t at :
         {s.offset, s.offset + 1, s.offset + s.size, s.offset + s.size - 1}) {
      if (at > archive.size()) continue;
      for (int level = 0; level <= nlevels + 1; ++level)
        try_decode(static_cast<std::size_t>(at), level);
    }
  }
}

// The legacy SZI1 single-stream layout stays under the same fuzz contract
// through the version-dispatched decoder (archives minted by the retained
// v1 writer).
TEST(FuzzDecode, LegacyV1ArchiveMutants) {
  const auto& f = tiny_field();
  const auto archive = szi::cuszi_compress_v1(
      std::span<const float>(f.data), f.dims, {szi::ErrorMode::Rel, 1e-3});
  run_trials("cusz-i-v1", archive, [](std::span<const std::byte> mutant) {
    (void)szi::cuszi_decompress_f32(mutant);
  });
}

// Mutants confined to the BBC2 wrapper table (u32 magic | u32 nseg |
// 24-byte entries of u8 method | 7 reserved bytes | u64 raw_size |
// u64 size): every corruption must be rejected by bitcomp_parse_container's
// structural checks (unknown method, reserved bytes, payload fill, size
// overflow) or surface as CorruptArchive from the per-segment frame
// validators — through the unwrap path, the pipelined decode, AND the
// prefix-reading progressive decode.
TEST(FuzzDecode, WrapperTableMutants) {
  const auto& f = tiny_field();
  const auto inner = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {szi::ErrorMode::Rel, 1e-3});
  const auto wrapped = szi::bitcomp_wrap_archive(inner);
  std::uint32_t nseg = 0;
  std::memcpy(&nseg, wrapped.data() + 4, sizeof(nseg));
  ASSERT_GE(nseg, 2u);
  const std::size_t table_bytes = 8 + nseg * sizeof(szi::WrapSegmentEntry);

  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  szi::datagen::Rng rng(seed_of("bbc2-table-mutants"));
  for (int trial = 0; trial < kTrials; ++trial) {
    auto mutant = wrapped;
    const int edits = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int e = 0; e < edits; ++e) {
      if (rng.uniform() < 0.5) {
        const std::size_t at = rng.next_u64() % table_bytes;
        mutant[at] ^=
            std::byte(static_cast<std::uint8_t>(1u << (rng.next_u64() % 8)));
      } else {
        // Whole-u64 rewrite of a raw_size/size slot, half the time clamped
        // near the valid range to probe off-by-one acceptance.
        const std::size_t at =
            rng.next_u64() % (table_bytes - sizeof(std::uint64_t) + 1);
        std::uint64_t v = rng.next_u64();
        if (rng.uniform() < 0.5) v %= (wrapped.size() + 7);
        std::memcpy(mutant.data() + at, &v, sizeof(v));
      }
    }
    try {
      switch (trial % 3) {
        case 0:
          (void)szi::bitcomp_unwrap_archive(mutant);
          break;
        case 1:
          ws.reset();
          (void)szi::cuszi_decompress_bitcomp_f32(mutant, ws);
          break;
        default:
          (void)szi::cuszi_decompress_progressive_f32(
              mutant, 1 + static_cast<int>(rng.next_u64() % 3));
          break;
      }
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "wrapper table mutant trial " << trial
                    << ": decoder threw " << typeid(e).name() << " ("
                    << e.what() << ") instead of CorruptArchive";
      return;
    }
  }
}

// Directed method-byte corruption. Unknown method ids must be rejected
// structurally by the container parser before any payload is touched;
// swapping one valid id for another (a method/size mismatch — the payload
// was encoded under a different transform) must either be caught by the
// frame-size closed forms / untransform validators or decode to
// silently-wrong bytes, never crash.
TEST(FuzzDecode, WrapperMethodByteMutants) {
  const auto& f = tiny_field();
  const auto inner = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {szi::ErrorMode::Rel, 1e-3});
  const auto wrapped = szi::bitcomp_wrap_archive(inner);
  const auto view = szi::bitcomp_parse_container(wrapped);
  ASSERT_FALSE(view.legacy);

  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto entry_method_off = [](std::size_t seg) {
    return 8 + seg * sizeof(szi::WrapSegmentEntry);
  };
  for (std::size_t seg = 0; seg < view.segments.size(); ++seg) {
    // Unknown ids: the very first invalid value, a mid-range one, and the
    // all-bits pattern must all hard-reject on every decode surface.
    for (const std::uint8_t bad_id : {std::uint8_t{3}, std::uint8_t{0x7F},
                                      std::uint8_t{0xFF}}) {
      auto mutant = wrapped;
      mutant[entry_method_off(seg)] = std::byte{bad_id};
      EXPECT_THROW((void)szi::bitcomp_unwrap_archive(mutant),
                   szi::core::CorruptArchive)
          << "segment " << seg << " id " << int(bad_id);
      ws.reset();
      EXPECT_THROW((void)szi::cuszi_decompress_bitcomp_f32(mutant, ws),
                   szi::core::CorruptArchive)
          << "segment " << seg << " id " << int(bad_id) << " (pipelined)";
      EXPECT_THROW((void)szi::cuszi_decompress_progressive_f32(mutant, 2),
                   szi::core::CorruptArchive)
          << "segment " << seg << " id " << int(bad_id) << " (progressive)";
    }
    // Valid-but-wrong ids: decode-or-CorruptArchive, all three surfaces.
    for (std::uint8_t m = 0; m < szi::lossless::kMethodCount; ++m) {
      if (m == static_cast<std::uint8_t>(view.segments[seg].method)) continue;
      auto mutant = wrapped;
      mutant[entry_method_off(seg)] = std::byte{m};
      const auto tolerant = [&](auto&& decode, const char* label) {
        try {
          decode();
        } catch (const szi::core::CorruptArchive&) {
        } catch (const std::exception& e) {
          ADD_FAILURE() << "segment " << seg << " method swap to " << int(m)
                        << " (" << label << "): decoder threw "
                        << typeid(e).name() << " (" << e.what()
                        << ") instead of CorruptArchive";
        }
      };
      tolerant([&] { (void)szi::bitcomp_unwrap_archive(mutant); }, "unwrap");
      tolerant(
          [&] {
            ws.reset();
            (void)szi::cuszi_decompress_bitcomp_f32(mutant, ws);
          },
          "pipelined");
      tolerant(
          [&] { (void)szi::cuszi_decompress_progressive_f32(mutant, 2); },
          "progressive");
    }
  }
}

// Every-prefix truncation of forced-ZeroRle and forced-Bitshuffle wrapped
// archives: cuts land inside the RLE run stream and inside bit-plane rows
// of the shuffle frame, where a lazily validated decoder would read past
// the end — both the unwrap path and the pipelined decode (whose serial
// drain must still run every unit on corrupt tails) are under contract.
TEST(FuzzDecode, TruncationSweepTransformedFrames) {
  const auto& f = tiny_field();
  const auto inner = szi::cuszi_compress(std::span<const float>(f.data),
                                         f.dims, {szi::ErrorMode::Rel, 1e-3});
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto policy : {szi::lossless::MethodPolicy::ForceZeroRle,
                            szi::lossless::MethodPolicy::ForceBitshuffle}) {
    const auto wrapped = szi::bitcomp_wrap_archive(
        inner, szi::lossless::LzssMode::Lazy, policy);
    for (std::size_t len = 0; len <= wrapped.size(); ++len) {
      const auto prefix = std::span<const std::byte>(wrapped).first(len);
      try {
        if (len % 2 == 0) {
          (void)szi::bitcomp_unwrap_archive(prefix);
        } else {
          ws.reset();
          (void)szi::cuszi_decompress_bitcomp_f32(prefix, ws);
        }
      } catch (const szi::core::CorruptArchive&) {
      } catch (const std::exception& e) {
        ADD_FAILURE() << "transformed-frame truncation at " << len
                      << ": decoder threw " << typeid(e).name() << " ("
                      << e.what() << ") instead of CorruptArchive";
        return;
      }
    }
  }
}

// Mutants confined to the trailing TIDX segment (tile-index header + entry
// table): the ROI decoder re-derives every index field from closed forms of
// (dims, per-level chunk tables) and cross-checks all of them before
// steering any read, so every corruption must surface as CorruptArchive
// from the index validators — never any other exception. The full decoder
// never reads the index payload, so the same mutants must keep decoding
// bit-identically there.
TEST(FuzzDecode, TileIndexTableMutants) {
  const auto& f = tiny_field();
  const auto archive = szi::cuszi_compress(std::span<const float>(f.data),
                                           f.dims, {szi::ErrorMode::Rel, 1e-3});
  const auto segs = szi::cuszi_archive_segments(archive);
  ASSERT_FALSE(segs.empty());
  ASSERT_EQ(segs.back().kind, 3u);  // trailing tile index
  const auto tidx_off = static_cast<std::size_t>(segs.back().offset);
  const auto tidx_bytes = static_cast<std::size_t>(segs.back().size);
  ASSERT_GE(tidx_bytes, sizeof(std::uint64_t));
  const auto ref = szi::cuszi_decompress_f32(archive);
  const szi::RoiBox box{{3, 2, 1}, {12, 9, 6}};

  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::datagen::Rng rng(seed_of("tidx-table-mutants"));
  for (int trial = 0; trial < kTrials; ++trial) {
    auto mutant = archive;
    const int edits = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int e = 0; e < edits; ++e) {
      if (rng.uniform() < 0.5) {
        const std::size_t at = tidx_off + rng.next_u64() % tidx_bytes;
        mutant[at] ^=
            std::byte(static_cast<std::uint8_t>(1u << (rng.next_u64() % 8)));
      } else {
        // Whole-u64 rewrite of a rank/byte/chunk slot, half the time clamped
        // near the valid range to probe off-by-one acceptance.
        const std::size_t at =
            tidx_off +
            rng.next_u64() % (tidx_bytes - sizeof(std::uint64_t) + 1);
        std::uint64_t v = rng.next_u64();
        if (rng.uniform() < 0.5) v %= (archive.size() + 7);
        std::memcpy(mutant.data() + at, &v, sizeof(v));
      }
    }
    try {
      (void)szi::cuszi_decompress_roi_f32(mutant, box);
    } catch (const szi::core::CorruptArchive&) {
      // the structured rejection path — expected for most mutants
    } catch (const std::exception& e) {
      ADD_FAILURE() << "tidx mutant trial " << trial << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
    if (trial % 100 == 0)
      EXPECT_EQ(szi::cuszi_decompress_f32(mutant), ref)
          << "full decode must ignore the index payload (trial " << trial
          << ")";
  }
}

// Every-prefix truncation through the ROI decoder: cuts inside the
// directory, anchor rows, outlier blob, Huffman headers/payloads, and the
// trailing tile index (plus the pre-index fallback the shortest prefixes
// take) must all surface as CorruptArchive, never any other exception.
TEST(FuzzDecode, TruncationSweepRoiDecode) {
  const auto& f = tiny_field();
  const auto archive = szi::cuszi_compress(std::span<const float>(f.data),
                                           f.dims, {szi::ErrorMode::Rel, 1e-3});
  const szi::RoiBox box{{3, 2, 1}, {12, 9, 6}};
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  for (std::size_t len = 0; len <= archive.size(); ++len) {
    try {
      (void)szi::cuszi_decompress_roi_f32(
          std::span<const std::byte>(archive).first(len), box);
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "ROI truncation at " << len << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
  }
}

// Regression for the original OutlierSet::deserialize overflow: an 8-byte
// header claiming n = 0x2000000000000000 made n * (8 + 4) wrap size_t, so
// the old truncation check passed and the copy ran off the buffer. The
// checked reader must reject it structurally.
TEST(FuzzDecode, CraftedOutlierCountRejected) {
  szi::core::ByteWriter w;
  w.put(std::uint64_t{0x2000000000000000ULL});
  const auto bytes = w.take();
  try {
    (void)szi::quant::OutlierSet::deserialize(bytes, nullptr);
    FAIL() << "crafted outlier count must not deserialize";
  } catch (const szi::core::CorruptArchive& e) {
    EXPECT_EQ(e.stage(), "outlier-set");
  }

  // The same header with trailing garbage: the element count still exceeds
  // any plausible payload and must be rejected before allocation.
  szi::core::ByteWriter w2;
  w2.put(std::uint64_t{0x2000000000000000ULL});
  for (int i = 0; i < 64; ++i) w2.put(std::uint8_t{0xAB});
  EXPECT_THROW((void)szi::quant::OutlierSet::deserialize(w2.take(), nullptr),
               szi::core::CorruptArchive);
}

}  // namespace
