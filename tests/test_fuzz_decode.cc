// Corruption-fuzz harness for every archive decoder (labelled `fuzz` in
// ctest). Each codec compresses one small field, then decodes thousands of
// seeded mutants (bit flips, truncations, length-field inflations, span
// fills — see fuzz_mutator.hh). The contract under test:
//
//   every mutant either decodes (silently-wrong output is acceptable) or
//   throws core::CorruptArchive — never any other exception type, never a
//   crash, never a hang, and never an allocation above the decode cap.
//
// The cap is lowered to 256 MiB for the whole binary so an over-allocation
// driven by a corrupt length field surfaces as a hard failure rather than
// an OOM. All RNG seeds derive from the codec name, so a failing trial is
// reproducible from the test name plus its trial index.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <typeinfo>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.hh"
#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "datagen/rng.hh"
#include "fuzz_mutator.hh"
#include "huffman/huffman.hh"
#include "io/bundle.hh"
#include "lossless/lzss.hh"
#include "quant/outlier.hh"

namespace {

using szi::baselines::make_compressor;

constexpr int kTrials = 10'000;
constexpr std::size_t kAllocCap = std::size_t{256} << 20;  // 256 MiB

/// FNV-1a: a stable per-codec seed independent of std::hash.
std::uint64_t seed_of(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Small smooth field: big enough to exercise multi-level interpolation and
/// several Huffman chunks, small enough for thousands of decodes.
const szi::Field& tiny_field() {
  static const szi::Field field = [] {
    szi::Field f("fuzz", "synthetic", {33, 17, 9});
    for (std::size_t z = 0; z < f.dims.z; ++z)
      for (std::size_t y = 0; y < f.dims.y; ++y)
        for (std::size_t x = 0; x < f.dims.x; ++x)
          f.at(x, y, z) = static_cast<float>(
              std::sin(0.31 * static_cast<double>(x)) *
                  std::cos(0.17 * static_cast<double>(y)) +
              0.05 * static_cast<double>(z));
    f.data[7] = 0.0f;  // pwrel's zero class must stay covered
    return f;
  }();
  return field;
}

std::unique_ptr<szi::Compressor> build_compressor(const std::string& spec) {
  if (spec == "cusz-i+bitcomp")
    return szi::with_bitcomp(make_compressor("cusz-i"));
  if (spec == "cusz-i+pwrel")
    return szi::with_pointwise_rel(make_compressor("cusz-i"));
  return make_compressor(spec);
}

szi::CompressParams params_for(const std::string& spec) {
  if (spec == "cuzfp") return {szi::ErrorMode::FixedRate, 4.0};
  if (spec == "cusz-i+pwrel") return {szi::ErrorMode::PwRel, 1e-3};
  return {szi::ErrorMode::Rel, 1e-3};
}

/// Decodes one mutant and enforces the contract. Returns false (and records
/// a gtest failure) on any exception other than CorruptArchive.
template <typename DecodeFn>
void run_trials(const std::string& label, std::span<const std::byte> archive,
                DecodeFn&& decode) {
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::datagen::Rng rng(seed_of(label));
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto mutant = szi::testing::mutate_archive(archive, rng);
    try {
      decode(mutant);
    } catch (const szi::core::CorruptArchive&) {
      // the structured rejection path — expected for most mutants
    } catch (const std::exception& e) {
      ADD_FAILURE() << label << " trial " << trial << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
  }
}

class FuzzDecode : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzDecode, MutantsDecodeOrThrowCorruptArchive) {
  const auto spec = GetParam();
  auto c = build_compressor(spec);
  const auto enc = c->compress(tiny_field(), params_for(spec));
  run_trials(spec, enc.bytes,
             [&](std::span<const std::byte> mutant) { (void)c->decompress(mutant); });
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, FuzzDecode,
                         ::testing::Values("cusz-i", "cusz", "cuszp", "cuszx",
                                           "fz-gpu", "cuzfp", "sz3", "qoz",
                                           "cusz-i+bitcomp", "cusz-i+pwrel"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-' || ch == '+') ch = '_';
                           return n;
                         });

// The lazy-match LZSS encoder path: mutants of its output (a token format
// identical to the greedy encoder's, so the untouched decoder is the unit
// under test) must decode or throw CorruptArchive like every other codec.
TEST(FuzzDecode, LzssLazyEncoderStream) {
  szi::datagen::Rng gen(seed_of("lzss-lazy-corpus"));
  std::vector<std::byte> data(96 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Zero-run-dominated with noise bursts: exercises match, literal,
    // skip-ahead, and raw-fallback token paths in one archive.
    data[i] = gen.uniform() < 0.9
                  ? std::byte{0}
                  : std::byte(static_cast<std::uint8_t>(gen.next_u64()));
  }
  const auto enc = szi::lossless::lzss_compress(
      data, szi::lossless::kLzssBlock, szi::lossless::LzssMode::Lazy);
  run_trials("lzss-lazy", enc, [](std::span<const std::byte> mutant) {
    (void)szi::lossless::lzss_decompress(mutant);
  });
}

TEST(FuzzDecode, CuszIF64Archive) {
  const auto& f = tiny_field();
  std::vector<double> data(f.data.begin(), f.data.end());
  const auto archive =
      szi::cuszi_compress(data, f.dims, {szi::ErrorMode::Rel, 1e-3});
  run_trials("cusz-i-f64", archive, [](std::span<const std::byte> mutant) {
    (void)szi::cuszi_decompress_f64(mutant);
  });
}

TEST(FuzzDecode, BundleToc) {
  auto c = make_compressor("cusz-i");
  const auto enc = c->compress(tiny_field(), {szi::ErrorMode::Rel, 1e-3});
  szi::io::Bundle bundle;
  bundle.add({"pressure", "cusz-i", tiny_field().dims,
              tiny_field().bytes(), enc.bytes});
  bundle.add({"density", "cusz-i", tiny_field().dims, tiny_field().bytes(),
              enc.bytes});
  const auto bytes = bundle.serialize();
  run_trials("bundle", bytes, [](std::span<const std::byte> mutant) {
    (void)szi::io::Bundle::deserialize(mutant);
  });
}

// Every prefix of a wrapped archive, shortest to longest: deterministic
// truncation coverage for the overhauled decode path. Truncations inside the
// Huffman payload land mid-window for the buffered BitReader's 8-byte refill
// (the reader must serve the remaining bits then zeros, and the chunk-extent
// check must catch any overrun); truncations inside the LZSS frame exercise
// the parallel block decode's raw/token bounds checks.
TEST(FuzzDecode, TruncationSweepWrappedArchive) {
  auto c = build_compressor("cusz-i+bitcomp");
  const auto enc = c->compress(tiny_field(), params_for("cusz-i+bitcomp"));
  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  for (std::size_t len = 0; len <= enc.bytes.size(); ++len) {
    try {
      (void)c->decompress(std::span<const std::byte>(enc.bytes).first(len));
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "truncation at " << len << ": decoder threw "
                    << typeid(e).name() << " (" << e.what()
                    << ") instead of CorruptArchive";
      return;
    }
  }
}

// A Kraft-complete codebook with lengths far past the 12-bit LUT window
// (counts 2^i force the canonical chain 1, 2, ..., k, k): every deep symbol
// escapes the pack table into the bit-serial fallback, so mutants of this
// stream stress the LUT-escape path and the corrupt-stream guards inside
// DecodeTable::decode.
TEST(FuzzDecode, HuffmanDeepCodebookMutants) {
  constexpr std::size_t kSyms = 18;
  std::vector<szi::quant::Code> codes;
  for (std::size_t s = 0; s < kSyms; ++s)
    codes.insert(codes.end(), std::size_t{1} << s,
                 static_cast<szi::quant::Code>(s));
  // Interleave deterministically so deep codes appear in every chunk.
  std::vector<szi::quant::Code> shuffled(codes.size());
  std::size_t w = 0;
  for (std::size_t stride = 0; stride < 64; ++stride)
    for (std::size_t i = stride; i < codes.size(); i += 64)
      shuffled[w++] = codes[i];
  const auto stream = szi::huffman::encode(shuffled, kSyms);
  ASSERT_EQ(szi::huffman::decode(stream), shuffled);
  run_trials("huffman-deep-book", stream,
             [](std::span<const std::byte> mutant) {
               (void)szi::huffman::decode(mutant);
             });
}

// Mutants confined to the LZSS frame's block-offset table: the parallel
// block decode trusts lzss_parse_frame's validation (monotone offsets inside
// the stream), so every table corruption must be rejected there or surface
// as a per-block CorruptArchive — never as an out-of-range read in a pool
// worker (ASan-checked in CI).
TEST(FuzzDecode, LzssBlockOffsetTableMutants) {
  szi::datagen::Rng gen(seed_of("lzss-offset-corpus"));
  std::vector<std::byte> data(5 * szi::lossless::kLzssBlock + 333);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = gen.uniform() < 0.8
                  ? std::byte{0x5A}
                  : std::byte(static_cast<std::uint8_t>(gen.next_u64()));
  const auto enc = szi::lossless::lzss_compress(data);
  // Frame header: u64 raw_size | u32 block_size | u32 nblocks | u64 offsets[].
  constexpr std::size_t kTableOff = 16;
  std::uint32_t nblocks = 0;
  std::memcpy(&nblocks, enc.data() + 12, sizeof(nblocks));
  ASSERT_EQ(nblocks, 6u);
  const std::size_t table_bytes = nblocks * sizeof(std::uint64_t);

  szi::core::ScopedDecodeAllocCap cap(kAllocCap);
  szi::datagen::Rng rng(seed_of("lzss-offset-mutants"));
  for (int trial = 0; trial < kTrials; ++trial) {
    auto mutant = enc;
    // 1-3 corruptions inside the table: byte flips or whole-u64 rewrites.
    const int edits = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int e = 0; e < edits; ++e) {
      if (rng.uniform() < 0.5) {
        const std::size_t at = kTableOff + rng.next_u64() % table_bytes;
        mutant[at] ^= std::byte(static_cast<std::uint8_t>(
            1u << (rng.next_u64() % 8)));
      } else {
        const std::size_t slot = rng.next_u64() % nblocks;
        std::uint64_t v = rng.next_u64();
        if (rng.uniform() < 0.5) v %= (enc.size() + 7);  // near-valid range
        std::memcpy(mutant.data() + kTableOff + slot * sizeof(v), &v,
                    sizeof(v));
      }
    }
    try {
      (void)szi::lossless::lzss_decompress(mutant);
    } catch (const szi::core::CorruptArchive&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "lzss offset mutant trial " << trial
                    << ": decoder threw " << typeid(e).name() << " ("
                    << e.what() << ") instead of CorruptArchive";
      return;
    }
  }
}

// Regression for the original OutlierSet::deserialize overflow: an 8-byte
// header claiming n = 0x2000000000000000 made n * (8 + 4) wrap size_t, so
// the old truncation check passed and the copy ran off the buffer. The
// checked reader must reject it structurally.
TEST(FuzzDecode, CraftedOutlierCountRejected) {
  szi::core::ByteWriter w;
  w.put(std::uint64_t{0x2000000000000000ULL});
  const auto bytes = w.take();
  try {
    (void)szi::quant::OutlierSet::deserialize(bytes, nullptr);
    FAIL() << "crafted outlier count must not deserialize";
  } catch (const szi::core::CorruptArchive& e) {
    EXPECT_EQ(e.stage(), "outlier-set");
  }

  // The same header with trailing garbage: the element count still exceeds
  // any plausible payload and must be rejected before allocation.
  szi::core::ByteWriter w2;
  w2.put(std::uint64_t{0x2000000000000000ULL});
  for (int i = 0; i < 64; ++i) w2.put(std::uint8_t{0xAB});
  EXPECT_THROW((void)szi::quant::OutlierSet::deserialize(w2.take(), nullptr),
               szi::core::CorruptArchive);
}

}  // namespace
