// Multi-worker correctness: this binary is registered with ctest twice,
// once with SZI_THREADS=1 and once with SZI_THREADS=4 (see
// tests/CMakeLists.txt). The compressed archives must be byte-identical
// regardless of worker count — the tile decomposition recomputes shared
// borders instead of synchronizing, so scheduling must never leak into the
// output — and round trips must stay bounded under true concurrency.
#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/registry.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "io/bin_io.hh"
#include "metrics/stats.hh"

namespace {

using szi::ErrorMode;

/// Golden archive hashes are impractical across platforms; instead each run
/// writes its archive digest to stdout and asserts determinism *within* the
/// process by compressing twice, plus bounded round trips. Cross-worker
/// byte-equality is asserted by comparing against a single-threaded
/// recompute: the pool is sized by SZI_THREADS at first use, so we spawn
/// the reference through the same code path before/after cannot differ —
/// the meaningful assertion is repeatability and boundedness under the
/// configured worker count.
TEST(ParallelDeterminism, RepeatableArchivesAndBoundedRoundTrips) {
  const char* threads = std::getenv("SZI_THREADS");
  SCOPED_TRACE(std::string("SZI_THREADS=") + (threads ? threads : "(unset)"));

  for (const char* name : {"cusz-i", "cusz", "fz-gpu", "cuszp"}) {
    auto c = szi::baselines::make_compressor(name);
    for (const auto& ds : {"miranda", "rtm"}) {
      const auto fields =
          szi::datagen::make_dataset(ds, szi::datagen::Size::Small);
      const auto& f = fields.front();
      const double rel = 1e-3;
      const auto a = c->compress(f, {ErrorMode::Rel, rel});
      const auto b = c->compress(f, {ErrorMode::Rel, rel});
      EXPECT_EQ(a.bytes, b.bytes) << name << " on " << f.label();
      const auto dec = c->decompress(a.bytes);
      const double eb = rel * szi::metrics::value_range(f.data);
      EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, eb))
          << name << " on " << f.label();
    }
  }
}

/// The archive must also be identical across worker counts. Golden digests
/// produced with SZI_THREADS=1 are written to a scratch file by the
/// 1-thread ctest instance and verified by the 4-thread instance.
TEST(ParallelDeterminism, ArchivesMatchAcrossWorkerCounts) {
  const char* threads_env = std::getenv("SZI_THREADS");
  if (!threads_env) GTEST_SKIP() << "run via ctest (sets SZI_THREADS)";
  const bool is_reference = std::string(threads_env) == "1";
  const std::string path = "parallel_determinism_golden.bin";

  auto c = szi::baselines::make_compressor("cusz-i");
  const auto fields =
      szi::datagen::make_dataset("s3d", szi::datagen::Size::Small);
  const auto enc = c->compress(fields.front(), {ErrorMode::Rel, 1e-3});

  if (is_reference) {
    szi::io::write_bytes(path, enc.bytes);
    SUCCEED() << "golden archive written";
  } else {
    std::vector<std::byte> golden;
    try {
      golden = szi::io::read_bytes(path);
    } catch (const std::exception&) {
      GTEST_SKIP() << "golden archive missing (1-thread instance not run)";
    }
    EXPECT_EQ(golden, enc.bytes)
        << "archive differs between 1 and " << threads_env << " workers";
  }
}

/// The batched front end pipelines fields across streams with pooled
/// workspaces, so scheduling AND buffer reuse both become candidates for
/// nondeterminism. Every archive must still match the plain per-field call
/// byte for byte — including on repeat batches, where the pool is warm and
/// every workspace block carries a previous field's stale contents.
TEST(ParallelDeterminism, BatchedCompressManyMatchesSequential) {
  std::vector<szi::Field> fields;
  for (const char* ds : {"miranda", "nyx", "s3d"})
    for (auto& f : szi::datagen::make_dataset(ds, szi::datagen::Size::Small))
      fields.push_back(std::move(f));
  ASSERT_GE(fields.size(), 4u);

  std::vector<szi::FieldView> views;
  for (const auto& f : fields) views.push_back({f.view(), f.dims});

  const szi::CompressParams p{ErrorMode::Rel, 1e-3};
  std::vector<std::vector<std::byte>> seq;
  for (const auto& v : views)
    seq.push_back(szi::cuszi_compress(v.data, v.dims, p));

  for (int round = 0; round < 3; ++round) {
    const auto batch = szi::cuszi_compress_many(views, p);
    ASSERT_EQ(batch.size(), seq.size()) << "round " << round;
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_EQ(batch[i], seq[i])
          << "field " << i << " (" << fields[i].label() << "), round "
          << round;
  }

  // Odd stream counts and the degenerate single-stream case take different
  // round-robin paths through the same workspaces.
  for (const std::size_t streams : {std::size_t{1}, std::size_t{3}}) {
    const auto batch = szi::cuszi_compress_many(views, p, nullptr, streams);
    ASSERT_EQ(batch.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_EQ(batch[i], seq[i]) << "field " << i << " with " << streams
                                  << " stream(s)";
  }
}

}  // namespace
