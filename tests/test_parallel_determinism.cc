// Multi-worker correctness: this binary is registered with ctest once per
// worker count — SZI_THREADS=1 (the reference, which writes goldens) and
// SZI_THREADS=2/3/4/8 plus a SZI_NO_AVX2=1 instance (see
// tests/CMakeLists.txt). The compressed archives AND the reconstructions
// must be byte-identical regardless of worker count — the tile
// decomposition recomputes shared borders instead of synchronizing, the
// decode path snapshots slab-boundary planes before reconstructing slabs
// concurrently, and the SIMD kernels replicate exact scalar op order — so
// neither scheduling nor vector width may ever leak into the output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "baselines/registry.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "io/bin_io.hh"
#include "metrics/stats.hh"
#include "predictor/ginterp.hh"

namespace {

using szi::ErrorMode;

/// Golden archive hashes are impractical across platforms; instead each run
/// writes its archive digest to stdout and asserts determinism *within* the
/// process by compressing twice, plus bounded round trips. Cross-worker
/// byte-equality is asserted by comparing against a single-threaded
/// recompute: the pool is sized by SZI_THREADS at first use, so we spawn
/// the reference through the same code path before/after cannot differ —
/// the meaningful assertion is repeatability and boundedness under the
/// configured worker count.
TEST(ParallelDeterminism, RepeatableArchivesAndBoundedRoundTrips) {
  const char* threads = std::getenv("SZI_THREADS");
  SCOPED_TRACE(std::string("SZI_THREADS=") + (threads ? threads : "(unset)"));

  for (const char* name : {"cusz-i", "cusz", "fz-gpu", "cuszp"}) {
    auto c = szi::baselines::make_compressor(name);
    for (const auto& ds : {"miranda", "rtm"}) {
      const auto fields =
          szi::datagen::make_dataset(ds, szi::datagen::Size::Small);
      const auto& f = fields.front();
      const double rel = 1e-3;
      const auto a = c->compress(f, {ErrorMode::Rel, rel});
      const auto b = c->compress(f, {ErrorMode::Rel, rel});
      EXPECT_EQ(a.bytes, b.bytes) << name << " on " << f.label();
      const auto dec = c->decompress(a.bytes);
      const double eb = rel * szi::metrics::value_range(f.data);
      EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, eb))
          << name << " on " << f.label();
    }
  }
}

/// The archive AND both reconstruction paths must be identical across
/// worker counts. Goldens produced with SZI_THREADS=1 are written to
/// scratch files by the 1-thread ctest instance; every other instance
/// (2/3/4/8 workers and the SZI_NO_AVX2 run, which takes the scalar kernel
/// paths) verifies against them. The bitcomp-wrapped decode exercises the
/// pipelined path: parallel LZSS block decode + Huffman chunk groups feeding
/// the slab-parallel reconstruction through the codes_needed watermark.
TEST(ParallelDeterminism, ArchivesAndReconsMatchAcrossWorkerCounts) {
  const char* threads_env = std::getenv("SZI_THREADS");
  if (!threads_env) GTEST_SKIP() << "run via ctest (sets SZI_THREADS)";
  const bool is_reference = std::string(threads_env) == "1" &&
                            std::getenv("SZI_NO_AVX2") == nullptr;
  const std::string path = "parallel_determinism_golden.bin";
  const std::string recon_path = "parallel_determinism_golden_recon.bin";
  const std::string wrap_path = "parallel_determinism_golden_wrap.bin";
  const std::string roi_path = "parallel_determinism_golden_roi.bin";

  auto c = szi::baselines::make_compressor("cusz-i");
  const auto fields =
      szi::datagen::make_dataset("s3d", szi::datagen::Size::Small);
  const auto enc = c->compress(fields.front(), {ErrorMode::Rel, 1e-3});

  // Plain decode (slab-parallel reconstruction) and the bitcomp-wrapped
  // pipelined decode must agree with each other at every worker count.
  const auto recon = szi::cuszi_decompress_f32(enc.bytes);
  const auto recon_bytes = std::as_bytes(std::span<const float>(recon));
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto wrapped = szi::bitcomp_wrap_archive(enc.bytes);
  const auto recon_bc = szi::cuszi_decompress_bitcomp_f32(wrapped, ws);
  ASSERT_EQ(recon_bc.size(), recon.size());
  EXPECT_EQ(0, std::memcmp(recon.data(), recon_bc.data(),
                           recon.size() * sizeof(float)))
      << "bitcomp decode diverges from plain decode at SZI_THREADS="
      << threads_env;

  // Full-fidelity progressive decode must be the same bytes again — raw and
  // wrapped — and a coarse preview must be the exact subsample of the full
  // reconstruction at every worker count.
  const auto prog = szi::cuszi_decompress_progressive_f32(enc.bytes, 1);
  ASSERT_EQ(prog.data.size(), recon.size());
  EXPECT_EQ(0, std::memcmp(prog.data.data(), recon.data(),
                           recon.size() * sizeof(float)))
      << "progressive(1) diverges from plain decode at SZI_THREADS="
      << threads_env;
  const auto progw = szi::cuszi_decompress_progressive_f32(wrapped, 1);
  ASSERT_EQ(progw.data.size(), recon.size());
  EXPECT_EQ(0, std::memcmp(progw.data.data(), recon.data(),
                           recon.size() * sizeof(float)))
      << "wrapped progressive(1) diverges at SZI_THREADS=" << threads_env;
  const auto pre = szi::cuszi_decompress_progressive_f32(enc.bytes, 2);
  const auto sub = szi::predictor::ginterp_subsample(
      std::span<const float>(recon), fields.front().dims, 2);
  ASSERT_EQ(pre.data.size(), sub.size());
  EXPECT_EQ(0,
            std::memcmp(pre.data.data(), sub.data(), sub.size() * sizeof(float)))
      << "level-2 preview diverges from subsample at SZI_THREADS="
      << threads_env;

  // The fused wrapped compress must agree with the after-the-fact wrap at
  // this worker count too — the BBC2 segment table pins the chooser's
  // per-segment method decisions, so any scheduling leak into the sampled
  // chooser or the speculative block submission shows up as a byte diff.
  szi::StageTimings wt;
  const auto fused_wrapped = szi::cuszi_compress_bitcomp(
      std::span<const float>(fields.front().data), fields.front().dims,
      {ErrorMode::Rel, 1e-3}, &wt, ws);
  EXPECT_EQ(fused_wrapped, wrapped)
      << "fused wrapped archive diverges at SZI_THREADS=" << threads_env;

  // The index-steered ROI decode fans slabs out across the pool just like
  // the full decode, but over a clipped working set with ranged segment
  // reads — a scheduling leak there would produce a box that differs from
  // the cropped full reconstruction only at some worker counts. Pin it to
  // the same golden mechanism: an interior box that straddles tile-slab
  // boundaries, decoded through the tile index at every worker count.
  const szi::RoiBox box{{17, 30, 41}, {34, 25, 20}};
  const auto roi = szi::cuszi_decompress_roi_f32(enc.bytes, box);
  EXPECT_TRUE(roi.indexed)
      << "SZI2 archive lost its tile index at SZI_THREADS=" << threads_env;
  const auto roi_bytes = std::as_bytes(std::span<const float>(roi.data));
  for (std::uint32_t z = 0; z < box.ext.z; ++z)
    for (std::uint32_t y = 0; y < box.ext.y; ++y)
      for (std::uint32_t x = 0; x < box.ext.x; ++x) {
        const auto full = recon[((box.lo.z + z) * fields.front().dims.y +
                                 (box.lo.y + y)) *
                                    fields.front().dims.x +
                                (box.lo.x + x)];
        const auto got = roi.data[(z * box.ext.y + y) * box.ext.x + x];
        ASSERT_EQ(std::memcmp(&full, &got, sizeof(float)), 0)
            << "ROI decode diverges from cropped full decode at "
            << "SZI_THREADS=" << threads_env << " (" << x << "," << y << ","
            << z << ")";
      }

  if (is_reference) {
    szi::io::write_bytes(path, enc.bytes);
    szi::io::write_bytes(recon_path, recon_bytes);
    szi::io::write_bytes(wrap_path, wrapped);
    szi::io::write_bytes(roi_path, roi_bytes);
    SUCCEED() << "golden archive + reconstruction written";
  } else {
    std::vector<std::byte> golden, golden_recon, golden_wrap, golden_roi;
    try {
      golden = szi::io::read_bytes(path);
      golden_recon = szi::io::read_bytes(recon_path);
      golden_wrap = szi::io::read_bytes(wrap_path);
      golden_roi = szi::io::read_bytes(roi_path);
    } catch (const std::exception&) {
      GTEST_SKIP() << "goldens missing (1-thread instance not run)";
    }
    EXPECT_EQ(golden, enc.bytes)
        << "archive differs between 1 and " << threads_env << " workers";
    ASSERT_EQ(golden_recon.size(), recon_bytes.size());
    EXPECT_EQ(0, std::memcmp(golden_recon.data(), recon_bytes.data(),
                             recon_bytes.size()))
        << "reconstruction differs between 1 and " << threads_env
        << " workers";
    EXPECT_EQ(golden_wrap, wrapped)
        << "wrapped archive (chosen methods) differs between 1 and "
        << threads_env << " workers";
    ASSERT_EQ(golden_roi.size(), roi_bytes.size());
    EXPECT_EQ(0,
              std::memcmp(golden_roi.data(), roi_bytes.data(), roi_bytes.size()))
        << "ROI decode differs between 1 and " << threads_env << " workers";
  }
}

/// The batched front end pipelines fields across streams with pooled
/// workspaces, so scheduling AND buffer reuse both become candidates for
/// nondeterminism. Every archive must still match the plain per-field call
/// byte for byte — including on repeat batches, where the pool is warm and
/// every workspace block carries a previous field's stale contents.
TEST(ParallelDeterminism, BatchedCompressManyMatchesSequential) {
  std::vector<szi::Field> fields;
  for (const char* ds : {"miranda", "nyx", "s3d"})
    for (auto& f : szi::datagen::make_dataset(ds, szi::datagen::Size::Small))
      fields.push_back(std::move(f));
  ASSERT_GE(fields.size(), 4u);

  std::vector<szi::FieldView> views;
  for (const auto& f : fields) views.push_back({f.view(), f.dims});

  const szi::CompressParams p{ErrorMode::Rel, 1e-3};
  std::vector<std::vector<std::byte>> seq;
  for (const auto& v : views)
    seq.push_back(szi::cuszi_compress(v.data, v.dims, p));

  for (int round = 0; round < 3; ++round) {
    const auto batch = szi::cuszi_compress_many(views, p);
    ASSERT_EQ(batch.size(), seq.size()) << "round " << round;
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_EQ(batch[i], seq[i])
          << "field " << i << " (" << fields[i].label() << "), round "
          << round;
  }

  // Odd stream counts and the degenerate single-stream case take different
  // round-robin paths through the same workspaces.
  for (const std::size_t streams : {std::size_t{1}, std::size_t{3}}) {
    const auto batch = szi::cuszi_compress_many(views, p, nullptr, streams);
    ASSERT_EQ(batch.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
      EXPECT_EQ(batch[i], seq[i]) << "field " << i << " with " << streams
                                  << " stream(s)";
  }
}

}  // namespace
