// Huffman codec tests: codebook properties, chunked round-trips, histogram
// equivalence (§VI-A).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "datagen/rng.hh"
#include "device/arena.hh"
#include "device/thread_pool.hh"
#include "huffman/codebook.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"

namespace {

using szi::huffman::Codebook;
using szi::huffman::DecodeTable;
using szi::quant::Code;

std::vector<Code> geometric_codes(std::size_t n, double p, std::size_t nbins,
                                  std::uint64_t seed) {
  // Centered near nbins/2 with geometric tails — the shape of G-Interp
  // quant-code streams.
  szi::datagen::Rng rng(seed);
  std::vector<Code> codes(n);
  for (auto& c : codes) {
    int offset = 0;
    while (rng.uniform() > p && offset < static_cast<int>(nbins / 2) - 1)
      ++offset;
    const int sign = rng.uniform() < 0.5 ? -1 : 1;
    c = static_cast<Code>(static_cast<int>(nbins / 2) + sign * offset);
  }
  return codes;
}

TEST(Codebook, KraftInequalityHolds) {
  const auto codes = geometric_codes(50000, 0.4, 1024, 1);
  const auto hist = szi::huffman::histogram(codes, 1024);
  const auto book = Codebook::build(hist);
  long double kraft = 0;
  for (const auto len : book.lengths)
    if (len > 0) kraft += std::pow(2.0L, -static_cast<int>(len));
  EXPECT_LE(kraft, 1.0L + 1e-12L);
  // A full Huffman tree achieves equality.
  EXPECT_GT(kraft, 0.999L);
}

TEST(Codebook, PrefixFree) {
  const auto codes = geometric_codes(20000, 0.5, 256, 2);
  const auto hist = szi::huffman::histogram(codes, 256);
  const auto book = Codebook::build(hist);
  for (std::size_t a = 0; a < book.nbins(); ++a) {
    if (book.lengths[a] == 0) continue;
    for (std::size_t b = 0; b < book.nbins(); ++b) {
      if (a == b || book.lengths[b] == 0) continue;
      if (book.lengths[a] <= book.lengths[b]) {
        const auto prefix =
            book.codes[b] >> (book.lengths[b] - book.lengths[a]);
        EXPECT_FALSE(prefix == book.codes[a] &&
                     book.lengths[a] < book.lengths[b])
            << "code " << a << " prefixes " << b;
      }
    }
  }
}

TEST(Codebook, SingleSymbolGetsOneBit) {
  std::vector<std::uint32_t> hist(16, 0);
  hist[7] = 1000;
  const auto book = Codebook::build(hist);
  EXPECT_EQ(book.lengths[7], 1);
  for (std::size_t s = 0; s < hist.size(); ++s)
    if (s != 7) {
      EXPECT_EQ(book.lengths[s], 0);
    }
}

TEST(Codebook, SkewedDistributionStaysWithinLengthLimit) {
  // Exponentially exploding counts force deep optimal trees; the builder
  // must flatten to <= 32 bits.
  std::vector<std::uint32_t> hist(64);
  std::uint64_t c = 1;
  for (auto& h : hist) {
    h = static_cast<std::uint32_t>(std::min<std::uint64_t>(c, 0xFFFFFFFFu));
    c = c * 2 + 1;
  }
  const auto book = Codebook::build(hist);
  for (const auto len : book.lengths) EXPECT_LE(len, szi::huffman::kMaxCodeLen);
}

TEST(Codebook, ExpectedBitsNearEntropy) {
  const auto codes = geometric_codes(100000, 0.3, 1024, 3);
  const auto hist = szi::huffman::histogram(codes, 1024);
  const auto book = Codebook::build(hist);
  double entropy = 0;
  const double n = static_cast<double>(codes.size());
  for (const auto h : hist)
    if (h > 0) {
      const double p = h / n;
      entropy -= p * std::log2(p);
    }
  const double avg = book.expected_bits(hist);
  EXPECT_GE(avg + 1e-9, entropy);      // Shannon lower bound
  EXPECT_LE(avg, entropy + 1.0);       // Huffman redundancy bound
}

TEST(Histogram, TopkMatchesBaseline) {
  const auto codes = geometric_codes(123457, 0.35, 1024, 4);
  const auto a = szi::huffman::histogram(codes, 1024);
  const auto b = szi::huffman::histogram_topk(codes, 1024, 512, 16);
  EXPECT_EQ(a, b);
}

TEST(Histogram, TopkDegradesToK1) {
  const auto codes = geometric_codes(4096, 0.9, 1024, 5);
  const auto a = szi::huffman::histogram(codes, 1024);
  const auto b = szi::huffman::histogram_topk(codes, 1024, 512, 1);
  EXPECT_EQ(a, b);
}

TEST(Histogram, TopkClampsOversizedK) {
  const auto codes = geometric_codes(4096, 0.5, 1024, 6);
  const auto a = szi::huffman::histogram(codes, 1024);
  const auto b = szi::huffman::histogram_topk(codes, 1024, 512, 10000);
  EXPECT_EQ(a, b);
}

TEST(Huffman, RoundTripCentered) {
  const auto codes = geometric_codes(200001, 0.4, 1024, 7);
  const auto enc = szi::huffman::encode(codes, 1024);
  const auto dec = szi::huffman::decode(enc);
  EXPECT_EQ(codes, dec);
}

TEST(Huffman, RoundTripUniform) {
  szi::datagen::Rng rng(8);
  std::vector<Code> codes(65536);
  for (auto& c : codes) c = static_cast<Code>(rng.next_u64() % 1024);
  const auto enc = szi::huffman::encode(codes, 1024);
  EXPECT_EQ(szi::huffman::decode(enc), codes);
}

TEST(Huffman, RoundTripConstant) {
  std::vector<Code> codes(10000, 512);
  const auto enc = szi::huffman::encode(codes, 1024);
  EXPECT_EQ(szi::huffman::decode(enc), codes);
  // ~1 bit per symbol plus header.
  EXPECT_LT(enc.size(),
            10000 / 8 + szi::huffman::overhead_bytes(1024, 10000) + 16);
}

TEST(Huffman, RoundTripEmpty) {
  std::vector<Code> codes;
  const auto enc = szi::huffman::encode(codes, 1024);
  EXPECT_TRUE(szi::huffman::decode(enc).empty());
}

TEST(Huffman, RoundTripOddChunkBoundaries) {
  for (const std::size_t n : {1u, 4095u, 4096u, 4097u, 8193u}) {
    const auto codes = geometric_codes(n, 0.5, 256, 9 + n);
    const auto enc = szi::huffman::encode(codes, 256);
    EXPECT_EQ(szi::huffman::decode(enc), codes) << "n=" << n;
  }
}

TEST(Huffman, CompressesCenteredBetterThanUniform) {
  const auto centered = geometric_codes(100000, 0.6, 1024, 10);
  szi::datagen::Rng rng(11);
  std::vector<Code> uniform(100000);
  for (auto& c : uniform) c = static_cast<Code>(rng.next_u64() % 1024);
  EXPECT_LT(szi::huffman::encode(centered, 1024).size(),
            szi::huffman::encode(uniform, 1024).size() / 2);
}

TEST(PrebuiltCodebook, CoversEverySymbolAndRoundTrips) {
  const auto book = Codebook::prebuilt(1024, 512);
  for (const auto len : book.lengths) {
    EXPECT_GT(len, 0u);  // data-independent books must encode any symbol
    EXPECT_LE(len, szi::huffman::kMaxCodeLen);
  }
  // Encode a realistic centered stream with the prebuilt book and decode.
  const auto codes = geometric_codes(50000, 0.5, 1024, 21);
  const auto enc = szi::huffman::encode_with_book(codes, book);
  EXPECT_EQ(szi::huffman::decode(enc), codes);
}

TEST(PrebuiltCodebook, CostsLittleOnCenteredStreams) {
  // The §VI-A future-work tradeoff: skipping the host build costs some
  // ratio; on G-Interp-like concentrated codes it should stay small.
  const auto codes = geometric_codes(200000, 0.5, 1024, 22);
  const auto hist = szi::huffman::histogram(codes, 1024);
  const auto tuned = Codebook::build(hist);
  const auto fixed = Codebook::prebuilt(1024, 512);
  const double tuned_bits = tuned.expected_bits(hist);
  const double fixed_bits = fixed.expected_bits(hist);
  EXPECT_GE(fixed_bits, tuned_bits - 1e-9);
  EXPECT_LT(fixed_bits, tuned_bits * 1.6) << "prior should be in the ballpark";
}

TEST(FastDecode, MatchesBitSerialDecoder) {
  // The LUT path must decode exactly the same symbols as the canonical
  // bit-serial decoder, including long-tail codewords that escape the LUT.
  const auto codes = geometric_codes(100000, 0.2, 1024, 31);  // heavy tails
  const auto hist = szi::huffman::histogram(codes, 1024);
  const auto book = Codebook::build(hist);
  const auto enc = szi::huffman::encode_with_book(codes, book);
  EXPECT_EQ(szi::huffman::decode(enc), codes);

  // Direct comparison of both decoders on one raw bitstream.
  std::vector<std::uint8_t> bits;
  {
    szi::lossless::BitWriter bw(bits);
    for (std::size_t i = 0; i < 5000; ++i)
      bw.put(book.codes[codes[i]], book.lengths[codes[i]]);
    bw.align();
  }
  const auto slow_table = szi::huffman::DecodeTable::from(book);
  const auto fast_table = szi::huffman::FastDecodeTable::from(book);
  szi::lossless::BitReader slow_br(bits), fast_br(bits);
  for (std::size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(slow_table.decode(slow_br), fast_table.decode(fast_br)) << i;
    ASSERT_EQ(slow_br.position(), fast_br.position()) << i;
  }
}

TEST(Huffman, ThrowsOnTruncatedStream) {
  const auto codes = geometric_codes(10000, 0.4, 1024, 12);
  auto enc = szi::huffman::encode(codes, 1024);
  enc.resize(enc.size() / 2);
  // Either the header or the payload check must fire.
  EXPECT_THROW((void)szi::huffman::decode(enc), std::runtime_error);
}

// Worker-slot indexing under nested-launch degradation: a histogram invoked
// from inside an outer parallel_for sees g_in_launch set, so its internal
// launch runs every worker index inline on the calling thread. The slots
// are indexed by loop index (not thread id), so every private histogram
// must still land in its own slot and the totals must match the top-level
// run exactly.
TEST(Histogram, NestedLaunchMatchesTopLevel) {
  // > kHistogramMinPerWorker elements so multiple worker slots exist.
  const auto codes = geometric_codes(3 << 16, 0.35, 1024, 21);
  const auto reference = szi::huffman::histogram(codes, 1024);

  std::vector<std::vector<std::uint32_t>> nested(4);
  szi::dev::ThreadPool::instance().parallel_for(
      nested.size(),
      [&](std::size_t i) { nested[i] = szi::huffman::histogram(codes, 1024); },
      1);
  for (std::size_t i = 0; i < nested.size(); ++i)
    EXPECT_EQ(nested[i], reference) << "outer launch index " << i;
}

// The serial one-pass emitter behind the SZI2 level segments must produce
// the same bytes as the two-pass encode_with_book for every stream shape —
// including empty streams and sizes around chunk boundaries.
TEST(Huffman, SerialEmitterMatchesEncodeWithBook) {
  szi::dev::Arena arena;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{1023}, std::size_t{1024},
        std::size_t{1025}, std::size_t{50000}}) {
    const auto codes = geometric_codes(n, 0.4, 1024, 7 + n);
    auto hist = szi::huffman::histogram(codes, 1024);
    if (n == 0) hist.assign(1024, 0);  // empty stream, empty histogram
    const auto book = Codebook::build(hist);

    szi::dev::Workspace ws_a(arena), ws_b(arena);
    const auto two_pass = szi::huffman::encode_with_book(
        codes, book, szi::huffman::kDefaultChunk, ws_a);
    const auto one_pass = szi::huffman::encode_with_book_serial(
        codes, book, szi::huffman::kDefaultChunk, ws_b);
    ASSERT_EQ(one_pass.size(), two_pass.size()) << "n=" << n;
    EXPECT_EQ(0,
              std::memcmp(one_pass.data(), two_pass.data(), two_pass.size()))
        << "n=" << n;

    const std::vector<std::byte> stream(one_pass.begin(), one_pass.end());
    EXPECT_EQ(szi::huffman::decode(stream), codes) << "n=" << n;
  }
}

// build_level_books is just Codebook::build per histogram — including the
// all-zero histogram, whose empty book must still frame a decodable (empty)
// stream.
TEST(Huffman, LevelBooksMatchPerHistogramBuilds) {
  std::vector<std::vector<std::uint32_t>> hists;
  hists.push_back(szi::huffman::histogram(geometric_codes(4096, 0.5, 512, 1),
                                          512));
  hists.push_back(szi::huffman::histogram(geometric_codes(100, 0.2, 512, 2),
                                          512));
  hists.emplace_back(512, 0);  // empty level

  const auto books = szi::huffman::build_level_books(hists);
  ASSERT_EQ(books.size(), hists.size());
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const auto ref = Codebook::build(hists[i]);
    EXPECT_EQ(books[i].codes, ref.codes) << "book " << i;
    EXPECT_EQ(books[i].lengths, ref.lengths) << "book " << i;
  }

  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto empty = szi::huffman::encode_with_book_serial(
      {}, books.back(), szi::huffman::kDefaultChunk, ws);
  const std::vector<std::byte> stream(empty.begin(), empty.end());
  EXPECT_TRUE(szi::huffman::decode(stream).empty());
}

}  // namespace
