// CLI tests: argument parsing and end-to-end compress/decompress through
// run() with real files in a temp directory.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "cli/cli.hh"
#include "datagen/datasets.hh"
#include "io/bin_io.hh"
#include "metrics/stats.hh"

namespace {

using szi::cli::Command;
using szi::cli::Options;
using szi::cli::parse;

TEST(CliParse, CompressDefaults) {
  const Options o =
      parse({"-z", "-i", "in.f32", "-d", "64", "32", "16"});
  EXPECT_EQ(o.command, Command::Compress);
  EXPECT_EQ(o.input, "in.f32");
  EXPECT_EQ(o.dims, (szi::dev::Dim3{64, 32, 16}));
  EXPECT_EQ(o.compressor, "cusz-i");
  EXPECT_EQ(o.mode, szi::ErrorMode::Rel);
  EXPECT_DOUBLE_EQ(o.value, 1e-3);
  EXPECT_FALSE(o.bitcomp);
}

TEST(CliParse, PartialDims) {
  EXPECT_EQ(parse({"-z", "-i", "a", "-d", "100"}).dims,
            (szi::dev::Dim3{100, 1, 1}));
  EXPECT_EQ(parse({"-z", "-i", "a", "-d", "100", "50"}).dims,
            (szi::dev::Dim3{100, 50, 1}));
}

TEST(CliParse, ModesAndFlags) {
  const Options o = parse({"-z", "-i", "a", "-d", "8", "-m", "abs", "-e",
                           "0.5", "-c", "cusz", "--bitcomp", "--verify",
                           "--stages"});
  EXPECT_EQ(o.mode, szi::ErrorMode::Abs);
  EXPECT_DOUBLE_EQ(o.value, 0.5);
  EXPECT_EQ(o.compressor, "cusz");
  EXPECT_TRUE(o.bitcomp);
  EXPECT_TRUE(o.verify);
  EXPECT_TRUE(o.stages);
  EXPECT_EQ(parse({"-z", "-i", "a", "-d", "8", "-m", "rate"}).mode,
            szi::ErrorMode::FixedRate);
}

TEST(CliParse, Rejections) {
  EXPECT_THROW((void)parse({}), std::invalid_argument);
  EXPECT_THROW((void)parse({"-z"}), std::invalid_argument);                // no -i
  EXPECT_THROW((void)parse({"-z", "-i", "a"}), std::invalid_argument);    // no -d
  EXPECT_THROW((void)parse({"-x", "-i", "a"}), std::invalid_argument);    // no -o
  EXPECT_THROW((void)parse({"-z", "-i", "a", "-d", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"-z", "-i", "a", "-d", "8", "-e", "nan?"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"-z", "-i", "a", "-d", "8", "-m", "pwrel"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--bogus"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"-z", "-i", "a", "-d", "8", "-e", "-1"}),
               std::invalid_argument);
}

TEST(CliParse, HelpAndList) {
  EXPECT_EQ(parse({"--help"}).command, Command::Help);
  EXPECT_EQ(parse({"--list"}).command, Command::List);
  EXPECT_FALSE(szi::cli::usage().empty());
}

TEST(CliParse, ServeBench) {
  const Options def = parse({"--serve-bench"});
  EXPECT_EQ(def.command, Command::ServeBench);
  EXPECT_EQ(def.serve_requests, 64u);
  EXPECT_EQ(parse({"--serve-bench", "200"}).serve_requests, 200u);
  EXPECT_THROW((void)parse({"--serve-bench", "0"}), std::invalid_argument);
  EXPECT_THROW((void)parse({"--serve-bench", "abc"}), std::invalid_argument);
}

TEST(CliRun, ServeBenchCompletesByteIdentical) {
  Options o;
  o.command = Command::ServeBench;
  o.serve_requests = 16;
  EXPECT_EQ(szi::cli::run(o), 0);  // nonzero on any mismatch or failure
}

TEST(CliRun, CompressDecompressRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szi_cli_test";
  fs::create_directories(dir);
  const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const fs::path raw = dir / "field.f32";
  szi::io::write_f32(raw.string(), f.data);

  Options z;
  z.command = Command::Compress;
  z.input = raw.string();
  z.output = (dir / "field.szi").string();
  z.dims = f.dims;
  z.mode = szi::ErrorMode::Rel;
  z.value = 1e-3;
  z.bitcomp = true;
  z.verify = true;
  z.stages = true;  // exercises the fused predict+histogram reporting
  EXPECT_EQ(szi::cli::run(z), 0);
  EXPECT_TRUE(fs::exists(dir / "field.szi"));
  EXPECT_LT(fs::file_size(dir / "field.szi"), fs::file_size(raw) / 10);

  Options x;
  x.command = Command::Decompress;
  x.input = z.output;
  x.output = (dir / "field.out.f32").string();
  x.bitcomp = true;
  EXPECT_EQ(szi::cli::run(x), 0);

  const auto recon = szi::io::read_f32(x.output, f.size());
  const double eb = 1e-3 * szi::metrics::value_range(f.data);
  EXPECT_TRUE(szi::metrics::error_bounded(f.data, recon, eb));
  fs::remove_all(dir);
}

TEST(CliParse, TypeFlagAndInfo) {
  EXPECT_TRUE(parse({"-z", "-i", "a", "-d", "8", "-t", "f64"}).f64);
  EXPECT_FALSE(parse({"-z", "-i", "a", "-d", "8", "-t", "f32"}).f64);
  EXPECT_THROW((void)parse({"-z", "-i", "a", "-d", "8", "-t", "f16"}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse({"-z", "-i", "a", "-d", "8", "-t", "f64", "-c", "cusz"}),
      std::invalid_argument);
  EXPECT_THROW((void)parse({"-z", "-i", "a", "-d", "8", "-t", "f64",
                            "--bitcomp"}),
               std::invalid_argument);
  EXPECT_EQ(parse({"--info", "-i", "a.szi"}).command, Command::Info);
  EXPECT_THROW((void)parse({"--info"}), std::invalid_argument);
}

TEST(CliRun, F64CompressDecompressAndInfo) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szi_cli_f64";
  fs::create_directories(dir);
  const szi::dev::Dim3 dims{40, 24, 16};
  std::vector<double> data(dims.volume());
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::sin(0.01 * static_cast<double>(i));
  const fs::path raw = dir / "f.f64";
  szi::io::write_f64(raw.string(), data);

  Options z;
  z.command = Command::Compress;
  z.input = raw.string();
  z.output = (dir / "f.szi").string();
  z.dims = dims;
  z.f64 = true;
  z.mode = szi::ErrorMode::Abs;
  z.value = 1e-8;
  z.verify = true;
  EXPECT_EQ(szi::cli::run(z), 0);

  Options info;
  info.command = Command::Info;
  info.input = z.output;
  EXPECT_EQ(szi::cli::run(info), 0);

  Options x;
  x.command = Command::Decompress;
  x.input = z.output;
  x.output = (dir / "f.out.f64").string();
  x.f64 = true;
  EXPECT_EQ(szi::cli::run(x), 0);
  const auto recon = szi::io::read_f64(x.output, data.size());
  EXPECT_TRUE(szi::metrics::error_bounded(data, recon, 1e-8));
  fs::remove_all(dir);
}

TEST(CliRun, InfoIdentifiesPipelines) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szi_cli_info";
  fs::create_directories(dir);
  std::vector<std::byte> junk(16, std::byte{0x11});
  szi::io::write_bytes((dir / "junk.bin").string(), junk);
  Options info;
  info.command = Command::Info;
  info.input = (dir / "junk.bin").string();
  EXPECT_EQ(szi::cli::run(info), 0);  // prints "unknown", still succeeds
  fs::remove_all(dir);
}

TEST(CliRun, DecompressWrongPipelineFails) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "szi_cli_test2";
  fs::create_directories(dir);
  const auto fields =
      szi::datagen::make_dataset("rtm", szi::datagen::Size::Small);
  const auto& f = fields.front();
  const fs::path raw = dir / "f.f32";
  szi::io::write_f32(raw.string(), f.data);

  Options z;
  z.command = Command::Compress;
  z.input = raw.string();
  z.output = (dir / "f.szi").string();
  z.dims = f.dims;
  EXPECT_EQ(szi::cli::run(z), 0);

  Options x;
  x.command = Command::Decompress;
  x.input = z.output;
  x.output = (dir / "f.out.f32").string();
  x.compressor = "cusz";  // wrong pipeline for a cusz-i archive
  EXPECT_THROW((void)szi::cli::run(x), std::runtime_error);
  fs::remove_all(dir);
}

}  // namespace
