// szi::serve — the batched multi-tenant service must change *when* work
// runs, never *what* runs: every response here is checked byte-for-byte
// against the direct library call. The concurrency tests (concurrent
// submit/drain, backpressure) are the tsan targets; the admission and
// failure-isolation tests pin the scheduler's control decisions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "device/thread_pool.hh"
#include "serve/serve.hh"

namespace szi {
namespace {

using serve::ServeConfig;
using serve::Service;
using serve::Status;
using serve::Ticket;

CompressParams rel3() { return {ErrorMode::Rel, 1e-3}; }

/// A small smooth field (cheap to compress, still exercises every level).
Field small_field(std::size_t nx = 24, std::size_t ny = 20,
                  std::size_t nz = 16, float phase = 0.f) {
  Field f("serve", "synth", {nx, ny, nz});
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x)
        f.at(x, y, z) = std::sin(0.3f * float(x) + phase) +
                        std::cos(0.2f * float(y)) * float(z + 1) * 0.05f;
  return f;
}

TEST(Serve, CompressBytesIdenticalToDirectCall) {
  Service svc;
  std::vector<Field> fields;
  for (int i = 0; i < 6; ++i)
    fields.push_back(small_field(24 + 4 * std::size_t(i % 3), 20, 16,
                                 0.1f * float(i)));
  std::vector<Ticket> tickets;
  for (const auto& f : fields)
    tickets.push_back(svc.submit_compress("t0", f.view(), f.dims, rel3()));
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const auto& r = tickets[i].wait();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    const auto direct =
        cuszi_compress(fields[i].view(), fields[i].dims, rel3());
    EXPECT_EQ(r.archive, direct) << "field " << i;
    EXPECT_EQ(r.bytes_in, fields[i].bytes());
    EXPECT_EQ(r.bytes_out, direct.size());
  }
}

TEST(Serve, DecompressAndRoiMatchDirectCalls) {
  Service svc;
  const Field f = small_field();
  const auto archive = cuszi_compress(f.view(), f.dims, rel3());
  const auto direct = cuszi_decompress_f32(archive);

  auto td = svc.submit_decompress("t0", archive);
  const RoiBox box{{3, 2, 1}, {8, 6, 5}};
  auto troi = svc.submit_roi("t0", archive, box);

  const auto& rd = td.wait();
  ASSERT_EQ(rd.status, Status::Ok) << rd.error;
  EXPECT_EQ(rd.data, direct);

  const auto roi_direct = cuszi_decompress_roi_f32(archive, box);
  const auto& rr = troi.wait();
  ASSERT_EQ(rr.status, Status::Ok) << rr.error;
  EXPECT_EQ(rr.data, roi_direct.data);
}

TEST(Serve, F64RoundTripThroughService) {
  Service svc;
  std::vector<double> data(24 * 20 * 16);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::sin(0.01 * double(i));
  const dev::Dim3 dims{24, 20, 16};
  auto tc = svc.submit_compress_f64("t0", data, dims, rel3());
  const auto& rc = tc.wait();
  ASSERT_EQ(rc.status, Status::Ok) << rc.error;
  EXPECT_EQ(rc.archive, cuszi_compress(std::span<const double>(data), dims,
                                       rel3()));
  auto tdec = svc.submit_decompress_f64("t0", rc.archive);
  const auto& rdec = tdec.wait();
  ASSERT_EQ(rdec.status, Status::Ok) << rdec.error;
  EXPECT_EQ(rdec.data_f64, cuszi_decompress_f64(rc.archive));
}

TEST(Serve, InlineModeProducesIdenticalBytes) {
  ServeConfig cfg;
  cfg.dispatch = ServeConfig::Dispatch::Inline;
  Service svc(cfg);
  EXPECT_TRUE(svc.inline_mode());
  const Field f = small_field();
  auto t = svc.submit_compress("t0", f.view(), f.dims, rel3());
  EXPECT_TRUE(t.ready());  // inline: completed inside submit()
  const auto& r = t.wait();
  ASSERT_EQ(r.status, Status::Ok) << r.error;
  EXPECT_EQ(r.archive, cuszi_compress(f.view(), f.dims, rel3()));
  auto td = svc.submit_decompress("t0", r.archive);
  EXPECT_EQ(td.wait().data, cuszi_decompress_f32(r.archive));
}

TEST(Serve, CoalescesSameSizeClassRequests) {
  ServeConfig cfg;
  cfg.dispatch = ServeConfig::Dispatch::Scheduler;
  cfg.max_wave = 8;
  Service svc(cfg);
  // Park the scheduler on a big field; the small same-class requests that
  // arrive meanwhile must leave the queue as one coalesced wave.
  const Field big = small_field(96, 96, 96);
  const Field small = small_field();
  std::vector<Ticket> tickets;
  tickets.push_back(svc.submit_compress("t0", big.view(), big.dims, rel3()));
  for (int i = 0; i < 8; ++i)
    tickets.push_back(
        svc.submit_compress("t0", small.view(), small.dims, rel3()));
  for (auto& t : tickets) ASSERT_EQ(t.wait().status, Status::Ok);
  svc.drain();
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 9u);
  EXPECT_EQ(s.completed, 9u);
  EXPECT_GT(s.coalesced, 0u);
  EXPECT_LT(s.waves, s.submitted);
  // Coalesced or not, bytes match the direct call.
  EXPECT_EQ(tickets[1].wait().archive,
            cuszi_compress(small.view(), small.dims, rel3()));
}

TEST(Serve, FailedRequestDoesNotPoisonItsWave) {
  ServeConfig cfg;
  cfg.dispatch = ServeConfig::Dispatch::Scheduler;
  Service svc(cfg);
  const Field big = small_field(96, 96, 96);
  const Field good = small_field();
  Field corrupt = small_field();  // same size class as `good`
  std::fill(corrupt.data.begin(), corrupt.data.end(), 1.f);
  // Constant field under Rel: value range 0 -> non-positive absolute bound.

  auto t0 = svc.submit_compress("t0", big.view(), big.dims, rel3());
  auto t1 = svc.submit_compress("t0", good.view(), good.dims, rel3());
  auto t2 = svc.submit_compress("t0", corrupt.view(), corrupt.dims, rel3());
  auto t3 = svc.submit_compress("t0", good.view(), good.dims, rel3());

  EXPECT_EQ(t0.wait().status, Status::Ok);
  EXPECT_EQ(t1.wait().status, Status::Ok);
  const auto& bad = t2.wait();
  EXPECT_EQ(bad.status, Status::Failed);
  EXPECT_NE(bad.error.find("error bound"), std::string::npos) << bad.error;
  const auto& after = t3.wait();
  ASSERT_EQ(after.status, Status::Ok) << after.error;
  EXPECT_EQ(after.archive, cuszi_compress(good.view(), good.dims, rel3()));
  const auto s = svc.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(Serve, AdmissionRejectModeRejectsOverBudget) {
  ServeConfig cfg;
  cfg.workspace_budget_bytes = 1;  // nothing fits
  cfg.over_budget = ServeConfig::OverBudget::Reject;
  Service svc(cfg);
  const Field f = small_field();
  auto t = svc.submit_compress("t0", f.view(), f.dims, rel3());
  const auto& r = t.wait();
  EXPECT_EQ(r.status, Status::Rejected);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
  const auto s = svc.stats();
  EXPECT_EQ(s.admission_rejects, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(svc.tenant_stats("t0").rejected, 1u);
}

TEST(Serve, AdmissionQueueModeSplitsWavesButCompletesAll) {
  ServeConfig cfg;
  cfg.dispatch = ServeConfig::Dispatch::Scheduler;
  cfg.workspace_budget_bytes = 1;  // every wave over budget
  cfg.over_budget = ServeConfig::OverBudget::Queue;
  cfg.max_wave = 8;
  Service svc(cfg);
  const Field big = small_field(96, 96, 96);
  const Field small = small_field();
  std::vector<Ticket> tickets;
  tickets.push_back(svc.submit_compress("t0", big.view(), big.dims, rel3()));
  for (int i = 0; i < 6; ++i)
    tickets.push_back(
        svc.submit_compress("t0", small.view(), small.dims, rel3()));
  for (auto& t : tickets) {
    const auto& r = t.wait();
    ASSERT_EQ(r.status, Status::Ok) << r.error;  // lone waves always dispatch
  }
  svc.drain();
  const auto s = svc.stats();
  EXPECT_EQ(s.completed, 7u);
  EXPECT_GT(s.admission_deferrals, 0u);  // over-budget waves were split
  EXPECT_EQ(tickets[1].wait().archive,
            cuszi_compress(small.view(), small.dims, rel3()));
}

TEST(Serve, ConcurrentSubmitAndDrainFromManyTenants) {
  ServeConfig cfg;
  cfg.queue_capacity = 16;  // exercise backpressure under contention
  Service svc(cfg);
  const Field f = small_field();
  const auto archive = cuszi_compress(f.view(), f.dims, rel3());
  const auto direct = cuszi_decompress_f32(archive);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> tenants;
  for (int t = 0; t < kThreads; ++t) {
    tenants.emplace_back([&, t] {
      const std::string name = "tenant" + std::to_string(t);
      // Burst-submit before waiting: 4 x 12 requests against capacity 16
      // forces submit() through the backpressure wait.
      std::vector<std::pair<int, Ticket>> mine;
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 3 == 0)
          mine.emplace_back(i, svc.submit_decompress(name, archive));
        else
          mine.emplace_back(i, svc.submit_compress(name, f.view(), f.dims,
                                                   rel3()));
      }
      for (auto& [i, tk] : mine) {
        const auto& r = tk.wait();
        if (i % 3 == 0) {
          if (r.data != direct) ++mismatches;
        } else {
          if (r.archive != archive) ++mismatches;
        }
      }
    });
  }
  for (auto& th : tenants) th.join();
  svc.drain();
  EXPECT_EQ(mismatches.load(), 0);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, std::uint64_t(kThreads * kPerThread));
  EXPECT_EQ(s.completed, std::uint64_t(kThreads * kPerThread));
  EXPECT_EQ(s.failed, 0u);
  for (int t = 0; t < kThreads; ++t) {
    const auto ts = svc.tenant_stats("tenant" + std::to_string(t));
    EXPECT_EQ(ts.requests, std::uint64_t(kPerThread));
    EXPECT_GT(ts.bytes_in, 0u);
    EXPECT_GT(ts.bytes_out, 0u);
    EXPECT_GE(ts.busy_seconds, 0.0);
  }
}

TEST(Serve, PerTenantAccountingSeparatesTenants) {
  Service svc;
  const Field f = small_field();
  auto a = svc.submit_compress("alice", f.view(), f.dims, rel3());
  auto b1 = svc.submit_compress("bob", f.view(), f.dims, rel3());
  auto b2 = svc.submit_compress("bob", f.view(), f.dims, rel3());
  (void)a.wait();
  (void)b1.wait();
  (void)b2.wait();
  EXPECT_EQ(svc.tenant_stats("alice").requests, 1u);
  EXPECT_EQ(svc.tenant_stats("bob").requests, 2u);
  EXPECT_EQ(svc.tenant_stats("bob").bytes_in, 2 * f.bytes());
  EXPECT_EQ(svc.tenant_stats("nobody").requests, 0u);
  EXPECT_EQ(svc.all_tenant_stats().size(), 2u);
  EXPECT_GT(svc.stats().arena_high_water_bytes, 0u);
}

TEST(Serve, DestructionDrainsAcceptedRequests) {
  const Field f = small_field();
  std::vector<Ticket> tickets;
  {
    Service svc;
    for (int i = 0; i < 10; ++i)
      tickets.push_back(svc.submit_compress("t0", f.view(), f.dims, rel3()));
  }  // destructor must complete everything
  for (auto& t : tickets) {
    EXPECT_TRUE(t.ready());
    EXPECT_EQ(t.wait().status, Status::Ok);
  }
}

TEST(Serve, UncoalescedAblationStillByteIdentical) {
  ServeConfig cfg;
  cfg.coalesce = false;
  Service svc(cfg);
  const Field f = small_field();
  std::vector<Ticket> tickets;
  for (int i = 0; i < 4; ++i)
    tickets.push_back(svc.submit_compress("t0", f.view(), f.dims, rel3()));
  const auto direct = cuszi_compress(f.view(), f.dims, rel3());
  for (auto& t : tickets) EXPECT_EQ(t.wait().archive, direct);
  svc.drain();
  EXPECT_EQ(svc.stats().coalesced, 0u);
}

}  // namespace
}  // namespace szi
