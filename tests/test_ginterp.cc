// G-Interp predictor round-trip and invariant tests (§V).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <tuple>
#include <vector>

#include "datagen/rng.hh"
#include "device/arena.hh"
#include "device/thread_pool.hh"
#include "metrics/stats.hh"
#include "predictor/anchor.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"
#include "predictor/interp_config.hh"

namespace {

using szi::dev::Dim3;
using szi::predictor::anchor_dims;
using szi::predictor::autotune;
using szi::predictor::geometry_for;
using szi::predictor::ginterp_compress;
using szi::predictor::ginterp_decompress;
using szi::predictor::InterpConfig;

std::vector<float> smooth_field(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  const double fx = rng.uniform(0.5, 2.0), fy = rng.uniform(0.5, 2.0),
               fz = rng.uniform(0.5, 2.0);
  std::vector<float> v(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        v[szi::dev::linearize(dims, x, y, z)] = static_cast<float>(
            std::sin(fx * x * 0.1) * std::cos(fy * y * 0.07) +
            0.5 * std::sin(fz * z * 0.05));
  return v;
}

std::vector<float> noisy_field(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  std::vector<float> v(dims.volume());
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

void roundtrip_expect_bounded(const std::vector<float>& data, const Dim3& dims,
                              double eb) {
  const auto prof = autotune(data, dims, eb);
  const auto enc = ginterp_compress(data, dims, eb, prof.config);
  const auto dec = ginterp_decompress(enc.codes, enc.anchors, enc.outliers,
                                      dims, eb, prof.config);
  ASSERT_EQ(dec.size(), data.size());
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb))
      << "max err " << szi::metrics::distortion(data, dec).max_err
      << " bound " << eb;
}

TEST(GInterp, RoundTrip3DSmooth) {
  const Dim3 dims{40, 33, 29};
  roundtrip_expect_bounded(smooth_field(dims, 1), dims, 1e-3);
}

TEST(GInterp, RoundTrip3DNoisy) {
  const Dim3 dims{37, 21, 18};
  roundtrip_expect_bounded(noisy_field(dims, 2), dims, 1e-2);
}

TEST(GInterp, RoundTrip2D) {
  const Dim3 dims{130, 77, 1};
  roundtrip_expect_bounded(smooth_field(dims, 3), dims, 1e-4);
}

TEST(GInterp, RoundTrip1D) {
  const Dim3 dims{3001, 1, 1};
  roundtrip_expect_bounded(smooth_field(dims, 4), dims, 1e-3);
}

TEST(GInterp, ExactOnAnchors) {
  const Dim3 dims{48, 24, 16};
  const auto data = smooth_field(dims, 5);
  const double eb = 1e-2;
  const InterpConfig cfg;  // default config, no tuning needed for exactness
  const auto enc = ginterp_compress(data, dims, eb, cfg);
  const auto dec = ginterp_decompress(enc.codes, enc.anchors, enc.outliers,
                                      dims, eb, cfg);
  const auto geo = geometry_for(dims);
  for (std::size_t z = 0; z < dims.z; z += geo.anchor.z)
    for (std::size_t y = 0; y < dims.y; y += geo.anchor.y)
      for (std::size_t x = 0; x < dims.x; x += geo.anchor.x) {
        const auto i = szi::dev::linearize(dims, x, y, z);
        EXPECT_EQ(data[i], dec[i]) << "anchor at " << x << "," << y << "," << z;
      }
}

TEST(GInterp, AnchorCountRoughlyOneIn512) {
  const Dim3 dims{256, 128, 64};
  const auto ad = anchor_dims(dims, geometry_for(dims).anchor);
  const double frac =
      static_cast<double>(ad.volume()) / static_cast<double>(dims.volume());
  // Exactly 1/512 for multiple-of-8 dims; slightly more with edge planes.
  EXPECT_GE(frac, 1.0 / 512);
  EXPECT_LT(frac, 1.35 / 512);
}

TEST(GInterp, PerfectPredictionOnLinearRamp) {
  // A linear ramp is reproduced exactly by every two-sided spline. With
  // anchor-aligned dims (8k+1: an anchor plane on both edges) every target
  // has both near neighbors, so all codes are the zero code and there are no
  // outliers. (Non-aligned dims legitimately fall back to one-sided copies
  // at the far edge.)
  const Dim3 dims{65, 33, 17};
  std::vector<float> data(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        data[szi::dev::linearize(dims, x, y, z)] =
            static_cast<float>(x) + 2.0f * static_cast<float>(y) +
            0.5f * static_cast<float>(z);
  const double eb = 1e-3;
  const auto enc = ginterp_compress(data, dims, eb, InterpConfig{});
  EXPECT_EQ(enc.outliers.count(), 0u);
  std::size_t nonzero = 0;
  for (const auto c : enc.codes)
    if (c != szi::quant::kDefaultRadius) ++nonzero;
  EXPECT_EQ(nonzero, 0u);
}

TEST(GInterp, OutliersAreExact) {
  // Spiky data forces outliers; their reconstruction must be exact.
  const Dim3 dims{33, 17, 9};
  auto data = smooth_field(dims, 6);
  szi::datagen::Rng rng(7);
  std::vector<std::size_t> spikes;
  for (int k = 0; k < 40; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform() * data.size());
    data[i] += (rng.uniform() < 0.5 ? -1.0f : 1.0f) * 1e4f;
    spikes.push_back(i);
  }
  const double eb = 1e-4;
  const auto enc = ginterp_compress(data, dims, eb, InterpConfig{});
  EXPECT_GT(enc.outliers.count(), 0u);
  const auto dec = ginterp_decompress(enc.codes, enc.anchors, enc.outliers,
                                      dims, eb, InterpConfig{});
  EXPECT_TRUE(szi::metrics::error_bounded(data, dec, eb));
  for (const auto i : spikes) EXPECT_NEAR(data[i], dec[i], eb);
}

TEST(GInterp, RejectsBadArguments) {
  const Dim3 dims{8, 8, 8};
  std::vector<float> data(dims.volume());
  EXPECT_THROW(ginterp_compress(std::span<const float>(data.data(), 7), dims,
                                1e-3, InterpConfig{}),
               std::invalid_argument);
  EXPECT_THROW(ginterp_compress(data, dims, 0.0, InterpConfig{}),
               std::invalid_argument);
  EXPECT_THROW(ginterp_compress(data, dims, -1.0, InterpConfig{}),
               std::invalid_argument);
}

// Error-bound property sweep: every (shape, eb, field character) combination
// must produce a bounded reconstruction.
class GInterpSweep
    : public ::testing::TestWithParam<std::tuple<Dim3, double, bool>> {};

TEST_P(GInterpSweep, ErrorBoundHolds) {
  const auto& [dims, eb, noisy] = GetParam();
  const auto data =
      noisy ? noisy_field(dims, dims.volume()) : smooth_field(dims, dims.volume());
  roundtrip_expect_bounded(data, dims, eb);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBounds, GInterpSweep,
    ::testing::Combine(
        ::testing::Values(Dim3{32, 32, 32}, Dim3{33, 9, 9}, Dim3{8, 8, 8},
                          Dim3{7, 7, 7}, Dim3{65, 33, 17}, Dim3{5, 3, 2},
                          Dim3{100, 10, 3}, Dim3{17, 1, 1}, Dim3{257, 129, 1},
                          Dim3{1024, 1, 1}),
        ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4),
        ::testing::Bool()));

// The fused predict+histogram kernel indexes its private histogram slots by
// launch loop index. Running it from inside an outer parallel_for makes its
// internal launch degrade to an inline walk (g_in_launch); the codes and
// the folded histogram must still come out identical to a top-level run.
TEST(GInterpFused, NestedLaunchMatchesTopLevel) {
  const Dim3 dims{96, 96, 48};
  const auto data = smooth_field(dims, 7);
  const double eb = 1e-3;
  const auto prof = autotune(data, dims, eb);

  szi::dev::Arena ref_arena;
  szi::dev::Workspace ref_ws(ref_arena);
  const auto ref = szi::predictor::ginterp_compress_fused(
      std::span<const float>(data), dims, eb, prof.config,
      szi::quant::kDefaultRadius, ref_ws);
  const std::vector<szi::quant::Code> ref_codes(ref.pred.codes.begin(),
                                                ref.pred.codes.end());

  std::vector<std::vector<std::uint32_t>> hists(3);
  std::vector<std::vector<szi::quant::Code>> codes(3);
  szi::dev::ThreadPool::instance().parallel_for(
      hists.size(),
      [&](std::size_t i) {
        szi::dev::Arena arena;
        szi::dev::Workspace ws(arena);
        const auto fz = szi::predictor::ginterp_compress_fused(
            std::span<const float>(data), dims, eb, prof.config,
            szi::quant::kDefaultRadius, ws);
        hists[i] = fz.histogram;
        codes[i].assign(fz.pred.codes.begin(), fz.pred.codes.end());
      },
      1);
  for (std::size_t i = 0; i < hists.size(); ++i) {
    EXPECT_EQ(hists[i], ref.histogram) << "outer launch index " << i;
    EXPECT_EQ(codes[i], ref_codes) << "outer launch index " << i;
  }
}

// The closed-form level populations must tile the field exactly: every
// position is either an anchor or belongs to exactly one level, for smooth
// and awkward shapes alike (degenerate dims, odd extents, 1D/2D fields).
TEST(GInterpLevels, ClosedFormsTileTheVolume) {
  for (const auto& dims :
       {Dim3{32, 32, 32}, Dim3{33, 9, 9}, Dim3{7, 7, 7}, Dim3{65, 33, 17},
        Dim3{5, 3, 2}, Dim3{100, 10, 3}, Dim3{17, 1, 1}, Dim3{257, 129, 1},
        Dim3{1024, 1, 1}, Dim3{48, 40, 24}}) {
    SCOPED_TRACE(::testing::Message() << dims.x << "x" << dims.y << "x"
                                      << dims.z);
    const int nlevels = szi::predictor::ginterp_level_count(dims);
    ASSERT_GE(nlevels, 1);
    const std::size_t anchors =
        anchor_dims(dims, geometry_for(dims).anchor).volume();
    std::size_t sum = 0;
    for (int l = 1; l <= nlevels; ++l) {
      const std::size_t lv = szi::predictor::ginterp_level_volume(dims, l);
      // Level ℓ's positions are exactly the stride-2^(ℓ-1) grid minus the
      // stride-2^ℓ grid — the preview-dim volumes give the same closed form.
      const auto fine = szi::predictor::ginterp_preview_dims(dims, l);
      const auto coarse = szi::predictor::ginterp_preview_dims(dims, l + 1);
      EXPECT_EQ(lv, fine.volume() - coarse.volume()) << "level " << l;
      sum += lv;
    }
    EXPECT_EQ(sum + anchors, dims.volume());
    const auto top =
        szi::predictor::ginterp_preview_dims(dims, nlevels + 1);
    EXPECT_EQ(top.volume(), anchors);
    const auto full = szi::predictor::ginterp_preview_dims(dims, 1);
    EXPECT_EQ(full.volume(), dims.volume());
  }
}

// Split and scatter are exact inverses: re-bucketing a code array into
// per-level streams and scattering every stream back over a prefilled array
// must reproduce the original codes bit for bit, and each stream's length
// must match the closed-form level volume.
TEST(GInterpLevels, SplitScatterRoundTrip) {
  for (const auto& dims : {Dim3{33, 9, 9}, Dim3{65, 33, 17}, Dim3{100, 10, 3},
                           Dim3{257, 129, 1}}) {
    SCOPED_TRACE(::testing::Message() << dims.x << "x" << dims.y << "x"
                                      << dims.z);
    const auto data = smooth_field(dims, dims.volume());
    const double eb = 1e-3;
    const auto prof = autotune(data, dims, eb);
    const int radius = szi::quant::kDefaultRadius;
    const auto enc =
        ginterp_compress(std::span<const float>(data), dims, eb, prof.config,
                         radius);

    szi::dev::Arena arena;
    szi::dev::Workspace ws(arena);
    const auto split = szi::predictor::ginterp_split_levels(
        enc.codes, dims, 2 * static_cast<std::size_t>(radius), ws);
    const int nlevels = szi::predictor::ginterp_level_count(dims);
    ASSERT_EQ(split.streams.size(), static_cast<std::size_t>(nlevels));

    std::vector<szi::quant::Code> rebuilt(
        dims.volume(), static_cast<szi::quant::Code>(radius));
    for (int l = 1; l <= nlevels; ++l) {
      const auto& stream = split.streams[static_cast<std::size_t>(l - 1)];
      EXPECT_EQ(stream.size(),
                szi::predictor::ginterp_level_volume(dims, l))
          << "level " << l;
      // Histogram of the stream must match a direct count.
      std::vector<std::uint32_t> hist(2 * static_cast<std::size_t>(radius), 0);
      for (const auto c : stream) ++hist[c];
      EXPECT_EQ(hist, split.histograms[static_cast<std::size_t>(l - 1)])
          << "level " << l;

      szi::predictor::LevelScatterCursor cur(dims, l);
      // Scatter in two uneven chunks to exercise resumability.
      const std::size_t half = stream.size() / 3;
      cur.advance(stream, half, rebuilt);
      const std::size_t mark = cur.advance(stream, stream.size(), rebuilt);
      EXPECT_EQ(cur.consumed(), stream.size()) << "level " << l;
      EXPECT_EQ(mark, dims.volume()) << "level " << l;
    }
    EXPECT_EQ(rebuilt, enc.codes);
  }
}

// The fused per-level emission must be byte-identical to splitting the full
// code array after the fact — streams, histograms, and the prefilled full
// array alike.
TEST(GInterpLevels, FusedLevelsMatchesSplit) {
  const Dim3 dims{96, 48, 48};
  const auto data = smooth_field(dims, 11);
  const double eb = 1e-3;
  const auto prof = autotune(data, dims, eb);
  const int radius = szi::quant::kDefaultRadius;

  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto fused = szi::predictor::ginterp_compress_fused_levels(
      std::span<const float>(data), dims, eb, prof.config, radius, ws);

  const auto ref = ginterp_compress(std::span<const float>(data), dims, eb,
                                    prof.config, radius);
  ASSERT_EQ(fused.pred.codes.size(), ref.codes.size());
  EXPECT_EQ(0, std::memcmp(fused.pred.codes.data(), ref.codes.data(),
                           ref.codes.size() * sizeof(szi::quant::Code)));

  szi::dev::Arena arena2;
  szi::dev::Workspace ws2(arena2);
  const auto split = szi::predictor::ginterp_split_levels(
      ref.codes, dims, 2 * static_cast<std::size_t>(radius), ws2);
  ASSERT_EQ(fused.levels.streams.size(), split.streams.size());
  for (std::size_t l = 0; l < split.streams.size(); ++l) {
    ASSERT_EQ(fused.levels.streams[l].size(), split.streams[l].size())
        << "level " << l + 1;
    EXPECT_EQ(0, std::memcmp(fused.levels.streams[l].data(),
                             split.streams[l].data(),
                             split.streams[l].size() *
                                 sizeof(szi::quant::Code)))
        << "level " << l + 1;
    EXPECT_EQ(fused.levels.histograms[l], split.histograms[l])
        << "level " << l + 1;
  }
}

// Partial reconstruction must agree with the subsample of the full decode at
// every level — passes at stride s only ever touch stride-s positions, so
// stopping early changes nothing on the coarse grid.
TEST(GInterpLevels, DecompressToLevelMatchesSubsample) {
  const Dim3 dims{65, 33, 17};
  const auto data = smooth_field(dims, 5);
  const double eb = 1e-3;
  const auto prof = autotune(data, dims, eb);
  const int radius = szi::quant::kDefaultRadius;
  const auto enc = ginterp_compress(std::span<const float>(data), dims, eb,
                                    prof.config, radius);
  const auto full = ginterp_decompress(enc.codes, enc.anchors, enc.outliers,
                                       dims, eb, prof.config, radius);

  const szi::quant::OutlierViewT<float> oview{enc.outliers.indices,
                                              enc.outliers.values};
  const int nlevels = szi::predictor::ginterp_level_count(dims);
  for (int l = 1; l <= nlevels + 1; ++l) {
    szi::dev::Arena arena;
    szi::dev::Workspace ws(arena);
    const auto part = szi::predictor::ginterp_decompress_to_level(
        enc.codes, enc.anchors, oview, dims, eb, prof.config, radius, l, ws);
    const auto sub = szi::predictor::ginterp_subsample(
        std::span<const float>(full), dims, l);
    ASSERT_EQ(part.size(), sub.size()) << "level " << l;
    EXPECT_EQ(0, std::memcmp(part.data(), sub.data(),
                             sub.size() * sizeof(float)))
        << "level " << l;
  }
}

}  // namespace
