// Robustness fuzzing: corrupted or truncated archives must never crash or
// read out of bounds — every decompressor either throws a std::exception or
// returns (possibly wrong) data. Run under the default sanitizer-free build
// this asserts control-flow robustness; the byte readers bound every access.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "baselines/registry.hh"
#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "datagen/rng.hh"
#include "device/arena.hh"
#include "lossless/orchestrate.hh"

namespace {

using szi::baselines::make_compressor;

const szi::Field& test_field() {
  static const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  return fields.front();
}

class CorruptionFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(CorruptionFuzz, TruncationsNeverCrash) {
  auto c = make_compressor(GetParam());
  const auto p = GetParam() == "cuzfp"
                     ? szi::CompressParams{szi::ErrorMode::FixedRate, 4.0}
                     : szi::CompressParams{szi::ErrorMode::Rel, 1e-3};
  const auto enc = c->compress(test_field(), p);
  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    auto cut = enc.bytes;
    cut.resize(static_cast<std::size_t>(static_cast<double>(cut.size()) * frac));
    try {
      const auto out = c->decompress(cut);
      (void)out;  // silently-wrong output is acceptable; crashing is not
    } catch (const std::exception&) {
      // expected for most truncations
    }
  }
}

TEST_P(CorruptionFuzz, BitFlipsNeverCrash) {
  auto c = make_compressor(GetParam());
  const auto p = GetParam() == "cuzfp"
                     ? szi::CompressParams{szi::ErrorMode::FixedRate, 4.0}
                     : szi::CompressParams{szi::ErrorMode::Rel, 1e-3};
  const auto enc = c->compress(test_field(), p);
  szi::datagen::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 24; ++trial) {
    auto bad = enc.bytes;
    // Flip a burst of 1-8 random bits (headers and payload alike).
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int k = 0; k < flips; ++k) {
      const auto pos = static_cast<std::size_t>(rng.next_u64() % bad.size());
      bad[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
    }
    try {
      const auto out = c->decompress(bad);
      (void)out;
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCompressors, CorruptionFuzz,
                         ::testing::Values("cusz-i", "cusz", "cuszp", "cuszx",
                                           "fz-gpu", "cuzfp", "sz3", "qoz"));

// Both precisions of the typed cuSZ-i archive, plain and bitcomp-wrapped
// (§VI-B framing): truncations and bit flips must never crash regardless of
// the header's precision byte or the outer de-redundancy layer.
class TypedCorruption
    : public ::testing::TestWithParam<std::tuple<bool /*f64*/,
                                                 bool /*bitcomp*/>> {};

TEST_P(TypedCorruption, TruncationsAndFlipsNeverCrash) {
  const auto [f64, wrapped] = GetParam();
  const auto& field = test_field();
  const szi::CompressParams p{szi::ErrorMode::Rel, 1e-3};
  std::vector<std::byte> archive;
  if (f64) {
    const std::vector<double> data(field.data.begin(), field.data.end());
    archive = szi::cuszi_compress(data, field.dims, p);
  } else {
    archive = szi::cuszi_compress(field.view(), field.dims, p);
  }
  if (wrapped) archive = szi::bitcomp_wrap_archive(archive);

  const auto decode = [&](std::span<const std::byte> bytes) {
    std::vector<std::byte> inner;
    if (wrapped) {
      inner = szi::bitcomp_unwrap_archive(bytes);
      bytes = inner;
    }
    if (f64)
      (void)szi::cuszi_decompress_f64(bytes);
    else
      (void)szi::cuszi_decompress_f32(bytes);
  };

  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    auto cut = archive;
    cut.resize(
        static_cast<std::size_t>(static_cast<double>(cut.size()) * frac));
    try {
      decode(cut);
    } catch (const std::exception&) {
    }
  }
  szi::datagen::Rng rng(0xBADF64 + (f64 ? 1 : 0) + (wrapped ? 2 : 0));
  for (int trial = 0; trial < 24; ++trial) {
    auto bad = archive;
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int k = 0; k < flips; ++k) {
      const auto pos = static_cast<std::size_t>(rng.next_u64() % bad.size());
      bad[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
    }
    try {
      decode(bad);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionByWrapper, TypedCorruption,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "f64" : "f32") +
             (std::get<1>(info.param) ? "_bitcomp" : "_plain");
    });

// Structured SZI2 header coverage: each directory invariant the decoder
// validates, violated one at a time, must be rejected with CorruptArchive —
// by the full decoder, the progressive decoder, and the directory parser.
// Directory layout: u32 nseg at byte 53, then 32-byte entries
// (u8 kind | u8 level | u16 rsv0 | u32 rsv1 | u64 count | u64 off | u64 sz).
TEST(CorruptionFuzz, V2HeaderInvariantsRejected) {
  const auto& field = test_field();
  const auto archive = szi::cuszi_compress(field.view(), field.dims,
                                           {szi::ErrorMode::Rel, 1e-3});
  constexpr std::size_t kNsegOff = 53;
  constexpr std::size_t kEntries = kNsegOff + 4;
  constexpr std::size_t kEntry = 32;
  const auto poke = [&](std::size_t at, auto v) {
    auto bad = archive;
    std::memcpy(bad.data() + at, &v, sizeof(v));
    return bad;
  };
  const auto expect_rejected = [&](const std::vector<std::byte>& bad,
                                   const char* what) {
    EXPECT_THROW((void)szi::cuszi_decompress_f32(bad),
                 szi::core::CorruptArchive)
        << what;
    EXPECT_THROW((void)szi::cuszi_decompress_progressive_f32(bad, 2),
                 szi::core::CorruptArchive)
        << what << " (progressive)";
    EXPECT_THROW((void)szi::cuszi_archive_segments(bad),
                 szi::core::CorruptArchive)
        << what << " (segments)";
  };

  std::uint32_t nseg = 0;
  std::memcpy(&nseg, archive.data() + kNsegOff, sizeof(nseg));
  ASSERT_GE(nseg, 5u);  // anchors + outliers + >= 3 levels

  expect_rejected(poke(kNsegOff, std::uint32_t{nseg + 1}), "bad nseg");
  expect_rejected(poke(kNsegOff, std::uint32_t{0}), "zero nseg");
  expect_rejected(poke(kEntries, std::uint8_t{2}), "anchor kind wrong");
  expect_rejected(poke(kEntries + kEntry + 1, std::uint8_t{3}),
                  "outlier level wrong");
  expect_rejected(poke(kEntries + 2 * kEntry + 1, std::uint8_t{1}),
                  "level segments out of order");
  expect_rejected(poke(kEntries + 2, std::uint16_t{1}), "reserved0 set");
  expect_rejected(poke(kEntries + 4, std::uint32_t{7}), "reserved1 set");

  // Count mismatch: a level's symbol count must equal its closed form.
  std::uint64_t count = 0;
  std::memcpy(&count, archive.data() + kEntries + 2 * kEntry + 8,
              sizeof(count));
  expect_rejected(poke(kEntries + 2 * kEntry + 8, count + 1),
                  "level symbol count mismatch");

  // Non-contiguous offsets: nudge the second segment's offset.
  std::uint64_t off = 0;
  std::memcpy(&off, archive.data() + kEntries + kEntry + 16, sizeof(off));
  expect_rejected(poke(kEntries + kEntry + 16, off + 1),
                  "offsets not contiguous");

  // A v2 archive handed to a v1-only magic (and vice versa) is caught by
  // the dispatch: flipping '2' back to '1' leaves a directory where the v1
  // layout expects the anchor count, which cannot parse cleanly.
  auto bad_magic = archive;
  bad_magic[3] = std::byte{'9'};
  expect_rejected(bad_magic, "unknown magic version");
}

// Structured BBC2 wrapper coverage: each container invariant, violated one
// at a time, must be rejected with CorruptArchive by the unwrap path, the
// pipelined decode, and the prefix-reading progressive decode. Table
// layout: u32 magic | u32 nseg | 24-byte entries (u8 method | u8 rsv0 |
// u16 rsv1 | u32 rsv2 | u64 raw_size | u64 size), payloads back to back.
TEST(CorruptionFuzz, WrapperTableInvariantsRejected) {
  const auto& field = test_field();
  const auto inner = szi::cuszi_compress(field.view(), field.dims,
                                         {szi::ErrorMode::Rel, 1e-3});
  const auto wrapped = szi::bitcomp_wrap_archive(inner);
  constexpr std::size_t kNsegOff = 4;
  constexpr std::size_t kEntries = 8;
  constexpr std::size_t kEntry = sizeof(szi::WrapSegmentEntry);
  static_assert(kEntry == 24);

  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto poke = [&](std::size_t at, auto v) {
    auto bad = wrapped;
    std::memcpy(bad.data() + at, &v, sizeof(v));
    return bad;
  };
  const auto expect_rejected = [&](const std::vector<std::byte>& bad,
                                   const char* what) {
    EXPECT_THROW((void)szi::bitcomp_unwrap_archive(bad),
                 szi::core::CorruptArchive)
        << what;
    ws.reset();
    EXPECT_THROW((void)szi::cuszi_decompress_bitcomp_f32(bad, ws),
                 szi::core::CorruptArchive)
        << what << " (pipelined)";
    EXPECT_THROW((void)szi::cuszi_decompress_progressive_f32(bad, 2),
                 szi::core::CorruptArchive)
        << what << " (progressive)";
  };

  std::uint32_t nseg = 0;
  std::memcpy(&nseg, wrapped.data() + kNsegOff, sizeof(nseg));
  ASSERT_GE(nseg, 2u);  // header+directory range plus >= 1 inner segment

  expect_rejected(poke(kNsegOff, std::uint32_t{0}), "zero nseg");
  expect_rejected(poke(kNsegOff, std::uint32_t{nseg + 1}), "inflated nseg");
  expect_rejected(poke(kEntries, std::uint8_t{3}), "unknown method id");
  expect_rejected(poke(kEntries + 1, std::uint8_t{1}), "reserved0 set");
  expect_rejected(poke(kEntries + 2, std::uint16_t{1}), "reserved1 set");
  expect_rejected(poke(kEntries + 4, std::uint32_t{7}), "reserved2 set");

  // The parser itself must localize the method rejection to the wrapper
  // stage — before any payload is touched or allocated.
  try {
    (void)szi::bitcomp_parse_container(poke(kEntries, std::uint8_t{0xFF}));
    FAIL() << "unknown method id must not parse";
  } catch (const szi::core::CorruptArchive& e) {
    EXPECT_EQ(e.stage(), "bitcomp-wrapper");
  }

  // Payload-fill accounting: growing or shrinking any payload size breaks
  // the exact-fill invariant; a huge raw_size trips the u64 overflow check
  // or the decode allocation guard before any buffer is sized from it.
  std::uint64_t size0 = 0;
  std::memcpy(&size0, wrapped.data() + kEntries + 16, sizeof(size0));
  expect_rejected(poke(kEntries + 16, size0 + 1), "payload overfill");
  expect_rejected(poke(kEntries + 16, size0 - 1), "payload underfill");
  expect_rejected(poke(kEntries + 8, ~std::uint64_t{0}), "raw_size overflow");

  // Method/size mismatch on a method-0 segment: the LZSS frame inside the
  // payload records the true raw size, so a nudged table raw_size must be
  // caught by the frame/table cross-check (not silently mis-sized).
  std::uint64_t raw0 = 0;
  std::memcpy(&raw0, wrapped.data() + kEntries + 8, sizeof(raw0));
  expect_rejected(poke(kEntries + 8, raw0 + 1), "segment frame size mismatch");

  // Same cross-check for a transformed frame: force Bitshuffle so the
  // payload's closed-form size no longer matches the nudged raw_size.
  const auto shuffled = szi::bitcomp_wrap_archive(
      inner, szi::lossless::LzssMode::Lazy,
      szi::lossless::MethodPolicy::ForceBitshuffle);
  auto bad = shuffled;
  std::uint64_t raw_sh = 0;
  std::memcpy(&raw_sh, bad.data() + kEntries + 8, sizeof(raw_sh));
  // +16 bytes = +8 u16 elements: always grows the closed-form transformed
  // size by a full plane row (smaller nudges can round away inside the
  // 16*ceil(tail/8) tail-block term) while keeping the odd-tail parity.
  const std::uint64_t nudged = raw_sh + 16;
  std::memcpy(bad.data() + kEntries + 8, &nudged, sizeof(nudged));
  expect_rejected(bad, "bitshuffle frame size mismatch");
}

// Structured tile-index coverage: each TIDX invariant the ROI decoder
// validates, violated one at a time, must be rejected with CorruptArchive
// whose stage and detail localize the fault to the index — while the full
// decoder, which never reads the index payload, keeps decoding the same
// mutated bytes bit-identically. Payload layout: u16 version | u16 reserved
// | u32 slab_z | u32 nlevels | u32 nslabs, then 24-byte entries
// (u64 sym_rank | u64 code_byte | u32 huff_chunk | u32 wrap_block), levels
// descending, slabs ascending.
TEST(CorruptionFuzz, TileIndexInvariantsRejected) {
  const auto& field = test_field();
  const auto archive = szi::cuszi_compress(field.view(), field.dims,
                                           {szi::ErrorMode::Rel, 1e-3});
  const auto segs = szi::cuszi_archive_segments(archive);
  ASSERT_EQ(segs.back().kind, 3u);  // trailing tile index
  const auto off = static_cast<std::size_t>(segs.back().offset);
  const szi::RoiBox box{{10, 20, 30}, {16, 16, 16}};
  const auto ref = szi::cuszi_decompress_f32(archive);

  const auto poke = [&](std::size_t at, auto v) {
    auto bad = archive;
    std::memcpy(bad.data() + at, &v, sizeof(v));
    return bad;
  };
  const auto expect_rejected = [&](const std::vector<std::byte>& bad,
                                   const char* detail, const char* what) {
    try {
      (void)szi::cuszi_decompress_roi_f32(bad, box);
      ADD_FAILURE() << what << ": ROI decode accepted a corrupt tile index";
    } catch (const szi::core::CorruptArchive& e) {
      EXPECT_EQ(e.stage(), "cusz-i") << what;
      EXPECT_NE(std::string(e.what()).find(detail), std::string::npos)
          << what << ": got \"" << e.what() << '"';
    }
    // The index only steers ROI reads; every other surface ignores it.
    EXPECT_EQ(szi::cuszi_decompress_f32(bad), ref) << what;
  };

  expect_rejected(poke(off, std::uint16_t{2}), "tile index header mismatch",
                  "bad version");
  expect_rejected(poke(off + 2, std::uint16_t{1}),
                  "tile index header mismatch", "reserved set");
  expect_rejected(poke(off + 4, std::uint32_t{4}),
                  "tile index header mismatch", "wrong slab_z");
  expect_rejected(poke(off + 8, std::uint32_t{1}),
                  "tile index header mismatch", "wrong nlevels");
  expect_rejected(poke(off + 12, std::uint32_t{1}),
                  "tile index header mismatch", "wrong nslabs");

  // Entry fields are closed forms of (dims, per-level chunk tables): nudge
  // each field of the first entry (coarsest level, slab 0) off by one.
  const std::size_t entry0 = off + 16;
  expect_rejected(poke(entry0, std::uint64_t{1}), "tile index entry mismatch",
                  "sym_rank nudged");
  expect_rejected(poke(entry0 + 8, std::uint64_t{1}),
                  "tile index entry mismatch", "code_byte nudged");
  expect_rejected(poke(entry0 + 16, std::uint32_t{1}),
                  "tile index entry mismatch", "huff_chunk nudged");
  expect_rejected(poke(entry0 + 20, std::uint32_t{7}),
                  "tile index entry mismatch", "wrap_block nudged");

  // An archive cut inside the index payload: the directory still promises
  // the full index, so the short read is localized to the index fetch.
  auto cut = archive;
  cut.resize(off + 8);
  try {
    (void)szi::cuszi_decompress_roi_f32(cut, box);
    ADD_FAILURE() << "ROI decode accepted a truncated tile index";
  } catch (const szi::core::CorruptArchive& e) {
    EXPECT_EQ(e.stage(), "cusz-i");
    EXPECT_NE(std::string(e.what()).find("tile index truncated"),
              std::string::npos)
        << "got \"" << e.what() << '"';
  }
}

TEST(CorruptionFuzz, WrappedArchivesToo) {
  auto c = szi::with_bitcomp(make_compressor("cusz-i"));
  const auto enc =
      c->compress(test_field(), {szi::ErrorMode::Rel, 1e-3});
  szi::datagen::Rng rng(0xF00D);
  for (int trial = 0; trial < 16; ++trial) {
    auto bad = enc.bytes;
    const auto pos = static_cast<std::size_t>(rng.next_u64() % bad.size());
    bad[pos] ^= static_cast<std::byte>(0xFF);
    try {
      (void)c->decompress(bad);
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
