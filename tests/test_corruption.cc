// Robustness fuzzing: corrupted or truncated archives must never crash or
// read out of bounds — every decompressor either throws a std::exception or
// returns (possibly wrong) data. Run under the default sanitizer-free build
// this asserts control-flow robustness; the byte readers bound every access.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "datagen/rng.hh"

namespace {

using szi::baselines::make_compressor;

const szi::Field& test_field() {
  static const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  return fields.front();
}

class CorruptionFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(CorruptionFuzz, TruncationsNeverCrash) {
  auto c = make_compressor(GetParam());
  const auto p = GetParam() == "cuzfp"
                     ? szi::CompressParams{szi::ErrorMode::FixedRate, 4.0}
                     : szi::CompressParams{szi::ErrorMode::Rel, 1e-3};
  const auto enc = c->compress(test_field(), p);
  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    auto cut = enc.bytes;
    cut.resize(static_cast<std::size_t>(static_cast<double>(cut.size()) * frac));
    try {
      const auto out = c->decompress(cut);
      (void)out;  // silently-wrong output is acceptable; crashing is not
    } catch (const std::exception&) {
      // expected for most truncations
    }
  }
}

TEST_P(CorruptionFuzz, BitFlipsNeverCrash) {
  auto c = make_compressor(GetParam());
  const auto p = GetParam() == "cuzfp"
                     ? szi::CompressParams{szi::ErrorMode::FixedRate, 4.0}
                     : szi::CompressParams{szi::ErrorMode::Rel, 1e-3};
  const auto enc = c->compress(test_field(), p);
  szi::datagen::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 24; ++trial) {
    auto bad = enc.bytes;
    // Flip a burst of 1-8 random bits (headers and payload alike).
    const int flips = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int k = 0; k < flips; ++k) {
      const auto pos = static_cast<std::size_t>(rng.next_u64() % bad.size());
      bad[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
    }
    try {
      const auto out = c->decompress(bad);
      (void)out;
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCompressors, CorruptionFuzz,
                         ::testing::Values("cusz-i", "cusz", "cuszp", "cuszx",
                                           "fz-gpu", "cuzfp", "sz3", "qoz"));

TEST(CorruptionFuzz, WrappedArchivesToo) {
  auto c = szi::with_bitcomp(make_compressor("cusz-i"));
  const auto enc =
      c->compress(test_field(), {szi::ErrorMode::Rel, 1e-3});
  szi::datagen::Rng rng(0xF00D);
  for (int trial = 0; trial < 16; ++trial) {
    auto bad = enc.bytes;
    const auto pos = static_cast<std::size_t>(rng.next_u64() % bad.size());
    bad[pos] ^= static_cast<std::byte>(0xFF);
    try {
      (void)c->decompress(bad);
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
