// Fused-pipeline equivalence: the chunk-streamed compress/decompress paths
// (histogram fused into the predict kernel, Huffman payload emitted into the
// final archive slot, LZSS overlapped on a dev::Stream) must produce archives
// and reconstructions byte-for-byte identical to the unfused reference
// pipeline, which keeps the pre-fusion stage structure the same way
// predictor/reference.cc mirrors the optimized kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/bytes.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "lossless/lzss.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;
using szi::StageTimings;
using szi::dev::Dim3;

constexpr CompressParams kRel{ErrorMode::Rel, 1e-3};

std::vector<std::byte> wrap_with_mode(std::span<const std::byte> inner,
                                      szi::lossless::LzssMode mode) {
  return szi::bitcomp_wrap_archive(inner, mode);
}

// Every field of every generated dataset: fused inner archive == unfused,
// fused bitcomp archive == wrap(unfused), and both decompress paths agree.
TEST(FusedEquiv, AllDatasetsByteIdentical) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto& name : szi::datagen::dataset_names()) {
    const auto fields =
        szi::datagen::make_dataset(name, szi::datagen::Size::Small);
    for (const auto& f : fields) {
      const auto unfused = szi::cuszi_compress_unfused(
          std::span<const float>(f.data), f.dims, kRel);
      StageTimings t;
      const auto fused = szi::cuszi_compress(std::span<const float>(f.data),
                                             f.dims, kRel, &t);
      ASSERT_EQ(fused, unfused) << name << "/" << f.name;
      EXPECT_TRUE(t.histogram_fused);
      EXPECT_EQ(t.histogram, 0.0);
      EXPECT_GT(t.predict, 0.0);

      const auto wrapped = szi::cuszi_compress_bitcomp(
          std::span<const float>(f.data), f.dims, kRel, nullptr, ws);
      ASSERT_EQ(wrapped, szi::bitcomp_wrap_archive(unfused))
          << name << "/" << f.name;

      const auto ref = szi::cuszi_decompress_f32(unfused);
      ASSERT_EQ(szi::cuszi_decompress_f32(fused, ws), ref);
      ASSERT_EQ(szi::cuszi_decompress_bitcomp_f32(wrapped, ws), ref);
    }
  }
}

// The histogram source must not matter: full counts in the fused kernel,
// full counts in the unfused pass, and the top-k hot-band histogram all
// yield the same totals, hence the same codebook and the same bytes.
TEST(FusedEquiv, TopkHistogramAgrees) {
  const auto f =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small)
          .front();
  const std::span<const float> d(f.data);
  const auto fused = szi::cuszi_compress(d, f.dims, kRel);
  ASSERT_EQ(fused, szi::cuszi_compress_unfused(d, f.dims, kRel, nullptr,
                                               /*use_topk_histogram=*/true));
  ASSERT_EQ(fused, szi::cuszi_compress_unfused(d, f.dims, kRel, nullptr,
                                               /*use_topk_histogram=*/false));
}

// Odd, even, and degenerate extents in both precisions: the fused kernels
// partition work differently from the reference passes, so shape edge cases
// (tiles straddling faces, single rows, scalar fields) are where a
// nondeterministic merge would first show.
TEST(FusedEquiv, ShapesAndPrecisions) {
  const Dim3 shapes[] = {{33, 17, 9}, {32, 16, 8}, {64, 64, 1}, {129, 1, 1},
                         {5, 3, 2},   {2, 2, 2},   {1, 1, 1},   {7, 1, 1}};
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto& dims : shapes) {
    std::vector<float> v32(dims.volume());
    std::vector<double> v64(dims.volume());
    for (std::size_t i = 0; i < v32.size(); ++i) {
      v64[i] = std::sin(0.05 * static_cast<double>(i)) +
               0.3 * std::cos(0.011 * static_cast<double>(i * i % 1009));
      v32[i] = static_cast<float>(v64[i]);
    }
    const CompressParams abs{ErrorMode::Abs, 1e-4};

    const auto u32 = szi::cuszi_compress_unfused(
        std::span<const float>(v32), dims, abs);
    ASSERT_EQ(szi::cuszi_compress(std::span<const float>(v32), dims, abs),
              u32)
        << dims.x << "x" << dims.y << "x" << dims.z;
    ASSERT_EQ(szi::cuszi_compress_bitcomp(std::span<const float>(v32), dims,
                                          abs, nullptr, ws),
              szi::bitcomp_wrap_archive(u32));

    const auto u64a = szi::cuszi_compress_unfused(
        std::span<const double>(v64), dims, abs);
    ASSERT_EQ(szi::cuszi_compress(std::span<const double>(v64), dims, abs),
              u64a)
        << dims.x << "x" << dims.y << "x" << dims.z;
    const auto w64 = szi::cuszi_compress_bitcomp(
        std::span<const double>(v64), dims, abs, nullptr, ws);
    ASSERT_EQ(w64, szi::bitcomp_wrap_archive(u64a));
    ASSERT_EQ(szi::cuszi_decompress_bitcomp_f64(w64, ws),
              szi::cuszi_decompress_f64(u64a));
  }
}

// Both LZSS parameterizations of the de-redundancy pass: the pipelined
// per-block path must reproduce the monolithic lzss_compress stream bit for
// bit under Greedy as well as Lazy matching.
TEST(FusedEquiv, BothLzssModes) {
  const auto f =
      szi::datagen::make_dataset("nyx", szi::datagen::Size::Small).front();
  const std::span<const float> d(f.data);
  const auto inner = szi::cuszi_compress_unfused(d, f.dims, kRel);
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto mode :
       {szi::lossless::LzssMode::Greedy, szi::lossless::LzssMode::Lazy}) {
    const auto fused =
        szi::cuszi_compress_bitcomp(d, f.dims, kRel, nullptr, ws, mode);
    ASSERT_EQ(fused, wrap_with_mode(inner, mode));
    ASSERT_EQ(szi::cuszi_decompress_bitcomp_f32(fused, ws),
              szi::cuszi_decompress_f32(inner));
  }
}

// Workspace reuse across many calls must not leak state between archives:
// compress/decompress a sequence of different fields through one workspace
// and compare each against the throwaway-arena reference.
TEST(FusedEquiv, WorkspaceReuseIsStateless) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto& name : {"rtm", "s3d", "qmcpack"}) {
    const auto f =
        szi::datagen::make_dataset(name, szi::datagen::Size::Small).front();
    const std::span<const float> d(f.data);
    const auto ref = szi::cuszi_compress_unfused(d, f.dims, kRel);
    ASSERT_EQ(szi::cuszi_compress(d, f.dims, kRel, nullptr, ws), ref);
    const auto wrapped =
        szi::cuszi_compress_bitcomp(d, f.dims, kRel, nullptr, ws);
    ASSERT_EQ(szi::cuszi_decompress_bitcomp_f32(wrapped, ws),
              szi::cuszi_decompress_f32(ref));
  }
}

}  // namespace
