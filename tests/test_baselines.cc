// Cross-compressor integration tests: every baseline must round-trip within
// its error bound on every dataset family, and the relative behaviours the
// paper reports must hold on at least the clear-cut cases.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;
using szi::baselines::make_compressor;

const szi::Field& cached_field(const std::string& dataset) {
  static std::map<std::string, szi::Field> cache;
  auto it = cache.find(dataset);
  if (it == cache.end()) {
    auto fields = szi::datagen::make_dataset(dataset, szi::datagen::Size::Small);
    it = cache.emplace(dataset, std::move(fields.front())).first;
  }
  return it->second;
}

class BaselineSweep : public ::testing::TestWithParam<
                          std::tuple<std::string, std::string, double>> {};

TEST_P(BaselineSweep, ErrorBoundHolds) {
  const auto& [comp_name, dataset, rel] = GetParam();
  auto c = make_compressor(comp_name);
  const auto& f = cached_field(dataset);
  const auto enc = c->compress(f, {ErrorMode::Rel, rel});
  ASSERT_GT(enc.bytes.size(), 0u);
  const auto dec = c->decompress(enc.bytes);
  ASSERT_EQ(dec.size(), f.size());
  const double eb = rel * szi::metrics::value_range(f.data);
  EXPECT_TRUE(szi::metrics::error_bounded(f.data, dec, eb))
      << comp_name << " on " << f.label() << " max_err="
      << szi::metrics::distortion(f.data, dec).max_err << " eb=" << eb;
}

INSTANTIATE_TEST_SUITE_P(
    AllCompressorsAllDatasets, BaselineSweep,
    ::testing::Combine(
        ::testing::Values("cusz", "cuszp", "cuszx", "fz-gpu", "cusz-i", "sz3",
                          "qoz"),
        ::testing::ValuesIn(szi::datagen::dataset_names()),
        ::testing::Values(1e-2, 1e-4)));

TEST(Baselines, RegistryRejectsUnknown) {
  EXPECT_THROW((void)make_compressor("nvcomp"), std::invalid_argument);
}

TEST(Baselines, NamesMatchPaper) {
  EXPECT_EQ(make_compressor("cusz-i")->name(), "cuSZ-i");
  EXPECT_EQ(make_compressor("cusz")->name(), "cuSZ");
  EXPECT_EQ(make_compressor("cuszp")->name(), "cuSZp");
  EXPECT_EQ(make_compressor("cuszx")->name(), "cuSZx");
  EXPECT_EQ(make_compressor("fz-gpu")->name(), "FZ-GPU");
  EXPECT_EQ(make_compressor("cuzfp")->name(), "cuZFP");
  EXPECT_EQ(make_compressor("sz3")->name(), "SZ3");
  EXPECT_EQ(make_compressor("qoz")->name(), "QoZ");
}

TEST(Baselines, CuzfpRejectsErrorBoundMode) {
  auto c = make_compressor("cuzfp");
  EXPECT_FALSE(c->supports_error_bound());
  const auto& f = cached_field("miranda");
  EXPECT_THROW((void)c->compress(f, {ErrorMode::Rel, 1e-3}),
               std::invalid_argument);
  EXPECT_THROW((void)c->compress(f, {ErrorMode::Abs, 1e-3}),
               std::invalid_argument);
}

TEST(Baselines, ErrorBoundedCompressorsRejectFixedRate) {
  const auto& f = cached_field("miranda");
  for (const auto& name : szi::baselines::table3_compressors()) {
    auto c = make_compressor(name);
    EXPECT_THROW((void)c->compress(f, {ErrorMode::FixedRate, 4.0}),
                 std::invalid_argument)
        << name;
  }
}

TEST(Baselines, CuzfpFixedRateSizesMatchRate) {
  auto c = make_compressor("cuzfp");
  const auto& f = cached_field("jhtdb");
  for (const double rate : {2.0, 4.0, 8.0}) {
    const auto enc = c->compress(f, {ErrorMode::FixedRate, rate});
    const double bits_per_val =
        8.0 * static_cast<double>(enc.bytes.size()) / static_cast<double>(f.size());
    EXPECT_NEAR(bits_per_val, rate, rate * 0.2 + 0.6) << "rate=" << rate;
    const auto dec = c->decompress(enc.bytes);
    ASSERT_EQ(dec.size(), f.size());
  }
}

TEST(Baselines, CuzfpQualityImprovesWithRate) {
  auto c = make_compressor("cuzfp");
  const auto& f = cached_field("miranda");
  double prev_psnr = -1e9;
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto enc = c->compress(f, {ErrorMode::FixedRate, rate});
    const auto dec = c->decompress(enc.bytes);
    const auto d = szi::metrics::distortion(f.data, dec);
    EXPECT_GT(d.psnr, prev_psnr) << "rate=" << rate;
    prev_psnr = d.psnr;
  }
  EXPECT_GT(prev_psnr, 90.0) << "16 bits/value should be near-transparent";
}

// The paper's headline behaviours, as coarse assertions on clear-cut cases.
TEST(PaperBehaviour, CusziBeatsLorenzoFamilyOnSmoothData) {
  const auto& f = cached_field("miranda");
  const CompressParams p{ErrorMode::Rel, 1e-3};
  const auto cuszi = make_compressor("cusz-i")->compress(f, p);
  const auto cusz = make_compressor("cusz")->compress(f, p);
  const auto cuszp = make_compressor("cuszp")->compress(f, p);
  EXPECT_LT(cuszi.bytes.size(), cusz.bytes.size());
  EXPECT_LT(cuszi.bytes.size(), cuszp.bytes.size());
}

TEST(PaperBehaviour, QozBeatsCusziInRatio) {
  // §VII-C.2: "CPU-based QoZ still features a better compression ratio than
  // cuSZ-i due to larger interpolation blocks and more effective lossless".
  const auto& f = cached_field("miranda");
  const CompressParams p{ErrorMode::Rel, 1e-3};
  const auto qoz = make_compressor("qoz")->compress(f, p);
  const auto cuszi =
      szi::with_bitcomp(make_compressor("cusz-i"))->compress(f, p);
  EXPECT_LT(qoz.bytes.size(), cuszi.bytes.size());
}

TEST(PaperBehaviour, BitcompGainIsLargestForCuszi) {
  // §VII-C.1: G-Interp "is more attuned to the additional pass of lossless
  // encoding than any other compressor".
  const auto& f = cached_field("s3d");
  const CompressParams p{ErrorMode::Rel, 1e-2};
  auto gain = [&](const std::string& name) {
    const auto plain = make_compressor(name)->compress(f, p);
    const auto wrapped =
        szi::with_bitcomp(make_compressor(name))->compress(f, p);
    return static_cast<double>(plain.bytes.size()) /
           static_cast<double>(wrapped.bytes.size());
  };
  const double g_cuszi = gain("cusz-i");
  EXPECT_GT(g_cuszi, gain("cuszp"));
  EXPECT_GT(g_cuszi, gain("fz-gpu"));
  EXPECT_GT(g_cuszi, 1.5);
}

TEST(PaperBehaviour, GInterpHigherPsnrThanLorenzoAtSameEb) {
  // Fig. 6's claim, on an RTM snapshot.
  const auto f = szi::datagen::rtm_snapshot(1500, szi::datagen::Size::Small);
  const CompressParams p{ErrorMode::Rel, 1e-2};
  auto ci = make_compressor("cusz-i");
  auto cz = make_compressor("cusz");
  const auto di = szi::metrics::distortion(
      f.data, ci->decompress(ci->compress(f, p).bytes));
  const auto dz = szi::metrics::distortion(
      f.data, cz->decompress(cz->compress(f, p).bytes));
  EXPECT_GT(di.psnr, dz.psnr);
}

}  // namespace
