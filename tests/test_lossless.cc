// Lossless codec tests: LZSS (Bitcomp stand-in), bitshuffle, zero-RLE.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "datagen/rng.hh"
#include "lossless/bitcomp.hh"
#include "lossless/bitshuffle.hh"
#include "lossless/lzss.hh"
#include "lossless/rle.hh"

namespace {

using szi::lossless::lzss_compress;
using szi::lossless::lzss_decompress;

std::vector<std::byte> bytes_of(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64());
  return v;
}

TEST(Lzss, RoundTripRandom) {
  const auto data = bytes_of(random_bytes(300000, 1));
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

TEST(Lzss, RoundTripEmpty) {
  const std::vector<std::byte> data;
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

TEST(Lzss, RoundTripSingleByte) {
  const std::vector<std::byte> data{std::byte{0x42}};
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

TEST(Lzss, ZeroRunsCrush) {
  // The §VI-B scenario: Huffman output with long 0x00 runs.
  std::vector<std::byte> data(1 << 20, std::byte{0});
  const auto enc = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(enc), data);
  EXPECT_LT(enc.size(), data.size() / 100);
}

TEST(Lzss, RepeatedPatternCompresses) {
  std::vector<std::byte> data;
  const char* pattern = "scientific-lossy-compression-";
  for (int i = 0; i < 5000; ++i)
    for (const char* p = pattern; *p; ++p) data.push_back(std::byte(*p));
  const auto enc = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(enc), data);
  EXPECT_LT(enc.size(), data.size() / 20);
}

TEST(Lzss, IncompressibleFallsBackNearRaw) {
  const auto data = bytes_of(random_bytes(256 * 1024, 2));
  const auto enc = lzss_compress(data);
  EXPECT_EQ(lzss_decompress(enc), data);
  // Raw-mode fallback: bounded overhead (headers + offsets + mode bytes).
  EXPECT_LT(enc.size(), data.size() + 1024);
}

TEST(Lzss, BlockBoundariesExact) {
  for (const std::size_t n :
       {szi::lossless::kLzssBlock - 1, szi::lossless::kLzssBlock,
        szi::lossless::kLzssBlock + 1, 3 * szi::lossless::kLzssBlock + 17}) {
    std::vector<std::byte> data(n);
    for (std::size_t i = 0; i < n; ++i)
      data[i] = std::byte(static_cast<std::uint8_t>(i * 7 % 251));
    EXPECT_EQ(lzss_decompress(lzss_compress(data)), data) << "n=" << n;
  }
}

TEST(Lzss, OverlappingMatchRuns) {
  // "abcabcabc..." forces dist < len copies.
  std::vector<std::byte> data;
  for (int i = 0; i < 10000; ++i) data.push_back(std::byte('a' + i % 3));
  EXPECT_EQ(lzss_decompress(lzss_compress(data)), data);
}

// --- Lazy matcher ---------------------------------------------------------
// The encoder's default mode defers a match by one position when the next
// position holds a strictly longer one (plus skip-ahead over incompressible
// runs and capped chain insertion). The format is unchanged, so every lazy
// archive must decode with the untouched decoder, and the ratio must stay
// within 1% of the greedy matcher on the streams we care about.

using szi::lossless::LzssMode;

/// Quant-code-shaped corpus: u16 codes concentrated on one bin (the
/// G-Interp regime), reinterpreted as the byte stream LZSS actually sees.
std::vector<std::byte> concentrated_code_bytes(std::size_t n, double p,
                                               std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  std::vector<std::byte> out(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t c =
        rng.uniform() < p
            ? 512
            : static_cast<std::uint16_t>(512 +
                                         static_cast<int>(rng.gaussian() * 40));
    std::memcpy(out.data() + 2 * i, &c, 2);
  }
  return out;
}

void check_lazy_round_trip_and_ratio(const std::vector<std::byte>& data,
                                     const char* what) {
  SCOPED_TRACE(what);
  const auto lazy =
      lzss_compress(data, szi::lossless::kLzssBlock, LzssMode::Lazy);
  const auto greedy =
      lzss_compress(data, szi::lossless::kLzssBlock, LzssMode::Greedy);
  EXPECT_EQ(lzss_decompress(lazy), data);
  EXPECT_EQ(lzss_decompress(greedy), data);
  // Lazy must never lose more than 1% vs greedy (it usually wins).
  EXPECT_LE(lazy.size(),
            greedy.size() + std::max<std::size_t>(greedy.size() / 100, 16))
      << "lazy " << lazy.size() << " greedy " << greedy.size();
}

TEST(LzssLazy, ConcentratedQuantCodes) {
  check_lazy_round_trip_and_ratio(concentrated_code_bytes(1 << 19, 0.95, 11),
                                  "p=0.95");
  check_lazy_round_trip_and_ratio(concentrated_code_bytes(1 << 19, 0.99, 12),
                                  "p=0.99");
}

TEST(LzssLazy, AllZero) {
  check_lazy_round_trip_and_ratio(std::vector<std::byte>(1 << 20, std::byte{0}),
                                  "all-zero");
}

TEST(LzssLazy, IncompressibleRandom) {
  check_lazy_round_trip_and_ratio(bytes_of(random_bytes(256 * 1024, 13)),
                                  "random");
}

TEST(LzssLazy, ShortPeriodRepeats) {
  for (int period = 1; period <= 3; ++period) {
    std::vector<std::byte> data;
    data.reserve(200000);
    for (int i = 0; i < 200000; ++i)
      data.push_back(std::byte('a' + i % period));
    check_lazy_round_trip_and_ratio(data, "short period");
  }
}

TEST(LzssLazy, MixedRunsAndNoise) {
  // Alternating compressible runs and incompressible noise exercises both
  // the skip-ahead heuristic and the recovery when matches reappear.
  szi::datagen::Rng rng(14);
  std::vector<std::byte> data;
  for (int seg = 0; seg < 64; ++seg) {
    if (seg % 2 == 0) {
      data.insert(data.end(), 4096, std::byte{0x20});
    } else {
      for (int i = 0; i < 4096; ++i)
        data.push_back(std::byte(static_cast<std::uint8_t>(rng.next_u64())));
    }
  }
  check_lazy_round_trip_and_ratio(data, "mixed");
}

TEST(LzssLazy, ModesAgreeAcrossBlockBoundaries) {
  for (const std::size_t n :
       {szi::lossless::kLzssBlock - 1, szi::lossless::kLzssBlock,
        szi::lossless::kLzssBlock + 1}) {
    std::vector<std::byte> data(n);
    for (std::size_t i = 0; i < n; ++i)
      data[i] = std::byte(static_cast<std::uint8_t>(i * 31 % 17));
    check_lazy_round_trip_and_ratio(data, "block boundary");
  }
}

TEST(Lzss, ThrowsOnCorruptHeader) {
  std::vector<std::byte> junk(4, std::byte{0xFF});
  EXPECT_THROW((void)lzss_decompress(junk), std::runtime_error);
}

TEST(Lzss, ThrowsOnTruncatedPayload) {
  std::vector<std::byte> data(200000, std::byte{7});
  auto enc = lzss_compress(data);
  enc.resize(enc.size() - enc.size() / 4);
  EXPECT_THROW((void)lzss_decompress(enc), std::runtime_error);
}

TEST(Bitcomp, FacadeRoundTrip) {
  const auto data = bytes_of(random_bytes(100000, 3));
  EXPECT_EQ(szi::lossless::bitcomp_decompress(szi::lossless::bitcomp_compress(data)),
            data);
}

TEST(Bitshuffle, RoundTripExactBlocks) {
  szi::datagen::Rng rng(4);
  std::vector<std::uint16_t> in(4 * szi::lossless::kShuffleBlock);
  for (auto& v : in) v = static_cast<std::uint16_t>(rng.next_u64());
  std::vector<std::uint8_t> shuf(szi::lossless::bitshuffle16_size(in.size()));
  szi::lossless::bitshuffle16(in, shuf);
  std::vector<std::uint16_t> out(in.size());
  szi::lossless::bitunshuffle16(shuf, out);
  EXPECT_EQ(in, out);
}

TEST(Bitshuffle, RoundTripTailBlock) {
  for (const std::size_t n : {1u, 7u, 8u, 9u, 1023u, 1025u, 2047u}) {
    szi::datagen::Rng rng(5 + n);
    std::vector<std::uint16_t> in(n);
    for (auto& v : in) v = static_cast<std::uint16_t>(rng.next_u64());
    std::vector<std::uint8_t> shuf(szi::lossless::bitshuffle16_size(n));
    szi::lossless::bitshuffle16(in, shuf);
    std::vector<std::uint16_t> out(n);
    szi::lossless::bitunshuffle16(shuf, out);
    EXPECT_EQ(in, out) << "n=" << n;
  }
}

TEST(Bitshuffle, ConstantCodesYieldMostlyZeroPlanes) {
  std::vector<std::uint16_t> in(2048, 512);  // one bit set per value
  std::vector<std::uint8_t> shuf(szi::lossless::bitshuffle16_size(in.size()));
  szi::lossless::bitshuffle16(in, shuf);
  std::size_t nonzero = 0;
  for (const auto b : shuf)
    if (b) ++nonzero;
  // Exactly one plane per block is non-zero: 2 blocks * 128 bytes.
  EXPECT_EQ(nonzero, 2u * szi::lossless::kShuffleBlock / 8);
}

TEST(ZeroRle, RoundTripMixed) {
  std::vector<std::byte> data(100000, std::byte{0});
  for (std::size_t i = 0; i < data.size(); i += 997)
    data[i] = std::byte{0xAB};
  const auto enc = szi::lossless::zero_rle_compress(data);
  EXPECT_EQ(szi::lossless::zero_rle_decompress(enc), data);
  EXPECT_LT(enc.size(), data.size());
}

TEST(ZeroRle, RoundTripAllZero) {
  std::vector<std::byte> data(1 << 16, std::byte{0});
  const auto enc = szi::lossless::zero_rle_compress(data);
  EXPECT_EQ(szi::lossless::zero_rle_decompress(enc), data);
  EXPECT_LT(enc.size(), data.size() / 100);
}

TEST(ZeroRle, RoundTripNoZeros) {
  const auto data = bytes_of(random_bytes(33333, 6));
  const auto enc = szi::lossless::zero_rle_compress(data);
  EXPECT_EQ(szi::lossless::zero_rle_decompress(enc), data);
}

TEST(ZeroRle, RoundTripEmptyAndTiny) {
  for (const std::size_t n : {0u, 1u, 31u, 32u, 33u}) {
    std::vector<std::byte> data(n, std::byte{3});
    EXPECT_EQ(szi::lossless::zero_rle_decompress(
                  szi::lossless::zero_rle_compress(data)),
              data)
        << "n=" << n;
  }
}

TEST(ZeroRle, ThrowsOnTruncation) {
  std::vector<std::byte> data(10000, std::byte{1});
  auto enc = szi::lossless::zero_rle_compress(data);
  enc.resize(enc.size() / 2);
  EXPECT_THROW((void)szi::lossless::zero_rle_decompress(enc),
               std::runtime_error);
}

}  // namespace
