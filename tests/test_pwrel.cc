// Pointwise-relative error mode tests (the with_pointwise_rel decorator).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.hh"
#include "datagen/rng.hh"
#include "metrics/stats.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;

szi::Field log_uniform_field(std::uint64_t seed) {
  // Values spanning 6 orders of magnitude with both signs and exact zeros —
  // the case value-range-relative bounds handle terribly and pointwise
  // bounds exist for.
  szi::Field f("test", "loguniform", {48, 32, 24});
  szi::datagen::Rng rng(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i % 97 == 0) {
      f.data[i] = 0.0f;
      continue;
    }
    const double mag = std::pow(10.0, rng.uniform(-3.0, 3.0));
    const double wave =
        1.0 + 0.3 * std::sin(0.05 * static_cast<double>(i % 4096));
    f.data[i] =
        static_cast<float>((rng.uniform() < 0.3 ? -1.0 : 1.0) * mag * wave);
  }
  return f;
}

/// Max pointwise relative error over nonzero originals; zeros must be exact.
double max_pointwise_rel(const std::vector<float>& orig,
                         const std::vector<float>& recon) {
  double worst = 0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (orig[i] == 0.0f) {
      EXPECT_EQ(recon[i], 0.0f) << "zero not preserved at " << i;
      continue;
    }
    worst = std::max(worst, std::abs(static_cast<double>(recon[i]) -
                                     orig[i]) /
                                std::abs(static_cast<double>(orig[i])));
  }
  return worst;
}

TEST(PwRel, BoundsEveryPointRelatively) {
  const auto f = log_uniform_field(1);
  for (const double rel : {1e-1, 1e-2, 1e-3}) {
    auto c = szi::with_pointwise_rel(szi::baselines::make_compressor("cusz-i"));
    const auto enc = c->compress(f, {ErrorMode::PwRel, rel});
    const auto dec = c->decompress(enc.bytes);
    // Small slack for the float log/exp round trip.
    EXPECT_LE(max_pointwise_rel(f.data, dec), rel * (1 + 1e-3) + 2e-6)
        << "rel=" << rel;
  }
}

TEST(PwRel, BeatsValueRangeRelOnWideDynamicRange) {
  // At the same archive size, pointwise-relative preserves small values far
  // better than a range-relative bound on high-dynamic-range data.
  const auto f = log_uniform_field(2);
  auto pw = szi::with_pointwise_rel(szi::baselines::make_compressor("cusz-i"));
  const auto enc = pw->compress(f, {ErrorMode::PwRel, 1e-2});
  const auto dec = pw->decompress(enc.bytes);
  double worst_small = 0;  // worst relative error among |v| < 1
  for (std::size_t i = 0; i < f.size(); ++i)
    if (f.data[i] != 0.0f && std::abs(f.data[i]) < 1.0f)
      worst_small = std::max(
          worst_small, std::abs(static_cast<double>(dec[i]) - f.data[i]) /
                           std::abs(static_cast<double>(f.data[i])));
  EXPECT_LT(worst_small, 0.011);

  auto rr = szi::baselines::make_compressor("cusz-i");
  const auto enc2 = rr->compress(f, {ErrorMode::Rel, 1e-2});
  const auto dec2 = rr->decompress(enc2.bytes);
  double worst_small2 = 0;
  for (std::size_t i = 0; i < f.size(); ++i)
    if (f.data[i] != 0.0f && std::abs(f.data[i]) < 1.0f)
      worst_small2 = std::max(
          worst_small2, std::abs(static_cast<double>(dec2[i]) - f.data[i]) /
                            std::abs(static_cast<double>(f.data[i])));
  EXPECT_GT(worst_small2, 1.0) << "range-relative should butcher small values";
}

TEST(PwRel, TransparentForOtherModes) {
  const auto f = log_uniform_field(3);
  auto c = szi::with_pointwise_rel(szi::baselines::make_compressor("cusz"));
  const auto enc = c->compress(f, {ErrorMode::Rel, 1e-3});
  // Other modes pass straight through to the inner compressor: the archive
  // is a plain cuSZ archive.
  auto inner = szi::baselines::make_compressor("cusz");
  const auto dec = inner->decompress(enc.bytes);
  EXPECT_TRUE(szi::metrics::error_bounded(
      f.data, dec, 1e-3 * szi::metrics::value_range(f.data)));
}

TEST(PwRel, BareCompressorsRejectPwRel) {
  const auto f = log_uniform_field(4);
  for (const char* name : {"cusz-i", "cusz", "cuszp", "cuszx", "fz-gpu",
                           "sz3", "qoz"}) {
    auto c = szi::baselines::make_compressor(name);
    EXPECT_THROW((void)c->compress(f, {ErrorMode::PwRel, 1e-2}),
                 std::invalid_argument)
        << name;
  }
}

TEST(PwRel, RejectsBadBounds) {
  const auto f = log_uniform_field(5);
  auto c = szi::with_pointwise_rel(szi::baselines::make_compressor("cusz-i"));
  EXPECT_THROW((void)c->compress(f, {ErrorMode::PwRel, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)c->compress(f, {ErrorMode::PwRel, 1.5}),
               std::invalid_argument);
}

TEST(PwRel, RejectsForeignArchive) {
  const auto f = log_uniform_field(6);
  auto plain = szi::baselines::make_compressor("cusz-i");
  const auto enc = plain->compress(f, {ErrorMode::Rel, 1e-2});
  auto c = szi::with_pointwise_rel(szi::baselines::make_compressor("cusz-i"));
  EXPECT_THROW((void)c->decompress(enc.bytes), std::runtime_error);
}

TEST(PwRel, ComposesWithBitcomp) {
  const auto f = log_uniform_field(7);
  auto c = szi::with_pointwise_rel(
      szi::with_bitcomp(szi::baselines::make_compressor("cusz-i")));
  const auto enc = c->compress(f, {ErrorMode::PwRel, 1e-2});
  const auto dec = c->decompress(enc.bytes);
  EXPECT_LE(max_pointwise_rel(f.data, dec), 1e-2 * (1 + 1e-3) + 2e-6);
  EXPECT_EQ(c->name(), "cuSZ-i w/ Bitcomp (pw-rel)");
}

}  // namespace
