// ZFP codec unit tests: rate accounting, quality monotonicity, degenerate
// blocks, and dimensional variants.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/zfp_codec.hh"
#include "datagen/rng.hh"
#include "metrics/stats.hh"

namespace {

using szi::dev::Dim3;

std::vector<float> smooth(const Dim3& dims, std::uint64_t seed) {
  szi::datagen::Rng rng(seed);
  const double f = rng.uniform(0.05, 0.3);
  std::vector<float> v(dims.volume());
  for (std::size_t z = 0; z < dims.z; ++z)
    for (std::size_t y = 0; y < dims.y; ++y)
      for (std::size_t x = 0; x < dims.x; ++x)
        v[szi::dev::linearize(dims, x, y, z)] =
            static_cast<float>(std::sin(f * x) * std::cos(f * y) +
                               0.3 * std::sin(0.5 * f * z));
  return v;
}

TEST(Zfp, HighRateIsNearLossless3D) {
  const Dim3 dims{32, 32, 32};
  const auto data = smooth(dims, 1);
  const auto enc = szi::baselines::zfp::compress(data, dims, 28.0);
  const auto dec = szi::baselines::zfp::decompress(enc);
  const auto d = szi::metrics::distortion(data, dec);
  EXPECT_GT(d.psnr, 120.0);
}

TEST(Zfp, QualityMonotoneInRate) {
  const Dim3 dims{40, 24, 20};
  const auto data = smooth(dims, 2);
  double prev = -1e9;
  for (const double rate : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    const auto dec = szi::baselines::zfp::decompress(
        szi::baselines::zfp::compress(data, dims, rate));
    const double psnr = szi::metrics::distortion(data, dec).psnr;
    EXPECT_GE(psnr, prev - 1.0) << "rate=" << rate;  // allow tiny wiggle
    prev = psnr;
  }
}

TEST(Zfp, AllZeroBlocksAreExact) {
  const Dim3 dims{16, 16, 16};
  std::vector<float> data(dims.volume(), 0.0f);
  const auto dec = szi::baselines::zfp::decompress(
      szi::baselines::zfp::compress(data, dims, 2.0));
  for (const float v : dec) EXPECT_EQ(v, 0.0f);
}

TEST(Zfp, ConstantFieldReconstructsClose) {
  const Dim3 dims{20, 20, 20};
  std::vector<float> data(dims.volume(), 3.75f);
  const auto dec = szi::baselines::zfp::decompress(
      szi::baselines::zfp::compress(data, dims, 8.0));
  for (const float v : dec) EXPECT_NEAR(v, 3.75f, 1e-3f);
}

TEST(Zfp, PartialBlocksRoundTrip) {
  for (const auto& dims : {Dim3{5, 7, 9}, Dim3{33, 17, 2}, Dim3{4, 4, 5}}) {
    const auto data = smooth(dims, 3);
    const auto dec = szi::baselines::zfp::decompress(
        szi::baselines::zfp::compress(data, dims, 16.0));
    ASSERT_EQ(dec.size(), data.size());
    EXPECT_GT(szi::metrics::distortion(data, dec).psnr, 60.0)
        << szi::dev::to_string(dims);
  }
}

TEST(Zfp, TwoDimensionalAndOneDimensional) {
  const Dim3 d2{64, 48, 1};
  const auto a = smooth(d2, 4);
  EXPECT_GT(szi::metrics::distortion(
                a, szi::baselines::zfp::decompress(
                       szi::baselines::zfp::compress(a, d2, 12.0)))
                .psnr,
            55.0);
  const Dim3 d1{4096, 1, 1};
  const auto b = smooth(d1, 5);
  EXPECT_GT(szi::metrics::distortion(
                b, szi::baselines::zfp::decompress(
                       szi::baselines::zfp::compress(b, d1, 12.0)))
                .psnr,
            50.0);
}

TEST(Zfp, LargeMagnitudeValues) {
  const Dim3 dims{16, 16, 16};
  auto data = smooth(dims, 6);
  for (auto& v : data) v = v * 1e20f + 5e19f;
  const auto dec = szi::baselines::zfp::decompress(
      szi::baselines::zfp::compress(data, dims, 16.0));
  const auto d = szi::metrics::distortion(data, dec);
  EXPECT_GT(d.psnr, 70.0);
}

TEST(Zfp, RejectsBadArgs) {
  std::vector<float> data(10);
  EXPECT_THROW(
      (void)szi::baselines::zfp::compress(data, Dim3{11, 1, 1}, 8.0),
      std::invalid_argument);
  std::vector<std::byte> junk(16, std::byte{0x5A});
  EXPECT_THROW((void)szi::baselines::zfp::decompress(junk),
               std::runtime_error);
}

}  // namespace
