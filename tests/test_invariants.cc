// Cross-cutting invariants of the whole system.
#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"

namespace {

using szi::baselines::make_compressor;
using szi::ErrorMode;

const szi::Field& field() {
  static const auto fields =
      szi::datagen::make_dataset("miranda", szi::datagen::Size::Small);
  return fields.front();
}

TEST(Invariants, LorenzoPipelinesReconstructIdentically) {
  // cuSZ and FZ-GPU share the identical Lorenzo dual-quant prediction; they
  // differ only in lossless encoding, so their *reconstructions* must be
  // bit-identical at the same error bound.
  auto cusz = make_compressor("cusz");
  auto fz = make_compressor("fz-gpu");
  const szi::CompressParams p{ErrorMode::Rel, 1e-3};
  const auto a = cusz->decompress(cusz->compress(field(), p).bytes);
  const auto b = fz->decompress(fz->compress(field(), p).bytes);
  EXPECT_EQ(a, b);
}

TEST(Invariants, BitcompWrapperIsLosslessOverAnyArchive) {
  // The de-redundancy pass must be perfectly lossless: unwrapping returns
  // the inner archive bytes, hence identical reconstructions.
  for (const char* name : {"cusz-i", "cuszp", "cuszx"}) {
    auto plain = make_compressor(name);
    auto wrapped = szi::with_bitcomp(make_compressor(name));
    const szi::CompressParams p{ErrorMode::Rel, 1e-3};
    const auto a = plain->decompress(plain->compress(field(), p).bytes);
    const auto b = wrapped->decompress(wrapped->compress(field(), p).bytes);
    EXPECT_EQ(a, b) << name;
  }
}

TEST(Invariants, AbsAndRelModesAgreeAtEquivalentBounds) {
  auto c = make_compressor("cusz-i");
  const double range = szi::metrics::value_range(field().data);
  const double rel = 1e-3;
  const auto a = c->compress(field(), {ErrorMode::Rel, rel});
  const auto b = c->compress(field(), {ErrorMode::Abs, rel * range});
  // Identical absolute bound -> identical codes -> identical archive.
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Invariants, TighterBoundNeverCompressesBetter) {
  for (const char* name : {"cusz-i", "cusz", "cuszp", "cuszx", "fz-gpu"}) {
    auto c = make_compressor(name);
    std::size_t prev = 0;
    for (const double rel : {1e-2, 1e-3, 1e-4}) {
      const auto enc = c->compress(field(), {ErrorMode::Rel, rel});
      EXPECT_GE(enc.bytes.size(), prev) << name << " at " << rel;
      prev = enc.bytes.size();
    }
  }
}

// Archive format freeze: a fixed input must produce this exact digest. If a
// deliberate format change lands, update the constant and note it in the
// release notes — this test exists to catch *accidental* format drift.
TEST(Invariants, ArchiveFormatFrozen) {
  auto c = make_compressor("cusz-i");
  const auto enc = c->compress(field(), {ErrorMode::Rel, 1e-3});
  std::uint64_t fnv = 1469598103934665603ull;
  for (const std::byte b : enc.bytes) {
    fnv ^= static_cast<std::uint64_t>(b);
    fnv *= 1099511628211ull;
  }
  // Self-consistency every run; the digest is also printed so a release
  // process can record it.
  const auto enc2 = c->compress(field(), {ErrorMode::Rel, 1e-3});
  EXPECT_EQ(enc.bytes, enc2.bytes);
  RecordProperty("archive_fnv1a", std::to_string(fnv));
  SUCCEED() << "archive digest: " << fnv;
}

}  // namespace
