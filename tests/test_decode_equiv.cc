// Decode-path equivalence: the overhauled decompression hot paths — the
// buffered BitReader + multi-symbol Huffman pack LUT (huffman::decode_chunks)
// and the in-place slab reconstruction (ginterp_decompress_into /
// GInterpReconstructorT) — must be bit-identical to the retained references:
// the single-symbol-per-probe chunk decoder (decode_chunks_reference) and the
// staged ginterp_decompress that reconstructs through a separate scatter
// buffer. Mirrors tests/test_fused_equiv.cc for the compress side.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#include "core/bytes.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "huffman/huffman.hh"
#include "lossless/lzss.hh"
#include "predictor/ginterp.hh"

namespace {

using szi::CompressParams;
using szi::ErrorMode;
using szi::dev::Dim3;
using szi::predictor::InterpConfig;
using szi::quant::Code;

constexpr CompressParams kRel{ErrorMode::Rel, 1e-3};

/// Both chunk decoders over one encoded stream; returns the packed result
/// after asserting it equals the reference symbol-for-symbol.
std::vector<Code> decode_both_ways(std::span<const Code> codes,
                                   std::size_t nbins, std::size_t chunk_size) {
  const auto stream = szi::huffman::encode(codes, nbins, chunk_size);
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto plan = szi::huffman::decode_plan(stream, ws);
  std::vector<Code> fast(plan.n), ref(plan.n);
  szi::huffman::decode_chunks(plan, 0, plan.nchunks, fast);
  szi::huffman::decode_chunks_reference(plan, 0, plan.nchunks, ref);
  EXPECT_EQ(fast, ref);
  return fast;
}

/// Staged reference reconstruction vs the in-place path, with the in-place
/// destination prefilled with garbage to prove prior contents are invisible.
template <typename T>
void expect_inplace_matches_staged(std::span<const T> data, const Dim3& dims,
                                   double eb) {
  const InterpConfig cfg;
  const auto enc = szi::predictor::ginterp_compress(data, dims, eb, cfg);
  const auto staged = szi::predictor::ginterp_decompress(
      enc.codes, std::span<const T>(enc.anchors), enc.outliers, dims, eb, cfg);

  std::vector<T> inplace(dims.volume(), static_cast<T>(-7.25e11));
  szi::quant::OutlierViewT<T> ov;
  ov.indices = enc.outliers.indices;
  ov.values = enc.outliers.values;
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  szi::predictor::ginterp_decompress_into(
      enc.codes, std::span<const T>(enc.anchors), ov, dims, eb, cfg,
      szi::quant::kDefaultRadius, std::span<T>(inplace), ws);
  ASSERT_EQ(staged.size(), inplace.size());
  // Bit-level comparison: NaNs or signed zeros must match exactly too.
  ASSERT_EQ(0, std::memcmp(staged.data(), inplace.data(),
                           staged.size() * sizeof(T)))
      << dims.x << "x" << dims.y << "x" << dims.z;
}

// Every field of every generated dataset, decoded through both Huffman chunk
// decoders and both reconstruction paths.
TEST(DecodeEquiv, AllDatasetsByteIdentical) {
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto& name : szi::datagen::dataset_names()) {
    const auto fields =
        szi::datagen::make_dataset(name, szi::datagen::Size::Small);
    for (const auto& f : fields) {
      const std::span<const float> d(f.data);
      const double eb = szi::resolve_abs_eb(kRel, d, "test_decode_equiv");
      expect_inplace_matches_staged<float>(d, f.dims, eb);

      const InterpConfig cfg;
      const auto enc = szi::predictor::ginterp_compress(d, f.dims, eb, cfg);
      const auto decoded = decode_both_ways(
          enc.codes, 2 * szi::quant::kDefaultRadius, szi::huffman::kDefaultChunk);
      EXPECT_EQ(decoded, enc.codes) << name << "/" << f.name;

      // End to end: the overhauled wrapped decode must reproduce the plain
      // (reference-pipeline) decode bit for bit.
      const auto inner = szi::cuszi_compress(d, f.dims, kRel);
      const auto wrapped = szi::bitcomp_wrap_archive(inner);
      ASSERT_EQ(szi::cuszi_decompress_bitcomp_f32(wrapped, ws),
                szi::cuszi_decompress_f32(inner))
          << name << "/" << f.name;
    }
  }
}

// Odd, even, and degenerate extents in both precisions: slab scheduling and
// the in-place border reads are where a tile-order dependence would first
// show (partial tiles, single-slab grids, scalar fields).
TEST(DecodeEquiv, ShapesAndPrecisions) {
  const Dim3 shapes[] = {{33, 17, 9}, {32, 16, 8}, {64, 64, 1}, {129, 1, 1},
                         {5, 3, 2},   {2, 2, 2},   {1, 1, 1},   {7, 1, 1}};
  for (const auto& dims : shapes) {
    std::vector<float> v32(dims.volume());
    std::vector<double> v64(dims.volume());
    for (std::size_t i = 0; i < v32.size(); ++i) {
      v64[i] = std::sin(0.05 * static_cast<double>(i)) +
               0.3 * std::cos(0.011 * static_cast<double>(i * i % 1009));
      v32[i] = static_cast<float>(v64[i]);
    }
    expect_inplace_matches_staged<float>(v32, dims, 1e-4);
    expect_inplace_matches_staged<double>(v64, dims, 1e-4);
  }
}

// Huffman pack-LUT edge shapes: tiny streams (shorter than one pack), chunk
// sizes that leave sub-pack tails, streams that end mid-window, and a
// codebook deep enough that the slow-path escape actually runs.
TEST(DecodeEquiv, HuffmanPackEdgeCases) {
  // Concentrated two-hot stream: windows pack the maximum symbol count.
  std::vector<Code> concentrated(100000);
  for (std::size_t i = 0; i < concentrated.size(); ++i)
    concentrated[i] = static_cast<Code>(512 + (i % 2));
  (void)decode_both_ways(concentrated, 1024, szi::huffman::kDefaultChunk);

  // Geometric spread over many symbols: code lengths past kLutBits force
  // the escape path inside packed windows.
  std::vector<Code> spread(200000);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (auto& c : spread) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    // Favor symbol 0 heavily so rare symbols get long codes.
    const unsigned r = static_cast<unsigned>(s >> 59);
    c = static_cast<Code>(r < 24 ? 0 : (s >> 32) % 4096);
  }
  (void)decode_both_ways(spread, 4096, szi::huffman::kDefaultChunk);

  // Tails and tiny streams around the pack width.
  for (const std::size_t n : {1ul, 5ul, 6ul, 7ul, 13ul, 100ul})
    (void)decode_both_ways(std::span<const Code>(spread).first(n), 4096, 64);
}

// Both LZSS parameterizations through the full pipelined decode (widened
// match copies + literal batching are exercised by both token mixes).
TEST(DecodeEquiv, BothLzssModes) {
  const auto f =
      szi::datagen::make_dataset("nyx", szi::datagen::Size::Small).front();
  const std::span<const float> d(f.data);
  const auto inner = szi::cuszi_compress(d, f.dims, kRel);
  const auto ref = szi::cuszi_decompress_f32(inner);
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (const auto mode :
       {szi::lossless::LzssMode::Greedy, szi::lossless::LzssMode::Lazy}) {
    szi::core::ByteWriter w;
    w.put(szi::kBitcompWrapMagic);
    w.put_blob(
        szi::lossless::lzss_compress(inner, szi::lossless::kLzssBlock, mode));
    ASSERT_EQ(szi::cuszi_decompress_bitcomp_f32(w.take(), ws), ref);
  }
}

// A chunk table that lies about its extent must surface CorruptArchive from
// the pool workers of both chunk decoders (the launch-exception satellite:
// dev::launch_linear rethrows the first worker exception on the caller).
TEST(DecodeEquiv, CorruptChunkExtentThrowsThroughParallelLaunch) {
  // Hand-built stream: 4 symbols with Kraft-complete lengths {1,2,3,3},
  // claiming 100 symbols in one chunk whose payload is a single byte.
  // Decoding consumes >= 1 bit per symbol (past-end bits read as zero), so
  // position() overruns the 8-bit span and the extent check must throw.
  szi::core::ByteWriter w;
  w.put(std::uint32_t{4});
  for (const std::uint8_t len : {1, 2, 3, 3}) w.put(len);
  w.put(std::uint64_t{100});        // n_symbols
  w.put(std::uint32_t{100});        // chunk_size -> one chunk
  w.put(std::uint64_t{1});          // payload_bytes
  w.put(std::uint64_t{0});          // chunk 0 offset
  w.put(std::uint8_t{0xFF});        // payload
  const auto bytes = w.take();

  EXPECT_THROW((void)szi::huffman::decode(bytes), szi::core::CorruptArchive);

  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  const auto plan = szi::huffman::decode_plan(bytes, ws);
  std::vector<Code> out(plan.n);
  EXPECT_THROW(
      szi::huffman::decode_chunks_reference(plan, 0, plan.nchunks, out),
      szi::core::CorruptArchive);
}

}  // namespace
