# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ginterp[1]_include.cmake")
include("/root/repo/build/tests/test_lorenzo[1]_include.cmake")
include("/root/repo/build/tests/test_huffman[1]_include.cmake")
include("/root/repo/build/tests/test_lossless[1]_include.cmake")
include("/root/repo/build/tests/test_cuszi[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_zfp[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_cuszi_f64[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_pwrel[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_corruption[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_decode[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_interp[1]_include.cmake")
add_test(parallel_determinism_1thread "/root/repo/build/tests/test_parallel_determinism")
set_tests_properties(parallel_determinism_1thread PROPERTIES  ENVIRONMENT "SZI_THREADS=1" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parallel_determinism_4threads "/root/repo/build/tests/test_parallel_determinism")
set_tests_properties(parallel_determinism_4threads PROPERTIES  DEPENDS "parallel_determinism_1thread" ENVIRONMENT "SZI_THREADS=4" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
