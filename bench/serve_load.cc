// Open-loop load bench for szi::serve — the service-layer counterpart of
// bench/scaling.cc.
//
// A deterministic Poisson arrival process (fixed-seed exponential gaps)
// submits a mixed workload — f32 compresses over three size classes, f64
// compresses, full decompresses, and ROI decodes — against a Service and
// never waits for completions while submitting (open loop: the arrival
// clock, not the service, paces the offered load). Per-request latency is
// taken from the service's own submit->dispatch->complete stamps.
//
// Three scenarios ablate the scheduler's two control knobs:
//   coalesced     waves on, no budget           (the default configuration)
//   uncoalesced   coalesce=false                (every compress is its own
//                                                wave — what batching buys)
//   admission     waves on, workspace budget on (what the budget costs; the
//                                                Queue flavor trims + splits)
//
// Byte-identity is enforced two ways:
//   1. In-process: every compress response is memcmp'd against the direct
//      cuszi_compress() call, every decompress against cuszi_decompress.
//   2. Cross-worker-count: the pool reads SZI_THREADS once per process, so
//      the parent re-executes itself with `--child` under SZI_THREADS =
//      1, 2, 4, 8 and asserts the FNV-1a hash over all responses (in
//      submission order) matches the 1-worker reference.
//
// Writes BENCH_serve.json at the repo root. `--smoke` runs a tiny
// single-scenario workload with no children and no ledger — the CI crash
// gate.
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "device/thread_pool.hh"
#include "serve/serve.hh"

namespace {
using namespace szi;
using serve::ServeConfig;
using serve::Service;
using serve::Status;
using serve::Ticket;

constexpr int kSweep[] = {1, 2, 4, 8};
constexpr std::uint64_t kSeed = 42;
constexpr double kArrivalsPerSec = 600.0;

std::uint64_t fnv1a(const void* p, std::size_t n,
                    std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The fixed asset set every request draws from: three f32 size classes
/// (distinct wave keys), one f64 field, and pre-built archives for the
/// decompress/ROI legs.
struct Assets {
  std::vector<Field> f32_fields;                   // small / medium / large
  std::vector<std::vector<std::byte>> f32_direct;  // direct-call archives
  std::vector<double> f64_data;
  dev::Dim3 f64_dims;
  std::vector<std::byte> f64_direct;
  std::vector<float> decomp_direct;  // direct decode of f32_direct[0]
  RoiBox roi_box;
  std::vector<float> roi_direct;
  CompressParams params{ErrorMode::Rel, 1e-3};
};

Field synth_field(std::size_t nx, std::size_t ny, std::size_t nz,
                  float phase) {
  Field f("serve", "synth", {nx, ny, nz});
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x)
        f.at(x, y, z) = std::sin(0.21f * float(x) + phase) +
                        std::cos(0.13f * float(y)) * std::sin(0.08f * float(z));
  return f;
}

Assets build_assets() {
  Assets a;
  a.f32_fields.push_back(synth_field(24, 20, 16, 0.0f));
  a.f32_fields.push_back(synth_field(48, 40, 32, 0.5f));
  a.f32_fields.push_back(synth_field(96, 64, 48, 1.0f));
  for (const auto& f : a.f32_fields)
    a.f32_direct.push_back(cuszi_compress(f.view(), f.dims, a.params));

  a.f64_dims = {32, 24, 16};
  a.f64_data.resize(a.f64_dims.volume());
  for (std::size_t i = 0; i < a.f64_data.size(); ++i)
    a.f64_data[i] = std::sin(0.017 * double(i));
  a.f64_direct = cuszi_compress(std::span<const double>(a.f64_data),
                                a.f64_dims, a.params);

  a.decomp_direct = cuszi_decompress_f32(a.f32_direct[0]);
  a.roi_box = RoiBox{{8, 6, 4}, {12, 10, 8}};
  a.roi_direct = cuszi_decompress_roi_f32(a.f32_direct[1], a.roi_box).data;
  return a;
}

/// One scheduled arrival. kind: 0-2 compress f32 (size class = kind),
/// 3 compress f64, 4 decompress, 5 ROI.
struct Arrival {
  int kind;
  double at_seconds;
};

/// Deterministic open-loop schedule: Poisson gaps, weighted kind mix
/// (~55% f32 compress, 10% f64 compress, 25% decompress, 10% ROI).
std::vector<Arrival> build_schedule(int n) {
  std::mt19937_64 rng(kSeed);
  std::exponential_distribution<double> gap(kArrivalsPerSec);
  std::discrete_distribution<int> kind({25, 20, 10, 10, 25, 10});
  std::vector<Arrival> plan;
  plan.reserve(n);
  double t = 0;
  for (int i = 0; i < n; ++i) {
    t += gap(rng);
    plan.push_back({kind(rng), t});
  }
  return plan;
}

struct ScenarioResult {
  std::string name;
  double wall_seconds = 0;
  std::size_t requests = 0, ok = 0, failed = 0, rejected = 0;
  std::size_t bytes_in = 0, bytes_out = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  serve::ServiceStats stats;
  bool byte_identical = true;
  std::uint64_t response_hash = 0;  ///< FNV over responses, submission order
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * double(sorted.size()))) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

ScenarioResult run_scenario(const std::string& name, const ServeConfig& cfg,
                            const Assets& a,
                            const std::vector<Arrival>& plan) {
  ScenarioResult res;
  res.name = name;
  Service svc(cfg);
  std::vector<Ticket> tickets;
  tickets.reserve(plan.size());

  const auto start = std::chrono::steady_clock::now();
  for (const auto& arr : plan) {
    // Open loop: pace by the arrival clock, never by completions.
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(arr.at_seconds));
    switch (arr.kind) {
      case 0:
      case 1:
      case 2: {
        const Field& f = a.f32_fields[std::size_t(arr.kind)];
        tickets.push_back(
            svc.submit_compress("load", f.view(), f.dims, a.params));
        break;
      }
      case 3:
        tickets.push_back(svc.submit_compress_f64("load", a.f64_data,
                                                  a.f64_dims, a.params));
        break;
      case 4:
        tickets.push_back(svc.submit_decompress("load", a.f32_direct[0]));
        break;
      default:
        tickets.push_back(svc.submit_roi("load", a.f32_direct[1], a.roi_box));
    }
  }
  for (const auto& t : tickets) (void)t.wait();
  svc.drain();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto& r = tickets[i].wait();
    ++res.requests;
    res.bytes_in += r.bytes_in;
    res.bytes_out += r.bytes_out;
    if (r.status == Status::Rejected) {
      ++res.rejected;
      continue;
    }
    if (r.status == Status::Failed) {
      ++res.failed;
      continue;
    }
    ++res.ok;
    latencies.push_back(r.total_seconds * 1e3);
    switch (plan[i].kind) {
      case 0:
      case 1:
      case 2:
        res.byte_identical = res.byte_identical &&
                             r.archive == a.f32_direct[std::size_t(plan[i].kind)];
        h = fnv1a(r.archive.data(), r.archive.size(), h);
        break;
      case 3:
        res.byte_identical = res.byte_identical && r.archive == a.f64_direct;
        h = fnv1a(r.archive.data(), r.archive.size(), h);
        break;
      case 4:
        res.byte_identical = res.byte_identical && r.data == a.decomp_direct;
        h = fnv1a(r.data.data(), r.data.size() * sizeof(float), h);
        break;
      default:
        res.byte_identical = res.byte_identical && r.data == a.roi_direct;
        h = fnv1a(r.data.data(), r.data.size() * sizeof(float), h);
    }
  }
  res.response_hash = h;
  std::sort(latencies.begin(), latencies.end());
  res.p50_ms = percentile(latencies, 0.50);
  res.p95_ms = percentile(latencies, 0.95);
  res.p99_ms = percentile(latencies, 0.99);
  res.stats = svc.stats();
  return res;
}

// The ablation scenarios force Dispatch::Scheduler so the knobs under test
// actually engage on any host (Auto would go inline at 1 worker and make
// coalesce a no-op); the inline scenario measures that degradation mode
// explicitly.
ServeConfig coalesced_cfg() {
  ServeConfig cfg;
  cfg.dispatch = ServeConfig::Dispatch::Scheduler;
  return cfg;
}

ServeConfig uncoalesced_cfg() {
  ServeConfig cfg = coalesced_cfg();
  cfg.coalesce = false;
  return cfg;
}

ServeConfig admission_cfg() {
  ServeConfig cfg = coalesced_cfg();
  // Below the largest size class's workspace estimate: big-compress waves
  // must trim the pools and split before dispatching.
  cfg.workspace_budget_bytes = std::size_t{6} << 20;
  cfg.over_budget = ServeConfig::OverBudget::Queue;
  return cfg;
}

ServeConfig inline_cfg() {
  ServeConfig cfg;
  cfg.dispatch = ServeConfig::Dispatch::Inline;
  return cfg;
}

int run_child(const char* outfile, int requests) {
  const Assets a = build_assets();
  const auto plan = build_schedule(requests);
  const auto res = run_scenario("child", coalesced_cfg(), a, plan);
  FILE* out = std::fopen(outfile, "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", outfile);
    return 1;
  }
  std::fprintf(out, "workers=%u hash=%016" PRIx64 " identical=%d failed=%zu\n",
               dev::ThreadPool::instance().worker_count(), res.response_hash,
               res.byte_identical ? 1 : 0, res.failed);
  std::fclose(out);
  return res.byte_identical && res.failed == 0 ? 0 : 1;
}

std::string scenario_json(const ScenarioResult& r, bool last) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "    {\"scenario\": \"%s\", \"requests\": %zu, \"ok\": %zu, "
      "\"failed\": %zu, \"rejected\": %zu,\n"
      "     \"wall_seconds\": %.4f, \"requests_per_second\": %.1f, "
      "\"in_mb_per_second\": %.2f, \"out_mb_per_second\": %.2f,\n"
      "     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n"
      "     \"waves\": %" PRIu64 ", \"coalesced_requests\": %" PRIu64
      ", \"admission_deferrals\": %" PRIu64
      ", \"admission_rejects\": %" PRIu64 ",\n"
      "     \"arena_high_water_bytes\": %zu, \"byte_identical\": %s}%s\n",
      r.name.c_str(), r.requests, r.ok, r.failed, r.rejected, r.wall_seconds,
      r.wall_seconds > 0 ? double(r.requests) / r.wall_seconds : 0.0,
      r.wall_seconds > 0 ? double(r.bytes_in) / 1e6 / r.wall_seconds : 0.0,
      r.wall_seconds > 0 ? double(r.bytes_out) / 1e6 / r.wall_seconds : 0.0,
      r.p50_ms, r.p95_ms, r.p99_ms, r.stats.waves, r.stats.coalesced,
      r.stats.admission_deferrals, r.stats.admission_rejects,
      r.stats.arena_high_water_bytes, r.byte_identical ? "true" : "false",
      last ? "" : ",");
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (argc == 3 && std::strcmp(argv[1], "--child") == 0)
    return run_child(argv[2], 240);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const int requests = smoke ? 32 : 240;
  std::printf("serve_load: %d requests, Poisson %.0f/s, mixed "
              "compress/decompress/ROI, %u core(s)\n",
              requests, kArrivalsPerSec, cores);
  if (cores == 1)
    std::printf("note: single-core host — the service degrades to inline "
                "execution (Auto dispatch) and coalescing cannot overlap "
                "work; latencies are honest, speedups cannot manifest\n");

  const Assets a = build_assets();
  const auto plan = build_schedule(requests);

  std::vector<ScenarioResult> scenarios;
  scenarios.push_back(run_scenario("coalesced", coalesced_cfg(), a, plan));
  if (!smoke) {
    scenarios.push_back(
        run_scenario("uncoalesced", uncoalesced_cfg(), a, plan));
    scenarios.push_back(run_scenario("admission", admission_cfg(), a, plan));
    scenarios.push_back(run_scenario("inline", inline_cfg(), a, plan));
  }

  bool all_identical = true;
  for (const auto& s : scenarios) {
    std::printf("  %-12s %5.2f s  %6.1f req/s  p50 %6.3f ms  p95 %6.3f ms  "
                "p99 %6.3f ms  waves %" PRIu64 "  coalesced %" PRIu64
                "  identical %s\n",
                s.name.c_str(), s.wall_seconds,
                s.wall_seconds > 0 ? double(s.requests) / s.wall_seconds : 0.0,
                s.p50_ms, s.p95_ms, s.p99_ms, s.stats.waves, s.stats.coalesced,
                s.byte_identical ? "yes" : "NO");
    all_identical = all_identical && s.byte_identical && s.failed == 0;
  }

  if (smoke) {
    std::printf("smoke: %s\n", all_identical ? "ok" : "FAILED");
    return all_identical ? 0 : 1;
  }

  // Cross-worker-count golden pinning: same workload, SZI_THREADS sweep via
  // re-exec (the pool is a read-once singleton), every response hash must
  // match the 1-worker reference.
  struct ChildResult {
    unsigned workers = 0;
    std::uint64_t hash = 0;
    int identical = 0;
    std::size_t failed = 0;
  };
  std::vector<ChildResult> children;
  for (const int k : kSweep) {
    const std::string tmp =
        std::string(argv[0]) + ".child" + std::to_string(k) + ".txt";
    const std::string cmd = "SZI_THREADS=" + std::to_string(k) + " '" +
                            argv[0] + "' --child '" + tmp + "'";
    std::printf("\n[%d worker(s)] %s\n", k, cmd.c_str());
    std::fflush(stdout);
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "error: child failed at SZI_THREADS=%d\n", k);
      return 1;
    }
    FILE* in = std::fopen(tmp.c_str(), "r");
    ChildResult c;
    if (!in || std::fscanf(in, "workers=%u hash=%" SCNx64 " identical=%d "
                           "failed=%zu",
                           &c.workers, &c.hash, &c.identical, &c.failed) != 4) {
      std::fprintf(stderr, "error: unparsable child output %s\n", tmp.c_str());
      if (in) std::fclose(in);
      return 1;
    }
    std::fclose(in);
    std::remove(tmp.c_str());
    children.push_back(c);
    std::printf("  workers=%u hash=%016" PRIx64 " identical=%d\n", c.workers,
                c.hash, c.identical);
  }
  bool sweep_identical = true;
  for (const auto& c : children)
    sweep_identical = sweep_identical && c.identical == 1 &&
                      c.hash == children.front().hash && c.failed == 0;
  std::printf("\nbyte-identical across worker counts: %s\n",
              sweep_identical ? "yes" : "NO");

  std::string json;
  json += "{\n  \"bench\": \"serve_load\",\n";
  json += "  \"workload\": \"open-loop Poisson " +
          std::to_string(int(kArrivalsPerSec)) +
          "/s, 240 requests: 55% f32 compress (3 size classes), 10% f64 "
          "compress, 25% decompress, 10% ROI\",\n";
  json += "  \"cpu_cores\": " + std::to_string(cores) + ",\n";
  if (cores == 1)
    json += "  \"single_core_host\": \"true — the service runs inline (Auto "
            "dispatch picks no scheduler thread at 1 worker) and scenarios "
            "time-slice one core; latencies are honest measurements on this "
            "box, coalescing/parallel speedup cannot manifest\",\n";
  json += std::string("  \"byte_identical_across_workers\": ") +
          (sweep_identical ? "true" : "false") + ",\n";
  json += "  \"worker_sweep\": [1, 2, 4, 8],\n";
  json += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    json += scenario_json(scenarios[i], i + 1 == scenarios.size());
  json += "  ]\n}\n";
  bench::write_ledger("BENCH_serve.json", json);
  return all_identical && sweep_identical ? 0 : 1;
}
