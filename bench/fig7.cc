// Fig. 7 reproduction.
//
// 7a: rate-distortion (bit rate vs PSNR) series on all six datasets for the
//     error-bounded GPU compressors (each with and without the de-redundancy
//     pass), cuZFP swept by rate, and the CPU QoZ reference curve.
// 7b: the leftward bit-rate change at (approximately) fixed PSNR caused by
//     the extra lossless pass.
#include <cmath>
#include <cstdio>

#include "bench_common.hh"

namespace {

using namespace szi;
using namespace szi::bench;

const double kRelEbs[] = {5e-2, 1e-2, 2e-3, 5e-4, 1e-4};
const double kZfpRates[] = {1.0, 2.0, 4.0, 8.0, 16.0};

struct Point {
  double bit_rate, psnr;
};

std::vector<Point> sweep_eb(Compressor& c, const std::vector<Field>& fields,
                            bool bitcomp_unused = false) {
  (void)bitcomp_unused;
  std::vector<Point> pts;
  for (const double rel : kRelEbs) {
    const Run r = measure_dataset(c, fields, {ErrorMode::Rel, rel});
    pts.push_back({r.bit_rate, r.psnr});
  }
  return pts;
}

std::vector<Point> sweep_rate(Compressor& c, const std::vector<Field>& fields) {
  std::vector<Point> pts;
  for (const double rate : kZfpRates) {
    const Run r = measure_dataset(c, fields, {ErrorMode::FixedRate, rate});
    pts.push_back({r.bit_rate, r.psnr});
  }
  return pts;
}

void print_series(const char* name, const std::vector<Point>& pts) {
  std::printf("  %-22s", name);
  for (const auto& p : pts) std::printf(" (%5.2f bits, %6.1f dB)", p.bit_rate, p.psnr);
  std::printf("\n");
}

/// Linear interpolation of bit rate at a PSNR target along a series.
double bitrate_at_psnr(const std::vector<Point>& pts, double target) {
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const auto& a = pts[i - 1];
    const auto& b = pts[i];
    const double lo = std::min(a.psnr, b.psnr), hi = std::max(a.psnr, b.psnr);
    if (target >= lo && target <= hi && a.psnr != b.psnr)
      return a.bit_rate +
             (b.bit_rate - a.bit_rate) * (target - a.psnr) / (b.psnr - a.psnr);
  }
  return -1;  // outside the swept range
}

}  // namespace

int main() {
  std::printf("Fig. 7a: rate-distortion series (bit rate, PSNR), low rate -> high\n\n");

  std::map<std::string, std::vector<Point>> plain_series, bitcomp_series;

  for (const auto& ds : datagen::dataset_names()) {
    const auto& fields = dataset(ds);
    std::printf("%s:\n", ds.c_str());
    std::printf(" without de-redundancy pass:\n");
    for (const auto& name : baselines::table3_compressors()) {
      auto c = baselines::make_compressor(name);
      const auto pts = sweep_eb(*c, fields);
      if (name == "cusz-i") plain_series[ds] = pts;
      print_series(c->name().c_str(), pts);
    }
    {
      auto c = baselines::make_compressor("cuzfp");
      print_series("cuZFP (fixed rate)", sweep_rate(*c, fields));
    }
    std::printf(" with de-redundancy pass:\n");
    for (const auto& name : baselines::table3_compressors()) {
      auto c = with_bitcomp(baselines::make_compressor(name));
      const auto pts = sweep_eb(*c, fields);
      if (name == "cusz-i") bitcomp_series[ds] = pts;
      print_series(c->name().c_str(), pts);
    }
    {
      auto c = baselines::make_compressor("qoz");
      print_series("QoZ (CPU reference)", sweep_eb(*c, fields));
    }
    std::printf("\n");
  }

  std::printf(
      "Fig. 7b: bit-rate change of cuSZ-i at fixed PSNR from the extra pass\n");
  std::printf("%-10s %10s %16s %16s %10s\n", "dataset", "PSNR", "plain bits",
              "w/ pass bits", "shift");
  print_rule(68);
  for (const auto& ds : datagen::dataset_names()) {
    const auto& plain = plain_series[ds];
    const auto& wrapped = bitcomp_series[ds];
    // Pick a PSNR reachable by both series.
    for (const double target : {60.0, 70.0, 80.0}) {
      const double a = bitrate_at_psnr(plain, target);
      const double b = bitrate_at_psnr(wrapped, target);
      if (a > 0 && b > 0) {
        std::printf("%-10s %9.0f %16.3f %16.3f %9.1f%%\n", ds.c_str(), target,
                    a, b, 100.0 * (b - a) / a);
        break;
      }
    }
  }
  std::printf(
      "\nShape targets: cuSZ-i the upper-left envelope among GPU compressors;\n"
      "with the pass it approaches (but does not beat) CPU QoZ (§VII-C.2).\n");
  return 0;
}
