// TABLE III reproduction: compression ratios at value-range-relative error
// bounds 1e-2 / 1e-3 / 1e-4 for cuSZ, cuSZp, cuSZx, FZ-GPU, and cuSZ-i —
// first without, then with, the Bitcomp-style de-redundancy pass — plus the
// advantage (%) of cuSZ-i over the second best, exactly as the paper's
// columns 1-6 and i-vi.
//
// cuZFP is absent (no absolute-error-bound mode; the paper's N/A). The paper
// also reports cuSZx N/A on Nyx due to runtime errors; our reimplementation
// runs — see EXPERIMENTS.md.
#include <cstdio>

#include "bench_common.hh"

namespace {

using namespace szi;
using namespace szi::bench;

struct Row {
  std::vector<double> ratios;  ///< per compressor
  double advantage = 0;        ///< cuSZ-i over second best, percent
};

Row run_row(const std::vector<Field>& fields, double rel, bool bitcomp) {
  Row row;
  for (const auto& name : baselines::table3_compressors()) {
    auto c = baselines::make_compressor(name);
    if (bitcomp) c = with_bitcomp(std::move(c));
    const Run r = measure_dataset(*c, fields, {ErrorMode::Rel, rel});
    row.ratios.push_back(r.ratio);
  }
  // Advantage of cuSZ-i (last column) over the best other.
  const double cuszi = row.ratios.back();
  double best_other = 0;
  for (std::size_t i = 0; i + 1 < row.ratios.size(); ++i)
    best_other = std::max(best_other, row.ratios[i]);
  row.advantage = best_other > 0 ? 100.0 * (cuszi / best_other - 1.0) : 0.0;
  return row;
}

}  // namespace

int main() {
  std::printf("TABLE III: compression ratios at fixed relative error bounds\n");
  std::printf("(paper cols 1-6: without de-redundancy pass; cols i-vi: with)\n\n");

  const double ebs[] = {1e-2, 1e-3, 1e-4};
  std::printf("%-9s %-6s | %7s %7s %7s %7s %7s %8s | %7s %7s %7s %7s %7s %8s\n",
              "dataset", "eb", "cuSZ", "cuSZp", "cuSZx", "FZ-GPU", "cuSZ-i",
              "Adv.%", "cuSZ", "cuSZp", "cuSZx", "FZ-GPU", "cuSZ-i", "Adv.%");
  szi::bench::print_rule(132);

  for (const auto& ds : datagen::dataset_names()) {
    const auto& fields = dataset(ds);
    for (const double rel : ebs) {
      const Row a = run_row(fields, rel, false);
      const Row b = run_row(fields, rel, true);
      std::printf("%-9s %-6.0e |", ds.c_str(), rel);
      for (const double r : a.ratios) std::printf(" %7.1f", r);
      std::printf(" %+7.1f%% |", a.advantage);
      for (const double r : b.ratios) std::printf(" %7.1f", r);
      std::printf(" %+7.1f%%\n", b.advantage);
    }
  }
  std::printf(
      "\nShape targets from the paper: cuSZ-i best in most cells without the\n"
      "extra pass and in ALL cells with it; the with-pass advantage grows\n"
      "(paper tops at +476%% on S3D 1e-2).\n");
  return 0;
}
