// Fig. 10 reproduction: distributed lossy data transmission — total time
// (compress + wire at ~1 GB/s + decompress) versus decompressed PSNR, per
// dataset, with the de-redundancy pass applied to every pipeline for
// fairness (§VII-C.5). A curve toward the upper left wins.
//
// The wire time uses the paper's measured Globus bandwidth. Codec times are
// measured on the CPU device model, which is ~2 orders of magnitude slower
// than the paper's A100 — left unscaled, every curve would be
// compute-bound and the figure's point (ratio wins once the wire
// dominates) would vanish. The bench therefore divides measured codec time
// by SZI_GPU_SCALE (default 150, roughly A100 kernel throughput over this
// box's; set SZI_GPU_SCALE=1 for raw CPU times).
#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "transfer/globus_model.hh"

namespace {
using namespace szi;
using namespace szi::bench;

const double kRelEbs[] = {1e-2, 2e-3, 5e-4, 1e-4};
const double kZfpRates[] = {2.0, 4.0, 8.0, 16.0};

double gpu_scale() {
  const char* v = std::getenv("SZI_GPU_SCALE");
  const double s = v ? std::atof(v) : 150.0;
  return s > 0 ? s : 1.0;
}
}

int main() {
  const double scale = gpu_scale();
  std::printf(
      "Fig. 10: transfer time vs PSNR at %.1f GB/s "
      "(codec times / %.0f to emulate the paper's A100; SZI_GPU_SCALE)\n\n",
      transfer::kGlobusBandwidth / 1e9, scale);

  for (const auto& ds : datagen::dataset_names()) {
    const auto& fields = dataset(ds);
    std::size_t raw_bytes = 0;
    for (const auto& f : fields) raw_bytes += f.bytes();
    std::printf("%s (%.1f MB raw; uncompressed wire time %.3f s):\n", ds.c_str(),
                static_cast<double>(raw_bytes) / 1e6,
                transfer::raw_transfer_cost(raw_bytes).total());

    for (const std::string name :
         {"cusz", "cuszp", "cuszx", "fz-gpu", "cuzfp", "cusz-i"}) {
      const bool fixed_rate = name == "cuzfp";
      auto c = fixed_rate ? baselines::make_compressor(name)
                          : with_bitcomp(baselines::make_compressor(name));
      std::printf("  %-22s", c->name().c_str());
      const std::size_t npts =
          fixed_rate ? std::size(kZfpRates) : std::size(kRelEbs);
      for (std::size_t i = 0; i < npts; ++i) {
        const CompressParams p =
            fixed_rate ? CompressParams{ErrorMode::FixedRate, kZfpRates[i]}
                       : CompressParams{ErrorMode::Rel, kRelEbs[i]};
        const Run r = measure_dataset(*c, fields, p);
        const auto cost = transfer::transfer_cost(
            r.comp_seconds / scale, r.bytes, r.decomp_seconds / scale);
        std::printf(" (%7.2f ms, %6.1f dB)", cost.total() * 1e3, r.psnr);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Shape target: cuSZ-i best-in-class total time for high-quality\n"
      "transfers (PSNR >= 70 dB) on every dataset (paper §VII-C.5).\n");
  return 0;
}
