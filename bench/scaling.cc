// Worker-count scaling sweep: end-to-end compress and decompress of the
// paper-size Miranda density field (384 x 384 x 256, ~151 MB f32) at
// SZI_THREADS = 1, 2, 4, 8.
//
// The thread pool is a read-once singleton (SZI_THREADS is sampled exactly
// once, at first use), so one process cannot sweep worker counts. The
// parent re-executes itself with `--child <outfile>` under each SZI_THREADS
// value; every child measures the full pipeline and reports timings plus
// FNV-1a hashes of the archive and the reconstruction. The parent then
//   1. asserts the hashes agree across every worker count (the multicore
//      paths must be byte-identical to the single-worker reference), and
//   2. writes BENCH_scaling.json at the repo root with per-count timings
//      and speedups relative to one worker.
//
// Three phases are timed per child:
//   compress         cuszi_compress        (fused chunk-streamed pipeline)
//   decompress       cuszi_decompress_f32  (slab-parallel reconstruction)
//   decompress_bc    cuszi_decompress_bitcomp_f32 on the BBCP-wrapped
//                    archive (parallel LZSS + Huffman group decode feeding
//                    the slab-parallel reconstruction through the
//                    codes_needed watermark)
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "device/thread_pool.hh"

namespace {
using namespace szi;

constexpr int kSweep[] = {1, 2, 4, 8};
constexpr int kReps = 3;

/// FNV-1a 64: cheap, deterministic, and order-sensitive — any byte-level
/// divergence between worker counts flips it.
std::uint64_t fnv1a(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    core::Timer t;
    fn();
    const double s = t.lap();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

struct ChildResult {
  unsigned workers = 0;
  std::size_t archive_bytes = 0;
  std::uint64_t archive_hash = 0, recon_hash = 0;
  double comp_s = 0, decomp_s = 0, decomp_bc_s = 0;
};

int run_child(const char* outfile) {
  const auto fields = datagen::miranda(datagen::Size::Paper);
  const Field& f = fields.front();  // density
  const CompressParams p{ErrorMode::Rel, 1e-3};

  dev::Arena arena;
  dev::Workspace ws(arena);

  // Warmup compresses fault in the input pages and the arena pools, so the
  // timed reps measure the pipeline rather than first-touch.
  auto archive = cuszi_compress(f.view(), f.dims, p);
  const double comp_s = best_of(kReps, [&] {
    archive = cuszi_compress(f.view(), f.dims, p);
    if (archive.empty()) std::abort();
  });

  auto recon = cuszi_decompress_f32(archive);
  const double decomp_s = best_of(kReps, [&] {
    recon = cuszi_decompress_f32(archive);
    if (recon.size() != f.size()) std::abort();
  });

  const auto wrapped = bitcomp_wrap_archive(archive);
  auto recon_bc = cuszi_decompress_bitcomp_f32(wrapped, ws);
  const double decomp_bc_s = best_of(kReps, [&] {
    recon_bc = cuszi_decompress_bitcomp_f32(wrapped, ws);
    if (recon_bc.size() != f.size()) std::abort();
  });

  if (std::memcmp(recon.data(), recon_bc.data(),
                  recon.size() * sizeof(float)) != 0) {
    std::fprintf(stderr, "error: bitcomp-path reconstruction diverges from "
                         "the plain path\n");
    return 1;
  }

  FILE* out = std::fopen(outfile, "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", outfile);
    return 1;
  }
  std::fprintf(out,
               "workers=%u archive_bytes=%zu archive_hash=%016" PRIx64
               " recon_hash=%016" PRIx64
               " comp_s=%.6f decomp_s=%.6f decomp_bc_s=%.6f\n",
               dev::ThreadPool::instance().worker_count(), archive.size(),
               fnv1a(archive.data(), archive.size()),
               fnv1a(recon.data(), recon.size() * sizeof(float)), comp_s,
               decomp_s, decomp_bc_s);
  std::fclose(out);
  return 0;
}

bool parse_child(const char* path, ChildResult& r) {
  FILE* in = std::fopen(path, "r");
  if (!in) return false;
  char line[512] = {0};
  const bool got = std::fgets(line, sizeof line, in) != nullptr;
  std::fclose(in);
  if (!got) return false;
  return std::sscanf(line,
                     "workers=%u archive_bytes=%zu archive_hash=%" SCNx64
                     " recon_hash=%" SCNx64
                     " comp_s=%lf decomp_s=%lf decomp_bc_s=%lf",
                     &r.workers, &r.archive_bytes, &r.archive_hash,
                     &r.recon_hash, &r.comp_s, &r.decomp_s,
                     &r.decomp_bc_s) == 7;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--child") == 0)
    return run_child(argv[2]);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("scaling: miranda density 384x384x256, SZI_THREADS sweep, "
              "%u core(s)\n", cores);
  if (cores == 1)
    std::printf("note: single-core host — extra workers time-slice one core; "
                "expect flat-to-slightly-worse timings, not speedup\n");

  std::vector<ChildResult> results;
  for (const int k : kSweep) {
    const std::string tmp =
        std::string(argv[0]) + ".child" + std::to_string(k) + ".txt";
    const std::string cmd = "SZI_THREADS=" + std::to_string(k) + " '" +
                            argv[0] + "' --child '" + tmp + "'";
    std::printf("\n[%d worker(s)] %s\n", k, cmd.c_str());
    std::fflush(stdout);
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "error: child failed at SZI_THREADS=%d\n", k);
      return 1;
    }
    ChildResult r;
    if (!parse_child(tmp.c_str(), r)) {
      std::fprintf(stderr, "error: unparsable child output %s\n", tmp.c_str());
      return 1;
    }
    std::remove(tmp.c_str());
    results.push_back(r);
    std::printf("  compress %.3f s   decompress %.3f s   decompress(bitcomp) "
                "%.3f s   archive %zu B\n",
                r.comp_s, r.decomp_s, r.decomp_bc_s, r.archive_bytes);
  }

  // Cross-count identity: every archive and reconstruction must hash equal
  // to the 1-worker reference.
  const ChildResult& ref = results.front();
  bool identical = true;
  for (const auto& r : results)
    identical = identical && r.archive_bytes == ref.archive_bytes &&
                r.archive_hash == ref.archive_hash &&
                r.recon_hash == ref.recon_hash;
  std::printf("\nbyte-identical across worker counts: %s\n",
              identical ? "yes" : "NO");

  std::string json;
  json += "{\n  \"bench\": \"scaling\",\n";
  json += "  \"field\": \"miranda/density 384x384x256 f32\",\n";
  json += "  \"reps\": " + std::to_string(kReps) + ",\n";
  json += "  \"cpu_cores\": " + std::to_string(cores) + ",\n";
  if (cores == 1)
    json += "  \"single_core_host\": \"true — worker counts > 1 time-slice "
            "one core, so parallel speedup cannot manifest; timings are "
            "honest measurements on this box\",\n";
  json += std::string("  \"byte_identical\": ") +
          (identical ? "true" : "false") + ",\n";
  json += "  \"archive_bytes\": " + std::to_string(ref.archive_bytes) + ",\n";
  json += "  \"runs\": [\n";
  char buf[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::snprintf(
        buf, sizeof buf,
        "    {\"workers\": %u, \"compress_seconds\": %.6f, "
        "\"decompress_seconds\": %.6f, \"decompress_bitcomp_seconds\": %.6f, "
        "\"compress_speedup\": %.3f, \"decompress_speedup\": %.3f, "
        "\"decompress_bitcomp_speedup\": %.3f}%s\n",
        r.workers, r.comp_s, r.decomp_s, r.decomp_bc_s,
        r.comp_s > 0 ? ref.comp_s / r.comp_s : 0.0,
        r.decomp_s > 0 ? ref.decomp_s / r.decomp_s : 0.0,
        r.decomp_bc_s > 0 ? ref.decomp_bc_s / r.decomp_bc_s : 0.0,
        i + 1 < results.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  bench::write_ledger("BENCH_scaling.json", json);
  return identical ? 0 : 1;
}
