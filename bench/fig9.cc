// Fig. 9 reproduction: compression and decompression throughput (GB/s) for
// cuSZ-i (with and without the de-redundancy pass), cuSZ, cuZFP, cuSZp,
// cuSZx, and FZ-GPU at error bounds 1e-2 and 1e-3.
//
// The paper profiles CUDA kernels on A100/A40; this reproduction runs the
// same pipelines on the CPU device model, so absolute numbers are ~2 orders
// of magnitude lower — the reproduction target is the *ordering*:
// monolithic codecs (cuSZx, cuSZp, FZ-GPU) fastest, cuSZ next, cuSZ-i at the
// same magnitude but slower (60-90% of cuSZ), and the extra pass nearly
// free. As in the paper (§VI-A), the host-side Huffman codebook build is
// excluded from kernel throughput.
#include <cstdio>
#include <vector>

#include "bench_common.hh"

namespace {
using namespace szi;
using namespace szi::bench;
}

int main() {
  std::printf("Fig. 9: kernel throughputs (GB/s), dataset-aggregated\n\n");

  struct Pipe {
    std::string label;
    std::string name;
    bool bitcomp;
    bool fixed_rate;
  };
  const Pipe pipes[] = {
      {"cuSZ-i", "cusz-i", false, false},
      {"cuSZ-i w/ Bitcomp", "cusz-i", true, false},
      {"cuSZ", "cusz", false, false},
      {"cuZFP (rate 4)", "cuzfp", false, true},
      {"cuSZp", "cuszp", false, false},
      {"cuSZx", "cuszx", false, false},
      {"FZ-GPU", "fz-gpu", false, false},
  };

  for (const double rel : {1e-2, 1e-3}) {
    std::printf("relative eb = %.0e\n", rel);
    std::printf("%-20s %14s %14s\n", "pipeline", "comp GB/s", "decomp GB/s");
    print_rule(50);
    // Per-dataset compression throughput, the grouped bars of the paper's
    // figure (printed after the aggregate table).
    std::vector<std::vector<double>> per_dataset(std::size(pipes));
    std::size_t pi = 0;
    for (const auto& pipe : pipes) {
      auto c = baselines::make_compressor(pipe.name);
      if (pipe.bitcomp) c = with_bitcomp(std::move(c));
      std::size_t total_bytes = 0;
      double comp_s = 0, decomp_s = 0;
      for (const auto& ds : datagen::dataset_names()) {
        const auto& fields = dataset(ds);
        const CompressParams p = pipe.fixed_rate
                                     ? CompressParams{ErrorMode::FixedRate, 4.0}
                                     : CompressParams{ErrorMode::Rel, rel};
        const Run r = measure_dataset(*c, fields, p);
        std::size_t ds_bytes = 0;
        for (const auto& f : fields) ds_bytes += f.bytes();
        total_bytes += ds_bytes;
        comp_s += r.kernel_seconds;
        decomp_s += r.decomp_seconds;
        per_dataset[pi].push_back(
            throughput_gbps(ds_bytes, r.kernel_seconds));
      }
      ++pi;
      std::printf("%-20s %14.3f %14.3f\n", pipe.label.c_str(),
                  throughput_gbps(total_bytes, comp_s),
                  throughput_gbps(total_bytes, decomp_s));
    }
    std::printf("\nper-dataset compression GB/s:\n%-20s", "pipeline");
    for (const auto& ds : datagen::dataset_names())
      std::printf(" %8.8s", ds.c_str());
    std::printf("\n");
    print_rule(74);
    for (std::size_t k = 0; k < std::size(pipes); ++k) {
      std::printf("%-20s", pipes[k].label.c_str());
      for (const double v : per_dataset[k]) std::printf(" %8.3f", v);
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Shape targets (paper, A100/A40): cuSZ-i at 60-90%% of cuSZ; the\n"
      "de-redundancy pass adds negligible overhead; cuSZx/cuSZp/FZ-GPU\n"
      "faster but with far lower ratios (Table III / Fig. 7).\n");
  return 0;
}
