// Fig. 5 reproduction: counts of nonzero quant-codes produced by CPU SZ3,
// GPU G-Interp, and GPU Lorenzo on Miranda/pressure at relative error
// bounds 1e-3 and 1e-4. Fewer (and smaller-amplitude) nonzero codes mean a
// more concentrated histogram and a higher ratio after Huffman — the
// paper's §V-E showcase of why G-Interp wins.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/cpu_interp.hh"
#include "bench_common.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"
#include "predictor/lorenzo.hh"

namespace {

using namespace szi;

struct CodeStats {
  std::size_t nonzero = 0;
  double nonzero_pct = 0;
  double mean_abs = 0;  ///< mean |q| over nonzero codes
  std::size_t outliers = 0;
};

CodeStats stats_of(const std::vector<quant::Code>& codes, int radius,
                   std::size_t outlier_count) {
  CodeStats s;
  s.outliers = outlier_count;
  double sum_abs = 0;
  for (const auto c : codes) {
    if (c == quant::kOutlierMarker) continue;
    const int q = static_cast<int>(c) - radius;
    if (q != 0) {
      ++s.nonzero;
      sum_abs += std::abs(q);
    }
  }
  s.nonzero += outlier_count;
  s.nonzero_pct = 100.0 * static_cast<double>(s.nonzero) /
                  static_cast<double>(codes.size());
  s.mean_abs = s.nonzero > 0 ? sum_abs / static_cast<double>(s.nonzero) : 0;
  return s;
}

void print_row(const char* name, const CodeStats& s) {
  std::printf("%-14s %12zu %9.3f%% %12.2f %10zu\n", name, s.nonzero,
              s.nonzero_pct, s.mean_abs, s.outliers);
}

}  // namespace

int main() {
  std::printf("Fig. 5: nonzero quant-codes on Miranda/pressure\n\n");
  const auto& fields = bench::dataset("miranda");
  const Field* pressure = nullptr;
  for (const auto& f : fields)
    if (f.name == "pressure") pressure = &f;
  if (!pressure) {
    std::fprintf(stderr, "missing pressure field\n");
    return 1;
  }
  const Field& f = *pressure;
  const double range = metrics::value_range(f.data);

  for (const double rel : {1e-3, 1e-4}) {
    const double eb = rel * range;
    std::printf("relative eb = %.0e  (n = %zu)\n", rel, f.size());
    std::printf("%-14s %12s %10s %12s %10s\n", "predictor", "nonzero q",
                "pct", "mean |q|", "outliers");
    bench::print_rule(64);

    // CPU SZ3 (global interpolation, the paper's reference).
    {
      baselines::CpuInterpParams ip;
      ip.anchor_stride = baselines::pow2_at_least(
          std::max({f.dims.x, f.dims.y, f.dims.z}));
      ip.alpha = 1.0;
      const auto out = baselines::cpu_interp_compress(f.data, f.dims, eb, ip);
      print_row("SZ3 (CPU)", stats_of(out.codes, ip.radius, out.outliers.count()));
    }
    // G-Interp (cuSZ-i).
    {
      const auto prof = predictor::autotune(f.data, f.dims, eb);
      const auto out = predictor::ginterp_compress(f.data, f.dims, eb,
                                                   prof.config);
      print_row("G-Interp (GPU)",
                stats_of(out.codes, quant::kDefaultRadius, out.outliers.count()));
    }
    // Lorenzo (cuSZ).
    {
      const auto out = predictor::lorenzo_compress(f.data, f.dims, eb);
      print_row("Lorenzo (GPU)",
                stats_of(out.codes, quant::kDefaultRadius, out.outliers.count()));
    }
    std::printf("\n");
  }
  std::printf(
      "Shape target: G-Interp produces far fewer / smaller nonzero codes\n"
      "than Lorenzo and approaches CPU SZ3 (paper Fig. 5).\n");
  return 0;
}
