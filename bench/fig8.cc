// Fig. 8 reproduction: decompression quality at an *aligned compression
// ratio*. For each showcase snapshot (JHTDB velocity, S3D CO), every
// compressor's knob (error bound, or rate for cuZFP) is bisected until its
// with-pass ratio matches the target CR; the bench then reports PSNR and
// dumps a mid-volume slice of each reconstruction as PGM images —
// the textual + visual equivalent of the paper's rendered comparison.
//
// Images land in ./fig8_out/.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "bench_common.hh"
#include "io/bin_io.hh"
#include "metrics/ssim.hh"

namespace {

using namespace szi;
using namespace szi::bench;

/// Bisects `knob` (log-scale) until ratio(knob) ~ target. `increasing` says
/// whether ratio grows with the knob.
double align_cr(const std::function<double(double)>& ratio_of, double lo,
                double hi, double target, bool increasing) {
  for (int it = 0; it < 12; ++it) {
    const double mid = std::sqrt(lo * hi);
    const double r = ratio_of(mid);
    const bool too_small = r < target;
    if (too_small == increasing)
      lo = mid;
    else
      hi = mid;
  }
  return std::sqrt(lo * hi);
}

void showcase(const Field& f, double target_cr, const std::string& out_dir) {
  std::printf("%s: aligning all compressors to CR ~ %.0fx\n", f.label().c_str(),
              target_cr);
  std::printf("%-22s %8s %9s %9s %9s\n", "pipeline", "CR", "PSNR dB",
              "SSIM", "max err");
  print_rule(62);

  io::write_pgm_slice(out_dir + "/" + f.dataset + "_original.pgm", f,
                      f.dims.z / 2);

  for (const std::string name :
       {"cusz-i", "cuzfp", "cuszx", "cusz", "fz-gpu", "cuszp"}) {
    auto c = name == "cuzfp"
                 ? baselines::make_compressor(name)
                 : with_bitcomp(baselines::make_compressor(name));
    CompressParams p;
    if (name == "cuzfp") {
      p.mode = ErrorMode::FixedRate;
      p.value = align_cr(
          [&](double rate) {
            return measure(*c, f, {ErrorMode::FixedRate, rate}).ratio;
          },
          0.5, 32.0, target_cr, /*increasing=*/false);
    } else {
      p.mode = ErrorMode::Rel;
      p.value = align_cr(
          [&](double rel) {
            return measure(*c, f, {ErrorMode::Rel, rel}).ratio;
          },
          1e-6, 0.3, target_cr, /*increasing=*/true);
    }
    const auto enc = c->compress(f, p);
    const auto dec = c->decompress(enc.bytes);
    const auto d = metrics::distortion(f.data, dec);
    const double s = metrics::ssim(f.data, dec, f.dims);
    std::printf("%-22s %7.1fx %9.2f %9.5f %9.2e\n", c->name().c_str(),
                metrics::compression_ratio(f.bytes(), enc.bytes.size()),
                d.psnr, s, d.max_err);
    Field rf = f;
    rf.data = dec;
    io::write_pgm_slice(out_dir + "/" + f.dataset + "_" + name + ".pgm", rf,
                        f.dims.z / 2);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::string out_dir = "fig8_out";
  std::filesystem::create_directories(out_dir);
  std::printf("Fig. 8: fixed-CR visual comparison (PGM slices in %s/)\n\n",
              out_dir.c_str());

  // JHTDB showcase (paper aligns ~27x) and S3D CO (paper ~80x PSNR gap).
  showcase(dataset("jhtdb").front(), 27.0, out_dir);
  for (const auto& f : dataset("s3d"))
    if (f.name == "CO") showcase(f, 60.0, out_dir);

  std::printf(
      "Shape target: at the same CR, cuSZ-i has the highest PSNR (paper:\n"
      "+8 dB over second-best cuZFP on JHTDB; 81.3 vs 37.8 dB on S3D-CO).\n");
  return 0;
}
