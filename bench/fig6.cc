// Fig. 6 reproduction: decompression PSNR across the RTM survey (one
// snapshot per 100 steps of 3700, initialization phase excluded) for
// GPU-interpolation (cuSZ-i), GPU-Lorenzo (cuSZ), and CPU-interpolation
// (SZ3), at relative error bounds 1e-2 and 1e-4.
//
// SZI_FULL=1 samples all 37 snapshots; the default samples every 200 steps
// to keep single-core runtime reasonable.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"

namespace {
using namespace szi;
}

int main() {
  const bool full = std::getenv("SZI_FULL") && std::getenv("SZI_FULL")[0] == '1';
  const int step = full ? 100 : 200;
  // Exclude the initialization phase (paper: "excluding several ones
  // corresponding to the simulation's initialization phase").
  const int t_begin = 600;

  std::printf("Fig. 6: PSNR per RTM snapshot (every %d steps)\n\n", step);
  auto cuszi = baselines::make_compressor("cusz-i");
  auto cusz = baselines::make_compressor("cusz");
  auto sz3 = baselines::make_compressor("sz3");

  for (const double rel : {1e-2, 1e-4}) {
    std::printf("relative eb = %.0e\n", rel);
    std::printf("%-8s %14s %14s %14s %12s\n", "t", "G-Interp dB",
                "GPU-Lorenzo dB", "CPU-interp dB", "interp gain");
    bench::print_rule(68);
    double min_gain = 1e9, max_gain = -1e9;
    for (int t = t_begin; t < 3700; t += step) {
      const auto snap = datagen::rtm_snapshot(t, datagen::size_from_env());
      const CompressParams p{ErrorMode::Rel, rel};
      const auto ri = bench::measure(*cuszi, snap, p);
      const auto rz = bench::measure(*cusz, snap, p);
      const auto rs = bench::measure(*sz3, snap, p);
      const double gain = ri.psnr - rz.psnr;
      min_gain = std::min(min_gain, gain);
      max_gain = std::max(max_gain, gain);
      std::printf("%-8d %14.2f %14.2f %14.2f %+11.2f\n", t, ri.psnr, rz.psnr,
                  rs.psnr, gain);
    }
    std::printf("G-Interp PSNR gain over GPU-Lorenzo: %.2f to %.2f dB "
                "(paper: 2.5 to 10 dB)\n\n",
                min_gain, max_gain);
  }
  std::printf(
      "Shape target: G-Interp above GPU-Lorenzo on every snapshot and both\n"
      "error bounds (paper Fig. 6); anchor design keeps it at or above the\n"
      "CPU interpolation on this wavefield.\n");
  return 0;
}
