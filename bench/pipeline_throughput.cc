// Batched multi-field compression throughput: cuszi_compress_many (one
// stream per pool worker, pooled workspaces over sharded arenas) versus the sequential
// per-field loop (each call paying fresh allocations for every pipeline
// intermediate, as all callers did before the stream/arena layer landed).
//
// Two effects are being measured, mirroring the paper's CUDA setting:
//   1. Buffer reuse — field k+2's quant codes, histograms, Huffman chunk
//      buffers, and LZSS scratch are field k's pages, already faulted in and
//      warm, so the per-invocation mmap/zero-fill overhead cuSZ+ (Tian et
//      al. 2021) identifies disappears after the first fields.
//   2. Stream overlap — on a multi-core host, field B's interpolation runs
//      while field A encodes. (On a single-core CI box only effect 1 is
//      visible.)
//
// Emits BENCH_pipeline.json with both timings, the speedup, and a
// byte-identity check of batched vs sequential archives.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "device/thread_pool.hh"

namespace {
using namespace szi;

/// Best-of-N wall time of `fn` (minimum filters scheduler noise).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    core::Timer t;
    fn();
    const double s = t.lap();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  // A multi-field workload: every field of the two smoothest synthetic
  // datasets (Miranda-like and Nyx-like), the paper's canonical multi-field
  // inputs. Small preset keeps one rep fast enough for several repetitions.
  std::vector<Field> fields;
  for (const char* ds : {"miranda", "nyx"})
    for (auto& f : datagen::make_dataset(ds, datagen::Size::Small))
      fields.push_back(std::move(f));

  std::vector<FieldView> views;
  views.reserve(fields.size());
  std::size_t total_bytes = 0;
  for (const auto& f : fields) {
    views.push_back({f.view(), f.dims});
    total_bytes += f.bytes();
  }

  const CompressParams p{ErrorMode::Rel, 1e-3};
  const int reps = 5;

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("pipeline_throughput: %zu fields, %.1f MB total, %u pool "
              "worker(s), %u core(s), one stream per worker\n\n",
              fields.size(), static_cast<double>(total_bytes) / 1e6,
              dev::ThreadPool::instance().worker_count(), cores);
  if (cores == 1)
    std::printf("note: single-core host — stream overlap (effect 2) cannot "
                "manifest; expect speedup ~1.0x from buffer reuse alone\n\n");

  // Reference archives + warmup (faults in the field data itself so neither
  // timed path pays for it).
  std::vector<std::vector<std::byte>> seq_ref;
  for (const auto& v : views) seq_ref.push_back(cuszi_compress(v.data, v.dims, p));

  const double seq_s = best_of(reps, [&] {
    for (const auto& v : views) {
      auto bytes = cuszi_compress(v.data, v.dims, p);
      if (bytes.empty()) std::abort();
    }
  });

  std::vector<std::vector<std::byte>> batch_out;
  const double batch_s = best_of(reps, [&] {
    batch_out = cuszi_compress_many(views, p);
  });

  bool identical = batch_out.size() == seq_ref.size();
  for (std::size_t i = 0; identical && i < batch_out.size(); ++i)
    identical = batch_out[i] == seq_ref[i];

  const double speedup = batch_s > 0 ? seq_s / batch_s : 0.0;
  // compress_many draws from the sharded per-stream pools, so the global
  // instance() alone would report 0/0 here.
  const auto stats = dev::Arena::aggregate_stats();

  std::printf("sequential loop : %8.3f ms\n", seq_s * 1e3);
  std::printf("compress_many   : %8.3f ms\n", batch_s * 1e3);
  std::printf("speedup         : %8.3fx (%+.1f%%)\n", speedup,
              (speedup - 1.0) * 100.0);
  std::printf("byte-identical  : %s\n", identical ? "yes" : "NO");
  std::printf("arena           : %zu hits / %zu misses, %.1f MB pooled\n",
              stats.hits, stats.misses,
              static_cast<double>(stats.pooled_bytes) / 1e6);

  char json[1024];
  std::snprintf(json, sizeof json,
                "{\n"
                "  \"bench\": \"pipeline_throughput\",\n"
                "  \"fields\": %zu,\n"
                "  \"input_bytes\": %zu,\n"
                "  \"pool_workers\": %u,\n"
                "  \"cpu_cores\": %u,\n"
                "  \"streams\": \"auto (one per pool worker)\",\n"
                "  \"reps\": %d,\n"
                "  \"sequential_seconds\": %.6f,\n"
                "  \"batched_seconds\": %.6f,\n"
                "  \"speedup\": %.4f,\n"
                "  \"byte_identical\": %s,\n"
                "  \"arena_hits\": %zu,\n"
                "  \"arena_misses\": %zu\n"
                "}\n",
                fields.size(), total_bytes,
                dev::ThreadPool::instance().worker_count(), cores, reps, seq_s,
                batch_s, speedup, identical ? "true" : "false", stats.hits,
                stats.misses);
  bench::write_ledger("BENCH_pipeline.json", json);
  return identical ? 0 : 1;
}
