// Random-access (ROI) decode bench: what the TIDX tile index buys. Four
// questions, answered on paper-size miranda (384 x 384 x 256):
//   1. Time-to-region — wall time to materialize a sub-volume through the
//      indexed path versus full decode + crop, per region size.
//   2. Bytes touched — the fraction of the archive the indexed read fetches
//      (raw SZI2 and the 'BBC2'-wrapped archive, whose granularity is the
//      64 KiB LZSS block).
//   3. Scaling — both metrics across 16^3 .. 128^3 regions; time and bytes
//      must grow with the region, not the field.
//   4. Concurrent readers — aggregate regions/s when N threads each serve
//      ROI requests from their own mmap of the same archive file, the
//      many-readers-of-one-snapshot scenario the index exists for.
// Emits BENCH_roi.json. `--smoke` runs one tiny configuration and writes no
// ledger (CI gates on crashes, never on timings).
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "datagen/datasets.hh"
#include "device/thread_pool.hh"
#include "io/archive_source.hh"
#include "io/bin_io.hh"

namespace {
using namespace szi;

/// Best-of-N wall time of `fn` (minimum filters scheduler noise).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    core::Timer t;
    fn();
    const double s = t.lap();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  // The acceptance scenario is the paper-size field; smoke keeps CI fast.
  const auto fields = datagen::make_dataset(
      "miranda", smoke ? datagen::Size::Small : datagen::Size::Paper);
  const auto& f = fields.front();
  const int reps = smoke ? 1 : 3;
  const CompressParams p{ErrorMode::Rel, 1e-3};

  const auto bytes = cuszi_compress(f.view(), f.dims, p);
  const auto wrapped = bitcomp_wrap_archive(bytes);

  std::printf("miranda %s (%zux%zux%zu, %.1f MB) -> %zu B raw, %zu B wrapped\n",
              f.label().c_str(), f.dims.x, f.dims.y, f.dims.z,
              static_cast<double>(f.bytes()) / 1e6, bytes.size(),
              wrapped.size());

  // Full decode + crop is the baseline every region competes against.
  const double full_s = best_of(reps, [&] { (void)cuszi_decompress_f32(bytes); });
  dev::Workspace ws(dev::Arena::instance());
  const double full_w_s = best_of(reps, [&] {
    (void)cuszi_decompress_bitcomp_f32(wrapped, ws);
    ws.reset();
  });
  std::printf("full decode: raw %.3f ms  wrapped %.3f ms\n", full_s * 1e3,
              full_w_s * 1e3);

  std::string json;
  json += "{\n  \"bench\": \"roi\",\n";
  appendf(json, "  \"dims\": [%zu, %zu, %zu],\n", f.dims.x, f.dims.y, f.dims.z);
  appendf(json, "  \"input_bytes\": %zu,\n", f.bytes());
  appendf(json, "  \"archive_bytes\": %zu,\n  \"wrapped_bytes\": %zu,\n",
          bytes.size(), wrapped.size());
  // host_cpus contextualizes the reader sweep: on a single-core host the
  // readers time-slice one core and aggregate throughput cannot rise.
  appendf(json, "  \"workers\": %zu,\n  \"host_cpus\": %u,\n  \"reps\": %d,\n",
          dev::ThreadPool::instance().worker_count(),
          std::thread::hardware_concurrency(), reps);
  appendf(json,
          "  \"full_decode_seconds\": %.6f,\n"
          "  \"full_decode_wrapped_seconds\": %.6f,\n  \"regions\": [\n",
          full_s, full_w_s);

  // Unaligned origins exercise the halo path; each region is centered-ish
  // so every level contributes interior slabs.
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16, 32}
            : std::vector<std::size_t>{16, 32, 64, 128};
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::size_t n = sizes[si];
    const RoiBox box{{f.dims.x / 2 - n / 2 + 3, f.dims.y / 2 - n / 2 + 5,
                      f.dims.z / 2 - n / 2 + 1},
                     {n, n, n}};
    RoiResult r, rw;
    const double roi_s =
        best_of(reps, [&] { r = cuszi_decompress_roi_f32(bytes, box); });
    const double roi_w_s =
        best_of(reps, [&] { rw = cuszi_decompress_roi_f32(wrapped, box); });
    const double frac =
        static_cast<double>(r.bytes_read) / static_cast<double>(bytes.size());
    const double frac_w = static_cast<double>(rw.bytes_read) /
                          static_cast<double>(wrapped.size());
    const double speedup = roi_s > 0 ? full_s / roi_s : 0.0;
    std::printf(
        "  %3zu^3: raw %8.3f ms (%5.1fx vs full, reads %5.1f%%)  "
        "wrapped %8.3f ms (reads %5.1f%%)%s\n",
        n, roi_s * 1e3, speedup, frac * 100.0, roi_w_s * 1e3, frac_w * 100.0,
        r.indexed ? "" : "  [fallback!]");
    appendf(json,
            "    {\"size\": %zu, \"lo\": [%zu, %zu, %zu],\n"
            "     \"seconds\": %.6f, \"bytes_read\": %zu, "
            "\"archive_fraction\": %.4f, \"speedup_vs_full\": %.2f,\n"
            "     \"wrapped_seconds\": %.6f, \"wrapped_bytes_read\": %zu, "
            "\"wrapped_fraction\": %.4f, \"indexed\": %s}%s\n",
            n, box.lo.x, box.lo.y, box.lo.z, roi_s, r.bytes_read, frac,
            speedup, roi_w_s, rw.bytes_read, frac_w,
            r.indexed ? "true" : "false",
            si + 1 < sizes.size() ? "," : "");
  }
  json += "  ],\n  \"concurrent_readers\": [\n";

  // Concurrent readers: the archive lives in one file; every reader thread
  // opens its own mmap and serves a distinct region. Aggregate regions/s
  // should scale until memory bandwidth saturates.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("szi_bench_roi_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "a.szi").string();
  io::write_bytes(path, bytes);
  const std::size_t rn = smoke ? 16 : 64;
  const std::vector<int> reader_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (std::size_t ci = 0; ci < reader_counts.size(); ++ci) {
    const int nr = reader_counts[ci];
    const int per_reader = smoke ? 1 : 4;
    const double wall = best_of(reps, [&] {
      std::vector<std::thread> ts;
      ts.reserve(static_cast<std::size_t>(nr));
      for (int t = 0; t < nr; ++t)
        ts.emplace_back([&, t] {
          io::MmapSource src(path);
          for (int q = 0; q < per_reader; ++q) {
            const RoiBox box{
                {(static_cast<std::size_t>(t) * 29 + 13 * static_cast<std::size_t>(q)) %
                     (f.dims.x - rn),
                 (static_cast<std::size_t>(t) * 17 + 7 * static_cast<std::size_t>(q)) %
                     (f.dims.y - rn),
                 (static_cast<std::size_t>(t) * 11 + 5 * static_cast<std::size_t>(q)) %
                     (f.dims.z - rn)},
                {rn, rn, rn}};
            (void)cuszi_decompress_roi_f32(src, box);
          }
        });
      for (auto& t : ts) t.join();
    });
    const double rps =
        wall > 0 ? static_cast<double>(nr) * per_reader / wall : 0.0;
    std::printf("  %d reader%s x %d region%s of %zu^3: %8.3f ms  "
                "(%.1f regions/s)\n",
                nr, nr == 1 ? " " : "s", per_reader, per_reader == 1 ? "" : "s",
                rn, wall * 1e3, rps);
    appendf(json,
            "    {\"readers\": %d, \"regions_each\": %d, \"region\": %zu, "
            "\"seconds\": %.6f, \"regions_per_second\": %.2f}%s\n",
            nr, per_reader, rn, wall, rps,
            ci + 1 < reader_counts.size() ? "," : "");
  }
  json += "  ]\n}\n";
  fs::remove_all(dir);

  if (smoke) {
    std::printf("smoke run: ledger not written\n");
    return 0;
  }
  bench::write_ledger("BENCH_roi.json", json);
  return 0;
}
