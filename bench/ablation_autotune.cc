// Ablation of the §V-C auto-tuning decisions, measured as full-pipeline
// compression ratio (cuSZ-i + de-redundancy pass) on two contrasting
// datasets. Rows:
//   full autotune        — α(ε) from Eq. (1), per-dim cubic, tuned dim order
//   α = 1                — no level-wise error-bound reduction (§V-B.2 off)
//   fixed not-a-knot     — no per-dim spline selection
//   fixed natural        — ditto, other cubic
//   reversed dim order   — smoothest dimension first (anti-tuned)
#include <cstdio>

#include "bench_common.hh"
#include "huffman/huffman.hh"
#include "lossless/bitcomp.hh"
#include "metrics/stats.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"

namespace {

using namespace szi;

struct Variant {
  const char* label;
  predictor::InterpConfig (*mutate)(predictor::InterpConfig tuned);
};

/// Ratio and PSNR of the predictor+Huffman+pass pipeline under `cfg`.
void run_variant(const Field& f, double eb, const predictor::InterpConfig& cfg,
                 double* ratio, double* psnr) {
  const auto enc = predictor::ginterp_compress(f.data, f.dims, eb, cfg);
  const auto huff = huffman::encode(enc.codes, 2 * quant::kDefaultRadius);
  std::vector<std::byte> archive = huff;
  const auto anchors_bytes = enc.anchors.size() * sizeof(float);
  const auto outl = enc.outliers.serialize();
  archive.insert(archive.end(), outl.begin(), outl.end());
  archive.insert(archive.end(),
                 reinterpret_cast<const std::byte*>(enc.anchors.data()),
                 reinterpret_cast<const std::byte*>(enc.anchors.data()) +
                     anchors_bytes);
  const auto packed = lossless::bitcomp_compress(archive);
  *ratio = metrics::compression_ratio(f.bytes(), packed.size());
  const auto dec = predictor::ginterp_decompress(enc.codes, enc.anchors,
                                                 enc.outliers, f.dims, eb, cfg);
  *psnr = metrics::distortion(f.data, dec).psnr;
}

}  // namespace

int main() {
  const Variant variants[] = {
      {"full autotune", [](predictor::InterpConfig t) { return t; }},
      {"alpha = 1",
       [](predictor::InterpConfig t) {
         t.alpha = 1.0;
         return t;
       }},
      {"fixed not-a-knot",
       [](predictor::InterpConfig t) {
         t.cubic = {predictor::CubicKind::NotAKnot,
                    predictor::CubicKind::NotAKnot,
                    predictor::CubicKind::NotAKnot};
         return t;
       }},
      {"fixed natural",
       [](predictor::InterpConfig t) {
         t.cubic = {predictor::CubicKind::Natural,
                    predictor::CubicKind::Natural,
                    predictor::CubicKind::Natural};
         return t;
       }},
      {"reversed dim order",
       [](predictor::InterpConfig t) {
         std::swap(t.dim_order[0], t.dim_order[2]);
         return t;
       }},
  };

  std::printf("Auto-tuning ablation (cuSZ-i full pipeline)\n\n");
  for (const char* ds : {"miranda", "jhtdb"}) {
    const auto& f = bench::dataset(ds).front();
    const double range = metrics::value_range(f.data);
    for (const double rel : {1e-2, 1e-4}) {
      const double eb = rel * range;
      const auto prof = predictor::autotune(f.data, f.dims, eb);
      std::printf("%s @ rel eb %.0e  (alpha(eps) = %.3f)\n", f.label().c_str(),
                  rel, prof.config.alpha);
      std::printf("  %-20s %9s %9s\n", "variant", "ratio", "PSNR dB");
      for (const auto& v : variants) {
        double ratio = 0, psnr = 0;
        run_variant(f, eb, v.mutate(prof.config), &ratio, &psnr);
        std::printf("  %-20s %8.1fx %9.2f\n", v.label, ratio, psnr);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "Expectations: alpha=1 costs several dB of PSNR for (at most) a small\n"
      "ratio gain (§V-B.2: lower high-level eb cuts distortion at little\n"
      "ratio cost); the wrong cubic spline loses ratio (e.g. natural on\n"
      "JHTDB at 1e-4); dimension order shifts ratio by ~10%% either way —\n"
      "the least-smooth-first heuristic wins on spectral data (JHTDB) and\n"
      "is data-dependent on interface data (Miranda), which is why §V-C\n"
      "profiles instead of hard-coding.\n");
  return 0;
}
