// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <sys/resource.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "io/archive_source.hh"
#include "metrics/stats.hh"

namespace szi::bench {

/// Absolute path of a repo-root ledger file. Benches historically opened
/// relative paths, so the JSON landed wherever the binary happened to be
/// invoked from (usually the build tree) and the committed copy went stale
/// without anyone noticing. SZI_REPO_ROOT is baked in by bench/CMakeLists.txt.
inline std::string ledger_path(const std::string& name) {
#ifdef SZI_REPO_ROOT
  return std::string(SZI_REPO_ROOT) + "/" + name;
#else
  return name;
#endif
}

/// Writes a committed benchmark ledger (BENCH_*.json) at the repo root and
/// fails the process loudly if it cannot — a silently missing ledger reads
/// as "bench ran and was recorded" when it wasn't. Every ledger is stamped
/// with resource telemetry: the process's peak RSS and the process-wide
/// ArchiveSource byte counter (0 for benches that decode from memory),
/// inserted as two extra members of the top-level JSON object.
inline void write_ledger(const std::string& name, std::string json) {
  struct rusage ru = {};
  getrusage(RUSAGE_SELF, &ru);  // ru_maxrss is KiB on Linux
  const auto brace = json.rfind('}');
  if (brace != std::string::npos) {
    char stamp[128];
    std::snprintf(stamp, sizeof stamp,
                  ",\n  \"peak_rss_bytes\": %llu,\n"
                  "  \"archive_bytes_read\": %llu\n",
                  static_cast<unsigned long long>(ru.ru_maxrss) * 1024ull,
                  static_cast<unsigned long long>(io::archive_bytes_read()));
    // The stamp replaces the newline that preceded the closing brace.
    const auto at = brace > 0 && json[brace - 1] == '\n' ? brace - 1 : brace;
    json.insert(at, stamp);
  }
  const std::string path = ledger_path(name);
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot open ledger %s: %s\n", path.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), out) == json.size();
  if (std::fclose(out) != 0 || !ok) {
    std::fprintf(stderr, "error: short write to ledger %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
}

/// Dataset cache: generators are deterministic but not free; every bench
/// touches the same fields.
inline const std::vector<Field>& dataset(const std::string& name) {
  static std::map<std::string, std::vector<Field>> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, datagen::make_dataset(name, datagen::size_from_env()))
             .first;
  return it->second;
}

/// One measured compression run.
struct Run {
  double ratio = 0;         ///< original/compressed
  double bit_rate = 0;      ///< bits per element
  double psnr = 0;
  double max_err = 0;
  double comp_seconds = 0;  ///< end-to-end
  double kernel_seconds = 0;///< excluding the CPU codebook build (§VI-A)
  double decomp_seconds = 0;
  std::size_t bytes = 0;
};

/// Compress + decompress `f`, measuring everything the figures need.
inline Run measure(Compressor& c, const Field& f, const CompressParams& p) {
  Run r;
  const auto enc = c.compress(f, p);
  r.bytes = enc.bytes.size();
  r.ratio = metrics::compression_ratio(f.bytes(), enc.bytes.size());
  r.bit_rate = metrics::bit_rate(f.size(), enc.bytes.size());
  r.comp_seconds = enc.timings.total;
  r.kernel_seconds = enc.timings.kernel_time();
  const auto dec = c.decompress(enc.bytes, &r.decomp_seconds);
  const auto d = metrics::distortion(f.data, dec);
  r.psnr = d.psnr;
  r.max_err = d.max_err;
  return r;
}

/// Dataset-average of per-field runs (TABLE III aggregates whole datasets).
inline Run measure_dataset(Compressor& c, const std::vector<Field>& fields,
                           const CompressParams& p) {
  Run agg;
  std::size_t raw = 0, comp = 0;
  double psnr_sum = 0;
  for (const auto& f : fields) {
    const Run r = measure(c, f, p);
    raw += f.bytes();
    comp += r.bytes;
    psnr_sum += r.psnr;
    agg.comp_seconds += r.comp_seconds;
    agg.kernel_seconds += r.kernel_seconds;
    agg.decomp_seconds += r.decomp_seconds;
  }
  agg.bytes = comp;
  agg.ratio = metrics::compression_ratio(raw, comp);
  agg.bit_rate = 32.0 / agg.ratio;
  agg.psnr = psnr_sum / static_cast<double>(fields.size());
  return agg;
}

/// GB/s for `bytes` of input processed in `seconds`.
inline double throughput_gbps(std::size_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e9 / seconds : 0.0;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace szi::bench
