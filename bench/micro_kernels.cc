// google-benchmark microbenchmarks for the individual kernels: the §VI-A
// histogram ablation (baseline vs top-k hot-band caching), Huffman
// encode/decode, the de-redundancy codec on Huffman-like streams, bitshuffle,
// and the two predictors.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/cuszi.hh"
#include "datagen/datasets.hh"
#include "datagen/rng.hh"
#include "device/arena.hh"
#include "huffman/codebook.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "lossless/bitio.hh"
#include "lossless/bitshuffle.hh"
#include "lossless/lzss.hh"
#include "lossless/rle.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"
#include "predictor/lorenzo.hh"

namespace {

using szi::quant::Code;

/// Quant-code stream with a controllable concentration (p close to 1 =>
/// nearly all zero codes, the G-Interp regime).
std::vector<Code> codes_with_concentration(std::size_t n, double p) {
  szi::datagen::Rng rng(42);
  std::vector<Code> codes(n);
  for (auto& c : codes) {
    if (rng.uniform() < p) {
      c = 512;
    } else {
      c = static_cast<Code>(512 + static_cast<int>(rng.gaussian() * 40));
    }
  }
  return codes;
}

const szi::Field& miranda_field() {
  static const auto fields = szi::datagen::miranda(szi::datagen::Size::Small);
  return fields.front();
}

void BM_HistogramBaseline(benchmark::State& state) {
  const auto codes = codes_with_concentration(1 << 22, 0.95);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::huffman::histogram(codes, 1024));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HistogramBaseline);

void BM_HistogramTopK(benchmark::State& state) {
  const auto codes = codes_with_concentration(1 << 22, 0.95);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::huffman::histogram_topk(codes, 1024, 512, k));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HistogramTopK)->Arg(1)->Arg(8)->Arg(16);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto codes = codes_with_concentration(1 << 21, 0.9);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::huffman::encode(codes, 1024));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto codes = codes_with_concentration(1 << 21, 0.9);
  const auto enc = szi::huffman::encode(codes, 1024);
  for (auto _ : state) benchmark::DoNotOptimize(szi::huffman::decode(enc));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HuffmanDecode);

void BM_HuffmanDecodeBitSerial(benchmark::State& state) {
  // Ablation partner of BM_HuffmanDecode: the canonical bit-serial decoder
  // vs the LUT-accelerated default.
  const auto codes = codes_with_concentration(1 << 21, 0.9);
  const auto hist = szi::huffman::histogram(codes, 1024);
  const auto book = szi::huffman::Codebook::build(hist);
  const auto enc = szi::huffman::encode_with_book(codes, book);
  // Re-decode through the slow table directly on the raw payload is not
  // exposed; emulate by timing table.decode over a rebuilt bitstream.
  std::vector<std::uint8_t> bits;
  {
    szi::lossless::BitWriter bw(bits);
    for (const auto c : codes) bw.put(book.codes[c], book.lengths[c]);
    bw.align();
  }
  const auto table = szi::huffman::DecodeTable::from(book);
  for (auto _ : state) {
    szi::lossless::BitReader br(bits);
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < codes.size(); ++i) sink += table.decode(br);
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_HuffmanDecodeBitSerial);

void BM_LzssOnHuffmanStream(benchmark::State& state) {
  // The §VI-B input: a Huffman stream dominated by zero-runs.
  const auto codes = codes_with_concentration(1 << 21, 0.97);
  const auto huff = szi::huffman::encode(codes, 1024);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::lossless::lzss_compress(huff));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(huff.size()));
}
BENCHMARK(BM_LzssOnHuffmanStream);

void BM_LzssOnHuffmanStreamGreedy(benchmark::State& state) {
  // Ablation partner of BM_LzssOnHuffmanStream: the pre-lazy greedy matcher.
  const auto codes = codes_with_concentration(1 << 21, 0.97);
  const auto huff = szi::huffman::encode(codes, 1024);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::lossless::lzss_compress(
        huff, szi::lossless::kLzssBlock, szi::lossless::LzssMode::Greedy));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(huff.size()));
}
BENCHMARK(BM_LzssOnHuffmanStreamGreedy);

void BM_LzssDecode(benchmark::State& state) {
  // Decode side of BM_LzssOnHuffmanStream: parallel block decode with the
  // widened match copies (8-byte chunks for dist >= 8, memset for dist == 1,
  // batched literal runs).
  const auto codes = codes_with_concentration(1 << 21, 0.97);
  const auto huff = szi::huffman::encode(codes, 1024);
  const auto enc = szi::lossless::lzss_compress(huff);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::lossless::lzss_decompress(enc));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(huff.size()));
}
BENCHMARK(BM_LzssDecode);

void BM_ZeroRleOnShuffledCodes(benchmark::State& state) {
  const auto codes = codes_with_concentration(1 << 21, 0.97);
  std::vector<std::uint8_t> shuffled(
      szi::lossless::bitshuffle16_size(codes.size()));
  szi::lossless::bitshuffle16(codes, shuffled);
  const std::span<const std::byte> view{
      reinterpret_cast<const std::byte*>(shuffled.data()), shuffled.size()};
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::lossless::zero_rle_compress(view));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shuffled.size()));
}
BENCHMARK(BM_ZeroRleOnShuffledCodes);

void BM_Bitshuffle(benchmark::State& state) {
  const auto codes = codes_with_concentration(1 << 21, 0.9);
  std::vector<std::uint8_t> out(szi::lossless::bitshuffle16_size(codes.size()));
  for (auto _ : state) {
    szi::lossless::bitshuffle16(codes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size() * 2));
}
BENCHMARK(BM_Bitshuffle);

void BM_GInterpPredict(benchmark::State& state) {
  const auto& f = miranda_field();
  const double eb = 1e-3 * 2.0;  // ~rel 1e-3 on the [1,3] density field
  const auto prof = szi::predictor::autotune(f.data, f.dims, eb);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        szi::predictor::ginterp_compress(f.data, f.dims, eb, prof.config));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_GInterpPredict);

void BM_LorenzoPredict(benchmark::State& state) {
  const auto& f = miranda_field();
  const double eb = 1e-3 * 2.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        szi::predictor::lorenzo_compress(f.data, f.dims, eb));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_LorenzoPredict);

void BM_GInterpDecompress(benchmark::State& state) {
  const auto& f = miranda_field();
  const double eb = 1e-3 * 2.0;
  const auto prof = szi::predictor::autotune(f.data, f.dims, eb);
  const auto enc =
      szi::predictor::ginterp_compress(f.data, f.dims, eb, prof.config);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::predictor::ginterp_decompress(
        enc.codes, enc.anchors, enc.outliers, f.dims, eb, prof.config));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_GInterpDecompress);

void BM_GInterpReconstruct(benchmark::State& state) {
  // In-place partner of BM_GInterpDecompress: anchors/outliers scatter into
  // the caller's buffer and the tile passes reconstruct in place — no
  // zero-filled staging volume, no final copy (GInterpReconstructorT).
  const auto& f = miranda_field();
  const double eb = 1e-3 * 2.0;
  const auto prof = szi::predictor::autotune(f.data, f.dims, eb);
  const auto enc =
      szi::predictor::ginterp_compress(f.data, f.dims, eb, prof.config);
  szi::quant::OutlierViewT<float> ov;
  ov.indices = enc.outliers.indices;
  ov.values = enc.outliers.values;
  std::vector<float> out(f.dims.volume());
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (auto _ : state) {
    szi::predictor::ginterp_decompress_into(
        enc.codes, std::span<const float>(enc.anchors), ov, f.dims, eb,
        prof.config, szi::quant::kDefaultRadius, std::span<float>(out), ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_GInterpReconstruct);

void BM_AutotuneKernel(benchmark::State& state) {
  const auto& f = miranda_field();
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::predictor::autotune(f.data, f.dims, 1e-3));
}
BENCHMARK(BM_AutotuneKernel);

// ---- End-to-end macro benchmarks (the fused-pipeline headline numbers).
// Fused and unfused pairs produce byte-identical archives (asserted by
// tests/test_fused_equiv.cc), so any delta here is pure memory traffic and
// stage overlap, not a different encoding.

constexpr szi::CompressParams kE2eParams{szi::ErrorMode::Rel, 1e-3};

/// The e2e pair honors SZI_LARGE=1 (datagen::size_from_env): the headline
/// fused-vs-unfused numbers are recorded at the paper-size field, whose
/// working set exceeds the last-level cache — that is where eliminating
/// full-array passes shows up as wall time instead of cache hits. CI's
/// smoke run keeps the default small field.
const szi::Field& e2e_field() {
  static const auto fields =
      szi::datagen::miranda(szi::datagen::size_from_env());
  return fields.front();
}

void BM_CompressEndToEnd(benchmark::State& state) {
  // The fused pipeline to the bitcomp-wrapped archive: histogram inside the
  // predict kernel, Huffman payload emitted into its final slot, LZSS
  // streamed behind a watermark, all scratch from one persistent workspace.
  const auto& f = e2e_field();
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::cuszi_compress_bitcomp(
        f.view(), f.dims, kE2eParams, nullptr, ws));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_CompressEndToEnd);

void BM_CompressEndToEndUnfused(benchmark::State& state) {
  // Reference stage structure: predict pass, histogram pass, Huffman encode
  // into a ByteWriter archive, then LZSS re-reads the finished archive.
  const auto& f = e2e_field();
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::bitcomp_wrap_archive(
        szi::cuszi_compress_unfused(f.view(), f.dims, kE2eParams)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_CompressEndToEndUnfused);

const std::vector<std::byte>& e2e_wrapped_archive() {
  static const auto bytes = szi::bitcomp_wrap_archive(szi::cuszi_compress(
      e2e_field().view(), e2e_field().dims, kE2eParams));
  return bytes;
}

void BM_DecompressEndToEnd(benchmark::State& state) {
  // Pipelined decode: LZSS blocks decode on a stream while the inner
  // archive parses and Huffman-decodes behind the watermark.
  const auto& bytes = e2e_wrapped_archive();
  szi::dev::Arena arena;
  szi::dev::Workspace ws(arena);
  for (auto _ : state)
    benchmark::DoNotOptimize(szi::cuszi_decompress_bitcomp_f32(bytes, ws));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(e2e_field().bytes()));
}
BENCHMARK(BM_DecompressEndToEnd);

void BM_DecompressEndToEndUnfused(benchmark::State& state) {
  // Reference decode: full LZSS pass to a fresh buffer, then the inner
  // decode over it with throwaway-arena scratch.
  const auto& bytes = e2e_wrapped_archive();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        szi::cuszi_decompress_f32(szi::bitcomp_unwrap_archive(bytes)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(e2e_field().bytes()));
}
BENCHMARK(BM_DecompressEndToEndUnfused);

}  // namespace

// Front-end flags (translated to google-benchmark flags so the rest of the
// CLI keeps working; see docs/PERF.md):
//   --json FILE   write the machine-readable run to FILE
//                 (--benchmark_out=FILE --benchmark_out_format=json)
//   --smoke       one quick pass per kernel: every benchmark still runs, so
//                 a crash or assertion fails the process, but nothing is
//                 timed long enough to be load-sensitive (CI's bench-smoke
//                 job gates on the exit code, never on timings)
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      args.emplace_back(std::string("--benchmark_out=") + argv[++i]);
      args.emplace_back("--benchmark_out_format=json");
    } else if (a == "--smoke") {
      args.emplace_back("--benchmark_min_time=0.01");
    } else {
      args.emplace_back(a);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (auto& s : args) cargs.push_back(s.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
