// Progressive-archive bench: what the SZI2 level-segmented layout costs and
// buys. Three questions, answered per dataset:
//   1. Time-to-preview — how fast each coarse level materializes versus a
//      full decode, and what fraction of the archive it reads.
//   2. Full-decode overhead — the segmented archive (one Huffman stream +
//      codebook per level) versus the legacy single-stream SZI1 layout,
//      both in bytes and in decode wall time.
//   3. Per-level versus unified codebook — per-level books adapt to each
//      level's narrowing code distribution; the unified ablation shares one
//      book across every segment under identical framing.
// Emits BENCH_progressive.json. `--smoke` runs one tiny configuration and
// writes no ledger (CI gates on crashes, never on timings).
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"
#include "predictor/ginterp.hh"

namespace {
using namespace szi;

/// Best-of-N wall time of `fn` (minimum filters scheduler noise).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    core::Timer t;
    fn();
    const double s = t.lap();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  const std::vector<std::string> names =
      smoke ? std::vector<std::string>{"miranda"}
            : std::vector<std::string>{"miranda", "nyx", "s3d"};
  const int reps = smoke ? 1 : 3;
  const CompressParams p{ErrorMode::Rel, 1e-3};

  std::string json;
  json += "{\n  \"bench\": \"progressive\",\n";
  appendf(json, "  \"error_mode\": \"rel\",\n  \"error_bound\": %g,\n", p.value);
  appendf(json, "  \"reps\": %d,\n  \"datasets\": [\n", reps);

  for (std::size_t di = 0; di < names.size(); ++di) {
    const auto& fields = bench::dataset(names[di]);
    const auto& f = fields.front();

    // The three archive flavors of the same field.
    const auto v2 = cuszi_compress(f.view(), f.dims, p);
    const auto v1 = cuszi_compress_v1(f.view(), f.dims, p);
    const auto uni = cuszi_compress_unified_book(f.view(), f.dims, p);
    const auto segs = cuszi_archive_segments(v2);

    const double ratio_v2 = metrics::compression_ratio(f.bytes(), v2.size());
    const double ratio_v1 = metrics::compression_ratio(f.bytes(), v1.size());
    const double ratio_uni = metrics::compression_ratio(f.bytes(), uni.size());

    // Full-decode wall time on each layout (v2 pays per-segment codebook
    // rebuilds; v1 decodes one monolithic stream).
    const double dec_v2 =
        best_of(reps, [&] { (void)cuszi_decompress_f32(v2); });
    const double dec_v1 =
        best_of(reps, [&] { (void)cuszi_decompress_f32(v1); });

    std::printf("%s %s (%zux%zux%zu, %.1f MB)\n", names[di].c_str(),
                f.label().c_str(), f.dims.x, f.dims.y, f.dims.z,
                static_cast<double>(f.bytes()) / 1e6);
    std::printf("  archive: v2 %zu B (%.2fx)  v1 %zu B (%.2fx)  "
                "unified-book %zu B (%.2fx)\n",
                v2.size(), ratio_v2, v1.size(), ratio_v1, uni.size(),
                ratio_uni);
    std::printf("  full decode: v2 %.3f ms  v1 %.3f ms  (overhead %+.1f%%)\n",
                dec_v2 * 1e3, dec_v1 * 1e3,
                dec_v1 > 0 ? (dec_v2 / dec_v1 - 1.0) * 100.0 : 0.0);

    appendf(json, "    {\n      \"dataset\": \"%s\",\n", names[di].c_str());
    appendf(json, "      \"dims\": [%zu, %zu, %zu],\n", f.dims.x, f.dims.y,
            f.dims.z);
    appendf(json, "      \"input_bytes\": %zu,\n", f.bytes());
    appendf(json,
            "      \"v2_bytes\": %zu,\n      \"v1_bytes\": %zu,\n"
            "      \"unified_book_bytes\": %zu,\n",
            v2.size(), v1.size(), uni.size());
    appendf(json,
            "      \"v2_ratio\": %.4f,\n      \"v1_ratio\": %.4f,\n"
            "      \"unified_book_ratio\": %.4f,\n",
            ratio_v2, ratio_v1, ratio_uni);
    appendf(json,
            "      \"full_decode_v2_seconds\": %.6f,\n"
            "      \"full_decode_v1_seconds\": %.6f,\n",
            dec_v2, dec_v1);

    json += "      \"segments\": [\n";
    for (std::size_t i = 0; i < segs.size(); ++i)
      appendf(json,
              "        {\"kind\": %u, \"level\": %u, \"count\": %llu, "
              "\"bytes\": %llu}%s\n",
              segs[i].kind, segs[i].level,
              static_cast<unsigned long long>(segs[i].count),
              static_cast<unsigned long long>(segs[i].size),
              i + 1 < segs.size() ? "," : "");
    json += "      ],\n      \"previews\": [\n";

    // Time-to-preview, coarsest (anchor grid) to full fidelity. PSNR is
    // measured against the stride subsample of the original field so every
    // level has a ground truth at its own resolution.
    const int nlevels = predictor::ginterp_level_count(f.dims);
    for (int level = nlevels + 1; level >= 1; --level) {
      ProgressiveResult r;
      const double s = best_of(reps, [&] {
        r = cuszi_decompress_progressive_f32(v2, level);
      });
      const auto truth = predictor::ginterp_subsample(
          std::span<const float>(f.data), f.dims, level);
      const double psnr = metrics::distortion(truth, r.data).psnr;
      const double frac =
          static_cast<double>(r.bytes_read) / static_cast<double>(v2.size());
      std::printf("  level >= %d: %zux%zux%zu  %8.3f ms  reads %5.1f%%  "
                  "PSNR %6.2f dB\n",
                  level, r.dims.x, r.dims.y, r.dims.z, s * 1e3, frac * 100.0,
                  psnr);
      char psnr_s[32];
      if (std::isfinite(psnr))
        std::snprintf(psnr_s, sizeof psnr_s, "%.2f", psnr);
      else
        std::snprintf(psnr_s, sizeof psnr_s, "null");  // lossless preview
      appendf(json,
              "        {\"max_level\": %d, \"dims\": [%zu, %zu, %zu], "
              "\"seconds\": %.6f, \"bytes_read\": %zu, "
              "\"archive_fraction\": %.4f, \"psnr\": %s}%s\n",
              level, r.dims.x, r.dims.y, r.dims.z, s, r.bytes_read, frac,
              psnr_s, level > 1 ? "," : "");
    }
    appendf(json, "      ]\n    }%s\n", di + 1 < names.size() ? "," : "");
  }
  json += "  ]\n}\n";

  if (smoke) {
    std::printf("smoke run: ledger not written\n");
    return 0;
  }
  bench::write_ledger("BENCH_progressive.json", json);
  return 0;
}
