// Lossless-orchestration ratio bench: what the per-segment method chooser
// (BBC2 container, src/lossless/orchestrate.hh) buys over the always-LZSS
// wrapper, per §VI-B dataset. For each dataset the same inner SZI2 archive
// is wrapped four ways — the three forced single-method policies and the
// sampled Auto chooser — and the bench records:
//   1. Wrapped bytes + ratio per policy, and Auto's delta vs always-LZSS
//      (Auto must match or beat it everywhere: the chooser's hysteresis
//      margin means it only deviates from LZSS when the sample says the
//      transform clearly pays).
//   2. The chooser's own cost: resolve_method over every wrapper segment,
//      as a fraction of the end-to-end fused compress. The sample is capped
//      at 256 KiB per segment, so this fraction *shrinks* with input size.
//   3. Per-segment decisions with their audit (sample size, entropy,
//      sampled candidate costs) — the ledger doubles as a record of *why*
//      each segment chose its method.
// Emits BENCH_ratio.json. `--smoke` pins Size::Small, re-measures the Auto
// bytes per dataset, and fails (exit 1) if any dataset's archive grew >1%
// over the committed ledger — a ratio-regression gate that needs no timing,
// so it is CI-stable. Every wrapped archive is round-trip-verified against
// the inner bytes in both modes.
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "datagen/datasets.hh"
#include "device/arena.hh"
#include "lossless/orchestrate.hh"
#include "metrics/stats.hh"

namespace {
using namespace szi;

/// Best-of-N wall time of `fn` (minimum filters scheduler noise).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    core::Timer t;
    fn();
    const double s = t.lap();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

const std::vector<std::string> kDatasets = {"jhtdb", "miranda",  "nyx",
                                            "qmcpack", "rtm", "s3d"};

/// Wrap with `policy` and hard-fail unless the container unwraps back to
/// the exact inner bytes — a bench that records sizes of archives that do
/// not decode would be worse than no bench.
std::vector<std::byte> wrap_checked(std::span<const std::byte> inner,
                                    lossless::MethodPolicy policy,
                                    std::vector<lossless::ChoiceAudit>* audits,
                                    const std::string& what) {
  auto wrapped = bitcomp_wrap_archive(inner, lossless::LzssMode::Lazy, policy,
                                      audits);
  const auto back = bitcomp_unwrap_archive(wrapped);
  if (back.size() != inner.size() ||
      std::memcmp(back.data(), inner.data(), inner.size()) != 0) {
    std::fprintf(stderr, "error: %s wrap does not round-trip\n", what.c_str());
    std::exit(1);
  }
  return wrapped;
}

/// Pulls `"auto_bytes": N` for `dataset` out of the committed ledger with
/// plain string search — the ledger is machine-written with fixed key order,
/// so a JSON parser would be dead weight here.
std::size_t baseline_auto_bytes(const std::string& ledger,
                                const std::string& dataset) {
  const std::string anchor = "\"dataset\": \"" + dataset + "\"";
  const auto at = ledger.find(anchor);
  if (at == std::string::npos) return 0;
  const auto key = ledger.find("\"auto_bytes\": ", at);
  if (key == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::strtoull(ledger.c_str() + key + 14, nullptr, 10));
}

std::string read_file(const std::string& path) {
  FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) out.append(buf, n);
  std::fclose(in);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;

  const CompressParams p{ErrorMode::Rel, 1e-3};
  // The smoke gate compares byte counts against the committed ledger, so it
  // must regenerate the exact Small-size fields the ledger was built from
  // regardless of SZI_LARGE in the environment.
  const auto size = smoke ? datagen::Size::Small : datagen::size_from_env();
  const int reps = smoke ? 1 : 3;

  if (smoke) {
    const std::string ledger =
        read_file(bench::ledger_path("BENCH_ratio.json"));
    if (ledger.find("\"size\": \"small\"") == std::string::npos) {
      std::fprintf(stderr,
                   "error: committed BENCH_ratio.json missing or not a "
                   "small-size ledger; regenerate with bench/ratio\n");
      return 1;
    }
    bool ok = true;
    for (const auto& name : kDatasets) {
      const auto fields = datagen::make_dataset(name, size);
      const auto& f = fields.front();
      const auto inner = cuszi_compress(f.view(), f.dims, p);
      const auto wrapped = wrap_checked(
          inner, lossless::MethodPolicy::Auto, nullptr, name + " auto");
      const std::size_t base = baseline_auto_bytes(ledger, name);
      if (base == 0) {
        std::fprintf(stderr, "error: no auto_bytes baseline for %s\n",
                     name.c_str());
        ok = false;
        continue;
      }
      const double pct =
          (static_cast<double>(wrapped.size()) / static_cast<double>(base) -
           1.0) * 100.0;
      std::printf("%-8s auto %8zu B  baseline %8zu B  (%+.2f%%)\n",
                  name.c_str(), wrapped.size(), base, pct);
      if (static_cast<double>(wrapped.size()) >
          static_cast<double>(base) * 1.01) {
        std::fprintf(stderr,
                     "error: %s auto archive regressed %.2f%% over the "
                     "committed BENCH_ratio.json baseline\n",
                     name.c_str(), pct);
        ok = false;
      } else if (wrapped.size() < base) {
        std::printf("  note: %s improved; refresh BENCH_ratio.json\n",
                    name.c_str());
      }
    }
    std::printf(ok ? "smoke run: ratio gate passed; ledger not written\n"
                   : "smoke run: ratio gate FAILED\n");
    return ok ? 0 : 1;
  }

  std::string json;
  json += "{\n  \"bench\": \"ratio\",\n";
  appendf(json, "  \"size\": \"%s\",\n",
          size == datagen::Size::Paper ? "paper" : "small");
  appendf(json, "  \"error_mode\": \"rel\",\n  \"error_bound\": %g,\n",
          p.value);
  appendf(json, "  \"lzss_mode\": \"lazy\",\n  \"reps\": %d,\n", reps);
  json += "  \"datasets\": [\n";

  int auto_wins = 0;
  for (std::size_t di = 0; di < kDatasets.size(); ++di) {
    const auto& name = kDatasets[di];
    const auto fields = datagen::make_dataset(name, size);
    const auto& f = fields.front();
    const auto inner = cuszi_compress(f.view(), f.dims, p);

    std::vector<lossless::ChoiceAudit> audits;
    const auto w_lzss = wrap_checked(inner, lossless::MethodPolicy::ForceLzss,
                                     nullptr, name + " lzss");
    const auto w_rle = wrap_checked(
        inner, lossless::MethodPolicy::ForceZeroRle, nullptr, name + " rle");
    const auto w_bsh =
        wrap_checked(inner, lossless::MethodPolicy::ForceBitshuffle, nullptr,
                     name + " bitshuffle");
    const auto w_auto = wrap_checked(inner, lossless::MethodPolicy::Auto,
                                     &audits, name + " auto");
    const auto view = bitcomp_parse_container(w_auto);
    if (w_auto.size() > w_lzss.size()) {
      std::fprintf(stderr,
                   "error: %s auto archive (%zu B) lost to always-LZSS "
                   "(%zu B) — the chooser margin is mis-tuned\n",
                   name.c_str(), w_auto.size(), w_lzss.size());
      const auto lz_view = bitcomp_parse_container(w_lzss);
      for (std::size_t i = 0; i < view.segments.size(); ++i)
        std::fprintf(
            stderr,
            "  seg %zu: auto %-10s %llu -> %llu B (lzss %llu B; sampled "
            "%zu B, %.2f bits/B, costs %llu/%llu/%llu)\n",
            i, lossless::method_name(view.segments[i].method),
            static_cast<unsigned long long>(view.segments[i].raw_size),
            static_cast<unsigned long long>(view.segments[i].size),
            static_cast<unsigned long long>(lz_view.segments[i].size),
            audits[i].sampled_bytes, audits[i].entropy_bits,
            static_cast<unsigned long long>(audits[i].cost[0]),
            static_cast<unsigned long long>(audits[i].cost[1]),
            static_cast<unsigned long long>(audits[i].cost[2]));
      return 1;
    }
    if (w_auto.size() < w_lzss.size()) ++auto_wins;

    // Chooser cost alone: resolve over the same wrapper segmentation the
    // writer uses (header+directory range, then one span per directory
    // segment), against the end-to-end fused compress it rides on.
    const auto segs = cuszi_archive_segments(inner);
    dev::Workspace ws(dev::Arena::instance());
    const double t_choose = best_of(reps, [&] {
      auto probe = [&](std::size_t off, std::size_t len) {
        (void)lossless::choose_method(
            std::span<const std::byte>(inner).subspan(off, len),
            lossless::LzssMode::Lazy, ws);
        ws.reset();
      };
      probe(0, static_cast<std::size_t>(segs.front().offset));
      for (const auto& s : segs)
        probe(static_cast<std::size_t>(s.offset),
              static_cast<std::size_t>(s.size));
    });
    const double t_e2e = best_of(reps, [&] {
      (void)cuszi_compress_bitcomp(f.view(), f.dims, p, nullptr, ws);
    });
    const double chooser_pct = t_e2e > 0 ? t_choose / t_e2e * 100.0 : 0.0;

    const double r_in = static_cast<double>(f.bytes());
    std::printf("%s %s (%zux%zux%zu, %.1f MB)\n", name.c_str(),
                f.label().c_str(), f.dims.x, f.dims.y, f.dims.z, r_in / 1e6);
    std::printf("  wrapped: lzss %zu B (%.2fx)  zero-rle %zu B (%.2fx)  "
                "bitshuffle %zu B (%.2fx)\n",
                w_lzss.size(), r_in / static_cast<double>(w_lzss.size()),
                w_rle.size(), r_in / static_cast<double>(w_rle.size()),
                w_bsh.size(), r_in / static_cast<double>(w_bsh.size()));
    std::printf("  auto:    %zu B (%.2fx)  vs always-lzss %+.2f%%\n",
                w_auto.size(), r_in / static_cast<double>(w_auto.size()),
                (static_cast<double>(w_auto.size()) /
                     static_cast<double>(w_lzss.size()) -
                 1.0) * 100.0);
    std::printf("  chooser: %.3f ms of %.3f ms end-to-end (%.2f%%)\n",
                t_choose * 1e3, t_e2e * 1e3, chooser_pct);
    for (std::size_t i = 0; i < view.segments.size(); ++i)
      std::printf("    seg %zu: %-10s %8llu -> %8llu B  (sampled %zu B, "
                  "%.2f bits/B%s)\n",
                  i, lossless::method_name(view.segments[i].method),
                  static_cast<unsigned long long>(view.segments[i].raw_size),
                  static_cast<unsigned long long>(view.segments[i].size),
                  audits[i].sampled_bytes, audits[i].entropy_bits,
                  audits[i].entropy_shortcut ? ", shortcut" : "");

    appendf(json, "    {\n      \"dataset\": \"%s\",\n", name.c_str());
    appendf(json, "      \"dims\": [%zu, %zu, %zu],\n", f.dims.x, f.dims.y,
            f.dims.z);
    appendf(json, "      \"input_bytes\": %zu,\n", f.bytes());
    appendf(json, "      \"inner_bytes\": %zu,\n", inner.size());
    appendf(json,
            "      \"lzss_bytes\": %zu,\n      \"zero_rle_bytes\": %zu,\n"
            "      \"bitshuffle_bytes\": %zu,\n      \"auto_bytes\": %zu,\n",
            w_lzss.size(), w_rle.size(), w_bsh.size(), w_auto.size());
    appendf(json,
            "      \"lzss_ratio\": %.4f,\n      \"auto_ratio\": %.4f,\n",
            r_in / static_cast<double>(w_lzss.size()),
            r_in / static_cast<double>(w_auto.size()));
    appendf(json, "      \"auto_vs_lzss_pct\": %.4f,\n",
            (static_cast<double>(w_auto.size()) /
                 static_cast<double>(w_lzss.size()) -
             1.0) * 100.0);
    appendf(json,
            "      \"chooser_seconds\": %.6f,\n"
            "      \"compress_seconds\": %.6f,\n"
            "      \"chooser_pct\": %.4f,\n",
            t_choose, t_e2e, chooser_pct);
    json += "      \"segments\": [\n";
    for (std::size_t i = 0; i < view.segments.size(); ++i)
      appendf(json,
              "        {\"method\": \"%s\", \"raw_bytes\": %llu, "
              "\"payload_bytes\": %llu, \"sampled_bytes\": %zu, "
              "\"entropy_bits\": %.4f, \"entropy_shortcut\": %s}%s\n",
              lossless::method_name(view.segments[i].method),
              static_cast<unsigned long long>(view.segments[i].raw_size),
              static_cast<unsigned long long>(view.segments[i].size),
              audits[i].sampled_bytes, audits[i].entropy_bits,
              audits[i].entropy_shortcut ? "true" : "false",
              i + 1 < view.segments.size() ? "," : "");
    appendf(json, "      ]\n    }%s\n",
            di + 1 < kDatasets.size() ? "," : "");
  }
  json += "  ],\n";

  // Paper-size spot check: the chooser's cost is capped per segment (256 KiB
  // sample), so its share of the end-to-end compress must *shrink* as the
  // input grows — the <2% overhead claim is made at TABLE II dimensions,
  // not at CI size. One dataset suffices to pin the scaling.
  {
    const auto fields = datagen::make_dataset("miranda", datagen::Size::Paper);
    const auto& f = fields.front();
    const auto inner = cuszi_compress(f.view(), f.dims, p);
    const auto segs = cuszi_archive_segments(inner);
    dev::Workspace ws(dev::Arena::instance());
    const double t_choose = best_of(2, [&] {
      auto probe = [&](std::size_t off, std::size_t len) {
        (void)lossless::choose_method(
            std::span<const std::byte>(inner).subspan(off, len),
            lossless::LzssMode::Lazy, ws);
        ws.reset();
      };
      probe(0, static_cast<std::size_t>(segs.front().offset));
      for (const auto& s : segs)
        probe(static_cast<std::size_t>(s.offset),
              static_cast<std::size_t>(s.size));
    });
    const double t_e2e = best_of(2, [&] {
      (void)cuszi_compress_bitcomp(f.view(), f.dims, p, nullptr, ws);
    });
    const double pct = t_e2e > 0 ? t_choose / t_e2e * 100.0 : 0.0;
    std::printf("paper-size check: miranda %zux%zux%zu  chooser %.3f ms of "
                "%.1f ms end-to-end (%.3f%%)\n",
                f.dims.x, f.dims.y, f.dims.z, t_choose * 1e3, t_e2e * 1e3,
                pct);
    appendf(json,
            "  \"paper_check\": {\"dataset\": \"miranda\", "
            "\"dims\": [%zu, %zu, %zu], \"chooser_seconds\": %.6f, "
            "\"compress_seconds\": %.6f, \"chooser_pct\": %.4f},\n",
            f.dims.x, f.dims.y, f.dims.z, t_choose, t_e2e, pct);
    appendf(json, "  \"paper_chooser_under_2pct\": %s\n",
            pct < 2.0 ? "true" : "false");
    if (pct >= 2.0) {
      std::fprintf(stderr,
                   "error: chooser overhead %.3f%% at paper size (must stay "
                   "under 2%%)\n",
                   pct);
      return 1;
    }
  }
  json += "}\n";

  if (auto_wins < 2) {
    std::fprintf(stderr,
                 "error: auto beat always-LZSS on only %d dataset(s); the "
                 "chooser is not earning its method byte\n",
                 auto_wins);
    return 1;
  }
  bench::write_ledger("BENCH_ratio.json", json);
  return 0;
}
