// Quickstart: compress one scientific field with cuSZ-i, decompress it, and
// verify the error bound — the minimal end-to-end use of the public API.
//
//   ./examples/quickstart [dataset] [rel_eb]
//
// dataset: jhtdb | miranda | nyx | qmcpack | rtm | s3d  (default: miranda)
// rel_eb:  value-range-relative error bound             (default: 1e-3)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "miranda";
  const double rel_eb = argc > 2 ? std::atof(argv[2]) : 1e-3;

  // 1. Get a field. Real applications would load an .f32 file via
  //    szi::io::read_f32; here we synthesize the dataset family.
  auto fields = szi::datagen::make_dataset(dataset, szi::datagen::size_from_env());
  const szi::Field& field = fields.front();
  std::printf("field    : %s  (%s, %.1f MB)\n", field.label().c_str(),
              szi::dev::to_string(field.dims).c_str(),
              static_cast<double>(field.bytes()) / 1e6);

  // 2. Compress with cuSZ-i + the de-redundancy pass (the paper's full
  //    pipeline), under a value-range-relative error bound.
  auto compressor = szi::with_bitcomp(szi::baselines::make_compressor("cusz-i"));
  const auto enc =
      compressor->compress(field, {szi::ErrorMode::Rel, rel_eb});
  std::printf("eb (rel) : %.1e\n", rel_eb);
  std::printf("ratio    : %.1fx  (%zu -> %zu bytes)\n",
              szi::metrics::compression_ratio(field.bytes(), enc.bytes.size()),
              field.bytes(), enc.bytes.size());
  std::printf("comp time: %.3f s (%.2f MB/s)\n", enc.timings.total,
              static_cast<double>(field.bytes()) / 1e6 / enc.timings.total);

  // 3. Decompress and verify.
  double dec_s = 0;
  const auto recon = compressor->decompress(enc.bytes, &dec_s);
  const auto d = szi::metrics::distortion(field.data, recon);
  const double abs_eb = rel_eb * d.range;
  std::printf("dec time : %.3f s\n", dec_s);
  std::printf("PSNR     : %.2f dB   max err: %.3e (bound %.3e)\n", d.psnr,
              d.max_err, abs_eb);
  const bool ok = szi::metrics::error_bounded(field.data, recon, abs_eb);
  std::printf("bounded  : %s\n", ok ? "yes" : "NO — BUG");
  return ok ? 0 : 1;
}
