// In-situ compression of a running simulation — the paper's motivating use
// case 1: GPU-resident simulations (HACC, RTM, ...) produce snapshots
// faster than they can be moved off-device, so each snapshot is compressed
// in place before being shipped to storage.
//
// This example steps a seismic RTM wavefield forward in time and compresses
// every snapshot with cuSZ-i, comparing the accumulated archive size against
// the raw stream and against cuSZ (the prior state of the art).
//
//   ./examples/insitu_compression [n_steps] [rel_eb]
#include <cstdio>
#include <cstdlib>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"

int main(int argc, char** argv) {
  const int n_steps = argc > 1 ? std::atoi(argv[1]) : 6;
  const double rel_eb = argc > 2 ? std::atof(argv[2]) : 1e-3;

  auto cuszi = szi::with_bitcomp(szi::baselines::make_compressor("cusz-i"));
  auto cusz = szi::baselines::make_compressor("cusz");

  std::size_t raw_total = 0, cuszi_total = 0, cusz_total = 0;
  double cuszi_time = 0, worst_psnr = 1e9;

  std::printf("%-8s %12s %12s %12s %10s\n", "step", "raw MB", "cuSZ-i MB",
              "cuSZ MB", "PSNR dB");
  for (int step = 0; step < n_steps; ++step) {
    // One simulation timestep (sampled from the RTM survey like Fig. 6).
    const int t = 600 + step * 400;
    const auto snap = szi::datagen::rtm_snapshot(t, szi::datagen::size_from_env());

    const auto a = cuszi->compress(snap, {szi::ErrorMode::Rel, rel_eb});
    const auto b = cusz->compress(snap, {szi::ErrorMode::Rel, rel_eb});
    const auto recon = cuszi->decompress(a.bytes);
    const auto d = szi::metrics::distortion(snap.data, recon);

    raw_total += snap.bytes();
    cuszi_total += a.bytes.size();
    cusz_total += b.bytes.size();
    cuszi_time += a.timings.total;
    worst_psnr = std::min(worst_psnr, d.psnr);

    std::printf("t=%-6d %12.2f %12.3f %12.3f %10.1f\n", t,
                static_cast<double>(snap.bytes()) / 1e6,
                static_cast<double>(a.bytes.size()) / 1e6,
                static_cast<double>(b.bytes.size()) / 1e6, d.psnr);
  }

  std::printf("\nsurvey of %d snapshots:\n", n_steps);
  std::printf("  raw stream    : %.1f MB\n", static_cast<double>(raw_total) / 1e6);
  std::printf("  cuSZ-i archive: %.1f MB (%.0fx, worst PSNR %.1f dB)\n",
              static_cast<double>(cuszi_total) / 1e6,
              static_cast<double>(raw_total) / static_cast<double>(cuszi_total),
              worst_psnr);
  std::printf("  cuSZ archive  : %.1f MB (%.0fx)\n",
              static_cast<double>(cusz_total) / 1e6,
              static_cast<double>(raw_total) / static_cast<double>(cusz_total));
  std::printf("  cuSZ-i in-situ rate: %.1f MB/s\n",
              static_cast<double>(raw_total) / 1e6 / cuszi_time);
  return 0;
}
