// Archiving a whole simulation snapshot: every field of a dataset is
// compressed with the full cuSZ-i pipeline into a single bundle file — the
// unit the §VII-C.5 distributed database moves around — then reloaded,
// decompressed, and verified (PSNR + SSIM per field).
//
//   ./examples/dataset_archive [dataset] [rel_eb] [out.szib]
#include <cstdio>
#include <string>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "io/bundle.hh"
#include "metrics/ssim.hh"
#include "metrics/stats.hh"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "nyx";
  const double rel_eb = argc > 2 ? std::atof(argv[2]) : 1e-3;
  const std::string out = argc > 3 ? argv[3] : dataset + ".szib";

  const auto fields =
      szi::datagen::make_dataset(dataset, szi::datagen::size_from_env());
  auto c = szi::with_bitcomp(szi::baselines::make_compressor("cusz-i"));

  // Compress every field into one bundle.
  szi::io::Bundle bundle;
  for (const auto& f : fields) {
    auto enc = c->compress(f, {szi::ErrorMode::Rel, rel_eb});
    szi::io::BundleEntry e;
    e.name = f.name;
    e.compressor = "cusz-i";
    e.dims = f.dims;
    e.raw_bytes = f.bytes();
    e.archive = std::move(enc.bytes);
    bundle.add(std::move(e));
  }
  bundle.save(out);
  std::printf("%s snapshot -> %s: %.1f MB raw, %.2f MB archived (%.0fx)\n\n",
              dataset.c_str(), out.c_str(),
              static_cast<double>(bundle.total_raw_bytes()) / 1e6,
              static_cast<double>(bundle.total_archive_bytes()) / 1e6,
              static_cast<double>(bundle.total_raw_bytes()) /
                  static_cast<double>(bundle.total_archive_bytes()));

  // The receiving site: reload, decompress, verify against the originals.
  const auto loaded = szi::io::Bundle::load(out);
  std::printf("%-16s %9s %9s %9s %8s\n", "field", "ratio", "PSNR dB", "SSIM",
              "bounded");
  bool all_ok = true;
  for (const auto& f : fields) {
    const auto* e = loaded.find(f.name);
    if (!e) {
      std::printf("%-16s MISSING\n", f.name.c_str());
      all_ok = false;
      continue;
    }
    const auto recon = c->decompress(e->archive);
    const auto d = szi::metrics::distortion(f.data, recon);
    const double s = szi::metrics::ssim(f.data, recon, f.dims);
    const double eb = rel_eb * d.range;
    const bool ok = szi::metrics::error_bounded(f.data, recon, eb);
    all_ok = all_ok && ok;
    std::printf("%-16s %8.1fx %9.2f %9.5f %8s\n", f.name.c_str(),
                szi::metrics::compression_ratio(f.bytes(), e->archive.size()),
                d.psnr, s, ok ? "yes" : "NO");
  }
  return all_ok ? 0 : 1;
}
