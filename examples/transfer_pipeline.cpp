// Distributed lossy data transmission — the paper's §VII-C.5 case study:
// move a dataset between two supercomputers over a ~1 GB/s Globus link by
// compressing at the source and decompressing at the destination.
//
// For each compressor the example reports compress time, wire time,
// decompress time, total, and the decompressed PSNR, showing where cuSZ-i's
// ratio advantage beats the faster-but-weaker codecs end to end.
//
//   ./examples/transfer_pipeline [dataset] [rel_eb] [bandwidth_GBps]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "metrics/stats.hh"
#include "transfer/globus_model.hh"

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "qmcpack";
  const double rel_eb = argc > 2 ? std::atof(argv[2]) : 1e-3;
  const double bw = (argc > 3 ? std::atof(argv[3]) : 1.0) * 1e9;

  auto fields = szi::datagen::make_dataset(dataset, szi::datagen::size_from_env());
  const szi::Field& f = fields.front();
  std::printf("transferring %s (%.1f MB) at %.1f GB/s, rel eb %.0e\n\n",
              f.label().c_str(), static_cast<double>(f.bytes()) / 1e6, bw / 1e9,
              rel_eb);

  std::printf("%-22s %9s %9s %9s %9s %9s %8s\n", "pipeline", "comp s",
              "wire s", "dec s", "total s", "ratio", "PSNR");

  // Uncompressed reference.
  const auto raw = szi::transfer::raw_transfer_cost(f.bytes(), bw);
  std::printf("%-22s %9.3f %9.3f %9.3f %9.3f %9s %8s\n", "(no compression)",
              raw.compress_seconds, raw.wire_seconds, raw.decompress_seconds,
              raw.total(), "1.0x", "inf");

  // Every compressor, with the de-redundancy pass applied fairly to all.
  for (const auto& name : {"cusz", "cuszp", "cuszx", "fz-gpu", "cusz-i"}) {
    auto c = szi::with_bitcomp(szi::baselines::make_compressor(name));
    const auto enc = c->compress(f, {szi::ErrorMode::Rel, rel_eb});
    double dec_s = 0;
    const auto recon = c->decompress(enc.bytes, &dec_s);
    const auto d = szi::metrics::distortion(f.data, recon);
    const auto cost = szi::transfer::transfer_cost(enc.timings.total,
                                                   enc.bytes.size(), dec_s, bw);
    std::printf("%-22s %9.3f %9.3f %9.3f %9.3f %8.1fx %7.1f\n",
                c->name().c_str(), cost.compress_seconds, cost.wire_seconds,
                cost.decompress_seconds, cost.total(),
                szi::metrics::compression_ratio(f.bytes(), enc.bytes.size()),
                d.psnr);
  }
  return 0;
}
