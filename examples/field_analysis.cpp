// Post-analysis preservation: the reason scientists demand *error-bounded*
// lossy compression (§II). This example compresses a combustion field at a
// range of error bounds and checks how derived quantities — mean, standard
// deviation, flame-front volume fraction, histogram shape — survive, plus
// dumps PGM slices for visual inspection (the Fig. 8 methodology).
//
//   ./examples/field_analysis [out_dir]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.hh"
#include "datagen/datasets.hh"
#include "io/bin_io.hh"
#include "metrics/stats.hh"

namespace {

struct Derived {
  double mean, stddev, burning_fraction;
};

Derived analyze(const std::vector<float>& temp) {
  double sum = 0, sum2 = 0;
  std::size_t burning = 0;
  for (const float v : temp) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
    if (v > 1500.0f) ++burning;  // cells hotter than the ignition threshold
  }
  const double n = static_cast<double>(temp.size());
  const double mean = sum / n;
  return {mean, std::sqrt(std::max(0.0, sum2 / n - mean * mean)),
          static_cast<double>(burning) / n};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  auto fields = szi::datagen::s3d(szi::datagen::size_from_env());
  const szi::Field& temp = fields[2];  // temperature
  const auto truth = analyze(temp.data);
  std::printf("S3D temperature %s: mean=%.2f K  std=%.2f K  burning=%.4f\n\n",
              szi::dev::to_string(temp.dims).c_str(), truth.mean, truth.stddev,
              truth.burning_fraction);

  auto c = szi::with_bitcomp(szi::baselines::make_compressor("cusz-i"));
  std::printf("%-10s %8s %9s %12s %12s %14s\n", "rel eb", "ratio", "PSNR",
              "mean err", "std err", "burning err");
  for (const double rel : {1e-1, 1e-2, 1e-3, 1e-4}) {
    const auto enc = c->compress(temp, {szi::ErrorMode::Rel, rel});
    const auto recon = c->decompress(enc.bytes);
    const auto d = szi::metrics::distortion(temp.data, recon);
    const auto got = analyze(recon);
    std::printf("%-10.0e %7.1fx %8.1f %12.2e %12.2e %14.2e\n", rel,
                szi::metrics::compression_ratio(temp.bytes(), enc.bytes.size()),
                d.psnr, std::abs(got.mean - truth.mean),
                std::abs(got.stddev - truth.stddev),
                std::abs(got.burning_fraction - truth.burning_fraction));

    if (rel == 1e-3) {
      // Visual check: mid-depth slice of original vs reconstruction.
      szi::Field rf = temp;
      rf.data = recon;
      szi::io::write_pgm_slice(out_dir + "/s3d_temp_original.pgm", temp,
                               temp.dims.z / 2);
      szi::io::write_pgm_slice(out_dir + "/s3d_temp_cuszi.pgm", rf,
                               temp.dims.z / 2);
    }
  }
  std::printf("\nslices written to %s/s3d_temp_{original,cuszi}.pgm\n",
              out_dir.c_str());
  return 0;
}
