// Sparse outlier store: (index, original value) pairs gathered with stream
// compaction during compression and scattered back before decompression —
// §VI-A's "gather them as outliers and losslessly store them ... using the
// stream compaction technique". Templated on the value type (f32/f64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "device/arena.hh"
#include "quant/quantizer.hh"

namespace szi::quant {

template <typename T>
struct OutlierSetT {
  std::vector<std::uint64_t> indices;
  std::vector<T> values;

  [[nodiscard]] std::size_t count() const { return indices.size(); }
  [[nodiscard]] std::size_t byte_size() const {
    return indices.size() * (sizeof(std::uint64_t) + sizeof(T));
  }

  void add(std::uint64_t index, T value) {
    indices.push_back(index);
    values.push_back(value);
  }

  /// Writes each stored original into out[index].
  void scatter(std::span<T> out) const;

  /// Order-preserving parallel gather of every marker-coded position.
  /// `originals[i]` supplies the value for position i.
  static OutlierSetT gather(std::span<const Code> codes,
                            std::span<const T> originals);

  /// Flat serialization: count | indices | values.
  [[nodiscard]] std::vector<std::byte> serialize() const;
  /// Bounds-checked parse; throws core::CorruptArchive on truncation or an
  /// overflowing count.
  static OutlierSetT deserialize(std::span<const std::byte> bytes,
                                 std::size_t* consumed);

  /// Throws core::CorruptArchive if any stored index is >= limit. Decoders
  /// must call this before scatter(): indices come from the archive and an
  /// unchecked one would write out of bounds.
  void check_bounds(std::size_t limit, std::string_view stage) const;
};

extern template struct OutlierSetT<float>;
extern template struct OutlierSetT<double>;

/// A gathered outlier set living in workspace memory (valid until the
/// owning Workspace resets). Same content as OutlierSetT, zero ownership.
template <typename T>
struct OutlierViewT {
  std::span<const std::uint64_t> indices;
  std::span<const T> values;

  [[nodiscard]] std::size_t count() const { return indices.size(); }
  [[nodiscard]] std::size_t byte_size() const {
    return indices.size() * (sizeof(std::uint64_t) + sizeof(T));
  }
};

/// Workspace form of OutlierSetT::gather — one counting pass and one emit
/// pass (the vector form pays the counting pass twice), with the per-chunk
/// counts and both output arrays drawn from the pool. Order-preserving and
/// deterministic: chunk bases come from a serial scan in chunk order.
template <typename T>
[[nodiscard]] OutlierViewT<T> gather_outliers(std::span<const Code> codes,
                                              std::span<const T> originals,
                                              dev::Workspace& ws);

extern template OutlierViewT<float> gather_outliers<float>(
    std::span<const Code>, std::span<const float>, dev::Workspace&);
extern template OutlierViewT<double> gather_outliers<double>(
    std::span<const Code>, std::span<const double>, dev::Workspace&);

/// The f32 store used by the float pipelines.
using OutlierSet = OutlierSetT<float>;

}  // namespace szi::quant
