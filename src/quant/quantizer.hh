// Two-sided uniform error quantization — the "error quantization" stage of
// the cuSZ / cuSZ-i pipelines (§III-A, §IV).
//
// A prediction error is mapped to an integer quant-code q = round(err/2eb);
// the reconstruction pred + 2eb*q is within eb of the original. Codes with
// |q| >= radius are "outliers" (§VI-A): the original value is stored
// losslessly on the side and the stored code becomes the reserved marker 0.
// Non-outlier codes are stored biased by +radius, so the code stream is
// unsigned and centered at `radius` — the centralization §VI-A exploits.
//
// All reconstruction arithmetic runs in double and is truncated to the
// value type T (float or double), mirroring the precision behaviour of the
// GPU kernels.
#pragma once

#include <cmath>
#include <cstdint>

namespace szi::quant {

using Code = std::uint16_t;

/// Reserved stored-code announcing "reconstruction comes from the outlier
/// store, not from prediction".
inline constexpr Code kOutlierMarker = 0;

/// Default quantization radius (cuSZ's dictionary size 1024 / 2).
inline constexpr int kDefaultRadius = 512;

class Quantizer {
 public:
  /// `eb` is the absolute error bound for this stage (G-Interp passes a
  /// per-level bound here); `radius` bounds representable codes.
  Quantizer(double eb, int radius = kDefaultRadius)
      : eb_(eb), twice_eb_(2.0 * eb), inv_twice_eb_(1.0 / (2.0 * eb)),
        radius_(radius) {}

  [[nodiscard]] double eb() const { return eb_; }
  [[nodiscard]] int radius() const { return radius_; }

  template <typename T>
  struct Result {
    Code stored;       ///< biased code, or kOutlierMarker
    T recon;           ///< value the decompressor will reproduce
    bool is_outlier;
  };

  /// Quantizes one prediction. On outlier, recon is the exact original (the
  /// decompressor scatters it from the outlier store before prediction).
  template <typename T>
  [[nodiscard]] Result<T> quantize(T original, T predicted) const {
    const double err = static_cast<double>(original) - predicted;
    const auto q = static_cast<long>(std::lround(err * inv_twice_eb_));
    if (q <= -radius_ || q >= radius_)
      return {kOutlierMarker, original, true};
    const auto recon = static_cast<T>(
        static_cast<double>(predicted) + twice_eb_ * static_cast<double>(q));
    // Rounding of the reconstruction to T can nudge the error past eb for
    // huge magnitudes; fall back to outlier in that rare case.
    if (std::abs(static_cast<double>(original) - recon) > eb_)
      return {kOutlierMarker, original, true};
    return {static_cast<Code>(q + radius_), recon, false};
  }

  /// Inverse mapping. `scattered` is the working-buffer value at this
  /// position (holds the exact original when `stored` is the marker).
  template <typename T>
  [[nodiscard]] T dequantize(Code stored, T predicted, T scattered) const {
    if (stored == kOutlierMarker) return scattered;
    const long q = static_cast<long>(stored) - radius_;
    return static_cast<T>(static_cast<double>(predicted) +
                          twice_eb_ * static_cast<double>(q));
  }

 private:
  double eb_;
  double twice_eb_;
  double inv_twice_eb_;
  int radius_;
};

}  // namespace szi::quant
