#include "quant/outlier.hh"

#include <cstring>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/compaction.hh"
#include "device/launch.hh"

namespace szi::quant {

template <typename T>
void OutlierSetT<T>::scatter(std::span<T> out) const {
  dev::launch_linear(
      indices.size(),
      [&](std::size_t i) { out[indices[i]] = values[i]; }, 1 << 12);
}

template <typename T>
OutlierSetT<T> OutlierSetT<T>::gather(std::span<const Code> codes,
                                      std::span<const T> originals) {
  OutlierSetT set;
  // Two-phase: count to size the arrays, then order-preserving scatter.
  const std::size_t total = dev::compact_indices(
      codes.size(), [&](std::size_t i) { return codes[i] == kOutlierMarker; },
      [](std::size_t, std::size_t) {});
  set.indices.resize(total);
  set.values.resize(total);
  dev::compact_indices(
      codes.size(), [&](std::size_t i) { return codes[i] == kOutlierMarker; },
      [&](std::size_t i, std::size_t slot) {
        set.indices[slot] = i;
        set.values[slot] = originals[i];
      });
  return set;
}

template <typename T>
std::vector<std::byte> OutlierSetT<T>::serialize() const {
  const std::uint64_t n = indices.size();
  std::vector<std::byte> out(sizeof(n) + n * (sizeof(std::uint64_t) + sizeof(T)));
  std::byte* p = out.data();
  std::memcpy(p, &n, sizeof(n));
  p += sizeof(n);
  if (n > 0) {
    std::memcpy(p, indices.data(), n * sizeof(std::uint64_t));
    p += n * sizeof(std::uint64_t);
    std::memcpy(p, values.data(), n * sizeof(T));
  }
  return out;
}

template <typename T>
OutlierSetT<T> OutlierSetT<T>::deserialize(std::span<const std::byte> bytes,
                                           std::size_t* consumed) {
  // The count is attacker-controlled: read_array computes n * elem_size with
  // overflow checks, so a huge n is rejected before any resize/memcpy.
  core::ByteReader rd(bytes, "outlier-set");
  const auto n = rd.read<std::uint64_t>();
  if (n > rd.remaining()) rd.fail("count exceeds remaining bytes");
  OutlierSetT set;
  set.indices = rd.read_array<std::uint64_t>(static_cast<std::size_t>(n));
  set.values = rd.read_array<T>(static_cast<std::size_t>(n));
  if (consumed) *consumed = rd.offset();
  return set;
}

template <typename T>
void OutlierSetT<T>::check_bounds(std::size_t limit,
                                  std::string_view stage) const {
  for (std::size_t i = 0; i < indices.size(); ++i)
    if (indices[i] >= limit)
      throw core::CorruptArchive(stage, i,
                                 "outlier index out of range (index " +
                                     std::to_string(indices[i]) + " >= " +
                                     std::to_string(limit) + ")");
}

template struct OutlierSetT<float>;
template struct OutlierSetT<double>;

template <typename T>
OutlierViewT<T> gather_outliers(std::span<const Code> codes,
                                std::span<const T> originals,
                                dev::Workspace& ws) {
  constexpr std::size_t kChunk = 1 << 15;
  const std::size_t n = codes.size();
  const std::size_t nchunks = dev::ceil_div(n, kChunk);

  auto counts = ws.make<std::size_t>(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * kChunk;
        const std::size_t end = std::min(begin + kChunk, n);
        std::size_t cnt = 0;
        for (std::size_t i = begin; i < end; ++i)
          cnt += codes[i] == kOutlierMarker ? 1 : 0;
        counts[c] = cnt;
      },
      1);

  std::size_t total = 0;
  for (auto& c : counts) {
    const std::size_t t = c;
    c = total;
    total += t;
  }

  auto indices = ws.make<std::uint64_t>(total);
  auto values = ws.make<T>(total);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * kChunk;
        const std::size_t end = std::min(begin + kChunk, n);
        std::size_t slot = counts[c];
        for (std::size_t i = begin; i < end; ++i)
          if (codes[i] == kOutlierMarker) {
            indices[slot] = i;
            values[slot] = originals[i];
            ++slot;
          }
      },
      1);
  return {indices, values};
}

template OutlierViewT<float> gather_outliers<float>(std::span<const Code>,
                                                    std::span<const float>,
                                                    dev::Workspace&);
template OutlierViewT<double> gather_outliers<double>(std::span<const Code>,
                                                      std::span<const double>,
                                                      dev::Workspace&);

}  // namespace szi::quant
