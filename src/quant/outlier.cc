#include "quant/outlier.hh"

#include <cstring>
#include <stdexcept>

#include "device/compaction.hh"
#include "device/launch.hh"

namespace szi::quant {

template <typename T>
void OutlierSetT<T>::scatter(std::span<T> out) const {
  dev::launch_linear(
      indices.size(),
      [&](std::size_t i) { out[indices[i]] = values[i]; }, 1 << 12);
}

template <typename T>
OutlierSetT<T> OutlierSetT<T>::gather(std::span<const Code> codes,
                                      std::span<const T> originals) {
  OutlierSetT set;
  // Two-phase: count to size the arrays, then order-preserving scatter.
  const std::size_t total = dev::compact_indices(
      codes.size(), [&](std::size_t i) { return codes[i] == kOutlierMarker; },
      [](std::size_t, std::size_t) {});
  set.indices.resize(total);
  set.values.resize(total);
  dev::compact_indices(
      codes.size(), [&](std::size_t i) { return codes[i] == kOutlierMarker; },
      [&](std::size_t i, std::size_t slot) {
        set.indices[slot] = i;
        set.values[slot] = originals[i];
      });
  return set;
}

template <typename T>
std::vector<std::byte> OutlierSetT<T>::serialize() const {
  const std::uint64_t n = indices.size();
  std::vector<std::byte> out(sizeof(n) + n * (sizeof(std::uint64_t) + sizeof(T)));
  std::byte* p = out.data();
  std::memcpy(p, &n, sizeof(n));
  p += sizeof(n);
  std::memcpy(p, indices.data(), n * sizeof(std::uint64_t));
  p += n * sizeof(std::uint64_t);
  std::memcpy(p, values.data(), n * sizeof(T));
  return out;
}

template <typename T>
OutlierSetT<T> OutlierSetT<T>::deserialize(std::span<const std::byte> bytes,
                                           std::size_t* consumed) {
  if (bytes.size() < sizeof(std::uint64_t))
    throw std::runtime_error("outlier stream truncated");
  std::uint64_t n = 0;
  std::memcpy(&n, bytes.data(), sizeof(n));
  const std::size_t need = sizeof(n) + n * (sizeof(std::uint64_t) + sizeof(T));
  if (bytes.size() < need) throw std::runtime_error("outlier stream truncated");
  OutlierSetT set;
  set.indices.resize(n);
  set.values.resize(n);
  const std::byte* p = bytes.data() + sizeof(n);
  std::memcpy(set.indices.data(), p, n * sizeof(std::uint64_t));
  p += n * sizeof(std::uint64_t);
  std::memcpy(set.values.data(), p, n * sizeof(T));
  if (consumed) *consumed = need;
  return set;
}

template struct OutlierSetT<float>;
template struct OutlierSetT<double>;

}  // namespace szi::quant
