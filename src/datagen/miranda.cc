#include <cmath>
#include <cstddef>
#include <vector>

#include "datagen/datasets.hh"
#include "datagen/synth.hh"
#include "device/launch.hh"

namespace szi::datagen {

namespace {

/// Smooth 2D perturbation surface z0(x, y) for the mixing-layer interface,
/// built from a coarse bilinear lattice.
std::vector<float> interface_surface(Rng& rng, std::size_t nx, std::size_t ny,
                                     std::size_t cells, float amplitude) {
  std::vector<float> lattice((cells + 1) * (cells + 1));
  for (auto& v : lattice) v = static_cast<float>(rng.gaussian());
  std::vector<float> surf(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    const double fy = static_cast<double>(y) / ny * cells;
    const std::size_t y0 = static_cast<std::size_t>(fy);
    const float ty = static_cast<float>(fy - y0);
    for (std::size_t x = 0; x < nx; ++x) {
      const double fx = static_cast<double>(x) / nx * cells;
      const std::size_t x0 = static_cast<std::size_t>(fx);
      const float tx = static_cast<float>(fx - x0);
      auto at = [&](std::size_t i, std::size_t j) {
        return lattice[j * (cells + 1) + i];
      };
      const float a = at(x0, y0) * (1 - tx) + at(x0 + 1, y0) * tx;
      const float b = at(x0, y0 + 1) * (1 - tx) + at(x0 + 1, y0 + 1) * tx;
      surf[y * nx + x] = amplitude * (a * (1 - ty) + b * ty);
    }
  }
  return surf;
}

/// Diffuse-interface hydrodynamics field: lo below the perturbed interface,
/// hi above, blended over `width` cells, plus a gentle large-scale component.
Field hydro_field(const char* name, dev::Dim3 dims, std::uint64_t seed,
                  float lo, float hi, float width, float background_amp) {
  Field f("miranda", name, dims);
  Rng rng(seed);
  const auto surf =
      interface_surface(rng, dims.x, dims.y, 6, 0.08f * static_cast<float>(dims.z));
  const float zc = 0.5f * static_cast<float>(dims.z);
  dev::launch_linear(
      dims.z,
      [&](std::size_t z) {
        for (std::size_t y = 0; y < dims.y; ++y) {
          float* row = f.data.data() + (z * dims.y + y) * dims.x;
          for (std::size_t x = 0; x < dims.x; ++x) {
            const float z0 = zc + surf[y * dims.x + x];
            const float t = std::tanh((static_cast<float>(z) - z0) / width);
            row[x] = 0.5f * (lo + hi) + 0.5f * (hi - lo) * t;
          }
        }
      },
      1);
  if (background_amp > 0) {
    const auto modes = draw_modes(rng, 10, 1.0, 4.0, -1.5);
    Field bg("miranda", "bg", dims);
    add_modes(bg, modes);
    rescale(bg, -background_amp, background_amp);
    dev::launch_linear(
        f.size(), [&](std::size_t i) { f.data[i] += bg.data[i]; }, 1 << 14);
  }
  return f;
}

}  // namespace

std::vector<Field> miranda(Size size) {
  const dev::Dim3 dims = size == Size::Paper ? dev::Dim3{384, 384, 256}
                                             : dev::Dim3{128, 128, 96};
  std::vector<Field> fields;
  // Miranda's hallmark is smoothness: wide diffuse interfaces, low noise.
  fields.push_back(hydro_field("density", dims, 0x4d495231, 1.0f, 3.0f,
                               0.12f * dims.z, 0.05f));
  fields.push_back(hydro_field("pressure", dims, 0x4d495232, 0.8f, 1.2f,
                               0.20f * dims.z, 0.02f));
  fields.push_back(hydro_field("velocityx", dims, 0x4d495233, -0.4f, 0.4f,
                               0.16f * dims.z, 0.08f));
  return fields;
}

}  // namespace szi::datagen
