#include <cmath>
#include <cstddef>

#include "datagen/datasets.hh"
#include "datagen/synth.hh"
#include "device/launch.hh"

namespace szi::datagen {

namespace {

/// Ricker wavelet (second derivative of a Gaussian) — the canonical seismic
/// source signature.
float ricker(float u) {
  const float u2 = u * u;
  return (1.0f - 2.0f * u2) * std::exp(-u2);
}

struct Source {
  float x, y, z;
  float delay;  ///< activation timestep
};

dev::Dim3 rtm_dims(Size size) {
  return size == Size::Paper ? dev::Dim3{235, 449, 449} : dev::Dim3{80, 112, 112};
}

}  // namespace

Field rtm_snapshot(int t, Size size) {
  const dev::Dim3 dims = rtm_dims(size);
  Field f("rtm", "snapshot" + std::to_string(t), dims);

  // Three shots near the top surface, staggered in time; waves expand at a
  // speed that lets the first front cross the volume within the 3700-step
  // simulated survey. Steps before a source's delay contribute nothing —
  // that is the near-empty "initialization phase" Fig. 6 excludes.
  const float diag = std::sqrt(static_cast<float>(
      dims.x * dims.x + dims.y * dims.y + dims.z * dims.z));
  const float c = diag / 3000.0f;  // cells per step
  const Source sources[] = {
      {0.30f * dims.x, 0.30f * dims.y, 0.08f * dims.z, 60.0f},
      {0.70f * dims.x, 0.45f * dims.y, 0.06f * dims.z, 240.0f},
      {0.45f * dims.x, 0.75f * dims.y, 0.10f * dims.z, 480.0f},
  };
  const float front_width = 0.035f * diag;
  const float reflector_z = 0.72f * static_cast<float>(dims.z);

  dev::launch_linear(
      dims.z,
      [&](std::size_t zi) {
        const float z = static_cast<float>(zi);
        for (std::size_t yi = 0; yi < dims.y; ++yi) {
          const float y = static_cast<float>(yi);
          float* row = f.data.data() + (zi * dims.y + yi) * dims.x;
          for (std::size_t xi = 0; xi < dims.x; ++xi) {
            const float x = static_cast<float>(xi);
            float v = 0.0f;
            for (const Source& s : sources) {
              const float age = static_cast<float>(t) - s.delay;
              if (age <= 0) continue;
              const float dx = x - s.x, dy = y - s.y, dz = z - s.z;
              const float r = std::sqrt(dx * dx + dy * dy + dz * dz);
              // Direct wave: geometric spreading ~ 1/r.
              const float direct =
                  ricker((r - c * age) / front_width) / (r + 8.0f);
              // Reflection off the deep interface (image source).
              const float dzr = z - (2.0f * reflector_z - s.z);
              const float rr = std::sqrt(dx * dx + dy * dy + dzr * dzr);
              const float refl =
                  0.45f * ricker((rr - c * age) / front_width) / (rr + 8.0f);
              v += direct + refl;
            }
            row[xi] = v;
          }
        }
      },
      1);
  return f;
}

std::vector<Field> rtm(Size size) {
  std::vector<Field> fields;
  // Two representative survey snapshots (mid and late propagation).
  fields.push_back(rtm_snapshot(1500, size));
  fields.push_back(rtm_snapshot(2600, size));
  return fields;
}

}  // namespace szi::datagen
