#include <cmath>
#include <cstddef>

#include "datagen/datasets.hh"
#include "datagen/synth.hh"
#include "device/launch.hh"

namespace szi::datagen {

namespace {

/// Correlated Gaussian field g with a shallow power-law spectrum — the seed
/// of the log-normal density transform.
Field gaussian_overdensity(dev::Dim3 dims, std::uint64_t seed) {
  Field g("nyx", "g", dims);
  Rng rng(seed);
  const auto modes =
      draw_modes(rng, 40, 1.0, static_cast<double>(dims.x) / 8.0, -1.0);
  add_modes(g, modes);
  add_lattice_noise(g, rng, dims.x / 10, 0.12f);
  rescale(g, -1.6f, 2.4f);  // skewed: rare strong overdensities (halos)
  return g;
}

}  // namespace

std::vector<Field> nyx(Size size) {
  const dev::Dim3 dims =
      size == Size::Paper ? dev::Dim3{512, 512, 512} : dev::Dim3{96, 96, 96};
  std::vector<Field> fields;

  const Field g = gaussian_overdensity(dims, 0x4e595830);

  // Baryon density: log-normal, several orders of magnitude of dynamic range
  // (this is what makes Nyx stress quantizers).
  Field density("nyx", "baryon_density", dims);
  dev::launch_linear(
      density.size(),
      [&](std::size_t i) {
        density.data[i] = 2.0e10f * std::exp(2.2f * g.data[i]);
      },
      1 << 14);
  fields.push_back(std::move(density));

  // Temperature: adiabatic relation T ~ rho^(2/3) with its own fluctuations.
  Field temp("nyx", "temperature", dims);
  {
    Rng rng(0x4e595831);
    Field fluct("nyx", "tf", dims);
    add_lattice_noise(fluct, rng, dims.x / 8, 0.1f);
    dev::launch_linear(
        temp.size(),
        [&](std::size_t i) {
          temp.data[i] = 1.0e4f *
                         std::exp((2.0f / 3.0f) * 2.2f * g.data[i]) *
                         (1.0f + fluct.data[i]);
        },
        1 << 14);
  }
  fields.push_back(std::move(temp));

  // Peculiar velocity: smooth, large-scale, zero-mean.
  Field vel("nyx", "velocity_x", dims);
  {
    Rng rng(0x4e595832);
    const auto modes = draw_modes(rng, 24, 1.0, 5.0, -1.5);
    add_modes(vel, modes);
    rescale(vel, -2.5e7f, 2.5e7f);
  }
  fields.push_back(std::move(vel));

  return fields;
}

}  // namespace szi::datagen
