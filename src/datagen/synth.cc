#include "datagen/synth.hh"

#include <algorithm>
#include <cmath>

#include "device/launch.hh"
#include "device/reduce.hh"

namespace szi::datagen {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

std::vector<Mode> draw_modes(Rng& rng, std::size_t count, double kmin,
                             double kmax, double spectral_slope) {
  std::vector<Mode> modes;
  modes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Isotropic direction, log-uniform magnitude in [kmin, kmax].
    const double k =
        kmin * std::pow(kmax / kmin, rng.uniform());
    const double cos_t = rng.uniform(-1.0, 1.0);
    const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
    const double phi = rng.uniform(0.0, kTwoPi);
    Mode m;
    m.kx = static_cast<float>(k * sin_t * std::cos(phi));
    m.ky = static_cast<float>(k * sin_t * std::sin(phi));
    m.kz = static_cast<float>(k * cos_t);
    m.amp = static_cast<float>(std::pow(k, spectral_slope));
    m.phase = static_cast<float>(rng.uniform(0.0, kTwoPi));
    modes.push_back(m);
  }
  return modes;
}

void add_modes(Field& out, const std::vector<Mode>& modes) {
  const auto dims = out.dims;
  const double sx = kTwoPi / static_cast<double>(dims.x);
  const double sy = kTwoPi / static_cast<double>(dims.y);
  const double sz = kTwoPi / static_cast<double>(dims.z);
  dev::launch_linear(
      dims.z,
      [&](std::size_t z) {
        for (std::size_t y = 0; y < dims.y; ++y) {
          float* row = out.data.data() + (z * dims.y + y) * dims.x;
          for (const Mode& m : modes) {
            // Incremental phase along x: one sin per point per mode.
            float p = static_cast<float>(m.kz * (z * sz) + m.ky * (y * sy)) +
                      m.phase;
            const float dp = static_cast<float>(m.kx * sx);
            for (std::size_t x = 0; x < dims.x; ++x)
              row[x] += m.amp * std::sin(p + dp * static_cast<float>(x));
          }
        }
      },
      1);
}

void add_lattice_noise(Field& out, Rng& rng, std::size_t cells,
                       float amplitude) {
  cells = std::max<std::size_t>(2, cells);
  const std::size_t lx = cells + 1, ly = cells + 1, lz = cells + 1;
  std::vector<float> lattice(lx * ly * lz);
  for (auto& v : lattice) v = static_cast<float>(rng.gaussian());

  const auto dims = out.dims;
  dev::launch_linear(
      dims.z,
      [&](std::size_t z) {
        const double fz = static_cast<double>(z) / dims.z * cells;
        const std::size_t z0 = static_cast<std::size_t>(fz);
        const float tz = static_cast<float>(fz - z0);
        for (std::size_t y = 0; y < dims.y; ++y) {
          const double fy = static_cast<double>(y) / dims.y * cells;
          const std::size_t y0 = static_cast<std::size_t>(fy);
          const float ty = static_cast<float>(fy - y0);
          float* row = out.data.data() + (z * dims.y + y) * dims.x;
          for (std::size_t x = 0; x < dims.x; ++x) {
            const double fx = static_cast<double>(x) / dims.x * cells;
            const std::size_t x0 = static_cast<std::size_t>(fx);
            const float tx = static_cast<float>(fx - x0);
            auto at = [&](std::size_t i, std::size_t j, std::size_t k) {
              return lattice[(k * ly + j) * lx + i];
            };
            const float c00 = at(x0, y0, z0) * (1 - tx) + at(x0 + 1, y0, z0) * tx;
            const float c10 =
                at(x0, y0 + 1, z0) * (1 - tx) + at(x0 + 1, y0 + 1, z0) * tx;
            const float c01 =
                at(x0, y0, z0 + 1) * (1 - tx) + at(x0 + 1, y0, z0 + 1) * tx;
            const float c11 = at(x0, y0 + 1, z0 + 1) * (1 - tx) +
                              at(x0 + 1, y0 + 1, z0 + 1) * tx;
            const float c0 = c00 * (1 - ty) + c10 * ty;
            const float c1 = c01 * (1 - ty) + c11 * ty;
            row[x] += amplitude * (c0 * (1 - tz) + c1 * tz);
          }
        }
      },
      1);
}

void rescale(Field& f, float lo, float hi) {
  const auto mm = dev::minmax<float>(f.data);
  const float span = mm.max - mm.min;
  const float scale = span > 0 ? (hi - lo) / span : 0.0f;
  dev::launch_linear(
      f.size(), [&](std::size_t i) { f.data[i] = lo + (f.data[i] - mm.min) * scale; },
      1 << 14);
}

}  // namespace szi::datagen
