// Deterministic, seedable RNG used by all synthetic dataset generators so
// every bench/test run sees bit-identical inputs (a requirement for
// reproducible compression-ratio tables).
#pragma once

#include <cmath>
#include <cstdint>

namespace szi::datagen {

/// SplitMix64: seeds the main generator and hashes coordinates.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality; good enough for synthetic fields.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar (no cached second value for
  /// simplicity; generators are not RNG-bound).
  double gaussian() {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace szi::datagen
