// Synthetic stand-ins for the paper's six evaluation datasets (TABLE II).
//
// SDRBench data is not available offline; each generator reproduces the
// signal *character* that drives compressor behaviour on the real dataset —
// smoothness, spectral content, dynamic range, and feature sharpness — with
// fully deterministic output. DESIGN.md §1 documents the substitution.
#pragma once

#include <string>
#include <vector>

#include "core/field.hh"

namespace szi::datagen {

/// Grid-size preset. `Small` targets a single-core CI box; `Paper` uses the
/// dimensions of TABLE II (QMCPack capped at 8 orbitals for memory reasons).
enum class Size { Small, Paper };

/// Reads SZI_LARGE=1 from the environment; benches use this to pick a preset.
[[nodiscard]] Size size_from_env();

/// JHTDB: forced isotropic turbulence — Kolmogorov-spectrum velocity and
/// pressure (k^-5/3 and k^-7/3 power laws), broadband and noisy.
[[nodiscard]] std::vector<Field> jhtdb(Size size);

/// Miranda: radiation hydrodynamics — very smooth fields with diffuse
/// material interfaces (the dataset interpolation likes most).
[[nodiscard]] std::vector<Field> miranda(Size size);

/// Nyx: cosmological hydrodynamics — log-normal baryon density with extreme
/// dynamic range, power-law correlated large-scale structure.
[[nodiscard]] std::vector<Field> nyx(Size size);

/// QMCPack: einspline orbital coefficients — stacked oscillatory 3D orbitals
/// (one per 115-plane slab), dims (n_orbitals*115) x 69 x 69.
[[nodiscard]] std::vector<Field> qmcpack(Size size);

/// RTM: reverse-time-migration wavefield snapshots — expanding band-limited
/// wavefronts; see rtm_snapshot() for the time series of Fig. 6.
[[nodiscard]] std::vector<Field> rtm(Size size);

/// One RTM snapshot at simulation step `t` in [0, 3700). Early steps are the
/// near-empty initialization phase the paper's Fig. 6 excludes.
[[nodiscard]] Field rtm_snapshot(int t, Size size);

/// S3D: compressible combustion — species mass fractions with a wrinkled
/// flame front, smooth on either side, sharp across it.
[[nodiscard]] std::vector<Field> s3d(Size size);

/// All six dataset names in the paper's order.
[[nodiscard]] const std::vector<std::string>& dataset_names();

/// Dispatch by name ("jhtdb", "miranda", "nyx", "qmcpack", "rtm", "s3d").
[[nodiscard]] std::vector<Field> make_dataset(const std::string& name,
                                              Size size);

}  // namespace szi::datagen
