#include <cmath>
#include <cstddef>
#include <vector>

#include "datagen/datasets.hh"
#include "datagen/synth.hh"
#include "device/launch.hh"

namespace szi::datagen {

namespace {

/// Reaction progress variable c in [0,1]: 0 in unburnt gas, 1 in products,
/// transitioning across a turbulence-wrinkled flame front.
Field progress_variable(dev::Dim3 dims, std::uint64_t seed, float width) {
  Field c("s3d", "progress", dims);
  Rng rng(seed);
  // Wrinkling: a smooth displacement field for the front position.
  Field wrinkle("s3d", "wrinkle", dims);
  const auto modes = draw_modes(rng, 16, 1.0, 6.0, -1.0);
  add_modes(wrinkle, modes);
  rescale(wrinkle, -0.10f * dims.z, 0.10f * dims.z);

  const float zc = 0.5f * static_cast<float>(dims.z);
  dev::launch_linear(
      dims.z,
      [&](std::size_t z) {
        for (std::size_t y = 0; y < dims.y; ++y) {
          const float* wr = wrinkle.data.data() + (z * dims.y + y) * dims.x;
          float* row = c.data.data() + (z * dims.y + y) * dims.x;
          for (std::size_t x = 0; x < dims.x; ++x) {
            const float front = zc + wr[x];
            row[x] = 0.5f *
                     (1.0f + std::tanh((static_cast<float>(z) - front) / width));
          }
        }
      },
      1);
  return c;
}

}  // namespace

std::vector<Field> s3d(Size size) {
  const dev::Dim3 dims =
      size == Size::Paper ? dev::Dim3{500, 500, 500} : dev::Dim3{96, 96, 96};
  const float width = 0.045f * static_cast<float>(dims.z);
  const Field c = progress_variable(dims, 0x53334430, width);

  std::vector<Field> fields;

  // CO: an intermediate species — peaks inside the flame front and vanishes
  // on both sides; mostly-zero fields like this are the paper's best case
  // for the de-redundancy pass (S3D tops Table III at 476%).
  Field co("s3d", "CO", dims);
  dev::launch_linear(
      co.size(),
      [&](std::size_t i) {
        const float ci = c.data[i];
        co.data[i] = 0.08f * 4.0f * ci * (1.0f - ci);
      },
      1 << 14);
  fields.push_back(std::move(co));

  // CH4: fuel — consumed across the front.
  Field ch4("s3d", "CH4", dims);
  {
    Rng rng(0x53334431);
    Field fluct("s3d", "fl", dims);
    add_lattice_noise(fluct, rng, dims.x / 6, 0.01f);
    dev::launch_linear(
        ch4.size(),
        [&](std::size_t i) {
          ch4.data[i] =
              std::max(0.0f, 0.055f * (1.0f - c.data[i]) + fluct.data[i] *
                                                               (1.0f - c.data[i]));
        },
        1 << 14);
  }
  fields.push_back(std::move(ch4));

  // Temperature: unburnt 800 K → burnt 2200 K with mild turbulence.
  Field temp("s3d", "temperature", dims);
  {
    Rng rng(0x53334432);
    Field fluct("s3d", "tf", dims);
    add_lattice_noise(fluct, rng, dims.x / 8, 20.0f);
    dev::launch_linear(
        temp.size(),
        [&](std::size_t i) {
          temp.data[i] = 800.0f + 1400.0f * c.data[i] + fluct.data[i];
        },
        1 << 14);
  }
  fields.push_back(std::move(temp));

  return fields;
}

}  // namespace szi::datagen
