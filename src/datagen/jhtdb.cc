#include <cstddef>

#include "datagen/datasets.hh"
#include "datagen/synth.hh"

namespace szi::datagen {

namespace {
Field turbulence_field(const char* name, dev::Dim3 dims, std::uint64_t seed,
                       double slope, float noise_amp) {
  Field f("jhtdb", name, dims);
  Rng rng(seed);
  // Inertial range: wavelengths from the box scale down to ~10 cells. A DNS
  // resolves its smallest eddies over several cells, so the spectrum is cut
  // well above the grid scale — never white noise at 1-2 cells.
  const auto modes = draw_modes(rng, 48, 1.5, static_cast<double>(dims.x) / 24.0,
                                slope);
  add_modes(f, modes);
  // Dissipation-range tail: steeper decay toward the cutoff.
  const auto tail =
      draw_modes(rng, 16, static_cast<double>(dims.x) / 24.0,
                 static_cast<double>(dims.x) / 16.0, slope - 2.0);
  add_modes(f, tail);
  add_lattice_noise(f, rng, dims.x / 8, noise_amp * 0.05f);
  return f;
}
}  // namespace

std::vector<Field> jhtdb(Size size) {
  const dev::Dim3 dims =
      size == Size::Paper ? dev::Dim3{512, 512, 512} : dev::Dim3{96, 96, 96};
  std::vector<Field> fields;
  // Velocity components: amplitude ~ k^-5/6 gives a k^-5/3 energy spectrum.
  fields.push_back(turbulence_field("velocityx", dims, 0x4a485430, -5.0 / 6.0, 0.06f));
  fields.push_back(turbulence_field("velocityy", dims, 0x4a485431, -5.0 / 6.0, 0.06f));
  // Pressure: steeper k^-7/3 spectrum, slightly smoother.
  fields.push_back(turbulence_field("pressure", dims, 0x4a485432, -7.0 / 6.0, 0.03f));
  return fields;
}

}  // namespace szi::datagen
