#include <cmath>
#include <cstddef>

#include "datagen/datasets.hh"
#include "datagen/synth.hh"
#include "device/launch.hh"

namespace szi::datagen {

namespace {
constexpr std::size_t kPlanesPerOrbital = 115;
constexpr std::size_t kNy = 69, kNx = 69;
}  // namespace

// The real file stacks 288 orbitals of 115x69x69 einspline coefficients along
// z. Each orbital is a band-limited oscillatory wavefunction under a smooth
// envelope; adjacent orbitals differ (higher quantum numbers → higher spatial
// frequency), so the stacked z-direction is only piecewise smooth — the trait
// that distinguishes QMCPack from the fluid datasets.
std::vector<Field> qmcpack(Size size) {
  const std::size_t n_orbitals = size == Size::Paper ? 8 : 4;
  const dev::Dim3 dims{kNx, kNy, n_orbitals * kPlanesPerOrbital};
  Field f("qmcpack", "einspline", dims);

  dev::launch_linear(
      n_orbitals,
      [&](std::size_t orb) {
        Rng rng(0x514d4330 + orb);
        // Quantum numbers grow with the orbital index.
        const double k1 = 1.0 + 0.7 * orb + rng.uniform(0.0, 0.4);
        const double k2 = 1.0 + 0.5 * orb + rng.uniform(0.0, 0.4);
        const double k3 = 0.8 + 0.6 * orb + rng.uniform(0.0, 0.4);
        const double p1 = rng.uniform(0.0, 6.28), p2 = rng.uniform(0.0, 6.28);
        const double p3 = rng.uniform(0.0, 6.28);
        const double amp = 1.0 / (1.0 + 0.2 * orb);
        for (std::size_t zz = 0; zz < kPlanesPerOrbital; ++zz) {
          const std::size_t z = orb * kPlanesPerOrbital + zz;
          const double uz = (static_cast<double>(zz) / kPlanesPerOrbital - 0.5);
          for (std::size_t y = 0; y < kNy; ++y) {
            const double uy = (static_cast<double>(y) / kNy - 0.5);
            float* row = f.data.data() + (z * dims.y + y) * dims.x;
            for (std::size_t x = 0; x < kNx; ++x) {
              const double ux = (static_cast<double>(x) / kNx - 0.5);
              const double envelope =
                  std::exp(-3.5 * (ux * ux + uy * uy + uz * uz));
              const double wave = std::sin(6.28318 * k1 * ux + p1) *
                                  std::sin(6.28318 * k2 * uy + p2) *
                                  std::sin(6.28318 * k3 * uz + p3);
              row[x] = static_cast<float>(amp * envelope * wave);
            }
          }
        }
      },
      1);

  std::vector<Field> fields;
  fields.push_back(std::move(f));
  return fields;
}

}  // namespace szi::datagen
