// Shared building blocks for the synthetic dataset generators: random-phase
// Fourier superpositions with a prescribed power spectrum (turbulence-like
// fields) and trilinearly interpolated coarse random lattices (cheap smooth
// noise for backgrounds and interface perturbations).
#pragma once

#include <cstddef>
#include <vector>

#include "core/field.hh"
#include "datagen/rng.hh"

namespace szi::datagen {

/// One Fourier mode: value += amp * sin(kx*x + ky*y + kz*z + phase), with
/// x,y,z in grid units scaled to [0, 2*pi).
struct Mode {
  float kx, ky, kz;
  float amp;
  float phase;
};

/// Draws `count` isotropic modes with wavenumber magnitudes in
/// [kmin, kmax] and amplitude ~ |k|^spectral_slope (e.g. -5/6 per velocity
/// component gives a Kolmogorov-like k^-5/3 energy spectrum).
[[nodiscard]] std::vector<Mode> draw_modes(Rng& rng, std::size_t count,
                                           double kmin, double kmax,
                                           double spectral_slope);

/// Evaluates the sum of `modes` over the whole grid into `out` (+= semantics).
/// Parallel over z-planes.
void add_modes(Field& out, const std::vector<Mode>& modes);

/// A coarse random lattice of `cells`^3 Gaussian values, trilinearly
/// interpolated to the fine grid and scaled by `amplitude` (+= semantics).
void add_lattice_noise(Field& out, Rng& rng, std::size_t cells,
                       float amplitude);

/// Affine-rescales the field to [lo, hi].
void rescale(Field& f, float lo, float hi);

}  // namespace szi::datagen
