#include <cstdlib>
#include <stdexcept>

#include "datagen/datasets.hh"

namespace szi::datagen {

Size size_from_env() {
  const char* v = std::getenv("SZI_LARGE");
  return (v && v[0] == '1') ? Size::Paper : Size::Small;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {"jhtdb", "miranda",  "nyx",
                                                 "qmcpack", "rtm", "s3d"};
  return names;
}

std::vector<Field> make_dataset(const std::string& name, Size size) {
  if (name == "jhtdb") return jhtdb(size);
  if (name == "miranda") return miranda(size);
  if (name == "nyx") return nyx(size);
  if (name == "qmcpack") return qmcpack(size);
  if (name == "rtm") return rtm(size);
  if (name == "s3d") return s3d(size);
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace szi::datagen
