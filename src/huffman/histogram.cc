#include "huffman/histogram.hh"

#include <algorithm>
#include <array>

#include "device/launch.hh"

namespace szi::huffman {

namespace {
constexpr std::size_t kChunk = 1 << 16;

/// Merge the flat per-chunk partials serially, in chunk order, so the result
/// never depends on worker scheduling.
std::vector<std::uint32_t> merge(std::span<const std::uint32_t> parts,
                                 std::size_t nchunks, std::size_t nbins) {
  std::vector<std::uint32_t> total(nbins, 0);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::uint32_t* p = parts.data() + c * nbins;
    for (std::size_t b = 0; b < nbins; ++b) total[b] += p[b];
  }
  return total;
}
}  // namespace

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins, dev::Workspace& ws) {
  const std::size_t nchunks = dev::ceil_div(codes.size(), kChunk);
  auto parts = ws.make<std::uint32_t>(nchunks * nbins);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        std::uint32_t* h = parts.data() + c * nbins;
        std::fill_n(h, nbins, 0u);
        const std::size_t begin = c * kChunk;
        const std::size_t end = std::min(begin + kChunk, codes.size());
        for (std::size_t i = begin; i < end; ++i) ++h[codes[i]];
      },
      1);
  return merge(parts, nchunks, nbins);
}

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins) {
  dev::Arena local;
  dev::Workspace ws(local);
  return histogram(codes, nbins, ws);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k, dev::Workspace& ws) {
  // Register-file budget: at most 2k+1 hot counters per thread (§VI-A notes
  // large k raises register pressure; callers can fall back to k = 1).
  constexpr std::size_t kMaxHot = 33;
  if (2 * k + 1 > kMaxHot) k = (kMaxHot - 1) / 2;
  const std::size_t lo = center >= k ? center - k : 0;
  const std::size_t hi = std::min(center + k, nbins - 1);
  const std::size_t hot_n = hi - lo + 1;

  const std::size_t nchunks = dev::ceil_div(codes.size(), kChunk);
  auto parts = ws.make<std::uint32_t>(nchunks * nbins);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        std::uint32_t* h = parts.data() + c * nbins;
        std::fill_n(h, nbins, 0u);
        std::array<std::uint32_t, kMaxHot> hot{};
        const std::size_t begin = c * kChunk;
        const std::size_t end = std::min(begin + kChunk, codes.size());
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t b = codes[i];
          if (b >= lo && b <= hi)
            ++hot[b - lo];
          else
            ++h[b];
        }
        for (std::size_t j = 0; j < hot_n; ++j) h[lo + j] += hot[j];
      },
      1);
  return merge(parts, nchunks, nbins);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k) {
  dev::Arena local;
  dev::Workspace ws(local);
  return histogram_topk(codes, nbins, center, k, ws);
}

}  // namespace szi::huffman
