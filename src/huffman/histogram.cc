#include "huffman/histogram.hh"

#include <array>

#include "device/launch.hh"

namespace szi::huffman {

namespace {
constexpr std::size_t kChunk = 1 << 16;

/// Merge per-chunk private histograms serially (nbins is small).
std::vector<std::uint32_t> merge(std::vector<std::vector<std::uint32_t>>& parts,
                                 std::size_t nbins) {
  std::vector<std::uint32_t> total(nbins, 0);
  for (const auto& p : parts)
    for (std::size_t b = 0; b < nbins; ++b) total[b] += p[b];
  return total;
}
}  // namespace

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins) {
  const std::size_t nchunks = dev::ceil_div(codes.size(), kChunk);
  std::vector<std::vector<std::uint32_t>> parts(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        auto& h = parts[c];
        h.assign(nbins, 0);
        const std::size_t begin = c * kChunk;
        const std::size_t end = std::min(begin + kChunk, codes.size());
        for (std::size_t i = begin; i < end; ++i) ++h[codes[i]];
      },
      1);
  return merge(parts, nbins);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k) {
  // Register-file budget: at most 2k+1 hot counters per thread (§VI-A notes
  // large k raises register pressure; callers can fall back to k = 1).
  constexpr std::size_t kMaxHot = 33;
  if (2 * k + 1 > kMaxHot) k = (kMaxHot - 1) / 2;
  const std::size_t lo = center >= k ? center - k : 0;
  const std::size_t hi = std::min(center + k, nbins - 1);
  const std::size_t hot_n = hi - lo + 1;

  const std::size_t nchunks = dev::ceil_div(codes.size(), kChunk);
  std::vector<std::vector<std::uint32_t>> parts(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        auto& h = parts[c];
        h.assign(nbins, 0);
        std::array<std::uint32_t, kMaxHot> hot{};
        const std::size_t begin = c * kChunk;
        const std::size_t end = std::min(begin + kChunk, codes.size());
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t b = codes[i];
          if (b >= lo && b <= hi)
            ++hot[b - lo];
          else
            ++h[b];
        }
        for (std::size_t j = 0; j < hot_n; ++j) h[lo + j] += hot[j];
      },
      1);
  return merge(parts, nbins);
}

}  // namespace szi::huffman
