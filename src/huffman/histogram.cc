#include "huffman/histogram.hh"

#include <algorithm>
#include <array>

#include "device/launch.hh"

namespace szi::huffman {

namespace {
/// Alias for the shared bank count (layout documented in histogram.hh).
constexpr std::size_t kInterleave = kHistogramBanks;

/// Fixed worker -> element-range partition: contiguous ranges of
/// ceil(n / nworkers) elements. The totals are order-independent (uint32
/// addition commutes), and the serial worker-order merge keeps the result
/// bit-identical for every worker count anyway.
std::size_t partition(std::size_t n, std::size_t& per) {
  const std::size_t nw = histogram_workers(n);
  per = dev::ceil_div(n, nw);
  return nw;
}
}  // namespace

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins, dev::Workspace& ws) {
  std::size_t per = 0;
  const std::size_t nworkers = partition(codes.size(), per);
  auto parts = ws.make<std::uint32_t>(nworkers * kInterleave * nbins);
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h = parts.data() + w * kInterleave * nbins;
        std::fill_n(h, kInterleave * nbins, 0u);
        const std::size_t begin = w * per;
        const std::size_t end = std::min(begin + per, codes.size());
        accumulate_banked(codes.data() + begin, end - begin, h, nbins);
      },
      1);
  return merge_histograms(parts, nworkers * kInterleave, nbins);
}

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins) {
  dev::Arena local;
  dev::Workspace ws(local);
  return histogram(codes, nbins, ws);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k, dev::Workspace& ws) {
  // Register-file budget: at most 2k+1 hot counters per thread (§VI-A notes
  // large k raises register pressure; callers can fall back to k = 1).
  constexpr std::size_t kMaxHot = 33;
  if (2 * k + 1 > kMaxHot) k = (kMaxHot - 1) / 2;
  const std::size_t lo = center >= k ? center - k : 0;
  const std::size_t hi = std::min(center + k, nbins - 1);
  const std::size_t hot_n = hi - lo + 1;

  std::size_t per = 0;
  const std::size_t nworkers = partition(codes.size(), per);
  auto parts = ws.make<std::uint32_t>(nworkers * nbins);
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h = parts.data() + w * nbins;
        std::fill_n(h, nbins, 0u);
        // The hot band gets the same interleaving treatment as the generic
        // kernel: nearly every element lands here, so the counter banks are
        // what actually overlap the increments.
        std::array<std::array<std::uint32_t, kMaxHot>, kInterleave> hot{};
        const std::size_t begin = w * per;
        const std::size_t end = std::min(begin + per, codes.size());
        auto bump = [&](std::size_t sub, std::size_t b) {
          if (b - lo < hot_n)  // unsigned wrap => b < lo also fails this
            ++hot[sub][b - lo];
          else
            ++h[b];
        };
        std::size_t i = begin;
        for (; i + 4 <= end; i += 4) {
          bump(0, codes[i]);
          bump(1, codes[i + 1]);
          bump(2, codes[i + 2]);
          bump(3, codes[i + 3]);
        }
        for (; i < end; ++i) bump(0, codes[i]);
        for (std::size_t s = 0; s < kInterleave; ++s)
          for (std::size_t j = 0; j < hot_n; ++j) h[lo + j] += hot[s][j];
      },
      1);
  return merge_histograms(parts, nworkers, nbins);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k) {
  dev::Arena local;
  dev::Workspace ws(local);
  return histogram_topk(codes, nbins, center, k, ws);
}

}  // namespace szi::huffman
