#include "huffman/histogram.hh"

#include <algorithm>
#include <array>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "device/launch.hh"
#include "device/simd.hh"

namespace szi::huffman {

namespace {

#if defined(__x86_64__)
/// total[0..nbins) += part[0..nbins), 8 counters per step. Exact integer
/// adds — bit-identical to the scalar fold by construction.
[[gnu::target("avx2")]] void add_part_avx2(std::uint32_t* total,
                                           const std::uint32_t* part,
                                           std::size_t nbins) {
  std::size_t b = 0;
  for (; b + 8 <= nbins; b += 8) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(total + b));
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(part + b));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(total + b),
                        _mm256_add_epi32(t, p));
  }
  for (; b < nbins; ++b) total[b] += part[b];
}
#endif
/// Alias for the shared bank count (layout documented in histogram.hh).
constexpr std::size_t kInterleave = kHistogramBanks;

/// Fixed worker -> element-range partition: contiguous ranges of
/// ceil(n / nworkers) elements. The totals are order-independent (uint32
/// addition commutes), and the serial worker-order merge keeps the result
/// bit-identical for every worker count anyway.
std::size_t partition(std::size_t n, std::size_t& per) {
  const std::size_t nw = histogram_workers(n);
  per = dev::ceil_div(n, nw);
  return nw;
}
}  // namespace

std::vector<std::uint32_t> merge_histograms(
    std::span<const std::uint32_t> parts, std::size_t nparts,
    std::size_t nbins) {
  std::vector<std::uint32_t> total(nbins, 0);
#if defined(__x86_64__)
  if (dev::has_avx2()) {
    for (std::size_t c = 0; c < nparts; ++c)
      add_part_avx2(total.data(), parts.data() + c * nbins, nbins);
    return total;
  }
#endif
  for (std::size_t c = 0; c < nparts; ++c) {
    const std::uint32_t* p = parts.data() + c * nbins;
    for (std::size_t b = 0; b < nbins; ++b) total[b] += p[b];
  }
  return total;
}

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins, dev::Workspace& ws) {
  std::size_t per = 0;
  const std::size_t nworkers = partition(codes.size(), per);
  auto parts = ws.make<std::uint32_t>(nworkers * kInterleave * nbins);
  // Private-slot audit: `w` is the launch's loop index, NOT a thread id.
  // parts holds exactly `nworkers` slots and every w in [0, nworkers) runs
  // exactly once, so the indexing stays valid even when the launch degrades
  // to inline execution on a nested parallel_for (g_in_launch) — the caller
  // then walks all w values sequentially, each with its own slot, and the
  // serial worker-order merge gives the same totals.
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h = parts.data() + w * kInterleave * nbins;
        std::fill_n(h, kInterleave * nbins, 0u);
        const std::size_t begin = w * per;
        const std::size_t end = std::min(begin + per, codes.size());
        accumulate_banked(codes.data() + begin, end - begin, h, nbins);
      },
      1);
  return merge_histograms(parts, nworkers * kInterleave, nbins);
}

std::vector<std::uint32_t> histogram(std::span<const quant::Code> codes,
                                     std::size_t nbins) {
  dev::Arena local;
  dev::Workspace ws(local);
  return histogram(codes, nbins, ws);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k, dev::Workspace& ws) {
  // Register-file budget: at most 2k+1 hot counters per thread (§VI-A notes
  // large k raises register pressure; callers can fall back to k = 1).
  constexpr std::size_t kMaxHot = 33;
  if (2 * k + 1 > kMaxHot) k = (kMaxHot - 1) / 2;
  const std::size_t lo = center >= k ? center - k : 0;
  const std::size_t hi = std::min(center + k, nbins - 1);
  const std::size_t hot_n = hi - lo + 1;

  std::size_t per = 0;
  const std::size_t nworkers = partition(codes.size(), per);
  auto parts = ws.make<std::uint32_t>(nworkers * nbins);
  dev::launch_linear(
      nworkers,
      [&](std::size_t w) {
        std::uint32_t* h = parts.data() + w * nbins;
        std::fill_n(h, nbins, 0u);
        // The hot band gets the same interleaving treatment as the generic
        // kernel: nearly every element lands here, so the counter banks are
        // what actually overlap the increments.
        std::array<std::array<std::uint32_t, kMaxHot>, kInterleave> hot{};
        const std::size_t begin = w * per;
        const std::size_t end = std::min(begin + per, codes.size());
        auto bump = [&](std::size_t sub, std::size_t b) {
          if (b - lo < hot_n)  // unsigned wrap => b < lo also fails this
            ++hot[sub][b - lo];
          else
            ++h[b];
        };
        std::size_t i = begin;
        for (; i + 4 <= end; i += 4) {
          bump(0, codes[i]);
          bump(1, codes[i + 1]);
          bump(2, codes[i + 2]);
          bump(3, codes[i + 3]);
        }
        for (; i < end; ++i) bump(0, codes[i]);
        for (std::size_t s = 0; s < kInterleave; ++s)
          for (std::size_t j = 0; j < hot_n; ++j) h[lo + j] += hot[s][j];
      },
      1);
  return merge_histograms(parts, nworkers, nbins);
}

std::vector<std::uint32_t> histogram_topk(std::span<const quant::Code> codes,
                                          std::size_t nbins, std::size_t center,
                                          std::size_t k) {
  dev::Arena local;
  dev::Workspace ws(local);
  return histogram_topk(codes, nbins, center, k, ws);
}

double byte_entropy(std::span<const std::byte> data) {
  if (data.empty()) return 0.0;
  // Banked byte histogram on the stack — samples are small (the chooser
  // caps them at a few hundred KiB), so one serial banked pass beats the
  // worker fan-out the code histograms need.
  std::array<std::uint32_t, kInterleave * 256> banks{};
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  const std::size_t n = data.size();
  std::uint32_t* h0 = banks.data();
  std::uint32_t* h1 = banks.data() + 256;
  std::uint32_t* h2 = banks.data() + 512;
  std::uint32_t* h3 = banks.data() + 768;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++h0[p[i]];
    ++h1[p[i + 1]];
    ++h2[p[i + 2]];
    ++h3[p[i + 3]];
  }
  for (; i < n; ++i) ++h0[p[i]];

  const double inv_n = 1.0 / static_cast<double>(n);
  double bits = 0.0;
  for (std::size_t b = 0; b < 256; ++b) {
    const std::uint64_t c = static_cast<std::uint64_t>(h0[b]) + h1[b] +
                            h2[b] + h3[b];
    if (c == 0) continue;
    const double prob = static_cast<double>(c) * inv_n;
    bits -= prob * std::log2(prob);
  }
  return bits;
}

}  // namespace szi::huffman
