#include "huffman/huffman.hh"

#include <cstring>
#include <stdexcept>

#include "device/launch.hh"
#include "device/scan.hh"
#include "huffman/histogram.hh"

namespace szi::huffman {

namespace {

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::byte> in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size())
    throw std::runtime_error("huffman: truncated stream");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::byte> encode(std::span<const quant::Code> codes,
                              std::size_t nbins, std::size_t chunk_size,
                              bool use_topk_histogram) {
  const auto hist =
      use_topk_histogram
          ? histogram_topk(codes, nbins, nbins / 2, 16)
          : histogram(codes, nbins);
  return encode_with_book(codes, Codebook::build(hist), chunk_size);
}

std::vector<std::byte> encode_with_book(std::span<const quant::Code> codes,
                                        const Codebook& book,
                                        std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("huffman: chunk_size == 0");
  const std::size_t nbins = book.nbins();
  const std::size_t n = codes.size();
  const std::size_t nchunks = dev::ceil_div(n, chunk_size);

  // Phase 1: per-chunk bit sizes (parallel), then byte offsets via scan.
  std::vector<std::uint64_t> chunk_bytes(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, n);
        std::uint64_t bits = 0;
        for (std::size_t i = begin; i < end; ++i) bits += book.lengths[codes[i]];
        chunk_bytes[c] = (bits + 7) / 8;
      },
      1);
  std::vector<std::uint64_t> offsets(nchunks);
  const std::uint64_t payload_bytes =
      dev::exclusive_scan<std::uint64_t>(chunk_bytes, offsets);

  // Header.
  std::vector<std::byte> out;
  out.reserve(64 + nbins + nchunks * 8 + payload_bytes);
  append_pod(out, static_cast<std::uint32_t>(nbins));
  out.insert(out.end(),
             reinterpret_cast<const std::byte*>(book.lengths.data()),
             reinterpret_cast<const std::byte*>(book.lengths.data()) + nbins);
  append_pod(out, static_cast<std::uint64_t>(n));
  append_pod(out, static_cast<std::uint32_t>(chunk_size));
  append_pod(out, payload_bytes);
  const std::size_t offsets_pos = out.size();
  out.resize(out.size() + nchunks * sizeof(std::uint64_t));
  std::memcpy(out.data() + offsets_pos, offsets.data(),
              nchunks * sizeof(std::uint64_t));

  // Phase 2: chunk-parallel bitstream emission into disjoint byte ranges.
  const std::size_t payload_pos = out.size();
  out.resize(out.size() + payload_bytes);
  auto* payload = reinterpret_cast<std::uint8_t*>(out.data() + payload_pos);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, n);
        std::vector<std::uint8_t> buf;
        buf.reserve(chunk_bytes[c]);
        lossless::BitWriter bw(buf);
        for (std::size_t i = begin; i < end; ++i)
          bw.put(book.codes[codes[i]], book.lengths[codes[i]]);
        bw.align();
        std::memcpy(payload + offsets[c], buf.data(), buf.size());
      },
      1);
  return out;
}

std::vector<quant::Code> decode(std::span<const std::byte> bytes) {
  std::size_t pos = 0;
  const auto nbins = read_pod<std::uint32_t>(bytes, pos);
  if (pos + nbins > bytes.size())
    throw std::runtime_error("huffman: truncated lengths");
  std::vector<std::uint8_t> lengths(nbins);
  std::memcpy(lengths.data(), bytes.data() + pos, nbins);
  pos += nbins;
  const auto n = read_pod<std::uint64_t>(bytes, pos);
  const auto chunk_size = read_pod<std::uint32_t>(bytes, pos);
  if (chunk_size == 0) throw std::runtime_error("huffman: zero chunk size");
  const auto payload_bytes = read_pod<std::uint64_t>(bytes, pos);
  const std::size_t nchunks = dev::ceil_div<std::size_t>(n, chunk_size);
  if (pos + nchunks * sizeof(std::uint64_t) + payload_bytes > bytes.size())
    throw std::runtime_error("huffman: truncated payload");
  std::vector<std::uint64_t> offsets(nchunks);
  std::memcpy(offsets.data(), bytes.data() + pos, nchunks * sizeof(std::uint64_t));
  pos += nchunks * sizeof(std::uint64_t);
  // Validate before any pointer arithmetic: offsets must be monotone and
  // inside the payload, or a corrupt header could index out of bounds.
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (offsets[c] > payload_bytes ||
        (c > 0 && offsets[c] < offsets[c - 1]))
      throw std::runtime_error("huffman: corrupt chunk offsets");
  }

  const Codebook book = Codebook::from_lengths(std::move(lengths));
  const FastDecodeTable table = FastDecodeTable::from(book);
  const auto* payload =
      reinterpret_cast<const std::uint8_t*>(bytes.data() + pos);

  std::vector<quant::Code> codes(n);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min<std::size_t>(begin + chunk_size, n);
        const std::size_t chunk_end_byte =
            (c + 1 < nchunks) ? offsets[c + 1] : payload_bytes;
        lossless::BitReader br({payload + offsets[c],
                                chunk_end_byte - offsets[c]});
        for (std::size_t i = begin; i < end; ++i) codes[i] = table.decode(br);
      },
      1);
  return codes;
}

std::size_t overhead_bytes(std::size_t nbins, std::size_t n_symbols,
                           std::size_t chunk_size) {
  return sizeof(std::uint32_t) + nbins + sizeof(std::uint64_t) +
         sizeof(std::uint32_t) + sizeof(std::uint64_t) +
         dev::ceil_div(n_symbols, chunk_size) * sizeof(std::uint64_t);
}

}  // namespace szi::huffman
