#include "huffman/huffman.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "device/scan.hh"
#include "huffman/histogram.hh"

namespace szi::huffman {

namespace {

/// BitWriter over a pre-sized destination: each chunk's exact byte size is
/// known after phase 1, so phase 2 writes straight into the payload slot
/// instead of growing a per-chunk vector and copying it over.
class SpanBitWriter {
 public:
  explicit SpanBitWriter(std::uint8_t* out) : out_(out) {}

  void put(std::uint64_t bits, unsigned nbits) {
    while (nbits > 0) {
      const unsigned take = nbits < free_ ? nbits : free_;
      cur_ = static_cast<std::uint8_t>(
          cur_ | (((bits >> (nbits - take)) & ((1u << take) - 1))
                  << (free_ - take)));
      free_ -= take;
      nbits -= take;
      if (free_ == 0) flush_byte();
    }
  }

  void align() {
    if (free_ < 8) flush_byte();
  }

 private:
  void flush_byte() {
    *out_++ = cur_;
    cur_ = 0;
    free_ = 8;
  }
  std::uint8_t* out_;
  std::uint8_t cur_ = 0;
  unsigned free_ = 8;
};

template <typename T>
std::byte* write_pod(std::byte* p, const T& v) {
  std::memcpy(p, &v, sizeof(T));
  return p + sizeof(T);
}

}  // namespace

std::vector<std::byte> encode(std::span<const quant::Code> codes,
                              std::size_t nbins, std::size_t chunk_size,
                              bool use_topk_histogram) {
  dev::Arena local;
  dev::Workspace ws(local);
  const auto s = encode(codes, nbins, chunk_size, use_topk_histogram, ws);
  return {s.begin(), s.end()};
}

std::vector<std::byte> encode_with_book(std::span<const quant::Code> codes,
                                        const Codebook& book,
                                        std::size_t chunk_size) {
  dev::Arena local;
  dev::Workspace ws(local);
  const auto s = encode_with_book(codes, book, chunk_size, ws);
  return {s.begin(), s.end()};
}

std::span<const std::byte> encode(std::span<const quant::Code> codes,
                                  std::size_t nbins, std::size_t chunk_size,
                                  bool use_topk_histogram,
                                  dev::Workspace& ws) {
  const auto hist = use_topk_histogram
                        ? histogram_topk(codes, nbins, nbins / 2, 16, ws)
                        : histogram(codes, nbins, ws);
  return encode_with_book(codes, Codebook::build(hist), chunk_size, ws);
}

EncodePlan encode_plan(std::span<const quant::Code> codes,
                       const Codebook& book, std::size_t chunk_size,
                       dev::Workspace& ws) {
  if (chunk_size == 0) throw std::invalid_argument("huffman: chunk_size == 0");
  const std::size_t nbins = book.nbins();
  const std::size_t n = codes.size();
  const std::size_t nchunks = dev::ceil_div(n, chunk_size);

  // Phase 1: per-chunk bit sizes (parallel), then byte offsets via scan.
  auto chunk_bytes = ws.make<std::uint64_t>(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, n);
        std::uint64_t bits = 0;
        for (std::size_t i = begin; i < end; ++i) bits += book.lengths[codes[i]];
        chunk_bytes[c] = (bits + 7) / 8;
      },
      1);
  auto offsets = ws.make<std::uint64_t>(nchunks);

  EncodePlan plan;
  plan.n = n;
  plan.chunk_size = chunk_size;
  plan.nchunks = nchunks;
  plan.payload_bytes = dev::exclusive_scan<std::uint64_t>(chunk_bytes, offsets);
  plan.header_bytes = sizeof(std::uint32_t) + nbins + sizeof(std::uint64_t) +
                      sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                      nchunks * sizeof(std::uint64_t);
  plan.offsets = offsets;
  return plan;
}

void write_stream_header(const EncodePlan& plan, const Codebook& book,
                         std::span<std::byte> dst) {
  const std::size_t nbins = book.nbins();
  if (dst.size() < plan.header_bytes)
    throw std::invalid_argument("huffman: header destination too small");
  std::byte* p = dst.data();
  p = write_pod(p, static_cast<std::uint32_t>(nbins));
  std::memcpy(p, book.lengths.data(), nbins);
  p += nbins;
  p = write_pod(p, static_cast<std::uint64_t>(plan.n));
  p = write_pod(p, static_cast<std::uint32_t>(plan.chunk_size));
  p = write_pod(p, plan.payload_bytes);
  if (plan.nchunks > 0)
    std::memcpy(p, plan.offsets.data(),
                plan.nchunks * sizeof(std::uint64_t));
}

void encode_chunks(std::span<const quant::Code> codes, const Codebook& book,
                   const EncodePlan& plan, std::size_t chunk_begin,
                   std::size_t chunk_end, std::span<std::byte> payload) {
  // Phase 2: chunk-parallel bitstream emission into disjoint byte ranges.
  // Each chunk's byte size is exact, so every payload byte in the range is
  // overwritten — required because arena blocks carry stale contents from
  // prior invocations.
  auto* base = reinterpret_cast<std::uint8_t*>(payload.data());
  dev::launch_linear(
      chunk_end - chunk_begin,
      [&](std::size_t k) {
        const std::size_t c = chunk_begin + k;
        const std::size_t begin = c * plan.chunk_size;
        const std::size_t end = std::min(begin + plan.chunk_size, plan.n);
        SpanBitWriter bw(base + plan.offsets[c]);
        for (std::size_t i = begin; i < end; ++i)
          bw.put(book.codes[codes[i]], book.lengths[codes[i]]);
        bw.align();
      },
      1);
}

std::size_t payload_bound(const Codebook& book, std::size_t n,
                          std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("huffman: chunk_size == 0");
  std::size_t maxlen = 0;
  for (const auto l : book.lengths) maxlen = std::max<std::size_t>(maxlen, l);
  // Each chunk rounds up to a whole byte, adding at most one byte per chunk
  // over the n * maxlen / 8 bit total.
  return (n * maxlen + 7) / 8 + dev::ceil_div(n, chunk_size);
}

EncodePlan encode_emit_serial(std::span<const quant::Code> codes,
                              const Codebook& book, std::size_t chunk_size,
                              std::span<std::byte> payload,
                              dev::Workspace& ws) {
  if (chunk_size == 0) throw std::invalid_argument("huffman: chunk_size == 0");
  const std::size_t n = codes.size();
  const std::size_t nchunks = dev::ceil_div(n, chunk_size);
  if (payload.size() < payload_bound(book, n, chunk_size))
    throw std::invalid_argument("huffman: serial payload destination too small");
  auto offsets = ws.make<std::uint64_t>(nchunks);
  auto* base = reinterpret_cast<std::uint8_t*>(payload.data());

  std::uint64_t off = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    offsets[c] = off;
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, n);
    SpanBitWriter bw(base + off);
    std::uint64_t bits = 0;
    for (std::size_t i = begin; i < end; ++i) {
      bw.put(book.codes[codes[i]], book.lengths[codes[i]]);
      bits += book.lengths[codes[i]];
    }
    bw.align();
    off += (bits + 7) / 8;
  }

  EncodePlan plan;
  plan.n = n;
  plan.chunk_size = chunk_size;
  plan.nchunks = nchunks;
  plan.payload_bytes = off;
  plan.header_bytes = overhead_bytes(book.nbins(), n, chunk_size);
  plan.offsets = offsets;
  return plan;
}

std::span<const std::byte> encode_with_book(std::span<const quant::Code> codes,
                                            const Codebook& book,
                                            std::size_t chunk_size,
                                            dev::Workspace& ws) {
  const EncodePlan plan = encode_plan(codes, book, chunk_size, ws);
  auto out = ws.make<std::byte>(plan.stream_bytes());
  write_stream_header(plan, book, out);
  encode_chunks(codes, book, plan, 0, plan.nchunks,
                out.subspan(plan.header_bytes));
  return out;
}

std::span<const std::byte> encode_with_book_serial(
    std::span<const quant::Code> codes, const Codebook& book,
    std::size_t chunk_size, dev::Workspace& ws) {
  const std::size_t header =
      overhead_bytes(book.nbins(), codes.size(), chunk_size);
  auto staging = ws.make<std::byte>(
      header + payload_bound(book, codes.size(), chunk_size));
  const EncodePlan plan =
      encode_emit_serial(codes, book, chunk_size, staging.subspan(header), ws);
  write_stream_header(plan, book, staging);
  return staging.first(plan.stream_bytes());
}

std::vector<Codebook> build_level_books(
    std::span<const std::vector<std::uint32_t>> histograms) {
  std::vector<Codebook> books;
  books.reserve(histograms.size());
  for (const auto& h : histograms) books.push_back(Codebook::build(h));
  return books;
}

namespace {

// Shared header parse + chunk-table validation for decode_plan and
// decode_plan_header. `stream_size` is the framed stream's total byte size
// (the input span's size for decode_plan); the payload itself need not be
// behind `rd`, only accounted for.
DecodePlan parse_stream_header(core::ByteReader& rd, std::uint64_t stream_size,
                               dev::Workspace& ws) {
  const auto nbins = rd.read<std::uint32_t>();
  auto lengths = rd.read_array<std::uint8_t>(nbins);
  const auto n64 = rd.read<std::uint64_t>();
  const auto chunk_size = rd.read<std::uint32_t>();
  if (chunk_size == 0) rd.fail("zero chunk size");
  const auto payload_bytes = rd.read<std::uint64_t>();
  // Overflow-free ceil-div: n64 is attacker-controlled and may be near 2^64.
  const std::uint64_t nchunks64 =
      n64 / chunk_size + (n64 % chunk_size != 0 ? 1 : 0);
  (void)rd.checked_array_bytes(static_cast<std::size_t>(n64),
                               sizeof(quant::Code));
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t nchunks = static_cast<std::size_t>(nchunks64);
  auto offsets = ws.make<std::uint64_t>(nchunks);
  if (nchunks > 0)
    std::memcpy(offsets.data(),
                rd.read_bytes(nchunks * sizeof(std::uint64_t)).data(),
                nchunks * sizeof(std::uint64_t));
  if (stream_size < rd.offset() || stream_size - rd.offset() < payload_bytes)
    rd.fail("truncated payload");
  // Validate the chunk table before any pointer arithmetic: offsets must
  // start at zero, stay monotone, and land inside the payload, or a corrupt
  // header could index out of bounds.
  if (nchunks > 0 && offsets[0] != 0) rd.fail("first chunk offset not zero");
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (offsets[c] > payload_bytes || (c > 0 && offsets[c] < offsets[c - 1]))
      rd.fail("corrupt chunk offsets");
  }

  DecodePlan plan;
  plan.n = n;
  plan.chunk_size = chunk_size;
  plan.nchunks = nchunks;
  plan.payload_bytes = payload_bytes;
  plan.offsets = offsets;
  // from_lengths rejects over-long or Kraft-violating length tables.
  plan.book = Codebook::from_lengths(std::move(lengths));
  plan.table = FastDecodeTable::from(plan.book);
  return plan;
}

}  // namespace

DecodePlan decode_plan(std::span<const std::byte> bytes, dev::Workspace& ws) {
  core::ByteReader rd(bytes, "huffman");
  DecodePlan plan = parse_stream_header(rd, bytes.size(), ws);
  plan.payload = rd.rest().first(static_cast<std::size_t>(plan.payload_bytes));
  return plan;
}

DecodePlan decode_plan_header(std::span<const std::byte> head,
                              std::uint64_t stream_size, dev::Workspace& ws) {
  core::ByteReader rd(head, "huffman");
  return parse_stream_header(rd, stream_size, ws);
}

namespace {

// Post-decode overrun check shared by both chunk decoders. The encoder
// byte-aligns every chunk, so a valid chunk decodes its element count
// within its byte span. Consuming more bits means the chunk table lied
// about this chunk's extent.
void check_chunk_extent(const lossless::BitReader& br, std::size_t chunk_bytes,
                        std::uint64_t chunk_offset, std::size_t c) {
  if (br.position() > chunk_bytes * 8)
    throw core::CorruptArchive(
        "huffman", chunk_offset,
        "chunk decoded past its extent (chunk " + std::to_string(c) + ")");
}

// Chunk iteration against an arbitrary payload window: `payload` points at
// the stream payload byte `payload_off`, and must cover every chunk of the
// range. The classic full-payload iteration is the payload_off == 0 case.
template <typename ChunkBody>
void for_each_chunk_at(const DecodePlan& plan, const std::uint8_t* payload,
                       std::uint64_t payload_off, std::size_t chunk_begin,
                       std::size_t chunk_end, const ChunkBody& body) {
  dev::launch_linear(
      chunk_end - chunk_begin,
      [&](std::size_t k) {
        const std::size_t c = chunk_begin + k;
        const std::size_t begin = c * plan.chunk_size;
        const std::size_t end =
            std::min<std::size_t>(begin + plan.chunk_size, plan.n);
        const std::size_t chunk_end_byte =
            (c + 1 < plan.nchunks) ? plan.offsets[c + 1] : plan.payload_bytes;
        const std::size_t chunk_bytes = chunk_end_byte - plan.offsets[c];
        lossless::BitReader br(
            {payload + (plan.offsets[c] - payload_off), chunk_bytes});
        body(br, begin, end);
        check_chunk_extent(br, chunk_bytes, plan.offsets[c], c);
      },
      1);
}

template <typename ChunkBody>
void for_each_chunk(const DecodePlan& plan, std::size_t chunk_begin,
                    std::size_t chunk_end, const ChunkBody& body) {
  for_each_chunk_at(plan,
                    reinterpret_cast<const std::uint8_t*>(plan.payload.data()),
                    0, chunk_begin, chunk_end, body);
}

// The pack-table decode loop shared by decode_chunks and
// decode_chunks_range — one body, so ranged decode is bit-identical by
// construction. `dst` points at the output slot for symbol `i`.
//
// Multi-symbol fast path: one pack-table probe emits up to kMaxPack
// codewords. The loop bound leaves room for a full pack; the remainder (and
// any window whose first code exceeds kLutBits) goes through the
// single-symbol decoder, which consumes the same bits per symbol, so
// position() agrees with the reference decoder at every symbol boundary.
inline void decode_pack_body(const DecodePlan& plan, lossless::BitReader& br,
                             std::size_t i, std::size_t end,
                             quant::Code* dst) {
  using Fast = FastDecodeTable;
  while (i + Fast::kMaxPack <= end) {
    const Fast::PackEntry& e = plan.table.pack[br.peek(Fast::kLutBits)];
    if (e.nsym == 0) {
      *dst++ = plan.table.decode(br);
      ++i;
      continue;
    }
    for (unsigned k = 0; k < e.nsym; ++k) dst[k] = e.sym[k];
    dst += e.nsym;
    i += e.nsym;
    br.skip(e.nbits);
  }
  while (i < end) {
    *dst++ = plan.table.decode(br);
    ++i;
  }
}

}  // namespace

void decode_chunks(const DecodePlan& plan, std::size_t chunk_begin,
                   std::size_t chunk_end, std::span<quant::Code> out) {
  for_each_chunk(plan, chunk_begin, chunk_end,
                 [&](lossless::BitReader& br, std::size_t i, std::size_t end) {
                   decode_pack_body(plan, br, i, end, out.data() + i);
                 });
}

void decode_chunks_range(const DecodePlan& plan,
                         std::span<const std::byte> payload,
                         std::uint64_t payload_off, std::size_t chunk_begin,
                         std::size_t chunk_end, std::span<quant::Code> out) {
  if (chunk_begin >= chunk_end) return;
  if (chunk_end > plan.nchunks)
    throw core::CorruptArchive("huffman", 0, "chunk range past chunk table");
  const std::uint64_t lo = plan.offsets[chunk_begin];
  const std::uint64_t hi = (chunk_end < plan.nchunks) ? plan.offsets[chunk_end]
                                                      : plan.payload_bytes;
  if (lo < payload_off || hi - payload_off > payload.size())
    throw core::CorruptArchive("huffman", static_cast<std::size_t>(lo),
                               "payload slice does not cover chunk range");
  const std::size_t sym_base = chunk_begin * plan.chunk_size;
  const std::size_t sym_end =
      std::min<std::size_t>(chunk_end * plan.chunk_size, plan.n);
  if (out.size() != sym_end - sym_base)
    throw core::CorruptArchive("huffman", 0, "chunk-range output size mismatch");
  for_each_chunk_at(
      plan, reinterpret_cast<const std::uint8_t*>(payload.data()), payload_off,
      chunk_begin, chunk_end,
      [&](lossless::BitReader& br, std::size_t i, std::size_t end) {
        decode_pack_body(plan, br, i, end, out.data() + (i - sym_base));
      });
}

void decode_chunks_reference(const DecodePlan& plan, std::size_t chunk_begin,
                             std::size_t chunk_end,
                             std::span<quant::Code> out) {
  for_each_chunk(plan, chunk_begin, chunk_end,
                 [&](lossless::BitReader& br, std::size_t i, std::size_t end) {
                   for (; i < end; ++i) out[i] = plan.table.decode(br);
                 });
}

std::vector<quant::Code> decode(std::span<const std::byte> bytes) {
  dev::Arena local;
  dev::Workspace ws(local);
  const DecodePlan plan = decode_plan(bytes, ws);
  std::vector<quant::Code> codes(plan.n);
  decode_chunks(plan, 0, plan.nchunks, codes);
  return codes;
}

std::span<const quant::Code> decode(std::span<const std::byte> bytes,
                                    dev::Workspace& ws) {
  const DecodePlan plan = decode_plan(bytes, ws);
  auto codes = ws.make<quant::Code>(plan.n);
  decode_chunks(plan, 0, plan.nchunks, codes);
  return codes;
}

std::size_t overhead_bytes(std::size_t nbins, std::size_t n_symbols,
                           std::size_t chunk_size) {
  return sizeof(std::uint32_t) + nbins + sizeof(std::uint64_t) +
         sizeof(std::uint32_t) + sizeof(std::uint64_t) +
         dev::ceil_div(n_symbols, chunk_size) * sizeof(std::uint64_t);
}

}  // namespace szi::huffman
