#include "huffman/huffman.hh"

#include <cstring>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"
#include "device/scan.hh"
#include "huffman/histogram.hh"

namespace szi::huffman {

namespace {

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

}  // namespace

std::vector<std::byte> encode(std::span<const quant::Code> codes,
                              std::size_t nbins, std::size_t chunk_size,
                              bool use_topk_histogram) {
  const auto hist =
      use_topk_histogram
          ? histogram_topk(codes, nbins, nbins / 2, 16)
          : histogram(codes, nbins);
  return encode_with_book(codes, Codebook::build(hist), chunk_size);
}

std::vector<std::byte> encode_with_book(std::span<const quant::Code> codes,
                                        const Codebook& book,
                                        std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("huffman: chunk_size == 0");
  const std::size_t nbins = book.nbins();
  const std::size_t n = codes.size();
  const std::size_t nchunks = dev::ceil_div(n, chunk_size);

  // Phase 1: per-chunk bit sizes (parallel), then byte offsets via scan.
  std::vector<std::uint64_t> chunk_bytes(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, n);
        std::uint64_t bits = 0;
        for (std::size_t i = begin; i < end; ++i) bits += book.lengths[codes[i]];
        chunk_bytes[c] = (bits + 7) / 8;
      },
      1);
  std::vector<std::uint64_t> offsets(nchunks);
  const std::uint64_t payload_bytes =
      dev::exclusive_scan<std::uint64_t>(chunk_bytes, offsets);

  // Header.
  std::vector<std::byte> out;
  out.reserve(64 + nbins + nchunks * 8 + payload_bytes);
  append_pod(out, static_cast<std::uint32_t>(nbins));
  out.insert(out.end(),
             reinterpret_cast<const std::byte*>(book.lengths.data()),
             reinterpret_cast<const std::byte*>(book.lengths.data()) + nbins);
  append_pod(out, static_cast<std::uint64_t>(n));
  append_pod(out, static_cast<std::uint32_t>(chunk_size));
  append_pod(out, payload_bytes);
  const std::size_t offsets_pos = out.size();
  out.resize(out.size() + nchunks * sizeof(std::uint64_t));
  if (nchunks > 0)
    std::memcpy(out.data() + offsets_pos, offsets.data(),
                nchunks * sizeof(std::uint64_t));

  // Phase 2: chunk-parallel bitstream emission into disjoint byte ranges.
  const std::size_t payload_pos = out.size();
  out.resize(out.size() + payload_bytes);
  auto* payload = reinterpret_cast<std::uint8_t*>(out.data() + payload_pos);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, n);
        std::vector<std::uint8_t> buf;
        buf.reserve(chunk_bytes[c]);
        lossless::BitWriter bw(buf);
        for (std::size_t i = begin; i < end; ++i)
          bw.put(book.codes[codes[i]], book.lengths[codes[i]]);
        bw.align();
        if (!buf.empty())
          std::memcpy(payload + offsets[c], buf.data(), buf.size());
      },
      1);
  return out;
}

std::vector<quant::Code> decode(std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "huffman");
  const auto nbins = rd.read<std::uint32_t>();
  auto lengths = rd.read_array<std::uint8_t>(nbins);
  const auto n64 = rd.read<std::uint64_t>();
  const auto chunk_size = rd.read<std::uint32_t>();
  if (chunk_size == 0) rd.fail("zero chunk size");
  const auto payload_bytes = rd.read<std::uint64_t>();
  // Overflow-free ceil-div: n64 is attacker-controlled and may be near 2^64.
  const std::uint64_t nchunks64 =
      n64 / chunk_size + (n64 % chunk_size != 0 ? 1 : 0);
  (void)rd.checked_array_bytes(static_cast<std::size_t>(n64),
                               sizeof(quant::Code));
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t nchunks = static_cast<std::size_t>(nchunks64);
  const auto offsets = rd.read_array<std::uint64_t>(nchunks);
  if (rd.remaining() < payload_bytes) rd.fail("truncated payload");
  // Validate the chunk table before any pointer arithmetic: offsets must
  // start at zero, stay monotone, and land inside the payload, or a corrupt
  // header could index out of bounds.
  if (nchunks > 0 && offsets[0] != 0) rd.fail("first chunk offset not zero");
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (offsets[c] > payload_bytes || (c > 0 && offsets[c] < offsets[c - 1]))
      rd.fail("corrupt chunk offsets");
  }

  // from_lengths rejects over-long or Kraft-violating length tables.
  const Codebook book = Codebook::from_lengths(std::move(lengths));
  const FastDecodeTable table = FastDecodeTable::from(book);
  const auto* payload = reinterpret_cast<const std::uint8_t*>(rd.rest().data());

  std::vector<quant::Code> codes(n);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min<std::size_t>(begin + chunk_size, n);
        const std::size_t chunk_end_byte =
            (c + 1 < nchunks) ? offsets[c + 1] : payload_bytes;
        const std::size_t chunk_bytes = chunk_end_byte - offsets[c];
        lossless::BitReader br({payload + offsets[c], chunk_bytes});
        for (std::size_t i = begin; i < end; ++i) codes[i] = table.decode(br);
        // The encoder byte-aligns every chunk, so a valid chunk decodes its
        // element count within its byte span. Consuming more bits means the
        // chunk table lied about this chunk's extent.
        if (br.position() > chunk_bytes * 8)
          throw core::CorruptArchive(
              "huffman", offsets[c],
              "chunk decoded past its extent (chunk " + std::to_string(c) +
                  ")");
      },
      1);
  return codes;
}

std::size_t overhead_bytes(std::size_t nbins, std::size_t n_symbols,
                           std::size_t chunk_size) {
  return sizeof(std::uint32_t) + nbins + sizeof(std::uint64_t) +
         sizeof(std::uint32_t) + sizeof(std::uint64_t) +
         dev::ceil_div(n_symbols, chunk_size) * sizeof(std::uint64_t);
}

}  // namespace szi::huffman
