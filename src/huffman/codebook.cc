#include "huffman/codebook.hh"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "core/bytes.hh"

namespace szi::huffman {

namespace {

/// Computes optimal code lengths for the non-zero-count symbols via the
/// classic pairing heap; returns max length.
unsigned tree_lengths(std::span<const std::uint64_t> counts,
                      std::span<std::uint8_t> lengths) {
  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  using QE = std::pair<std::uint64_t, int>;  // (weight, node id); id breaks ties
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;

  for (std::size_t s = 0; s < counts.size(); ++s)
    if (counts[s] > 0) {
      nodes.push_back({counts[s], -1, -1, static_cast<int>(s)});
      pq.emplace(counts[s], static_cast<int>(nodes.size() - 1));
    }
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return 1;
  }
  while (pq.size() > 1) {
    const auto [wa, a] = pq.top();
    pq.pop();
    const auto [wb, b] = pq.top();
    pq.pop();
    nodes.push_back({wa + wb, a, b, -1});
    pq.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }
  // Depth-first assignment of depths as lengths.
  struct Item {
    int node;
    unsigned depth;
  };
  unsigned max_len = 0;
  std::vector<Item> stack{{pq.top().second, 0}};
  while (!stack.empty()) {
    const auto [n, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(n)];
    if (nd.symbol >= 0) {
      lengths[static_cast<std::size_t>(nd.symbol)] =
          static_cast<std::uint8_t>(depth);
      max_len = std::max(max_len, depth);
    } else {
      stack.push_back({nd.left, depth + 1});
      stack.push_back({nd.right, depth + 1});
    }
  }
  return max_len;
}

/// Assigns canonical codes from lengths: symbols ordered by (length, value).
void assign_canonical(Codebook& book) {
  const std::size_t n = book.lengths.size();
  book.codes.assign(n, 0);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return book.lengths[a] < book.lengths[b];
  });
  std::uint64_t code = 0;
  unsigned prev_len = 0;
  for (const std::uint32_t s : order) {
    const unsigned len = book.lengths[s];
    if (len == 0) continue;
    code <<= (len - prev_len);
    book.codes[s] = static_cast<std::uint32_t>(code);
    ++code;
    prev_len = len;
  }
}

}  // namespace

Codebook Codebook::build(std::span<const std::uint32_t> hist) {
  Codebook book;
  book.lengths.assign(hist.size(), 0);
  std::vector<std::uint64_t> counts(hist.begin(), hist.end());

  // Flatten over-deep trees by halving counts; terminates because counts
  // converge to all-ones, whose tree depth is ceil(log2(nbins)) <= 32 for
  // any realistic bin count.
  for (;;) {
    std::fill(book.lengths.begin(), book.lengths.end(), 0);
    const unsigned max_len = tree_lengths(counts, book.lengths);
    if (max_len <= kMaxCodeLen) break;
    for (auto& c : counts)
      if (c > 0) c = (c + 1) / 2;
  }
  assign_canonical(book);
  return book;
}

Codebook Codebook::from_lengths(std::vector<std::uint8_t> lengths) {
  // The lengths come straight from archive bytes. Two properties are
  // load-bearing for memory safety downstream: every length must fit the
  // canonical tables (<= kMaxCodeLen indexes DecodeTable::count), and the
  // multiset must satisfy the Kraft inequality — otherwise canonical code
  // assignment overflows its length and FastDecodeTable would write LUT
  // entries past the end of its 2^kLutBits table.
  std::uint64_t kraft = 0;
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const unsigned len = lengths[s];
    if (len > kMaxCodeLen)
      throw core::CorruptArchive("huffman-codebook", s,
                                 "code length exceeds limit");
    if (len > 0) kraft += std::uint64_t{1} << (kMaxCodeLen - len);
  }
  if (kraft > (std::uint64_t{1} << kMaxCodeLen))
    throw core::CorruptArchive("huffman-codebook", 0,
                               "code lengths violate the Kraft inequality");
  Codebook book;
  book.lengths = std::move(lengths);
  assign_canonical(book);
  return book;
}

double Codebook::expected_bits(std::span<const std::uint32_t> hist) const {
  std::uint64_t total = 0, bits = 0;
  for (std::size_t s = 0; s < hist.size() && s < lengths.size(); ++s) {
    total += hist[s];
    bits += static_cast<std::uint64_t>(hist[s]) * lengths[s];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(bits) / static_cast<double>(total);
}

Codebook Codebook::prebuilt(std::size_t nbins, std::size_t center) {
  // Two-sided geometric prior: counts halve every 2 bins away from the
  // center, floored at 1 so every symbol stays encodable.
  std::vector<std::uint32_t> prior(nbins);
  for (std::size_t s = 0; s < nbins; ++s) {
    const std::size_t dist =
        s > center ? s - center : center - s;
    const std::size_t shift = std::min<std::size_t>(31, dist / 2);
    prior[s] = std::max<std::uint32_t>(1u, 0x40000000u >> shift);
  }
  return build(prior);
}

DecodeTable DecodeTable::from(const Codebook& book) {
  DecodeTable t;
  std::vector<std::uint32_t> order(book.lengths.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return book.lengths[a] < book.lengths[b];
  });
  for (const std::uint32_t s : order)
    if (book.lengths[s] > 0) {
      ++t.count[book.lengths[s]];
      t.symbols.push_back(static_cast<std::uint16_t>(s));
    }
  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= kMaxCodeLen; ++len) {
    t.first_code[len] = static_cast<std::uint32_t>(code);
    t.first_index[len] = index;
    code = (code + t.count[len]) << 1;
    index += t.count[len];
  }
  return t;
}

FastDecodeTable FastDecodeTable::from(const Codebook& book) {
  FastDecodeTable t;
  t.slow = DecodeTable::from(book);
  t.lut.assign(std::size_t{1} << kLutBits, 0);
  for (std::size_t s = 0; s < book.nbins(); ++s) {
    const unsigned len = book.lengths[s];
    if (len == 0 || len > kLutBits) continue;
    // Every kLutBits-wide prefix beginning with this codeword maps to it.
    const std::uint32_t base = book.codes[s] << (kLutBits - len);
    const std::uint32_t span = 1u << (kLutBits - len);
    const std::uint32_t entry =
        (len << 16) | static_cast<std::uint32_t>(s);
    for (std::uint32_t k = 0; k < span; ++k) t.lut[base + k] = entry;
  }

  // Pre-decode every window into as many whole codewords as fit. Probing
  // `lut` at (w << used) zero-fills the low `used` bits, but a hit with
  // len <= kLutBits - used examined only genuine window bits, so the entry
  // is the one any real continuation of the stream would produce; a hit
  // whose length spills past the window is rejected (the run just ends
  // early, which costs a probe, never correctness).
  t.pack.resize(std::size_t{1} << kLutBits);
  const std::uint32_t mask = (1u << kLutBits) - 1;
  for (std::uint32_t w = 0; w <= mask; ++w) {
    PackEntry e{};
    unsigned used = 0;
    while (e.nsym < kMaxPack) {
      const std::uint32_t probe = t.lut[(w << used) & mask];
      const unsigned len = probe >> 16;
      if (len == 0 || used + len > kLutBits) break;
      e.sym[e.nsym++] = static_cast<std::uint16_t>(probe & 0xFFFF);
      used += len;
    }
    e.nbits = static_cast<std::uint8_t>(used);
    t.pack[w] = e;
  }
  return t;
}

std::uint16_t FastDecodeTable::decode(lossless::BitReader& br) const {
  const std::uint32_t entry = lut[br.peek(kLutBits)];
  const unsigned len = entry >> 16;
  if (len != 0) {
    br.skip(len);
    return static_cast<std::uint16_t>(entry & 0xFFFF);
  }
  return slow.decode(br);  // rare long codeword
}

std::uint16_t DecodeTable::decode(lossless::BitReader& br) const {
  std::uint64_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLen; ++len) {
    code = (code << 1) | br.get1();
    // The lower-bound check never fails on valid streams (canonical prefix
    // property) but keeps corrupt codebooks/streams from indexing out of
    // bounds.
    if (count[len] > 0 && code >= first_code[len] &&
        code < static_cast<std::uint64_t>(first_code[len]) + count[len]) {
      const auto index =
          first_index[len] + static_cast<std::uint32_t>(code - first_code[len]);
      if (index < symbols.size()) return symbols[index];
      break;
    }
  }
  return symbols.empty() ? 0 : symbols[0];  // corrupt stream fallback
}

}  // namespace szi::huffman
