// Canonical Huffman codebook construction (§VI-A).
//
// As in cuSZ-i, the codebook is built serially on the host: after G-Interp,
// the histogram is so concentrated that a GPU tree-build is not worthwhile
// (the paper measures ~200 us end-to-end for this step and excludes it from
// kernel throughput, as we do in bench/fig9). Codes are canonical, so only
// the per-symbol lengths need to be stored in the archive.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "lossless/bitio.hh"

namespace szi::huffman {

inline constexpr unsigned kMaxCodeLen = 32;

struct Codebook {
  std::vector<std::uint8_t> lengths;  ///< per symbol; 0 = symbol absent
  std::vector<std::uint32_t> codes;   ///< canonical codeword (MSB-first)

  [[nodiscard]] std::size_t nbins() const { return lengths.size(); }

  /// Builds a length-limited (<= 32 bit) canonical codebook from counts.
  /// Histograms whose optimal tree is deeper are flattened by halving the
  /// counts until the limit holds.
  [[nodiscard]] static Codebook build(std::span<const std::uint32_t> hist);

  /// Rebuilds the canonical codes from `lengths` alone (deserialization).
  [[nodiscard]] static Codebook from_lengths(std::vector<std::uint8_t> lengths);

  /// Average code length in bits under the given histogram (for tests and
  /// the §VI-B "at least 1 bit per element" analysis).
  [[nodiscard]] double expected_bits(std::span<const std::uint32_t> hist) const;

  /// Data-independent prebuilt codebook — the paper's §VI-A future-work
  /// direction (citing [37]) for removing the host-side tree build from the
  /// critical path. The code lengths follow a two-sided geometric prior
  /// centered at `center` (the zero-error code), which is what G-Interp's
  /// quant-code distribution approximates at any error bound. Costs some
  /// ratio versus a data-built book; the micro bench quantifies it.
  [[nodiscard]] static Codebook prebuilt(std::size_t nbins, std::size_t center);
};

/// Canonical decoding tables: symbols sorted by (length, symbol) plus the
/// first code/index per length — O(length) decode, no pointer chasing.
struct DecodeTable {
  std::vector<std::uint16_t> symbols;
  std::array<std::uint32_t, kMaxCodeLen + 2> first_code{};
  std::array<std::uint32_t, kMaxCodeLen + 2> first_index{};
  std::array<std::uint32_t, kMaxCodeLen + 2> count{};

  [[nodiscard]] static DecodeTable from(const Codebook& book);

  /// Reads one symbol from `br`. Undefined for corrupt streams beyond
  /// returning an arbitrary in-range symbol.
  [[nodiscard]] std::uint16_t decode(lossless::BitReader& br) const;
};

/// Table-accelerated decoder: a 2^kLutBits-entry prefix table resolves every
/// codeword of length <= kLutBits in one probe (the overwhelmingly common
/// case for G-Interp's concentrated codes); longer codes fall back to the
/// canonical bit-serial path. Decodes the same streams bit-for-bit.
///
/// A second table (`pack`) extends the same idea to *runs* of short codes:
/// each kLutBits-wide window is pre-decoded into as many whole codewords as
/// fit (up to kMaxPack), so the chunk decoder emits several symbols per
/// probe. Packing never changes which bits belong to which codeword — the
/// prefix property means symbol k+1's code is resolved by the window bits
/// left over after symbol k, exactly as sequential single-symbol decoding
/// would — so the decoded stream is bit-identical either way.
struct FastDecodeTable {
  static constexpr unsigned kLutBits = 12;
  static constexpr unsigned kMaxPack = 6;

  /// One pre-decoded kLutBits-bit window. nsym == 0 marks "escape": the
  /// window's first code is longer than kLutBits, take the slow path.
  struct PackEntry {
    std::uint8_t nsym;                 ///< whole codewords in the window
    std::uint8_t nbits;                ///< total bits those codewords span
    std::uint16_t sym[kMaxPack];       ///< their symbols, in stream order
  };

  DecodeTable slow;
  /// Per prefix: symbol in the low 16 bits, code length in the high bits;
  /// length 0 marks "escape to the slow path".
  std::vector<std::uint32_t> lut;
  /// Per prefix: the multi-symbol expansion of the window (2^kLutBits
  /// entries, built from `lut`).
  std::vector<PackEntry> pack;

  [[nodiscard]] static FastDecodeTable from(const Codebook& book);
  [[nodiscard]] std::uint16_t decode(lossless::BitReader& br) const;
};

}  // namespace szi::huffman
