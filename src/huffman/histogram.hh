// Quant-code histogram kernels feeding the Huffman codebook (§VI-A).
//
// Two implementations:
//  - histogram(): the generic privatized scheme — cuSZ's baseline. One
//    private histogram per *worker* (fixed worker -> contiguous element
//    ranges, not per 64Ki-chunk partials), with 4 interleaved counter banks
//    per worker so concentrated streams don't serialize on one counter's
//    store-to-load dependency.
//  - histogram_topk(): cuSZ-i's optimization. G-Interp's codes concentrate
//    in a small band r_k around the zero code, so each "thread" caches the
//    top-k hottest bins in registers (here: a small local array, also
//    interleaved) and only touches the full private histogram for the cold
//    tail. On a GPU this slashes shared-memory traffic; the CPU realization
//    keeps the identical structure so the ablation bench can compare the two
//    paths, and gracefully degrades to k=1 when asked (§VI-A).
//
// Each kernel has a Workspace overload that draws the per-worker private
// histograms from the pooled arena (one flat block) instead of allocating a
// vector per worker; the plain overloads are thin wrappers over it with a
// throwaway arena. The merged result is deterministic regardless of worker
// count: uint32 counter addition commutes, and partials are combined
// serially in worker order.
//
// The building blocks (histogram_workers / accumulate_banked /
// merge_histograms) are exposed inline so the fused predictors can count
// codes with the same banked layout inside their own worker loops — the
// fused pipeline eliminates the separate full read pass over `codes` while
// producing bit-identical totals (addition commutes, so partitioning the
// elements by tile instead of by contiguous range changes nothing).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"
#include "device/thread_pool.hh"
#include "quant/quantizer.hh"

namespace szi::huffman {

/// Interleaved counter banks per worker-private histogram. Concentrated code
/// streams (>90% of G-Interp codes hit one bin) serialize on the
/// store-to-load dependency of a single counter; striping consecutive
/// elements across independent banks lets the increments overlap. Banks are
/// folded by merge_histograms().
inline constexpr std::size_t kHistogramBanks = 4;

/// Minimum elements one histogram worker is worth spinning up for.
inline constexpr std::size_t kHistogramMinPerWorker = 1 << 16;

/// Worker count for accumulating over `n` elements: one worker per
/// kHistogramMinPerWorker elements, capped at the pool size, at least 1.
[[nodiscard]] inline std::size_t histogram_workers(std::size_t n) {
  const std::size_t maxw =
      std::max<std::size_t>(1, dev::ThreadPool::instance().worker_count());
  return std::clamp<std::size_t>((n + kHistogramMinPerWorker - 1) /
                                     kHistogramMinPerWorker,
                                 1, maxw);
}

/// Accumulates `n` codes (each < nbins) into the caller's banked private
/// histogram `h` of kHistogramBanks * nbins counters. `h` must be zeroed
/// before the first call; repeated calls accumulate. Code i lands in bank
/// i mod kHistogramBanks of *this call*, which is irrelevant to the folded
/// totals (addition commutes) but keeps the increments independent.
inline void accumulate_banked(const quant::Code* codes, std::size_t n,
                              std::uint32_t* h, std::size_t nbins) {
  std::uint32_t* h0 = h;
  std::uint32_t* h1 = h + nbins;
  std::uint32_t* h2 = h + 2 * nbins;
  std::uint32_t* h3 = h + 3 * nbins;
  static_assert(kHistogramBanks == 4, "unrolled for 4 banks");
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++h0[codes[i]];
    ++h1[codes[i + 1]];
    ++h2[codes[i + 2]];
    ++h3[codes[i + 3]];
  }
  for (; i < n; ++i) ++h0[codes[i]];
}

/// Folds `nparts` flat private histograms (nbins counters each) into one
/// total, serially in part order — the deterministic merge every
/// accumulation site shares. Uses 8-wide AVX2 adds when the host supports
/// them; uint32 addition is exact, so the vector and scalar folds are
/// trivially identical.
[[nodiscard]] std::vector<std::uint32_t> merge_histograms(
    std::span<const std::uint32_t> parts, std::size_t nparts,
    std::size_t nbins);

/// Generic two-phase privatized histogram over codes < nbins.
[[nodiscard]] std::vector<std::uint32_t> histogram(
    std::span<const quant::Code> codes, std::size_t nbins);
[[nodiscard]] std::vector<std::uint32_t> histogram(
    std::span<const quant::Code> codes, std::size_t nbins,
    dev::Workspace& ws);

/// Hot-band cached histogram: bins in [center-k, center+k] go through a
/// per-chunk register cache; everything else through the private histogram.
/// `center` is normally the quantizer radius (the zero-error code).
[[nodiscard]] std::vector<std::uint32_t> histogram_topk(
    std::span<const quant::Code> codes, std::size_t nbins, std::size_t center,
    std::size_t k);
[[nodiscard]] std::vector<std::uint32_t> histogram_topk(
    std::span<const quant::Code> codes, std::size_t nbins, std::size_t center,
    std::size_t k, dev::Workspace& ws);

/// Shannon entropy of `data`'s byte distribution, in bits per byte
/// (0 for empty or constant input, 8 for uniform). Accumulated through the
/// same 4-bank interleaved counters as the code histograms, so concentrated
/// streams don't serialize on one counter. The lossless orchestration layer
/// uses this as its incompressibility shortcut: a sample within noise of
/// 8 bits/byte cannot gain from any de-redundancy pipeline, so the sampled
/// chooser skips the candidate compressions entirely.
[[nodiscard]] double byte_entropy(std::span<const std::byte> data);

}  // namespace szi::huffman
