// Quant-code histogram kernels feeding the Huffman codebook (§VI-A).
//
// Two implementations:
//  - histogram(): the generic privatized scheme — cuSZ's baseline. One
//    private histogram per *worker* (fixed worker -> contiguous element
//    ranges, not per 64Ki-chunk partials), with 4 interleaved counter banks
//    per worker so concentrated streams don't serialize on one counter's
//    store-to-load dependency.
//  - histogram_topk(): cuSZ-i's optimization. G-Interp's codes concentrate
//    in a small band r_k around the zero code, so each "thread" caches the
//    top-k hottest bins in registers (here: a small local array, also
//    interleaved) and only touches the full private histogram for the cold
//    tail. On a GPU this slashes shared-memory traffic; the CPU realization
//    keeps the identical structure so the ablation bench can compare the two
//    paths, and gracefully degrades to k=1 when asked (§VI-A).
//
// Each kernel has a Workspace overload that draws the per-worker private
// histograms from the pooled arena (one flat block) instead of allocating a
// vector per worker; the plain overloads are thin wrappers over it with a
// throwaway arena. The merged result is deterministic regardless of worker
// count: uint32 counter addition commutes, and partials are combined
// serially in worker order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"
#include "quant/quantizer.hh"

namespace szi::huffman {

/// Generic two-phase privatized histogram over codes < nbins.
[[nodiscard]] std::vector<std::uint32_t> histogram(
    std::span<const quant::Code> codes, std::size_t nbins);
[[nodiscard]] std::vector<std::uint32_t> histogram(
    std::span<const quant::Code> codes, std::size_t nbins,
    dev::Workspace& ws);

/// Hot-band cached histogram: bins in [center-k, center+k] go through a
/// per-chunk register cache; everything else through the private histogram.
/// `center` is normally the quantizer radius (the zero-error code).
[[nodiscard]] std::vector<std::uint32_t> histogram_topk(
    std::span<const quant::Code> codes, std::size_t nbins, std::size_t center,
    std::size_t k);
[[nodiscard]] std::vector<std::uint32_t> histogram_topk(
    std::span<const quant::Code> codes, std::size_t nbins, std::size_t center,
    std::size_t k, dev::Workspace& ws);

}  // namespace szi::huffman
