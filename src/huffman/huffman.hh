// Coarse-grained chunk-parallel Huffman codec (§III-A, §VI-A) — the cuSZ
// design: the symbol stream is split into fixed-size chunks; a first kernel
// computes per-chunk bit sizes, an exclusive scan turns them into offsets
// (rounded up to bytes so chunks stay independently addressable), and a
// second kernel writes each chunk's bitstream. Decoding is chunk-parallel.
//
// Stream layout:
//   u32 nbins | u8 lengths[nbins] | u64 n_symbols | u32 chunk_size |
//   u64 payload_bytes | u64 chunk_byte_offset[n_chunks] | payload
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"
#include "huffman/codebook.hh"
#include "quant/quantizer.hh"

namespace szi::huffman {

inline constexpr std::size_t kDefaultChunk = 4096;

/// Encodes `codes` (values < nbins) into a self-describing byte stream.
/// `use_topk_histogram` selects the §VI-A hot-band histogram path.
[[nodiscard]] std::vector<std::byte> encode(std::span<const quant::Code> codes,
                                            std::size_t nbins,
                                            std::size_t chunk_size = kDefaultChunk,
                                            bool use_topk_histogram = true);

/// Same, with a caller-built codebook (lets pipelines time the host-side
/// codebook build separately, as the paper does).
[[nodiscard]] std::vector<std::byte> encode_with_book(
    std::span<const quant::Code> codes, const Codebook& book,
    std::size_t chunk_size = kDefaultChunk);

/// Workspace variants: the stream is assembled in `ws`-owned memory (valid
/// until its next reset) and every chunk's bitstream is written directly
/// into its final payload slot — no per-chunk temporaries, no allocations
/// on the encode hot path. The byte layout is identical to encode().
[[nodiscard]] std::span<const std::byte> encode(
    std::span<const quant::Code> codes, std::size_t nbins,
    std::size_t chunk_size, bool use_topk_histogram, dev::Workspace& ws);
[[nodiscard]] std::span<const std::byte> encode_with_book(
    std::span<const quant::Code> codes, const Codebook& book,
    std::size_t chunk_size, dev::Workspace& ws);

/// Inverse of encode(). Throws std::runtime_error on malformed headers.
[[nodiscard]] std::vector<quant::Code> decode(std::span<const std::byte> bytes);

/// Workspace form: decoded codes live in pooled `ws` memory (valid until its
/// next reset). Identical validation and output as decode().
[[nodiscard]] std::span<const quant::Code> decode(
    std::span<const std::byte> bytes, dev::Workspace& ws);

// ---- Phase-split API ----------------------------------------------------
//
// The fused stage pipeline interleaves Huffman encode with the downstream
// LZSS pass (and LZSS decode with Huffman decode on the way back), so the
// two phases of the chunk-parallel codec are exposed separately: plan
// (per-chunk sizes -> offsets, total stream size known up front) and
// emit/decode over any chunk subrange. encode()/decode() are thin
// compositions of these, so the split is byte-identical by construction.

/// Phase-1 result: everything needed to size and emit the stream.
struct EncodePlan {
  std::size_t n = 0;            ///< symbol count
  std::size_t chunk_size = 0;   ///< symbols per chunk
  std::size_t nchunks = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t header_bytes = 0;
  std::span<const std::uint64_t> offsets;  ///< ws-owned, one per chunk

  [[nodiscard]] std::size_t stream_bytes() const {
    return header_bytes + static_cast<std::size_t>(payload_bytes);
  }
};

/// Computes per-chunk byte sizes (parallel) and their exclusive scan.
[[nodiscard]] EncodePlan encode_plan(std::span<const quant::Code> codes,
                                     const Codebook& book,
                                     std::size_t chunk_size, dev::Workspace& ws);

/// Writes the stream header (plan.header_bytes bytes) into dst.
void write_stream_header(const EncodePlan& plan, const Codebook& book,
                         std::span<std::byte> dst);

/// Emits chunks [chunk_begin, chunk_end) into `payload` (the full
/// plan.payload_bytes span; offsets are absolute). Chunk ranges are
/// disjoint byte ranges, so distinct ranges may run concurrently.
void encode_chunks(std::span<const quant::Code> codes, const Codebook& book,
                   const EncodePlan& plan, std::size_t chunk_begin,
                   std::size_t chunk_end, std::span<std::byte> payload);

/// Upper bound on the payload bytes any code sequence of length n can emit
/// under `book` — for sizing a destination before encode_emit_serial has
/// measured the chunks.
[[nodiscard]] std::size_t payload_bound(const Codebook& book, std::size_t n,
                                        std::size_t chunk_size);

/// Fused plan+emit for the serial pipeline: one pass over the codes that
/// emits each chunk's bitstream at the running offset and records the
/// offset table as a byproduct, instead of a sizing pass followed by an
/// emission pass. `payload` must hold at least payload_bound() bytes.
/// Returns a plan equal to encode_plan's and leaves the payload bytes
/// identical to encode_chunks over that plan: chunk contents depend only on
/// the codes and the book, and each offset is the exact sum of the
/// preceding chunk sizes either way.
[[nodiscard]] EncodePlan encode_emit_serial(std::span<const quant::Code> codes,
                                            const Codebook& book,
                                            std::size_t chunk_size,
                                            std::span<std::byte> payload,
                                            dev::Workspace& ws);

/// Serial one-pass counterpart of encode_with_book, built on
/// encode_emit_serial: plans and emits in a single walk over the codes and
/// assembles the self-describing stream in `ws` memory. Byte-identical to
/// encode_with_book — the SZI2 writer emits each level segment through this
/// so per-level framing costs one pass per stream, not two.
[[nodiscard]] std::span<const std::byte> encode_with_book_serial(
    std::span<const quant::Code> codes, const Codebook& book,
    std::size_t chunk_size, dev::Workspace& ws);

/// Multi-codebook plan: one canonical codebook per histogram (the SZI2
/// archive's per-level books). An all-zero histogram yields the empty book,
/// whose stream is a bare header — empty levels of degenerate grids cost
/// O(nbins) bytes, never a crash.
[[nodiscard]] std::vector<Codebook> build_level_books(
    std::span<const std::vector<std::uint32_t>> histograms);

/// A validated decode-side plan: header parsed, chunk offset table copied
/// into `ws` memory and bounds-checked, codebook/table rebuilt. `payload`
/// views the input bytes; chunks can then decode independently — and, key
/// for the pipelined decompressor, chunk c only needs payload bytes
/// [offsets[c], offsets[c+1]) to be present.
struct DecodePlan {
  std::size_t n = 0;
  std::size_t chunk_size = 0;
  std::size_t nchunks = 0;
  std::uint64_t payload_bytes = 0;
  std::span<const std::uint64_t> offsets;  ///< ws-owned
  std::span<const std::byte> payload;      ///< view into the input stream
  Codebook book;
  FastDecodeTable table;
};

/// Parses and validates the stream header. Throws core::CorruptArchive on
/// malformed input.
[[nodiscard]] DecodePlan decode_plan(std::span<const std::byte> bytes,
                                     dev::Workspace& ws);

/// decode_plan over only the stream's leading header bytes — for
/// random-access readers that fetch the payload selectively. `head` must
/// cover the full header (its offset table included); `stream_size` is the
/// framed stream's total size and must cover header + payload. Identical
/// parse and validation to decode_plan, but `plan.payload` is left empty:
/// pair with decode_chunks_range, handing it the payload bytes each chunk
/// run needs.
[[nodiscard]] DecodePlan decode_plan_header(std::span<const std::byte> head,
                                            std::uint64_t stream_size,
                                            dev::Workspace& ws);

/// Decodes chunks [chunk_begin, chunk_end) into `out` (the full n-element
/// span; chunk c writes symbols [c*chunk_size, min((c+1)*chunk_size, n))).
/// Uses the multi-symbol pack table: several short codewords resolve per
/// probe. Output and error behavior are bit-identical to
/// decode_chunks_reference (tests/test_decode_equiv.cc holds them equal).
void decode_chunks(const DecodePlan& plan, std::size_t chunk_begin,
                   std::size_t chunk_end, std::span<quant::Code> out);

/// decode_chunks against caller-provided payload bytes (for plans built by
/// decode_plan_header, whose own payload view is empty): `payload` holds
/// the stream's payload range [payload_off, payload_off + payload.size()),
/// which must cover chunks [chunk_begin, chunk_end). Symbols land at
/// out[i - chunk_begin*chunk_size] — `out` spans exactly the range's
/// symbols. Decode is bit-identical to decode_chunks over the same chunks.
void decode_chunks_range(const DecodePlan& plan,
                         std::span<const std::byte> payload,
                         std::uint64_t payload_off, std::size_t chunk_begin,
                         std::size_t chunk_end, std::span<quant::Code> out);

/// The pre-overhaul single-symbol-per-probe chunk decoder, retained as the
/// equivalence reference for decode_chunks and for the decode ablation
/// bench. Same validation, same CorruptArchive throws.
void decode_chunks_reference(const DecodePlan& plan, std::size_t chunk_begin,
                             std::size_t chunk_end, std::span<quant::Code> out);

/// Size (bytes) the stream header+offsets add on top of the entropy payload,
/// for the bit-rate accounting in the benches.
[[nodiscard]] std::size_t overhead_bytes(std::size_t nbins,
                                         std::size_t n_symbols,
                                         std::size_t chunk_size = kDefaultChunk);

}  // namespace szi::huffman
