// Coarse-grained chunk-parallel Huffman codec (§III-A, §VI-A) — the cuSZ
// design: the symbol stream is split into fixed-size chunks; a first kernel
// computes per-chunk bit sizes, an exclusive scan turns them into offsets
// (rounded up to bytes so chunks stay independently addressable), and a
// second kernel writes each chunk's bitstream. Decoding is chunk-parallel.
//
// Stream layout:
//   u32 nbins | u8 lengths[nbins] | u64 n_symbols | u32 chunk_size |
//   u64 payload_bytes | u64 chunk_byte_offset[n_chunks] | payload
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"
#include "huffman/codebook.hh"
#include "quant/quantizer.hh"

namespace szi::huffman {

inline constexpr std::size_t kDefaultChunk = 4096;

/// Encodes `codes` (values < nbins) into a self-describing byte stream.
/// `use_topk_histogram` selects the §VI-A hot-band histogram path.
[[nodiscard]] std::vector<std::byte> encode(std::span<const quant::Code> codes,
                                            std::size_t nbins,
                                            std::size_t chunk_size = kDefaultChunk,
                                            bool use_topk_histogram = true);

/// Same, with a caller-built codebook (lets pipelines time the host-side
/// codebook build separately, as the paper does).
[[nodiscard]] std::vector<std::byte> encode_with_book(
    std::span<const quant::Code> codes, const Codebook& book,
    std::size_t chunk_size = kDefaultChunk);

/// Workspace variants: the stream is assembled in `ws`-owned memory (valid
/// until its next reset) and every chunk's bitstream is written directly
/// into its final payload slot — no per-chunk temporaries, no allocations
/// on the encode hot path. The byte layout is identical to encode().
[[nodiscard]] std::span<const std::byte> encode(
    std::span<const quant::Code> codes, std::size_t nbins,
    std::size_t chunk_size, bool use_topk_histogram, dev::Workspace& ws);
[[nodiscard]] std::span<const std::byte> encode_with_book(
    std::span<const quant::Code> codes, const Codebook& book,
    std::size_t chunk_size, dev::Workspace& ws);

/// Inverse of encode(). Throws std::runtime_error on malformed headers.
[[nodiscard]] std::vector<quant::Code> decode(std::span<const std::byte> bytes);

/// Size (bytes) the stream header+offsets add on top of the entropy payload,
/// for the bit-rate accounting in the benches.
[[nodiscard]] std::size_t overhead_bytes(std::size_t nbins,
                                         std::size_t n_symbols,
                                         std::size_t chunk_size = kDefaultChunk);

}  // namespace szi::huffman
