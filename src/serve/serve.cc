#include "serve/serve.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <exception>
#include <utility>

#include "core/cuszi.hh"
#include "device/arena.hh"
#include "device/stream.hh"
#include "device/thread_pool.hh"

namespace szi::serve {

namespace detail {

/// One submitted request, shared between its Ticket copies and the service.
struct RequestState {
  enum class Kind : std::uint8_t {
    CompressF32,   ///< coalescable: batches into compress_batch waves
    CompressF64,   ///< direct (the batch front end is f32)
    DecompressF32,
    DecompressF64,
    Roi,
  };

  Kind kind = Kind::CompressF32;
  std::string tenant;

  // Borrowed payloads — the caller keeps them alive until completion.
  std::span<const float> f32;
  std::span<const double> f64;
  std::span<const std::byte> archive;
  dev::Dim3 dims;
  CompressParams params{};
  RoiBox box{};

  std::size_t payload_bytes = 0;
  std::size_t ws_estimate = 0;

  std::chrono::steady_clock::time_point submitted{};
  std::chrono::steady_clock::time_point dispatched{};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Response resp;
};

}  // namespace detail

namespace {

using detail::RequestState;
using Kind = RequestState::Kind;
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint32_t peek_magic(std::span<const std::byte> bytes) {
  std::uint32_t magic = 0;
  if (bytes.size() >= sizeof(magic))
    std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic;
}

/// Executes one non-coalesced request body (everything except the batched
/// f32 compress wave): shared by the inline path, the direct-wave stream
/// tasks, and the single-request fallback. Fills resp.{archive,data,...};
/// exceptions propagate to the caller, which parks them in the response.
void run_request_body(RequestState& st, dev::Workspace& ws) {
  switch (st.kind) {
    case Kind::CompressF32:
      st.resp.archive = cuszi_compress(st.f32, st.dims, st.params,
                                       /*timings=*/nullptr, ws);
      st.resp.bytes_out = st.resp.archive.size();
      break;
    case Kind::CompressF64:
      st.resp.archive = cuszi_compress(st.f64, st.dims, st.params,
                                       /*timings=*/nullptr, ws);
      st.resp.bytes_out = st.resp.archive.size();
      break;
    case Kind::DecompressF32: {
      const std::uint32_t magic = peek_magic(st.archive);
      if (magic == kBitcompWrapMagic || magic == kBitcompWrapMagicV2)
        st.resp.data = cuszi_decompress_bitcomp_f32(st.archive, ws);
      else
        st.resp.data = cuszi_decompress_f32(st.archive, ws);
      st.resp.bytes_out = st.resp.data.size() * sizeof(float);
      break;
    }
    case Kind::DecompressF64: {
      const std::uint32_t magic = peek_magic(st.archive);
      if (magic == kBitcompWrapMagic || magic == kBitcompWrapMagicV2)
        st.resp.data_f64 = cuszi_decompress_bitcomp_f64(st.archive, ws);
      else
        st.resp.data_f64 = cuszi_decompress_f64(st.archive, ws);
      st.resp.bytes_out = st.resp.data_f64.size() * sizeof(double);
      break;
    }
    case Kind::Roi: {
      auto r = cuszi_decompress_roi_f32(st.archive, st.box);
      st.resp.data = std::move(r.data);
      st.resp.bytes_out = st.resp.data.size() * sizeof(float);
      break;
    }
  }
}

const char* describe(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    thread_local std::string msg;
    msg = e.what();
    return msg.c_str();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Ticket

const Response& Ticket::wait() const {
  std::unique_lock lk(st_->mu);
  st_->cv.wait(lk, [&] { return st_->done; });
  return st_->resp;
}

bool Ticket::ready() const {
  std::lock_guard lk(st_->mu);
  return st_->done;
}

// ---------------------------------------------------------------------------
// Service

std::size_t Service::estimate_workspace_bytes(std::size_t payload_bytes) {
  // The compress pipeline holds quant codes, per-level code buckets, the
  // Huffman streams, and the assembled archive at once; decompress holds
  // codes plus the reconstruction. ~6x the payload, plus a fixed floor for
  // histograms/codebooks/chunk tables, bounds both (the arenas round up to
  // power-of-two buckets, which the factor absorbs).
  return 6 * payload_bytes + (std::size_t{1} << 20);
}

Service::Service(ServeConfig cfg) : cfg_(cfg) {
  cfg_.max_wave = std::max<std::size_t>(1, cfg_.max_wave);
  cfg_.queue_capacity = std::max<std::size_t>(1, cfg_.queue_capacity);
  inline_ = cfg_.dispatch == ServeConfig::Dispatch::Inline ||
            (cfg_.dispatch == ServeConfig::Dispatch::Auto &&
             dev::ThreadPool::instance().worker_count() <= 1);
  if (!inline_) scheduler_ = std::thread([this] { scheduler_loop(); });
}

Service::~Service() {
  if (inline_) return;
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  scheduler_.join();
}

Ticket Service::submit_compress(std::string tenant, std::span<const float> data,
                                const dev::Dim3& dims,
                                const CompressParams& params) {
  auto st = std::make_shared<RequestState>();
  st->kind = Kind::CompressF32;
  st->tenant = std::move(tenant);
  st->f32 = data;
  st->dims = dims;
  st->params = params;
  st->payload_bytes = data.size_bytes();
  return enqueue(std::move(st));
}

Ticket Service::submit_compress_f64(std::string tenant,
                                    std::span<const double> data,
                                    const dev::Dim3& dims,
                                    const CompressParams& params) {
  auto st = std::make_shared<RequestState>();
  st->kind = Kind::CompressF64;
  st->tenant = std::move(tenant);
  st->f64 = data;
  st->dims = dims;
  st->params = params;
  st->payload_bytes = data.size_bytes();
  return enqueue(std::move(st));
}

Ticket Service::submit_decompress(std::string tenant,
                                  std::span<const std::byte> archive) {
  auto st = std::make_shared<RequestState>();
  st->kind = Kind::DecompressF32;
  st->tenant = std::move(tenant);
  st->archive = archive;
  st->payload_bytes = archive.size();
  return enqueue(std::move(st));
}

Ticket Service::submit_decompress_f64(std::string tenant,
                                      std::span<const std::byte> archive) {
  auto st = std::make_shared<RequestState>();
  st->kind = Kind::DecompressF64;
  st->tenant = std::move(tenant);
  st->archive = archive;
  st->payload_bytes = archive.size();
  return enqueue(std::move(st));
}

Ticket Service::submit_roi(std::string tenant,
                           std::span<const std::byte> archive,
                           const RoiBox& box) {
  auto st = std::make_shared<RequestState>();
  st->kind = Kind::Roi;
  st->tenant = std::move(tenant);
  st->archive = archive;
  st->box = box;
  // The indexed ROI path's working set is bounded by the halo'd box, not
  // the archive — budget the box.
  st->payload_bytes = box.ext.volume() * sizeof(float);
  return enqueue(std::move(st));
}

Ticket Service::enqueue(ReqPtr req) {
  req->submitted = Clock::now();
  req->ws_estimate = estimate_workspace_bytes(req->payload_bytes);
  req->resp.bytes_in = req->payload_bytes;

  {
    std::lock_guard lk(stats_mu_);
    ++stats_.submitted;
  }

  // Admission control, Reject flavor: fail fast when the pooled arenas plus
  // the estimated in-flight work would breach the budget. Queue flavor
  // defers the decision to the scheduler (which can trim and split waves).
  if (cfg_.workspace_budget_bytes > 0 &&
      cfg_.over_budget == ServeConfig::OverBudget::Reject) {
    std::size_t inflight_est;
    {
      std::lock_guard lk(mu_);
      inflight_est = inflight_estimate_;
    }
    const std::size_t held = dev::Arena::aggregate_stats().held_bytes;
    if (held + inflight_est + req->ws_estimate > cfg_.workspace_budget_bytes) {
      req->resp.status = Status::Rejected;
      req->resp.error = "admission: workspace budget exceeded";
      {
        std::lock_guard lk(req->mu);
        req->done = true;
      }
      std::lock_guard lk(stats_mu_);
      ++stats_.rejected;
      ++stats_.admission_rejects;
      auto& t = tenants_[req->tenant];
      ++t.rejected;
      return Ticket(std::move(req));
    }
  }

  if (inline_) {
    execute_inline(req);
    return Ticket(std::move(req));
  }

  {
    std::unique_lock lk(mu_);
    // Backpressure: a full queue blocks the submitter until the scheduler
    // retires work. Tenants pushing an open-loop overload are slowed at
    // the door instead of ballooning the queue.
    cv_space_.wait(lk, [&] { return queued_ < cfg_.queue_capacity || stop_; });
    // f32 compresses always queue by wave key; with coalescing off,
    // pop_wave() caps their waves at one request (the ablation's shape).
    if (req->kind == Kind::CompressF32) {
      const WaveKey key{
          static_cast<unsigned>(std::bit_width(req->payload_bytes)),
          static_cast<int>(req->params.mode), req->params.value};
      compress_q_[key].push_back(req);
    } else {
      direct_q_.push_back(req);
    }
    ++queued_;
  }
  cv_work_.notify_one();
  return Ticket(std::move(req));
}

void Service::execute_inline(const ReqPtr& req) {
  req->dispatched = Clock::now();
  // Queue-flavor budget on the inline path: trim pooled pages before a
  // request that would breach the cap (there is nothing in flight to wait
  // for on a single-core host).
  if (cfg_.workspace_budget_bytes > 0 &&
      cfg_.over_budget == ServeConfig::OverBudget::Queue) {
    const std::size_t held = dev::Arena::aggregate_stats().held_bytes;
    if (held + req->ws_estimate > cfg_.workspace_budget_bytes) {
      dev::Arena::trim_all();
      std::lock_guard lk(stats_mu_);
      ++stats_.admission_deferrals;
    }
  }
  dev::Workspace ws(dev::Arena::instance());
  try {
    run_request_body(*req, ws);
  } catch (...) {
    req->resp.status = Status::Failed;
    req->resp.error = describe(std::current_exception());
  }
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.waves;
  }
  finish(req);
}

std::vector<Service::ReqPtr> Service::pop_wave() {
  // Caller holds mu_. Direct requests first (decompress/ROI/f64 — usually
  // cheaper and latency-sensitive), then the deepest compress class.
  std::vector<ReqPtr> wave;
  if (!direct_q_.empty()) {
    const std::size_t n = std::min(cfg_.max_wave, direct_q_.size());
    for (std::size_t i = 0; i < n; ++i) {
      wave.push_back(std::move(direct_q_.front()));
      direct_q_.pop_front();
    }
  } else {
    auto best = compress_q_.end();
    for (auto it = compress_q_.begin(); it != compress_q_.end(); ++it)
      if (best == compress_q_.end() || it->second.size() > best->second.size())
        best = it;
    if (best != compress_q_.end()) {
      const std::size_t limit = cfg_.coalesce ? cfg_.max_wave : 1;
      const std::size_t n = std::min(limit, best->second.size());
      for (std::size_t i = 0; i < n; ++i) {
        wave.push_back(std::move(best->second.front()));
        best->second.pop_front();
      }
      if (best->second.empty()) compress_q_.erase(best);
    }
  }
  queued_ -= wave.size();
  inflight_ += wave.size();
  for (const auto& r : wave) inflight_estimate_ += r->ws_estimate;
  {
    std::lock_guard lk(stats_mu_);
    stats_.peak_inflight_estimate =
        std::max(stats_.peak_inflight_estimate, inflight_estimate_);
  }
  return wave;
}

void Service::scheduler_loop() {
  for (;;) {
    std::vector<ReqPtr> wave;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return queued_ > 0 || stop_; });
      if (queued_ == 0 && stop_) return;
      wave = pop_wave();
    }
    cv_space_.notify_all();
    if (wave.empty()) continue;

    // Admission control, Queue flavor: when dispatching the wave would push
    // the pooled-arena footprint past the budget, first release idle pooled
    // pages (trim), then shrink the wave to what fits — held-back requests
    // go back to the queue head. A lone request always dispatches: holding
    // it with nothing in flight would starve the service.
    if (cfg_.workspace_budget_bytes > 0 &&
        cfg_.over_budget == ServeConfig::OverBudget::Queue) {
      std::size_t est = 0;
      for (const auto& r : wave) est += r->ws_estimate;
      std::size_t held = dev::Arena::aggregate_stats().held_bytes;
      if (held + est > cfg_.workspace_budget_bytes) {
        dev::Arena::trim_all();
        held = dev::Arena::aggregate_stats().held_bytes;
      }
      std::size_t deferred = 0;
      while (wave.size() > 1 && held + est > cfg_.workspace_budget_bytes) {
        ReqPtr back = std::move(wave.back());
        wave.pop_back();
        est -= back->ws_estimate;
        ++deferred;
        std::lock_guard lk(mu_);
        inflight_estimate_ -= back->ws_estimate;
        --inflight_;
        ++queued_;
        if (back->kind == Kind::CompressF32) {
          const WaveKey key{
              static_cast<unsigned>(std::bit_width(back->payload_bytes)),
              static_cast<int>(back->params.mode), back->params.value};
          compress_q_[key].push_front(std::move(back));
        } else {
          direct_q_.push_front(std::move(back));
        }
      }
      if (deferred > 0) {
        std::lock_guard lk(stats_mu_);
        stats_.admission_deferrals += deferred;
      }
    }

    const auto now = Clock::now();
    for (const auto& r : wave) r->dispatched = now;
    if (wave.front()->kind == Kind::CompressF32)
      run_compress_wave(wave);
    else
      run_direct_wave(wave);

    // Wave counters must land before drain() can wake: a caller reading
    // stats() right after drain() must see every retired wave.
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.waves;
      if (wave.size() > 1 && wave.front()->kind == Kind::CompressF32)
        stats_.coalesced += wave.size();
    }
    {
      std::lock_guard lk(mu_);
      for (const auto& r : wave) inflight_estimate_ -= r->ws_estimate;
      inflight_ -= wave.size();
    }
    cv_drain_.notify_all();
  }
}

void Service::run_compress_wave(const std::vector<ReqPtr>& wave) {
  std::vector<FieldView> views;
  views.reserve(wave.size());
  for (const auto& r : wave) views.push_back({r->f32, r->dims});
  // All wave members share params by construction of the wave key.
  auto items = cuszi_compress_many_checked(views, wave.front()->params);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (items[i].ok()) {
      wave[i]->resp.archive = std::move(items[i].bytes);
      wave[i]->resp.bytes_out = wave[i]->resp.archive.size();
    } else {
      wave[i]->resp.status = Status::Failed;
      wave[i]->resp.error = describe(items[i].error);
    }
    finish(wave[i]);
  }
}

void Service::run_direct_wave(const std::vector<ReqPtr>& wave) {
  // Mirror of the batch pipeline's stream fan-out: one in-order stream per
  // pool worker (capped by the wave), each with a Workspace over its own
  // arena shard. Exceptions are per-request — caught inside the task, so a
  // failing decode never poisons its stream's later requests.
  const std::size_t n = std::min<std::size_t>(
      wave.size(),
      std::max<std::size_t>(1, dev::ThreadPool::instance().worker_count()));
  std::deque<dev::Stream> ss(n);
  std::deque<dev::Workspace> wss;
  for (std::size_t s = 0; s < n; ++s) wss.emplace_back(dev::Arena::shard(s));
  for (std::size_t i = 0; i < wave.size(); ++i) {
    RequestState* req = wave[i].get();
    dev::Workspace& ws = wss[i % n];
    ss[i % n].submit([req, &ws] {
      try {
        run_request_body(*req, ws);
      } catch (...) {
        req->resp.status = Status::Failed;
        req->resp.error = describe(std::current_exception());
        ws.reset();
      }
    });
  }
  for (auto& s : ss) s.synchronize();
  for (const auto& r : wave) finish(r);
}

void Service::finish(const ReqPtr& req) {
  const auto now = Clock::now();
  req->resp.queue_seconds = seconds_between(req->submitted, req->dispatched);
  req->resp.service_seconds = seconds_between(req->dispatched, now);
  req->resp.total_seconds = seconds_between(req->submitted, now);
  account_finish(req);
  {
    std::lock_guard lk(req->mu);
    req->done = true;
  }
  req->cv.notify_all();
}

void Service::account_finish(const ReqPtr& req) {
  std::lock_guard lk(stats_mu_);
  ++stats_.completed;
  if (req->resp.status == Status::Failed) ++stats_.failed;
  auto& t = tenants_[req->tenant];
  ++t.requests;
  if (req->resp.status == Status::Failed) ++t.failed;
  t.bytes_in += req->resp.bytes_in;
  t.bytes_out += req->resp.bytes_out;
  t.busy_seconds += req->resp.service_seconds;
  t.queue_seconds += req->resp.queue_seconds;
}

void Service::drain() {
  if (inline_) return;
  std::unique_lock lk(mu_);
  cv_drain_.wait(lk, [&] { return queued_ == 0 && inflight_ == 0; });
}

ServiceStats Service::stats() const {
  std::lock_guard lk(stats_mu_);
  ServiceStats s = stats_;
  s.arena_high_water_bytes =
      dev::Arena::aggregate_stats().high_water_bytes;
  return s;
}

TenantStats Service::tenant_stats(const std::string& tenant) const {
  std::lock_guard lk(stats_mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second;
}

std::vector<std::pair<std::string, TenantStats>> Service::all_tenant_stats()
    const {
  std::lock_guard lk(stats_mu_);
  return {tenants_.begin(), tenants_.end()};
}

}  // namespace szi::serve
