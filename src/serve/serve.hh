// szi::serve — a batched multi-tenant compression service over the
// Stream/Arena substrate.
//
// The one-shot CLI and library entry points serve exactly one request at a
// time; a fleet-scale deployment sees thousands of concurrent
// compress/decompress/ROI requests for fields of wildly mixed sizes. What
// unlocks throughput there is not per-field micro-optimization but
// coarse-grained batching (cuSZ+, Tian et al. 2021): amortizing scheduling,
// keeping arena pages warm across requests of similar size, and running
// whole waves through the pipelined batch front end. The Service implements
// that shape on the host:
//
//   submit_*()  --> bounded queues (backpressure: submit blocks when full)
//                     | compress requests shard by size class + params
//                     | decompress/ROI requests queue separately
//   scheduler   --> coalesces same-class compress requests into
//                   compress_batch waves (cuszi_compress_many_checked);
//                   fans decompress/ROI waves across dev::Streams with
//                   per-shard Workspaces
//   admission   --> a wave is held (or a request rejected, per config)
//                   when the pooled-arena high-water would exceed the
//                   configured workspace budget
//
// Outputs are byte-identical to the direct Compressor/library calls — the
// scheduler only changes *when* work runs, never *what* runs (the worker-
// count determinism suite and bench/serve_load's golden pinning enforce
// this). On a single-core host the service degrades gracefully to inline
// execution: submit() runs the request synchronously on the caller's
// thread, no scheduler thread, no queues, same bytes.
//
// Failure isolation: one bad field fails only its own request
// (Status::Failed with the exception text); the rest of its wave completes
// normally via the checked batch API.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/compressor_iface.hh"
#include "device/dims.hh"

namespace szi::serve {

struct ServeConfig {
  /// Maximum compress requests coalesced into one compress_batch wave (and
  /// the decompress/ROI wave width). 1 disables wave formation.
  std::size_t max_wave = 8;

  /// Coalesce same-size-class compress requests into batch waves. Off, each
  /// request becomes its own single-field wave (the bench's uncoalesced
  /// ablation).
  bool coalesce = true;

  /// Total queued requests across all queues before submit() blocks — the
  /// backpressure bound that keeps an open-loop overload from ballooning
  /// memory. Must be >= 1.
  std::size_t queue_capacity = 1024;

  /// Workspace budget for admission control, in bytes; 0 = unlimited.
  /// Budgeted against the pooled arenas' held bytes (Arena::aggregate_stats
  /// held_bytes / high_water_bytes) plus the estimated footprint of
  /// in-flight waves.
  std::size_t workspace_budget_bytes = 0;

  /// Over-budget behavior. Queue: the scheduler holds the wave until
  /// in-flight work retires (a lone wave always dispatches — holding it
  /// with nothing in flight would starve). Reject: submit() fails the
  /// request immediately with Status::Rejected, never blocking on budget.
  enum class OverBudget { Queue, Reject };
  OverBudget over_budget = OverBudget::Queue;

  /// Execution mode. Auto picks Inline when the thread pool has one worker
  /// (single-core host: a scheduler thread would only add context switches
  /// and latency) and Scheduler otherwise.
  enum class Dispatch { Auto, Scheduler, Inline };
  Dispatch dispatch = Dispatch::Auto;
};

enum class Status : std::uint8_t { Ok, Rejected, Failed };

/// Completed request. Exactly one of archive/data is populated on Ok,
/// matching the request kind; `error` carries the exception text on Failed
/// and the rejection reason on Rejected.
struct Response {
  Status status = Status::Ok;
  std::string error;
  std::vector<std::byte> archive;  ///< compress output
  std::vector<float> data;         ///< f32 decompress/ROI output
  std::vector<double> data_f64;    ///< f64 decompress output
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  double queue_seconds = 0;    ///< submit -> wave dispatch
  double service_seconds = 0;  ///< wave dispatch -> completion
  double total_seconds = 0;    ///< submit -> completion
};

namespace detail {
struct RequestState;
}  // namespace detail

/// Future-like handle for a submitted request. Copyable; copies share the
/// completion state. Default-constructed tickets are empty (valid() false).
class Ticket {
 public:
  Ticket() = default;

  [[nodiscard]] bool valid() const { return st_ != nullptr; }

  /// Blocks until the request completes; returns the response (stable
  /// reference, alive as long as any ticket copy).
  const Response& wait() const;

  /// Non-blocking completion check.
  [[nodiscard]] bool ready() const;

 private:
  friend class Service;
  explicit Ticket(std::shared_ptr<detail::RequestState> st)
      : st_(std::move(st)) {}
  std::shared_ptr<detail::RequestState> st_;
};

/// Per-tenant accounting, returned by Service::tenant_stats().
struct TenantStats {
  std::uint64_t requests = 0;   ///< accepted (Ok + Failed)
  std::uint64_t rejected = 0;   ///< admission-rejected
  std::uint64_t failed = 0;     ///< completed with Status::Failed
  std::uint64_t bytes_in = 0;   ///< request payload bytes
  std::uint64_t bytes_out = 0;  ///< response payload bytes
  double busy_seconds = 0;      ///< summed service time
  double queue_seconds = 0;     ///< summed queue wait
};

/// Whole-service counters, returned by Service::stats().
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t waves = 0;      ///< batches dispatched
  std::uint64_t coalesced = 0;  ///< compress requests that shared a wave
  std::uint64_t admission_deferrals = 0;  ///< waves held for budget
  std::uint64_t admission_rejects = 0;    ///< requests rejected for budget
  std::size_t peak_inflight_estimate = 0;  ///< estimator bytes, peak
  /// Arena::aggregate_stats().high_water_bytes at the time of the call —
  /// the real peak workspace footprint behind the estimates.
  std::size_t arena_high_water_bytes = 0;
};

/// The service. One instance owns one scheduler thread (or none, inline
/// mode) and serves any number of concurrently submitting tenants.
///
/// Lifetime: request payloads (`data`, `archive` spans) are borrowed — the
/// caller must keep them alive until the request's ticket completes.
/// Destruction drains: every accepted request completes before the
/// destructor returns.
class Service {
 public:
  explicit Service(ServeConfig cfg = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Compress an f32 field to a cuSZ-i archive (byte-identical to
  /// cuszi_compress / Compressor::compress with the same params).
  [[nodiscard]] Ticket submit_compress(std::string tenant,
                                       std::span<const float> data,
                                       const dev::Dim3& dims,
                                       const CompressParams& params);

  /// Compress an f64 field. f64 requests are not coalesced (the batch
  /// front end is f32); they dispatch as single-request waves.
  [[nodiscard]] Ticket submit_compress_f64(std::string tenant,
                                           std::span<const double> data,
                                           const dev::Dim3& dims,
                                           const CompressParams& params);

  /// Decompress a cuSZ-i archive (SZI1/SZI2, raw or de-redundancy-wrapped
  /// — dispatched on the magic, like the CLI).
  [[nodiscard]] Ticket submit_decompress(std::string tenant,
                                         std::span<const std::byte> archive);
  [[nodiscard]] Ticket submit_decompress_f64(
      std::string tenant, std::span<const std::byte> archive);

  /// Random-access ROI decode of the box from a cuSZ-i archive.
  [[nodiscard]] Ticket submit_roi(std::string tenant,
                                  std::span<const std::byte> archive,
                                  const RoiBox& box);

  /// Blocks until every accepted request has completed.
  void drain();

  /// True when this instance executes requests inline (single-core host or
  /// Dispatch::Inline).
  [[nodiscard]] bool inline_mode() const { return inline_; }

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] TenantStats tenant_stats(const std::string& tenant) const;
  [[nodiscard]] std::vector<std::pair<std::string, TenantStats>>
  all_tenant_stats() const;

  /// Estimated transient workspace bytes a request pins while in service —
  /// what admission control budgets with. Deliberately conservative (the
  /// arenas round up to power-of-two buckets and pipelines hold several
  /// intermediates at once).
  [[nodiscard]] static std::size_t estimate_workspace_bytes(
      std::size_t payload_bytes);

 private:
  using ReqPtr = std::shared_ptr<detail::RequestState>;

  /// Compress coalescing key: same size class (log2 bucket of the raw
  /// payload) + identical params batch together.
  struct WaveKey {
    unsigned size_class;
    int mode;
    double value;
    auto operator<=>(const WaveKey&) const = default;
  };

  Ticket enqueue(ReqPtr req);
  void execute_inline(const ReqPtr& req);
  void scheduler_loop();
  /// Pops the next wave (same-key compress requests up to max_wave, or a
  /// batch of direct requests) under mu_. Empty when nothing is queued.
  std::vector<ReqPtr> pop_wave();
  void run_compress_wave(const std::vector<ReqPtr>& wave);
  void run_direct_wave(const std::vector<ReqPtr>& wave);
  void finish(const ReqPtr& req);
  void account_finish(const ReqPtr& req);

  ServeConfig cfg_;
  bool inline_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< scheduler: queues non-empty / stop
  std::condition_variable cv_space_;  ///< submitters: queue has capacity
  std::condition_variable cv_drain_;  ///< drain(): all work retired
  std::map<WaveKey, std::deque<ReqPtr>> compress_q_;
  std::deque<ReqPtr> direct_q_;  ///< decompress / ROI / f64 compress
  std::size_t queued_ = 0;
  std::size_t inflight_ = 0;           ///< requests dispatched, not finished
  std::size_t inflight_estimate_ = 0;  ///< estimator bytes in flight
  bool stop_ = false;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  std::map<std::string, TenantStats> tenants_;

  std::thread scheduler_;
};

}  // namespace szi::serve
