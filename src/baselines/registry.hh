// Factory for every compressor in the evaluation (§VII-A "Baselines"):
// cuSZ-i plus cuSZ, cuSZp, cuSZx, FZ-GPU, cuZFP, and the CPU references
// SZ3 and QoZ. Names match the paper's.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/compressor_iface.hh"

namespace szi::baselines {

/// "cusz-i", "cusz", "cuszp", "cuszx", "fz-gpu", "cuzfp", "sz3", "qoz".
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Compressor> make_compressor(
    const std::string& name);

/// The GPU compressors of TABLE III, in column order (no cuZFP: it has no
/// absolute-error-bound mode).
[[nodiscard]] const std::vector<std::string>& table3_compressors();

/// All GPU compressors (rate-distortion / throughput figures).
[[nodiscard]] const std::vector<std::string>& gpu_compressors();

}  // namespace szi::baselines
