#include "baselines/fzgpu.hh"

#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/launch.hh"
#include "lossless/bitshuffle.hh"
#include "lossless/rle.hh"
#include "metrics/stats.hh"
#include "predictor/lorenzo.hh"

namespace szi::baselines {

namespace {

constexpr std::uint32_t kMagic = 0x55505A46;  // "FZPU"

class FzGpu final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "FZ-GPU"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    core::Timer total;
    core::Timer stage;
    CompressResult r;

    const double eb = resolve_abs_eb(p, field.data, "FZ-GPU");

    constexpr int kRadius = quant::kDefaultRadius;
    const auto pred = predictor::lorenzo_compress(field.data, field.dims, eb,
                                                  kRadius);
    r.timings.predict = stage.lap();

    // Bitshuffle the biased codes, then remove all-zero units. Bias by
    // -radius first (xor-fold the sign) so the dominant zero code becomes
    // byte 0 rather than 0x0200.
    std::vector<std::uint16_t> folded(pred.codes.size());
    dev::launch_linear(
        folded.size(),
        [&](std::size_t i) {
          const int q = static_cast<int>(pred.codes[i]) - kRadius;
          // zigzag: 0,-1,1,-2,... -> 0,1,2,3,... (outlier marker maps to
          // radius's zigzag, which is fine: the marker info lives in the
          // outlier set indices).
          folded[i] = static_cast<std::uint16_t>(q >= 0 ? 2 * q : -2 * q - 1);
        },
        1 << 14);
    std::vector<std::uint8_t> shuffled(
        lossless::bitshuffle16_size(folded.size()));
    lossless::bitshuffle16(folded, shuffled);
    const auto packed = lossless::zero_rle_compress(
        {reinterpret_cast<const std::byte*>(shuffled.data()), shuffled.size()});
    r.timings.encode = stage.lap();

    core::ByteWriter w;
    w.put(kMagic);
    w.put(static_cast<std::uint64_t>(field.dims.x));
    w.put(static_cast<std::uint64_t>(field.dims.y));
    w.put(static_cast<std::uint64_t>(field.dims.z));
    w.put(eb);
    w.put(static_cast<std::uint16_t>(kRadius));
    w.put_blob(pred.outliers.serialize());
    w.put_blob(packed);
    r.bytes = w.take();
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader rd(bytes, "fz-gpu");
    rd.expect_magic(kMagic);
    dev::Dim3 dims;
    dims.x = rd.read<std::uint64_t>();
    dims.y = rd.read<std::uint64_t>();
    dims.z = rd.read<std::uint64_t>();
    const std::size_t n =
        core::checked_volume("fz-gpu", rd.offset(), dims.x, dims.y, dims.z);
    (void)rd.checked_array_bytes(n, sizeof(std::uint16_t));
    const auto eb = rd.read<double>();
    const auto radius = rd.read<std::uint16_t>();
    std::size_t consumed = 0;
    const auto outliers =
        quant::OutlierSet::deserialize(rd.read_length_prefixed(), &consumed);
    // The indices are scattered into `codes` below, so check them first.
    outliers.check_bounds(n, "fz-gpu");
    const auto packed = rd.read_length_prefixed();

    const auto shuffled_bytes = lossless::zero_rle_decompress(packed);
    if (shuffled_bytes.size() != lossless::bitshuffle16_size(n))
      rd.fail("payload size mismatch");
    std::vector<std::uint16_t> folded(n);
    lossless::bitunshuffle16(
        {reinterpret_cast<const std::uint8_t*>(shuffled_bytes.data()),
         shuffled_bytes.size()},
        folded);
    std::vector<quant::Code> codes(n);
    dev::launch_linear(
        n,
        [&](std::size_t i) {
          const std::uint16_t u = folded[i];
          const int q = (u & 1) ? -static_cast<int>(u + 1) / 2
                                : static_cast<int>(u) / 2;
          codes[i] = static_cast<quant::Code>(q + radius);
        },
        1 << 14);
    // Restore the outlier markers (their zigzag slot was a placeholder).
    dev::launch_linear(
        outliers.count(),
        [&](std::size_t k) {
          codes[outliers.indices[k]] = quant::kOutlierMarker;
        },
        1 << 12);
    auto out = predictor::lorenzo_decompress(codes, outliers, dims, eb, radius);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_fzgpu() { return std::make_unique<FzGpu>(); }

}  // namespace szi::baselines
