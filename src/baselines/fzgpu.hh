// FZ-GPU baseline [19]: Lorenzo dual-quant prediction, then the lossless
// encoding stage is replaced wholesale by bitshuffle + zero-block dictionary
// removal — trading ratio for throughput (§II).
#pragma once

#include <memory>

#include "core/compressor_iface.hh"

namespace szi::baselines {

[[nodiscard]] std::unique_ptr<Compressor> make_fzgpu();

}  // namespace szi::baselines
