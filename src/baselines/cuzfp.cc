#include "baselines/cuzfp.hh"

#include <stdexcept>

#include "baselines/zfp_codec.hh"
#include "core/timer.hh"

namespace szi::baselines {

namespace {

class CuZfp final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "cuZFP"; }
  [[nodiscard]] bool supports_error_bound() const override { return false; }
  [[nodiscard]] bool supports_fixed_rate() const override { return true; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    if (p.mode != ErrorMode::FixedRate)
      throw std::invalid_argument(
          "cuZFP: only fixed-rate mode is supported (no absolute error "
          "bound; see TABLE III note)");
    core::Timer total;
    CompressResult r;
    r.bytes = zfp::compress(field.data, field.dims, p.value);
    r.timings.encode = r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    auto out = zfp::decompress(bytes);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_cuzfp() { return std::make_unique<CuZfp>(); }

}  // namespace szi::baselines
