#include "baselines/sz3.hh"

#include <algorithm>
#include <stdexcept>

#include "baselines/cpu_interp.hh"
#include "core/bytes.hh"
#include "core/timer.hh"
#include "huffman/huffman.hh"
#include "lossless/lzss.hh"
#include "metrics/stats.hh"
#include "predictor/autotune.hh"

namespace szi::baselines {

namespace {

constexpr std::uint32_t kMagic = 0x4C335A53;  // "SZ3L"

class CpuSz final : public Compressor {
 public:
  explicit CpuSz(bool qoz) : qoz_(qoz) {}

  [[nodiscard]] std::string name() const override {
    return qoz_ ? "QoZ" : "SZ3";
  }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    core::Timer total;
    core::Timer stage;
    CompressResult r;

    const double range = metrics::value_range(field.data);
    const double eb = resolve_abs_eb(p, field.data, name());

    CpuInterpParams ip;
    const std::size_t max_dim =
        std::max({field.dims.x, field.dims.y, field.dims.z});
    if (qoz_) {
      // QoZ: dense anchors every 64 points, level-wise eb, tuned splines.
      ip.anchor_stride = std::min<std::size_t>(64, pow2_at_least(max_dim));
      const auto prof = predictor::autotune(field.data, field.dims, eb);
      ip.config = prof.config;
      ip.alpha = predictor::alpha_of_epsilon(range > 0 ? eb / range : 1.0);
    } else {
      // SZ3: one stored point (top stride covers the grid), constant eb.
      ip.anchor_stride = pow2_at_least(max_dim);
      ip.alpha = 1.0;
    }
    r.timings.predict += stage.lap();

    const auto pred = cpu_interp_compress(field.data, field.dims, eb, ip);
    r.timings.predict += stage.lap();
    const auto huff =
        huffman::encode(pred.codes, 2 * static_cast<std::size_t>(ip.radius));
    r.timings.encode += stage.lap();

    core::ByteWriter inner;
    inner.put(static_cast<std::uint64_t>(field.dims.x));
    inner.put(static_cast<std::uint64_t>(field.dims.y));
    inner.put(static_cast<std::uint64_t>(field.dims.z));
    inner.put(eb);
    inner.put(static_cast<std::uint64_t>(ip.anchor_stride));
    inner.put(ip.alpha);
    inner.put(static_cast<std::uint32_t>(ip.radius));
    for (int i = 0; i < 3; ++i) {
      inner.put(static_cast<std::uint8_t>(
          ip.config.cubic[static_cast<std::size_t>(i)]));
      inner.put(ip.config.dim_order[static_cast<std::size_t>(i)]);
    }
    inner.put_vector(pred.anchors);
    inner.put_blob(pred.outliers.serialize());
    inner.put_blob(huff);

    // The Zstd-equivalent stage: CPU SZ always de-redundifies its archive.
    core::ByteWriter w;
    w.put(kMagic);
    w.put_blob(lossless::lzss_compress(inner.take()));
    r.bytes = w.take();
    r.timings.encode += stage.lap();
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader outer(bytes, "sz3");
    outer.expect_magic(kMagic);
    const auto inner_bytes = lossless::lzss_decompress(outer.read_length_prefixed());
    core::ByteReader rd(inner_bytes, "sz3");
    dev::Dim3 dims;
    dims.x = rd.read<std::uint64_t>();
    dims.y = rd.read<std::uint64_t>();
    dims.z = rd.read<std::uint64_t>();
    const std::size_t n =
        core::checked_volume("sz3", rd.offset(), dims.x, dims.y, dims.z);
    (void)rd.checked_array_bytes(n, sizeof(float));
    const auto eb = rd.read<double>();
    CpuInterpParams ip;
    ip.anchor_stride = rd.read<std::uint64_t>();
    ip.alpha = rd.read<double>();
    const auto radius = rd.read<std::uint32_t>();
    if (radius == 0 || radius > 1u << 15) rd.fail("radius out of range");
    ip.radius = static_cast<int>(radius);
    for (int i = 0; i < 3; ++i) {
      const auto cubic = rd.read<std::uint8_t>();
      if (cubic > static_cast<std::uint8_t>(predictor::CubicKind::Natural))
        rd.fail("unknown cubic kind");
      ip.config.cubic[static_cast<std::size_t>(i)] =
          static_cast<predictor::CubicKind>(cubic);
      const auto order = rd.read<std::uint8_t>();
      if (order > 2) rd.fail("interpolation dim order out of range");
      ip.config.dim_order[static_cast<std::size_t>(i)] = order;
    }
    const auto anchors = rd.read_length_prefixed_array<float>();
    std::size_t consumed = 0;
    const auto outliers =
        quant::OutlierSet::deserialize(rd.read_length_prefixed(), &consumed);
    const auto codes = huffman::decode(rd.read_length_prefixed());
    if (codes.size() != n) rd.fail("code count mismatch");
    // cpu_interp_decompress validates the anchor stride, anchor count, and
    // outlier indices against dims.
    auto out =
        cpu_interp_decompress(codes, anchors, outliers, dims, eb, ip);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

 private:
  bool qoz_;
};

}  // namespace

std::unique_ptr<Compressor> make_sz3() { return std::make_unique<CpuSz>(false); }
std::unique_ptr<Compressor> make_qoz() { return std::make_unique<CpuSz>(true); }

}  // namespace szi::baselines
