#include "baselines/cuszx.hh"

#include <cmath>
#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/launch.hh"
#include "metrics/stats.hh"

namespace szi::baselines {

namespace {

constexpr std::uint32_t kMagic = 0x585A5543;  // "CUZX"
constexpr std::size_t kBlock = 128;

/// Per-block descriptor: k = 0 flags a constant block (base is the midpoint,
/// step unused); otherwise values decode as base + u * step with u packed at
/// k bits.
struct BlockMeta {
  float base;
  float step;
  std::uint8_t k;
};

class CuSzx final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "cuSZx"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    core::Timer total;
    core::Timer stage;
    CompressResult r;

    const double eb = resolve_abs_eb(p, field.data, "cuSZx");

    const std::size_t n = field.size();
    const std::size_t nblocks = dev::ceil_div(n, kBlock);

    std::vector<BlockMeta> meta(nblocks);
    std::vector<std::vector<std::uint8_t>> payloads(nblocks);
    dev::launch_linear(
        nblocks,
        [&](std::size_t b) {
          const std::size_t begin = b * kBlock;
          const std::size_t end = std::min(begin + kBlock, n);
          float lo = field.data[begin], hi = field.data[begin];
          for (std::size_t i = begin + 1; i < end; ++i) {
            lo = std::min(lo, field.data[i]);
            hi = std::max(hi, field.data[i]);
          }
          const double range = static_cast<double>(hi) - lo;
          if (range <= 2.0 * eb) {  // constant block: midpoint is within eb
            meta[b] = {static_cast<float>(0.5 * (static_cast<double>(lo) + hi)),
                       0.0f, 0};
            return;
          }
          // Smallest k with range/2^k <= eb: quantizing offsets to that step
          // (with rounding, error <= step/2) plus float rounding of base+u*step
          // stays within eb.
          unsigned k = 1;
          while ((range / static_cast<double>(1ULL << k)) > eb && k < 40) ++k;
          const double step = range / static_cast<double>(1ULL << k);
          meta[b] = {lo, static_cast<float>(step), static_cast<std::uint8_t>(k)};
          auto& out = payloads[b];
          out.reserve(((end - begin) * k + 7) / 8);
          const double inv_step = 1.0 / static_cast<double>(meta[b].step);
          // Word-wise packer (k <= 40, <8 pending bits => no overflow).
          std::uint64_t acc = 0;
          unsigned nbits = 0;
          for (std::size_t i = begin; i < end; ++i) {
            auto u = static_cast<std::uint64_t>(std::llround(
                (static_cast<double>(field.data[i]) - lo) * inv_step));
            if (u >= (1ULL << k)) u = (1ULL << k) - 1;
            acc |= u << nbits;
            nbits += k;
            while (nbits >= 8) {
              out.push_back(static_cast<std::uint8_t>(acc));
              acc >>= 8;
              nbits -= 8;
            }
          }
          if (nbits > 0) out.push_back(static_cast<std::uint8_t>(acc));
        },
        1 << 6);
    r.timings.predict = stage.lap();

    core::ByteWriter w;
    w.put(kMagic);
    w.put(static_cast<std::uint64_t>(field.dims.x));
    w.put(static_cast<std::uint64_t>(field.dims.y));
    w.put(static_cast<std::uint64_t>(field.dims.z));
    w.put(eb);
    // Field-by-field: BlockMeta has padding that must not leak into archives.
    for (const auto& m : meta) {
      w.put(m.base);
      w.put(m.step);
      w.put(m.k);
    }
    r.bytes = w.take();
    for (std::size_t b = 0; b < nblocks; ++b)
      r.bytes.insert(r.bytes.end(),
                     reinterpret_cast<const std::byte*>(payloads[b].data()),
                     reinterpret_cast<const std::byte*>(payloads[b].data()) +
                         payloads[b].size());
    r.timings.encode = stage.lap();
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader rd(bytes, "cuszx");
    rd.expect_magic(kMagic);
    dev::Dim3 dims;
    dims.x = rd.read<std::uint64_t>();
    dims.y = rd.read<std::uint64_t>();
    dims.z = rd.read<std::uint64_t>();
    const std::size_t n =
        core::checked_volume("cuszx", rd.offset(), dims.x, dims.y, dims.z);
    (void)rd.checked_array_bytes(n, sizeof(float));
    (void)rd.read<double>();  // eb: informational
    const std::size_t nblocks = dev::ceil_div(n, kBlock);

    std::vector<BlockMeta> meta(nblocks);
    for (auto& m : meta) {
      m.base = rd.read<float>();
      m.step = rd.read<float>();
      m.k = rd.read<std::uint8_t>();
      // The encoder caps k at 40; a wider k would shift the unpack
      // accumulator by >= 64 (undefined behavior).
      if (m.k > 40) rd.fail("block bit width out of range");
    }
    std::vector<std::uint64_t> offsets(nblocks);
    std::uint64_t off = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      offsets[b] = off;
      const std::size_t len = std::min(kBlock, n - b * kBlock);
      off += (len * meta[b].k + 7) / 8;
    }
    if (rd.remaining() < off) rd.fail("truncated payload");
    const auto* payload =
        reinterpret_cast<const std::uint8_t*>(rd.rest().data());

    std::vector<float> out(n);
    dev::launch_linear(
        nblocks,
        [&](std::size_t b) {
          const std::size_t begin = b * kBlock;
          const std::size_t end = std::min(begin + kBlock, n);
          const BlockMeta& m = meta[b];
          if (m.k == 0) {
            for (std::size_t i = begin; i < end; ++i) out[i] = m.base;
            return;
          }
          const std::uint8_t* in = payload + offsets[b];
          const std::uint64_t mask =
              (m.k < 64 ? (1ULL << m.k) : 0ULL) - 1;
          std::uint64_t acc = 0;
          unsigned nbits = 0;
          std::size_t ip = 0;
          for (std::size_t i = begin; i < end; ++i) {
            while (nbits < m.k) {
              acc |= static_cast<std::uint64_t>(in[ip++]) << nbits;
              nbits += 8;
            }
            const std::uint64_t u = acc & mask;
            acc >>= m.k;
            nbits -= m.k;
            out[i] = static_cast<float>(
                static_cast<double>(m.base) +
                static_cast<double>(u) * static_cast<double>(m.step));
          }
        },
        1 << 6);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_cuszx() { return std::make_unique<CuSzx>(); }

}  // namespace szi::baselines
