#include "baselines/registry.hh"

#include <stdexcept>

#include "baselines/cusz.hh"
#include "baselines/cuszp.hh"
#include "baselines/cuszx.hh"
#include "baselines/cuzfp.hh"
#include "baselines/fzgpu.hh"
#include "baselines/sz3.hh"
#include "core/cuszi.hh"

namespace szi::baselines {

std::unique_ptr<Compressor> make_compressor(const std::string& name) {
  if (name == "cusz-i") return make_cuszi();
  if (name == "cusz") return make_cusz();
  if (name == "cuszp") return make_cuszp();
  if (name == "cuszx") return make_cuszx();
  if (name == "fz-gpu") return make_fzgpu();
  if (name == "cuzfp") return make_cuzfp();
  if (name == "sz3") return make_sz3();
  if (name == "qoz") return make_qoz();
  throw std::invalid_argument("unknown compressor: " + name);
}

const std::vector<std::string>& table3_compressors() {
  static const std::vector<std::string> names = {"cusz", "cuszp", "cuszx",
                                                 "fz-gpu", "cusz-i"};
  return names;
}

const std::vector<std::string>& gpu_compressors() {
  static const std::vector<std::string> names = {
      "cusz", "cuszp", "cuszx", "fz-gpu", "cuzfp", "cusz-i"};
  return names;
}

}  // namespace szi::baselines
