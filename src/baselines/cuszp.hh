// cuSZp baseline [20]: prediction-quantization and 1D blockwise fixed-length
// encoding fused into one monolithic kernel (§II). Per 32-element block, the
// zigzag-folded 1D Lorenzo residuals are packed at the block's maximum
// significant bit width; all-zero blocks cost one header byte.
#pragma once

#include <memory>

#include "core/compressor_iface.hh"

namespace szi::baselines {

[[nodiscard]] std::unique_ptr<Compressor> make_cuszp();

}  // namespace szi::baselines
