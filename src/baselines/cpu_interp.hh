// CPU interpolation predictor — the SZ3 [4] / QoZ [7] reference designs the
// paper compares against (Fig. 5, Fig. 6, Fig. 7's QoZ curve).
//
// Unlike G-Interp, interpolation runs over the *global* grid (no tiles), so
// cubic stencils almost always have all four neighbors — the reason the
// paper's §VII-C.2 finds CPU-QoZ still ahead of cuSZ-i in ratio ("larger
// interpolation blocks"). SZ3 uses a single error bound across levels and a
// sparse anchor set (stride >= the whole grid: only the origin); QoZ adds a
// dense anchor grid and the level-wise eb reduction + auto-tuning that
// G-Interp inherited.
#pragma once

#include <span>
#include <vector>

#include "device/dims.hh"
#include "predictor/interp_config.hh"
#include "quant/outlier.hh"
#include "quant/quantizer.hh"

namespace szi::baselines {

struct CpuInterpParams {
  std::size_t anchor_stride;  ///< power of two; >= max dim collapses to origin
  double alpha;               ///< 1.0 = constant eb across levels (SZ3)
  predictor::InterpConfig config;
  int radius = 32768;  ///< SZ-style 65536-entry dictionary
};

struct CpuInterpOutput {
  std::vector<quant::Code> codes;
  std::vector<float> anchors;
  quant::OutlierSet outliers;
};

[[nodiscard]] CpuInterpOutput cpu_interp_compress(std::span<const float> data,
                                                  const dev::Dim3& dims,
                                                  double eb,
                                                  const CpuInterpParams& p);

[[nodiscard]] std::vector<float> cpu_interp_decompress(
    std::span<const quant::Code> codes, std::span<const float> anchors,
    const quant::OutlierSet& outliers, const dev::Dim3& dims, double eb,
    const CpuInterpParams& p);

/// Smallest power of two >= n (the SZ3 top-level stride rule).
[[nodiscard]] std::size_t pow2_at_least(std::size_t n);

}  // namespace szi::baselines
