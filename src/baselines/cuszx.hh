// cuSZx baseline [18]: the SZx ultra-fast monolithic design. Each
// 128-element block is either "constant" (its value range fits inside 2eb:
// store the midpoint only) or "nonconstant" (store a base value plus
// fixed-point offsets truncated to exactly the bits the error bound
// requires). Maximum throughput, lowest ratio/quality of the baselines (§II).
#pragma once

#include <memory>

#include "core/compressor_iface.hh"

namespace szi::baselines {

[[nodiscard]] std::unique_ptr<Compressor> make_cuszx();

}  // namespace szi::baselines
