#include "baselines/cpu_interp.hh"

#include <array>
#include <stdexcept>

#include "core/bytes.hh"
#include "predictor/anchor.hh"
#include "predictor/spline.hh"

namespace szi::baselines {

namespace {

std::size_t dim_of(const dev::Dim3& d, int i) {
  return i == 0 ? d.x : (i == 1 ? d.y : d.z);
}

/// One (stride, dim) pass over the whole grid. `work` holds reconstructed
/// values for already-processed points (and originals for pending ones
/// during compression).
template <bool kCompress>
void global_pass(std::span<float> work, std::span<const float> original,
                 const dev::Dim3& dims, int d, std::size_t s,
                 const std::array<bool, 3>& done, const quant::Quantizer& qz,
                 predictor::CubicKind kind, std::span<quant::Code> codes,
                 std::span<const quant::Code> codes_in) {
  std::array<std::size_t, 3> start{0, 0, 0}, step{1, 1, 1};
  for (int i = 0; i < 3; ++i) step[i] = done[static_cast<std::size_t>(i)] ? s : 2 * s;
  start[static_cast<std::size_t>(d)] = s;
  step[static_cast<std::size_t>(d)] = 2 * s;

  const std::array<std::size_t, 3> stride{1, dims.x, dims.x * dims.y};
  const std::size_t ls = stride[static_cast<std::size_t>(d)];
  const std::size_t nd = dim_of(dims, d);

  for (std::size_t z = start[2]; z < dims.z; z += step[2])
    for (std::size_t y = start[1]; y < dims.y; y += step[1])
      for (std::size_t x = start[0]; x < dims.x; x += step[0]) {
        const std::size_t idx = dev::linearize(dims, x, y, z);
        const std::array<std::size_t, 3> c{x, y, z};
        const std::size_t cd = c[static_cast<std::size_t>(d)];
        const bool hb = cd >= s;
        const bool hc = cd + s < nd;
        const bool ha = cd >= 3 * s;
        const bool hd = cd + 3 * s < nd;
        const float a = ha ? work[idx - 3 * s * ls] : 0.0f;
        const float b = hb ? work[idx - s * ls] : 0.0f;
        const float cc = hc ? work[idx + s * ls] : 0.0f;
        const float dd = hd ? work[idx + 3 * s * ls] : 0.0f;
        const float pred =
            predictor::spline_predict(ha, a, hb, b, hc, cc, hd, dd, kind);
        if constexpr (kCompress) {
          const auto r = qz.quantize(original[idx], pred);
          work[idx] = r.recon;
          codes[idx] = r.stored;
        } else {
          work[idx] = qz.dequantize(codes_in[idx], pred, work[idx]);
        }
      }
}

template <bool kCompress>
void run_levels(std::span<float> work, std::span<const float> original,
                const dev::Dim3& dims, double eb, const CpuInterpParams& p,
                std::span<quant::Code> codes,
                std::span<const quant::Code> codes_in) {
  for (std::size_t s = p.anchor_stride / 2; s >= 1; s >>= 1) {
    const quant::Quantizer qz(
        predictor::level_eb(eb, p.alpha, predictor::level_of_stride(s)),
        p.radius);
    std::array<bool, 3> done{false, false, false};
    for (int k = 0; k < 3; ++k) {
      const int d = p.config.dim_order[static_cast<std::size_t>(k)];
      if (dim_of(dims, d) == 1) continue;
      global_pass<kCompress>(work, original, dims, d, s, done, qz,
                             p.config.cubic[static_cast<std::size_t>(d)], codes,
                             codes_in);
      done[static_cast<std::size_t>(d)] = true;
    }
  }
}

dev::Dim3 anchor_stride_dims(const CpuInterpParams& p) {
  return {p.anchor_stride, p.anchor_stride, p.anchor_stride};
}

}  // namespace

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

CpuInterpOutput cpu_interp_compress(std::span<const float> data,
                                    const dev::Dim3& dims, double eb,
                                    const CpuInterpParams& p) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("cpu_interp: size/dims mismatch");
  if (eb <= 0 || p.anchor_stride < 2 ||
      (p.anchor_stride & (p.anchor_stride - 1)) != 0)
    throw std::invalid_argument("cpu_interp: bad parameters");

  CpuInterpOutput out;
  out.anchors =
      predictor::gather_anchors(data, dims, anchor_stride_dims(p));
  out.codes.assign(data.size(), static_cast<quant::Code>(p.radius));
  std::vector<float> work(data.begin(), data.end());
  run_levels<true>(work, data, dims, eb, p, out.codes, {});
  out.outliers = quant::OutlierSet::gather(out.codes, data);
  return out;
}

std::vector<float> cpu_interp_decompress(std::span<const quant::Code> codes,
                                         std::span<const float> anchors,
                                         const quant::OutlierSet& outliers,
                                         const dev::Dim3& dims, double eb,
                                         const CpuInterpParams& p) {
  if (codes.size() != dims.volume())
    throw std::invalid_argument("cpu_interp: size/dims mismatch");
  // All of these come from archive bytes on the decode path: a bad stride
  // div-by-zeroes the anchor grid, a short anchor array reads out of
  // bounds, and unchecked outlier indices write out of bounds.
  if (p.anchor_stride < 2 ||
      (p.anchor_stride & (p.anchor_stride - 1)) != 0)
    throw core::CorruptArchive("cpu-interp", 0, "bad anchor stride");
  if (anchors.size() !=
      predictor::anchor_dims(dims, anchor_stride_dims(p)).volume())
    throw core::CorruptArchive("cpu-interp", 0, "anchor count mismatch");
  outliers.check_bounds(dims.volume(), "cpu-interp");
  std::vector<float> work(dims.volume(), 0.0f);
  predictor::scatter_anchors<float>(anchors, work, dims, anchor_stride_dims(p));
  outliers.scatter(work);
  run_levels<false>(work, {}, dims, eb, p, {}, codes);
  return work;
}

}  // namespace szi::baselines
