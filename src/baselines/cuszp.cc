#include "baselines/cuszp.hh"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/launch.hh"
#include "device/scan.hh"
#include "metrics/stats.hh"

namespace szi::baselines {

namespace {

constexpr std::uint32_t kMagic = 0x505A5543;  // "CUZP"
constexpr std::size_t kBlock = 32;

/// Bits needed for an unsigned value (0 -> 0 bits).
unsigned bits_for(std::uint64_t v) {
  return v == 0 ? 0u : static_cast<unsigned>(64 - std::countl_zero(v));
}

class CuSzp final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "cuSZp"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    core::Timer total;
    core::Timer stage;
    CompressResult r;

    const double eb = resolve_abs_eb(p, field.data, "cuSZp");

    const std::size_t n = field.size();
    // Pre-quantization to the 2eb lattice, then global 1D Lorenzo deltas,
    // zigzag-folded to unsigned.
    std::vector<std::int64_t> d(n);
    const double inv = 1.0 / (2.0 * eb);
    dev::launch_linear(
        n,
        [&](std::size_t i) {
          d[i] = static_cast<std::int64_t>(
              std::llround(static_cast<double>(field.data[i]) * inv));
        },
        1 << 14);
    std::vector<std::uint64_t> folded(n);
    dev::launch_linear(
        n,
        [&](std::size_t i) {
          const std::int64_t q = d[i] - (i == 0 ? 0 : d[i - 1]);
          folded[i] = q >= 0 ? static_cast<std::uint64_t>(q) << 1
                             : (static_cast<std::uint64_t>(-q) << 1) - 1;
        },
        1 << 14);
    r.timings.predict = stage.lap();

    // Per-block bit widths, offsets via scan, then parallel packing.
    const std::size_t nblocks = dev::ceil_div(n, kBlock);
    std::vector<std::uint8_t> widths(nblocks);
    std::vector<std::uint64_t> block_bytes(nblocks);
    dev::launch_linear(
        nblocks,
        [&](std::size_t b) {
          const std::size_t begin = b * kBlock;
          const std::size_t end = std::min(begin + kBlock, n);
          std::uint64_t maxv = 0;
          for (std::size_t i = begin; i < end; ++i)
            maxv = std::max(maxv, folded[i]);
          const unsigned w = bits_for(maxv);
          // The byte-wise packer keeps < 8 pending bits between values, so
          // widths up to 56 are exact; larger residuals would need an eb far
          // below float precision to arise.
          if (w > 56) throw std::runtime_error("cuSZp: residual too wide");
          widths[b] = static_cast<std::uint8_t>(w);
          block_bytes[b] = (w * (end - begin) + 7) / 8;
        },
        1 << 8);
    std::vector<std::uint64_t> offsets(nblocks);
    const std::uint64_t payload_bytes =
        dev::exclusive_scan<std::uint64_t>(block_bytes, offsets);

    core::ByteWriter w;
    w.put(kMagic);
    w.put(static_cast<std::uint64_t>(field.dims.x));
    w.put(static_cast<std::uint64_t>(field.dims.y));
    w.put(static_cast<std::uint64_t>(field.dims.z));
    w.put(eb);
    w.put_vector(widths);
    w.put(payload_bytes);
    auto head = w.take();
    const std::size_t payload_pos = head.size();
    head.resize(head.size() + payload_bytes);
    auto* payload = reinterpret_cast<std::uint8_t*>(head.data() + payload_pos);

    dev::launch_linear(
        nblocks,
        [&](std::size_t b) {
          const std::size_t begin = b * kBlock;
          const std::size_t end = std::min(begin + kBlock, n);
          const unsigned width = widths[b];
          if (width == 0) return;
          std::uint8_t* out = payload + offsets[b];
          std::uint64_t acc = 0;
          unsigned nbits = 0;
          std::size_t op = 0;
          for (std::size_t i = begin; i < end; ++i) {
            acc |= (folded[i] & ((width < 64 ? (1ULL << width) : 0ULL) - 1))
                   << nbits;
            nbits += width;
            while (nbits >= 8) {
              out[op++] = static_cast<std::uint8_t>(acc);
              acc >>= 8;
              nbits -= 8;
            }
          }
          if (nbits > 0) out[op] = static_cast<std::uint8_t>(acc);
        },
        1 << 8);
    r.timings.encode = stage.lap();
    r.bytes = std::move(head);
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader rd(bytes, "cuszp");
    rd.expect_magic(kMagic);
    dev::Dim3 dims;
    dims.x = rd.read<std::uint64_t>();
    dims.y = rd.read<std::uint64_t>();
    dims.z = rd.read<std::uint64_t>();
    const std::size_t n =
        core::checked_volume("cuszp", rd.offset(), dims.x, dims.y, dims.z);
    (void)rd.checked_array_bytes(n, sizeof(std::int64_t));
    const auto eb = rd.read<double>();
    const auto widths = rd.read_length_prefixed_array<std::uint8_t>();
    const auto payload_bytes = rd.read<std::uint64_t>();
    const std::size_t nblocks = dev::ceil_div(n, kBlock);
    if (widths.size() != nblocks) rd.fail("width table mismatch");
    // The encoder never emits widths above 56 (the byte-wise packer's
    // limit); anything wider would shift the unpack accumulator by >= 64,
    // which is undefined.
    for (std::size_t b = 0; b < nblocks; ++b)
      if (widths[b] > 56) rd.fail("block bit width out of range");
    if (rd.remaining() < payload_bytes) rd.fail("truncated payload");
    const auto* payload =
        reinterpret_cast<const std::uint8_t*>(rd.rest().data());

    // Rebuild offsets from widths, unpack blocks in parallel.
    std::vector<std::uint64_t> offsets(nblocks);
    std::uint64_t off = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      offsets[b] = off;
      const std::size_t len = std::min(kBlock, n - b * kBlock);
      off += (static_cast<std::uint64_t>(widths[b]) * len + 7) / 8;
    }
    if (off != payload_bytes) rd.fail("offset/payload mismatch");

    std::vector<std::int64_t> q(n);
    dev::launch_linear(
        nblocks,
        [&](std::size_t b) {
          const std::size_t begin = b * kBlock;
          const std::size_t end = std::min(begin + kBlock, n);
          const unsigned width = widths[b];
          if (width == 0) {
            for (std::size_t i = begin; i < end; ++i) q[i] = 0;
            return;
          }
          const std::uint8_t* in = payload + offsets[b];
          std::uint64_t acc = 0;
          unsigned nbits = 0;
          std::size_t ip = 0;
          for (std::size_t i = begin; i < end; ++i) {
            while (nbits < width) {
              acc |= static_cast<std::uint64_t>(in[ip++]) << nbits;
              nbits += 8;
            }
            const std::uint64_t u =
                acc & ((width < 64 ? (1ULL << width) : 0ULL) - 1);
            acc >>= width;
            nbits -= width;
            q[i] = (u & 1) ? -static_cast<std::int64_t>((u + 1) >> 1)
                           : static_cast<std::int64_t>(u >> 1);
          }
        },
        1 << 8);

    // 1D prefix sum rebuilds the lattice (serial: global chain).
    for (std::size_t i = 1; i < n; ++i) q[i] += q[i - 1];
    std::vector<float> out(n);
    const double twice_eb = 2.0 * eb;
    dev::launch_linear(
        n,
        [&](std::size_t i) {
          out[i] = static_cast<float>(twice_eb * static_cast<double>(q[i]));
        },
        1 << 14);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_cuszp() { return std::make_unique<CuSzp>(); }

}  // namespace szi::baselines
