// Fixed-rate ZFP codec [23] — the algorithm behind the cuZFP baseline [21].
//
// Per 4^d block: block-floating-point normalization (common exponent),
// the ZFP non-orthogonal decorrelating integer lifting transform along each
// dimension, total-sequency coefficient reordering, negabinary mapping, and
// embedded group-tested bit-plane coding truncated at the per-block bit
// budget (rate * 4^d bits, byte-aligned so blocks stay independently
// addressable, as in CUDA zfp). Fixed rate means no error bound — the
// reason cuZFP is absent from the paper's TABLE III.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "device/dims.hh"

namespace szi::baselines::zfp {

/// Compresses at `rate` bits per value (clamped to [0.5, 32]).
[[nodiscard]] std::vector<std::byte> compress(std::span<const float> data,
                                              const dev::Dim3& dims,
                                              double rate);

[[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes);

}  // namespace szi::baselines::zfp
