#include "baselines/cusz.hh"

#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "metrics/stats.hh"
#include "predictor/lorenzo.hh"

namespace szi::baselines {

namespace {

constexpr std::uint32_t kMagic = 0x5A535543;  // "CUSZ"

class Cusz final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "cuSZ"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    core::Timer total;
    core::Timer stage;
    CompressResult r;

    const double eb = resolve_abs_eb(p, field.data, "cuSZ");

    constexpr int kRadius = quant::kDefaultRadius;
    const auto pred = predictor::lorenzo_compress(field.data, field.dims, eb,
                                                  kRadius);
    r.timings.predict = stage.lap();

    const auto hist = huffman::histogram(pred.codes, 2 * kRadius);
    r.timings.histogram = stage.lap();
    const auto book = huffman::Codebook::build(hist);
    r.timings.codebook = stage.lap();
    const auto huff = huffman::encode_with_book(pred.codes, book);
    r.timings.encode = stage.lap();

    core::ByteWriter w;
    w.put(kMagic);
    w.put(static_cast<std::uint64_t>(field.dims.x));
    w.put(static_cast<std::uint64_t>(field.dims.y));
    w.put(static_cast<std::uint64_t>(field.dims.z));
    w.put(eb);
    w.put(static_cast<std::uint16_t>(kRadius));
    w.put_blob(pred.outliers.serialize());
    w.put_blob(huff);
    r.bytes = w.take();
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader rd(bytes, "cusz");
    rd.expect_magic(kMagic);
    dev::Dim3 dims;
    dims.x = rd.read<std::uint64_t>();
    dims.y = rd.read<std::uint64_t>();
    dims.z = rd.read<std::uint64_t>();
    const std::size_t n =
        core::checked_volume("cusz", rd.offset(), dims.x, dims.y, dims.z);
    (void)rd.checked_array_bytes(n, sizeof(float));
    const auto eb = rd.read<double>();
    const auto radius = rd.read<std::uint16_t>();
    std::size_t consumed = 0;
    const auto outliers =
        quant::OutlierSet::deserialize(rd.read_length_prefixed(), &consumed);
    const auto codes = huffman::decode(rd.read_length_prefixed());
    if (codes.size() != n) rd.fail("code count mismatch");
    // lorenzo_decompress bounds-checks the outlier indices against dims.
    auto out = predictor::lorenzo_decompress(codes, outliers, dims, eb, radius);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_cusz() { return std::make_unique<Cusz>(); }

}  // namespace szi::baselines
