#include "baselines/cusz.hh"

#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/arena.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "metrics/stats.hh"
#include "predictor/lorenzo.hh"

namespace szi::baselines {

namespace {

constexpr std::uint32_t kMagic = 0x5A535543;  // "CUSZ"

class Cusz final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "cuSZ"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    core::Timer total;
    core::Timer stage;
    CompressResult r;

    const double eb = resolve_abs_eb(p, field.data, "cuSZ");

    constexpr int kRadius = quant::kDefaultRadius;
    dev::Workspace ws(dev::Arena::instance());
    // Fused predict+histogram: the separate full read pass over codes is
    // gone, so the histogram stage reports 0 and predict covers both.
    const auto fused = predictor::lorenzo_compress_fused(field.data, field.dims,
                                                         eb, kRadius, ws);
    r.timings.predict = stage.lap();
    r.timings.histogram = 0.0;
    r.timings.histogram_fused = true;
    const auto book = huffman::Codebook::build(fused.histogram);
    r.timings.codebook = stage.lap();
    const auto huff = huffman::encode_with_book(fused.pred.codes, book,
                                                huffman::kDefaultChunk, ws);
    r.timings.encode = stage.lap();

    const auto& ol = fused.pred.outliers;
    const std::uint64_t ocount = ol.count();
    core::ByteWriter w;
    w.reserve(38 + sizeof(ocount) + ol.byte_size() + 8 + huff.size() + 8);
    w.put(kMagic);
    w.put(static_cast<std::uint64_t>(field.dims.x));
    w.put(static_cast<std::uint64_t>(field.dims.y));
    w.put(static_cast<std::uint64_t>(field.dims.z));
    w.put(eb);
    w.put(static_cast<std::uint16_t>(kRadius));
    // Same framing OutlierSet::serialize produced: u64 blob size, then
    // count | indices | values — emitted straight from the workspace views.
    w.put(static_cast<std::uint64_t>(sizeof(ocount) + ol.byte_size()));
    w.put(ocount);
    w.put_raw(std::as_bytes(ol.indices));
    w.put_raw(std::as_bytes(ol.values));
    w.put_blob(huff);
    r.bytes = w.take();
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader rd(bytes, "cusz");
    rd.expect_magic(kMagic);
    dev::Dim3 dims;
    dims.x = rd.read<std::uint64_t>();
    dims.y = rd.read<std::uint64_t>();
    dims.z = rd.read<std::uint64_t>();
    const std::size_t n =
        core::checked_volume("cusz", rd.offset(), dims.x, dims.y, dims.z);
    (void)rd.checked_array_bytes(n, sizeof(float));
    const auto eb = rd.read<double>();
    const auto radius = rd.read<std::uint16_t>();
    std::size_t consumed = 0;
    const auto outliers =
        quant::OutlierSet::deserialize(rd.read_length_prefixed(), &consumed);
    const auto codes = huffman::decode(rd.read_length_prefixed());
    if (codes.size() != n) rd.fail("code count mismatch");
    // lorenzo_decompress bounds-checks the outlier indices against dims.
    auto out = predictor::lorenzo_decompress(codes, outliers, dims, eb, radius);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_cusz() { return std::make_unique<Cusz>(); }

}  // namespace szi::baselines
