// SZ3 [4, 6] and QoZ [7] CPU reference compressors: global multi-level
// interpolation + Huffman (65536-entry dictionary) + an LZ de-redundancy
// stage standing in for Zstd (§III-A notes CPU SZ always runs one).
#pragma once

#include <memory>

#include "core/compressor_iface.hh"

namespace szi::baselines {

[[nodiscard]] std::unique_ptr<Compressor> make_sz3();
[[nodiscard]] std::unique_ptr<Compressor> make_qoz();

}  // namespace szi::baselines
