#include "baselines/zfp_codec.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"

namespace szi::baselines::zfp {

namespace {

using Int = std::int64_t;    // transform arithmetic (int32 range, no UB)
using UInt = std::uint32_t;  // negabinary coefficients

constexpr std::uint32_t kMagic = 0x50465A43;  // "CZFP"
constexpr int kIntPrec = 32;

/// ZFP forward decorrelating lift on 4 elements with stride s.
void fwd_lift(Int* p, std::size_t s) {
  Int x = p[0], y = p[s], z = p[2 * s], w = p[3 * s];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0] = x; p[s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Inverse lift (zfp's inv_lift).
void inv_lift(Int* p, std::size_t s) {
  Int x = p[0], y = p[s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0] = x; p[s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Negabinary mapping and its inverse (sign-free, order-preserving in
/// absolute magnitude across bit planes).
UInt int2uint(Int i) {
  const auto u = static_cast<std::uint32_t>(static_cast<std::int32_t>(i));
  return (u + 0xaaaaaaaau) ^ 0xaaaaaaaau;
}
Int uint2int(UInt u) {
  return static_cast<std::int32_t>((u ^ 0xaaaaaaaau) - 0xaaaaaaaau);
}

/// Total-sequency permutation: coefficients ordered by i+j+k (then linear
/// index), mirroring zfp's static tables.
template <int D>
const std::array<std::uint8_t, (D == 3 ? 64 : D == 2 ? 16 : 4)>& perm() {
  static const auto table = [] {
    constexpr std::size_t n = D == 3 ? 64 : D == 2 ? 16 : 4;
    std::array<std::uint8_t, n> t{};
    std::array<std::uint8_t, n> idx{};
    std::iota(idx.begin(), idx.end(), 0);
    auto degree = [](std::size_t i) {
      if constexpr (D == 3) return (i & 3) + ((i >> 2) & 3) + ((i >> 4) & 3);
      else if constexpr (D == 2) return (i & 3) + ((i >> 2) & 3);
      else return i;
    };
    std::stable_sort(idx.begin(), idx.end(), [&](std::uint8_t a, std::uint8_t b) {
      return degree(a) < degree(b);
    });
    for (std::size_t k = 0; k < n; ++k) t[k] = idx[k];
    return t;
  }();
  return table;
}

/// LSB-first bit writer over a fixed per-block byte region.
struct BlockWriter {
  std::uint8_t* buf;
  std::size_t pos = 0;
  void put1(unsigned bit) {
    if (bit) buf[pos >> 3] |= static_cast<std::uint8_t>(1u << (pos & 7));
    ++pos;
  }
  /// Writes n low bits of x, LSB first; returns x >> n (zfp semantics).
  std::uint64_t put(std::uint64_t x, unsigned n) {
    for (unsigned i = 0; i < n; ++i, x >>= 1) put1(x & 1u);
    return x;
  }
};

struct BlockReader {
  const std::uint8_t* buf;
  std::size_t nbytes;  ///< bounds: reads past the block yield zero bits
  std::size_t pos = 0;
  [[nodiscard]] unsigned get1() {
    const std::size_t byte = pos >> 3;
    if (byte >= nbytes) {
      ++pos;
      return 0;
    }
    const unsigned b = (buf[byte] >> (pos & 7)) & 1u;
    ++pos;
    return b;
  }
  [[nodiscard]] std::uint64_t get(unsigned n) {
    std::uint64_t x = 0;
    for (unsigned i = 0; i < n; ++i) x |= static_cast<std::uint64_t>(get1()) << i;
    return x;
  }
};

/// zfp encode_ints: embedded group-tested bit-plane coder, transcribed from
/// zfp's encode loop with the comma-operator control flow made explicit.
/// `n` persists across planes: it is the count of values already known
/// significant, whose plane bits are emitted verbatim.
void encode_ints(BlockWriter& bw, std::size_t budget_bits,
                 const UInt* data, std::size_t size) {
  std::size_t bits = budget_bits;
  std::size_t n = 0;
  for (int k = kIntPrec; bits && k-- > 0;) {
    // Gather bit plane k (value i contributes bit i of x).
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < size; ++i)
      x += static_cast<std::uint64_t>((data[i] >> k) & 1u) << i;
    // First n bits verbatim.
    const std::size_t m = std::min<std::size_t>(n, bits);
    bits -= m;
    x = bw.put(x, static_cast<unsigned>(m));
    // Unary run-length encode the remainder.
    while (n < size && bits) {
      --bits;
      const bool any = (x != 0);
      bw.put1(any);
      if (!any) break;  // group test: plane finished
      // Emit value bits until a 1 is written or only the last position
      // remains (its 1 is implied by the group test).
      bool found = false;
      while (n < size - 1 && bits) {
        --bits;
        const unsigned b = static_cast<unsigned>(x & 1u);
        bw.put1(b);
        if (b) {
          found = true;
          break;
        }
        x >>= 1;
        ++n;
      }
      (void)found;
      // Consume the significant position (explicit 1, implied last, or
      // budget exhaustion — all advance, matching zfp's outer increment).
      x >>= 1;
      ++n;
    }
  }
}

/// zfp decode_ints — the exact mirror of encode_ints.
void decode_ints(BlockReader& br, std::size_t budget_bits, UInt* data,
                 std::size_t size) {
  std::size_t bits = budget_bits;
  for (std::size_t i = 0; i < size; ++i) data[i] = 0;
  std::size_t n = 0;
  for (int k = kIntPrec; bits && k-- > 0;) {
    const std::size_t m = std::min<std::size_t>(n, bits);
    bits -= m;
    std::uint64_t x = br.get(static_cast<unsigned>(m));
    while (n < size && bits) {
      --bits;
      if (!br.get1()) break;  // group test said plane finished
      while (n < size - 1 && bits) {
        --bits;
        if (br.get1()) break;
        ++n;
      }
      x += std::uint64_t{1} << n;
      ++n;
    }
    for (std::size_t i = 0; x; ++i, x >>= 1)
      data[i] += static_cast<UInt>(x & 1u) << k;
  }
}

}  // namespace

std::vector<std::byte> compress(std::span<const float> data,
                                const dev::Dim3& dims, double rate) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("zfp: size/dims mismatch");
  rate = std::clamp(rate, 0.5, 32.0);
  const int d = dims.rank();
  const std::size_t bsize = d == 3 ? 64 : d == 2 ? 16 : 4;
  // Byte-aligned per-block budget, as CUDA zfp word-aligns blocks. At least
  // 16 bits: the non-empty-block header (occupancy bit + 11-bit exponent)
  // needs 12, and a smaller budget would underflow the coder's bit budget.
  const std::size_t block_bits = std::max<std::size_t>(
      16,
      ((static_cast<std::size_t>(rate * static_cast<double>(bsize)) + 7) / 8) *
          8);
  const dev::Dim3 blocks = dev::grid_for(dims, {4, 4, 4});
  const std::size_t nblocks = blocks.volume();
  const std::size_t block_bytes = block_bits / 8;

  core::ByteWriter hw;
  hw.put(kMagic);
  hw.put(static_cast<std::uint64_t>(dims.x));
  hw.put(static_cast<std::uint64_t>(dims.y));
  hw.put(static_cast<std::uint64_t>(dims.z));
  hw.put(static_cast<std::uint32_t>(block_bits));
  auto out = hw.take();
  const std::size_t payload_pos = out.size();
  out.resize(out.size() + nblocks * block_bytes, std::byte{0});
  auto* payload = reinterpret_cast<std::uint8_t*>(out.data() + payload_pos);

  dev::launch_blocks(blocks, [&](const dev::BlockIdx& blk) {
    // Gather with edge clamping (partial blocks replicate boundary values).
    float vals[64];
    std::size_t vi = 0;
    for (std::size_t dz = 0; dz < (d >= 3 ? 4u : 1u); ++dz)
      for (std::size_t dy = 0; dy < (d >= 2 ? 4u : 1u); ++dy)
        for (std::size_t dx = 0; dx < 4; ++dx) {
          const std::size_t x = std::min(blk.x * 4 + dx, dims.x - 1);
          const std::size_t y = std::min(blk.y * 4 + dy, dims.y - 1);
          const std::size_t z = std::min(blk.z * 4 + dz, dims.z - 1);
          vals[vi++] = data[dev::linearize(dims, x, y, z)];
        }

    BlockWriter bw{payload + blk.linear * block_bytes};
    float maxabs = 0;
    for (std::size_t i = 0; i < bsize; ++i)
      maxabs = std::max(maxabs, std::abs(vals[i]));
    if (maxabs == 0 || !std::isfinite(maxabs)) {
      bw.put1(0);  // empty block
      return;
    }
    bw.put1(1);
    int emax;
    (void)std::frexp(maxabs, &emax);  // maxabs = f * 2^emax, f in [0.5, 1)
    bw.put(static_cast<std::uint64_t>(emax + 1023), 11);

    // Block floating point: |vals| < 2^emax -> 30-bit integers.
    Int ints[64];
    const double scale = std::ldexp(1.0, 30 - emax);
    for (std::size_t i = 0; i < bsize; ++i)
      ints[i] = static_cast<Int>(static_cast<double>(vals[i]) * scale);

    // Forward transform along x, then y, then z.
    if (d == 1) {
      fwd_lift(ints, 1);
    } else if (d == 2) {
      for (std::size_t y = 0; y < 4; ++y) fwd_lift(ints + 4 * y, 1);
      for (std::size_t x = 0; x < 4; ++x) fwd_lift(ints + x, 4);
    } else {
      for (std::size_t z = 0; z < 4; ++z)
        for (std::size_t y = 0; y < 4; ++y) fwd_lift(ints + 16 * z + 4 * y, 1);
      for (std::size_t z = 0; z < 4; ++z)
        for (std::size_t x = 0; x < 4; ++x) fwd_lift(ints + 16 * z + x, 4);
      for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x) fwd_lift(ints + 4 * y + x, 16);
    }

    // Reorder + negabinary.
    UInt coeffs[64];
    auto reorder = [&](const auto& p) {
      for (std::size_t i = 0; i < bsize; ++i) coeffs[i] = int2uint(ints[p[i]]);
    };
    if (d == 3) reorder(perm<3>());
    else if (d == 2) reorder(perm<2>());
    else reorder(perm<1>());

    encode_ints(bw, block_bits - bw.pos, coeffs, bsize);
  });
  return out;
}

std::vector<float> decompress(std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "zfp");
  rd.expect_magic(kMagic);
  dev::Dim3 dims;
  dims.x = rd.read<std::uint64_t>();
  dims.y = rd.read<std::uint64_t>();
  dims.z = rd.read<std::uint64_t>();
  const std::size_t volume =
      core::checked_volume("zfp", rd.offset(), dims.x, dims.y, dims.z);
  (void)rd.checked_array_bytes(volume, sizeof(float));
  const auto block_bits = rd.read<std::uint32_t>();
  // The encoder emits byte-aligned budgets in [16, 8 * ceil(32 * 64 / 8)];
  // anything else marks a corrupt header.
  if (block_bits % 8 != 0 || block_bits < 16 || block_bits > 2048)
    rd.fail("block bit budget out of range");
  const int d = dims.rank();
  const std::size_t bsize = d == 3 ? 64 : d == 2 ? 16 : 4;
  const dev::Dim3 blocks = dev::grid_for(dims, {4, 4, 4});
  const std::size_t block_bytes = block_bits / 8;
  const std::size_t payload_bytes =
      rd.checked_mul(core::checked_volume("zfp", rd.offset(), blocks.x,
                                          blocks.y, blocks.z),
                     block_bytes);
  if (rd.remaining() < payload_bytes) rd.fail("truncated payload");
  const auto* payload =
      reinterpret_cast<const std::uint8_t*>(rd.rest().data());

  std::vector<float> out(volume);
  dev::launch_blocks(blocks, [&](const dev::BlockIdx& blk) {
    BlockReader br{payload + blk.linear * block_bytes, block_bytes};
    float vals[64] = {};
    if (br.get1()) {
      const int emax = static_cast<int>(br.get(11)) - 1023;
      UInt coeffs[64];
      decode_ints(br, block_bits - br.pos, coeffs, bsize);
      Int ints[64];
      auto unorder = [&](const auto& p) {
        for (std::size_t i = 0; i < bsize; ++i) ints[p[i]] = uint2int(coeffs[i]);
      };
      if (d == 3) unorder(perm<3>());
      else if (d == 2) unorder(perm<2>());
      else unorder(perm<1>());

      if (d == 1) {
        inv_lift(ints, 1);
      } else if (d == 2) {
        for (std::size_t x = 0; x < 4; ++x) inv_lift(ints + x, 4);
        for (std::size_t y = 0; y < 4; ++y) inv_lift(ints + 4 * y, 1);
      } else {
        for (std::size_t y = 0; y < 4; ++y)
          for (std::size_t x = 0; x < 4; ++x) inv_lift(ints + 4 * y + x, 16);
        for (std::size_t z = 0; z < 4; ++z)
          for (std::size_t x = 0; x < 4; ++x) inv_lift(ints + 16 * z + x, 4);
        for (std::size_t z = 0; z < 4; ++z)
          for (std::size_t y = 0; y < 4; ++y) inv_lift(ints + 16 * z + 4 * y, 1);
      }
      const double scale = std::ldexp(1.0, emax - 30);
      for (std::size_t i = 0; i < bsize; ++i)
        vals[i] = static_cast<float>(static_cast<double>(ints[i]) * scale);
    }

    // Scatter valid positions only.
    std::size_t vi = 0;
    for (std::size_t dz = 0; dz < (d >= 3 ? 4u : 1u); ++dz)
      for (std::size_t dy = 0; dy < (d >= 2 ? 4u : 1u); ++dy)
        for (std::size_t dx = 0; dx < 4; ++dx, ++vi) {
          const std::size_t x = blk.x * 4 + dx;
          const std::size_t y = blk.y * 4 + dy;
          const std::size_t z = blk.z * 4 + dz;
          if (x < dims.x && y < dims.y && z < dims.z)
            out[dev::linearize(dims, x, y, z)] = vals[vi];
        }
  });
  return out;
}

}  // namespace szi::baselines::zfp
