// cuSZ baseline [16, 17] (§III-A): fully parallel Lorenzo dual-quant
// prediction + outlier compaction + coarse-grained Huffman. No further
// de-redundancy pass — the paper calls this out as cuSZ's
// throughput/ratio tradeoff.
#pragma once

#include <memory>

#include "core/compressor_iface.hh"

namespace szi::baselines {

[[nodiscard]] std::unique_ptr<Compressor> make_cusz();

}  // namespace szi::baselines
