// cuZFP baseline [21]: the CUDA implementation of fixed-rate ZFP. Only the
// FixedRate error mode is supported (the paper's TABLE III lists cuZFP as
// N/A because it cannot honor an absolute error bound).
#pragma once

#include <memory>

#include "core/compressor_iface.hh"

namespace szi::baselines {

[[nodiscard]] std::unique_ptr<Compressor> make_cuzfp();

}  // namespace szi::baselines
