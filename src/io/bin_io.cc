#include "io/bin_io.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace szi::io {

namespace {
[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}
}  // namespace

void write_f32(const std::string& path, std::span<const float> data) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write", path);
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size_bytes()));
  if (!os) fail("short write", path);
}

std::vector<float> read_f32(const std::string& path, std::size_t expect) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) fail("cannot open for read", path);
  const auto bytes = static_cast<std::size_t>(is.tellg());
  if (bytes % sizeof(float) != 0) fail("size not a multiple of 4", path);
  const std::size_t n = bytes / sizeof(float);
  if (expect != 0 && n != expect) fail("unexpected element count", path);
  std::vector<float> data(n);
  is.seekg(0);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(bytes));
  if (!is) fail("short read", path);
  return data;
}

void write_f64(const std::string& path, std::span<const double> data) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write", path);
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size_bytes()));
  if (!os) fail("short write", path);
}

std::vector<double> read_f64(const std::string& path, std::size_t expect) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) fail("cannot open for read", path);
  const auto bytes = static_cast<std::size_t>(is.tellg());
  if (bytes % sizeof(double) != 0) fail("size not a multiple of 8", path);
  const std::size_t n = bytes / sizeof(double);
  if (expect != 0 && n != expect) fail("unexpected element count", path);
  std::vector<double> data(n);
  is.seekg(0);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(bytes));
  if (!is) fail("short read", path);
  return data;
}

void write_bytes(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write", path);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) fail("short write", path);
}

std::vector<std::byte> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) fail("cannot open for read", path);
  const auto n = static_cast<std::size_t>(is.tellg());
  std::vector<std::byte> data(n);
  is.seekg(0);
  is.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(n));
  if (!is) fail("short read", path);
  return data;
}

void write_pgm_slice(const std::string& path, const Field& f, std::size_t slice) {
  if (slice >= f.dims.z) fail("slice out of range", path);
  const std::size_t w = f.dims.x, h = f.dims.y;
  const float* plane = f.data.data() + slice * w * h;
  float lo = plane[0], hi = plane[0];
  for (std::size_t i = 1; i < w * h; ++i) {
    lo = std::min(lo, plane[i]);
    hi = std::max(hi, plane[i]);
  }
  const float scale = (hi > lo) ? 255.0f / (hi - lo) : 0.0f;

  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open for write", path);
  os << "P5\n" << w << " " << h << "\n255\n";
  std::vector<std::uint8_t> row(w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x)
      row[x] = static_cast<std::uint8_t>((plane[y * w + x] - lo) * scale + 0.5f);
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(w));
  }
  if (!os) fail("short write", path);
}

}  // namespace szi::io
