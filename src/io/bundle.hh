// Multi-field archive bundle — the "distributed scientific database" unit of
// §VII-C.5: a dataset snapshot holds many fields; transfers and storage
// operate on the bundle, not on loose files. Each entry records the field's
// name, dims, compressor name, and its self-describing archive.
//
// Layout: magic 'SZIB' | u32 n_entries | per entry:
//   name | compressor | dims | raw_bytes | archive blob
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "device/dims.hh"

namespace szi::io {

struct BundleEntry {
  std::string name;
  std::string compressor;  ///< registry name used to compress
  dev::Dim3 dims;
  std::uint64_t raw_bytes = 0;
  std::vector<std::byte> archive;
};

class Bundle {
 public:
  void add(BundleEntry entry) { entries_.push_back(std::move(entry)); }

  [[nodiscard]] const std::vector<BundleEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const BundleEntry* find(const std::string& name) const;

  [[nodiscard]] std::size_t total_raw_bytes() const;
  [[nodiscard]] std::size_t total_archive_bytes() const;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  /// Throws std::runtime_error on malformed input.
  [[nodiscard]] static Bundle deserialize(std::span<const std::byte> bytes);

  void save(const std::string& path) const;
  [[nodiscard]] static Bundle load(const std::string& path);

 private:
  std::vector<BundleEntry> entries_;
};

}  // namespace szi::io
