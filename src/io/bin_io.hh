// Raw binary field I/O (SDRBench-style .f32 files) and PGM slice dumps used
// by the Fig. 8 visualization bench.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/field.hh"

namespace szi::io {

/// Writes `data` as little-endian f32, SDRBench layout. Throws on failure.
void write_f32(const std::string& path, std::span<const float> data);

/// Reads a whole .f32 file. Throws on failure or size mismatch with `expect`
/// (pass 0 to accept any size).
std::vector<float> read_f32(const std::string& path, std::size_t expect = 0);

/// Double-precision variants (SDRBench .f64 files).
void write_f64(const std::string& path, std::span<const double> data);
std::vector<double> read_f64(const std::string& path, std::size_t expect = 0);

/// Writes arbitrary bytes (compressed archives).
void write_bytes(const std::string& path, std::span<const std::byte> bytes);
std::vector<std::byte> read_bytes(const std::string& path);

/// Dumps the z = `slice` plane of `f` as an 8-bit PGM image, min-max scaled.
/// This is how the repo reproduces the paper's Fig. 8 visual comparisons.
void write_pgm_slice(const std::string& path, const Field& f, std::size_t slice);

}  // namespace szi::io
