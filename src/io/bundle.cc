#include "io/bundle.hh"

#include <stdexcept>

#include "core/bytes.hh"
#include "io/archive_source.hh"
#include "io/bin_io.hh"

namespace szi::io {

namespace {
constexpr std::uint32_t kMagic = 0x42495A53;  // "SZIB"

void put_string(core::ByteWriter& w, const std::string& s) {
  w.put(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.put(static_cast<std::uint8_t>(c));
}

std::string get_string(core::ByteReader& r) {
  const auto n = r.read<std::uint32_t>();
  if (n > 4096) r.fail("absurd string length");
  const auto chars = r.read_array<char>(n);
  return std::string(chars.begin(), chars.end());
}
}  // namespace

const BundleEntry* Bundle::find(const std::string& name) const {
  for (const auto& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

std::size_t Bundle::total_raw_bytes() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.raw_bytes;
  return total;
}

std::size_t Bundle::total_archive_bytes() const {
  std::size_t total = 0;
  for (const auto& e : entries_) total += e.archive.size();
  return total;
}

std::vector<std::byte> Bundle::serialize() const {
  core::ByteWriter w;
  w.put(kMagic);
  w.put(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    put_string(w, e.name);
    put_string(w, e.compressor);
    w.put(static_cast<std::uint64_t>(e.dims.x));
    w.put(static_cast<std::uint64_t>(e.dims.y));
    w.put(static_cast<std::uint64_t>(e.dims.z));
    w.put(e.raw_bytes);
    w.put_blob(e.archive);
  }
  return w.take();
}

Bundle Bundle::deserialize(std::span<const std::byte> bytes) {
  core::ByteReader r(bytes, "bundle");
  r.expect_magic(kMagic);
  const auto n = r.read<std::uint32_t>();
  // Each entry consumes at least its fixed fields, bounding the claimed
  // entry count by what the buffer can actually hold.
  constexpr std::size_t kMinEntryBytes =
      2 * sizeof(std::uint32_t) + 5 * sizeof(std::uint64_t);
  if (n > r.remaining() / kMinEntryBytes) r.fail("entry count exceeds buffer");
  Bundle b;
  for (std::uint32_t i = 0; i < n; ++i) {
    BundleEntry e;
    e.name = get_string(r);
    e.compressor = get_string(r);
    e.dims.x = r.read<std::uint64_t>();
    e.dims.y = r.read<std::uint64_t>();
    e.dims.z = r.read<std::uint64_t>();
    e.raw_bytes = r.read<std::uint64_t>();
    const auto blob = r.read_length_prefixed();
    e.archive.assign(blob.begin(), blob.end());
    b.add(std::move(e));
  }
  return b;
}

void Bundle::save(const std::string& path) const {
  write_bytes(path, serialize());
}

Bundle Bundle::load(const std::string& path) {
  // Served through an ArchiveSource (mmap when available) so loading a
  // bundle never double-buffers the file: deserialize copies each entry's
  // archive straight out of the mapping.
  const auto src = open_archive(path);
  std::vector<std::byte> scratch;
  return deserialize(src->view(0, src->size(), scratch));
}

}  // namespace szi::io
