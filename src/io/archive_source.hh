// Random-access archive byte sources. Decode paths that used to require the
// whole archive in RAM (read_bytes + decompress) instead pull ranges through
// an ArchiveSource: a borrowed memory span, an mmap'd file (the kernel pages
// in only what decode touches), or a pread-backed stream for filesystems
// where mapping is unavailable. The ROI decoder reads exactly the directory,
// index, and covering blocks — `bytes_read()` reports the honest total, the
// number the bench ledger and the CLI's --stages bytes-touched line print.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace szi::io {

/// Process-wide count of archive bytes served through ArchiveSource views
/// since the last reset — the per-run "archive bytes read" column of
/// bench::write_ledger. Ranges fetched twice count twice (that is the I/O
/// that actually happened).
[[nodiscard]] std::uint64_t archive_bytes_read() noexcept;
void reset_archive_bytes_read() noexcept;

/// Abstract random-access view of an archive's bytes.
///
/// Thread safety: concurrent view() calls on one source are safe as long as
/// every caller passes its own `scratch` buffer — the multi-tenant ROI
/// pattern of many readers sharing one mmap'd archive. Memory/mmap views
/// are immutable storage, pread carries no shared file offset, and the
/// byte accounting is atomic.
class ArchiveSource {
 public:
  virtual ~ArchiveSource() = default;
  ArchiveSource(const ArchiveSource&) = delete;
  ArchiveSource& operator=(const ArchiveSource&) = delete;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Bytes [off, off + len) of the archive. The returned span points either
  /// into the source's own storage (memory span, mmap) or into `scratch`,
  /// which the implementation resizes as needed — callers that need two
  /// ranges alive at once pass two scratch buffers. Throws std::out_of_range
  /// when the range exceeds the archive.
  [[nodiscard]] virtual std::span<const std::byte> view(
      std::size_t off, std::size_t len, std::vector<std::byte>& scratch) = 0;

  /// Total bytes this source has served.
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 protected:
  ArchiveSource() = default;
  void check_range(std::size_t off, std::size_t len) const;
  /// Adds `len` to this source's counter and the process-wide one.
  void account(std::size_t len) noexcept;

 private:
  std::atomic<std::uint64_t> bytes_read_{0};
};

/// Borrowed in-memory bytes (the compress-then-decompress round trips of
/// tests and benches). Zero-copy views.
class MemorySource final : public ArchiveSource {
 public:
  explicit MemorySource(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t size() const noexcept override {
    return bytes_.size();
  }
  [[nodiscard]] std::span<const std::byte> view(
      std::size_t off, std::size_t len,
      std::vector<std::byte>& scratch) override;

 private:
  std::span<const std::byte> bytes_;
};

/// mmap'd file with MADV_RANDOM — decode touches fault in exactly the pages
/// the access pattern needs, so a larger-than-RAM archive never has to be
/// resident. Zero-copy views. Throws std::runtime_error when the file
/// cannot be opened or mapped.
class MmapSource final : public ArchiveSource {
 public:
  explicit MmapSource(const std::string& path);
  ~MmapSource() override;

  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  [[nodiscard]] std::span<const std::byte> view(
      std::size_t off, std::size_t len,
      std::vector<std::byte>& scratch) override;

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

/// pread-backed streaming reads: every view copies the range into `scratch`.
/// The fallback for files that cannot be mapped, and the honest model of a
/// remote/byte-range source.
class StreamSource final : public ArchiveSource {
 public:
  explicit StreamSource(const std::string& path);
  ~StreamSource() override;

  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  [[nodiscard]] std::span<const std::byte> view(
      std::size_t off, std::size_t len,
      std::vector<std::byte>& scratch) override;

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
};

/// Opens `path` as an MmapSource, falling back to StreamSource when the
/// mapping fails (empty files, filesystems without mmap).
[[nodiscard]] std::unique_ptr<ArchiveSource> open_archive(
    const std::string& path);

namespace detail {

/// Test seam for StreamSource's read loop: when a hook is installed, it is
/// called in place of ::pread, letting tests exercise the EINTR-retry and
/// short-read reassembly paths that a healthy local filesystem never takes
/// (pread on a regular file is atomic in practice, but NFS, FUSE, and
/// signal-heavy processes do produce partial reads and EINTR). Returns the
/// previously installed hook; nullptr restores ::pread. Not thread-safe
/// against concurrent StreamSource reads — install before spawning readers.
using PreadFn = ssize_t (*)(int fd, void* buf, std::size_t count, off_t off);
PreadFn set_pread_hook(PreadFn fn) noexcept;

}  // namespace detail

}  // namespace szi::io
