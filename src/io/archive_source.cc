#include "io/archive_source.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace szi::io {

namespace {

std::atomic<std::uint64_t> g_bytes_read{0};

detail::PreadFn g_pread_hook = nullptr;

ssize_t do_pread(int fd, void* buf, std::size_t count, off_t off) {
  return g_pread_hook ? g_pread_hook(fd, buf, count, off)
                      : ::pread(fd, buf, count, off);
}

[[noreturn]] void fail_sys(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path + ": " + std::strerror(errno));
}

}  // namespace

namespace detail {

PreadFn set_pread_hook(PreadFn fn) noexcept {
  PreadFn prev = g_pread_hook;
  g_pread_hook = fn;
  return prev;
}

}  // namespace detail

std::uint64_t archive_bytes_read() noexcept {
  return g_bytes_read.load(std::memory_order_relaxed);
}

void reset_archive_bytes_read() noexcept {
  g_bytes_read.store(0, std::memory_order_relaxed);
}

void ArchiveSource::check_range(std::size_t off, std::size_t len) const {
  if (off > size() || len > size() - off)
    throw std::out_of_range("ArchiveSource: range past end of archive");
}

void ArchiveSource::account(std::size_t len) noexcept {
  bytes_read_.fetch_add(len, std::memory_order_relaxed);
  g_bytes_read.fetch_add(len, std::memory_order_relaxed);
}

std::span<const std::byte> MemorySource::view(std::size_t off, std::size_t len,
                                              std::vector<std::byte>&) {
  check_range(off, len);
  account(len);
  return bytes_.subspan(off, len);
}

MmapSource::MmapSource(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail_sys("cannot open for read", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail_sys("cannot stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      fail_sys("cannot mmap", path);
    }
    base_ = p;
    // ROI decode jumps between directory, index, and covering blocks;
    // readahead would fault in exactly the bytes we are trying not to read.
    (void)::madvise(base_, size_, MADV_RANDOM);
  }
  ::close(fd);  // the mapping keeps the file alive
}

MmapSource::~MmapSource() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

std::span<const std::byte> MmapSource::view(std::size_t off, std::size_t len,
                                            std::vector<std::byte>&) {
  check_range(off, len);
  account(len);
  return {static_cast<const std::byte*>(base_) + off, len};
}

StreamSource::StreamSource(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) fail_sys("cannot open for read", path);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail_sys("cannot stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
}

StreamSource::~StreamSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::span<const std::byte> StreamSource::view(std::size_t off, std::size_t len,
                                              std::vector<std::byte>& scratch) {
  check_range(off, len);
  scratch.resize(len);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = do_pread(fd_, scratch.data() + got, len - got,
                               static_cast<off_t>(off + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("ArchiveSource: pread failed: ") +
                               std::strerror(errno));
    }
    if (r == 0)
      throw std::runtime_error("ArchiveSource: unexpected EOF in pread");
    got += static_cast<std::size_t>(r);
  }
  account(len);
  return {scratch.data(), len};
}

std::unique_ptr<ArchiveSource> open_archive(const std::string& path) {
  try {
    return std::make_unique<MmapSource>(path);
  } catch (const std::runtime_error&) {
    return std::make_unique<StreamSource>(path);
  }
}

}  // namespace szi::io
