// Monotonic wall-clock stopwatch for stage timings.
#pragma once

#include <chrono>

namespace szi::core {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or the last lap().
  double lap() {
    const auto now = clock::now();
    const std::chrono::duration<double> d = now - start_;
    start_ = now;
    return d.count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace szi::core
