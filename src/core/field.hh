// The in-memory representation of one scientific field (a 1/2/3-D array of
// single-precision values), shared by generators, compressors, and benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "device/dims.hh"

namespace szi {

/// One named scalar field on a regular grid, row-major with x fastest — the
/// layout of every dataset in the paper's TABLE II.
struct Field {
  std::string dataset;  ///< e.g. "miranda"
  std::string name;     ///< e.g. "pressure"
  dev::Dim3 dims;
  std::vector<float> data;

  Field() = default;
  Field(std::string dataset_, std::string name_, dev::Dim3 dims_)
      : dataset(std::move(dataset_)),
        name(std::move(name_)),
        dims(dims_),
        data(dims_.volume()) {}

  [[nodiscard]] std::size_t size() const { return data.size(); }
  [[nodiscard]] std::size_t bytes() const { return data.size() * sizeof(float); }
  [[nodiscard]] std::span<const float> view() const { return data; }
  [[nodiscard]] std::string label() const { return dataset + "/" + name; }

  [[nodiscard]] float& at(std::size_t x, std::size_t y, std::size_t z) {
    return data[dev::linearize(dims, x, y, z)];
  }
  [[nodiscard]] float at(std::size_t x, std::size_t y, std::size_t z) const {
    return data[dev::linearize(dims, x, y, z)];
  }
};

}  // namespace szi
