// with_bitcomp(): decorates any Compressor with the §VI-B de-redundancy pass
// over its whole archive. TABLE III's right half applies this wrapper to
// every compressor for fairness; cuSZ-i gains the most because G-Interp
// leaves the most pattern redundancy in its Huffman stream.
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "lossless/bitcomp.hh"
#include "lossless/orchestrate.hh"

namespace szi {

namespace {

/// Wrapper-segment byte ranges of the inner archive: for a valid SZI2
/// archive one range per directory segment plus a leading range for the
/// header + directory; anything else (SZI1, baselines, malformed) wraps as
/// a single segment. Pure function of the inner bytes — the fused writer
/// computes the same split from its own directory, so the two paths agree.
std::vector<std::pair<std::size_t, std::size_t>> wrap_partition(
    std::span<const std::byte> bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  std::uint32_t magic = 0;
  if (bytes.size() >= sizeof(magic))
    std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic == 0x32495A53) {  // 'SZI2'
    try {
      const auto segs = cuszi_archive_segments(bytes);
      if (!segs.empty()) {
        parts.emplace_back(0, segs.front().offset);
        for (const auto& s : segs) parts.emplace_back(s.offset, s.size);
      }
    } catch (const core::CorruptArchive&) {
      parts.clear();
    }
  }
  if (parts.empty()) parts.emplace_back(0, bytes.size());
  return parts;
}

}  // namespace

std::vector<std::byte> bitcomp_wrap_archive(std::span<const std::byte> bytes) {
  return bitcomp_wrap_archive(bytes, lossless::LzssMode::Lazy);
}

std::vector<std::byte> bitcomp_wrap_archive(
    std::span<const std::byte> bytes, lossless::LzssMode mode,
    lossless::MethodPolicy policy,
    std::vector<lossless::ChoiceAudit>* audits) {
  const auto parts = wrap_partition(bytes);
  if (audits) audits->assign(parts.size(), {});

  dev::Workspace ws(dev::Arena::instance());
  std::vector<WrapSegmentEntry> entries(parts.size());
  std::vector<std::vector<std::byte>> payloads(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const auto seg = bytes.subspan(parts[i].first, parts[i].second);
    const auto m = lossless::resolve_method(policy, seg, mode, ws,
                                            audits ? &(*audits)[i] : nullptr);
    const auto t = lossless::method_transform(seg, m, ws);
    payloads[i] = lossless::lzss_compress(t, lossless::kLzssBlock, mode);
    entries[i].method = static_cast<std::uint8_t>(m);
    entries[i].raw_size = seg.size();
    entries[i].size = payloads[i].size();
    ws.reset();
  }

  core::ByteWriter w;
  std::size_t total = sizeof(std::uint32_t) * 2 +
                      entries.size() * sizeof(WrapSegmentEntry);
  for (const auto& p : payloads) total += p.size();
  w.reserve(total);
  w.put(kBitcompWrapMagicV2);
  w.put(static_cast<std::uint32_t>(entries.size()));
  w.put_raw({reinterpret_cast<const std::byte*>(entries.data()),
             entries.size() * sizeof(WrapSegmentEntry)});
  for (const auto& p : payloads) w.put_raw(p);
  return w.take();
}

std::vector<std::byte> bitcomp_unwrap_archive(
    std::span<const std::byte> bytes) {
  const auto view = bitcomp_parse_container(bytes);
  if (view.legacy) return lossless::bitcomp_decompress(view.payloads[0]);

  std::size_t raw_total = 0;
  for (const auto& s : view.segments)
    raw_total += static_cast<std::size_t>(s.raw_size);
  std::vector<std::byte> out(raw_total);
  std::size_t off = 0;
  for (std::size_t i = 0; i < view.segments.size(); ++i) {
    const auto& s = view.segments[i];
    const auto dec = lossless::lzss_decompress(view.payloads[i]);
    lossless::method_untransform(
        dec, s.method,
        {out.data() + off, static_cast<std::size_t>(s.raw_size)});
    off += static_cast<std::size_t>(s.raw_size);
  }
  return out;
}

WrapContainerView bitcomp_parse_container(std::span<const std::byte> bytes,
                                          bool prefix_ok) {
  core::ByteReader rd(bytes, "bitcomp-wrapper");
  const auto magic = rd.read<std::uint32_t>();
  WrapContainerView view;
  if (magic == kBitcompWrapMagic) {
    view.legacy = true;
    const auto stream = rd.read_length_prefixed();
    view.table_bytes = sizeof(std::uint32_t) + sizeof(std::uint64_t);
    view.segments.push_back(
        {lossless::Method::Lzss, 0, static_cast<std::uint64_t>(stream.size())});
    view.payloads.push_back(stream);
    return view;
  }
  if (magic != kBitcompWrapMagicV2) rd.fail("bad magic");

  const auto nseg = rd.read<std::uint32_t>();
  if (nseg == 0) rd.fail("empty segment table");
  const auto entries = rd.read_array<WrapSegmentEntry>(nseg);
  view.table_bytes = rd.offset();

  std::uint64_t payload_total = 0;
  std::uint64_t raw_total = 0;
  for (const auto& e : entries) {
    if (e.method >= lossless::kMethodCount)
      rd.fail("unknown lossless method id");
    if (e.reserved0 != 0 || e.reserved1 != 0 || e.reserved2 != 0)
      rd.fail("reserved wrapper field set");
    if (__builtin_add_overflow(payload_total, e.size, &payload_total) ||
        __builtin_add_overflow(raw_total, e.raw_size, &raw_total))
      rd.fail("segment sizes overflow");
  }
  // Exact fill is the invariant; prefix mode relaxes only the truncated
  // direction (bytes *beyond* the table's total are still garbage).
  if (payload_total != rd.remaining() &&
      (!prefix_ok || payload_total < rd.remaining()))
    rd.fail("segment payloads do not fill container");
  rd.guard_alloc(static_cast<std::size_t>(raw_total));

  view.segments.reserve(nseg);
  view.payloads.reserve(nseg);
  for (const auto& e : entries) {
    view.segments.push_back(
        {static_cast<lossless::Method>(e.method), e.raw_size, e.size});
    const auto want = static_cast<std::size_t>(e.size);
    view.payloads.push_back(
        rd.read_bytes(prefix_ok ? std::min(want, rd.remaining()) : want));
  }
  return view;
}

std::span<const std::byte> bitcomp_wrapped_stream(
    std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "bitcomp-wrapper");
  rd.expect_magic(kBitcompWrapMagic);
  return rd.read_length_prefixed();
}

// Default (unfused) implementations of the bitcomp/workspace virtuals:
// compose the plain entry points. Overrides (cuSZ-i) pipeline the stages
// but must keep the bytes identical to these compositions.

std::vector<float> Compressor::decompress(std::span<const std::byte> bytes,
                                          double* decode_seconds,
                                          dev::Workspace& /*ws*/) {
  return decompress(bytes, decode_seconds);
}

std::vector<CheckedCompressResult> Compressor::compress_batch_checked(
    std::span<const Field> fields, const CompressParams& p) {
  std::vector<CheckedCompressResult> out(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    try {
      out[i].result = compress(fields[i], p);
    } catch (...) {
      out[i].error = std::current_exception();
    }
  }
  return out;
}

CompressResult Compressor::compress_bitcomp(const Field& field,
                                            const CompressParams& p) {
  CompressResult r = compress(field, p);
  core::Timer t;
  r.bytes = bitcomp_wrap_archive(r.bytes);
  const double extra = t.lap();
  r.timings.encode += extra;
  r.timings.total += extra;
  return r;
}

std::vector<float> Compressor::decompress_bitcomp(
    std::span<const std::byte> bytes, double* decode_seconds) {
  core::Timer t;
  const auto inner_bytes = bitcomp_unwrap_archive(bytes);
  const double unwrap = t.lap();
  double inner_time = 0;
  auto out = decompress(inner_bytes, &inner_time);
  if (decode_seconds) *decode_seconds = unwrap + inner_time;
  return out;
}

std::vector<float> Compressor::decompress_stages(
    std::span<const std::byte> bytes, DecodeTimings& t) {
  core::Timer wall;
  auto out = decompress(bytes, nullptr);
  t.total = wall.lap();
  return out;
}

std::vector<float> Compressor::decompress_bitcomp_stages(
    std::span<const std::byte> bytes, DecodeTimings& t) {
  core::Timer wall;
  const auto inner_bytes = bitcomp_unwrap_archive(bytes);
  t.unwrap = wall.lap();
  auto out = decompress_stages(inner_bytes, t);
  t.total += t.unwrap;
  return out;
}

ProgressiveResult Compressor::decompress_progressive(
    std::span<const std::byte> /*bytes*/, int /*max_level*/) {
  throw std::invalid_argument(name() + ": progressive decode not supported");
}

RoiResult Compressor::decompress_roi(std::span<const std::byte> /*bytes*/,
                                     const RoiBox& /*box*/) {
  throw std::invalid_argument(name() + ": ROI decode not supported");
}

namespace {

class BitcompWrapped final : public Compressor {
 public:
  explicit BitcompWrapped(std::unique_ptr<Compressor> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + " w/ Bitcomp";
  }
  [[nodiscard]] bool supports_error_bound() const override {
    return inner_->supports_error_bound();
  }
  [[nodiscard]] bool supports_fixed_rate() const override {
    return inner_->supports_fixed_rate();
  }

  // Delegates to the inner compressor's (possibly fused/pipelined)
  // bitcomp entry points; the default implementations reproduce the old
  // wrap-after / unwrap-before behaviour byte-for-byte.
  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    return inner_->compress_bitcomp(field, p);
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    return inner_->decompress_bitcomp(bytes, decode_seconds);
  }

  [[nodiscard]] std::vector<float> decompress_stages(
      std::span<const std::byte> bytes, DecodeTimings& t) override {
    return inner_->decompress_bitcomp_stages(bytes, t);
  }

  // Progressive decode dispatches on the archive magic inside the inner
  // compressor, so the wrapped ('BBCP') bytes forward unchanged.
  [[nodiscard]] ProgressiveResult decompress_progressive(
      std::span<const std::byte> bytes, int max_level) override {
    return inner_->decompress_progressive(bytes, max_level);
  }

  // ROI decode likewise dispatches on the archive magic inside the inner
  // compressor ('BBC2' wrappers are read block-selectively there).
  [[nodiscard]] RoiResult decompress_roi(std::span<const std::byte> bytes,
                                         const RoiBox& box) override {
    return inner_->decompress_roi(bytes, box);
  }

 private:
  std::unique_ptr<Compressor> inner_;
};

}  // namespace

std::unique_ptr<Compressor> with_bitcomp(std::unique_ptr<Compressor> inner) {
  return std::make_unique<BitcompWrapped>(std::move(inner));
}

}  // namespace szi
