// with_bitcomp(): decorates any Compressor with the §VI-B de-redundancy pass
// over its whole archive. TABLE III's right half applies this wrapper to
// every compressor for fairness; cuSZ-i gains the most because G-Interp
// leaves the most pattern redundancy in its Huffman stream.
#include <stdexcept>
#include <utility>

#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/timer.hh"
#include "lossless/bitcomp.hh"

namespace szi {

std::vector<std::byte> bitcomp_wrap_archive(std::span<const std::byte> bytes) {
  core::ByteWriter w;
  w.put(kBitcompWrapMagic);
  w.put_blob(lossless::bitcomp_compress(bytes));
  return w.take();
}

std::vector<std::byte> bitcomp_unwrap_archive(
    std::span<const std::byte> bytes) {
  return lossless::bitcomp_decompress(bitcomp_wrapped_stream(bytes));
}

std::span<const std::byte> bitcomp_wrapped_stream(
    std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "bitcomp-wrapper");
  rd.expect_magic(kBitcompWrapMagic);
  return rd.read_length_prefixed();
}

// Default (unfused) implementations of the bitcomp/workspace virtuals:
// compose the plain entry points. Overrides (cuSZ-i) pipeline the stages
// but must keep the bytes identical to these compositions.

std::vector<float> Compressor::decompress(std::span<const std::byte> bytes,
                                          double* decode_seconds,
                                          dev::Workspace& /*ws*/) {
  return decompress(bytes, decode_seconds);
}

CompressResult Compressor::compress_bitcomp(const Field& field,
                                            const CompressParams& p) {
  CompressResult r = compress(field, p);
  core::Timer t;
  r.bytes = bitcomp_wrap_archive(r.bytes);
  const double extra = t.lap();
  r.timings.encode += extra;
  r.timings.total += extra;
  return r;
}

std::vector<float> Compressor::decompress_bitcomp(
    std::span<const std::byte> bytes, double* decode_seconds) {
  core::Timer t;
  const auto inner_bytes = bitcomp_unwrap_archive(bytes);
  const double unwrap = t.lap();
  double inner_time = 0;
  auto out = decompress(inner_bytes, &inner_time);
  if (decode_seconds) *decode_seconds = unwrap + inner_time;
  return out;
}

std::vector<float> Compressor::decompress_stages(
    std::span<const std::byte> bytes, DecodeTimings& t) {
  core::Timer wall;
  auto out = decompress(bytes, nullptr);
  t.total = wall.lap();
  return out;
}

std::vector<float> Compressor::decompress_bitcomp_stages(
    std::span<const std::byte> bytes, DecodeTimings& t) {
  core::Timer wall;
  const auto inner_bytes = bitcomp_unwrap_archive(bytes);
  t.unwrap = wall.lap();
  auto out = decompress_stages(inner_bytes, t);
  t.total += t.unwrap;
  return out;
}

ProgressiveResult Compressor::decompress_progressive(
    std::span<const std::byte> /*bytes*/, int /*max_level*/) {
  throw std::invalid_argument(name() + ": progressive decode not supported");
}

namespace {

class BitcompWrapped final : public Compressor {
 public:
  explicit BitcompWrapped(std::unique_ptr<Compressor> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + " w/ Bitcomp";
  }
  [[nodiscard]] bool supports_error_bound() const override {
    return inner_->supports_error_bound();
  }
  [[nodiscard]] bool supports_fixed_rate() const override {
    return inner_->supports_fixed_rate();
  }

  // Delegates to the inner compressor's (possibly fused/pipelined)
  // bitcomp entry points; the default implementations reproduce the old
  // wrap-after / unwrap-before behaviour byte-for-byte.
  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    return inner_->compress_bitcomp(field, p);
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    return inner_->decompress_bitcomp(bytes, decode_seconds);
  }

  [[nodiscard]] std::vector<float> decompress_stages(
      std::span<const std::byte> bytes, DecodeTimings& t) override {
    return inner_->decompress_bitcomp_stages(bytes, t);
  }

  // Progressive decode dispatches on the archive magic inside the inner
  // compressor, so the wrapped ('BBCP') bytes forward unchanged.
  [[nodiscard]] ProgressiveResult decompress_progressive(
      std::span<const std::byte> bytes, int max_level) override {
    return inner_->decompress_progressive(bytes, max_level);
  }

 private:
  std::unique_ptr<Compressor> inner_;
};

}  // namespace

std::unique_ptr<Compressor> with_bitcomp(std::unique_ptr<Compressor> inner) {
  return std::make_unique<BitcompWrapped>(std::move(inner));
}

}  // namespace szi
