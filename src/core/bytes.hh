// Shared bounds-checked archive serialization layer.
//
// Every stage of every archive in this repository (cuSZ-i header, outlier
// sets, Huffman chunk tables, LZSS/RLE block framing, bundle TOCs, baseline
// codecs) parses untrusted bytes through ByteReader. The reader is
// cursor-based and enforces three guarantees on every primitive:
//
//   1. Bounds: no read ever touches bytes outside the input span; truncated
//      input throws CorruptArchive instead of reading out of bounds.
//   2. Overflow safety: element-count * element-size products are computed
//      with __builtin_mul_overflow, so an attacker-controlled count cannot
//      wrap size_t and defeat a length check.
//   3. Allocation discipline: any allocation sized from archive bytes is
//      checked against a process-wide cap (set_decode_alloc_cap), so a
//      corrupt length field cannot drive a multi-gigabyte resize.
//
// All framing is little-endian POD; see docs/FORMAT.md for the byte-level
// layout of each archive type.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace szi::core {

/// Thrown whenever archive bytes fail validation. Carries the stage (which
/// framing layer rejected the input) and the byte offset of the cursor at
/// the failure point, so corrupt archives are diagnosable without a
/// debugger. Derives from std::runtime_error: legacy catch sites keep
/// working.
class CorruptArchive : public std::runtime_error {
 public:
  CorruptArchive(std::string_view stage, std::size_t offset,
                 std::string_view detail)
      : std::runtime_error(std::string(stage) + ": " + std::string(detail) +
                           " (offset " + std::to_string(offset) + ")"),
        stage_(stage),
        offset_(offset) {}

  [[nodiscard]] const std::string& stage() const noexcept { return stage_; }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::string stage_;
  std::size_t offset_;
};

/// Process-wide cap on any single decode-side allocation sized from archive
/// bytes. The default admits any realistic scientific field while rejecting
/// absurd length fields outright; fuzz harnesses lower it to catch
/// over-allocation as a hard failure.
inline constexpr std::size_t kDefaultDecodeAllocCap =
    std::size_t{1} << 40;  // 1 TiB

namespace detail {
inline std::atomic<std::size_t>& decode_alloc_cap_ref() {
  static std::atomic<std::size_t> cap{kDefaultDecodeAllocCap};
  return cap;
}
}  // namespace detail

[[nodiscard]] inline std::size_t decode_alloc_cap() noexcept {
  return detail::decode_alloc_cap_ref().load(std::memory_order_relaxed);
}

inline void set_decode_alloc_cap(std::size_t bytes) noexcept {
  detail::decode_alloc_cap_ref().store(bytes, std::memory_order_relaxed);
}

/// RAII cap override for tests: restores the previous cap on scope exit.
class ScopedDecodeAllocCap {
 public:
  explicit ScopedDecodeAllocCap(std::size_t bytes) : prev_(decode_alloc_cap()) {
    set_decode_alloc_cap(bytes);
  }
  ~ScopedDecodeAllocCap() { set_decode_alloc_cap(prev_); }
  ScopedDecodeAllocCap(const ScopedDecodeAllocCap&) = delete;
  ScopedDecodeAllocCap& operator=(const ScopedDecodeAllocCap&) = delete;

 private:
  std::size_t prev_;
};

/// a * b with overflow detection; throws CorruptArchive naming `stage`.
[[nodiscard]] inline std::size_t checked_mul(std::string_view stage,
                                             std::size_t offset, std::size_t a,
                                             std::size_t b) {
  std::size_t out = 0;
  if (__builtin_mul_overflow(a, b, &out))
    throw CorruptArchive(stage, offset, "size computation overflows");
  return out;
}

/// Validates an allocation of `bytes` against the decode cap.
inline void guard_decode_alloc(std::string_view stage, std::size_t offset,
                               std::size_t bytes) {
  if (bytes > decode_alloc_cap())
    throw CorruptArchive(stage, offset,
                         "allocation of " + std::to_string(bytes) +
                             " bytes exceeds decode cap of " +
                             std::to_string(decode_alloc_cap()));
}

/// x * y * z of archive-declared grid dimensions, overflow-checked.
[[nodiscard]] inline std::size_t checked_volume(std::string_view stage,
                                                std::size_t offset,
                                                std::size_t x, std::size_t y,
                                                std::size_t z) {
  return checked_mul(stage, offset, checked_mul(stage, offset, x, y), z);
}

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Length-prefixed blob (u64 size + bytes).
  void put_blob(std::span<const std::byte> blob) {
    put(static_cast<std::uint64_t>(blob.size()));
    buf_.insert(buf_.end(), blob.begin(), blob.end());
  }

  /// Raw bytes, no framing — for callers assembling a blob in place whose
  /// length prefix was already written with put().
  void put_raw(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed POD array (u64 count + elements), the framing
  /// read_length_prefixed_array() parses. Span-based so workspace-resident
  /// buffers serialize without an intermediate vector.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_array(std::span<const T> v) {
    put(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put_array(std::span<const T>(v));
  }

  /// Pre-sizes the buffer (archive sizes are computable up front; growth
  /// reallocation on multi-megabyte archives is measurable).
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Cursor over untrusted archive bytes. Every primitive throws
/// CorruptArchive (never UB, never a raw out-of-bounds access) on invalid
/// input; `stage` names the framing layer in the error.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data,
                      std::string_view stage = "archive")
      : data_(data), stage_(stage) {}

  /// One little-endian POD value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T read() {
    need(sizeof(T), "value truncated");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// `n` contiguous POD values. The n * sizeof(T) product is
  /// overflow-checked and the result allocation is capped, so an
  /// attacker-controlled count can neither wrap the truncation check nor
  /// drive an over-allocation.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> read_array(std::size_t n) {
    const std::size_t bytes = checked_array_bytes(n, sizeof(T));
    need(bytes, "array truncated");
    std::vector<T> v(n);
    if (bytes > 0) std::memcpy(v.data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return v;
  }

  /// A borrowed view of `n` raw bytes (no allocation).
  [[nodiscard]] std::span<const std::byte> read_bytes(std::size_t n) {
    need(n, "byte range truncated");
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// u64 length + that many bytes, returned as a borrowed view.
  [[nodiscard]] std::span<const std::byte> read_length_prefixed() {
    const auto n = read<std::uint64_t>();
    if (n > remaining()) fail("length prefix exceeds remaining bytes");
    return read_bytes(static_cast<std::size_t>(n));
  }

  /// u64 count + count POD values (the ByteWriter::put_vector framing).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> read_length_prefixed_array() {
    const auto n = read<std::uint64_t>();
    if (n > remaining()) fail("array count exceeds remaining bytes");
    return read_array<T>(static_cast<std::size_t>(n));
  }

  /// Reads a u32 and verifies it against the expected magic number.
  void expect_magic(std::uint32_t magic) {
    const std::size_t at = pos_;
    if (read<std::uint32_t>() != magic)
      throw CorruptArchive(stage_, at, "bad magic");
  }

  /// n * elem_size, overflow-checked and validated against the decode cap.
  [[nodiscard]] std::size_t checked_array_bytes(std::size_t n,
                                                std::size_t elem_size) const {
    const std::size_t bytes = core::checked_mul(stage_, pos_, n, elem_size);
    guard_decode_alloc(stage_, pos_, bytes);
    return bytes;
  }

  /// Overflow-checked product reported against this reader's stage/offset.
  [[nodiscard]] std::size_t checked_mul(std::size_t a, std::size_t b) const {
    return core::checked_mul(stage_, pos_, a, b);
  }

  /// Validates an allocation request against the decode cap.
  void guard_alloc(std::size_t bytes) const {
    guard_decode_alloc(stage_, pos_, bytes);
  }

  [[noreturn]] void fail(std::string_view detail) const {
    throw CorruptArchive(stage_, pos_, detail);
  }

  [[nodiscard]] std::size_t offset() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::span<const std::byte> rest() const {
    return data_.subspan(pos_);
  }
  [[nodiscard]] std::string_view stage() const { return stage_; }

 private:
  // pos_ <= data_.size() is an invariant, so the subtraction cannot wrap and
  // the comparison cannot be defeated by a huge `n`.
  void need(std::size_t n, std::string_view what) const {
    if (n > data_.size() - pos_) fail(what);
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  std::string_view stage_;
};

}  // namespace szi::core
