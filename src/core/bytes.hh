// Tiny byte-stream serializer for archive headers and sections. Everything
// is little-endian POD; readers throw std::runtime_error on truncation so a
// corrupt archive can never drive out-of-bounds reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace szi::core {

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Length-prefixed blob (u64 size + bytes).
  void put_blob(std::span<const std::byte> blob) {
    put(static_cast<std::uint64_t>(blob.size()));
    buf_.insert(buf_.end(), blob.begin(), blob.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::span<const std::byte> get_blob() {
    const auto n = get<std::uint64_t>();
    need(n);
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    need(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::span<const std::byte> rest() const {
    return data_.subspan(pos_);
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::runtime_error("archive truncated (need " + std::to_string(n) +
                               " bytes at offset " + std::to_string(pos_) + ")");
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace szi::core
