#include "core/cuszi.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include <optional>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/stream.hh"
#include "device/thread_pool.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "io/archive_source.hh"
#include "metrics/stats.hh"
#include "predictor/anchor.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"

namespace szi {

namespace {

constexpr std::uint32_t kMagic = 0x31495A53;    // "SZI1" (legacy)
constexpr std::uint32_t kMagicV2 = 0x32495A53;  // "SZI2" (level-segmented)

struct PackedConfig {
  double alpha;
  std::uint8_t cubic[3];
  std::uint8_t order[3];
  std::uint16_t radius;
};
static_assert(sizeof(PackedConfig) == 16, "archive layout is padding-free");

/// Bytes of the fixed inner-archive header: magic | precision | dims | eb |
/// PackedConfig. v1 archives follow with the anchor count; v2 archives with
/// the segment directory.
constexpr std::size_t kInnerFixedBytes =
    sizeof(std::uint32_t) + sizeof(std::uint8_t) + 3 * sizeof(std::uint64_t) +
    sizeof(double) + sizeof(PackedConfig);

/// One row of the SZI2 segment directory. Segments are laid out back to
/// back immediately after the directory: anchors, outliers, then one
/// independently framed Huffman stream per interpolation level in
/// descending level order (coarsest first), so a preview at level L is a
/// prefix of the archive. An optional trailing kind-3 tile-index segment
/// (TIDX) rides after the levels — behind every prefix a preview needs, so
/// progressive reads never pay for it. Reserved fields are written zero and
/// must read zero.
struct SegmentEntry {
  std::uint8_t kind = 0;   ///< kSegAnchors/kSegOutliers/kSegLevel/kSegTileIndex
  std::uint8_t level = 0;  ///< 1-based interpolation level (kind 2), else 0
  std::uint16_t reserved0 = 0;
  std::uint32_t reserved1 = 0;
  std::uint64_t count = 0;   ///< elements: anchors, outliers, or symbols
  std::uint64_t offset = 0;  ///< absolute byte offset of the payload
  std::uint64_t size = 0;    ///< payload bytes
};
static_assert(sizeof(SegmentEntry) == 32, "archive layout is padding-free");

constexpr std::uint8_t kSegAnchors = 0;
constexpr std::uint8_t kSegOutliers = 1;
constexpr std::uint8_t kSegLevel = 2;
constexpr std::uint8_t kSegTileIndex = 3;

/// TIDX — the random-access tile index (kind 3). One entry per (level,
/// z-slab) pair maps the slab's first level symbol to its exact coordinates
/// in the archive: stream rank, Huffman chunk, payload byte, and the 64 KiB
/// LZSS block a 'BBC2' wrapper would place that byte in. Every field is a
/// closed form of (dims, per-level chunk tables), so both SZI2 writers emit
/// identical index bytes and decoders re-derive and cross-check all of it.
constexpr std::uint16_t kTidxVersion = 1;

/// Payload header: u16 version | u16 reserved | u32 slab_z | u32 nlevels |
/// u32 nslabs, then nlevels * nslabs entries (levels descending to match
/// the segment order, slabs ascending within a level).
constexpr std::size_t kTidxHeaderBytes =
    2 * sizeof(std::uint16_t) + 3 * sizeof(std::uint32_t);

struct TidxEntry {
  std::uint64_t sym_rank;    ///< level symbols strictly below the slab plane
  std::uint64_t code_byte;   ///< payload-relative byte of the covering chunk
  std::uint32_t huff_chunk;  ///< Huffman chunk index containing sym_rank
  std::uint32_t wrap_block;  ///< 64 KiB LZSS block of that byte (method 0)
};
static_assert(sizeof(TidxEntry) == 24, "archive layout is padding-free");

/// z-slab granularity of the tile index: the reconstruction tile depth, so
/// one index row covers exactly one reconstructor slab.
std::size_t tidx_slab_z(const dev::Dim3& dims) {
  return predictor::geometry_for(dims).tile.z;
}

std::size_t tidx_nslabs(const dev::Dim3& dims) {
  return dev::ceil_div(dims.z, tidx_slab_z(dims));
}

std::uint64_t tidx_entry_count(const dev::Dim3& dims, int nlevels) {
  return static_cast<std::uint64_t>(nlevels) * tidx_nslabs(dims);
}

std::uint64_t tidx_payload_bytes(const dev::Dim3& dims, int nlevels) {
  return kTidxHeaderBytes + tidx_entry_count(dims, nlevels) * sizeof(TidxEntry);
}

/// Per-level stream shape the tile index derives from. Both SZI2 writers
/// populate this from their own framing state (the plain writer by
/// re-parsing the stream headers it just wrote, the fused writer straight
/// from its encode plans), so the emitted index bytes agree byte-for-byte.
struct TidxLevelMeta {
  std::size_t chunk_size = 0;
  std::size_t nchunks = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t header_bytes = 0;
  std::span<const std::uint64_t> offsets;  ///< per-chunk payload bytes
};

std::vector<std::byte> build_tidx(const dev::Dim3& dims,
                                  std::span<const TidxLevelMeta> metas) {
  const std::size_t slab_z = tidx_slab_z(dims);
  const std::size_t nslabs = tidx_nslabs(dims);
  const int nlevels = static_cast<int>(metas.size());
  core::ByteWriter w;
  w.reserve(static_cast<std::size_t>(tidx_payload_bytes(dims, nlevels)));
  w.put(kTidxVersion);
  w.put(static_cast<std::uint16_t>(0));
  w.put(static_cast<std::uint32_t>(slab_z));
  w.put(static_cast<std::uint32_t>(nlevels));
  w.put(static_cast<std::uint32_t>(nslabs));
  for (int level = nlevels; level >= 1; --level) {
    const auto& m = metas[static_cast<std::size_t>(level - 1)];
    for (std::size_t k = 0; k < nslabs; ++k) {
      TidxEntry e{};
      e.sym_rank = predictor::ginterp_level_prefix(dims, level, k * slab_z);
      // A slab starting past the level's last symbol (all of its positions
      // sit below the plane) points one past the payload.
      const std::size_t chunk =
          m.chunk_size == 0
              ? 0
              : static_cast<std::size_t>(e.sym_rank) / m.chunk_size;
      e.huff_chunk = static_cast<std::uint32_t>(chunk);
      e.code_byte = chunk < m.nchunks ? m.offsets[chunk] : m.payload_bytes;
      e.wrap_block = static_cast<std::uint32_t>(
          (m.header_bytes + e.code_byte) / lossless::kLzssBlock);
      w.put(e);
    }
  }
  return w.take();
}

/// Total header bytes of a v2 archive with `nseg` segments: fixed header,
/// u32 segment count, directory. Segment payloads start here.
constexpr std::size_t v2_header_bytes(std::size_t nseg) {
  return kInnerFixedBytes + sizeof(std::uint32_t) +
         nseg * sizeof(SegmentEntry);
}

PackedConfig pack_config(const predictor::InterpConfig& cfg, int radius) {
  PackedConfig pc{};
  pc.alpha = cfg.alpha;
  for (int i = 0; i < 3; ++i) {
    pc.cubic[i] =
        static_cast<std::uint8_t>(cfg.cubic[static_cast<std::size_t>(i)]);
    pc.order[i] = cfg.dim_order[static_cast<std::size_t>(i)];
  }
  pc.radius = static_cast<std::uint16_t>(radius);
  return pc;
}

/// First four archive bytes, or 0 when the buffer is shorter — callers
/// dispatch on the value and let the selected parser report truncation.
std::uint32_t peek_magic(std::span<const std::byte> bytes) {
  std::uint32_t m = 0;
  if (bytes.size() >= sizeof(m)) std::memcpy(&m, bytes.data(), sizeof(m));
  return m;
}

template <typename T>
constexpr Precision precision_of() {
  return sizeof(T) == 4 ? Precision::F32 : Precision::F64;
}

struct Tuned {
  double eb;
  predictor::InterpConfig cfg;
};

/// Whether offloading LZSS blocks to a dev::Stream can actually overlap
/// with the host thread. On a single-hardware-thread machine the stream
/// only adds context-switch ping-pong, so the pipelined paths run the same
/// block tasks inline at the same watermark points instead — identical
/// bytes, better cache locality (each block is processed while still hot
/// from being written/needed).
bool stream_overlap_pays() {
  return dev::ThreadPool::instance().worker_count() > 1;
}

/// Shared front half of every compress path: parameter validation plus the
/// profiling auto-tune kernel (which also resolves Rel -> Abs).
template <typename T>
Tuned autotune_checked(std::span<const T> data, const dev::Dim3& dims,
                       const CompressParams& p, dev::Workspace& ws) {
  if (p.mode == ErrorMode::FixedRate)
    throw std::invalid_argument("cuSZ-i: fixed-rate mode not supported");
  if (p.mode == ErrorMode::PwRel)
    throw std::invalid_argument(
        "cuSZ-i: pointwise-relative mode requires with_pointwise_rel()");
  if (data.size() != dims.volume())
    throw std::invalid_argument("cuSZ-i: size/dims mismatch");

  auto prof = predictor::autotune(data, dims, p.value, ws);
  const double eb =
      p.mode == ErrorMode::Rel ? p.value * prof.value_range : p.value;
  if (eb <= 0) throw std::invalid_argument("cuSZ-i: non-positive error bound");
  if (p.mode == ErrorMode::Rel) {
    // ε changed meaning: recompute α for the absolute bound.
    prof.epsilon = p.value;
    prof.config.alpha = predictor::alpha_of_epsilon(prof.epsilon);
  }
  return {eb, prof.config};
}

/// The legacy SZI1 single-stream writer, retained byte-for-byte so
/// back-compat tests can mint v1 archives against the version-dispatched
/// decoders (cuszi_compress_v1).
template <typename T>
std::vector<std::byte> compress_v1_typed(std::span<const T> data,
                                         const dev::Dim3& dims,
                                         const CompressParams& p,
                                         StageTimings* timings,
                                         dev::Workspace& ws) {
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  const Tuned tuned = autotune_checked(data, dims, p, ws);
  t.predict += stage.lap();

  constexpr int kRadius = quant::kDefaultRadius;
  auto fz = predictor::ginterp_compress_fused(data, dims, tuned.eb, tuned.cfg,
                                              kRadius, ws);
  const auto& pred = fz.pred;
  t.predict += stage.lap();
  t.histogram = 0;
  t.histogram_fused = true;

  const auto book = huffman::Codebook::build(fz.histogram);
  t.codebook = stage.lap();
  const auto huff =
      huffman::encode_with_book(pred.codes, book, huffman::kDefaultChunk, ws);
  t.encode = stage.lap();

  core::ByteWriter w;
  const std::size_t outlier_blob =
      sizeof(std::uint64_t) + pred.outliers.byte_size();
  w.reserve(64 + pred.anchors.size() * sizeof(T) + outlier_blob + huff.size());
  w.put(kMagic);
  w.put(static_cast<std::uint8_t>(precision_of<T>()));
  w.put(static_cast<std::uint64_t>(dims.x));
  w.put(static_cast<std::uint64_t>(dims.y));
  w.put(static_cast<std::uint64_t>(dims.z));
  w.put(tuned.eb);
  w.put(pack_config(tuned.cfg, kRadius));
  w.put_array(pred.anchors);
  // Outlier blob assembled in place — same framing as
  // put_blob(OutlierSetT::serialize()): u64 blob size | u64 n | idx | vals.
  w.put(static_cast<std::uint64_t>(outlier_blob));
  w.put(static_cast<std::uint64_t>(pred.outliers.count()));
  w.put_raw(std::as_bytes(pred.outliers.indices));
  w.put_raw(std::as_bytes(pred.outliers.values));
  w.put_blob(huff);
  ws.reset();
  t.total = total.lap();
  if (timings) *timings = t;
  return w.take();
}

/// Builds the v2 segment directory from the prediction output and the
/// already-framed per-level Huffman streams (indexed level-1). Offsets are
/// assigned contiguously from the end of the header in archive order:
/// anchors, outliers, levels descending, then the trailing tile index
/// (whose size is a closed form of dims, so the directory freezes before
/// the index payload exists).
template <typename T>
std::vector<SegmentEntry> make_directory(
    const predictor::GInterpViewT<T>& pred, const dev::Dim3& dims,
    std::span<const std::uint64_t> level_counts,
    std::span<const std::uint64_t> level_sizes) {
  const int nlevels = static_cast<int>(level_sizes.size());
  std::vector<SegmentEntry> segs(3 + static_cast<std::size_t>(nlevels));
  std::uint64_t off = v2_header_bytes(segs.size());
  segs[0].kind = kSegAnchors;
  segs[0].count = pred.anchors.size();
  segs[0].offset = off;
  segs[0].size = pred.anchors.size() * sizeof(T);
  off += segs[0].size;
  segs[1].kind = kSegOutliers;
  segs[1].count = pred.outliers.count();
  segs[1].offset = off;
  segs[1].size = sizeof(std::uint64_t) + pred.outliers.byte_size();
  off += segs[1].size;
  for (int j = 0; j < nlevels; ++j) {
    const int level = nlevels - j;
    auto& s = segs[2 + static_cast<std::size_t>(j)];
    s.kind = kSegLevel;
    s.level = static_cast<std::uint8_t>(level);
    s.count = level_counts[static_cast<std::size_t>(level - 1)];
    s.offset = off;
    s.size = level_sizes[static_cast<std::size_t>(level - 1)];
    off += s.size;
  }
  auto& tx = segs.back();
  tx.kind = kSegTileIndex;
  tx.count = tidx_entry_count(dims, nlevels);
  tx.offset = off;
  tx.size = tidx_payload_bytes(dims, nlevels);
  return segs;
}

/// The SZI2 writer behind every default compress path. The fused pipeline
/// re-buckets each owned row's codes into per-level streams inside the
/// predict kernel (one exact histogram per level as a byproduct); the
/// unfused reference splits the finished code array afterwards — the
/// streams and histograms are byte-identical, so fused and unfused archives
/// stay in lockstep. Each level is framed through the one-pass
/// encode_with_book_serial with its own codebook (`unified` shares one book
/// across all levels for the ratio ablation; the framing is unchanged).
/// `topk` is accepted for call-site stability but inert here: the per-level
/// histograms are exact by construction.
template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool fused,
                                      bool topk, dev::Workspace& ws,
                                      bool unified = false) {
  (void)topk;
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  const Tuned tuned = autotune_checked(data, dims, p, ws);
  t.predict += stage.lap();

  constexpr int kRadius = quant::kDefaultRadius;
  const std::size_t nbins = 2 * static_cast<std::size_t>(kRadius);
  predictor::GInterpViewT<T> pred;
  predictor::GInterpLevelSplit levels;
  if (fused) {
    auto fl = predictor::ginterp_compress_fused_levels(data, dims, tuned.eb,
                                                       tuned.cfg, kRadius, ws);
    pred = fl.pred;
    levels = std::move(fl.levels);
    t.predict += stage.lap();
    t.histogram = 0;
    t.histogram_fused = true;
  } else {
    pred = predictor::ginterp_compress(data, dims, tuned.eb, tuned.cfg,
                                       kRadius, ws);
    t.predict += stage.lap();
    levels = predictor::ginterp_split_levels(pred.codes, dims, nbins, ws);
    t.histogram = stage.lap();
  }

  const int nlevels = static_cast<int>(levels.streams.size());
  std::vector<huffman::Codebook> books;
  if (unified) {
    std::vector<std::uint32_t> sum(nbins, 0);
    for (const auto& h : levels.histograms)
      for (std::size_t b = 0; b < nbins; ++b) sum[b] += h[b];
    const auto book = huffman::Codebook::build(sum);
    books.assign(static_cast<std::size_t>(nlevels), book);
  } else {
    books = huffman::build_level_books(levels.histograms);
  }
  t.codebook = stage.lap();

  std::vector<std::span<const std::byte>> streams(
      static_cast<std::size_t>(nlevels));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(nlevels));
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(nlevels));
  for (int l = 1; l <= nlevels; ++l) {
    const auto i = static_cast<std::size_t>(l - 1);
    streams[i] = huffman::encode_with_book_serial(
        levels.streams[i], books[i], huffman::kDefaultChunk, ws);
    counts[i] = levels.streams[i].size();
    sizes[i] = streams[i].size();
  }

  // Tile index, derived from the streams just framed: re-parse each header
  // for its chunk-offset table (header-only, no payload decode) so this
  // writer and the fused one compute the index from identical inputs.
  std::vector<TidxLevelMeta> metas(static_cast<std::size_t>(nlevels));
  for (int l = 1; l <= nlevels; ++l) {
    const auto i = static_cast<std::size_t>(l - 1);
    const auto plan =
        huffman::decode_plan_header(streams[i], streams[i].size(), ws);
    metas[i] = {plan.chunk_size, plan.nchunks, plan.payload_bytes,
                streams[i].size() - static_cast<std::size_t>(plan.payload_bytes),
                plan.offsets};
  }
  const auto tidx = build_tidx(dims, metas);
  t.encode = stage.lap();

  const auto segs = make_directory<T>(pred, dims, counts, sizes);
  core::ByteWriter w;
  w.reserve(static_cast<std::size_t>(segs.back().offset + segs.back().size));
  w.put(kMagicV2);
  w.put(static_cast<std::uint8_t>(precision_of<T>()));
  w.put(static_cast<std::uint64_t>(dims.x));
  w.put(static_cast<std::uint64_t>(dims.y));
  w.put(static_cast<std::uint64_t>(dims.z));
  w.put(tuned.eb);
  w.put(pack_config(tuned.cfg, kRadius));
  w.put(static_cast<std::uint32_t>(segs.size()));
  for (const auto& s : segs) w.put(s);
  w.put_raw(std::as_bytes(pred.anchors));
  w.put(static_cast<std::uint64_t>(pred.outliers.count()));
  w.put_raw(std::as_bytes(pred.outliers.indices));
  w.put_raw(std::as_bytes(pred.outliers.values));
  for (std::size_t i = 2; i < segs.size(); ++i)
    if (segs[i].kind == kSegLevel)
      w.put_raw(streams[static_cast<std::size_t>(segs[i].level - 1)]);
  w.put_raw(tidx);
  ws.reset();
  t.total = total.lap();
  if (timings) *timings = t;
  return w.take();
}

template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool fused,
                                      bool topk, bool unified = false) {
  // Throwaway arena: malloc-equivalent lifetime, no global memory retained.
  // Pooling across calls is opt-in via the Workspace overload.
  dev::Arena local;
  dev::Workspace ws(local);
  return compress_typed<T>(data, dims, p, timings, fused, topk, ws, unified);
}

/// The fused compress-to-wrapped-archive pipeline (re-threaded for the
/// level-segmented SZI2 layout and the per-segment 'BBC2' container):
/// predict and per-level re-bucketing fuse into one pass; every level's
/// Huffman stream is planned up front (the segment directory needs exact
/// sizes before the first payload byte), the inner archive is assembled
/// exactly once in workspace memory with each segment's payload emitted
/// straight into its final slot, and the de-redundancy pass rides the same
/// rising watermark — each wrapper segment speculatively LZSS-compresses
/// its 64 KiB blocks as raw bytes finalize (stream mode), then runs the
/// sampled method chooser the moment the segment completes; a transform
/// win (zero-RLE / bitshuffle) re-encodes the transformed bytes and the
/// speculative blocks are simply dropped (their tasks finish harmlessly
/// before the drain). Per-block output depends only on the block's bytes,
/// so the archive is byte-identical to
/// bitcomp_wrap_archive(compress_typed(...), mode) for every worker count.
template <typename T>
std::vector<std::byte> compress_bitcomp_typed(std::span<const T> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& p,
                                              StageTimings* timings,
                                              dev::Workspace& ws,
                                              lossless::LzssMode mode) {
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  const Tuned tuned = autotune_checked(data, dims, p, ws);
  t.predict += stage.lap();

  constexpr int kRadius = quant::kDefaultRadius;
  const auto fl = predictor::ginterp_compress_fused_levels(
      data, dims, tuned.eb, tuned.cfg, kRadius, ws);
  const auto& pred = fl.pred;
  t.predict += stage.lap();
  t.histogram = 0;
  t.histogram_fused = true;

  const auto books = huffman::build_level_books(fl.levels.histograms);
  t.codebook = stage.lap();

  // Per-level encode plans. The sizing pass always runs — even serially —
  // because the directory freezes every segment's offset and size before
  // any payload byte can be written; the chunk emission below is then
  // byte-identical to the one-pass encode_with_book_serial the plain writer
  // uses (chunk contents depend only on the codes and the book).
  const int nlevels = static_cast<int>(fl.levels.streams.size());
  std::vector<huffman::EncodePlan> plans(static_cast<std::size_t>(nlevels));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(nlevels));
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(nlevels));
  for (int l = 1; l <= nlevels; ++l) {
    const auto i = static_cast<std::size_t>(l - 1);
    plans[i] = huffman::encode_plan(fl.levels.streams[i], books[i],
                                    huffman::kDefaultChunk, ws);
    counts[i] = fl.levels.streams[i].size();
    sizes[i] = plans[i].stream_bytes();
  }
  const auto segs = make_directory<T>(pred, dims, counts, sizes);
  const std::size_t raw_size =
      static_cast<std::size_t>(segs.back().offset + segs.back().size);

  std::optional<dev::Stream> lz;
  if (stream_overlap_pays()) lz.emplace();
  auto raw = ws.make<std::byte>(raw_size);

  // De-redundancy state, one record per BBC2 wrapper segment: the header +
  // directory range, then one range per inner segment (the same split
  // wrap_partition derives from the directory, so the two paths agree).
  // Blocks are submitted to the stream once the watermark of final raw
  // bytes passes their end; each task reads only bytes below the watermark
  // at submit time and the host thread writes only bytes above it, so the
  // two sides never touch the same byte concurrently. Submissions below a
  // segment's end speculate method 0 (LZSS over raw bytes); when the
  // watermark closes the segment the sampled chooser runs, and a transform
  // win re-encodes fresh blocks over the transformed bytes while the
  // speculative tasks finish into their never-read slices. On a serial
  // machine each segment compresses inline at its completion watermark.
  const std::size_t bs = lossless::kLzssBlock;
  const std::size_t stride = bs + lossless::kLzssTokenSlack;

  struct WSeg {
    std::size_t off = 0;  ///< raw-archive offset
    std::size_t len = 0;  ///< raw-archive length
    lossless::Method method = lossless::Method::Lzss;
    std::span<const std::byte> src;  ///< stream source (raw or transformed)
    std::size_t nblocks = 0;
    std::span<std::byte> slices;
    std::span<std::uint64_t> enc;
    std::size_t next = 0;  ///< speculative submit progress
  };
  std::vector<WSeg> wsegs(segs.size() + 1);
  wsegs[0].len = static_cast<std::size_t>(segs.front().offset);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    wsegs[i + 1].off = static_cast<std::size_t>(segs[i].offset);
    wsegs[i + 1].len = static_cast<std::size_t>(segs[i].size);
  }
  for (auto& wsg : wsegs) {
    wsg.src = std::span<const std::byte>(raw.data() + wsg.off, wsg.len);
    wsg.nblocks = wsg.len == 0 ? 0 : dev::ceil_div(wsg.len, bs);
    wsg.slices = ws.make<std::byte>(wsg.nblocks * stride);
    wsg.enc = ws.make<std::uint64_t>(wsg.nblocks);
  }

  const auto submit_block = [&](WSeg& wsg, std::size_t b) {
    const std::size_t begin = b * bs;
    const std::size_t len = std::min(bs, wsg.src.size() - begin);
    const std::byte* in = wsg.src.data() + begin;
    std::byte* out = wsg.slices.data() + b * stride;
    std::uint64_t* esz = wsg.enc.data() + b;
    if (lz) {
      lz->submit([in, len, out, stride, esz, mode] {
        *esz = lossless::lzss_compress_block({in, len}, {out, stride},
                                             dev::Arena::instance(), mode);
      });
    } else {
      *esz = lossless::lzss_compress_block({in, len}, {out, stride},
                                           dev::Arena::instance(), mode);
    }
  };

  const auto finalize_seg = [&](WSeg& wsg) {
    // The chooser reads the completed raw range on the host; in-flight
    // speculative tasks read the same bytes — both sides are read-only
    // below the watermark, so no handshake is needed. choose_method is a
    // pure function of (bytes, mode): this decision is byte-for-byte the
    // one bitcomp_wrap_archive makes for the same segment.
    const auto seg_bytes =
        std::span<const std::byte>(raw.data() + wsg.off, wsg.len);
    wsg.method = lossless::choose_method(seg_bytes, mode, ws);
    if (wsg.method == lossless::Method::Lzss) {
      // Speculation was right. Stream mode already submitted every block
      // (the watermark covers the segment); serial mode compresses now.
      if (!lz)
        for (std::size_t b = 0; b < wsg.nblocks; ++b) submit_block(wsg, b);
      return;
    }
    // Transform won: re-point the segment at the transformed bytes and
    // encode fresh blocks over them. The speculative slices are dropped —
    // any tasks still running write into memory nothing reads again.
    wsg.src = lossless::method_transform(seg_bytes, wsg.method, ws);
    wsg.nblocks = wsg.src.empty() ? 0 : dev::ceil_div(wsg.src.size(), bs);
    wsg.slices = ws.make<std::byte>(wsg.nblocks * stride);
    wsg.enc = ws.make<std::uint64_t>(wsg.nblocks);
    for (std::size_t b = 0; b < wsg.nblocks; ++b) submit_block(wsg, b);
  };

  std::size_t cur_seg = 0;
  const auto submit_upto = [&](std::size_t watermark) {
    while (cur_seg < wsegs.size()) {
      WSeg& wsg = wsegs[cur_seg];
      if (lz) {
        while (wsg.next < wsg.nblocks) {
          const std::size_t bend =
              wsg.off + std::min((wsg.next + 1) * bs, wsg.len);
          if (bend > watermark) break;
          submit_block(wsg, wsg.next);
          ++wsg.next;
        }
      }
      if (watermark < wsg.off + wsg.len) break;
      finalize_seg(wsg);
      ++cur_seg;
    }
  };

  // Header + directory + anchor/outlier segments (small, serial), then the
  // level segments coarsest-first: each segment's stream header, then its
  // payload in ~4-block chunk groups, advancing the watermark after every
  // group so whole 64 KiB regions hand off to the LZSS pass while the next
  // level is still encoding.
  {
    std::byte* wp = raw.data();
    const auto put = [&wp](const auto& v) {
      std::memcpy(wp, &v, sizeof(v));
      wp += sizeof(v);
    };
    put(kMagicV2);
    put(static_cast<std::uint8_t>(precision_of<T>()));
    put(static_cast<std::uint64_t>(dims.x));
    put(static_cast<std::uint64_t>(dims.y));
    put(static_cast<std::uint64_t>(dims.z));
    put(tuned.eb);
    put(pack_config(tuned.cfg, kRadius));
    put(static_cast<std::uint32_t>(segs.size()));
    std::memcpy(wp, segs.data(), segs.size() * sizeof(SegmentEntry));
    wp += segs.size() * sizeof(SegmentEntry);
    std::memcpy(wp, pred.anchors.data(), pred.anchors.size() * sizeof(T));
    wp += pred.anchors.size() * sizeof(T);
    put(static_cast<std::uint64_t>(pred.outliers.count()));
    std::memcpy(wp, pred.outliers.indices.data(),
                pred.outliers.indices.size_bytes());
    wp += pred.outliers.indices.size_bytes();
    std::memcpy(wp, pred.outliers.values.data(),
                pred.outliers.values.size_bytes());
    wp += pred.outliers.values.size_bytes();
    submit_upto(static_cast<std::size_t>(wp - raw.data()));
  }

  constexpr std::uint64_t kGroupBytes = 4 * lossless::kLzssBlock;
  for (std::size_t si = 2; si < segs.size(); ++si) {
    if (segs[si].kind != kSegLevel) continue;
    const auto i = static_cast<std::size_t>(segs[si].level - 1);
    const auto& plan = plans[i];
    const auto& book = books[i];
    const auto codes = fl.levels.streams[i];
    const std::size_t base = static_cast<std::size_t>(segs[si].offset);
    huffman::write_stream_header(plan, book, raw.subspan(base));
    const std::size_t payload_off = base + plan.header_bytes;
    submit_upto(payload_off);
    const auto payload = raw.subspan(
        payload_off, static_cast<std::size_t>(plan.payload_bytes));
    std::size_t c = 0;
    while (c < plan.nchunks) {
      const std::uint64_t start = plan.offsets[c];
      std::size_t cend = c + 1;
      while (cend < plan.nchunks && plan.offsets[cend] - start < kGroupBytes)
        ++cend;
      huffman::encode_chunks(codes, book, plan, c, cend, payload);
      c = cend;
      const std::uint64_t done =
          c < plan.nchunks ? plan.offsets[c] : plan.payload_bytes;
      submit_upto(payload_off + static_cast<std::size_t>(done));
    }
  }
  {
    // Tile index, straight from the encode plans, written into its final
    // slot; closing the watermark then hands its wrapper segment to the
    // chooser like any other.
    std::vector<TidxLevelMeta> metas(static_cast<std::size_t>(nlevels));
    for (int l = 1; l <= nlevels; ++l) {
      const auto i = static_cast<std::size_t>(l - 1);
      metas[i] = {plans[i].chunk_size, plans[i].nchunks,
                  plans[i].payload_bytes, plans[i].header_bytes,
                  plans[i].offsets};
    }
    const auto tidx = build_tidx(dims, metas);
    std::memcpy(raw.data() + static_cast<std::size_t>(segs.back().offset),
                tidx.data(), tidx.size());
  }
  submit_upto(raw_size);
  if (lz) lz->synchronize();

  // Final wrapped archive, assembled directly into the returned vector:
  // 'BBC2' magic | u32 nseg | segment table | per-segment LZSS streams.
  const std::size_t nwseg = wsegs.size();
  std::vector<std::size_t> stream_sizes(nwseg);
  std::size_t payload_total = 0;
  for (std::size_t i = 0; i < nwseg; ++i) {
    stream_sizes[i] =
        lossless::lzss_stream_size(wsegs[i].src.size(), bs, wsegs[i].enc);
    payload_total += stream_sizes[i];
  }
  std::vector<std::byte> out(2 * sizeof(std::uint32_t) +
                             nwseg * sizeof(WrapSegmentEntry) + payload_total);
  std::byte* op = out.data();
  std::memcpy(op, &kBitcompWrapMagicV2, sizeof(kBitcompWrapMagicV2));
  op += sizeof(kBitcompWrapMagicV2);
  const auto nseg32 = static_cast<std::uint32_t>(nwseg);
  std::memcpy(op, &nseg32, sizeof(nseg32));
  op += sizeof(nseg32);
  for (std::size_t i = 0; i < nwseg; ++i) {
    WrapSegmentEntry e;
    e.method = static_cast<std::uint8_t>(wsegs[i].method);
    e.raw_size = wsegs[i].len;
    e.size = stream_sizes[i];
    std::memcpy(op, &e, sizeof(e));
    op += sizeof(e);
  }
  for (std::size_t i = 0; i < nwseg; ++i) {
    lossless::lzss_assemble(wsegs[i].src, bs, wsegs[i].slices, stride,
                            wsegs[i].enc, {op, stream_sizes[i]});
    op += stream_sizes[i];
  }
  ws.reset();
  t.encode = stage.lap();
  t.total = total.lap();
  if (timings) *timings = t;
  return out;
}

struct InnerHeader {
  dev::Dim3 dims;
  std::size_t volume = 0;
  double eb = 0;
  predictor::InterpConfig cfg;
  int radius = 0;
};

/// Parses + validates the fixed kInnerFixedBytes header (both versions
/// share it; `magic` selects which one the caller expects).
template <typename T>
InnerHeader parse_inner_header(core::ByteReader& rd,
                               std::uint32_t magic = kMagic) {
  rd.expect_magic(magic);
  const auto prec_byte = rd.read<std::uint8_t>();
  if (prec_byte > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  if (static_cast<Precision>(prec_byte) != precision_of<T>())
    rd.fail("archive precision mismatch");
  InnerHeader h;
  h.dims.x = rd.read<std::uint64_t>();
  h.dims.y = rd.read<std::uint64_t>();
  h.dims.z = rd.read<std::uint64_t>();
  h.volume =
      core::checked_volume("cusz-i", rd.offset(), h.dims.x, h.dims.y, h.dims.z);
  (void)rd.checked_array_bytes(h.volume, sizeof(T));
  h.eb = rd.read<double>();
  const auto pc = rd.read<PackedConfig>();
  h.cfg.alpha = pc.alpha;
  for (int i = 0; i < 3; ++i) {
    if (pc.cubic[i] > static_cast<std::uint8_t>(predictor::CubicKind::Natural))
      rd.fail("unknown cubic kind");
    if (pc.order[i] > 2) rd.fail("interpolation dim order out of range");
    h.cfg.cubic[static_cast<std::size_t>(i)] =
        static_cast<predictor::CubicKind>(pc.cubic[i]);
    h.cfg.dim_order[static_cast<std::size_t>(i)] = pc.order[i];
  }
  h.radius = pc.radius;
  return h;
}

/// Parses an outlier blob (u64 n | idx | vals) into workspace-resident
/// arrays — archive bytes are unaligned, so both arrays are memcpy'd, with
/// the same validation OutlierSetT::deserialize performs.
template <typename T>
quant::OutlierViewT<T> parse_outlier_blob(std::span<const std::byte> blob,
                                          dev::Workspace& ws) {
  core::ByteReader rd(blob, "outlier-set");
  const auto n64 = rd.read<std::uint64_t>();
  if (n64 > rd.remaining()) rd.fail("count exceeds remaining bytes");
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t ibytes = rd.checked_array_bytes(n, sizeof(std::uint64_t));
  auto idx = ws.make<std::uint64_t>(n);
  if (n > 0) std::memcpy(idx.data(), rd.read_bytes(ibytes).data(), ibytes);
  const std::size_t vbytes = rd.checked_array_bytes(n, sizeof(T));
  auto vals = ws.make<T>(n);
  if (n > 0) std::memcpy(vals.data(), rd.read_bytes(vbytes).data(), vbytes);
  quant::OutlierViewT<T> v;
  v.indices = idx;
  v.values = vals;
  return v;
}

/// Parses + validates the SZI2 segment directory against the header's
/// geometry: the segment count, kinds, levels, counts, and sizes are all
/// derivable from `dims` (and the outlier count), so every field is checked
/// against its closed form; offsets must be exactly contiguous from the end
/// of the header. The caller's ByteReader sits right after the fixed header
/// and is left at the first segment payload.
template <typename T>
std::vector<SegmentEntry> parse_v2_directory(core::ByteReader& rd,
                                             const InnerHeader& h) {
  const int nlevels = predictor::ginterp_level_count(h.dims);
  const auto nseg = rd.read<std::uint32_t>();
  // Pre-index archives carry anchors + outliers + levels; indexed archives
  // append one trailing kind-3 tile-index segment. Anything else is corrupt.
  const auto base = static_cast<std::uint32_t>(nlevels) + 2;
  if (nseg != base && nseg != base + 1) rd.fail("segment count mismatch");
  std::vector<SegmentEntry> segs(nseg);
  for (auto& s : segs) s = rd.read<SegmentEntry>();
  std::uint64_t cursor = rd.offset();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& s = segs[i];
    if (s.reserved0 != 0 || s.reserved1 != 0)
      rd.fail("reserved segment field set");
    if (s.offset != cursor) rd.fail("segment offsets not contiguous");
    if (s.size > std::numeric_limits<std::uint64_t>::max() - cursor)
      rd.fail("segment extent overflows");
    cursor += s.size;
    if (i == 0) {
      if (s.kind != kSegAnchors || s.level != 0)
        rd.fail("first segment is not the anchor grid");
      if (s.size != rd.checked_array_bytes(
                        static_cast<std::size_t>(s.count), sizeof(T)))
        rd.fail("anchor segment size mismatch");
    } else if (i == 1) {
      if (s.kind != kSegOutliers || s.level != 0)
        rd.fail("second segment is not the outlier set");
      if (s.count > h.volume) rd.fail("outlier count exceeds volume");
      if (s.size != sizeof(std::uint64_t) +
                        s.count * (sizeof(std::uint64_t) + sizeof(T)))
        rd.fail("outlier segment size mismatch");
    } else if (i < 2 + static_cast<std::size_t>(nlevels)) {
      const int level = nlevels - static_cast<int>(i) + 2;
      if (s.kind != kSegLevel || s.level != level)
        rd.fail("level segments out of order");
      if (s.count != predictor::ginterp_level_volume(h.dims, level))
        rd.fail("level symbol count mismatch");
    } else {
      if (s.kind != kSegTileIndex || s.level != 0)
        rd.fail("trailing segment is not the tile index");
      if (s.count != tidx_entry_count(h.dims, nlevels))
        rd.fail("tile index entry count mismatch");
      if (s.size != tidx_payload_bytes(h.dims, nlevels))
        rd.fail("tile index size mismatch");
    }
  }
  return segs;
}

/// Serial SZI2 decode: anchors and outliers come straight from their
/// segments, the code array is prefilled with the "perfectly predicted"
/// code (what anchor positions carried in the v1 single stream), and each
/// level's Huffman stream decodes and scatters through LevelScatterCursor.
/// The reconstruction is then exactly the v1 path over an identical code
/// array, so v2 decode is bit-identical to v1 decode of the same field.
template <typename T>
std::vector<T> decompress_v2_typed(std::span<const std::byte> bytes,
                                   dev::Workspace& ws,
                                   DecodeTimings* dt = nullptr) {
  core::Timer wall;
  core::ByteReader rd(bytes, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd, kMagicV2);
  const auto segs = parse_v2_directory<T>(rd, h);

  const std::size_t acount = static_cast<std::size_t>(segs[0].count);
  const std::size_t abytes = static_cast<std::size_t>(segs[0].size);
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  const auto outliers = parse_outlier_blob<T>(
      rd.read_bytes(static_cast<std::size_t>(segs[1].size)), ws);
  if (outliers.indices.size() != segs[1].count)
    rd.fail("outlier blob count disagrees with directory");

  (void)rd.checked_array_bytes(h.volume, sizeof(quant::Code));
  auto codes = ws.make<quant::Code>(h.volume);
  std::fill(codes.begin(), codes.end(), static_cast<quant::Code>(h.radius));

  core::Timer hufft;
  // Stops at the trailing tile index (full decode never reads it).
  for (std::size_t i = 2; i < segs.size() && segs[i].kind == kSegLevel; ++i) {
    const auto stream = rd.read_bytes(static_cast<std::size_t>(segs[i].size));
    const auto syms = huffman::decode(stream, ws);
    if (syms.size() != segs[i].count)
      rd.fail("level stream symbol count mismatch");
    predictor::LevelScatterCursor cur(h.dims, segs[i].level);
    cur.advance(syms, syms.size(), codes);
  }
  const double huff_s = hufft.lap();

  std::vector<T> out(h.volume);
  core::Timer recont;
  predictor::ginterp_decompress_into(codes, std::span<const T>(anchors),
                                     outliers, h.dims, h.eb, h.cfg, h.radius,
                                     std::span<T>(out), ws);
  const double recon_s = recont.lap();
  ws.reset();
  if (dt) {
    dt->huffman = huff_s;
    dt->reconstruct = recon_s;
    dt->overlapped = false;
    dt->total = wall.lap();
  }
  return out;
}

template <typename T>
std::vector<T> decompress_typed(std::span<const std::byte> bytes,
                                dev::Workspace& ws,
                                DecodeTimings* dt = nullptr) {
  if (peek_magic(bytes) == kMagicV2)
    return decompress_v2_typed<T>(bytes, ws, dt);
  core::Timer wall;
  core::ByteReader rd(bytes, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd);

  const auto acount64 = rd.read<std::uint64_t>();
  if (acount64 > rd.remaining()) rd.fail("array count exceeds remaining bytes");
  const std::size_t acount = static_cast<std::size_t>(acount64);
  const std::size_t abytes = rd.checked_array_bytes(acount, sizeof(T));
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  const auto outliers = parse_outlier_blob<T>(rd.read_length_prefixed(), ws);
  core::Timer hufft;
  const auto codes = huffman::decode(rd.read_length_prefixed(), ws);
  const double huff_s = hufft.lap();
  if (codes.size() != h.volume) rd.fail("code count mismatch");

  // ginterp_decompress_into validates the anchor count and outlier indices
  // against `dims` before scattering.
  std::vector<T> out(h.volume);
  core::Timer recont;
  predictor::ginterp_decompress_into(codes, std::span<const T>(anchors),
                                     outliers, h.dims, h.eb, h.cfg, h.radius,
                                     std::span<T>(out), ws);
  const double recon_s = recont.lap();
  ws.reset();
  if (dt) {
    dt->huffman = huff_s;
    dt->reconstruct = recon_s;
    dt->overlapped = false;
    dt->total = wall.lap();
  }
  return out;
}

template <typename T>
std::vector<T> decompress_typed(std::span<const std::byte> bytes,
                                DecodeTimings* dt = nullptr) {
  dev::Arena local;
  dev::Workspace ws(local);
  return decompress_typed<T>(bytes, ws, dt);
}

/// The pipelined wrapped-archive decompressor (the tentpole, mirrored):
/// LZSS blocks decode on a dev::Stream in submission order while the host
/// thread parses the inner archive behind a watermark of decoded bytes —
/// waiting on per-group events only when it needs bytes that have not
/// landed yet — and Huffman-decodes chunk groups as their payload arrives.
/// Every read of `raw` happens below the watermark, every stream write
/// above it. All parses go through the bounds-checked ByteReader over the
/// fixed-size raw buffer, so corrupt archives fail exactly like the
/// unfused path (the corruption-fuzz harness drives this route).
template <typename T>
std::vector<T> decompress_bitcomp_typed(std::span<const std::byte> bytes,
                                        dev::Workspace& ws,
                                        DecodeTimings* dt = nullptr) {
  core::Timer wall;
  // Per-stage busy time. LZSS groups and reconstruction slabs may run on
  // dev::Streams (other threads), so those two accumulate atomically in
  // nanoseconds; Huffman decode always runs on this thread. Pipeline stalls
  // (ensure()/event waits) are deliberately excluded — stages report work
  // done, `total` reports the wall clock, and DecodeTimings::overlapped
  // tells reporters the stages ran concurrently.
  std::atomic<std::int64_t> lzss_ns{0}, recon_ns{0};
  double huff_s = 0;
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto since = [&now](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now() - t0)
        .count();
  };

  // Container-general front end: both wrapper generations parse into the
  // same per-segment (frame, method, raw range) records, so the pipelined
  // machinery below is identical for a legacy 'BBCP' single stream and a
  // 'BBC2' table. All frames parse and all scratch allocates here, on the
  // host — dev::Workspace is not thread-safe, so stream tasks only ever
  // touch memory handed out before submission.
  const auto container = bitcomp_parse_container(bytes);
  const std::size_t nwseg = container.segments.size();
  std::vector<lossless::LzssFrame> frames(nwseg);
  std::vector<std::size_t> seg_off(nwseg);
  std::size_t raw_size = 0;
  for (std::size_t i = 0; i < nwseg; ++i) {
    frames[i] = lossless::lzss_parse_frame(container.payloads[i], ws);
    seg_off[i] = raw_size;
    std::size_t slen = frames[i].raw_size;
    if (!container.legacy) {
      const auto& s = container.segments[i];
      slen = static_cast<std::size_t>(s.raw_size);
      // Cheap closed-form cross-checks between the table and each frame
      // header; zero-RLE is self-describing, so its expansion is validated
      // by the untransform instead.
      if (s.method == lossless::Method::Lzss && frames[i].raw_size != slen)
        throw core::CorruptArchive("bitcomp-wrapper", 0,
                                   "segment frame size mismatch");
      if (s.method == lossless::Method::Bitshuffle &&
          frames[i].raw_size != lossless::bitshuffle_frame_size(slen))
        throw core::CorruptArchive("bitcomp-wrapper", 0,
                                   "bitshuffle payload size does not match "
                                   "segment");
    }
    raw_size += slen;
  }
  auto raw = ws.make<std::byte>(raw_size);

  // Decode units, in raw order. A method-0 segment decodes straight into
  // its raw range in ~4-block groups (blocks of one group write disjoint
  // ranges, so they fan out across the pool at grain 1; with one worker the
  // launch degrades to a serial walk). A transformed segment is
  // all-or-nothing: one unit block-decodes its LZSS stream into scratch in
  // parallel, then untransforms into the raw range. Each unit's `end` is
  // the raw watermark that is final once it completes.
  constexpr std::size_t kGroupBlocks = 4;
  struct DecodeUnit {
    std::function<void()> run;
    std::size_t end = 0;
  };
  std::vector<DecodeUnit> units;
  for (std::size_t i = 0; i < nwseg; ++i) {
    const lossless::LzssFrame* fp = &frames[i];
    const auto m = container.segments[i].method;
    const std::size_t soff = seg_off[i];
    const std::size_t slen = container.legacy
                                 ? static_cast<std::size_t>(fp->raw_size)
                                 : static_cast<std::size_t>(
                                       container.segments[i].raw_size);
    if (m == lossless::Method::Lzss) {
      std::byte* base = raw.data() + soff;
      for (std::size_t b = 0; b < fp->nblocks; b += kGroupBlocks) {
        const std::size_t be = std::min(b + kGroupBlocks, fp->nblocks);
        const std::size_t gend =
            soff + std::min(be * fp->block_size,
                            static_cast<std::size_t>(fp->raw_size));
        units.push_back({[fp, base, b, be, &lzss_ns, &since] {
                           const auto t0 = std::chrono::steady_clock::now();
                           dev::ThreadPool::instance().parallel_for(
                               be - b,
                               [&](std::size_t k0) {
                                 const std::size_t k = b + k0;
                                 const std::size_t begin = k * fp->block_size;
                                 const std::size_t len = std::min(
                                     fp->block_size, fp->raw_size - begin);
                                 lossless::lzss_decompress_block(
                                     *fp, k, {base + begin, len});
                               },
                               1);
                           lzss_ns += since(t0);
                         },
                         gend});
      }
    } else if (slen > 0 || fp->raw_size > 0) {
      auto tmp = ws.make<std::byte>(fp->raw_size);
      std::byte* dst = raw.data() + soff;
      units.push_back({[fp, tmp, dst, m, slen, &lzss_ns, &since] {
                         const auto t0 = std::chrono::steady_clock::now();
                         dev::ThreadPool::instance().parallel_for(
                             fp->nblocks,
                             [&](std::size_t k) {
                               const std::size_t begin = k * fp->block_size;
                               const std::size_t len = std::min(
                                   fp->block_size, fp->raw_size - begin);
                               lossless::lzss_decompress_block(
                                   *fp, k, {tmp.data() + begin, len});
                             },
                             1);
                         lossless::method_untransform(tmp, m, {dst, slen});
                         lzss_ns += since(t0);
                       },
                       soff + slen});
    }
  }

  std::optional<dev::Stream> lz;
  std::vector<dev::Event> unit_ev;
  if (stream_overlap_pays() && !units.empty()) {
    lz.emplace();
    for (auto& u : units) {
      lz->submit(u.run);
      unit_ev.push_back(lz->record());
    }
  }

  std::size_t decoded = 0;
  std::size_t next_unit = 0;
  const auto ensure = [&](std::size_t off) {
    if (off > raw_size) off = raw_size;
    while (decoded < off) {
      if (next_unit >= units.size()) {
        // Only empty segments remain past the last unit.
        decoded = raw_size;
        break;
      }
      if (lz) {
        unit_ev[next_unit].wait();
        decoded = std::max(decoded, units[next_unit++].end);
        // A failed block poisons the stream before its unit's event
        // fires; surface the CorruptArchive instead of reading
        // half-written bytes.
        if (lz->errored()) lz->synchronize();
      } else {
        // Serial machine: pull-decode the next unit right before it is
        // parsed (same bytes, no thread ping-pong, cache-hot handoff).
        units[next_unit].run();
        decoded = std::max(decoded, units[next_unit].end);
        ++next_unit;
      }
    }
  };
  // Saturating cursor advance: lengths are attacker-controlled u64s, and
  // clamping to raw_size lets the ByteReader report the truncation.
  const auto sat = [&](std::size_t base, std::uint64_t extra) {
    if (base >= raw_size) return raw_size;
    const std::size_t room = raw_size - base;
    return extra >= room ? raw_size : base + static_cast<std::size_t>(extra);
  };

  // Version dispatch on the inner magic; both layouts decode behind the
  // same frame/ensure/sat machinery.
  ensure(sizeof(std::uint32_t));
  std::uint32_t inner_magic = 0;
  if (raw_size >= sizeof(inner_magic))
    std::memcpy(&inner_magic, raw.data(), sizeof(inner_magic));

  if (inner_magic == kMagicV2) {
    core::ByteReader rd({raw.data(), raw_size}, "cusz-i");
    ensure(kInnerFixedBytes + sizeof(std::uint32_t));
    const InnerHeader h = parse_inner_header<T>(rd, kMagicV2);
    // The directory's size follows from the segment count, so peek it
    // (clamped to the largest legal value — a hostile count cannot force a
    // full decode) and ensure the exact directory before the parse: every
    // entry read stays below the watermark, and a wrong segment count fails
    // before any entry is read.
    const int nlevels = predictor::ginterp_level_count(h.dims);
    ensure(sat(rd.offset(), sizeof(std::uint32_t)));
    std::uint32_t nseg_peek = 0;
    if (raw_size >= rd.offset() + sizeof(nseg_peek))
      std::memcpy(&nseg_peek, raw.data() + rd.offset(), sizeof(nseg_peek));
    const auto nseg_max = static_cast<std::uint32_t>(nlevels) + 3;
    ensure(sat(rd.offset(),
               sizeof(std::uint32_t) +
                   static_cast<std::uint64_t>(std::min(nseg_peek, nseg_max)) *
                       sizeof(SegmentEntry)));
    const auto segs = parse_v2_directory<T>(rd, h);

    const std::size_t acount = static_cast<std::size_t>(segs[0].count);
    const std::size_t abytes = static_cast<std::size_t>(segs[0].size);
    ensure(sat(rd.offset(), abytes));
    auto anchors = ws.make<T>(acount);
    if (acount > 0)
      std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

    ensure(sat(rd.offset(), segs[1].size));
    const auto outliers = parse_outlier_blob<T>(
        rd.read_bytes(static_cast<std::size_t>(segs[1].size)), ws);
    if (outliers.indices.size() != segs[1].count)
      rd.fail("outlier blob count disagrees with directory");

    (void)rd.checked_array_bytes(h.volume, sizeof(quant::Code));
    auto codes = ws.make<quant::Code>(h.volume);
    std::fill(codes.begin(), codes.end(), static_cast<quant::Code>(h.radius));

    // Coarse levels (>= 2) are a sliver of the volume: decode each whole
    // segment as its bytes land and scatter it. Level 1 — the bulk — then
    // pipelines chunk groups against slab reconstruction below, exactly
    // like the v1 single stream did, with the scatter cursor's watermark
    // standing in for the chunk count. A trailing tile index rides behind
    // the last level and is never parsed here.
    std::size_t last_level = segs.size();
    for (std::size_t i = segs.size(); i-- > 2;)
      if (segs[i].kind == kSegLevel) {
        last_level = i;
        break;
      }
    for (std::size_t i = 2; i < last_level; ++i) {
      ensure(sat(rd.offset(), segs[i].size));
      core::Timer huft;
      const auto syms = huffman::decode(
          rd.read_bytes(static_cast<std::size_t>(segs[i].size)), ws);
      if (syms.size() != segs[i].count)
        rd.fail("level stream symbol count mismatch");
      predictor::LevelScatterCursor cur(h.dims, segs[i].level);
      cur.advance(syms, syms.size(), codes);
      huff_s += huft.lap();
    }

    std::vector<T> out(h.volume);
    predictor::GInterpReconstructorT<T> recon(
        codes, std::span<const T>(anchors), outliers, h.dims, h.eb, h.cfg,
        h.radius, std::span<T>(out));
    const auto run_slab_timed = [&recon, &recon_ns, &since](std::size_t bz) {
      const auto t0 = std::chrono::steady_clock::now();
      recon.run_slab(bz);
      recon_ns += since(t0);
    };
    std::deque<dev::Stream> rcs;
    if (stream_overlap_pays() && recon.slab_count() > 1) {
      const std::size_t n = std::min<std::size_t>(
          dev::ThreadPool::instance().worker_count(), recon.slab_count());
      for (std::size_t i = 0; i < n; ++i) rcs.emplace_back();
    }
    std::size_t next_slab = 0;
    const auto reconstruct_upto = [&](std::size_t code_watermark) {
      while (next_slab < recon.slab_count() &&
             recon.codes_needed(next_slab) <= code_watermark) {
        const std::size_t bz = next_slab++;
        if (!rcs.empty())
          rcs[bz % rcs.size()].submit(
              [&run_slab_timed, bz] { run_slab_timed(bz); });
        else
          run_slab_timed(bz);
      }
    };

    if (last_level < segs.size()) {
      const auto& seg1 = segs[last_level];
      const auto huff = rd.read_bytes(static_cast<std::size_t>(seg1.size));
      const std::size_t hoff = rd.offset() - huff.size();
      ensure(sat(hoff, sizeof(std::uint32_t)));
      std::uint32_t nbins = 0;
      if (huff.size() >= sizeof(nbins))
        std::memcpy(&nbins, huff.data(), sizeof(nbins));
      const std::size_t hfixed = sizeof(std::uint32_t) + nbins +
                                 sizeof(std::uint64_t) +
                                 sizeof(std::uint32_t) + sizeof(std::uint64_t);
      ensure(sat(hoff, hfixed));
      std::uint64_t nsym = 0;
      std::uint32_t csz = 0;
      if (huff.size() >= hfixed) {
        std::memcpy(&nsym, huff.data() + sizeof(std::uint32_t) + nbins,
                    sizeof(nsym));
        std::memcpy(&csz,
                    huff.data() + sizeof(std::uint32_t) + nbins + sizeof(nsym),
                    sizeof(csz));
      }
      const std::uint64_t nchunks64 =
          csz == 0 ? 0 : nsym / csz + (nsym % csz != 0 ? 1 : 0);
      ensure(sat(hoff, hfixed + std::min<std::uint64_t>(nchunks64,
                                                        raw_size) *
                                    sizeof(std::uint64_t)));
      core::Timer plant;
      const auto plan = huffman::decode_plan(huff, ws);
      huff_s += plant.lap();
      if (plan.n != seg1.count)
        throw core::CorruptArchive("cusz-i", hoff,
                                   "level stream symbol count mismatch");

      auto syms1 = ws.make<quant::Code>(plan.n);
      const std::size_t pay_off =
          plan.payload.empty()
              ? raw_size
              : static_cast<std::size_t>(plan.payload.data() - raw.data());
      predictor::LevelScatterCursor cur(h.dims, 1);

      constexpr std::uint64_t kGroupBytes = 4 * lossless::kLzssBlock;
      std::size_t c = 0;
      while (c < plan.nchunks) {
        const std::uint64_t start = plan.offsets[c];
        std::size_t cend = c + 1;
        while (cend < plan.nchunks &&
               plan.offsets[cend] - start < kGroupBytes)
          ++cend;
        const std::uint64_t done =
            cend < plan.nchunks ? plan.offsets[cend] : plan.payload_bytes;
        ensure(sat(pay_off, done));
        core::Timer huft;
        huffman::decode_chunks(plan, c, cend, syms1);
        c = cend;
        cur.advance(syms1, std::min(cend * plan.chunk_size, plan.n), codes);
        huff_s += huft.lap();
        reconstruct_upto(cur.watermark());
      }
    }
    // Drain: every unit must run even if the parser never read its bytes,
    // so a corrupt tail block or payload throws exactly as it does in the
    // unfused path (zero-length tail units included — ensure() may reach
    // raw_size before running them).
    if (lz) {
      lz->synchronize();
    } else {
      for (; next_unit < units.size(); ++next_unit) units[next_unit].run();
      decoded = raw_size;
    }

    reconstruct_upto(h.volume);
    const bool overlapped = lz.has_value() || !rcs.empty();
    {
      std::exception_ptr err;
      for (auto& s : rcs) {
        try {
          s.synchronize();
        } catch (...) {
          if (!err) err = std::current_exception();
        }
      }
      if (err) std::rethrow_exception(err);
    }
    ws.reset();
    if (dt) {
      dt->unwrap = static_cast<double>(lzss_ns.load()) * 1e-9;
      dt->huffman = huff_s;
      dt->reconstruct = static_cast<double>(recon_ns.load()) * 1e-9;
      dt->overlapped = overlapped;
      dt->total = wall.lap();
    }
    return out;
  }

  core::ByteReader rd({raw.data(), raw_size}, "cusz-i");
  ensure(kInnerFixedBytes + sizeof(std::uint64_t));
  const InnerHeader h = parse_inner_header<T>(rd);

  const auto acount64 = rd.read<std::uint64_t>();
  if (acount64 > rd.remaining()) rd.fail("array count exceeds remaining bytes");
  const std::size_t acount = static_cast<std::size_t>(acount64);
  const std::size_t abytes = rd.checked_array_bytes(acount, sizeof(T));
  ensure(sat(rd.offset(), abytes));
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  ensure(sat(rd.offset(), sizeof(std::uint64_t)));
  const auto oblob64 = rd.read<std::uint64_t>();
  if (oblob64 > rd.remaining()) rd.fail("length prefix exceeds remaining bytes");
  ensure(sat(rd.offset(), oblob64));
  const auto outliers = parse_outlier_blob<T>(
      rd.read_bytes(static_cast<std::size_t>(oblob64)), ws);

  ensure(sat(rd.offset(), sizeof(std::uint64_t)));
  const auto hsize64 = rd.read<std::uint64_t>();
  if (hsize64 > rd.remaining()) rd.fail("length prefix exceeds remaining bytes");
  const auto huff = rd.read_bytes(static_cast<std::size_t>(hsize64));
  const std::size_t hoff = rd.offset() - huff.size();

  // Huffman header extent (u32 nbins | lengths | u64 n | u32 chunk |
  // u64 payload | offsets): peek just enough to know how many bytes
  // decode_plan will touch, wait for them, then build the plan. The plan
  // never reads payload bytes, so the stream may still be producing them.
  ensure(sat(hoff, sizeof(std::uint32_t)));
  std::uint32_t nbins = 0;
  if (huff.size() >= sizeof(nbins)) std::memcpy(&nbins, huff.data(), sizeof(nbins));
  const std::size_t hfixed = sizeof(std::uint32_t) + nbins +
                             sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                             sizeof(std::uint64_t);
  ensure(sat(hoff, hfixed));
  std::uint64_t nsym = 0;
  std::uint32_t csz = 0;
  if (huff.size() >= hfixed) {
    std::memcpy(&nsym, huff.data() + sizeof(std::uint32_t) + nbins,
                sizeof(nsym));
    std::memcpy(&csz,
                huff.data() + sizeof(std::uint32_t) + nbins + sizeof(nsym),
                sizeof(csz));
  }
  const std::uint64_t nchunks64 =
      csz == 0 ? 0 : nsym / csz + (nsym % csz != 0 ? 1 : 0);
  ensure(sat(hoff, hfixed + std::min<std::uint64_t>(nchunks64,
                                                    raw_size) *
                                sizeof(std::uint64_t)));
  core::Timer plant;
  const auto plan = huffman::decode_plan(huff, ws);
  huff_s += plant.lap();
  if (plan.n != h.volume)
    throw core::CorruptArchive("cusz-i", hoff, "code count mismatch");

  auto codes = ws.make<quant::Code>(plan.n);
  const std::size_t pay_off =
      plan.payload.empty()
          ? raw_size
          : static_cast<std::size_t>(plan.payload.data() - raw.data());

  // In-place reconstruction rides the same watermark idea one level up:
  // the reconstructor validates and scatters anchors/outliers into `out`
  // now, and as each Huffman chunk group lands, every tile z-slab whose
  // code prefix is complete reconstructs immediately — inline on a serial
  // machine (the slab's codes are still cache-hot), round-robin across a
  // per-worker stream fleet when workers exist. Slabs are mutually
  // independent (the reconstructor snapshots the cross-slab border planes
  // at construction), so any number of them may run concurrently the
  // moment their code prefix lands; every stream reads only codes below
  // the watermark, the host writes only above it. `rcs` is declared after
  // everything its tasks borrow, so unwind order drains it before those
  // locals die.
  std::vector<T> out(h.volume);
  predictor::GInterpReconstructorT<T> recon(codes, std::span<const T>(anchors),
                                            outliers, h.dims, h.eb, h.cfg,
                                            h.radius, std::span<T>(out));
  const auto run_slab_timed = [&recon, &recon_ns, &since](std::size_t bz) {
    const auto t0 = std::chrono::steady_clock::now();
    recon.run_slab(bz);
    recon_ns += since(t0);
  };
  std::deque<dev::Stream> rcs;
  if (stream_overlap_pays() && recon.slab_count() > 1) {
    const std::size_t n = std::min<std::size_t>(
        dev::ThreadPool::instance().worker_count(), recon.slab_count());
    for (std::size_t i = 0; i < n; ++i) rcs.emplace_back();
  }
  std::size_t next_slab = 0;
  const auto reconstruct_upto = [&](std::size_t code_watermark) {
    while (next_slab < recon.slab_count() &&
           recon.codes_needed(next_slab) <= code_watermark) {
      const std::size_t bz = next_slab++;
      if (!rcs.empty())
        rcs[bz % rcs.size()].submit(
            [&run_slab_timed, bz] { run_slab_timed(bz); });
      else
        run_slab_timed(bz);
    }
  };

  constexpr std::uint64_t kGroupBytes = 4 * lossless::kLzssBlock;
  std::size_t c = 0;
  while (c < plan.nchunks) {
    const std::uint64_t start = plan.offsets[c];
    std::size_t cend = c + 1;
    while (cend < plan.nchunks && plan.offsets[cend] - start < kGroupBytes)
      ++cend;
    const std::uint64_t done =
        cend < plan.nchunks ? plan.offsets[cend] : plan.payload_bytes;
    ensure(sat(pay_off, done));
    core::Timer huft;
    huffman::decode_chunks(plan, c, cend, codes);
    huff_s += huft.lap();
    c = cend;
    reconstruct_upto(std::min(cend * plan.chunk_size, plan.n));
  }
  // Drain: every unit must run even if the parser never read its bytes, so
  // a corrupt tail block or payload throws exactly as it does in the
  // unfused path.
  if (lz) {
    lz->synchronize();
  } else {
    for (; next_unit < units.size(); ++next_unit) units[next_unit].run();
    decoded = raw_size;
  }

  reconstruct_upto(plan.n);
  const bool overlapped = lz.has_value() || !rcs.empty();
  {
    // Drain every reconstruction stream before rethrowing so no task still
    // references the locals; the first failure wins.
    std::exception_ptr err;
    for (auto& s : rcs) {
      try {
        s.synchronize();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  }
  ws.reset();
  if (dt) {
    dt->unwrap = static_cast<double>(lzss_ns.load()) * 1e-9;
    dt->huffman = huff_s;
    dt->reconstruct = static_cast<double>(recon_ns.load()) * 1e-9;
    dt->overlapped = overlapped;
    dt->total = wall.lap();
  }
  return out;
}

// ---- Random-access (ROI) decode ------------------------------------------
//
// The ROI reader never materializes the archive: every byte range it needs
// — directory, tile index, anchor rows, outlier blob, Huffman headers, and
// the payload chunks covering the box's tile slabs — is pulled through an
// InnerSource, which serves inner-archive byte ranges either straight from
// an io::ArchiveSource (raw SZI2) or by decoding only the covering 64 KiB
// LZSS blocks of a 'BBC2' wrapper segment on demand. The per-level working
// set is bounded by the halo'd box, so a bounded-memory reader can pull a
// sub-volume out of a larger-than-RAM archive.

/// Random-access view of the *inner* (unwrapped) archive's byte space.
/// Views are valid only until the next view() call on the same source.
class InnerSource {
 public:
  virtual ~InnerSource() = default;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::span<const std::byte> view(std::size_t off,
                                                        std::size_t len) = 0;
};

/// Truncation-tolerant view: clamps the range to the source's extent so the
/// ByteReader (not the source) reports truncation as CorruptArchive.
std::span<const std::byte> view_pfx(InnerSource& s, std::uint64_t off,
                                    std::uint64_t len) {
  const std::size_t sz = s.size();
  if (off >= sz) return {};
  return s.view(static_cast<std::size_t>(off),
                static_cast<std::size_t>(std::min<std::uint64_t>(len, sz - off)));
}

/// Raw SZI2 file: inner byte space == archive byte space.
class RawInnerSource final : public InnerSource {
 public:
  explicit RawInnerSource(io::ArchiveSource& src) : src_(src) {}

  [[nodiscard]] std::size_t size() const override { return src_.size(); }
  [[nodiscard]] std::span<const std::byte> view(std::size_t off,
                                                std::size_t len) override {
    return src_.view(off, len, scratch_);
  }

 private:
  io::ArchiveSource& src_;
  std::vector<std::byte> scratch_;
};

/// 'BBC2' wrapper: the segment table is fetched up front (validated like
/// bitcomp_parse_container); each wrapper segment's LZSS frame header is
/// parsed lazily on first touch, and a method-0 segment then decodes only
/// the 64 KiB blocks covering each requested range — the fetch that makes
/// ROI reads of wrapped archives proportional to the box, not the field. A
/// transformed (zero-RLE / bitshuffle) segment is all-or-nothing and
/// materializes whole on first touch, exactly like the progressive reader.
class WrappedInnerSource final : public InnerSource {
 public:
  WrappedInnerSource(io::ArchiveSource& src, dev::Workspace& ws)
      : src_(src), ws_(ws) {
    const std::size_t fsize = src.size();
    constexpr std::size_t kTable = 2 * sizeof(std::uint32_t);
    if (fsize < kTable)
      throw core::CorruptArchive("bitcomp-wrapper", 0, "container truncated");
    std::uint32_t nseg = 0;
    {
      const auto head = src_.view(0, kTable, scratch_);
      std::memcpy(&nseg, head.data() + sizeof(std::uint32_t), sizeof(nseg));
    }
    if (nseg > (fsize - kTable) / sizeof(WrapSegmentEntry))
      throw core::CorruptArchive("bitcomp-wrapper", sizeof(std::uint32_t),
                                 "segment table exceeds container");
    const std::size_t table_bytes = kTable + nseg * sizeof(WrapSegmentEntry);
    segs_.resize(nseg);
    {
      const auto tbl =
          src_.view(kTable, nseg * sizeof(WrapSegmentEntry), scratch_);
      std::size_t file_off = table_bytes;
      std::size_t raw_off = 0;
      for (std::uint32_t i = 0; i < nseg; ++i) {
        WrapSegmentEntry e;
        std::memcpy(&e, tbl.data() + i * sizeof(e), sizeof(e));
        if (e.reserved0 != 0 || e.reserved1 != 0 || e.reserved2 != 0)
          throw core::CorruptArchive("bitcomp-wrapper", kTable,
                                     "reserved segment field set");
        if (e.method >= lossless::kMethodCount)
          throw core::CorruptArchive("bitcomp-wrapper", kTable,
                                     "unknown de-redundancy method");
        if (e.size > fsize - file_off)
          throw core::CorruptArchive("bitcomp-wrapper", kTable,
                                     "segment sizes exceed the container");
        auto& s = segs_[i];
        s.method = static_cast<lossless::Method>(e.method);
        s.file_off = file_off;
        s.file_len = static_cast<std::size_t>(e.size);
        s.raw_off = raw_off;
        s.raw_len = static_cast<std::size_t>(e.raw_size);
        file_off += s.file_len;
        raw_off += s.raw_len;
      }
      if (file_off != fsize)
        throw core::CorruptArchive("bitcomp-wrapper", kTable,
                                   "segment sizes do not fill the container");
      raw_size_ = raw_off;
    }
  }

  [[nodiscard]] std::size_t size() const override { return raw_size_; }

  [[nodiscard]] std::span<const std::byte> view(std::size_t off,
                                                std::size_t len) override {
    if (len == 0) return {};
    // The directory mirrors the wrapper partition, so well-formed requests
    // land inside one segment; a crossing request (possible only against a
    // hostile directory) assembles per segment into `cross_`.
    std::size_t i = 0;
    while (i < segs_.size() && off >= segs_[i].raw_off + segs_[i].raw_len) ++i;
    if (i < segs_.size() && off + len <= segs_[i].raw_off + segs_[i].raw_len)
      return fetch(segs_[i], off - segs_[i].raw_off, len);
    cross_.resize(len);
    std::size_t done = 0;
    while (done < len) {
      if (i >= segs_.size())
        throw core::CorruptArchive("bitcomp-wrapper", 0,
                                   "range exceeds the container");
      auto& s = segs_[i];
      const std::size_t rel = off + done - s.raw_off;
      const std::size_t take = std::min(len - done, s.raw_len - rel);
      const auto part = fetch(s, rel, take);
      std::memcpy(cross_.data() + done, part.data(), take);
      done += take;
      ++i;
    }
    return {cross_.data(), len};
  }

 private:
  struct Seg {
    lossless::Method method = lossless::Method::Lzss;
    std::size_t file_off = 0;  ///< payload start in the container
    std::size_t file_len = 0;  ///< stored payload bytes
    std::size_t raw_off = 0;   ///< inner-archive offset
    std::size_t raw_len = 0;   ///< inner-archive length
    bool frame_parsed = false;
    bool whole = false;  ///< transformed segment fully materialized
    lossless::LzssFrame frame;
    std::vector<std::byte> data;  ///< decoded raw bytes (lazily filled)
    std::vector<char> have;       ///< per-block flags (method 0)
  };

  void ensure_frame(Seg& s) {
    if (s.frame_parsed) return;
    // Fixed header first (raw_size | block_size | nblocks), then the exact
    // header + offset-table extent; lzss_parse_frame_header revalidates.
    std::size_t nblocks = 0;
    {
      const auto h0 =
          src_.view(s.file_off, std::min<std::size_t>(16, s.file_len), scratch_);
      if (h0.size() >= 16) {
        std::uint32_t nb32 = 0;
        std::memcpy(&nb32, h0.data() + 12, sizeof(nb32));
        nblocks = nb32;
      }
    }
    const std::size_t want = 16 + nblocks * sizeof(std::uint64_t);
    const auto head =
        src_.view(s.file_off, std::min(want, s.file_len), scratch_);
    s.frame = lossless::lzss_parse_frame_header(head, s.file_len, ws_);
    if (s.method == lossless::Method::Lzss && s.frame.raw_size != s.raw_len)
      throw core::CorruptArchive("bitcomp-wrapper", s.file_off,
                                 "segment frame size mismatch");
    if (s.method == lossless::Method::Bitshuffle &&
        s.frame.raw_size != lossless::bitshuffle_frame_size(s.raw_len))
      throw core::CorruptArchive(
          "bitcomp-wrapper", s.file_off,
          "bitshuffle payload size does not match segment");
    s.frame_parsed = true;
  }

  void decode_block(Seg& s, std::size_t b) {
    const auto [begin, end] = lossless::lzss_block_extent(s.frame, b);
    const auto bytes = src_.view(s.file_off + begin, end - begin, scratch_);
    const std::size_t roff = b * s.frame.block_size;
    const std::size_t rlen = std::min(s.frame.block_size,
                                      s.frame.raw_size - roff);
    lossless::lzss_decompress_block_bytes(s.frame, b, bytes,
                                          {s.data.data() + roff, rlen});
  }

  std::span<const std::byte> fetch(Seg& s, std::size_t rel, std::size_t len) {
    ensure_frame(s);
    if (s.method == lossless::Method::Lzss) {
      if (s.data.empty()) {
        s.data.resize(s.raw_len);
        s.have.assign(s.frame.nblocks, 0);
      }
      const std::size_t bs = s.frame.block_size;
      const std::size_t b0 = bs == 0 ? 0 : rel / bs;
      const std::size_t b1 =
          bs == 0 ? 0 : std::min(s.frame.nblocks, dev::ceil_div(rel + len, bs));
      for (std::size_t b = b0; b < b1; ++b)
        if (!s.have[b]) {
          decode_block(s, b);
          s.have[b] = 1;
        }
    } else if (!s.whole) {
      // Transformed segment: decode the whole LZSS stream into scratch and
      // untransform once; subsequent ranges are plain memory reads.
      s.data.resize(s.raw_len);
      std::vector<std::byte> tmp(s.frame.raw_size);
      for (std::size_t b = 0; b < s.frame.nblocks; ++b) decode_block_into(
          s, b, tmp);
      lossless::method_untransform(tmp, s.method,
                                   {s.data.data(), s.raw_len});
      s.whole = true;
    }
    return {s.data.data() + rel, len};
  }

  void decode_block_into(Seg& s, std::size_t b, std::span<std::byte> dst) {
    const auto [begin, end] = lossless::lzss_block_extent(s.frame, b);
    const auto bytes = src_.view(s.file_off + begin, end - begin, scratch_);
    const std::size_t roff = b * s.frame.block_size;
    const std::size_t rlen = std::min(s.frame.block_size,
                                      s.frame.raw_size - roff);
    lossless::lzss_decompress_block_bytes(s.frame, b, bytes,
                                          {dst.data() + roff, rlen});
  }

  io::ArchiveSource& src_;
  dev::Workspace& ws_;
  std::vector<Seg> segs_;
  std::size_t raw_size_ = 0;
  std::vector<std::byte> scratch_;  ///< for src_ views
  std::vector<std::byte> cross_;    ///< segment-crossing assembly
};

std::uint32_t inner_peek_magic(InnerSource& s) {
  std::uint32_t m = 0;
  const auto v = view_pfx(s, 0, sizeof(m));
  if (v.size() == sizeof(m)) std::memcpy(&m, v.data(), sizeof(m));
  return m;
}

/// Owned copy of the TIDX payload plus its validated header fields.
struct TidxView {
  std::size_t slab_z = 0;
  std::size_t nslabs = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] TidxEntry entry(std::size_t level_row, std::size_t k) const {
    TidxEntry e;
    std::memcpy(&e,
                payload.data() + kTidxHeaderBytes +
                    (level_row * nslabs + k) * sizeof(TidxEntry),
                sizeof(e));
    return e;
  }
};

/// Fetches + validates the tile index header against the field's closed
/// forms (the entry fields are cross-checked level by level once each
/// level's decode plan exists).
TidxView fetch_tidx(InnerSource& inner, const SegmentEntry& tseg,
                    const dev::Dim3& dims, int nlevels) {
  TidxView t;
  const auto v = view_pfx(inner, tseg.offset, tseg.size);
  if (v.size() != tseg.size)
    throw core::CorruptArchive("cusz-i", tseg.offset, "tile index truncated");
  t.payload.assign(v.begin(), v.end());
  std::uint16_t ver = 0, resv = 0;
  std::uint32_t slab32 = 0, nl32 = 0, ns32 = 0;
  const std::byte* p = t.payload.data();
  std::memcpy(&ver, p, sizeof(ver));
  std::memcpy(&resv, p + 2, sizeof(resv));
  std::memcpy(&slab32, p + 4, sizeof(slab32));
  std::memcpy(&nl32, p + 8, sizeof(nl32));
  std::memcpy(&ns32, p + 12, sizeof(ns32));
  if (ver != kTidxVersion || resv != 0 || slab32 != tidx_slab_z(dims) ||
      nl32 != static_cast<std::uint32_t>(nlevels) ||
      ns32 != tidx_nslabs(dims))
    throw core::CorruptArchive("cusz-i", tseg.offset,
                               "tile index header mismatch");
  t.slab_z = slab32;
  t.nslabs = ns32;
  return t;
}

/// The indexed ROI decode over an SZI2 inner archive. Returns false when
/// the archive predates the tile index (the caller falls back to a full
/// decode + crop); throws core::CorruptArchive when the index disagrees
/// with the closed forms it must satisfy.
template <typename T>
bool roi_v2(InnerSource& inner, const RoiBox& box, dev::Workspace& ws,
            RoiResultT<T>& r) {
  double huff_s = 0;
  std::atomic<std::int64_t> recon_ns{0};
  const auto since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Fixed header, then the exact directory (segment count peeked and
  // clamped to the largest legal value, as the pipelined decoder does).
  std::vector<std::byte> hdr;
  {
    const auto v = view_pfx(inner, 0, kInnerFixedBytes + sizeof(std::uint32_t));
    hdr.assign(v.begin(), v.end());
  }
  std::uint32_t nseg_peek = 0;
  if (hdr.size() >= kInnerFixedBytes + sizeof(nseg_peek))
    std::memcpy(&nseg_peek, hdr.data() + kInnerFixedBytes, sizeof(nseg_peek));
  int nlevels = 0;
  {
    core::ByteReader rd0({hdr.data(), hdr.size()}, "cusz-i");
    const InnerHeader h0 = parse_inner_header<T>(rd0, kMagicV2);
    nlevels = predictor::ginterp_level_count(h0.dims);
  }
  const auto nseg_max = static_cast<std::uint32_t>(nlevels) + 3;
  {
    const auto v =
        view_pfx(inner, 0, v2_header_bytes(std::min(nseg_peek, nseg_max)));
    hdr.assign(v.begin(), v.end());
  }
  core::ByteReader rd({hdr.data(), hdr.size()}, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd, kMagicV2);
  const auto segs = parse_v2_directory<T>(rd, h);
  if (segs.size() != static_cast<std::size_t>(nlevels) + 3)
    return false;  // pre-index SZI2: no TIDX to steer by

  const auto plan = predictor::ginterp_roi_plan(h.dims, box.lo, box.ext);
  const TidxView tidx = fetch_tidx(inner, segs.back(), h.dims, nlevels);

  // Box-local working set: radius-prefilled codes plus the output buffer
  // anchors and outlier originals scatter into (halo positions are
  // reconstruction scratch the crop discards).
  const std::size_t bvol = plan.box_dims.volume();
  auto codes = ws.make<quant::Code>(bvol);
  std::fill(codes.begin(), codes.end(), static_cast<quant::Code>(h.radius));
  std::vector<T> boxout(bvol, T{});

  const auto box_at = [&](std::size_t x, std::size_t y, std::size_t z) {
    return dev::linearize(plan.box_dims, x - plan.box_lo.x, y - plan.box_lo.y,
                          z - plan.box_lo.z);
  };

  // Anchors: one contiguous file run per covered (az, ay) anchor row.
  {
    const auto geo = predictor::geometry_for(h.dims);
    const dev::Dim3 ad = predictor::anchor_dims(h.dims, geo.anchor);
    if (segs[0].count != ad.volume())
      throw core::CorruptArchive("cusz-i", segs[0].offset,
                                 "anchor count mismatch");
    const auto arange = [](std::size_t lo, std::size_t extent, std::size_t s,
                           std::size_t an) {
      const std::size_t a0 = (lo + s - 1) / s;
      const std::size_t a1 = std::min(an, (lo + extent - 1) / s + 1);
      return std::pair<std::size_t, std::size_t>(a0, std::max(a0, a1));
    };
    const auto [ax0, ax1] =
        arange(plan.box_lo.x, plan.box_dims.x, geo.anchor.x, ad.x);
    const auto [ay0, ay1] =
        arange(plan.box_lo.y, plan.box_dims.y, geo.anchor.y, ad.y);
    const auto [az0, az1] =
        arange(plan.box_lo.z, plan.box_dims.z, geo.anchor.z, ad.z);
    auto row = ws.make<T>(ax1 - ax0);
    for (std::size_t az = az0; az < az1; ++az)
      for (std::size_t ay = ay0; ay < ay1; ++ay) {
        const std::size_t n = ax1 - ax0;
        if (n == 0) continue;
        const auto bytes = view_pfx(
            inner,
            segs[0].offset +
                dev::linearize(ad, ax0, ay, az) * sizeof(T),
            n * sizeof(T));
        if (bytes.size() != n * sizeof(T))
          throw core::CorruptArchive("cusz-i", segs[0].offset,
                                     "anchor segment truncated");
        std::memcpy(row.data(), bytes.data(), bytes.size());
        for (std::size_t ax = ax0; ax < ax1; ++ax)
          boxout[box_at(ax * geo.anchor.x, ay * geo.anchor.y,
                        az * geo.anchor.z)] = row[ax - ax0];
      }
  }

  // Outliers: the blob is one small segment; fetch whole and keep only the
  // originals that land inside the closed box.
  {
    const auto outliers = parse_outlier_blob<T>(
        view_pfx(inner, segs[1].offset, segs[1].size), ws);
    if (outliers.indices.size() != segs[1].count)
      throw core::CorruptArchive("cusz-i", segs[1].offset,
                                 "outlier blob count disagrees with directory");
    for (std::size_t j = 0; j < outliers.indices.size(); ++j) {
      const std::uint64_t idx = outliers.indices[j];
      if (idx >= h.volume)
        throw core::CorruptArchive("cusz-i", segs[1].offset,
                                   "outlier index out of range");
      const std::size_t x = static_cast<std::size_t>(idx) % h.dims.x;
      const std::size_t y =
          (static_cast<std::size_t>(idx) / h.dims.x) % h.dims.y;
      const std::size_t z =
          static_cast<std::size_t>(idx) / (h.dims.x * h.dims.y);
      if (x >= plan.box_lo.x && x < plan.box_lo.x + plan.box_dims.x &&
          y >= plan.box_lo.y && y < plan.box_lo.y + plan.box_dims.y &&
          z >= plan.box_lo.z && z < plan.box_lo.z + plan.box_dims.z)
        boxout[box_at(x, y, z)] = outliers.values[j];
    }
  }

  // Per level: parse the stream header (header bytes only), cross-check
  // every tile-index entry of the level against its closed form, then
  // decode exactly the Huffman chunks covering the box's rank runs and
  // scatter them into the box-local code array. Runs arrive in ascending
  // rank order, so the chunks they touch merge into a short list of
  // disjoint ranges — within a z-plane the box's y-band is a contiguous
  // rank band, which is what keeps the read set proportional to the box
  // in y and z, not just z.
  for (std::size_t i = 2; i < 2 + static_cast<std::size_t>(nlevels); ++i) {
    const auto& seg = segs[i];
    const int level = seg.level;

    std::uint32_t nbins = 0;
    {
      const auto v = view_pfx(inner, seg.offset, sizeof(nbins));
      if (v.size() == sizeof(nbins))
        std::memcpy(&nbins, v.data(), sizeof(nbins));
    }
    const std::size_t hfixed = sizeof(std::uint32_t) + nbins +
                               sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                               sizeof(std::uint64_t);
    std::uint64_t nsym = 0;
    std::uint32_t csz = 0;
    {
      const auto v = view_pfx(inner, seg.offset, hfixed);
      if (v.size() >= hfixed) {
        std::memcpy(&nsym, v.data() + sizeof(std::uint32_t) + nbins,
                    sizeof(nsym));
        std::memcpy(&csz,
                    v.data() + sizeof(std::uint32_t) + nbins + sizeof(nsym),
                    sizeof(csz));
      }
    }
    const std::uint64_t nchunks64 =
        csz == 0 ? 0 : nsym / csz + (nsym % csz != 0 ? 1 : 0);
    const std::uint64_t head_len =
        hfixed + std::min<std::uint64_t>(nchunks64, seg.size) *
                     sizeof(std::uint64_t);
    const auto head =
        view_pfx(inner, seg.offset, std::min<std::uint64_t>(head_len, seg.size));
    core::Timer plant;
    const auto hplan = huffman::decode_plan_header(head, seg.size, ws);
    huff_s += plant.lap();
    if (hplan.n != seg.count)
      throw core::CorruptArchive("cusz-i", seg.offset,
                                 "level stream symbol count mismatch");
    const std::size_t hdr_bytes =
        static_cast<std::size_t>(seg.size - hplan.payload_bytes);

    // Every (level, slab) index entry is a closed form of (dims, this
    // plan); any disagreement means the index would steer reads wrong.
    for (std::size_t k = 0; k < tidx.nslabs; ++k) {
      const TidxEntry e = tidx.entry(i - 2, k);
      const std::uint64_t want_rank =
          predictor::ginterp_level_prefix(h.dims, level, k * tidx.slab_z);
      const std::size_t chunk =
          hplan.chunk_size == 0
              ? 0
              : static_cast<std::size_t>(want_rank) / hplan.chunk_size;
      const std::uint64_t want_byte =
          chunk < hplan.nchunks ? hplan.offsets[chunk] : hplan.payload_bytes;
      const std::uint32_t want_block = static_cast<std::uint32_t>(
          (hdr_bytes + want_byte) / lossless::kLzssBlock);
      if (e.sym_rank != want_rank ||
          e.huff_chunk != static_cast<std::uint32_t>(chunk) ||
          e.code_byte != want_byte || e.wrap_block != want_block)
        throw core::CorruptArchive("cusz-i", segs.back().offset,
                                   "tile index entry mismatch");
    }

    const std::size_t cs = hplan.chunk_size;
    if (hplan.n == 0 || cs == 0) continue;

    struct Run {
      std::size_t rank, count, x0, y, z, step;
    };
    std::vector<Run> runs;
    std::vector<std::pair<std::size_t, std::size_t>> spans;  // [cb, ce)
    predictor::ginterp_level_box_runs(
        h.dims, level, plan.box_lo, plan.box_dims,
        [&](std::size_t rank, std::size_t count, std::size_t x0, std::size_t y,
            std::size_t z, std::size_t step) {
          runs.push_back({rank, count, x0, y, z, step});
          const std::size_t cb = rank / cs;
          const std::size_t ce = (rank + count - 1) / cs + 1;
          if (!spans.empty() && cb <= spans.back().second)
            spans.back().second = std::max(spans.back().second, ce);
          else
            spans.emplace_back(cb, ce);
        });
    if (runs.empty()) continue;

    std::size_t ri = 0;
    for (const auto& [cb, ce] : spans) {
      const std::uint64_t pay_lo = hplan.offsets[cb];
      const std::uint64_t pay_hi =
          ce < hplan.nchunks ? hplan.offsets[ce] : hplan.payload_bytes;
      const auto payload =
          view_pfx(inner, seg.offset + hdr_bytes + pay_lo, pay_hi - pay_lo);
      const std::size_t base = cb * cs;
      const std::size_t limit = std::min(ce * cs, hplan.n);
      auto syms = ws.make<quant::Code>(limit - base);
      core::Timer huft;
      huffman::decode_chunks_range(hplan, payload, pay_lo, cb, ce, syms);
      huff_s += huft.lap();
      for (; ri < runs.size() && runs[ri].rank < limit; ++ri) {
        const Run& u = runs[ri];
        const std::size_t by = u.y - plan.box_lo.y;
        const std::size_t bz = u.z - plan.box_lo.z;
        for (std::size_t q = 0; q < u.count; ++q)
          codes[dev::linearize(plan.box_dims,
                               u.x0 + q * u.step - plan.box_lo.x, by, bz)] =
              syms[u.rank + q - base];
      }
    }
  }

  // Box-clipped reconstruction, slabs fanned across worker streams exactly
  // like the full decoder (slabs are mutually independent).
  predictor::GInterpRoiReconstructorT<T> recon(codes, plan, h.dims, h.eb,
                                               h.cfg, h.radius,
                                               std::span<T>(boxout));
  const auto run_slab_timed = [&recon, &recon_ns, &since](std::size_t k) {
    const auto t0 = std::chrono::steady_clock::now();
    recon.run_slab(k);
    recon_ns += since(t0);
  };
  std::deque<dev::Stream> rcs;
  if (stream_overlap_pays() && recon.slab_count() > 1) {
    const std::size_t n = std::min<std::size_t>(
        dev::ThreadPool::instance().worker_count(), recon.slab_count());
    for (std::size_t s = 0; s < n; ++s) rcs.emplace_back();
  }
  for (std::size_t k = 0; k < recon.slab_count(); ++k) {
    if (!rcs.empty())
      rcs[k % rcs.size()].submit([&run_slab_timed, k] { run_slab_timed(k); });
    else
      run_slab_timed(k);
  }
  {
    std::exception_ptr err;
    for (auto& s : rcs) {
      try {
        s.synchronize();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  }

  // Crop the requested box out of the box-local buffer (row memcpys; the
  // halo is scratch and dies here).
  r.data.resize(box.ext.volume());
  const std::size_t ox = box.lo.x - plan.box_lo.x;
  const std::size_t oy = box.lo.y - plan.box_lo.y;
  const std::size_t oz = box.lo.z - plan.box_lo.z;
  for (std::size_t z = 0; z < box.ext.z; ++z)
    for (std::size_t y = 0; y < box.ext.y; ++y)
      std::memcpy(
          r.data.data() + dev::linearize(box.ext, 0, y, z),
          boxout.data() + dev::linearize(plan.box_dims, ox, oy + y, oz + z),
          box.ext.x * sizeof(T));
  r.dims = box.ext;
  r.indexed = true;
  r.timings.huffman = huff_s;
  r.timings.reconstruct = static_cast<double>(recon_ns.load()) * 1e-9;
  r.timings.overlapped = !rcs.empty();
  ws.reset();
  return true;
}

/// Full-decode fallback for archives the index cannot steer (legacy SZI1,
/// pre-index SZI2, legacy 'BBCP' wrappers): decode everything, then crop.
template <typename T>
void roi_fallback(io::ArchiveSource& src, const RoiBox& box,
                  dev::Workspace& ws, RoiResultT<T>& r) {
  std::vector<std::byte> scratch;
  const auto all = src.view(0, src.size(), scratch);
  const std::uint32_t magic = peek_magic(all);
  std::vector<T> full;
  dev::Dim3 dims;
  const auto dims_of = [](std::span<const std::byte> bytes) {
    core::ByteReader rd(bytes, "cusz-i");
    const InnerHeader h = parse_inner_header<T>(
        rd, peek_magic(bytes) == kMagicV2 ? kMagicV2 : kMagic);
    return h.dims;
  };
  if (magic == kBitcompWrapMagic || magic == kBitcompWrapMagicV2) {
    const auto inner = bitcomp_unwrap_archive(all);
    dims = dims_of(inner);
    full = decompress_typed<T>(inner, ws);
  } else {
    dims = dims_of(all);
    full = decompress_typed<T>(all, ws);
  }
  const auto bad = [&](std::size_t lo, std::size_t ext, std::size_t n) {
    return ext == 0 || ext > n || lo > n - ext;
  };
  if (bad(box.lo.x, box.ext.x, dims.x) || bad(box.lo.y, box.ext.y, dims.y) ||
      bad(box.lo.z, box.ext.z, dims.z))
    throw std::invalid_argument("cuSZ-i: ROI box is empty or exceeds field");
  r.data.resize(box.ext.volume());
  for (std::size_t z = 0; z < box.ext.z; ++z)
    for (std::size_t y = 0; y < box.ext.y; ++y)
      std::memcpy(r.data.data() + dev::linearize(box.ext, 0, y, z),
                  full.data() + dev::linearize(dims, box.lo.x, box.lo.y + y,
                                               box.lo.z + z),
                  box.ext.x * sizeof(T));
  r.dims = box.ext;
  r.indexed = false;
}

/// Dispatch on the outermost magic: raw SZI2 and 'BBC2'-wrapped SZI2 take
/// the indexed path when the archive carries a tile index; everything else
/// (and pre-index archives) falls back to full decode + crop. `bytes_read`
/// is the source's honest fetch delta either way.
template <typename T>
RoiResultT<T> decompress_roi_typed(io::ArchiveSource& src, const RoiBox& box) {
  dev::Arena local;
  dev::Workspace ws(local);
  core::Timer wall;
  const std::uint64_t before = src.bytes_read();
  RoiResultT<T> r;
  std::uint32_t magic = 0;
  {
    std::vector<std::byte> scratch;
    if (src.size() >= sizeof(magic)) {
      const auto v = src.view(0, sizeof(magic), scratch);
      std::memcpy(&magic, v.data(), sizeof(magic));
    }
  }
  bool done = false;
  if (magic == kMagicV2) {
    RawInnerSource inner(src);
    done = roi_v2<T>(inner, box, ws, r);
  } else if (magic == kBitcompWrapMagicV2) {
    WrappedInnerSource inner(src, ws);
    if (inner_peek_magic(inner) == kMagicV2)
      done = roi_v2<T>(inner, box, ws, r);
  }
  if (!done) roi_fallback<T>(src, box, ws, r);
  r.bytes_read = static_cast<std::size_t>(src.bytes_read() - before);
  r.timings.total = wall.lap();
  return r;
}

/// Full-decode fallback for progressive requests against archives without
/// a segment directory (legacy SZI1): decode everything, then subsample
/// onto the preview grid. `whole_size` is what bytes_read reports — the
/// entire archive was consumed.
template <typename T>
ProgressiveResultT<T> progressive_from_full(std::span<const std::byte> inner,
                                            std::size_t whole_size,
                                            int max_level,
                                            dev::Workspace& ws) {
  core::ByteReader rd(inner, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd);
  const int nlevels = predictor::ginterp_level_count(h.dims);
  const int level = std::clamp(max_level, 1, nlevels + 1);
  const auto full = decompress_typed<T>(inner, ws);
  ProgressiveResultT<T> r;
  r.data =
      predictor::ginterp_subsample(std::span<const T>(full), h.dims, level);
  r.dims = predictor::ginterp_preview_dims(h.dims, level);
  r.level = level;
  r.bytes_read = whole_size;
  return r;
}

/// Prefix decode of a raw SZI2 archive: read the directory, then only the
/// segments of levels >= max_level, and replay the partial reconstruction.
/// Bytes past the consumed prefix are never touched, so truncating the
/// archive to `bytes_read` bytes decodes identically (the byte-accounting
/// test does exactly that).
template <typename T>
ProgressiveResultT<T> progressive_v2_raw(std::span<const std::byte> bytes,
                                         int max_level, dev::Workspace& ws) {
  core::ByteReader rd(bytes, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd, kMagicV2);
  const auto segs = parse_v2_directory<T>(rd, h);
  const int nlevels = predictor::ginterp_level_count(h.dims);
  const int level = std::clamp(max_level, 1, nlevels + 1);

  const std::size_t acount = static_cast<std::size_t>(segs[0].count);
  const std::size_t abytes = static_cast<std::size_t>(segs[0].size);
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  const auto outliers = parse_outlier_blob<T>(
      rd.read_bytes(static_cast<std::size_t>(segs[1].size)), ws);
  if (outliers.indices.size() != segs[1].count)
    rd.fail("outlier blob count disagrees with directory");

  (void)rd.checked_array_bytes(h.volume, sizeof(quant::Code));
  auto codes = ws.make<quant::Code>(h.volume);
  std::fill(codes.begin(), codes.end(), static_cast<quant::Code>(h.radius));

  for (std::size_t i = 2; i < segs.size() && segs[i].level >= level; ++i) {
    const auto syms = huffman::decode(
        rd.read_bytes(static_cast<std::size_t>(segs[i].size)), ws);
    if (syms.size() != segs[i].count)
      rd.fail("level stream symbol count mismatch");
    predictor::LevelScatterCursor cur(h.dims, segs[i].level);
    cur.advance(syms, syms.size(), codes);
  }
  const std::size_t consumed = rd.offset();

  ProgressiveResultT<T> r;
  r.data = predictor::ginterp_decompress_to_level(
      codes, std::span<const T>(anchors), outliers, h.dims, h.eb, h.cfg,
      h.radius, level, ws);
  r.dims = predictor::ginterp_preview_dims(h.dims, level);
  r.level = level;
  r.bytes_read = consumed;
  ws.reset();
  return r;
}

/// Progressive decode through the 'BBCP'/'BBC2' wrappers: LZSS blocks
/// decode serially and only as far as the inner prefix the preview needs;
/// `bytes_read` counts the wrapper framing plus the compressed extent of
/// the payloads actually decoded. A method-0 wrapper segment consumes
/// block by block; a transformed (zero-RLE / bitshuffle) segment is
/// all-or-nothing — its whole payload decodes the moment any of its raw
/// bytes are needed. A legacy (SZI1) inner archive has no directory to
/// steer by, so it decodes everything and falls back to full decode +
/// subsample.
///
/// The container parses in prefix mode and each payload's LZSS frame is
/// parsed (and cross-checked against its table entry) only when the
/// preview first needs that segment: an archive truncated at a previous
/// preview's `bytes_read` — a wrapper-payload boundary, since the 'BBC2'
/// segmentation mirrors the inner directory — decodes the same preview,
/// while a truncation that cuts a *needed* payload still throws.
template <typename T>
ProgressiveResultT<T> progressive_wrapped(std::span<const std::byte> bytes,
                                          int max_level, dev::Workspace& ws) {
  // prefix_ok only relaxes the 'BBC2' branch; legacy 'BBCP' framing is
  // never truncation-tolerant.
  const auto container = bitcomp_parse_container(bytes, /*prefix_ok=*/true);
  const std::size_t nwseg = container.segments.size();
  std::vector<lossless::LzssFrame> frames(nwseg);
  std::vector<char> parsed(nwseg, 0);
  const auto frame_at = [&](std::size_t i) -> const lossless::LzssFrame& {
    if (!parsed[i]) {
      const auto& s = container.segments[i];
      if (container.payloads[i].size() < s.size)
        throw core::CorruptArchive("bitcomp-wrapper", 0,
                                   "container truncated inside a segment "
                                   "the preview needs");
      frames[i] = lossless::lzss_parse_frame(container.payloads[i], ws);
      if (!container.legacy) {
        const auto slen = static_cast<std::size_t>(s.raw_size);
        if (s.method == lossless::Method::Lzss && frames[i].raw_size != slen)
          throw core::CorruptArchive("bitcomp-wrapper", 0,
                                     "segment frame size mismatch");
        if (s.method == lossless::Method::Bitshuffle &&
            frames[i].raw_size != lossless::bitshuffle_frame_size(slen))
          throw core::CorruptArchive("bitcomp-wrapper", 0,
                                     "bitshuffle payload size does not match "
                                     "segment");
      }
      parsed[i] = 1;
    }
    return frames[i];
  };
  std::vector<std::size_t> seg_off(nwseg);
  std::size_t raw_size = 0;
  for (std::size_t i = 0; i < nwseg; ++i) {
    seg_off[i] = raw_size;
    // Legacy has no raw_size in its table — the frame header carries it.
    raw_size += container.legacy
                    ? static_cast<std::size_t>(frame_at(i).raw_size)
                    : static_cast<std::size_t>(container.segments[i].raw_size);
  }
  auto raw = ws.make<std::byte>(raw_size);

  const auto seg_len = [&](std::size_t i) {
    return container.legacy
               ? static_cast<std::size_t>(frames[i].raw_size)
               : static_cast<std::size_t>(container.segments[i].raw_size);
  };
  std::size_t cur = 0;  // wrapper segment cursor
  std::size_t nb = 0;   // blocks decoded within the current method-0 segment
  std::size_t decoded = 0;
  const auto ensure = [&](std::size_t off) {
    if (off > raw_size) off = raw_size;
    while (decoded < off) {
      if (cur >= nwseg) {
        decoded = raw_size;
        break;
      }
      const auto& fr = frame_at(cur);
      const auto m = container.segments[cur].method;
      const std::size_t soff = seg_off[cur];
      const std::size_t slen = seg_len(cur);
      if (m == lossless::Method::Lzss && nb < fr.nblocks) {
        const std::size_t begin = nb * fr.block_size;
        const std::size_t len = std::min(fr.block_size, fr.raw_size - begin);
        lossless::lzss_decompress_block(fr, nb,
                                        {raw.data() + soff + begin, len});
        ++nb;
        decoded = std::max(decoded, soff + begin + len);
        continue;
      }
      if (m != lossless::Method::Lzss) {
        auto tmp = ws.make<std::byte>(fr.raw_size);
        for (std::size_t k = 0; k < fr.nblocks; ++k) {
          const std::size_t begin = k * fr.block_size;
          const std::size_t len = std::min(fr.block_size, fr.raw_size - begin);
          lossless::lzss_decompress_block(fr, k, {tmp.data() + begin, len});
        }
        lossless::method_untransform(tmp, m, {raw.data() + soff, slen});
      }
      // Segment complete (transformed, exhausted method-0, or empty).
      decoded = std::max(decoded, soff + slen);
      ++cur;
      nb = 0;
    }
  };
  const auto sat = [&](std::size_t base, std::uint64_t extra) {
    if (base >= raw_size) return raw_size;
    const std::size_t room = raw_size - base;
    return extra >= room ? raw_size : base + static_cast<std::size_t>(extra);
  };
  // Wrapper framing + compressed extent consumed so far. Fully-consumed
  // payloads count whole; a partially-decoded method-0 payload counts its
  // frame header plus the block extent, which for a legacy archive is
  // exactly the old framing + offsets[nb] accounting.
  const auto consumed_bytes = [&] {
    std::size_t consumed = container.table_bytes;
    for (std::size_t i = 0; i < cur; ++i)
      consumed += container.payloads[i].size();
    if (cur < nwseg && nb > 0) {
      const auto& fr = frames[cur];
      consumed += container.payloads[cur].size() - fr.stream.size();
      consumed += nb < fr.nblocks ? static_cast<std::size_t>(fr.offsets[nb])
                                  : fr.stream.size();
    }
    return consumed;
  };

  ensure(sizeof(std::uint32_t));
  std::uint32_t inner_magic = 0;
  if (raw_size >= sizeof(inner_magic))
    std::memcpy(&inner_magic, raw.data(), sizeof(inner_magic));
  if (inner_magic != kMagicV2) {
    ensure(raw_size);
    return progressive_from_full<T>({raw.data(), raw_size}, bytes.size(),
                                    max_level, ws);
  }

  core::ByteReader rd({raw.data(), raw_size}, "cusz-i");
  ensure(kInnerFixedBytes + sizeof(std::uint32_t));
  const InnerHeader h = parse_inner_header<T>(rd, kMagicV2);
  const int nlevels = predictor::ginterp_level_count(h.dims);
  // Peek the segment count (clamped to the largest legal value) so the
  // ensure covers the exact directory for both pre-index and indexed
  // layouts; a preview never pays for bytes past it.
  ensure(sat(rd.offset(), sizeof(std::uint32_t)));
  std::uint32_t nseg_peek = 0;
  if (raw_size >= rd.offset() + sizeof(nseg_peek))
    std::memcpy(&nseg_peek, raw.data() + rd.offset(), sizeof(nseg_peek));
  const auto nseg_max = static_cast<std::uint32_t>(nlevels) + 3;
  ensure(sat(rd.offset(),
             sizeof(std::uint32_t) +
                 static_cast<std::uint64_t>(std::min(nseg_peek, nseg_max)) *
                     sizeof(SegmentEntry)));
  const auto segs = parse_v2_directory<T>(rd, h);
  const int level = std::clamp(max_level, 1, nlevels + 1);

  const std::size_t acount = static_cast<std::size_t>(segs[0].count);
  const std::size_t abytes = static_cast<std::size_t>(segs[0].size);
  ensure(sat(rd.offset(), abytes));
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  ensure(sat(rd.offset(), segs[1].size));
  const auto outliers = parse_outlier_blob<T>(
      rd.read_bytes(static_cast<std::size_t>(segs[1].size)), ws);
  if (outliers.indices.size() != segs[1].count)
    rd.fail("outlier blob count disagrees with directory");

  (void)rd.checked_array_bytes(h.volume, sizeof(quant::Code));
  auto codes = ws.make<quant::Code>(h.volume);
  std::fill(codes.begin(), codes.end(), static_cast<quant::Code>(h.radius));

  for (std::size_t i = 2; i < segs.size() && segs[i].level >= level; ++i) {
    ensure(sat(rd.offset(), segs[i].size));
    const auto syms = huffman::decode(
        rd.read_bytes(static_cast<std::size_t>(segs[i].size)), ws);
    if (syms.size() != segs[i].count)
      rd.fail("level stream symbol count mismatch");
    predictor::LevelScatterCursor cur(h.dims, segs[i].level);
    cur.advance(syms, syms.size(), codes);
  }

  ProgressiveResultT<T> r;
  r.data = predictor::ginterp_decompress_to_level(
      codes, std::span<const T>(anchors), outliers, h.dims, h.eb, h.cfg,
      h.radius, level, ws);
  r.dims = predictor::ginterp_preview_dims(h.dims, level);
  r.level = level;
  r.bytes_read = consumed_bytes();
  ws.reset();
  return r;
}

/// Version dispatch for the progressive entry points: 'BBCP'/'BBC2' →
/// payload-lazy wrapped path, 'SZI2' → raw prefix decode, anything else
/// ('SZI1' or garbage) → full decode + subsample (which rejects bad magic).
template <typename T>
ProgressiveResultT<T> decompress_progressive_typed(
    std::span<const std::byte> bytes, int max_level, dev::Workspace& ws) {
  const std::uint32_t magic = peek_magic(bytes);
  if (magic == kBitcompWrapMagic || magic == kBitcompWrapMagicV2)
    return progressive_wrapped<T>(bytes, max_level, ws);
  if (magic == kMagicV2) return progressive_v2_raw<T>(bytes, max_level, ws);
  return progressive_from_full<T>(bytes, bytes.size(), max_level, ws);
}

/// SZI2 directory parse for the public cuszi_archive_segments().
template <typename T>
std::vector<SegmentInfo> archive_segments_typed(
    std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd, kMagicV2);
  const auto segs = parse_v2_directory<T>(rd, h);
  std::vector<SegmentInfo> out(segs.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    out[i].kind = segs[i].kind;
    out[i].level = segs[i].level;
    out[i].count = segs[i].count;
    out[i].offset = segs[i].offset;
    out[i].size = segs[i].size;
  }
  return out;
}

/// The batched pipeline behind cuszi_compress_many(),
/// cuszi_compress_many_checked(), and Cuszi::compress_batch: fields go
/// round-robin onto `streams` in-order async queues. `streams == 0` means
/// auto — one stream per pool worker (capped by the field count), so the
/// batch front end scales with SZI_THREADS instead of a caller-guessed
/// constant. Each stream reuses one Workspace over its own partitioned
/// arena shard, so field k+streams's buffers are field k's pages — warm,
/// already faulted in — and concurrent streams never contend on one
/// free-list mutex. On a multi-core host the streams also overlap (field
/// B's interpolation runs while field A encodes); outputs stay
/// byte-identical because every kernel is deterministic regardless of
/// scheduling.
///
/// Failure isolation: each field's exception is caught inside its own task
/// and parked in its BatchItem, so a throwing field never poisons its
/// stream — the wave's other fields (including later fields on the same
/// stream) still compress. A task that threw may have left the shared
/// Workspace holding blocks mid-flight; reset() before the next field
/// reuses it.
std::vector<BatchItem> compress_many_checked_impl(
    std::span<const FieldView> fields, const CompressParams& params,
    std::size_t streams) {
  const std::size_t nf = fields.size();
  std::vector<BatchItem> out(nf);
  if (streams == 0)
    streams = std::max<std::size_t>(
        1, dev::ThreadPool::instance().worker_count());
  if (nf > 0 && streams > nf) streams = nf;

  // Deques: Stream and Workspace are non-movable.
  std::deque<dev::Stream> ss(streams);
  std::deque<dev::Workspace> wss;
  for (std::size_t s = 0; s < streams; ++s)
    wss.emplace_back(dev::Arena::shard(s));

  for (std::size_t f = 0; f < nf; ++f) {
    dev::Workspace& ws = wss[f % streams];
    ss[f % streams].submit([f, &ws, fields, params, &out] {
      try {
        out[f].bytes = compress_typed<float>(fields[f].data, fields[f].dims,
                                             params, &out[f].timings,
                                             /*fused=*/true,
                                             /*topk=*/true, ws);
      } catch (...) {
        out[f].error = std::current_exception();
        ws.reset();
      }
    });
  }
  for (auto& s : ss) s.synchronize();
  return out;
}

std::vector<std::vector<std::byte>> compress_many_impl(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings, std::size_t streams) {
  auto items = compress_many_checked_impl(fields, params, streams);
  // Legacy contract: the whole batch throws. The lowest-index failure wins,
  // matching what a sequential per-field loop would have raised first.
  for (const auto& it : items)
    if (!it.ok()) std::rethrow_exception(it.error);
  std::vector<std::vector<std::byte>> out(items.size());
  std::vector<StageTimings> times(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i] = std::move(items[i].bytes);
    times[i] = items[i].timings;
  }
  if (timings) *timings = std::move(times);
  return out;
}

/// The Compressor-interface adapter over the f32 typed API. Compression
/// runs the fused pipeline (`topk` only affects the unfused free-function
/// reference path, kept for the §VI-A histogram ablation).
class Cuszi final : public Compressor {
 public:
  explicit Cuszi(bool topk) : topk_(topk) {}

  [[nodiscard]] std::string name() const override { return "cuSZ-i"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    CompressResult r;
    r.bytes = compress_typed<float>(field.data, field.dims, p, &r.timings,
                                    /*fused=*/true, topk_);
    return r;
  }

  [[nodiscard]] std::vector<CompressResult> compress_batch(
      std::span<const Field> fields, const CompressParams& p) override {
    std::vector<FieldView> views;
    views.reserve(fields.size());
    for (const auto& f : fields) views.push_back({f.view(), f.dims});
    std::vector<StageTimings> times;
    auto archives = compress_many_impl(views, p, &times, /*streams=*/0);
    std::vector<CompressResult> out(archives.size());
    for (std::size_t i = 0; i < archives.size(); ++i) {
      out[i].bytes = std::move(archives[i]);
      out[i].timings = times[i];
    }
    return out;
  }

  [[nodiscard]] std::vector<CheckedCompressResult> compress_batch_checked(
      std::span<const Field> fields, const CompressParams& p) override {
    std::vector<FieldView> views;
    views.reserve(fields.size());
    for (const auto& f : fields) views.push_back({f.view(), f.dims});
    auto items = compress_many_checked_impl(views, p, /*streams=*/0);
    std::vector<CheckedCompressResult> out(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      out[i].result.bytes = std::move(items[i].bytes);
      out[i].result.timings = items[i].timings;
      out[i].error = items[i].error;
    }
    return out;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    auto out = decompress_typed<float>(bytes);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds,
                                              dev::Workspace& ws) override {
    core::Timer total;
    auto out = decompress_typed<float>(bytes, ws);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

  [[nodiscard]] CompressResult compress_bitcomp(
      const Field& field, const CompressParams& p) override {
    CompressResult r;
    dev::Workspace ws(dev::Arena::instance());
    r.bytes = compress_bitcomp_typed<float>(field.data, field.dims, p,
                                            &r.timings, ws,
                                            lossless::LzssMode::Lazy);
    return r;
  }

  [[nodiscard]] std::vector<float> decompress_bitcomp(
      std::span<const std::byte> bytes, double* decode_seconds) override {
    core::Timer total;
    dev::Workspace ws(dev::Arena::instance());
    auto out = decompress_bitcomp_typed<float>(bytes, ws);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

  [[nodiscard]] std::vector<float> decompress_stages(
      std::span<const std::byte> bytes, DecodeTimings& t) override {
    return decompress_typed<float>(bytes, &t);
  }

  [[nodiscard]] std::vector<float> decompress_bitcomp_stages(
      std::span<const std::byte> bytes, DecodeTimings& t) override {
    dev::Workspace ws(dev::Arena::instance());
    return decompress_bitcomp_typed<float>(bytes, ws, &t);
  }

  [[nodiscard]] ProgressiveResult decompress_progressive(
      std::span<const std::byte> bytes, int max_level) override {
    dev::Workspace ws(dev::Arena::instance());
    return decompress_progressive_typed<float>(bytes, max_level, ws);
  }

  [[nodiscard]] RoiResult decompress_roi(std::span<const std::byte> bytes,
                                         const RoiBox& box) override {
    return cuszi_decompress_roi_f32(bytes, box);
  }

 private:
  bool topk_;
};

}  // namespace

std::unique_ptr<Compressor> make_cuszi(bool use_topk_histogram) {
  return std::make_unique<Cuszi>(use_topk_histogram);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/true,
                               /*topk=*/true);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/true,
                                /*topk=*/true);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings,
                                      dev::Workspace& ws) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/true,
                               /*topk=*/true, ws);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings,
                                      dev::Workspace& ws) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/true,
                                /*topk=*/true, ws);
}

std::vector<std::byte> cuszi_compress_unfused(std::span<const float> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              bool use_topk_histogram) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/false,
                               use_topk_histogram);
}

std::vector<std::byte> cuszi_compress_unfused(std::span<const double> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              bool use_topk_histogram) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/false,
                                use_topk_histogram);
}

std::vector<std::byte> cuszi_compress_bitcomp(std::span<const float> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              dev::Workspace& ws,
                                              lossless::LzssMode mode) {
  return compress_bitcomp_typed<float>(data, dims, params, timings, ws, mode);
}

std::vector<std::byte> cuszi_compress_bitcomp(std::span<const double> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              dev::Workspace& ws,
                                              lossless::LzssMode mode) {
  return compress_bitcomp_typed<double>(data, dims, params, timings, ws, mode);
}

std::vector<std::vector<std::byte>> cuszi_compress_many(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings, std::size_t streams) {
  return compress_many_impl(fields, params, timings, streams);
}

std::vector<BatchItem> cuszi_compress_many_checked(
    std::span<const FieldView> fields, const CompressParams& params,
    std::size_t streams) {
  return compress_many_checked_impl(fields, params, streams);
}

Precision cuszi_archive_precision(std::span<const std::byte> bytes) {
  // Buffers shorter than magic + precision throw CorruptArchive (not UB),
  // and the magic is verified before the precision byte is interpreted.
  core::ByteReader rd(bytes, "cusz-i");
  const auto magic = rd.read<std::uint32_t>();
  if (magic != kMagic && magic != kMagicV2) rd.fail("bad magic");
  const auto prec = rd.read<std::uint8_t>();
  if (prec > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  return static_cast<Precision>(prec);
}

std::vector<SegmentInfo> cuszi_archive_segments(
    std::span<const std::byte> bytes) {
  const std::uint32_t magic = peek_magic(bytes);
  if (magic == kBitcompWrapMagic || magic == kBitcompWrapMagicV2) {
    const auto inner = bitcomp_unwrap_archive(bytes);
    return cuszi_archive_segments(inner);
  }
  if (peek_magic(bytes) == kMagic) return {};
  return cuszi_archive_precision(bytes) == Precision::F32
             ? archive_segments_typed<float>(bytes)
             : archive_segments_typed<double>(bytes);
}

std::vector<std::byte> cuszi_compress_v1(std::span<const float> data,
                                         const dev::Dim3& dims,
                                         const CompressParams& params,
                                         StageTimings* timings) {
  dev::Arena local;
  dev::Workspace ws(local);
  return compress_v1_typed<float>(data, dims, params, timings, ws);
}

std::vector<std::byte> cuszi_compress_v1(std::span<const double> data,
                                         const dev::Dim3& dims,
                                         const CompressParams& params,
                                         StageTimings* timings) {
  dev::Arena local;
  dev::Workspace ws(local);
  return compress_v1_typed<double>(data, dims, params, timings, ws);
}

std::vector<std::byte> cuszi_compress_unified_book(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/true,
                               /*topk=*/true, /*unified=*/true);
}

std::vector<std::byte> cuszi_compress_unified_book(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/true,
                                /*topk=*/true, /*unified=*/true);
}

ProgressiveResultT<float> cuszi_decompress_progressive_f32(
    std::span<const std::byte> bytes, int max_level) {
  dev::Arena local;
  dev::Workspace ws(local);
  return decompress_progressive_typed<float>(bytes, max_level, ws);
}

ProgressiveResultT<double> cuszi_decompress_progressive_f64(
    std::span<const std::byte> bytes, int max_level) {
  dev::Arena local;
  dev::Workspace ws(local);
  return decompress_progressive_typed<double>(bytes, max_level, ws);
}

ProgressiveResultT<float> cuszi_decompress_progressive_f32(
    std::span<const std::byte> bytes, int max_level, dev::Workspace& ws) {
  return decompress_progressive_typed<float>(bytes, max_level, ws);
}

RoiResultT<float> cuszi_decompress_roi_f32(io::ArchiveSource& src,
                                           const RoiBox& box) {
  return decompress_roi_typed<float>(src, box);
}

RoiResultT<double> cuszi_decompress_roi_f64(io::ArchiveSource& src,
                                            const RoiBox& box) {
  return decompress_roi_typed<double>(src, box);
}

RoiResultT<float> cuszi_decompress_roi_f32(std::span<const std::byte> bytes,
                                           const RoiBox& box) {
  io::MemorySource ms(bytes);
  return decompress_roi_typed<float>(ms, box);
}

RoiResultT<double> cuszi_decompress_roi_f64(std::span<const std::byte> bytes,
                                            const RoiBox& box) {
  io::MemorySource ms(bytes);
  return decompress_roi_typed<double>(ms, box);
}

ProgressiveResultT<double> cuszi_decompress_progressive_f64(
    std::span<const std::byte> bytes, int max_level, dev::Workspace& ws) {
  return decompress_progressive_typed<double>(bytes, max_level, ws);
}

std::vector<float> cuszi_decompress_f32(std::span<const std::byte> bytes,
                                        DecodeTimings* timings) {
  return decompress_typed<float>(bytes, timings);
}

std::vector<double> cuszi_decompress_f64(std::span<const std::byte> bytes,
                                         DecodeTimings* timings) {
  return decompress_typed<double>(bytes, timings);
}

std::vector<float> cuszi_decompress_f32(std::span<const std::byte> bytes,
                                        dev::Workspace& ws) {
  return decompress_typed<float>(bytes, ws);
}

std::vector<double> cuszi_decompress_f64(std::span<const std::byte> bytes,
                                         dev::Workspace& ws) {
  return decompress_typed<double>(bytes, ws);
}

std::vector<float> cuszi_decompress_bitcomp_f32(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings) {
  return decompress_bitcomp_typed<float>(bytes, ws, timings);
}

std::vector<double> cuszi_decompress_bitcomp_f64(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings) {
  return decompress_bitcomp_typed<double>(bytes, ws, timings);
}

}  // namespace szi
