#include "core/cuszi.hh"

#include <deque>
#include <exception>
#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/stream.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "metrics/stats.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"

namespace szi {

namespace {

constexpr std::uint32_t kMagic = 0x31495A53;  // "SZI1"

struct PackedConfig {
  double alpha;
  std::uint8_t cubic[3];
  std::uint8_t order[3];
  std::uint16_t radius;
};

template <typename T>
constexpr Precision precision_of() {
  return sizeof(T) == 4 ? Precision::F32 : Precision::F64;
}

template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool topk,
                                      dev::Workspace& ws) {
  if (p.mode == ErrorMode::FixedRate)
    throw std::invalid_argument("cuSZ-i: fixed-rate mode not supported");
  if (p.mode == ErrorMode::PwRel)
    throw std::invalid_argument(
        "cuSZ-i: pointwise-relative mode requires with_pointwise_rel()");
  if (data.size() != dims.volume())
    throw std::invalid_argument("cuSZ-i: size/dims mismatch");
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  // Profiling + auto-tuning kernel (also resolves Rel -> Abs).
  auto prof = predictor::autotune(data, dims, p.value, ws);
  const double eb =
      p.mode == ErrorMode::Rel ? p.value * prof.value_range : p.value;
  if (eb <= 0) throw std::invalid_argument("cuSZ-i: non-positive error bound");
  if (p.mode == ErrorMode::Rel) {
    // ε changed meaning: recompute α for the absolute bound.
    prof.epsilon = p.value;
    prof.config.alpha = predictor::alpha_of_epsilon(prof.epsilon);
  }
  t.predict += stage.lap();

  // G-Interp prediction + quantization (codes/anchors/outliers pooled).
  constexpr int kRadius = quant::kDefaultRadius;
  const auto pred =
      predictor::ginterp_compress(data, dims, eb, prof.config, kRadius, ws);
  t.predict += stage.lap();

  // Huffman: histogram & encode are device kernels; the codebook build is
  // the host-side step the paper times separately (§VI-A).
  const auto hist =
      topk ? huffman::histogram_topk(pred.codes, 2 * kRadius, kRadius, 16, ws)
           : huffman::histogram(pred.codes, 2 * kRadius, ws);
  t.histogram = stage.lap();
  const auto book = huffman::Codebook::build(hist);
  t.codebook = stage.lap();
  const auto huff =
      huffman::encode_with_book(pred.codes, book, huffman::kDefaultChunk, ws);
  t.encode = stage.lap();

  core::ByteWriter w;
  const std::size_t outlier_blob =
      sizeof(std::uint64_t) + pred.outliers.byte_size();
  w.reserve(64 + pred.anchors.size() * sizeof(T) + outlier_blob + huff.size());
  w.put(kMagic);
  w.put(static_cast<std::uint8_t>(precision_of<T>()));
  w.put(static_cast<std::uint64_t>(dims.x));
  w.put(static_cast<std::uint64_t>(dims.y));
  w.put(static_cast<std::uint64_t>(dims.z));
  w.put(eb);
  PackedConfig pc{};
  pc.alpha = prof.config.alpha;
  for (int i = 0; i < 3; ++i) {
    pc.cubic[i] = static_cast<std::uint8_t>(
        prof.config.cubic[static_cast<std::size_t>(i)]);
    pc.order[i] = prof.config.dim_order[static_cast<std::size_t>(i)];
  }
  pc.radius = kRadius;
  w.put(pc);
  w.put_array(pred.anchors);
  // Outlier blob assembled in place — same framing as
  // put_blob(OutlierSetT::serialize()): u64 blob size | u64 n | idx | vals.
  w.put(static_cast<std::uint64_t>(outlier_blob));
  w.put(static_cast<std::uint64_t>(pred.outliers.count()));
  w.put_raw(std::as_bytes(pred.outliers.indices));
  w.put_raw(std::as_bytes(pred.outliers.values));
  w.put_blob(huff);
  ws.reset();
  t.total = total.lap();
  if (timings) *timings = t;
  return w.take();
}

template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool topk) {
  // Throwaway arena: malloc-equivalent lifetime, no global memory retained.
  // Pooling across calls is opt-in via the Workspace overload.
  dev::Arena local;
  dev::Workspace ws(local);
  return compress_typed<T>(data, dims, p, timings, topk, ws);
}

template <typename T>
std::vector<T> decompress_typed(std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "cusz-i");
  rd.expect_magic(kMagic);
  const auto prec_byte = rd.read<std::uint8_t>();
  if (prec_byte > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  if (static_cast<Precision>(prec_byte) != precision_of<T>())
    rd.fail("archive precision mismatch");
  dev::Dim3 dims;
  dims.x = rd.read<std::uint64_t>();
  dims.y = rd.read<std::uint64_t>();
  dims.z = rd.read<std::uint64_t>();
  const std::size_t volume =
      core::checked_volume("cusz-i", rd.offset(), dims.x, dims.y, dims.z);
  (void)rd.checked_array_bytes(volume, sizeof(T));
  const auto eb = rd.read<double>();
  const auto pc = rd.read<PackedConfig>();
  predictor::InterpConfig cfg;
  cfg.alpha = pc.alpha;
  for (int i = 0; i < 3; ++i) {
    if (pc.cubic[i] > static_cast<std::uint8_t>(predictor::CubicKind::Natural))
      rd.fail("unknown cubic kind");
    if (pc.order[i] > 2) rd.fail("interpolation dim order out of range");
    cfg.cubic[static_cast<std::size_t>(i)] =
        static_cast<predictor::CubicKind>(pc.cubic[i]);
    cfg.dim_order[static_cast<std::size_t>(i)] = pc.order[i];
  }
  const auto anchors = rd.read_length_prefixed_array<T>();
  std::size_t consumed = 0;
  const auto outliers =
      quant::OutlierSetT<T>::deserialize(rd.read_length_prefixed(), &consumed);
  const auto codes = huffman::decode(rd.read_length_prefixed());
  if (codes.size() != volume) rd.fail("code count mismatch");

  // ginterp_decompress validates the anchor count and outlier indices
  // against `dims` before scattering.
  return predictor::ginterp_decompress(codes, std::span<const T>(anchors),
                                       outliers, dims, eb, cfg, pc.radius);
}

/// The batched pipeline behind cuszi_compress_many() and
/// Cuszi::compress_batch: fields go round-robin onto `streams` in-order
/// async queues, each stream reusing one Workspace over the global arena, so
/// field k+streams's buffers are field k's pages — warm, already faulted in.
/// On a multi-core host the streams also overlap (field B's interpolation
/// runs while field A encodes); outputs stay byte-identical because every
/// kernel is deterministic regardless of scheduling.
std::vector<std::vector<std::byte>> compress_many_impl(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings, std::size_t streams, bool topk) {
  const std::size_t nf = fields.size();
  std::vector<std::vector<std::byte>> out(nf);
  std::vector<StageTimings> times(nf);
  if (streams == 0) streams = 1;
  if (nf > 0 && streams > nf) streams = nf;

  {
    // Deques: Stream and Workspace are non-movable.
    std::deque<dev::Stream> ss(streams);
    std::deque<dev::Workspace> wss;
    for (std::size_t s = 0; s < streams; ++s)
      wss.emplace_back(dev::Arena::instance());

    for (std::size_t f = 0; f < nf; ++f) {
      dev::Workspace& ws = wss[f % streams];
      ss[f % streams].submit([f, &ws, fields, params, topk, &out, &times] {
        out[f] = compress_typed<float>(fields[f].data, fields[f].dims, params,
                                       &times[f], topk, ws);
      });
    }

    // Drain every stream before rethrowing, so no task still references the
    // local state; the first failure wins, matching sequential behavior for
    // a bad field 0.
    std::exception_ptr err;
    for (auto& s : ss) {
      try {
        s.synchronize();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  }
  if (timings) *timings = std::move(times);
  return out;
}

/// The Compressor-interface adapter over the f32 typed API.
class Cuszi final : public Compressor {
 public:
  explicit Cuszi(bool topk) : topk_(topk) {}

  [[nodiscard]] std::string name() const override { return "cuSZ-i"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    CompressResult r;
    r.bytes = compress_typed<float>(field.data, field.dims, p, &r.timings,
                                    topk_);
    return r;
  }

  [[nodiscard]] std::vector<CompressResult> compress_batch(
      std::span<const Field> fields, const CompressParams& p) override {
    std::vector<FieldView> views;
    views.reserve(fields.size());
    for (const auto& f : fields) views.push_back({f.view(), f.dims});
    std::vector<StageTimings> times;
    auto archives = compress_many_impl(views, p, &times, 2, topk_);
    std::vector<CompressResult> out(archives.size());
    for (std::size_t i = 0; i < archives.size(); ++i) {
      out[i].bytes = std::move(archives[i]);
      out[i].timings = times[i];
    }
    return out;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    auto out = decompress_typed<float>(bytes);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

 private:
  bool topk_;
};

}  // namespace

std::unique_ptr<Compressor> make_cuszi(bool use_topk_histogram) {
  return std::make_unique<Cuszi>(use_topk_histogram);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<float>(data, dims, params, timings, true);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<double>(data, dims, params, timings, true);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings,
                                      dev::Workspace& ws) {
  return compress_typed<float>(data, dims, params, timings, true, ws);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings,
                                      dev::Workspace& ws) {
  return compress_typed<double>(data, dims, params, timings, true, ws);
}

std::vector<std::vector<std::byte>> cuszi_compress_many(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings, std::size_t streams) {
  return compress_many_impl(fields, params, timings, streams, true);
}

Precision cuszi_archive_precision(std::span<const std::byte> bytes) {
  // Buffers shorter than magic + precision throw CorruptArchive (not UB),
  // and the magic is verified before the precision byte is interpreted.
  core::ByteReader rd(bytes, "cusz-i");
  rd.expect_magic(kMagic);
  const auto prec = rd.read<std::uint8_t>();
  if (prec > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  return static_cast<Precision>(prec);
}

std::vector<float> cuszi_decompress_f32(std::span<const std::byte> bytes) {
  return decompress_typed<float>(bytes);
}

std::vector<double> cuszi_decompress_f64(std::span<const std::byte> bytes) {
  return decompress_typed<double>(bytes);
}

}  // namespace szi
