#include "core/cuszi.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <stdexcept>

#include <optional>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "device/stream.hh"
#include "device/thread_pool.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "metrics/stats.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"

namespace szi {

namespace {

constexpr std::uint32_t kMagic = 0x31495A53;  // "SZI1"

struct PackedConfig {
  double alpha;
  std::uint8_t cubic[3];
  std::uint8_t order[3];
  std::uint16_t radius;
};
static_assert(sizeof(PackedConfig) == 16, "archive layout is padding-free");

/// Bytes of the fixed inner-archive header: magic | precision | dims | eb |
/// PackedConfig. The anchor count follows immediately.
constexpr std::size_t kInnerFixedBytes =
    sizeof(std::uint32_t) + sizeof(std::uint8_t) + 3 * sizeof(std::uint64_t) +
    sizeof(double) + sizeof(PackedConfig);

template <typename T>
constexpr Precision precision_of() {
  return sizeof(T) == 4 ? Precision::F32 : Precision::F64;
}

struct Tuned {
  double eb;
  predictor::InterpConfig cfg;
};

/// Whether offloading LZSS blocks to a dev::Stream can actually overlap
/// with the host thread. On a single-hardware-thread machine the stream
/// only adds context-switch ping-pong, so the pipelined paths run the same
/// block tasks inline at the same watermark points instead — identical
/// bytes, better cache locality (each block is processed while still hot
/// from being written/needed).
bool stream_overlap_pays() {
  return dev::ThreadPool::instance().worker_count() > 1;
}

/// Shared front half of every compress path: parameter validation plus the
/// profiling auto-tune kernel (which also resolves Rel -> Abs).
template <typename T>
Tuned autotune_checked(std::span<const T> data, const dev::Dim3& dims,
                       const CompressParams& p, dev::Workspace& ws) {
  if (p.mode == ErrorMode::FixedRate)
    throw std::invalid_argument("cuSZ-i: fixed-rate mode not supported");
  if (p.mode == ErrorMode::PwRel)
    throw std::invalid_argument(
        "cuSZ-i: pointwise-relative mode requires with_pointwise_rel()");
  if (data.size() != dims.volume())
    throw std::invalid_argument("cuSZ-i: size/dims mismatch");

  auto prof = predictor::autotune(data, dims, p.value, ws);
  const double eb =
      p.mode == ErrorMode::Rel ? p.value * prof.value_range : p.value;
  if (eb <= 0) throw std::invalid_argument("cuSZ-i: non-positive error bound");
  if (p.mode == ErrorMode::Rel) {
    // ε changed meaning: recompute α for the absolute bound.
    prof.epsilon = p.value;
    prof.config.alpha = predictor::alpha_of_epsilon(prof.epsilon);
  }
  return {eb, prof.config};
}

template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool fused,
                                      bool topk, dev::Workspace& ws) {
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  const Tuned tuned = autotune_checked(data, dims, p, ws);
  t.predict += stage.lap();

  // G-Interp prediction + quantization (codes/anchors/outliers pooled).
  // The fused path accumulates the quant-code histogram inside the predict
  // kernel; the unfused reference runs the separate full read pass over
  // `codes`. Totals are bit-identical (uint32 addition commutes), so both
  // paths produce the same codebook and the same archive bytes.
  constexpr int kRadius = quant::kDefaultRadius;
  predictor::GInterpViewT<T> pred;
  std::vector<std::uint32_t> hist;
  if (fused) {
    auto fz = predictor::ginterp_compress_fused(data, dims, tuned.eb,
                                                tuned.cfg, kRadius, ws);
    pred = fz.pred;
    hist = std::move(fz.histogram);
    t.predict += stage.lap();
    t.histogram = 0;
    t.histogram_fused = true;
  } else {
    pred = predictor::ginterp_compress(data, dims, tuned.eb, tuned.cfg,
                                       kRadius, ws);
    t.predict += stage.lap();
    hist = topk ? huffman::histogram_topk(pred.codes, 2 * kRadius, kRadius, 16,
                                          ws)
                : huffman::histogram(pred.codes, 2 * kRadius, ws);
    t.histogram = stage.lap();
  }
  const auto book = huffman::Codebook::build(hist);
  t.codebook = stage.lap();
  const auto huff =
      huffman::encode_with_book(pred.codes, book, huffman::kDefaultChunk, ws);
  t.encode = stage.lap();

  core::ByteWriter w;
  const std::size_t outlier_blob =
      sizeof(std::uint64_t) + pred.outliers.byte_size();
  w.reserve(64 + pred.anchors.size() * sizeof(T) + outlier_blob + huff.size());
  w.put(kMagic);
  w.put(static_cast<std::uint8_t>(precision_of<T>()));
  w.put(static_cast<std::uint64_t>(dims.x));
  w.put(static_cast<std::uint64_t>(dims.y));
  w.put(static_cast<std::uint64_t>(dims.z));
  w.put(tuned.eb);
  PackedConfig pc{};
  pc.alpha = tuned.cfg.alpha;
  for (int i = 0; i < 3; ++i) {
    pc.cubic[i] = static_cast<std::uint8_t>(
        tuned.cfg.cubic[static_cast<std::size_t>(i)]);
    pc.order[i] = tuned.cfg.dim_order[static_cast<std::size_t>(i)];
  }
  pc.radius = kRadius;
  w.put(pc);
  w.put_array(pred.anchors);
  // Outlier blob assembled in place — same framing as
  // put_blob(OutlierSetT::serialize()): u64 blob size | u64 n | idx | vals.
  w.put(static_cast<std::uint64_t>(outlier_blob));
  w.put(static_cast<std::uint64_t>(pred.outliers.count()));
  w.put_raw(std::as_bytes(pred.outliers.indices));
  w.put_raw(std::as_bytes(pred.outliers.values));
  w.put_blob(huff);
  ws.reset();
  t.total = total.lap();
  if (timings) *timings = t;
  return w.take();
}

template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool fused,
                                      bool topk) {
  // Throwaway arena: malloc-equivalent lifetime, no global memory retained.
  // Pooling across calls is opt-in via the Workspace overload.
  dev::Arena local;
  dev::Workspace ws(local);
  return compress_typed<T>(data, dims, p, timings, fused, topk, ws);
}

/// Bytes of the inner archive preceding the Huffman stream: fixed header,
/// length-prefixed anchors, outlier blob, and the Huffman blob's u64
/// length prefix.
template <typename T>
std::size_t inner_prefix_bytes(const predictor::GInterpViewT<T>& pred) {
  return kInnerFixedBytes + sizeof(std::uint64_t) +
         pred.anchors.size() * sizeof(T) + 2 * sizeof(std::uint64_t) +
         pred.outliers.byte_size() + sizeof(std::uint64_t);
}

/// Serializes everything up to (and including) the Huffman blob length into
/// `dst` — exactly inner_prefix_bytes(pred) bytes, byte-for-byte what
/// compress_typed's ByteWriter emits for the same inputs
/// (tests/test_fused_equiv.cc holds the two in lockstep).
template <typename T>
void write_inner_prefix(std::byte* dst, const dev::Dim3& dims, double eb,
                        const predictor::InterpConfig& cfg, int radius,
                        const predictor::GInterpViewT<T>& pred,
                        std::uint64_t huff_bytes) {
  std::byte* p = dst;
  const auto put = [&p](const auto& v) {
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
  };
  put(kMagic);
  put(static_cast<std::uint8_t>(precision_of<T>()));
  put(static_cast<std::uint64_t>(dims.x));
  put(static_cast<std::uint64_t>(dims.y));
  put(static_cast<std::uint64_t>(dims.z));
  put(eb);
  PackedConfig pc{};
  pc.alpha = cfg.alpha;
  for (int i = 0; i < 3; ++i) {
    pc.cubic[i] =
        static_cast<std::uint8_t>(cfg.cubic[static_cast<std::size_t>(i)]);
    pc.order[i] = cfg.dim_order[static_cast<std::size_t>(i)];
  }
  pc.radius = static_cast<std::uint16_t>(radius);
  put(pc);
  put(static_cast<std::uint64_t>(pred.anchors.size()));
  std::memcpy(p, pred.anchors.data(), pred.anchors.size() * sizeof(T));
  p += pred.anchors.size() * sizeof(T);
  put(static_cast<std::uint64_t>(sizeof(std::uint64_t) +
                                 pred.outliers.byte_size()));
  put(static_cast<std::uint64_t>(pred.outliers.count()));
  std::memcpy(p, pred.outliers.indices.data(),
              pred.outliers.indices.size_bytes());
  p += pred.outliers.indices.size_bytes();
  std::memcpy(p, pred.outliers.values.data(),
              pred.outliers.values.size_bytes());
  p += pred.outliers.values.size_bytes();
  put(huff_bytes);
}

/// The fused compress-to-wrapped-archive pipeline (the tentpole): predict
/// and histogram fuse into one pass; the inner archive is assembled exactly
/// once in workspace memory with the Huffman payload emitted straight into
/// its final slot; and a dev::Stream LZSS-compresses each 64 KiB block the
/// moment every byte below it is final (a rising watermark), so the
/// de-redundancy pass overlaps the Huffman emit instead of re-reading a
/// finished archive. Byte-identical to
/// bitcomp_wrap_archive(compress_typed(...)) with the same LzssMode.
template <typename T>
std::vector<std::byte> compress_bitcomp_typed(std::span<const T> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& p,
                                              StageTimings* timings,
                                              dev::Workspace& ws,
                                              lossless::LzssMode mode) {
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  const Tuned tuned = autotune_checked(data, dims, p, ws);
  t.predict += stage.lap();

  constexpr int kRadius = quant::kDefaultRadius;
  const auto fz = predictor::ginterp_compress_fused(data, dims, tuned.eb,
                                                    tuned.cfg, kRadius, ws);
  const auto& pred = fz.pred;
  t.predict += stage.lap();
  t.histogram = 0;
  t.histogram_fused = true;

  const auto book = huffman::Codebook::build(fz.histogram);
  t.codebook = stage.lap();

  const std::size_t prefix_bytes = inner_prefix_bytes(pred);
  std::optional<dev::Stream> lz;
  if (stream_overlap_pays()) lz.emplace();

  // With a worker to overlap against, the two-phase encode (parallel sizing
  // pass, then chunk emission interleaved with LZSS submission) wins. On one
  // core there is nothing to overlap, so the serial fused plan+emit walks
  // the codes once, writing the payload straight into its final slot — the
  // slot's offset depends only on the prefix and header sizes, both known
  // before any chunk is measured — and only the total size arrives late.
  huffman::EncodePlan plan;
  std::span<std::byte> raw;
  if (lz) {
    plan = huffman::encode_plan(pred.codes, book, huffman::kDefaultChunk, ws);
    raw = ws.make<std::byte>(prefix_bytes + plan.stream_bytes());
  } else {
    const std::size_t header_bytes = huffman::overhead_bytes(
        book.nbins(), pred.codes.size(), huffman::kDefaultChunk);
    const std::size_t bound =
        huffman::payload_bound(book, pred.codes.size(), huffman::kDefaultChunk);
    raw = ws.make<std::byte>(prefix_bytes + header_bytes + bound);
    plan = huffman::encode_emit_serial(
        pred.codes, book, huffman::kDefaultChunk,
        raw.subspan(prefix_bytes + header_bytes), ws);
  }
  const std::size_t raw_size = prefix_bytes + plan.stream_bytes();

  // LZSS state. Blocks are submitted to the stream once the watermark of
  // final raw bytes passes their end; each task reads only bytes below the
  // watermark at submit time and the host thread writes only bytes above
  // it, so the two sides never touch the same byte concurrently.
  const std::size_t bs = lossless::kLzssBlock;
  const std::size_t nblocks = raw_size == 0 ? 0 : dev::ceil_div(raw_size, bs);
  const std::size_t stride = bs + lossless::kLzssTokenSlack;
  auto slices = ws.make<std::byte>(nblocks * stride);
  auto enc_size = ws.make<std::uint64_t>(nblocks);

  std::size_t next_block = 0;
  const auto submit_upto = [&](std::size_t watermark) {
    while (next_block < nblocks) {
      const std::size_t begin = next_block * bs;
      const std::size_t len = std::min(bs, raw_size - begin);
      if (begin + len > watermark) break;
      const std::size_t b = next_block++;
      const std::byte* in = raw.data() + begin;
      std::byte* out = slices.data() + b * stride;
      std::uint64_t* esz = enc_size.data() + b;
      if (lz) {
        lz->submit([in, len, out, stride, esz, mode] {
          *esz = lossless::lzss_compress_block({in, len}, {out, stride},
                                               dev::Arena::instance(), mode);
        });
      } else {
        *esz = lossless::lzss_compress_block({in, len}, {out, stride},
                                             dev::Arena::instance(), mode);
      }
    }
  };

  // Serial prefix + Huffman stream header (small), then — in overlap mode —
  // the payload in chunk groups: after each group every byte below the next
  // group's first chunk is final, advancing the watermark. In serial mode
  // the payload was already emitted in place, so the loop is skipped and the
  // final submit_upto runs every block inline.
  write_inner_prefix<T>(raw.data(), dims, tuned.eb, tuned.cfg, kRadius, pred,
                        static_cast<std::uint64_t>(plan.stream_bytes()));
  huffman::write_stream_header(plan, book, raw.subspan(prefix_bytes));
  const std::size_t payload_off = prefix_bytes + plan.header_bytes;
  submit_upto(payload_off);

  if (lz) {
    const auto payload = raw.subspan(payload_off);
    constexpr std::uint64_t kGroupBytes = 4 * lossless::kLzssBlock;
    std::size_t c = 0;
    while (c < plan.nchunks) {
      const std::uint64_t start = plan.offsets[c];
      std::size_t cend = c + 1;
      while (cend < plan.nchunks && plan.offsets[cend] - start < kGroupBytes)
        ++cend;
      huffman::encode_chunks(pred.codes, book, plan, c, cend, payload);
      c = cend;
      const std::uint64_t done =
          c < plan.nchunks ? plan.offsets[c] : plan.payload_bytes;
      submit_upto(payload_off + static_cast<std::size_t>(done));
    }
  }
  submit_upto(raw_size);
  if (lz) lz->synchronize();

  // Final wrapped archive, assembled directly into the returned vector:
  // 'BBCP' magic | u64 stream size | LZSS stream.
  const std::size_t lz_bytes = lossless::lzss_stream_size(raw_size, bs,
                                                          enc_size);
  std::vector<std::byte> out(sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                             lz_bytes);
  std::byte* op = out.data();
  std::memcpy(op, &kBitcompWrapMagic, sizeof(kBitcompWrapMagic));
  op += sizeof(kBitcompWrapMagic);
  const std::uint64_t sz64 = lz_bytes;
  std::memcpy(op, &sz64, sizeof(sz64));
  op += sizeof(sz64);
  lossless::lzss_assemble(raw.first(raw_size), bs, slices, stride, enc_size,
                          {op, lz_bytes});
  ws.reset();
  t.encode = stage.lap();
  t.total = total.lap();
  if (timings) *timings = t;
  return out;
}

struct InnerHeader {
  dev::Dim3 dims;
  std::size_t volume = 0;
  double eb = 0;
  predictor::InterpConfig cfg;
  int radius = 0;
};

/// Parses + validates the fixed kInnerFixedBytes header.
template <typename T>
InnerHeader parse_inner_header(core::ByteReader& rd) {
  rd.expect_magic(kMagic);
  const auto prec_byte = rd.read<std::uint8_t>();
  if (prec_byte > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  if (static_cast<Precision>(prec_byte) != precision_of<T>())
    rd.fail("archive precision mismatch");
  InnerHeader h;
  h.dims.x = rd.read<std::uint64_t>();
  h.dims.y = rd.read<std::uint64_t>();
  h.dims.z = rd.read<std::uint64_t>();
  h.volume =
      core::checked_volume("cusz-i", rd.offset(), h.dims.x, h.dims.y, h.dims.z);
  (void)rd.checked_array_bytes(h.volume, sizeof(T));
  h.eb = rd.read<double>();
  const auto pc = rd.read<PackedConfig>();
  h.cfg.alpha = pc.alpha;
  for (int i = 0; i < 3; ++i) {
    if (pc.cubic[i] > static_cast<std::uint8_t>(predictor::CubicKind::Natural))
      rd.fail("unknown cubic kind");
    if (pc.order[i] > 2) rd.fail("interpolation dim order out of range");
    h.cfg.cubic[static_cast<std::size_t>(i)] =
        static_cast<predictor::CubicKind>(pc.cubic[i]);
    h.cfg.dim_order[static_cast<std::size_t>(i)] = pc.order[i];
  }
  h.radius = pc.radius;
  return h;
}

/// Parses an outlier blob (u64 n | idx | vals) into workspace-resident
/// arrays — archive bytes are unaligned, so both arrays are memcpy'd, with
/// the same validation OutlierSetT::deserialize performs.
template <typename T>
quant::OutlierViewT<T> parse_outlier_blob(std::span<const std::byte> blob,
                                          dev::Workspace& ws) {
  core::ByteReader rd(blob, "outlier-set");
  const auto n64 = rd.read<std::uint64_t>();
  if (n64 > rd.remaining()) rd.fail("count exceeds remaining bytes");
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t ibytes = rd.checked_array_bytes(n, sizeof(std::uint64_t));
  auto idx = ws.make<std::uint64_t>(n);
  if (n > 0) std::memcpy(idx.data(), rd.read_bytes(ibytes).data(), ibytes);
  const std::size_t vbytes = rd.checked_array_bytes(n, sizeof(T));
  auto vals = ws.make<T>(n);
  if (n > 0) std::memcpy(vals.data(), rd.read_bytes(vbytes).data(), vbytes);
  quant::OutlierViewT<T> v;
  v.indices = idx;
  v.values = vals;
  return v;
}

template <typename T>
std::vector<T> decompress_typed(std::span<const std::byte> bytes,
                                dev::Workspace& ws,
                                DecodeTimings* dt = nullptr) {
  core::Timer wall;
  core::ByteReader rd(bytes, "cusz-i");
  const InnerHeader h = parse_inner_header<T>(rd);

  const auto acount64 = rd.read<std::uint64_t>();
  if (acount64 > rd.remaining()) rd.fail("array count exceeds remaining bytes");
  const std::size_t acount = static_cast<std::size_t>(acount64);
  const std::size_t abytes = rd.checked_array_bytes(acount, sizeof(T));
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  const auto outliers = parse_outlier_blob<T>(rd.read_length_prefixed(), ws);
  core::Timer hufft;
  const auto codes = huffman::decode(rd.read_length_prefixed(), ws);
  const double huff_s = hufft.lap();
  if (codes.size() != h.volume) rd.fail("code count mismatch");

  // ginterp_decompress_into validates the anchor count and outlier indices
  // against `dims` before scattering.
  std::vector<T> out(h.volume);
  core::Timer recont;
  predictor::ginterp_decompress_into(codes, std::span<const T>(anchors),
                                     outliers, h.dims, h.eb, h.cfg, h.radius,
                                     std::span<T>(out), ws);
  const double recon_s = recont.lap();
  ws.reset();
  if (dt) {
    dt->huffman = huff_s;
    dt->reconstruct = recon_s;
    dt->overlapped = false;
    dt->total = wall.lap();
  }
  return out;
}

template <typename T>
std::vector<T> decompress_typed(std::span<const std::byte> bytes,
                                DecodeTimings* dt = nullptr) {
  dev::Arena local;
  dev::Workspace ws(local);
  return decompress_typed<T>(bytes, ws, dt);
}

/// The pipelined wrapped-archive decompressor (the tentpole, mirrored):
/// LZSS blocks decode on a dev::Stream in submission order while the host
/// thread parses the inner archive behind a watermark of decoded bytes —
/// waiting on per-group events only when it needs bytes that have not
/// landed yet — and Huffman-decodes chunk groups as their payload arrives.
/// Every read of `raw` happens below the watermark, every stream write
/// above it. All parses go through the bounds-checked ByteReader over the
/// fixed-size raw buffer, so corrupt archives fail exactly like the
/// unfused path (the corruption-fuzz harness drives this route).
template <typename T>
std::vector<T> decompress_bitcomp_typed(std::span<const std::byte> bytes,
                                        dev::Workspace& ws,
                                        DecodeTimings* dt = nullptr) {
  core::Timer wall;
  // Per-stage busy time. LZSS groups and reconstruction slabs may run on
  // dev::Streams (other threads), so those two accumulate atomically in
  // nanoseconds; Huffman decode always runs on this thread. Pipeline stalls
  // (ensure()/event waits) are deliberately excluded — stages report work
  // done, `total` reports the wall clock, and DecodeTimings::overlapped
  // tells reporters the stages ran concurrently.
  std::atomic<std::int64_t> lzss_ns{0}, recon_ns{0};
  double huff_s = 0;
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto since = [&now](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now() - t0)
        .count();
  };

  const auto stream = bitcomp_wrapped_stream(bytes);
  const auto frame = lossless::lzss_parse_frame(stream, ws);
  auto raw = ws.make<std::byte>(frame.raw_size);

  constexpr std::size_t kGroupBlocks = 4;
  // Blocks of one group write disjoint raw ranges, so they fan out across
  // the pool (grain 1 = one block per chunk); with one worker, or when the
  // caller is itself a pool worker, the launch degrades to the old serial
  // walk. Either way the bytes written are identical.
  const auto decode_group = [&frame, &raw, &lzss_ns, &since](std::size_t b,
                                                             std::size_t be) {
    const auto t0 = std::chrono::steady_clock::now();
    dev::ThreadPool::instance().parallel_for(
        be - b,
        [&](std::size_t i) {
          const std::size_t k = b + i;
          const std::size_t begin = k * frame.block_size;
          const std::size_t len =
              std::min(frame.block_size, frame.raw_size - begin);
          lossless::lzss_decompress_block(frame, k, {raw.data() + begin, len});
        },
        1);
    lzss_ns += since(t0);
  };

  std::optional<dev::Stream> lz;
  std::vector<std::size_t> group_end;
  std::vector<dev::Event> group_ev;
  if (stream_overlap_pays() && frame.nblocks > 0) {
    lz.emplace();
    for (std::size_t b = 0; b < frame.nblocks; b += kGroupBlocks) {
      const std::size_t be = std::min(b + kGroupBlocks, frame.nblocks);
      lz->submit([&decode_group, b, be] { decode_group(b, be); });
      group_end.push_back(std::min(be * frame.block_size, frame.raw_size));
      group_ev.push_back(lz->record());
    }
  }

  std::size_t decoded = 0;
  std::size_t next_group = 0;
  const auto ensure = [&](std::size_t off) {
    if (off > frame.raw_size) off = frame.raw_size;
    while (decoded < off) {
      if (lz) {
        group_ev[next_group].wait();
        decoded = group_end[next_group++];
        // A failed block poisons the stream before its group's event
        // fires; surface the CorruptArchive instead of reading
        // half-written bytes.
        if (lz->errored()) lz->synchronize();
      } else {
        // Serial machine: pull-decode the next group right before it is
        // parsed (same bytes, no thread ping-pong, cache-hot handoff).
        const std::size_t b = next_group * kGroupBlocks;
        const std::size_t be = std::min(b + kGroupBlocks, frame.nblocks);
        decode_group(b, be);
        decoded = std::min(be * frame.block_size, frame.raw_size);
        ++next_group;
      }
    }
  };
  // Saturating cursor advance: lengths are attacker-controlled u64s, and
  // clamping to raw_size lets the ByteReader report the truncation.
  const auto sat = [&](std::size_t base, std::uint64_t extra) {
    if (base >= frame.raw_size) return frame.raw_size;
    const std::size_t room = frame.raw_size - base;
    return extra >= room ? frame.raw_size
                         : base + static_cast<std::size_t>(extra);
  };

  core::ByteReader rd({raw.data(), frame.raw_size}, "cusz-i");
  ensure(kInnerFixedBytes + sizeof(std::uint64_t));
  const InnerHeader h = parse_inner_header<T>(rd);

  const auto acount64 = rd.read<std::uint64_t>();
  if (acount64 > rd.remaining()) rd.fail("array count exceeds remaining bytes");
  const std::size_t acount = static_cast<std::size_t>(acount64);
  const std::size_t abytes = rd.checked_array_bytes(acount, sizeof(T));
  ensure(sat(rd.offset(), abytes));
  auto anchors = ws.make<T>(acount);
  if (acount > 0)
    std::memcpy(anchors.data(), rd.read_bytes(abytes).data(), abytes);

  ensure(sat(rd.offset(), sizeof(std::uint64_t)));
  const auto oblob64 = rd.read<std::uint64_t>();
  if (oblob64 > rd.remaining()) rd.fail("length prefix exceeds remaining bytes");
  ensure(sat(rd.offset(), oblob64));
  const auto outliers = parse_outlier_blob<T>(
      rd.read_bytes(static_cast<std::size_t>(oblob64)), ws);

  ensure(sat(rd.offset(), sizeof(std::uint64_t)));
  const auto hsize64 = rd.read<std::uint64_t>();
  if (hsize64 > rd.remaining()) rd.fail("length prefix exceeds remaining bytes");
  const auto huff = rd.read_bytes(static_cast<std::size_t>(hsize64));
  const std::size_t hoff = rd.offset() - huff.size();

  // Huffman header extent (u32 nbins | lengths | u64 n | u32 chunk |
  // u64 payload | offsets): peek just enough to know how many bytes
  // decode_plan will touch, wait for them, then build the plan. The plan
  // never reads payload bytes, so the stream may still be producing them.
  ensure(sat(hoff, sizeof(std::uint32_t)));
  std::uint32_t nbins = 0;
  if (huff.size() >= sizeof(nbins)) std::memcpy(&nbins, huff.data(), sizeof(nbins));
  const std::size_t hfixed = sizeof(std::uint32_t) + nbins +
                             sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                             sizeof(std::uint64_t);
  ensure(sat(hoff, hfixed));
  std::uint64_t nsym = 0;
  std::uint32_t csz = 0;
  if (huff.size() >= hfixed) {
    std::memcpy(&nsym, huff.data() + sizeof(std::uint32_t) + nbins,
                sizeof(nsym));
    std::memcpy(&csz,
                huff.data() + sizeof(std::uint32_t) + nbins + sizeof(nsym),
                sizeof(csz));
  }
  const std::uint64_t nchunks64 =
      csz == 0 ? 0 : nsym / csz + (nsym % csz != 0 ? 1 : 0);
  ensure(sat(hoff, hfixed + std::min<std::uint64_t>(nchunks64,
                                                    frame.raw_size) *
                                sizeof(std::uint64_t)));
  core::Timer plant;
  const auto plan = huffman::decode_plan(huff, ws);
  huff_s += plant.lap();
  if (plan.n != h.volume)
    throw core::CorruptArchive("cusz-i", hoff, "code count mismatch");

  auto codes = ws.make<quant::Code>(plan.n);
  const std::size_t pay_off =
      plan.payload.empty()
          ? frame.raw_size
          : static_cast<std::size_t>(plan.payload.data() - raw.data());

  // In-place reconstruction rides the same watermark idea one level up:
  // the reconstructor validates and scatters anchors/outliers into `out`
  // now, and as each Huffman chunk group lands, every tile z-slab whose
  // code prefix is complete reconstructs immediately — inline on a serial
  // machine (the slab's codes are still cache-hot), round-robin across a
  // per-worker stream fleet when workers exist. Slabs are mutually
  // independent (the reconstructor snapshots the cross-slab border planes
  // at construction), so any number of them may run concurrently the
  // moment their code prefix lands; every stream reads only codes below
  // the watermark, the host writes only above it. `rcs` is declared after
  // everything its tasks borrow, so unwind order drains it before those
  // locals die.
  std::vector<T> out(h.volume);
  predictor::GInterpReconstructorT<T> recon(codes, std::span<const T>(anchors),
                                            outliers, h.dims, h.eb, h.cfg,
                                            h.radius, std::span<T>(out));
  const auto run_slab_timed = [&recon, &recon_ns, &since](std::size_t bz) {
    const auto t0 = std::chrono::steady_clock::now();
    recon.run_slab(bz);
    recon_ns += since(t0);
  };
  std::deque<dev::Stream> rcs;
  if (stream_overlap_pays() && recon.slab_count() > 1) {
    const std::size_t n = std::min<std::size_t>(
        dev::ThreadPool::instance().worker_count(), recon.slab_count());
    for (std::size_t i = 0; i < n; ++i) rcs.emplace_back();
  }
  std::size_t next_slab = 0;
  const auto reconstruct_upto = [&](std::size_t code_watermark) {
    while (next_slab < recon.slab_count() &&
           recon.codes_needed(next_slab) <= code_watermark) {
      const std::size_t bz = next_slab++;
      if (!rcs.empty())
        rcs[bz % rcs.size()].submit(
            [&run_slab_timed, bz] { run_slab_timed(bz); });
      else
        run_slab_timed(bz);
    }
  };

  constexpr std::uint64_t kGroupBytes = 4 * lossless::kLzssBlock;
  std::size_t c = 0;
  while (c < plan.nchunks) {
    const std::uint64_t start = plan.offsets[c];
    std::size_t cend = c + 1;
    while (cend < plan.nchunks && plan.offsets[cend] - start < kGroupBytes)
      ++cend;
    const std::uint64_t done =
        cend < plan.nchunks ? plan.offsets[cend] : plan.payload_bytes;
    ensure(sat(pay_off, done));
    core::Timer huft;
    huffman::decode_chunks(plan, c, cend, codes);
    huff_s += huft.lap();
    c = cend;
    reconstruct_upto(std::min(cend * plan.chunk_size, plan.n));
  }
  // Drain: every block must decode even if the parser never read its bytes,
  // so a corrupt tail block throws exactly as it does in the unfused path.
  if (lz) lz->synchronize();
  else ensure(frame.raw_size);

  reconstruct_upto(plan.n);
  const bool overlapped = lz.has_value() || !rcs.empty();
  {
    // Drain every reconstruction stream before rethrowing so no task still
    // references the locals; the first failure wins.
    std::exception_ptr err;
    for (auto& s : rcs) {
      try {
        s.synchronize();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  }
  ws.reset();
  if (dt) {
    dt->unwrap = static_cast<double>(lzss_ns.load()) * 1e-9;
    dt->huffman = huff_s;
    dt->reconstruct = static_cast<double>(recon_ns.load()) * 1e-9;
    dt->overlapped = overlapped;
    dt->total = wall.lap();
  }
  return out;
}

/// The batched pipeline behind cuszi_compress_many() and
/// Cuszi::compress_batch: fields go round-robin onto `streams` in-order
/// async queues. `streams == 0` means auto — one stream per pool worker
/// (capped by the field count), so the batch front end scales with
/// SZI_THREADS instead of a caller-guessed constant. Each stream reuses one
/// Workspace over its own partitioned arena shard, so field k+streams's
/// buffers are field k's pages — warm, already faulted in — and concurrent
/// streams never contend on one free-list mutex. On a multi-core host the
/// streams also overlap (field B's interpolation runs while field A
/// encodes); outputs stay byte-identical because every kernel is
/// deterministic regardless of scheduling.
std::vector<std::vector<std::byte>> compress_many_impl(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings, std::size_t streams) {
  const std::size_t nf = fields.size();
  std::vector<std::vector<std::byte>> out(nf);
  std::vector<StageTimings> times(nf);
  if (streams == 0)
    streams = std::max<std::size_t>(
        1, dev::ThreadPool::instance().worker_count());
  if (nf > 0 && streams > nf) streams = nf;

  {
    // Deques: Stream and Workspace are non-movable.
    std::deque<dev::Stream> ss(streams);
    std::deque<dev::Workspace> wss;
    for (std::size_t s = 0; s < streams; ++s)
      wss.emplace_back(dev::Arena::shard(s));

    for (std::size_t f = 0; f < nf; ++f) {
      dev::Workspace& ws = wss[f % streams];
      ss[f % streams].submit([f, &ws, fields, params, &out, &times] {
        out[f] = compress_typed<float>(fields[f].data, fields[f].dims, params,
                                       &times[f], /*fused=*/true,
                                       /*topk=*/true, ws);
      });
    }

    // Drain every stream before rethrowing, so no task still references the
    // local state; the first failure wins, matching sequential behavior for
    // a bad field 0.
    std::exception_ptr err;
    for (auto& s : ss) {
      try {
        s.synchronize();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
  }
  if (timings) *timings = std::move(times);
  return out;
}

/// The Compressor-interface adapter over the f32 typed API. Compression
/// runs the fused pipeline (`topk` only affects the unfused free-function
/// reference path, kept for the §VI-A histogram ablation).
class Cuszi final : public Compressor {
 public:
  explicit Cuszi(bool topk) : topk_(topk) {}

  [[nodiscard]] std::string name() const override { return "cuSZ-i"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    CompressResult r;
    r.bytes = compress_typed<float>(field.data, field.dims, p, &r.timings,
                                    /*fused=*/true, topk_);
    return r;
  }

  [[nodiscard]] std::vector<CompressResult> compress_batch(
      std::span<const Field> fields, const CompressParams& p) override {
    std::vector<FieldView> views;
    views.reserve(fields.size());
    for (const auto& f : fields) views.push_back({f.view(), f.dims});
    std::vector<StageTimings> times;
    auto archives = compress_many_impl(views, p, &times, /*streams=*/0);
    std::vector<CompressResult> out(archives.size());
    for (std::size_t i = 0; i < archives.size(); ++i) {
      out[i].bytes = std::move(archives[i]);
      out[i].timings = times[i];
    }
    return out;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    auto out = decompress_typed<float>(bytes);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds,
                                              dev::Workspace& ws) override {
    core::Timer total;
    auto out = decompress_typed<float>(bytes, ws);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

  [[nodiscard]] CompressResult compress_bitcomp(
      const Field& field, const CompressParams& p) override {
    CompressResult r;
    dev::Workspace ws(dev::Arena::instance());
    r.bytes = compress_bitcomp_typed<float>(field.data, field.dims, p,
                                            &r.timings, ws,
                                            lossless::LzssMode::Lazy);
    return r;
  }

  [[nodiscard]] std::vector<float> decompress_bitcomp(
      std::span<const std::byte> bytes, double* decode_seconds) override {
    core::Timer total;
    dev::Workspace ws(dev::Arena::instance());
    auto out = decompress_bitcomp_typed<float>(bytes, ws);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

  [[nodiscard]] std::vector<float> decompress_stages(
      std::span<const std::byte> bytes, DecodeTimings& t) override {
    return decompress_typed<float>(bytes, &t);
  }

  [[nodiscard]] std::vector<float> decompress_bitcomp_stages(
      std::span<const std::byte> bytes, DecodeTimings& t) override {
    dev::Workspace ws(dev::Arena::instance());
    return decompress_bitcomp_typed<float>(bytes, ws, &t);
  }

 private:
  bool topk_;
};

}  // namespace

std::unique_ptr<Compressor> make_cuszi(bool use_topk_histogram) {
  return std::make_unique<Cuszi>(use_topk_histogram);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/true,
                               /*topk=*/true);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/true,
                                /*topk=*/true);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings,
                                      dev::Workspace& ws) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/true,
                               /*topk=*/true, ws);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings,
                                      dev::Workspace& ws) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/true,
                                /*topk=*/true, ws);
}

std::vector<std::byte> cuszi_compress_unfused(std::span<const float> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              bool use_topk_histogram) {
  return compress_typed<float>(data, dims, params, timings, /*fused=*/false,
                               use_topk_histogram);
}

std::vector<std::byte> cuszi_compress_unfused(std::span<const double> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              bool use_topk_histogram) {
  return compress_typed<double>(data, dims, params, timings, /*fused=*/false,
                                use_topk_histogram);
}

std::vector<std::byte> cuszi_compress_bitcomp(std::span<const float> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              dev::Workspace& ws,
                                              lossless::LzssMode mode) {
  return compress_bitcomp_typed<float>(data, dims, params, timings, ws, mode);
}

std::vector<std::byte> cuszi_compress_bitcomp(std::span<const double> data,
                                              const dev::Dim3& dims,
                                              const CompressParams& params,
                                              StageTimings* timings,
                                              dev::Workspace& ws,
                                              lossless::LzssMode mode) {
  return compress_bitcomp_typed<double>(data, dims, params, timings, ws, mode);
}

std::vector<std::vector<std::byte>> cuszi_compress_many(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings, std::size_t streams) {
  return compress_many_impl(fields, params, timings, streams);
}

Precision cuszi_archive_precision(std::span<const std::byte> bytes) {
  // Buffers shorter than magic + precision throw CorruptArchive (not UB),
  // and the magic is verified before the precision byte is interpreted.
  core::ByteReader rd(bytes, "cusz-i");
  rd.expect_magic(kMagic);
  const auto prec = rd.read<std::uint8_t>();
  if (prec > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  return static_cast<Precision>(prec);
}

std::vector<float> cuszi_decompress_f32(std::span<const std::byte> bytes,
                                        DecodeTimings* timings) {
  return decompress_typed<float>(bytes, timings);
}

std::vector<double> cuszi_decompress_f64(std::span<const std::byte> bytes,
                                         DecodeTimings* timings) {
  return decompress_typed<double>(bytes, timings);
}

std::vector<float> cuszi_decompress_f32(std::span<const std::byte> bytes,
                                        dev::Workspace& ws) {
  return decompress_typed<float>(bytes, ws);
}

std::vector<double> cuszi_decompress_f64(std::span<const std::byte> bytes,
                                         dev::Workspace& ws) {
  return decompress_typed<double>(bytes, ws);
}

std::vector<float> cuszi_decompress_bitcomp_f32(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings) {
  return decompress_bitcomp_typed<float>(bytes, ws, timings);
}

std::vector<double> cuszi_decompress_bitcomp_f64(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings) {
  return decompress_bitcomp_typed<double>(bytes, ws, timings);
}

}  // namespace szi
