#include "core/cuszi.hh"

#include <stdexcept>

#include "core/bytes.hh"
#include "core/timer.hh"
#include "huffman/histogram.hh"
#include "huffman/huffman.hh"
#include "metrics/stats.hh"
#include "predictor/autotune.hh"
#include "predictor/ginterp.hh"

namespace szi {

namespace {

constexpr std::uint32_t kMagic = 0x31495A53;  // "SZI1"

struct PackedConfig {
  double alpha;
  std::uint8_t cubic[3];
  std::uint8_t order[3];
  std::uint16_t radius;
};

template <typename T>
constexpr Precision precision_of() {
  return sizeof(T) == 4 ? Precision::F32 : Precision::F64;
}

template <typename T>
std::vector<std::byte> compress_typed(std::span<const T> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& p,
                                      StageTimings* timings, bool topk) {
  if (p.mode == ErrorMode::FixedRate)
    throw std::invalid_argument("cuSZ-i: fixed-rate mode not supported");
  if (p.mode == ErrorMode::PwRel)
    throw std::invalid_argument(
        "cuSZ-i: pointwise-relative mode requires with_pointwise_rel()");
  if (data.size() != dims.volume())
    throw std::invalid_argument("cuSZ-i: size/dims mismatch");
  core::Timer total;
  core::Timer stage;
  StageTimings t;

  // Profiling + auto-tuning kernel (also resolves Rel -> Abs).
  auto prof = predictor::autotune(data, dims, p.value);
  const double eb =
      p.mode == ErrorMode::Rel ? p.value * prof.value_range : p.value;
  if (eb <= 0) throw std::invalid_argument("cuSZ-i: non-positive error bound");
  if (p.mode == ErrorMode::Rel) {
    // ε changed meaning: recompute α for the absolute bound.
    prof.epsilon = p.value;
    prof.config.alpha = predictor::alpha_of_epsilon(prof.epsilon);
  }
  t.predict += stage.lap();

  // G-Interp prediction + quantization.
  constexpr int kRadius = quant::kDefaultRadius;
  const auto pred = predictor::ginterp_compress(data, dims, eb, prof.config,
                                                kRadius);
  t.predict += stage.lap();

  // Huffman: histogram & encode are device kernels; the codebook build is
  // the host-side step the paper times separately (§VI-A).
  const auto hist =
      topk ? huffman::histogram_topk(pred.codes, 2 * kRadius, kRadius, 16)
           : huffman::histogram(pred.codes, 2 * kRadius);
  t.histogram = stage.lap();
  const auto book = huffman::Codebook::build(hist);
  t.codebook = stage.lap();
  auto huff = huffman::encode_with_book(pred.codes, book);
  t.encode = stage.lap();

  core::ByteWriter w;
  w.put(kMagic);
  w.put(static_cast<std::uint8_t>(precision_of<T>()));
  w.put(static_cast<std::uint64_t>(dims.x));
  w.put(static_cast<std::uint64_t>(dims.y));
  w.put(static_cast<std::uint64_t>(dims.z));
  w.put(eb);
  PackedConfig pc{};
  pc.alpha = prof.config.alpha;
  for (int i = 0; i < 3; ++i) {
    pc.cubic[i] = static_cast<std::uint8_t>(
        prof.config.cubic[static_cast<std::size_t>(i)]);
    pc.order[i] = prof.config.dim_order[static_cast<std::size_t>(i)];
  }
  pc.radius = kRadius;
  w.put(pc);
  w.put_vector(pred.anchors);
  w.put_blob(pred.outliers.serialize());
  w.put_blob(huff);
  t.total = total.lap();
  if (timings) *timings = t;
  return w.take();
}

template <typename T>
std::vector<T> decompress_typed(std::span<const std::byte> bytes) {
  core::ByteReader rd(bytes, "cusz-i");
  rd.expect_magic(kMagic);
  const auto prec_byte = rd.read<std::uint8_t>();
  if (prec_byte > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  if (static_cast<Precision>(prec_byte) != precision_of<T>())
    rd.fail("archive precision mismatch");
  dev::Dim3 dims;
  dims.x = rd.read<std::uint64_t>();
  dims.y = rd.read<std::uint64_t>();
  dims.z = rd.read<std::uint64_t>();
  const std::size_t volume =
      core::checked_volume("cusz-i", rd.offset(), dims.x, dims.y, dims.z);
  (void)rd.checked_array_bytes(volume, sizeof(T));
  const auto eb = rd.read<double>();
  const auto pc = rd.read<PackedConfig>();
  predictor::InterpConfig cfg;
  cfg.alpha = pc.alpha;
  for (int i = 0; i < 3; ++i) {
    if (pc.cubic[i] > static_cast<std::uint8_t>(predictor::CubicKind::Natural))
      rd.fail("unknown cubic kind");
    if (pc.order[i] > 2) rd.fail("interpolation dim order out of range");
    cfg.cubic[static_cast<std::size_t>(i)] =
        static_cast<predictor::CubicKind>(pc.cubic[i]);
    cfg.dim_order[static_cast<std::size_t>(i)] = pc.order[i];
  }
  const auto anchors = rd.read_length_prefixed_array<T>();
  std::size_t consumed = 0;
  const auto outliers =
      quant::OutlierSetT<T>::deserialize(rd.read_length_prefixed(), &consumed);
  const auto codes = huffman::decode(rd.read_length_prefixed());
  if (codes.size() != volume) rd.fail("code count mismatch");

  // ginterp_decompress validates the anchor count and outlier indices
  // against `dims` before scattering.
  return predictor::ginterp_decompress(codes, std::span<const T>(anchors),
                                       outliers, dims, eb, cfg, pc.radius);
}

/// The Compressor-interface adapter over the f32 typed API.
class Cuszi final : public Compressor {
 public:
  explicit Cuszi(bool topk) : topk_(topk) {}

  [[nodiscard]] std::string name() const override { return "cuSZ-i"; }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    CompressResult r;
    r.bytes = compress_typed<float>(field.data, field.dims, p, &r.timings,
                                    topk_);
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    auto out = decompress_typed<float>(bytes);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

 private:
  bool topk_;
};

}  // namespace

std::unique_ptr<Compressor> make_cuszi(bool use_topk_histogram) {
  return std::make_unique<Cuszi>(use_topk_histogram);
}

std::vector<std::byte> cuszi_compress(std::span<const float> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<float>(data, dims, params, timings, true);
}

std::vector<std::byte> cuszi_compress(std::span<const double> data,
                                      const dev::Dim3& dims,
                                      const CompressParams& params,
                                      StageTimings* timings) {
  return compress_typed<double>(data, dims, params, timings, true);
}

Precision cuszi_archive_precision(std::span<const std::byte> bytes) {
  // Buffers shorter than magic + precision throw CorruptArchive (not UB),
  // and the magic is verified before the precision byte is interpreted.
  core::ByteReader rd(bytes, "cusz-i");
  rd.expect_magic(kMagic);
  const auto prec = rd.read<std::uint8_t>();
  if (prec > static_cast<std::uint8_t>(Precision::F64))
    rd.fail("unknown precision byte");
  return static_cast<Precision>(prec);
}

std::vector<float> cuszi_decompress_f32(std::span<const std::byte> bytes) {
  return decompress_typed<float>(bytes);
}

std::vector<double> cuszi_decompress_f64(std::span<const std::byte> bytes) {
  return decompress_typed<double>(bytes);
}

}  // namespace szi
