// The interface every compressor in this repository implements — cuSZ-i and
// all five baselines — so the benches can sweep them uniformly (§VII-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/field.hh"
#include "lossless/orchestrate.hh"

namespace szi::dev {
class Workspace;
}  // namespace szi::dev

namespace szi {

/// Error-control mode. Rel is value-range-relative (the paper's ε); the
/// pipeline converts it to an absolute bound using the field's range.
/// PwRel bounds each point's relative error |v'-v| <= rel*|v| and is served
/// by the with_pointwise_rel() decorator (log-domain transform), not by the
/// base compressors. FixedRate is cuZFP's mode (bits per element).
/// Compressors that don't support a mode throw std::invalid_argument.
enum class ErrorMode { Abs, Rel, PwRel, FixedRate };

struct CompressParams {
  ErrorMode mode = ErrorMode::Rel;
  double value = 1e-3;  ///< eb (Abs/Rel) or bits-per-element (FixedRate)
};

/// Per-stage wall-clock seconds. `codebook` is reported separately because
/// the paper excludes the ~200 us CPU codebook build from kernel throughput
/// (§VI-A, §VII-C.4).
struct StageTimings {
  double predict = 0;
  double histogram = 0;
  double codebook = 0;
  double encode = 0;
  double total = 0;
  /// True when the histogram was accumulated inside the predict kernel (the
  /// fused pipeline): `histogram` is then 0 by construction and `predict`
  /// covers both stages. Reporters must not present the 0 as "a histogram
  /// pass that took no time".
  bool histogram_fused = false;

  [[nodiscard]] double kernel_time() const { return total - codebook; }
};

struct CompressResult {
  std::vector<std::byte> bytes;
  StageTimings timings;
};

/// Outcome of one field of a failure-isolated batch
/// (compress_batch_checked): either the archive or the exception that field
/// raised. `error` is null on success.
struct CheckedCompressResult {
  CompressResult result;
  std::exception_ptr error;

  [[nodiscard]] bool ok() const { return error == nullptr; }
};

/// Decompression-side stage breakdown (--stages on -x). When the pipelined
/// decoder overlaps stages on dev::Streams, the per-stage numbers are
/// accumulated busy time across threads — not wall-clock slices — so their
/// sum can exceed `total` (good overlap) or undershoot it (stall-bound);
/// `overlapped` tells reporters which reading applies.
struct DecodeTimings {
  double unwrap = 0;       ///< de-redundancy (LZSS block) decode
  double huffman = 0;      ///< entropy decode: plan parse + chunk decode
  double reconstruct = 0;  ///< anchor/outlier scatter + interpolation tiles
  double total = 0;        ///< wall clock for the whole decode
  bool overlapped = false;
};

/// Result of a progressive (preview) decode: the field reconstructed from
/// anchors + interpolation levels >= `level` on its coarse grid. At
/// `level` == 1 the preview IS the full-fidelity reconstruction.
/// `bytes_read` is the number of archive bytes the decode consumed — for a
/// level-segmented (SZI2) archive only the directory plus the needed prefix
/// of segments, which a truncated-archive decode at the same level proves.
template <typename T>
struct ProgressiveResultT {
  std::vector<T> data;         ///< preview field, dims.volume() elements
  dev::Dim3 dims;              ///< preview grid dimensions
  int level = 1;               ///< effective (clamped) max_level
  std::size_t bytes_read = 0;  ///< archive bytes consumed
};

using ProgressiveResult = ProgressiveResultT<float>;

/// A sub-volume request for random-access (ROI) decode: the half-open box
/// [lo, lo + ext) in field coordinates. Empty or out-of-range boxes throw
/// std::invalid_argument.
struct RoiBox {
  dev::Dim3 lo;   ///< box origin
  dev::Dim3 ext;  ///< box extents (all axes >= 1)
};

/// Result of a random-access ROI decode: exactly the requested box,
/// bit-identical to cropping a full decompress. `bytes_read` counts the
/// archive bytes actually fetched — for an indexed (TIDX-bearing) archive
/// only the directory, index, and covering blocks; for archives without an
/// index (`indexed` false) the whole archive, via the full-decode fallback.
template <typename T>
struct RoiResultT {
  std::vector<T> data;         ///< box field, ext.volume() elements
  dev::Dim3 dims;              ///< == the request's ext
  std::size_t bytes_read = 0;  ///< archive bytes fetched
  bool indexed = false;        ///< true when the tile index steered the read
  DecodeTimings timings;
};

using RoiResult = RoiResultT<float>;

class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Whether absolute/relative error bounds are supported (cuZFP: no — the
  /// paper's TABLE III lists it as N/A for this reason).
  [[nodiscard]] virtual bool supports_error_bound() const { return true; }
  [[nodiscard]] virtual bool supports_fixed_rate() const { return false; }

  [[nodiscard]] virtual CompressResult compress(const Field& field,
                                                const CompressParams& p) = 0;

  /// Compresses a batch of fields. The default is a sequential loop;
  /// implementations may override it to pipeline fields across streams with
  /// pooled workspaces (cuSZ-i does — see cuszi_compress_many). Results are
  /// positionally matched to `fields` and byte-identical to calling
  /// compress() per field.
  [[nodiscard]] virtual std::vector<CompressResult> compress_batch(
      std::span<const Field> fields, const CompressParams& p) {
    std::vector<CompressResult> out;
    out.reserve(fields.size());
    for (const auto& f : fields) out.push_back(compress(f, p));
    return out;
  }

  /// Failure-isolated batch: one field's exception fails only its own slot
  /// (captured in CheckedCompressResult::error) instead of aborting the
  /// whole batch — the contract a multi-tenant scheduler needs to coalesce
  /// unrelated requests into one wave without coupling their fates. The
  /// default loops compress() under try/catch; cuSZ-i overrides it with the
  /// stream-pipelined checked batch. Successful slots are byte-identical
  /// to compress() per field.
  [[nodiscard]] virtual std::vector<CheckedCompressResult>
  compress_batch_checked(std::span<const Field> fields,
                         const CompressParams& p);

  /// Archives are self-describing; `decode_seconds` (optional) receives the
  /// wall time.
  [[nodiscard]] virtual std::vector<float> decompress(
      std::span<const std::byte> bytes, double* decode_seconds = nullptr) = 0;

  /// Workspace-threaded decompress: implementations may draw all scratch
  /// from `ws` (valid until its next reset) instead of a throwaway arena.
  /// The default ignores `ws` and forwards to decompress(). Output is
  /// bit-identical either way.
  [[nodiscard]] virtual std::vector<float> decompress(
      std::span<const std::byte> bytes, double* decode_seconds,
      dev::Workspace& ws);

  /// Produces the §VI-B bitcomp-wrapped archive ('BBCP' + LZSS over the
  /// inner archive). The default wraps compress()'s bytes after the fact;
  /// implementations may override to pipeline the inner encode with the
  /// LZSS pass (cuSZ-i does) — the bytes must stay identical to the
  /// default composition. Wrap time is folded into encode/total.
  [[nodiscard]] virtual CompressResult compress_bitcomp(
      const Field& field, const CompressParams& p);

  /// Inverse of compress_bitcomp. The default unwraps then forwards to
  /// decompress(); overrides may pipeline the LZSS decode with the inner
  /// decode. `decode_seconds` covers unwrap + inner decode.
  [[nodiscard]] virtual std::vector<float> decompress_bitcomp(
      std::span<const std::byte> bytes, double* decode_seconds = nullptr);

  /// Decompress with a per-stage breakdown (the -x counterpart of
  /// StageTimings). The default times the whole decode as `total` and
  /// leaves the stages at zero; cuSZ-i fills the real split and sets
  /// `overlapped` when the pipelined path ran stages on streams.
  [[nodiscard]] virtual std::vector<float> decompress_stages(
      std::span<const std::byte> bytes, DecodeTimings& t);

  /// Same for a bitcomp-wrapped archive. The default times the unwrap,
  /// then forwards to decompress_stages() on the inner bytes (which sets
  /// `total` to the inner decode; the unwrap is added on top).
  [[nodiscard]] virtual std::vector<float> decompress_bitcomp_stages(
      std::span<const std::byte> bytes, DecodeTimings& t);

  /// Progressive decode: reconstruct anchors + interpolation levels >=
  /// max_level onto the coarse preview grid, reading only the archive
  /// prefix those segments occupy (level-segmented archives; legacy
  /// layouts fall back to a full decode + subsample). max_level is clamped
  /// to the archive's level range; max_level <= 1 is the full-fidelity
  /// decode, bit-identical to decompress(). The default throws
  /// std::invalid_argument — only level-structured compressors (cuSZ-i)
  /// support it.
  [[nodiscard]] virtual ProgressiveResult decompress_progressive(
      std::span<const std::byte> bytes, int max_level);

  /// Random-access ROI decode: reconstruct only the box [lo, lo + ext),
  /// bit-identical to cropping decompress(). Indexed (TIDX-bearing SZI2)
  /// archives read only the directory, index, and covering blocks; archives
  /// without an index fall back to a full decode + crop. The default throws
  /// std::invalid_argument — only tile-structured compressors (cuSZ-i)
  /// support it.
  [[nodiscard]] virtual RoiResult decompress_roi(
      std::span<const std::byte> bytes, const RoiBox& box);
};

/// Wraps any compressor with the de-redundancy pass (§VI-B); TABLE III's
/// right half applies it "fairly to all compressors' outputs".
[[nodiscard]] std::unique_ptr<Compressor> with_bitcomp(
    std::unique_ptr<Compressor> inner);

/// The raw §VI-B framing used by with_bitcomp(). Current archives use the
/// 'BBC2' container: the inner archive is split at its SZI2 segment
/// boundaries (non-SZI2 inner = one segment) and each segment is routed
/// through the best-of-three de-redundancy pipeline picked by the sampled
/// chooser (lossless/orchestrate.hh), then LZSS'd into its own stream. The
/// no-argument overload wraps with LzssMode::Lazy + MethodPolicy::Auto —
/// byte-identical to the fused cuszi_compress_bitcomp() composition. Legacy
/// 'BBCP' archives (single implicit-LZSS stream) unwrap forever; unwrapping
/// a corrupt buffer throws core::CorruptArchive.
[[nodiscard]] std::vector<std::byte> bitcomp_wrap_archive(
    std::span<const std::byte> bytes);
[[nodiscard]] std::vector<std::byte> bitcomp_wrap_archive(
    std::span<const std::byte> bytes, lossless::LzssMode mode,
    lossless::MethodPolicy policy = lossless::MethodPolicy::Auto,
    std::vector<lossless::ChoiceAudit>* audits = nullptr);
[[nodiscard]] std::vector<std::byte> bitcomp_unwrap_archive(
    std::span<const std::byte> bytes);

/// 'BBCP', the legacy §VI-B wrapper magic: u32 magic + a length-prefixed
/// LZSS stream over the whole inner archive. Write path is gone; the decode
/// path keeps it alive forever.
inline constexpr std::uint32_t kBitcompWrapMagic = 0x50434242;

/// 'BBC2', the per-segment orchestrated wrapper magic (shared with the
/// fused pipeline, which emits/parses the framing without ByteWriter):
///   u32 magic | u32 nseg | nseg * WrapSegmentEntry | payloads back-to-back
/// Payload offsets are implied by contiguity; the entry sizes must fill the
/// container exactly.
inline constexpr std::uint32_t kBitcompWrapMagicV2 = 0x32434242;

/// On-disk BBC2 segment-table entry (little-endian POD, docs/FORMAT.md).
/// `method` is a lossless::Method byte; `raw_size` is the segment's size in
/// the inner archive; `size` is its stored LZSS-stream size.
struct WrapSegmentEntry {
  std::uint8_t method = 0;
  std::uint8_t reserved0 = 0;
  std::uint16_t reserved1 = 0;
  std::uint32_t reserved2 = 0;
  std::uint64_t raw_size = 0;
  std::uint64_t size = 0;
};
static_assert(sizeof(WrapSegmentEntry) == 24, "on-disk layout");

/// One wrapper segment of a parsed container, either generation.
struct WrapSegmentInfo {
  lossless::Method method = lossless::Method::Lzss;
  std::uint64_t raw_size = 0;  ///< 0 for legacy BBCP (lives in the stream)
  std::uint64_t size = 0;      ///< stored payload bytes
};

/// Validated view of a wrapper container: the segment table plus borrowed
/// views of each payload. Legacy 'BBCP' parses as a single method-0 segment
/// whose raw_size is unknown until its LZSS frame header is read. Throws
/// core::CorruptArchive on bad magic, reserved bits, unknown method ids, or
/// payload sizes that don't fill the container. This is the entry point of
/// both the pipelined decompressor and the CLI's method audit.
///
/// With `prefix_ok` (the progressive reader's mode) a 'BBC2' container whose
/// payload region is *truncated* still parses: the table must be complete
/// and valid, trailing bytes beyond the table's total are still rejected,
/// but a payload may come back shorter than its entry's `size` (empty once
/// the container is exhausted). Callers must compare `payloads[i].size()`
/// against `segments[i].size` before trusting a payload — that is how a
/// preview decode of an archive truncated at `bytes_read` distinguishes
/// "segment past my prefix" from "segment I need is cut". Legacy 'BBCP'
/// framing is never truncation-tolerant.
struct WrapContainerView {
  bool legacy = false;
  std::size_t table_bytes = 0;  ///< header + table size = first payload base
  std::vector<WrapSegmentInfo> segments;
  std::vector<std::span<const std::byte>> payloads;
};

[[nodiscard]] WrapContainerView bitcomp_parse_container(
    std::span<const std::byte> bytes, bool prefix_ok = false);

/// Validates legacy 'BBCP' framing and returns a borrowed view of the inner
/// LZSS stream without decompressing it. Kept for the v1 wrapper only —
/// 'BBC2' containers go through bitcomp_parse_container(). Throws
/// core::CorruptArchive on bad magic or truncation.
[[nodiscard]] std::span<const std::byte> bitcomp_wrapped_stream(
    std::span<const std::byte> bytes);

/// Serves ErrorMode::PwRel on top of any error-bounded compressor by
/// compressing log|v| at an absolute bound of log(1+rel), with sign and
/// zero classes stored as RLE bitmaps (the SZ-family log-transform scheme).
[[nodiscard]] std::unique_ptr<Compressor> with_pointwise_rel(
    std::unique_ptr<Compressor> inner);

/// Resolves Abs/Rel to an absolute bound for `data`; throws
/// std::invalid_argument for PwRel/FixedRate or non-positive results.
/// Shared by every error-bounded pipeline.
[[nodiscard]] double resolve_abs_eb(const CompressParams& p,
                                    std::span<const float> data,
                                    const std::string& who);

}  // namespace szi
