// cuSZ-i: the paper's full compressor (§IV).
//
// Pipeline: profiling auto-tune (§V-C) → G-Interp prediction + level-wise
// error quantization (§V) → outlier compaction + coarse-grained Huffman
// (§VI-A). The optional Bitcomp-style de-redundancy pass (§VI-B) is applied
// through szi::with_bitcomp(), uniformly available to every compressor.
//
// Archive layout (field-by-field spec in docs/FORMAT.md):
//   magic 'SZI1' | precision | dims | eb_abs | InterpConfig+radius |
//   anchors | outliers | huffman stream
// Decoding is bounds-checked end to end; malformed archives throw
// szi::core::CorruptArchive naming the rejecting stage and byte offset.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/compressor_iface.hh"
#include "device/arena.hh"
#include "device/dims.hh"

namespace szi {

/// Factory for the cuSZ-i compressor (f32 fields through the common
/// Compressor interface). `use_topk_histogram` toggles the §VI-A histogram
/// optimization (the ablation bench flips it).
[[nodiscard]] std::unique_ptr<Compressor> make_cuszi(
    bool use_topk_histogram = true);

/// Typed free-function API — the paper's datasets are f32, but SDRBench
/// also ships f64 fields (QMCPack, some Nyx runs); both precisions share
/// the same archive format, distinguished by a header byte.
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);

/// Workspace forms: every pipeline intermediate (quant codes, anchors,
/// outliers, histograms, Huffman chunk buffers) is drawn from `ws`'s arena
/// pool instead of freshly allocated, and `ws` is reset before returning.
/// The archive bytes are identical to the plain overloads'.
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws);
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws);

/// One field of a batched compression call (borrowed storage; the caller
/// keeps `data` alive for the duration of cuszi_compress_many).
struct FieldView {
  std::span<const float> data;
  dev::Dim3 dims;
};

/// Batched front end: compresses `fields` by pipelining them round-robin
/// across `streams` dev::Streams, each stream owning a persistent Workspace
/// over the global arena so buffers are reused from field to field. Archives
/// are byte-identical to per-field cuszi_compress() and returned in input
/// order; the first exception any field raises is rethrown after all
/// streams drain. `timings` (optional) receives per-field stage timings.
[[nodiscard]] std::vector<std::vector<std::byte>> cuszi_compress_many(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings = nullptr, std::size_t streams = 2);

enum class Precision : std::uint8_t { F32 = 0, F64 = 1 };

/// Reads the precision byte of a cuSZ-i archive (throws on bad magic).
[[nodiscard]] Precision cuszi_archive_precision(std::span<const std::byte> b);

/// Decompression, typed; throws std::runtime_error if the archive's
/// precision does not match the requested function.
[[nodiscard]] std::vector<float> cuszi_decompress_f32(
    std::span<const std::byte> bytes);
[[nodiscard]] std::vector<double> cuszi_decompress_f64(
    std::span<const std::byte> bytes);

}  // namespace szi
