// cuSZ-i: the paper's full compressor (§IV).
//
// Pipeline: profiling auto-tune (§V-C) → G-Interp prediction + level-wise
// error quantization (§V) → outlier compaction + coarse-grained Huffman
// (§VI-A). The optional Bitcomp-style de-redundancy pass (§VI-B) is applied
// through szi::with_bitcomp(), uniformly available to every compressor.
//
// Archives are level-segmented ('SZI2'; field-by-field spec in
// docs/FORMAT.md):
//   magic 'SZI2' | precision | dims | eb_abs | InterpConfig+radius |
//   segment directory | anchors | outliers | per-level huffman streams
// Each interpolation level's quant codes form an independently framed
// Huffman stream with its own codebook, ordered coarsest level first, so a
// preview decode at level L reads only the archive prefix through level L's
// segment (cuszi_decompress_progressive_*). The legacy single-stream 'SZI1'
// layout still decodes — every decode entry point dispatches on the magic —
// and cuszi_compress_v1() still writes it for back-compat tests.
// Decoding is bounds-checked end to end; malformed archives throw
// szi::core::CorruptArchive naming the rejecting stage and byte offset.
#pragma once

#include <exception>
#include <memory>
#include <span>
#include <vector>

#include "core/compressor_iface.hh"
#include "device/arena.hh"
#include "device/dims.hh"
#include "lossless/lzss.hh"

namespace szi::io {
class ArchiveSource;
}  // namespace szi::io

namespace szi {

/// Factory for the cuSZ-i compressor (f32 fields through the common
/// Compressor interface). `use_topk_histogram` toggles the §VI-A histogram
/// optimization (the ablation bench flips it).
[[nodiscard]] std::unique_ptr<Compressor> make_cuszi(
    bool use_topk_histogram = true);

/// Typed free-function API — the paper's datasets are f32, but SDRBench
/// also ships f64 fields (QMCPack, some Nyx runs); both precisions share
/// the same archive format, distinguished by a header byte.
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);

/// Workspace forms: every pipeline intermediate (quant codes, anchors,
/// outliers, histograms, Huffman chunk buffers) is drawn from `ws`'s arena
/// pool instead of freshly allocated, and `ws` is reset before returning.
/// The archive bytes are identical to the plain overloads'.
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws);
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws);

/// Reference (unfused) pipeline: separate predict, histogram, and encode
/// passes, mirroring the pre-fusion stage structure the same way
/// predictor/reference.cc mirrors the optimized kernels. Archive bytes are
/// identical to cuszi_compress() (tests/test_fused_equiv.cc asserts this);
/// `use_topk_histogram` selects the §VI-A hot-band histogram (meaningful
/// only here — the fused pipeline counts inside the predict kernel).
[[nodiscard]] std::vector<std::byte> cuszi_compress_unfused(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr,
    bool use_topk_histogram = true);
[[nodiscard]] std::vector<std::byte> cuszi_compress_unfused(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr,
    bool use_topk_histogram = true);

/// Legacy 'SZI1' single-stream writer, retained verbatim so back-compat
/// tests can mint v1 archives against the version-dispatched decoders.
/// Bytes are identical to what pre-SZI2 builds of cuszi_compress() emitted.
[[nodiscard]] std::vector<std::byte> cuszi_compress_v1(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);
[[nodiscard]] std::vector<std::byte> cuszi_compress_v1(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);

/// SZI2 with one unified codebook shared by every level segment instead of
/// a per-level book (the bench's per-level-vs-unified ratio ablation). The
/// framing is unchanged — each segment still carries the book it decodes
/// with — so the archive decodes through the normal entry points.
[[nodiscard]] std::vector<std::byte> cuszi_compress_unified_book(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);
[[nodiscard]] std::vector<std::byte> cuszi_compress_unified_book(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);

/// Fused compress straight to the §VI-B bitcomp-wrapped archive: the inner
/// archive is assembled once in `ws` memory with the Huffman payload
/// emitted directly into its final slot, and whole 64 KiB regions are
/// handed to the LZSS pass on a dev::Stream as soon as their bytes are
/// final — the stages overlap instead of running back to back over full
/// arrays. Bytes are identical to
/// bitcomp_wrap_archive(cuszi_compress(data, ...)) with the same `mode`.
[[nodiscard]] std::vector<std::byte> cuszi_compress_bitcomp(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws,
    lossless::LzssMode mode = lossless::LzssMode::Lazy);
[[nodiscard]] std::vector<std::byte> cuszi_compress_bitcomp(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws,
    lossless::LzssMode mode = lossless::LzssMode::Lazy);

/// One field of a batched compression call (borrowed storage; the caller
/// keeps `data` alive for the duration of cuszi_compress_many).
struct FieldView {
  std::span<const float> data;
  dev::Dim3 dims;
};

/// Batched front end: compresses `fields` by pipelining them round-robin
/// across `streams` dev::Streams, each stream owning a persistent Workspace
/// over its own partitioned arena shard so buffers are reused from field to
/// field without cross-stream lock contention. `streams == 0` (the default)
/// sizes the fleet automatically: one stream per pool worker, capped by the
/// field count. Archives are byte-identical to per-field cuszi_compress()
/// and returned in input order; the first exception any field raises is
/// rethrown after all streams drain. `timings` (optional) receives
/// per-field stage timings.
[[nodiscard]] std::vector<std::vector<std::byte>> cuszi_compress_many(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings = nullptr, std::size_t streams = 0);

/// Outcome of one field of a checked batch: either the archive bytes or the
/// exception that field raised, never both. A failed field is isolated — it
/// does not poison its stream or drop the wave's other fields.
struct BatchItem {
  std::vector<std::byte> bytes;  ///< empty when error is set
  StageTimings timings;
  std::exception_ptr error;  ///< null on success

  [[nodiscard]] bool ok() const { return error == nullptr; }
};

/// Failure-isolated batched compress: like cuszi_compress_many(), but each
/// field's exception is captured into its BatchItem instead of being
/// rethrown, so one bad field (NaN range, zero-range Rel bound, ...) fails
/// only its own slot while every other field still produces its archive —
/// byte-identical to per-field cuszi_compress(). This is the entry point
/// the szi::serve scheduler coalesces compress waves onto: a wave member's
/// failure must fail one request, not the wave.
[[nodiscard]] std::vector<BatchItem> cuszi_compress_many_checked(
    std::span<const FieldView> fields, const CompressParams& params,
    std::size_t streams = 0);

enum class Precision : std::uint8_t { F32 = 0, F64 = 1 };

/// Reads the precision byte of a cuSZ-i archive, either version (throws on
/// bad magic).
[[nodiscard]] Precision cuszi_archive_precision(std::span<const std::byte> b);

/// One row of an SZI2 archive's segment directory, as validated by the
/// decoder: kind 0 = anchor grid, 1 = outlier set, 2 = one interpolation
/// level's Huffman stream (level is the 1-based level; segments are ordered
/// coarsest first), 3 = the trailing random-access tile index (TIDX).
/// `offset`/`size` are absolute byte ranges into the raw archive; `count`
/// is the element count (anchors, outliers, symbols, or index entries).
struct SegmentInfo {
  std::uint8_t kind = 0;
  std::uint8_t level = 0;
  std::uint64_t count = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

/// Parses + validates the segment directory of an SZI2 archive ('BBCP'
/// wrappers are unwrapped first). Legacy SZI1 archives return an empty
/// vector; corrupt input throws core::CorruptArchive. Drives the CLI's
/// per-segment --stages lines and bench/progressive's size accounting.
[[nodiscard]] std::vector<SegmentInfo> cuszi_archive_segments(
    std::span<const std::byte> bytes);

/// Progressive (preview) decode: reconstructs anchors + interpolation
/// levels >= max_level onto the stride-2^(max_level-1) preview grid. For a
/// raw SZI2 archive only the directory plus the needed prefix of segments
/// is read (`bytes_read` reports exactly how much, and a truncation to that
/// many bytes still decodes); for a 'BBCP' wrapper only the LZSS blocks
/// covering that prefix are decoded; legacy SZI1 falls back to a full
/// decode + subsample. max_level <= 1 is the full-fidelity reconstruction,
/// bit-identical to cuszi_decompress_*; level_count+1 is the lossless
/// anchor grid.
[[nodiscard]] ProgressiveResultT<float> cuszi_decompress_progressive_f32(
    std::span<const std::byte> bytes, int max_level);
[[nodiscard]] ProgressiveResultT<double> cuszi_decompress_progressive_f64(
    std::span<const std::byte> bytes, int max_level);
[[nodiscard]] ProgressiveResultT<float> cuszi_decompress_progressive_f32(
    std::span<const std::byte> bytes, int max_level, dev::Workspace& ws);
[[nodiscard]] ProgressiveResultT<double> cuszi_decompress_progressive_f64(
    std::span<const std::byte> bytes, int max_level, dev::Workspace& ws);

/// Random-access ROI decode: reconstructs exactly the box [lo, lo + ext),
/// bit-identical to cropping a full decompress. When the archive carries
/// the trailing tile index (TIDX) the decoder pulls only the directory,
/// index, anchor rows, outlier set, and the Huffman chunks / LZSS blocks
/// covering the box's tile slabs through `src` — the per-level working set
/// is bounded by the halo'd box, never the field, and `bytes_read` reports
/// the honest fetch total. Archives without an index (SZI1, pre-index SZI2,
/// legacy 'BBCP' wrappers) fall back to a full decode + crop with
/// `indexed` false. The span overloads serve in-memory archives through a
/// MemorySource.
[[nodiscard]] RoiResultT<float> cuszi_decompress_roi_f32(io::ArchiveSource& src,
                                                         const RoiBox& box);
[[nodiscard]] RoiResultT<double> cuszi_decompress_roi_f64(
    io::ArchiveSource& src, const RoiBox& box);
[[nodiscard]] RoiResultT<float> cuszi_decompress_roi_f32(
    std::span<const std::byte> bytes, const RoiBox& box);
[[nodiscard]] RoiResultT<double> cuszi_decompress_roi_f64(
    std::span<const std::byte> bytes, const RoiBox& box);

/// Decompression, typed; throws std::runtime_error if the archive's
/// precision does not match the requested function.
[[nodiscard]] std::vector<float> cuszi_decompress_f32(
    std::span<const std::byte> bytes, DecodeTimings* timings = nullptr);
[[nodiscard]] std::vector<double> cuszi_decompress_f64(
    std::span<const std::byte> bytes, DecodeTimings* timings = nullptr);

/// Workspace forms: every decode intermediate (quant codes, anchors,
/// outlier arrays, scatter buffer) is drawn from `ws` instead of freshly
/// allocated. Output is bit-identical to the plain overloads'.
[[nodiscard]] std::vector<float> cuszi_decompress_f32(
    std::span<const std::byte> bytes, dev::Workspace& ws);
[[nodiscard]] std::vector<double> cuszi_decompress_f64(
    std::span<const std::byte> bytes, dev::Workspace& ws);

/// Pipelined decompress of a bitcomp-wrapped ('BBCP') cuSZ-i archive: LZSS
/// blocks decode on a dev::Stream while the host thread parses the inner
/// archive and Huffman-decodes chunk groups as their payload bytes land.
/// Output is bit-identical to
/// cuszi_decompress_*(bitcomp_unwrap_archive(bytes)); malformed input
/// throws core::CorruptArchive exactly like the unfused path.
[[nodiscard]] std::vector<float> cuszi_decompress_bitcomp_f32(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings = nullptr);
[[nodiscard]] std::vector<double> cuszi_decompress_bitcomp_f64(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings = nullptr);

}  // namespace szi
