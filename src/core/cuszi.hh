// cuSZ-i: the paper's full compressor (§IV).
//
// Pipeline: profiling auto-tune (§V-C) → G-Interp prediction + level-wise
// error quantization (§V) → outlier compaction + coarse-grained Huffman
// (§VI-A). The optional Bitcomp-style de-redundancy pass (§VI-B) is applied
// through szi::with_bitcomp(), uniformly available to every compressor.
//
// Archive layout (field-by-field spec in docs/FORMAT.md):
//   magic 'SZI1' | precision | dims | eb_abs | InterpConfig+radius |
//   anchors | outliers | huffman stream
// Decoding is bounds-checked end to end; malformed archives throw
// szi::core::CorruptArchive naming the rejecting stage and byte offset.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/compressor_iface.hh"
#include "device/arena.hh"
#include "device/dims.hh"
#include "lossless/lzss.hh"

namespace szi {

/// Factory for the cuSZ-i compressor (f32 fields through the common
/// Compressor interface). `use_topk_histogram` toggles the §VI-A histogram
/// optimization (the ablation bench flips it).
[[nodiscard]] std::unique_ptr<Compressor> make_cuszi(
    bool use_topk_histogram = true);

/// Typed free-function API — the paper's datasets are f32, but SDRBench
/// also ships f64 fields (QMCPack, some Nyx runs); both precisions share
/// the same archive format, distinguished by a header byte.
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr);

/// Workspace forms: every pipeline intermediate (quant codes, anchors,
/// outliers, histograms, Huffman chunk buffers) is drawn from `ws`'s arena
/// pool instead of freshly allocated, and `ws` is reset before returning.
/// The archive bytes are identical to the plain overloads'.
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws);
[[nodiscard]] std::vector<std::byte> cuszi_compress(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws);

/// Reference (unfused) pipeline: separate predict, histogram, and encode
/// passes, mirroring the pre-fusion stage structure the same way
/// predictor/reference.cc mirrors the optimized kernels. Archive bytes are
/// identical to cuszi_compress() (tests/test_fused_equiv.cc asserts this);
/// `use_topk_histogram` selects the §VI-A hot-band histogram (meaningful
/// only here — the fused pipeline counts inside the predict kernel).
[[nodiscard]] std::vector<std::byte> cuszi_compress_unfused(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr,
    bool use_topk_histogram = true);
[[nodiscard]] std::vector<std::byte> cuszi_compress_unfused(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings = nullptr,
    bool use_topk_histogram = true);

/// Fused compress straight to the §VI-B bitcomp-wrapped archive: the inner
/// archive is assembled once in `ws` memory with the Huffman payload
/// emitted directly into its final slot, and whole 64 KiB regions are
/// handed to the LZSS pass on a dev::Stream as soon as their bytes are
/// final — the stages overlap instead of running back to back over full
/// arrays. Bytes are identical to
/// bitcomp_wrap_archive(cuszi_compress(data, ...)) with the same `mode`.
[[nodiscard]] std::vector<std::byte> cuszi_compress_bitcomp(
    std::span<const float> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws,
    lossless::LzssMode mode = lossless::LzssMode::Lazy);
[[nodiscard]] std::vector<std::byte> cuszi_compress_bitcomp(
    std::span<const double> data, const dev::Dim3& dims,
    const CompressParams& params, StageTimings* timings, dev::Workspace& ws,
    lossless::LzssMode mode = lossless::LzssMode::Lazy);

/// One field of a batched compression call (borrowed storage; the caller
/// keeps `data` alive for the duration of cuszi_compress_many).
struct FieldView {
  std::span<const float> data;
  dev::Dim3 dims;
};

/// Batched front end: compresses `fields` by pipelining them round-robin
/// across `streams` dev::Streams, each stream owning a persistent Workspace
/// over its own partitioned arena shard so buffers are reused from field to
/// field without cross-stream lock contention. `streams == 0` (the default)
/// sizes the fleet automatically: one stream per pool worker, capped by the
/// field count. Archives are byte-identical to per-field cuszi_compress()
/// and returned in input order; the first exception any field raises is
/// rethrown after all streams drain. `timings` (optional) receives
/// per-field stage timings.
[[nodiscard]] std::vector<std::vector<std::byte>> cuszi_compress_many(
    std::span<const FieldView> fields, const CompressParams& params,
    std::vector<StageTimings>* timings = nullptr, std::size_t streams = 0);

enum class Precision : std::uint8_t { F32 = 0, F64 = 1 };

/// Reads the precision byte of a cuSZ-i archive (throws on bad magic).
[[nodiscard]] Precision cuszi_archive_precision(std::span<const std::byte> b);

/// Decompression, typed; throws std::runtime_error if the archive's
/// precision does not match the requested function.
[[nodiscard]] std::vector<float> cuszi_decompress_f32(
    std::span<const std::byte> bytes, DecodeTimings* timings = nullptr);
[[nodiscard]] std::vector<double> cuszi_decompress_f64(
    std::span<const std::byte> bytes, DecodeTimings* timings = nullptr);

/// Workspace forms: every decode intermediate (quant codes, anchors,
/// outlier arrays, scatter buffer) is drawn from `ws` instead of freshly
/// allocated. Output is bit-identical to the plain overloads'.
[[nodiscard]] std::vector<float> cuszi_decompress_f32(
    std::span<const std::byte> bytes, dev::Workspace& ws);
[[nodiscard]] std::vector<double> cuszi_decompress_f64(
    std::span<const std::byte> bytes, dev::Workspace& ws);

/// Pipelined decompress of a bitcomp-wrapped ('BBCP') cuSZ-i archive: LZSS
/// blocks decode on a dev::Stream while the host thread parses the inner
/// archive and Huffman-decodes chunk groups as their payload bytes land.
/// Output is bit-identical to
/// cuszi_decompress_*(bitcomp_unwrap_archive(bytes)); malformed input
/// throws core::CorruptArchive exactly like the unfused path.
[[nodiscard]] std::vector<float> cuszi_decompress_bitcomp_f32(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings = nullptr);
[[nodiscard]] std::vector<double> cuszi_decompress_bitcomp_f64(
    std::span<const std::byte> bytes, dev::Workspace& ws,
    DecodeTimings* timings = nullptr);

}  // namespace szi
