// with_pointwise_rel(): serves pointwise-relative error bounds on any
// error-bounded compressor via the SZ-family log transform.
//
//   |v'/v - 1| <= rel  <=>  |ln|v'| - ln|v|| <= ln(1+rel)   (same sign)
//
// so the wrapper compresses t = ln|v| under an *absolute* bound
// ln(1+rel), and stores two sparse side channels: the sign bitmap and the
// zero class (|v| below a denormal-guard threshold reconstructs as exactly
// zero — a zero cannot carry a relative error).
#include <cmath>
#include <utility>

#include "core/bytes.hh"
#include "core/compressor_iface.hh"
#include "core/timer.hh"
#include "device/launch.hh"
#include "lossless/rle.hh"
#include "metrics/stats.hh"

namespace szi {

double resolve_abs_eb(const CompressParams& p, std::span<const float> data,
                      const std::string& who) {
  double eb = 0;
  switch (p.mode) {
    case ErrorMode::Abs:
      eb = p.value;
      break;
    case ErrorMode::Rel:
      eb = p.value * metrics::value_range(data);
      break;
    case ErrorMode::PwRel:
      throw std::invalid_argument(
          who + ": pointwise-relative mode requires with_pointwise_rel()");
    case ErrorMode::FixedRate:
      throw std::invalid_argument(who + ": fixed-rate mode not supported");
  }
  if (eb <= 0) throw std::invalid_argument(who + ": non-positive error bound");
  return eb;
}

namespace {

constexpr std::uint32_t kMagic = 0x4C525750;  // "PWRL"
constexpr float kZeroThreshold = 1e-35f;      // below: reconstruct exact 0

std::vector<std::byte> pack_bitmap(const std::vector<std::uint8_t>& bits) {
  std::vector<std::byte> packed((bits.size() + 7) / 8, std::byte{0});
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i])
      packed[i / 8] |= static_cast<std::byte>(1u << (i % 8));
  return lossless::zero_rle_compress(packed);
}

std::vector<std::uint8_t> unpack_bitmap(std::span<const std::byte> rle,
                                        std::size_t n) {
  const auto packed = lossless::zero_rle_decompress(rle);
  if (packed.size() != n / 8 + (n % 8 != 0 ? 1 : 0))
    throw core::CorruptArchive("pwrel", 0, "bitmap size mismatch");
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i)
    bits[i] = (static_cast<std::uint8_t>(packed[i / 8]) >> (i % 8)) & 1u;
  return bits;
}

class PwRelWrapped final : public Compressor {
 public:
  explicit PwRelWrapped(std::unique_ptr<Compressor> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + " (pw-rel)";
  }

  [[nodiscard]] CompressResult compress(const Field& field,
                                        const CompressParams& p) override {
    if (p.mode != ErrorMode::PwRel)
      return inner_->compress(field, p);  // transparent for other modes
    if (p.value <= 0 || p.value >= 1)
      throw std::invalid_argument("pwrel: bound must be in (0, 1)");
    core::Timer total;

    const std::size_t n = field.size();
    Field logged("pwrel", field.name, field.dims);
    std::vector<std::uint8_t> negative(n), zero(n);
    dev::launch_linear(
        n,
        [&](std::size_t i) {
          const float v = field.data[i];
          const float mag = std::abs(v);
          negative[i] = v < 0 ? 1 : 0;
          if (mag < kZeroThreshold) {
            zero[i] = 1;
            logged.data[i] = std::log(kZeroThreshold);  // inert filler
          } else {
            logged.data[i] = std::log(mag);
          }
        },
        1 << 14);

    const double eb_log = std::log1p(p.value);
    CompressResult r = inner_->compress(logged, {ErrorMode::Abs, eb_log});

    core::ByteWriter w;
    w.put(kMagic);
    w.put(static_cast<std::uint64_t>(n));
    w.put(p.value);
    w.put_blob(pack_bitmap(negative));
    w.put_blob(pack_bitmap(zero));
    w.put_blob(r.bytes);
    r.bytes = w.take();
    r.timings.total = total.lap();
    return r;
  }

  [[nodiscard]] std::vector<float> decompress(std::span<const std::byte> bytes,
                                              double* decode_seconds) override {
    core::Timer total;
    core::ByteReader rd(bytes, "pwrel");
    rd.expect_magic(kMagic);
    const auto n64 = rd.read<std::uint64_t>();
    (void)rd.checked_array_bytes(static_cast<std::size_t>(n64),
                                 sizeof(float));
    const auto n = static_cast<std::size_t>(n64);
    (void)rd.read<double>();  // rel bound: informational
    const auto negative = unpack_bitmap(rd.read_length_prefixed(), n);
    const auto zero = unpack_bitmap(rd.read_length_prefixed(), n);
    auto logged = inner_->decompress(rd.read_length_prefixed(), nullptr);
    if (logged.size() != n) rd.fail("inner payload size mismatch");

    std::vector<float> out(n);
    dev::launch_linear(
        n,
        [&](std::size_t i) {
          if (zero[i]) {
            out[i] = 0.0f;
          } else {
            const float mag = std::exp(logged[i]);
            out[i] = negative[i] ? -mag : mag;
          }
        },
        1 << 14);
    if (decode_seconds) *decode_seconds = total.lap();
    return out;
  }

 private:
  std::unique_ptr<Compressor> inner_;
};

}  // namespace

std::unique_ptr<Compressor> with_pointwise_rel(
    std::unique_ptr<Compressor> inner) {
  return std::make_unique<PwRelWrapped>(std::move(inner));
}

}  // namespace szi
