// Distributed lossy data transmission model (§VII-C.5): a source machine
// compresses, ships the archive over a bandwidth-limited channel (Globus
// between ALCF Theta and Purdue Anvil ran at ~1 GB/s in the paper), and the
// destination decompresses. Local disk I/O is excluded, exactly as in the
// paper: T = t_compress + bytes/bandwidth + t_decompress.
#pragma once

#include <cstddef>

namespace szi::transfer {

/// Paper's measured inter-site bandwidth.
inline constexpr double kGlobusBandwidth = 1.0e9;  // bytes/second

struct TransferCost {
  double compress_seconds = 0;
  double wire_seconds = 0;
  double decompress_seconds = 0;

  [[nodiscard]] double total() const {
    return compress_seconds + wire_seconds + decompress_seconds;
  }
};

/// Cost of moving `compressed_bytes` given the measured codec times.
[[nodiscard]] constexpr TransferCost transfer_cost(
    double compress_seconds, std::size_t compressed_bytes,
    double decompress_seconds, double bandwidth = kGlobusBandwidth) {
  return {compress_seconds,
          static_cast<double>(compressed_bytes) / bandwidth,
          decompress_seconds};
}

/// Cost of moving the data uncompressed (the no-compression reference).
[[nodiscard]] constexpr TransferCost raw_transfer_cost(
    std::size_t raw_bytes, double bandwidth = kGlobusBandwidth) {
  return {0.0, static_cast<double>(raw_bytes) / bandwidth, 0.0};
}

}  // namespace szi::transfer
