#include "metrics/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "device/launch.hh"
#include "device/reduce.hh"

namespace szi::metrics {

namespace {

template <typename T>
Distortion distortion_impl(std::span<const T> original,
                           std::span<const T> reconstructed) {
  if (original.size() != reconstructed.size())
    throw std::invalid_argument("distortion: size mismatch");
  Distortion d;
  if (original.empty()) return d;

  struct Acc {
    double sum_sq = 0;
    double max_abs = 0;
    double lo = 0, hi = 0;
  };
  const std::size_t n = original.size();
  const std::size_t chunk = 1 << 16;
  const std::size_t nchunks = dev::ceil_div(n, chunk);
  std::vector<Acc> partial(nchunks);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        Acc a;
        a.lo = a.hi = original[begin];
        for (std::size_t i = begin; i < end; ++i) {
          const double e = static_cast<double>(original[i]) -
                           static_cast<double>(reconstructed[i]);
          a.sum_sq += e * e;
          a.max_abs = std::max(a.max_abs, std::abs(e));
          a.lo = std::min(a.lo, static_cast<double>(original[i]));
          a.hi = std::max(a.hi, static_cast<double>(original[i]));
        }
        partial[c] = a;
      },
      1);

  Acc t = partial[0];
  for (std::size_t c = 1; c < nchunks; ++c) {
    t.sum_sq += partial[c].sum_sq;
    t.max_abs = std::max(t.max_abs, partial[c].max_abs);
    t.lo = std::min(t.lo, partial[c].lo);
    t.hi = std::max(t.hi, partial[c].hi);
  }

  d.mse = t.sum_sq / static_cast<double>(n);
  d.max_err = t.max_abs;
  d.range = t.hi - t.lo;
  if (d.mse == 0) {
    d.psnr = std::numeric_limits<double>::infinity();
    d.nrmse = 0;
  } else if (d.range == 0) {
    d.psnr = -std::numeric_limits<double>::infinity();
    d.nrmse = std::numeric_limits<double>::infinity();
  } else {
    d.psnr = 20.0 * std::log10(d.range) - 10.0 * std::log10(d.mse);
    d.nrmse = std::sqrt(d.mse) / d.range;
  }
  return d;
}

template <typename T>
bool error_bounded_impl(std::span<const T> original,
                        std::span<const T> reconstructed, double bound,
                        double slack) {
  if (original.size() != reconstructed.size()) return false;
  const double base_limit = bound * (1.0 + slack) + 1e-30;
  // 4 ulps of the value type, relative.
  constexpr double kUlps =
      4.0 * static_cast<double>(std::numeric_limits<T>::epsilon());
  const std::size_t n = original.size();
  const std::size_t chunk = 1 << 16;
  const std::size_t nchunks = dev::ceil_div(n, chunk);
  std::vector<char> ok(nchunks, 1);
  dev::launch_linear(
      nchunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) {
          const double a = original[i], b = reconstructed[i];
          const double e = std::abs(a - b);
          const double limit =
              base_limit + kUlps * std::max(std::abs(a), std::abs(b));
          if (e > limit) {
            ok[c] = 0;
            return;
          }
        }
      },
      1);
  for (char c : ok)
    if (!c) return false;
  return true;
}

}  // namespace

Distortion distortion(std::span<const float> original,
                      std::span<const float> reconstructed) {
  return distortion_impl<float>(original, reconstructed);
}
Distortion distortion(std::span<const double> original,
                      std::span<const double> reconstructed) {
  return distortion_impl<double>(original, reconstructed);
}

double value_range(std::span<const float> data) {
  if (data.empty()) return 0;
  const auto mm = dev::minmax(data);
  return static_cast<double>(mm.max) - static_cast<double>(mm.min);
}
double value_range(std::span<const double> data) {
  if (data.empty()) return 0;
  const auto mm = dev::minmax(data);
  return mm.max - mm.min;
}

bool error_bounded(std::span<const float> original,
                   std::span<const float> reconstructed, double bound,
                   double slack) {
  return error_bounded_impl<float>(original, reconstructed, bound, slack);
}
bool error_bounded(std::span<const double> original,
                   std::span<const double> reconstructed, double bound,
                   double slack) {
  return error_bounded_impl<double>(original, reconstructed, bound, slack);
}

}  // namespace szi::metrics
