// Structural similarity (SSIM) for 3D scientific fields — the perceptual
// quality metric the QoZ line of work [7] optimizes alongside PSNR, included
// so rate-quality studies on this codebase can target either.
//
// Windowed SSIM with cubic windows (default 7^3, clamped at boundaries),
// luminance/contrast/structure terms with the standard C1/C2 stabilizers
// scaled by the field's value range, averaged over a strided window grid.
#pragma once

#include <cstddef>
#include <span>

#include "device/dims.hh"

namespace szi::metrics {

struct SsimOptions {
  std::size_t window = 7;  ///< cubic window edge
  std::size_t stride = 4;  ///< window grid stride (overlapping windows)
};

/// Mean SSIM over the window grid; 1.0 = identical. Returns 1.0 for empty
/// fields; throws std::invalid_argument on size mismatch.
[[nodiscard]] double ssim(std::span<const float> original,
                          std::span<const float> reconstructed,
                          const dev::Dim3& dims, const SsimOptions& opt = {});

}  // namespace szi::metrics
