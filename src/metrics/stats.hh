// Quality and size metrics used throughout the paper's evaluation (§VII-B):
// value range, PSNR, NRMSE, max error, compression ratio, bit rate.
#pragma once

#include <cstddef>
#include <span>

namespace szi::metrics {

/// Summary of the distortion between an original and a reconstruction.
struct Distortion {
  double psnr = 0;      ///< 20*log10(range) - 10*log10(mse)
  double nrmse = 0;     ///< sqrt(mse)/range
  double max_err = 0;   ///< max |orig - recon|
  double mse = 0;
  double range = 0;     ///< max(orig) - min(orig)
};

/// Computes all distortion metrics in one parallel pass.
[[nodiscard]] Distortion distortion(std::span<const float> original,
                                    std::span<const float> reconstructed);
[[nodiscard]] Distortion distortion(std::span<const double> original,
                                    std::span<const double> reconstructed);

/// max - min of `data` (the denominator of value-range-relative error bounds).
[[nodiscard]] double value_range(std::span<const float> data);
[[nodiscard]] double value_range(std::span<const double> data);

/// True iff every |orig-recon| <= bound*(1+slack) + a few float ulps of the
/// operand magnitude. The ulp term matches what GPU compressors guarantee:
/// all reconstruction arithmetic is single-precision, so a value far from
/// zero can overshoot a tiny absolute bound by half an ulp (cuSZ's
/// dual-quant scale-back does exactly this).
[[nodiscard]] bool error_bounded(std::span<const float> original,
                                 std::span<const float> reconstructed,
                                 double bound, double slack = 1e-6);
[[nodiscard]] bool error_bounded(std::span<const double> original,
                                 std::span<const double> reconstructed,
                                 double bound, double slack = 1e-6);

/// original bytes / compressed bytes.
[[nodiscard]] constexpr double compression_ratio(std::size_t original_bytes,
                                                 std::size_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes);
}

/// Average compressed bits per input element (32 / CR for f32 inputs).
[[nodiscard]] constexpr double bit_rate(std::size_t n_elements,
                                        std::size_t compressed_bytes) {
  return n_elements == 0 ? 0.0
                         : 8.0 * static_cast<double>(compressed_bytes) /
                               static_cast<double>(n_elements);
}

}  // namespace szi::metrics
