#include "metrics/ssim.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "device/launch.hh"
#include "device/reduce.hh"

namespace szi::metrics {

namespace {

struct WindowMoments {
  double mean_a = 0, mean_b = 0;
  double var_a = 0, var_b = 0, cov = 0;
};

WindowMoments window_moments(std::span<const float> a, std::span<const float> b,
                             const dev::Dim3& dims, std::size_t x0,
                             std::size_t y0, std::size_t z0, std::size_t w) {
  const std::size_t x1 = std::min(x0 + w, dims.x);
  const std::size_t y1 = std::min(y0 + w, dims.y);
  const std::size_t z1 = std::min(z0 + w, dims.z);
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  std::size_t n = 0;
  for (std::size_t z = z0; z < z1; ++z)
    for (std::size_t y = y0; y < y1; ++y) {
      const std::size_t row = dev::linearize(dims, 0, y, z);
      for (std::size_t x = x0; x < x1; ++x, ++n) {
        const double va = a[row + x];
        const double vb = b[row + x];
        sa += va;
        sb += vb;
        saa += va * va;
        sbb += vb * vb;
        sab += va * vb;
      }
    }
  WindowMoments m;
  const double inv = 1.0 / static_cast<double>(n);
  m.mean_a = sa * inv;
  m.mean_b = sb * inv;
  m.var_a = std::max(0.0, saa * inv - m.mean_a * m.mean_a);
  m.var_b = std::max(0.0, sbb * inv - m.mean_b * m.mean_b);
  m.cov = sab * inv - m.mean_a * m.mean_b;
  return m;
}

}  // namespace

double ssim(std::span<const float> original,
            std::span<const float> reconstructed, const dev::Dim3& dims,
            const SsimOptions& opt) {
  if (original.size() != reconstructed.size() ||
      original.size() != dims.volume())
    throw std::invalid_argument("ssim: size mismatch");
  if (original.empty()) return 1.0;
  const std::size_t w = std::max<std::size_t>(2, opt.window);
  const std::size_t stride = std::max<std::size_t>(1, opt.stride);

  // Range-scaled stabilizers (the image-processing K1/K2 constants).
  const auto mm = dev::minmax(original);
  const double range =
      std::max(1e-30, static_cast<double>(mm.max) - static_cast<double>(mm.min));
  const double c1 = (0.01 * range) * (0.01 * range);
  const double c2 = (0.03 * range) * (0.03 * range);

  const std::size_t gx = dev::ceil_div(dims.x, stride);
  const std::size_t gy = dev::ceil_div(dims.y, stride);
  const std::size_t gz = dev::ceil_div(dims.z, stride);
  std::vector<double> partial(gz, 0.0);
  std::vector<std::size_t> counts(gz, 0);
  dev::launch_linear(
      gz,
      [&](std::size_t iz) {
        double acc = 0;
        std::size_t cnt = 0;
        for (std::size_t iy = 0; iy < gy; ++iy)
          for (std::size_t ix = 0; ix < gx; ++ix) {
            const auto m =
                window_moments(original, reconstructed, dims, ix * stride,
                               iy * stride, iz * stride, w);
            const double num = (2 * m.mean_a * m.mean_b + c1) * (2 * m.cov + c2);
            const double den = (m.mean_a * m.mean_a + m.mean_b * m.mean_b + c1) *
                               (m.var_a + m.var_b + c2);
            acc += num / den;
            ++cnt;
          }
        partial[iz] = acc;
        counts[iz] = cnt;
      },
      1);
  double total = 0;
  std::size_t n = 0;
  for (std::size_t iz = 0; iz < gz; ++iz) {
    total += partial[iz];
    n += counts[iz];
  }
  return n == 0 ? 1.0 : total / static_cast<double>(n);
}

}  // namespace szi::metrics
