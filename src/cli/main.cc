#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cli/cli.hh"

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    return szi::cli::run(szi::cli::parse(args));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "szi: %s\n\n%s", e.what(), szi::cli::usage().c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "szi: %s\n", e.what());
    return 1;
  }
}
