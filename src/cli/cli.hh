// Command-line front end (the `szi` binary), modeled on the cusz CLI:
//
//   szi -z -i data.f32 -d NX NY NZ -m rel -e 1e-3 [-c cusz-i] [-t f32|f64]
//       [--bitcomp] [-o data.szi] [--verify]
//   szi -x -i data.szi -o data.out.f32 [-c cusz-i] [-t f32|f64] [--bitcomp]
//       [--level N] [--roi x0:x1,y0:y1,z0:z1]
//   szi --info -i data.szi
//   szi --list
//   szi --serve-bench [N]
//
// Parsing is separated from execution so it can be unit-tested.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/compressor_iface.hh"
#include "device/dims.hh"

namespace szi::cli {

enum class Command { Compress, Decompress, Info, List, Help, ServeBench };

struct Options {
  Command command = Command::Help;
  std::string input;
  std::string output;            ///< derived from input when empty
  dev::Dim3 dims{0, 0, 0};
  std::string compressor = "cusz-i";
  ErrorMode mode = ErrorMode::Rel;
  double value = 1e-3;
  bool f64 = false;  ///< double-precision pipeline (cuSZ-i only)
  bool bitcomp = false;
  bool verify = false;
  bool stages = false;  ///< print the per-stage timing breakdown (-z and -x)
  int level = 0;  ///< -x --level N: progressive preview decode (0 = full)
  std::optional<RoiBox> roi;  ///< -x --roi: random-access sub-volume decode
  std::size_t serve_requests = 64;  ///< --serve-bench [N]: request count
};

/// Parses argv (argv[0] ignored). Throws std::invalid_argument with a
/// user-facing message on malformed input.
[[nodiscard]] Options parse(const std::vector<std::string>& args);

/// Executes a parsed command; returns the process exit code. Output goes to
/// stdout/stderr.
int run(const Options& opt);

/// The usage text printed by Command::Help.
[[nodiscard]] std::string usage();

}  // namespace szi::cli
