#include "cli/cli.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>

#include "baselines/registry.hh"
#include "core/cuszi.hh"
#include "core/timer.hh"
#include "io/archive_source.hh"
#include "io/bin_io.hh"
#include "metrics/stats.hh"
#include "serve/serve.hh"

namespace szi::cli {

namespace {

double parse_double(const std::string& s, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("");
    return v;
  } catch (...) {
    throw std::invalid_argument("bad number for " + flag + ": " + s);
  }
}

/// Stage breakdown for --stages. When the pipeline fused the histogram into
/// the predict kernel there is no separate histogram pass to time — the two
/// are reported as one fused stage rather than as a zero-second pass.
void print_stages(const StageTimings& t) {
  if (t.histogram_fused) {
    std::printf(
        "stages: predict+histogram (fused) %.4f s | codebook %.4f s | "
        "encode %.4f s | total %.4f s\n",
        t.predict, t.codebook, t.encode, t.total);
  } else {
    std::printf(
        "stages: predict %.4f s | histogram %.4f s | codebook %.4f s | "
        "encode %.4f s | total %.4f s\n",
        t.predict, t.histogram, t.codebook, t.encode, t.total);
  }
}

/// Decode-side breakdown for --stages after -x. When the pipelined decoder
/// overlapped stages on streams, the numbers are per-stage busy time (their
/// sum can exceed the wall clock), flagged so nobody reads them as slices.
void print_stages(const DecodeTimings& t) {
  std::printf(
      "stages: unwrap (lzss) %.4f s | huffman %.4f s | reconstruct %.4f s | "
      "total %.4f s%s\n",
      t.unwrap, t.huffman, t.reconstruct, t.total,
      t.overlapped ? " (overlapped: per-stage busy time, not wall slices)"
                   : "");
}

std::size_t parse_size(const std::string& s, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size() || v <= 0) throw std::invalid_argument("");
    return static_cast<std::size_t>(v);
  } catch (...) {
    throw std::invalid_argument("bad dimension for " + flag + ": " + s);
  }
}

/// --roi x0:x1,y0:y1,z0:z1 — half-open ranges per axis, all three required
/// (use 0:NZ for an axis the box spans fully).
RoiBox parse_roi(const std::string& s) {
  unsigned long long v[6];
  int consumed = 0;
  if (std::sscanf(s.c_str(), "%llu:%llu,%llu:%llu,%llu:%llu%n", &v[0], &v[1],
                  &v[2], &v[3], &v[4], &v[5], &consumed) != 6 ||
      static_cast<std::size_t>(consumed) != s.size())
    throw std::invalid_argument(
        "bad --roi (expected x0:x1,y0:y1,z0:z1): " + s);
  for (int a = 0; a < 3; ++a)
    if (v[2 * a + 1] <= v[2 * a])
      throw std::invalid_argument("empty --roi range: " + s);
  RoiBox box;
  box.lo = {static_cast<std::size_t>(v[0]), static_cast<std::size_t>(v[2]),
            static_cast<std::size_t>(v[4])};
  box.ext = {static_cast<std::size_t>(v[1] - v[0]),
             static_cast<std::size_t>(v[3] - v[2]),
             static_cast<std::size_t>(v[5] - v[4])};
  return box;
}

/// Per-segment size/ratio lines for --stages on a level-segmented (SZI2)
/// archive. Legacy or non-cusz-i archives have no directory — silent.
void print_segments(std::span<const std::byte> bytes) {
  std::vector<SegmentInfo> segs;
  try {
    segs = cuszi_archive_segments(bytes);
  } catch (...) {
    return;  // not a cusz-i archive
  }
  if (segs.empty()) return;
  std::uint64_t total = 0;
  for (const auto& s : segs) total += s.size;
  for (const auto& s : segs) {
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(s.size) /
                        static_cast<double>(total)
                  : 0.0;
    if (s.kind == 2) {
      std::printf("segment: level %u | %llu symbols | %llu bytes (%.1f%%)\n",
                  static_cast<unsigned>(s.level),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.size), pct);
    } else {
      std::printf("segment: %s | %llu items | %llu bytes (%.1f%%)\n",
                  s.kind == 0   ? "anchors"
                  : s.kind == 1 ? "outliers"
                                : "tile index",
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.size), pct);
    }
  }
}

/// Per-wrapper-segment lossless-method/ratio lines for --info and --stages
/// on a de-redundancy ('BBCP'/'BBC2') archive. Other archives are silent;
/// a corrupt wrapper is left for the decode path to report.
void print_wrap_segments(std::span<const std::byte> bytes) {
  if (bytes.size() < 4) return;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kBitcompWrapMagic && magic != kBitcompWrapMagicV2) return;
  WrapContainerView view;
  try {
    view = bitcomp_parse_container(bytes);
  } catch (...) {
    return;
  }
  for (std::size_t i = 0; i < view.segments.size(); ++i) {
    const auto& s = view.segments[i];
    std::uint64_t raw = s.raw_size;
    // Legacy containers keep the raw size in the LZSS frame header.
    if (view.legacy && view.payloads[i].size() >= sizeof(raw))
      std::memcpy(&raw, view.payloads[i].data(), sizeof(raw));
    const double ratio = s.size > 0 ? static_cast<double>(raw) /
                                          static_cast<double>(s.size)
                                    : 0.0;
    std::printf("wrap segment %zu: %s | %llu -> %llu bytes (%.2fx)\n", i,
                lossless::method_name(s.method),
                static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(s.size), ratio);
  }
}

/// --serve-bench: an in-process probe of the szi::serve layer. Deterministic
/// Poisson arrivals over a mixed workload (two f32 compress size classes,
/// decompress, ROI), every response checked byte-identical against the
/// direct library call. Returns nonzero on any mismatch or failure.
int run_serve_bench(std::size_t n) {
  using Clock = std::chrono::steady_clock;
  CompressParams params{ErrorMode::Rel, 1e-3};

  auto synth = [](std::size_t nx, std::size_t ny, std::size_t nz) {
    Field f("serve", "bench", {nx, ny, nz});
    for (std::size_t i = 0; i < f.data.size(); ++i)
      f.data[i] = std::sin(0.013f * float(i)) + std::cos(0.0041f * float(i));
    return f;
  };
  const Field small = synth(24, 20, 16);
  const Field medium = synth(48, 40, 32);
  const auto small_arc = cuszi_compress(small.view(), small.dims, params);
  const auto medium_arc = cuszi_compress(medium.view(), medium.dims, params);
  const auto decomp_direct = cuszi_decompress_f32(small_arc);
  const RoiBox box{{8, 6, 4}, {12, 10, 8}};
  const auto roi_direct = cuszi_decompress_roi_f32(medium_arc, box).data;

  std::mt19937_64 rng(42);
  std::exponential_distribution<double> gap(600.0);
  std::discrete_distribution<int> kind({35, 30, 25, 10});

  serve::Service svc;
  std::printf("serve-bench: %zu requests, Poisson 600/s, %s dispatch\n", n,
              svc.inline_mode() ? "inline (single-core host)" : "scheduled");
  std::vector<std::pair<int, serve::Ticket>> tickets;
  tickets.reserve(n);
  const auto start = Clock::now();
  double t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += gap(rng);
    std::this_thread::sleep_until(start + std::chrono::duration<double>(t));
    const int k = kind(rng);
    switch (k) {
      case 0:
        tickets.emplace_back(
            k, svc.submit_compress("cli", small.view(), small.dims, params));
        break;
      case 1:
        tickets.emplace_back(
            k, svc.submit_compress("cli", medium.view(), medium.dims, params));
        break;
      case 2:
        tickets.emplace_back(k, svc.submit_decompress("cli", small_arc));
        break;
      default:
        tickets.emplace_back(k, svc.submit_roi("cli", medium_arc, box));
    }
  }
  for (const auto& [k, tk] : tickets) (void)tk.wait();
  svc.drain();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  bool identical = true;
  std::size_t failed = 0;
  std::vector<double> lat;
  lat.reserve(n);
  for (const auto& [k, tk] : tickets) {
    const auto& r = tk.wait();
    if (r.status != serve::Status::Ok) {
      ++failed;
      continue;
    }
    lat.push_back(r.total_seconds * 1e3);
    switch (k) {
      case 0: identical = identical && r.archive == small_arc; break;
      case 1: identical = identical && r.archive == medium_arc; break;
      case 2: identical = identical && r.data == decomp_direct; break;
      default: identical = identical && r.data == roi_direct;
    }
  }
  std::sort(lat.begin(), lat.end());
  auto pct = [&](double q) {
    if (lat.empty()) return 0.0;
    const auto idx =
        static_cast<std::size_t>(std::ceil(q * double(lat.size()))) - 1;
    return lat[std::min(idx, lat.size() - 1)];
  };
  const auto s = svc.stats();
  std::printf("  %.2f s | %.1f req/s | p50 %.3f ms | p95 %.3f ms | "
              "p99 %.3f ms\n",
              wall, wall > 0 ? double(n) / wall : 0.0, pct(0.50), pct(0.95),
              pct(0.99));
  std::printf("  waves %llu | coalesced %llu | failed %zu | arena high-water "
              "%zu B\n",
              static_cast<unsigned long long>(s.waves),
              static_cast<unsigned long long>(s.coalesced), failed,
              s.arena_high_water_bytes);
  std::printf("  byte-identical to direct calls: %s\n",
              identical ? "yes" : "NO");
  return identical && failed == 0 ? 0 : 1;
}

}  // namespace

std::string usage() {
  return R"(szi — scientific error-bounded lossy compression (cuSZ-i reproduction)

compress:    szi -z -i <file.f32> -d NX [NY [NZ]] [-m abs|rel|rate] [-e VALUE]
                 [-c COMPRESSOR] [-t f32|f64] [--bitcomp] [-o <file.szi>]
                 [--verify]
decompress:  szi -x -i <file.szi> -o <file.f32> [-c COMPRESSOR] [-t f32|f64]
                 [--bitcomp] [--level N] [--roi x0:x1,y0:y1,z0:z1]
info:        szi --info -i <file.szi>  (identify the pipeline of an archive)
list:        szi --list               (available compressors)
serve-bench: szi --serve-bench [N]   (in-process service-layer load probe:
                 N mixed compress/decompress/ROI requests through szi::serve,
                 Poisson arrivals; prints sustained rate + p50/p95/p99 latency
                 and checks every response byte-identical to the direct call)

options:
  -m abs|rel|rate   error mode: absolute bound, value-range-relative bound
                    (default), or fixed rate in bits/value (cuzfp only)
  -e VALUE          bound / rate (default 1e-3)
  -c NAME           cusz-i (default), cusz, cuszp, cuszx, fz-gpu, cuzfp,
                    sz3, qoz
  -t f32|f64        value type (default f32; f64 supports cusz-i only)
  --bitcomp         wrap with the de-redundancy pass (must match on -x)
  --verify          after -z, decompress and report PSNR / max error
  --level N         with -x: progressive preview decode from a level-segmented
                    (SZI2) cusz-i archive — reconstruct anchors + levels >= N
                    onto the stride-2^(N-1) grid, reading only that prefix of
                    the archive. N is clamped to the archive's level range;
                    N = 1 is the full-fidelity decode
  --roi RANGES      with -x: random-access sub-volume decode from a cusz-i
                    archive — x0:x1,y0:y1,z0:z1 half-open element ranges.
                    The archive is memory-mapped and, when it carries a tile
                    index (SZI2), only the byte ranges covering the box are
                    read; older archives fall back to a full decode + crop.
                    The box is bit-identical to the same crop of a full
                    decompress. Output holds (x1-x0)*(y1-y0)*(z1-z0) values
  --stages          print the per-stage timing breakdown. After -z: predict /
                    histogram / codebook / encode (fused stages report as one
                    entry). After -x: unwrap / huffman / reconstruct — when
                    the pipelined decoder overlaps stages on streams, each
                    number is that stage's busy time, not a wall-clock slice —
                    plus one size/ratio line per segment of an SZI2 archive
                    and, for --bitcomp archives, one line per wrapper segment
                    naming the chosen lossless method and its achieved ratio
)";
}

Options parse(const std::vector<std::string>& args) {
  Options opt;
  bool have_command = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* flag) -> const std::string& {
      if (i + 1 >= args.size())
        throw std::invalid_argument(std::string(flag) + " needs an argument");
      return args[++i];
    };
    if (a == "-z") {
      opt.command = Command::Compress;
      have_command = true;
    } else if (a == "-x") {
      opt.command = Command::Decompress;
      have_command = true;
    } else if (a == "--list") {
      opt.command = Command::List;
      have_command = true;
    } else if (a == "--info") {
      opt.command = Command::Info;
      have_command = true;
    } else if (a == "--serve-bench") {
      opt.command = Command::ServeBench;
      have_command = true;
      if (i + 1 < args.size() && !args[i + 1].empty() && args[i + 1][0] != '-')
        opt.serve_requests = parse_size(args[++i], "--serve-bench");
    } else if (a == "-h" || a == "--help") {
      opt.command = Command::Help;
      have_command = true;
    } else if (a == "-i") {
      opt.input = next("-i");
    } else if (a == "-o") {
      opt.output = next("-o");
    } else if (a == "-c") {
      opt.compressor = next("-c");
    } else if (a == "-t") {
      const std::string t = next("-t");
      if (t == "f32") opt.f64 = false;
      else if (t == "f64") opt.f64 = true;
      else throw std::invalid_argument("unknown type: " + t);
    } else if (a == "-e") {
      opt.value = parse_double(next("-e"), "-e");
    } else if (a == "-m") {
      const std::string m = next("-m");
      if (m == "abs") opt.mode = ErrorMode::Abs;
      else if (m == "rel") opt.mode = ErrorMode::Rel;
      else if (m == "rate") opt.mode = ErrorMode::FixedRate;
      else throw std::invalid_argument("unknown mode: " + m);
    } else if (a == "-d") {
      opt.dims.x = parse_size(next("-d"), "-d");
      opt.dims.y = opt.dims.z = 1;
      // Up to two more bare numbers.
      for (std::size_t* d : {&opt.dims.y, &opt.dims.z}) {
        if (i + 1 < args.size() && !args[i + 1].empty() &&
            args[i + 1][0] != '-') {
          *d = parse_size(args[++i], "-d");
        }
      }
    } else if (a == "--level") {
      opt.level = static_cast<int>(parse_size(next("--level"), "--level"));
    } else if (a == "--roi") {
      opt.roi = parse_roi(next("--roi"));
    } else if (a == "--bitcomp") {
      opt.bitcomp = true;
    } else if (a == "--verify") {
      opt.verify = true;
    } else if (a == "--stages") {
      opt.stages = true;
    } else {
      throw std::invalid_argument("unknown option: " + a);
    }
  }
  if (!have_command)
    throw std::invalid_argument("one of -z, -x, --list is required");
  if (opt.command == Command::Compress) {
    if (opt.input.empty()) throw std::invalid_argument("-z requires -i");
    if (opt.dims.volume() == 0 || opt.dims.x == 0)
      throw std::invalid_argument("-z requires -d NX [NY [NZ]]");
    if (opt.value <= 0) throw std::invalid_argument("-e must be positive");
  }
  if (opt.command == Command::Decompress) {
    if (opt.input.empty()) throw std::invalid_argument("-x requires -i");
    if (opt.output.empty()) throw std::invalid_argument("-x requires -o");
  }
  if (opt.command == Command::Info && opt.input.empty())
    throw std::invalid_argument("--info requires -i");
  if (opt.command == Command::ServeBench && opt.serve_requests == 0)
    throw std::invalid_argument("--serve-bench needs a positive count");
  if (opt.level > 0 && opt.command != Command::Decompress)
    throw std::invalid_argument("--level only applies to -x");
  if (opt.level > 0 && opt.compressor != "cusz-i")
    throw std::invalid_argument("--level supports only -c cusz-i");
  if (opt.roi) {
    if (opt.command != Command::Decompress)
      throw std::invalid_argument("--roi only applies to -x");
    if (opt.compressor != "cusz-i")
      throw std::invalid_argument("--roi supports only -c cusz-i");
    if (opt.level > 0)
      throw std::invalid_argument("--roi and --level are exclusive");
  }
  if (opt.f64 && opt.compressor != "cusz-i")
    throw std::invalid_argument("-t f64 supports only -c cusz-i");
  if (opt.f64 && opt.bitcomp)
    throw std::invalid_argument(
        "-t f64 with --bitcomp is not supported (wrap externally)");
  if (opt.f64 && opt.mode == ErrorMode::FixedRate)
    throw std::invalid_argument("-t f64 has no fixed-rate mode");
  return opt;
}

int run(const Options& opt) {
  switch (opt.command) {
    case Command::Help:
      std::fputs(usage().c_str(), stdout);
      return 0;
    case Command::List: {
      for (const auto& name : baselines::gpu_compressors())
        std::printf("%s\n", name.c_str());
      std::printf("sz3\nqoz\n");
      return 0;
    }
    case Command::ServeBench:
      return run_serve_bench(opt.serve_requests);
    case Command::Info: {
      auto asrc = io::open_archive(opt.input);
      std::vector<std::byte> scratch;
      const auto bytes = asrc->view(0, asrc->size(), scratch);
      if (bytes.size() < 4) {
        std::printf("%s: too short to be an archive\n", opt.input.c_str());
        return 1;
      }
      std::uint32_t magic = 0;
      std::memcpy(&magic, bytes.data(), 4);
      struct Known {
        std::uint32_t magic;
        const char* what;
      };
      static constexpr Known kKnown[] = {
          {0x31495A53, "cusz-i (legacy single-stream)"},
          {0x32495A53, "cusz-i (level-segmented)"},
          {0x5A535543, "cusz"},
          {0x505A5543, "cuszp"},
          {0x585A5543, "cuszx"},
          {0x55505A46, "fz-gpu"},
          {0x50465A43, "cuzfp"},
          {0x4C335A53, "sz3/qoz"},
          {0x50434242, "de-redundancy wrapper (legacy single-stream)"},
          {0x32434242, "de-redundancy wrapper (per-segment orchestrated)"},
          {0x4C525750, "pointwise-rel wrapper"},
          {0x42495A53, "bundle"},
      };
      const char* what = "unknown";
      for (const auto& k : kKnown)
        if (k.magic == magic) what = k.what;
      std::printf("%s: %zu bytes, pipeline: %s\n", opt.input.c_str(),
                  bytes.size(), what);
      if (magic == 0x31495A53 || magic == 0x32495A53)
        std::printf("precision: %s\n",
                    cuszi_archive_precision(bytes) == Precision::F64 ? "f64"
                                                                     : "f32");
      if (magic == 0x32495A53) print_segments(bytes);
      print_wrap_segments(bytes);
      return 0;
    }
    case Command::Compress: {
      if (opt.f64) {
        const auto data = io::read_f64(opt.input, opt.dims.volume());
        StageTimings t;
        const auto bytes =
            cuszi_compress(std::span<const double>(data), opt.dims,
                           {opt.mode, opt.value}, &t);
        const std::string out =
            opt.output.empty() ? opt.input + ".szi" : opt.output;
        io::write_bytes(out, bytes);
        std::printf("cuSZ-i (f64): %zu -> %zu bytes (%.2fx) in %.3f s\n",
                    data.size() * sizeof(double), bytes.size(),
                    metrics::compression_ratio(data.size() * sizeof(double),
                                               bytes.size()),
                    t.total);
        if (opt.stages) print_stages(t);
        if (opt.verify) {
          const auto dec = cuszi_decompress_f64(bytes);
          const auto d = metrics::distortion(data, dec);
          std::printf("verify: PSNR %.2f dB, max err %.4e\n", d.psnr,
                      d.max_err);
        }
        return 0;
      }
      auto c = baselines::make_compressor(opt.compressor);
      if (opt.bitcomp) c = with_bitcomp(std::move(c));
      Field field("cli", opt.input, opt.dims);
      field.data = io::read_f32(opt.input, opt.dims.volume());
      const auto enc = c->compress(field, {opt.mode, opt.value});
      const std::string out =
          opt.output.empty() ? opt.input + ".szi" : opt.output;
      io::write_bytes(out, enc.bytes);
      std::printf("%s: %zu -> %zu bytes (%.2fx, %.2f bits/val) in %.3f s\n",
                  c->name().c_str(), field.bytes(), enc.bytes.size(),
                  metrics::compression_ratio(field.bytes(), enc.bytes.size()),
                  metrics::bit_rate(field.size(), enc.bytes.size()),
                  enc.timings.total);
      if (opt.stages) {
        print_stages(enc.timings);
        print_wrap_segments(enc.bytes);
      }
      if (opt.verify) {
        const auto dec = c->decompress(enc.bytes);
        const auto d = metrics::distortion(field.data, dec);
        std::printf("verify: PSNR %.2f dB, max err %.4e\n", d.psnr, d.max_err);
      }
      return 0;
    }
    case Command::Decompress: {
      DecodeTimings dt;
      // Decode reads go through an ArchiveSource: mmap when possible, pread
      // otherwise — the archive is never copied into RAM up front, and ROI
      // requests against an indexed archive touch only the covering ranges.
      auto asrc = io::open_archive(opt.input);
      if (opt.roi) {
        const RoiBox& box = *opt.roi;
        const std::size_t archive = asrc->size();
        const auto report = [&](std::size_t nvals, std::size_t bytes_read,
                                bool indexed, const DecodeTimings& rt,
                                double secs) {
          std::printf(
              "cuSZ-i%s: ROI [%zu,%zu)x[%zu,%zu)x[%zu,%zu) (%zu values) -> "
              "%s in %.3f s (%s)\n",
              opt.f64 ? " (f64)" : "", box.lo.x, box.lo.x + box.ext.x,
              box.lo.y, box.lo.y + box.ext.y, box.lo.z, box.lo.z + box.ext.z,
              nvals, opt.output.c_str(), secs,
              indexed ? "indexed" : "full-decode fallback");
          if (opt.stages) {
            print_stages(rt);
            std::printf("roi: touched %zu of %zu archive bytes (%.1f%%)\n",
                        bytes_read, archive,
                        archive > 0 ? 100.0 * static_cast<double>(bytes_read) /
                                          static_cast<double>(archive)
                                    : 0.0);
          }
        };
        core::Timer t;
        if (opt.f64) {
          const auto r = cuszi_decompress_roi_f64(*asrc, box);
          const double secs = t.lap();
          io::write_f64(opt.output, r.data);
          report(r.data.size(), r.bytes_read, r.indexed, r.timings, secs);
        } else {
          const auto r = cuszi_decompress_roi_f32(*asrc, box);
          const double secs = t.lap();
          io::write_f32(opt.output, r.data);
          report(r.data.size(), r.bytes_read, r.indexed, r.timings, secs);
        }
        return 0;
      }
      std::vector<std::byte> scratch;
      const auto bytes = asrc->view(0, asrc->size(), scratch);
      if (opt.f64) {
        if (opt.level > 0) {
          core::Timer t;
          const auto r = cuszi_decompress_progressive_f64(bytes, opt.level);
          const double secs = t.lap();
          io::write_f64(opt.output, r.data);
          std::printf(
              "cuSZ-i (f64): preview level %d (%zu x %zu x %zu) from "
              "%zu of %zu bytes -> %s in %.3f s\n",
              r.level, r.dims.x, r.dims.y, r.dims.z, r.bytes_read,
              bytes.size(), opt.output.c_str(), secs);
          if (opt.stages) print_segments(bytes);
          return 0;
        }
        core::Timer t;
        const auto data =
            cuszi_decompress_f64(bytes, opt.stages ? &dt : nullptr);
        const double secs = t.lap();
        io::write_f64(opt.output, data);
        std::printf("cuSZ-i (f64): %zu values -> %s in %.3f s\n", data.size(),
                    opt.output.c_str(), secs);
        if (opt.stages) {
          print_stages(dt);
          print_segments(bytes);
        }
        return 0;
      }
      auto c = baselines::make_compressor(opt.compressor);
      if (opt.bitcomp) c = with_bitcomp(std::move(c));
      if (opt.level > 0) {
        core::Timer t;
        const auto r = c->decompress_progressive(bytes, opt.level);
        const double secs = t.lap();
        io::write_f32(opt.output, r.data);
        std::printf(
            "%s: preview level %d (%zu x %zu x %zu) from %zu of %zu bytes "
            "-> %s in %.3f s\n",
            c->name().c_str(), r.level, r.dims.x, r.dims.y, r.dims.z,
            r.bytes_read, bytes.size(), opt.output.c_str(), secs);
        if (opt.stages) {
          print_segments(bytes);
          print_wrap_segments(bytes);
        }
        return 0;
      }
      core::Timer t;
      const auto data =
          opt.stages ? c->decompress_stages(bytes, dt) : c->decompress(bytes);
      const double secs = t.lap();
      io::write_f32(opt.output, data);
      std::printf("%s: %zu values -> %s in %.3f s\n", c->name().c_str(),
                  data.size(), opt.output.c_str(), secs);
      if (opt.stages) {
        print_stages(dt);
        print_segments(bytes);
        print_wrap_segments(bytes);
      }
      return 0;
    }
  }
  return 2;
}

}  // namespace szi::cli
