// Per-segment lossless orchestration (§VI-B ratio frontier).
//
// The level-segmented archive gives the lossless stage segments with wildly
// different byte structure: coarse-level Huffman streams are tiny and
// entropy-dense, fine-level streams are huge and zero-dominated, outlier
// blobs sit in between. Forcing one de-redundancy pipeline over all of them
// leaves ratio on the table (arXiv 2507.11165 reports double-digit gains
// from *choosing* the pipeline per stream; cuSZ+ made the same observation
// for RLE on sparse quant codes). This layer routes each segment through the
// best of three candidate pipelines:
//
//   method 0  Lzss        LZSS over the raw segment bytes (status quo)
//   method 1  ZeroRle     zero-RLE (32-byte units) -> LZSS
//   method 2  Bitshuffle  bitshuffle16 bit-plane transpose -> LZSS
//
// selected by a sampled predictor-of-ratio: a small strided sample (~1-2% of
// the segment, even-aligned so bit planes keep their parity) is compressed
// through each candidate and the cheapest wins, with a byte-entropy shortcut
// that skips the candidates entirely when the sample is near-incompressible.
// The decision is a pure function of (segment bytes, LZSS mode), which is
// what makes archives deterministic across worker counts and across the
// AVX2/scalar dispatch.
//
// The chosen method is recorded per wrapper segment in the BBC2 container
// (docs/FORMAT.md); method_transform/method_untransform are the exact
// encode/decode halves the container framing delegates to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "device/arena.hh"
#include "lossless/bitshuffle.hh"
#include "lossless/lzss.hh"

namespace szi::lossless {

/// De-redundancy pipeline applied to a wrapper segment before LZSS. The
/// numeric values are the on-disk method bytes — append-only.
enum class Method : std::uint8_t { Lzss = 0, ZeroRle = 1, Bitshuffle = 2 };

inline constexpr std::size_t kMethodCount = 3;

/// Short stable name for ledgers / CLI output ("lzss", "zero-rle",
/// "bitshuffle").
[[nodiscard]] const char* method_name(Method m);

/// Selection policy for archive writers: Auto runs the sampled chooser;
/// the Force* policies pin every segment to one method (ablation benches,
/// adversarial tests).
enum class MethodPolicy : std::uint8_t {
  Auto,
  ForceLzss,
  ForceZeroRle,
  ForceBitshuffle,
};

// ---- Sampled chooser ----------------------------------------------------

/// Sample geometry: contiguous even-aligned chunks of kSampleChunk bytes
/// strided across the segment prefix, plus one contiguous tail window of
/// kSampleTailChunks chunks, together totalling clamp(n/64, kSampleMin,
/// kSampleMax) bytes. Isolated 4 KiB chunks carry almost no LZSS match
/// history, so costs measured on them are blind to the long-range matches
/// dictionary coding lives on; the tail window restores match history at
/// window scale so transforms that destroy those matches (bitshuffle) pay a
/// visible price in the sampled costs. The window engages only when the
/// budget affords all kSampleTailChunks of it (a shorter window adds no
/// history, only coverage skew) — in practice the multi-MiB fine-level
/// segments where dictionary coding dominates. Segments at or below
/// 2*kSampleMin are sampled whole.
inline constexpr std::size_t kSampleChunk = 4096;
inline constexpr std::size_t kSampleTailChunks = 4;
inline constexpr std::size_t kSampleMin = 8 * 1024;
inline constexpr std::size_t kSampleMax = 256 * 1024;

/// Entropy shortcut: a sample above this many bits/byte is within noise of
/// incompressible, so no transform can pay for itself — skip the candidate
/// compressions and keep plain LZSS.
inline constexpr double kEntropyShortcutBits = 7.9;

/// Hysteresis: a transform must beat plain LZSS on the sample by more than
/// its margin to win the segment. Sampling error on near-ties would
/// otherwise flip methods between runs of *different* inputs for no ratio
/// gain (the choice is still deterministic for identical bytes either way).
/// The margins differ per method because their sampling bias differs:
/// zero-RLE is match-transparent (collapsed runs were trivially
/// compressible anyway), so its sampled advantage extrapolates to the full
/// segment and a small margin suffices. Bitshuffle scatters bytes across
/// bit planes, which destroys exactly the long-range LZSS matches the
/// strided chunks cannot see. The contiguous tail window puts window-scale
/// match history back into the sample, so part of that destruction now
/// shows up in the sampled cost — but matches that span beyond the window
/// remain invisible, so the sample still *overstates* bitshuffle and its
/// advantage must stay overwhelming before it is trusted.
inline constexpr std::uint64_t kChooserMarginPct = 3;
inline constexpr std::uint64_t kChooserBitshuffleMarginPct = 20;

/// Why the chooser picked what it picked — surfaced in --stages and the
/// ratio bench ledger.
struct ChoiceAudit {
  std::size_t sampled_bytes = 0;
  double entropy_bits = 0.0;
  bool entropy_shortcut = false;
  /// Sampled compressed size per method, indexed by Method value; all zero
  /// when the entropy shortcut fired or the segment was empty.
  std::uint64_t cost[kMethodCount] = {0, 0, 0};
};

/// Picks the cheapest pipeline for `seg` by compressing a strided sample
/// through each candidate. Pure function of (seg bytes, mode): no global
/// state, no randomness — archives stay byte-identical across worker
/// counts. Sample/scratch buffers are drawn from `ws` (freed at the
/// caller's reset); must be called from the workspace-owning thread.
[[nodiscard]] Method choose_method(std::span<const std::byte> seg,
                                   LzssMode mode, dev::Workspace& ws,
                                   ChoiceAudit* audit = nullptr);

/// Policy dispatch: Auto -> choose_method, Force* -> the pinned method.
[[nodiscard]] Method resolve_method(MethodPolicy policy,
                                    std::span<const std::byte> seg,
                                    LzssMode mode, dev::Workspace& ws,
                                    ChoiceAudit* audit = nullptr);

// ---- Per-method transform halves ----------------------------------------

/// Exact transformed size of a Bitshuffle segment of `raw_size` bytes: the
/// even prefix is shuffled as raw_size/2 u16 elements, an odd trailing byte
/// is appended verbatim. Decoders validate payload sizes against this
/// closed form before allocating.
[[nodiscard]] constexpr std::size_t bitshuffle_frame_size(
    std::size_t raw_size) {
  return bitshuffle16_size(raw_size / 2) + (raw_size & 1);
}

/// Applies `m`'s pre-LZSS transform to `seg`. Lzss returns `seg` itself
/// (no copy); ZeroRle and Bitshuffle return ws-owned buffers (valid until
/// the Workspace resets). Deterministic byte-for-byte.
[[nodiscard]] std::span<const std::byte> method_transform(
    std::span<const std::byte> seg, Method m, dev::Workspace& ws);

/// Inverts `m`'s transform: `transformed` (the LZSS-decoded segment
/// payload) is validated and expanded into exactly `raw_out`. Throws
/// core::CorruptArchive on any size/structure mismatch. Heap-only scratch —
/// safe to call from stream worker threads.
void method_untransform(std::span<const std::byte> transformed, Method m,
                        std::span<std::byte> raw_out);

}  // namespace szi::lossless
