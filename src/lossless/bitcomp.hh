// "Bitcomp-lossless" stand-in (§VI-B).
//
// The paper appends NVIDIA's proprietary Bitcomp-lossless after Huffman to
// cancel the repeated patterns Huffman leaves behind (runs of identical
// bytes, most prominently 0x00 from long zero-code sequences). Bitcomp
// itself ships only in closed-source nvCOMP, so this repository substitutes
// a block-parallel LZSS codec that removes exactly that redundancy class
// with the same deployment shape (independent blocks, raw fallback for
// incompressible input). See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <span>
#include <vector>

#include "lossless/lzss.hh"

namespace szi::lossless {

[[nodiscard]] inline std::vector<std::byte> bitcomp_compress(
    std::span<const std::byte> data) {
  return lzss_compress(data);
}

[[nodiscard]] inline std::vector<std::byte> bitcomp_decompress(
    std::span<const std::byte> data) {
  return lzss_decompress(data);
}

}  // namespace szi::lossless
