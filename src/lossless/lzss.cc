#include "lossless/lzss.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/bytes.hh"
#include "device/launch.hh"

namespace szi::lossless {

namespace {

constexpr std::size_t kHashBits = 14;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainDepth = 32;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// The longest single token: 1 control byte + 2 distance bytes + the length
/// byte chain for a full 64 KiB match (~258 bytes). Block slices are sized
/// `len + kTokenSlack` so the encoder can bail out between tokens (once the
/// output reaches `len` the block is raw regardless) without ever writing
/// past its slice.
constexpr std::size_t kTokenSlack = 320;

/// Sentinel return of compress_block_into: the block is incompressible.
constexpr std::size_t kStoreRaw = ~std::size_t{0};

/// Greedy LZSS over one block with a hash-head + prev-chain match finder,
/// emitting into `out` (capacity >= n + kTokenSlack). `head` (kHashSize) and
/// `prev` (n) are caller-provided scratch. Returns the encoded size, or
/// kStoreRaw as soon as the output provably reaches n bytes — output only
/// grows, so stopping early picks the exact same raw-vs-tokens decision the
/// full encode would.
std::size_t compress_block_into(const std::uint8_t* src, std::size_t n,
                                std::uint8_t* out, std::int32_t* head,
                                std::int32_t* prev) {
  std::fill_n(head, kHashSize, -1);
  std::fill_n(prev, n, -1);

  std::size_t out_pos = 0;
  std::size_t ctrl_pos = 0;
  int ctrl_bits = 8;  // force a fresh control byte on first token
  auto begin_token = [&](bool is_match) {
    if (ctrl_bits == 8) {
      ctrl_pos = out_pos;
      out[out_pos++] = 0;
      ctrl_bits = 0;
    }
    if (is_match) out[ctrl_pos] |= static_cast<std::uint8_t>(1u << ctrl_bits);
    ++ctrl_bits;
  };

  std::size_t i = 0;
  while (i < n) {
    if (out_pos >= n) return kStoreRaw;  // already as large as the input
    std::size_t best_len = 0, best_dist = 0;
    if (i + kMinMatch <= n) {
      const std::uint32_t h = hash4(src + i);
      const std::int32_t old_head = head[h];
      std::int32_t cand = old_head;
      for (int depth = 0; cand >= 0 && depth < kMaxChainDepth;
           ++depth, cand = prev[static_cast<std::size_t>(cand)]) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t dist = i - c;
        if (dist > 0xFFFF) break;  // beyond the encodable window
        std::size_t len = 0;
        const std::size_t limit = n - i;
        while (len < limit && src[c + len] == src[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len >= limit) break;
        }
      }
      prev[i] = old_head;
      head[h] = static_cast<std::int32_t>(i);
    }

    if (best_len >= kMinMatch) {
      begin_token(true);
      out[out_pos++] = static_cast<std::uint8_t>(best_dist & 0xFF);
      out[out_pos++] = static_cast<std::uint8_t>(best_dist >> 8);
      std::size_t rem = best_len - kMinMatch;
      while (rem >= 255) {
        out[out_pos++] = 0xFF;
        rem -= 255;
      }
      out[out_pos++] = static_cast<std::uint8_t>(rem);
      // Insert hash entries for skipped positions so later matches can
      // anchor inside this match (bounded to keep the pass linear).
      const std::size_t insert_end = std::min(i + best_len, n - kMinMatch + 1);
      for (std::size_t j = i + 1; j + kMinMatch <= n && j < insert_end; ++j) {
        const std::uint32_t h = hash4(src + j);
        prev[j] = head[h];
        head[h] = static_cast<std::int32_t>(j);
      }
      i += best_len;
    } else {
      begin_token(false);
      out[out_pos++] = src[i];
      ++i;
    }
  }
  return out_pos >= n ? kStoreRaw : out_pos;
}

void decompress_block(const std::uint8_t* src, std::size_t n,
                      std::uint8_t* dst, std::size_t raw, std::size_t block) {
  const auto corrupt = [&](std::string_view what) -> core::CorruptArchive {
    return core::CorruptArchive("lzss", block, what);
  };
  std::size_t ip = 0, op = 0;
  std::uint8_t ctrl = 0;
  int ctrl_bits = 8;
  while (op < raw) {
    if (ctrl_bits == 8) {
      if (ip >= n) throw corrupt("truncated control byte");
      ctrl = src[ip++];
      ctrl_bits = 0;
    }
    const bool is_match = (ctrl >> ctrl_bits) & 1;
    ++ctrl_bits;
    if (is_match) {
      if (ip + 3 > n) throw corrupt("truncated match token");
      const std::size_t dist = src[ip] | (static_cast<std::size_t>(src[ip + 1]) << 8);
      ip += 2;
      std::size_t len = kMinMatch;
      for (;;) {
        if (ip >= n) throw corrupt("truncated match length");
        const std::uint8_t b = src[ip++];
        len += b;
        if (b != 0xFF) break;
      }
      if (dist == 0 || dist > op || len > raw - op)
        throw corrupt("corrupt match");
      // Byte-by-byte copy: overlapping matches (dist < len) replicate runs.
      for (std::size_t k = 0; k < len; ++k) dst[op + k] = dst[op + k - dist];
      op += len;
    } else {
      if (ip >= n) throw corrupt("truncated literal");
      dst[op++] = src[ip++];
    }
  }
}

}  // namespace

std::vector<std::byte> lzss_compress(std::span<const std::byte> data,
                                     std::size_t block_size) {
  dev::Arena local;
  dev::Workspace ws(local);
  const auto s = lzss_compress(data, block_size, ws);
  return {s.begin(), s.end()};
}

std::span<const std::byte> lzss_compress(std::span<const std::byte> data,
                                         std::size_t block_size,
                                         dev::Workspace& ws) {
  if (block_size == 0) throw std::invalid_argument("lzss: block_size == 0");
  const std::size_t n = data.size();
  const std::size_t nblocks = n == 0 ? 0 : dev::ceil_div(n, block_size);
  const auto* src = reinterpret_cast<const std::uint8_t*>(data.data());

  // Compress blocks in parallel into per-block slices (block_size +
  // kTokenSlack apart, so the in-slice encoder can overrun the raw-fallback
  // threshold by at most one token), then stitch. Hash-chain scratch comes
  // from the thread-safe arena so concurrent blocks reuse warm tables.
  const std::size_t stride = block_size + kTokenSlack;
  auto slices = ws.make<std::uint8_t>(nblocks * stride);
  auto enc_size = ws.make<std::uint64_t>(nblocks);
  dev::launch_linear(
      nblocks,
      [&](std::size_t b) {
        const std::size_t begin = b * block_size;
        const std::size_t len = std::min(block_size, n - begin);
        dev::PooledBuffer head(ws.arena(), kHashSize * sizeof(std::int32_t));
        dev::PooledBuffer prev(ws.arena(), len * sizeof(std::int32_t));
        const std::size_t sz = compress_block_into(
            src + begin, len, slices.data() + b * stride,
            head.as<std::int32_t>(kHashSize).data(),
            prev.as<std::int32_t>(len).data());
        enc_size[b] = sz == kStoreRaw ? ~std::uint64_t{0} : sz;
      },
      1);

  std::size_t total = sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) +
                      nblocks * sizeof(std::uint64_t);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = b * block_size;
    const std::size_t len = std::min(block_size, n - begin);
    const bool raw = enc_size[b] == ~std::uint64_t{0};
    total += 1 + (raw ? len : static_cast<std::size_t>(enc_size[b]));
  }

  auto out = ws.make<std::byte>(total);
  std::byte* p = out.data();
  const auto put = [&p](const auto& v) {
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
  };
  put(static_cast<std::uint64_t>(n));
  put(static_cast<std::uint32_t>(block_size));
  put(static_cast<std::uint32_t>(nblocks));
  auto* offsets = reinterpret_cast<std::uint64_t*>(p);
  p += nblocks * sizeof(std::uint64_t);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = b * block_size;
    const std::size_t len = std::min(block_size, n - begin);
    const bool raw = enc_size[b] == ~std::uint64_t{0};
    offsets[b] = static_cast<std::uint64_t>(p - out.data());
    *p++ = static_cast<std::byte>(raw ? 0 : 1);
    const std::size_t payload = raw ? len : static_cast<std::size_t>(enc_size[b]);
    std::memcpy(p, raw ? reinterpret_cast<const std::uint8_t*>(src + begin)
                       : slices.data() + b * stride,
                payload);
    p += payload;
  }
  return out;
}

std::vector<std::byte> lzss_decompress(std::span<const std::byte> data) {
  core::ByteReader rd(data, "lzss");
  const auto raw_size64 = rd.read<std::uint64_t>();
  const auto block_size = rd.read<std::uint32_t>();
  const auto nblocks = rd.read<std::uint32_t>();
  rd.guard_alloc(raw_size64);
  const auto raw_size = static_cast<std::size_t>(raw_size64);
  if (block_size == 0 && raw_size > 0) rd.fail("zero block size");
  // The block count must be exactly ceil(raw_size / block_size): a zero
  // count with a huge raw_size would otherwise fabricate output from thin
  // air. Division form avoids the a+b-1 overflow of ceil_div.
  const std::uint64_t expect_blocks =
      block_size == 0 ? 0
                      : raw_size64 / block_size +
                            (raw_size64 % block_size != 0 ? 1 : 0);
  if (nblocks != expect_blocks) rd.fail("inconsistent block count");
  const std::size_t header_end = rd.offset() + nblocks * sizeof(std::uint64_t);
  const auto offsets = rd.read_array<std::uint64_t>(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    // Each block begins with a mode byte after the offset table and blocks
    // are laid out in order, so offsets must be strictly increasing views
    // into the stream.
    if (offsets[b] < header_end || offsets[b] >= data.size() ||
        (b > 0 && offsets[b] <= offsets[b - 1]))
      rd.fail("corrupt block offsets");
  }

  std::vector<std::byte> out(raw_size);
  auto* dst = reinterpret_cast<std::uint8_t*>(out.data());
  const auto* src = reinterpret_cast<const std::uint8_t*>(data.data());
  dev::launch_linear(
      nblocks,
      [&](std::size_t b) {
        const std::size_t begin = b * block_size;
        const std::size_t len =
            std::min<std::size_t>(block_size, raw_size - begin);
        std::size_t off = offsets[b];
        const std::uint8_t mode = src[off++];
        const std::size_t end =
            (b + 1 < nblocks) ? offsets[b + 1] : data.size();
        if (mode == 0) {
          if (end - off < len)
            throw core::CorruptArchive("lzss", off, "truncated raw block");
          std::memcpy(dst + begin, src + off, len);
        } else {
          decompress_block(src + off, end - off, dst + begin, len, b);
        }
      },
      1);
  return out;
}

}  // namespace szi::lossless
