#include "lossless/lzss.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "core/bytes.hh"
#include "device/launch.hh"
#include "device/simd.hh"

namespace szi::lossless {

namespace {

#if defined(__x86_64__)
/// Non-overlapping forward copy in 32-byte vector steps with an 8-byte /
/// scalar tail. Caller guarantees src + len <= dst (dist >= 32), so every
/// 32-byte chunk's source is fully behind its destination and the result is
/// byte-identical to the scalar copy.
[[gnu::target("avx2")]] void copy_match_avx2(std::uint8_t* dst,
                                             const std::uint8_t* src,
                                             std::size_t len) {
  std::size_t k = 0;
  for (; k + 32 <= len; k += 32)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + k),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + k)));
  for (; k + 8 <= len; k += 8) std::memcpy(dst + k, src + k, 8);
  for (; k < len; ++k) dst[k] = src[k];
}
#endif

constexpr std::size_t kHashBits = 14;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainDepth = 32;

/// Chain-insertion cap inside a committed match. Inserting *every* interior
/// position of a long match (the old behaviour) made encoding a 64 KiB
/// zero-run block O(n) hash inserts for a single token; positions past the
/// first 64 almost never win a later search anyway (they would be found via
/// the run's head at nearly the same distance), so capping trades an
/// unmeasurable sliver of ratio for linear-time long-run encoding.
constexpr std::size_t kMaxChainInsert = 64;

/// Lazy probing stops once the current match is at least this long: deferring
/// a long match one byte can only shave single bytes while paying a second
/// chain walk per position. Kept small (zlib's max_lazy_match idea) because
/// on run-dominated streams almost every position matches, and probing each
/// one would double the search cost for no measurable ratio gain — short
/// matches are where a one-byte deferral actually changes the parse.
constexpr std::size_t kLazyMaxLen = 16;

/// Chain depth of the lazy probe itself. The probe only has to answer "is
/// there a *strictly longer* match one byte ahead", and the recent end of
/// the chain is where longer matches live, so a quarter of the full search
/// depth keeps nearly all of the parse improvement at a fraction of the
/// extra cost (the probe runs once per short match).
constexpr int kLazyProbeDepth = 8;

/// Skip-ahead through incompressible stretches: after `1 << kSkipTrigger`
/// consecutive literals, each further literal run emits `run >> kSkipTrigger`
/// extra un-searched literals (capped), so a random block degrades to
/// O(n / step) match searches before the raw fallback triggers. The cap
/// bounds how far a skip can overshoot into a compressible region that
/// starts mid-stride (each overshot byte becomes one extra literal), which
/// is what keeps the lazy encoder's ratio within 1% of greedy on streams
/// that alternate runs and noise.
constexpr unsigned kSkipTrigger = 6;
constexpr std::size_t kMaxSkip = 16;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Internal aliases of the public block-API constants (lzss.hh).
constexpr std::size_t kTokenSlack = kLzssTokenSlack;

/// Sentinel return of compress_block_into: the block is incompressible.
constexpr std::size_t kStoreRaw = ~std::size_t{0};

/// Hash-head + prev-chain match finder over one block.
///
/// The head table is an epoch-stamped per-worker (thread_local) scratch:
/// starting a block costs one epoch bump instead of the old
/// `fill_n(head, kHashSize, -1)` + `fill_n(prev, n, -1)` reinitialization
/// (the prev fill alone wrote 4 bytes per input byte). `prev` needs no
/// initialization at all: chains are only entered through current-epoch head
/// slots, and every position reachable from one had its prev written this
/// epoch before the head slot was redirected to it.
struct MatchFinder {
  dev::StampedScratch<std::int32_t>& head;
  std::int32_t* prev;  ///< capacity n, intentionally uninitialized
  const std::uint8_t* src;
  std::size_t n;
  std::size_t ins = 0;  ///< next position not yet inserted into the chains

  struct Match {
    std::size_t len = 0;
    std::size_t dist = 0;
  };

  /// Inserts position `i` (caller guarantees i + kMinMatch <= n and that no
  /// position is ever inserted twice — a duplicate would cycle its chain).
  void insert(std::size_t i) {
    const std::uint32_t h = hash4(src + i);
    prev[i] = head.get_or(h, -1);
    head.put(h, static_cast<std::int32_t>(i));
  }

  /// Longest match at `i` (searched before `i` is inserted, exactly like the
  /// reference greedy finder), then inserts `i`.
  Match search_at(std::size_t i, int max_depth = kMaxChainDepth) {
    Match best;
    if (i + kMinMatch > n) return best;
    const std::uint32_t h = hash4(src + i);
    std::int32_t cand = head.get_or(h, -1);
    for (int depth = 0; cand >= 0 && depth < max_depth;
         ++depth, cand = prev[static_cast<std::size_t>(cand)]) {
      const std::size_t c = static_cast<std::size_t>(cand);
      const std::size_t dist = i - c;
      if (dist > 0xFFFF) break;  // beyond the encodable window
      std::size_t len = 0;
      const std::size_t limit = n - i;
      while (len < limit && src[c + len] == src[i + len]) ++len;
      if (len > best.len) {
        best.len = len;
        best.dist = dist;
        if (len >= limit) break;
      }
    }
    if (i >= ins) {
      insert(i);
      ins = i + 1;
    }
    return best;
  }

  /// Seeds chain entries for the interior of a match committed at
  /// [i, i + len) so later matches can anchor inside it, capped at
  /// kMaxChainInsert positions (see the constant's comment for the
  /// ratio/speed tradeoff). The un-inserted tail is skipped permanently.
  void insert_match_interior(std::size_t i, std::size_t len) {
    const std::size_t hashable = n >= kMinMatch ? n - kMinMatch + 1 : 0;
    const std::size_t stop =
        std::min({i + 1 + kMaxChainInsert, i + len, hashable});
    for (std::size_t j = std::max(ins, i + 1); j < stop; ++j) insert(j);
    ins = std::max(ins, i + len);
  }
};

/// LZSS over one block, emitting into `out` (capacity >= n + kTokenSlack).
/// Returns the encoded size, or kStoreRaw as soon as the output provably
/// reaches n bytes — output only grows, so stopping early picks the exact
/// same raw-vs-tokens decision the full encode would.
std::size_t compress_block_into(const std::uint8_t* src, std::size_t n,
                                std::uint8_t* out, std::int32_t* prev,
                                LzssMode mode) {
  // Per-worker stamped head table, reused across every block this worker
  // encodes; the epoch bump replaces the per-block table clear.
  thread_local dev::StampedScratch<std::int32_t> t_head(kHashSize);
  t_head.new_epoch();
  MatchFinder mf{t_head, prev, src, n};

  std::size_t out_pos = 0;
  std::size_t ctrl_pos = 0;
  int ctrl_bits = 8;  // force a fresh control byte on first token
  auto begin_token = [&](bool is_match) {
    if (ctrl_bits == 8) {
      ctrl_pos = out_pos;
      out[out_pos++] = 0;
      ctrl_bits = 0;
    }
    if (is_match) out[ctrl_pos] |= static_cast<std::uint8_t>(1u << ctrl_bits);
    ++ctrl_bits;
  };
  auto emit_literal = [&](std::size_t i) {
    begin_token(false);
    out[out_pos++] = src[i];
  };
  auto emit_match = [&](MatchFinder::Match m) {
    begin_token(true);
    out[out_pos++] = static_cast<std::uint8_t>(m.dist & 0xFF);
    out[out_pos++] = static_cast<std::uint8_t>(m.dist >> 8);
    std::size_t rem = m.len - kMinMatch;
    while (rem >= 255) {
      out[out_pos++] = 0xFF;
      rem -= 255;
    }
    out[out_pos++] = static_cast<std::uint8_t>(rem);
  };

  const bool lazy = mode == LzssMode::Lazy;
  std::size_t i = 0;
  std::size_t lit_run = 0;  // literals since the last match (skip heuristic)
  while (i < n) {
    if (out_pos >= n) return kStoreRaw;  // already as large as the input
    MatchFinder::Match m = mf.search_at(i);

    if (m.len < kMinMatch) {
      emit_literal(i);
      ++i;
      ++lit_run;
      if (lazy) {
        // Long literal run => likely incompressible: emit the next few
        // literals without searching (or inserting) at all.
        std::size_t extra = std::min(lit_run >> kSkipTrigger, kMaxSkip);
        while (extra-- > 0 && i < n) {
          if (out_pos >= n) return kStoreRaw;
          emit_literal(i);
          ++i;
          ++lit_run;
        }
      }
      continue;
    }

    lit_run = 0;
    if (lazy) {
      // One-step lazy matching: if the next position matches strictly
      // longer, demote this position to a literal and slide forward.
      while (m.len < kLazyMaxLen && i + 1 < n) {
        if (out_pos >= n) return kStoreRaw;
        const MatchFinder::Match next = mf.search_at(i + 1, kLazyProbeDepth);
        if (next.len <= m.len) break;
        emit_literal(i);
        ++i;
        m = next;
      }
    }
    emit_match(m);
    mf.insert_match_interior(i, m.len);
    i += m.len;
  }
  return out_pos >= n ? kStoreRaw : out_pos;
}

void decompress_block(const std::uint8_t* src, std::size_t n,
                      std::uint8_t* dst, std::size_t raw, std::size_t block) {
  const auto corrupt = [&](std::string_view what) -> core::CorruptArchive {
    return core::CorruptArchive("lzss", block, what);
  };
  std::size_t ip = 0, op = 0;
  std::uint8_t ctrl = 0;
  int ctrl_bits = 8;
  while (op < raw) {
    if (ctrl_bits == 8) {
      if (ip >= n) throw corrupt("truncated control byte");
      ctrl = src[ip++];
      ctrl_bits = 0;
    }
    const bool is_match = (ctrl >> ctrl_bits) & 1;
    ++ctrl_bits;
    if (is_match) {
      if (ip + 3 > n) throw corrupt("truncated match token");
      const std::size_t dist = src[ip] | (static_cast<std::size_t>(src[ip + 1]) << 8);
      ip += 2;
      std::size_t len = kMinMatch;
      for (;;) {
        if (ip >= n) throw corrupt("truncated match length");
        const std::uint8_t b = src[ip++];
        len += b;
        if (b != 0xFF) break;
      }
      if (dist == 0 || dist > op || len > raw - op)
        throw corrupt("corrupt match");
      // Match copy, widened where the overlap rules allow. dist >= 32 runs
      // in 32-byte AVX2 steps, dist >= 8 in word-size memcpy steps — in both
      // regimes each chunk's source lies fully behind its destination, so
      // the widened copies are byte-identical to the scalar replication (the
      // bounds check above already guarantees op + len <= raw). dist == 1 is
      // a byte run. Otherwise the overlapping copy must replicate byte by
      // byte.
#if defined(__x86_64__)
      if (dist >= 32 && dev::has_avx2()) {
        copy_match_avx2(dst + op, dst + op - dist, len);
      } else
#endif
      if (dist >= 8) {
        std::size_t k = 0;
        for (; k + 8 <= len; k += 8)
          std::memcpy(dst + op + k, dst + op + k - dist, 8);
        for (; k < len; ++k) dst[op + k] = dst[op + k - dist];
      } else if (dist == 1) {
        std::memset(dst + op, dst[op - 1], len);
      } else {
        for (std::size_t k = 0; k < len; ++k) dst[op + k] = dst[op + k - dist];
      }
      op += len;
    } else {
      if (ip >= n) throw corrupt("truncated literal");
      if (ctrl_bits == 1 && ctrl == 0) {
        // A fresh all-literal control byte: batch its 8 literals when both
        // streams have room (the common case in barely-compressible input).
        if (ip + 8 <= n && op + 8 <= raw) {
          std::memcpy(dst + op, src + ip, 8);
          ip += 8;
          op += 8;
          ctrl_bits = 8;
          continue;
        }
      }
      dst[op++] = src[ip++];
    }
  }
}

}  // namespace

std::uint64_t lzss_compress_block(std::span<const std::byte> block,
                                  std::span<std::byte> out, dev::Arena& arena,
                                  LzssMode mode) {
  if (out.size() < block.size() + kTokenSlack)
    throw std::invalid_argument("lzss_compress_block: output slice too small");
  dev::PooledBuffer prev(arena, block.size() * sizeof(std::int32_t));
  const std::size_t sz = compress_block_into(
      reinterpret_cast<const std::uint8_t*>(block.data()), block.size(),
      reinterpret_cast<std::uint8_t*>(out.data()),
      prev.as<std::int32_t>(block.size()).data(), mode);
  return sz == kStoreRaw ? kLzssStoreRaw : static_cast<std::uint64_t>(sz);
}

std::size_t lzss_stream_size(std::size_t raw_size, std::size_t block_size,
                             std::span<const std::uint64_t> enc_size) {
  std::size_t total = sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) +
                      enc_size.size() * sizeof(std::uint64_t);
  for (std::size_t b = 0; b < enc_size.size(); ++b) {
    const std::size_t begin = b * block_size;
    const std::size_t len = std::min(block_size, raw_size - begin);
    const bool raw = enc_size[b] == kLzssStoreRaw;
    total += 1 + (raw ? len : static_cast<std::size_t>(enc_size[b]));
  }
  return total;
}

void lzss_assemble(std::span<const std::byte> raw, std::size_t block_size,
                   std::span<const std::byte> slices, std::size_t stride,
                   std::span<const std::uint64_t> enc_size,
                   std::span<std::byte> dst) {
  const std::size_t n = raw.size();
  const std::size_t nblocks = enc_size.size();
  std::byte* p = dst.data();
  const auto put = [&p](const auto& v) {
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
  };
  put(static_cast<std::uint64_t>(n));
  put(static_cast<std::uint32_t>(block_size));
  put(static_cast<std::uint32_t>(nblocks));
  // dst can sit at any byte offset inside a wrapped archive, so the offset
  // table is written via memcpy rather than through a uint64_t*.
  std::byte* offsets = p;
  p += nblocks * sizeof(std::uint64_t);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t begin = b * block_size;
    const std::size_t len = std::min(block_size, n - begin);
    const bool store_raw = enc_size[b] == kLzssStoreRaw;
    const auto off = static_cast<std::uint64_t>(p - dst.data());
    std::memcpy(offsets + b * sizeof(std::uint64_t), &off, sizeof(off));
    *p++ = static_cast<std::byte>(store_raw ? 0 : 1);
    const std::size_t payload =
        store_raw ? len : static_cast<std::size_t>(enc_size[b]);
    std::memcpy(p,
                store_raw ? raw.data() + begin : slices.data() + b * stride,
                payload);
    p += payload;
  }
}

std::vector<std::byte> lzss_compress(std::span<const std::byte> data,
                                     std::size_t block_size, LzssMode mode) {
  dev::Arena local;
  dev::Workspace ws(local);
  const auto s = lzss_compress(data, block_size, ws, mode);
  return {s.begin(), s.end()};
}

std::span<const std::byte> lzss_compress(std::span<const std::byte> data,
                                         std::size_t block_size,
                                         dev::Workspace& ws, LzssMode mode) {
  if (block_size == 0) throw std::invalid_argument("lzss: block_size == 0");
  const std::size_t n = data.size();
  const std::size_t nblocks = n == 0 ? 0 : dev::ceil_div(n, block_size);

  // Compress blocks in parallel into per-block slices (block_size +
  // kTokenSlack apart, so the in-slice encoder can overrun the raw-fallback
  // threshold by at most one token), then stitch. The prev-chain scratch is
  // pooled (and deliberately never initialized); the head table is a
  // per-worker epoch-stamped thread_local inside compress_block_into.
  const std::size_t stride = block_size + kTokenSlack;
  auto slices = ws.make<std::byte>(nblocks * stride);
  auto enc_size = ws.make<std::uint64_t>(nblocks);
  dev::launch_linear(
      nblocks,
      [&](std::size_t b) {
        const std::size_t begin = b * block_size;
        const std::size_t len = std::min(block_size, n - begin);
        enc_size[b] =
            lzss_compress_block(data.subspan(begin, len),
                                std::span<std::byte>(slices.data() + b * stride,
                                                     stride),
                                ws.arena(), mode);
      },
      1);

  auto out = ws.make<std::byte>(lzss_stream_size(n, block_size, enc_size));
  lzss_assemble(data, block_size, slices, stride, enc_size, out);
  return out;
}

namespace {

// Shared header parse + offset validation for lzss_parse_frame and
// lzss_parse_frame_header: `stream_size` is the framed stream's total byte
// size (the span's own size when the whole stream is in memory).
LzssFrame parse_frame_impl(std::span<const std::byte> head,
                           std::size_t stream_size, dev::Workspace& ws) {
  core::ByteReader rd(head, "lzss");
  const auto raw_size64 = rd.read<std::uint64_t>();
  const auto block_size = rd.read<std::uint32_t>();
  const auto nblocks = rd.read<std::uint32_t>();
  rd.guard_alloc(raw_size64);
  const auto raw_size = static_cast<std::size_t>(raw_size64);
  if (block_size == 0 && raw_size > 0) rd.fail("zero block size");
  // The block count must be exactly ceil(raw_size / block_size): a zero
  // count with a huge raw_size would otherwise fabricate output from thin
  // air. Division form avoids the a+b-1 overflow of ceil_div.
  const std::uint64_t expect_blocks =
      block_size == 0 ? 0
                      : raw_size64 / block_size +
                            (raw_size64 % block_size != 0 ? 1 : 0);
  if (nblocks != expect_blocks) rd.fail("inconsistent block count");
  const std::size_t header_end = rd.offset() + nblocks * sizeof(std::uint64_t);
  auto offsets = ws.make<std::uint64_t>(nblocks);
  std::memcpy(offsets.data(), rd.read_bytes(nblocks * sizeof(std::uint64_t)).data(),
              nblocks * sizeof(std::uint64_t));
  for (std::size_t b = 0; b < nblocks; ++b) {
    // Each block begins with a mode byte after the offset table and blocks
    // are laid out in order, so offsets must be strictly increasing views
    // into the stream.
    if (offsets[b] < header_end || offsets[b] >= stream_size ||
        (b > 0 && offsets[b] <= offsets[b - 1]))
      rd.fail("corrupt block offsets");
  }
  LzssFrame f;
  f.raw_size = raw_size;
  f.block_size = block_size;
  f.nblocks = nblocks;
  f.stream_size = stream_size;
  f.offsets = offsets;
  return f;
}

}  // namespace

LzssFrame lzss_parse_frame(std::span<const std::byte> data,
                           dev::Workspace& ws) {
  LzssFrame f = parse_frame_impl(data, data.size(), ws);
  f.stream = data;
  return f;
}

LzssFrame lzss_parse_frame_header(std::span<const std::byte> head,
                                  std::size_t stream_size, dev::Workspace& ws) {
  return parse_frame_impl(head, stream_size, ws);
}

void lzss_decompress_block(const LzssFrame& frame, std::size_t b,
                           std::span<std::byte> raw_out) {
  const std::size_t begin = b * frame.block_size;
  const std::size_t len =
      std::min<std::size_t>(frame.block_size, frame.raw_size - begin);
  if (b >= frame.nblocks || raw_out.size() != len)
    throw std::invalid_argument("lzss_decompress_block: bad block/extent");
  const auto* src = reinterpret_cast<const std::uint8_t*>(frame.stream.data());
  std::size_t off = frame.offsets[b];
  const std::uint8_t mode = src[off++];
  const std::size_t end =
      (b + 1 < frame.nblocks) ? frame.offsets[b + 1] : frame.stream.size();
  auto* dst = reinterpret_cast<std::uint8_t*>(raw_out.data());
  if (mode == 0) {
    if (end - off < len)
      throw core::CorruptArchive("lzss", off, "truncated raw block");
    std::memcpy(dst, src + off, len);
  } else {
    decompress_block(src + off, end - off, dst, len, b);
  }
}

std::pair<std::size_t, std::size_t> lzss_block_extent(const LzssFrame& frame,
                                                      std::size_t b) {
  if (b >= frame.nblocks)
    throw std::invalid_argument("lzss_block_extent: block out of range");
  const std::size_t begin = static_cast<std::size_t>(frame.offsets[b]);
  const std::size_t end = (b + 1 < frame.nblocks)
                              ? static_cast<std::size_t>(frame.offsets[b + 1])
                              : frame.stream_size;
  return {begin, end};
}

void lzss_decompress_block_bytes(const LzssFrame& frame, std::size_t b,
                                 std::span<const std::byte> block_bytes,
                                 std::span<std::byte> raw_out) {
  const std::size_t begin = b * frame.block_size;
  const std::size_t len =
      std::min<std::size_t>(frame.block_size, frame.raw_size - begin);
  if (b >= frame.nblocks || raw_out.size() != len)
    throw std::invalid_argument("lzss_decompress_block_bytes: bad block/extent");
  const auto [lo, hi] = lzss_block_extent(frame, b);
  if (block_bytes.size() != hi - lo)
    throw std::invalid_argument("lzss_decompress_block_bytes: slice size");
  const auto* src = reinterpret_cast<const std::uint8_t*>(block_bytes.data());
  const std::uint8_t mode = src[0];
  auto* dst = reinterpret_cast<std::uint8_t*>(raw_out.data());
  if (mode == 0) {
    if (block_bytes.size() - 1 < len)
      throw core::CorruptArchive("lzss", lo, "truncated raw block");
    std::memcpy(dst, src + 1, len);
  } else {
    decompress_block(src + 1, block_bytes.size() - 1, dst, len, b);
  }
}

std::vector<std::byte> lzss_decompress(std::span<const std::byte> data) {
  dev::Arena local;
  dev::Workspace ws(local);
  const LzssFrame frame = lzss_parse_frame(data, ws);
  std::vector<std::byte> out(frame.raw_size);
  dev::launch_linear(
      frame.nblocks,
      [&](std::size_t b) {
        const std::size_t begin = b * frame.block_size;
        const std::size_t len =
            std::min<std::size_t>(frame.block_size, frame.raw_size - begin);
        lzss_decompress_block(frame, b,
                              std::span<std::byte>(out.data() + begin, len));
      },
      1);
  return out;
}

}  // namespace szi::lossless
