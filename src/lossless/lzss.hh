// Block-parallel LZSS byte codec.
//
// This is the repository's de-redundancy pass (§VI-B). The paper uses
// NVIDIA's proprietary Bitcomp-lossless purely as a *repeated-pattern-
// canceling* encoder applied after Huffman ("continuous 0x00 bytes");
// bitcomp.hh wraps this codec under that role. Blocks are compressed
// independently (the window never crosses a block), so compression and
// decompression parallelize exactly like a GPU implementation would.
//
// Stream layout:
//   u64 raw_size | u32 block_size | u32 n_blocks |
//   u64 block_offset[n_blocks] | per-block: u8 mode | payload
// mode 0 = stored raw (incompressible fallback), 1 = LZSS tokens.
// Token format: control bytes carry 8 flags (LSB first; 1 = match);
// literal = 1 byte; match = u16 little-endian backward distance (>= 1)
// followed by length bytes: len = kMinMatch + sum, where each 0xFF byte
// adds 255 and continues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "device/arena.hh"

namespace szi::lossless {

inline constexpr std::size_t kLzssBlock = 64 * 1024;
inline constexpr std::size_t kMinMatch = 4;

/// The longest single token: 1 control byte + 2 distance bytes + the length
/// byte chain for a full 64 KiB match. Per-block output slices are sized
/// `block_len + kLzssTokenSlack` so the encoder can bail out between tokens
/// (once output reaches block_len the block is stored raw regardless)
/// without ever writing past its slice.
inline constexpr std::size_t kLzssTokenSlack = 320;

/// Sentinel encoded-size of an incompressible block (stored raw, mode 0).
inline constexpr std::uint64_t kLzssStoreRaw = ~std::uint64_t{0};

/// Match-finder strategy. Both emit the same token format (the decoder does
/// not distinguish them); they differ only in which matches get chosen.
///  - Greedy: always commit the longest match at the current position.
///  - Lazy (default): one-step lazy evaluation — before committing a short
///    match, probe the next position and prefer a strictly longer match
///    there; plus an LZ4-style skip-ahead through long literal runs so
///    incompressible stretches cost O(n / step) match searches instead of
///    O(n). Ratio is within 1% of greedy on the Huffman-output corpus
///    (usually better); test_lossless asserts this.
enum class LzssMode { Greedy, Lazy };

[[nodiscard]] std::vector<std::byte> lzss_compress(
    std::span<const std::byte> data, std::size_t block_size = kLzssBlock,
    LzssMode mode = LzssMode::Lazy);

/// Workspace form: the stream is assembled in pooled memory (valid until the
/// Workspace resets); per-block token buffers and the hash-chain match
/// tables are pooled too instead of allocated per block. Byte-identical to
/// lzss_compress().
[[nodiscard]] std::span<const std::byte> lzss_compress(
    std::span<const std::byte> data, std::size_t block_size, dev::Workspace& ws,
    LzssMode mode = LzssMode::Lazy);

/// Throws std::runtime_error on malformed streams.
[[nodiscard]] std::vector<std::byte> lzss_decompress(
    std::span<const std::byte> data);

// ---- Block-granular API -------------------------------------------------
//
// The fused stage pipeline compresses/decompresses the stream in block
// groups as upstream stages produce (or downstream stages consume) bytes,
// instead of materializing the whole input first. These pieces expose
// exactly the units lzss_compress/lzss_decompress are built from, so the
// pipelined form is byte-identical by construction.

/// Encodes one independent block into `out` (capacity must be at least
/// block.size() + kLzssTokenSlack). Returns the encoded byte count, or
/// kLzssStoreRaw when the block is incompressible and must be stored raw
/// (the caller emits the original bytes with mode 0). The hash-chain
/// scratch is drawn from `arena` (thread-safe; callers on stream worker
/// threads pass the shared pool).
[[nodiscard]] std::uint64_t lzss_compress_block(std::span<const std::byte> block,
                                               std::span<std::byte> out,
                                               dev::Arena& arena,
                                               LzssMode mode = LzssMode::Lazy);

/// Exact byte size of the stream lzss_assemble() will produce for the given
/// per-block encoded sizes (kLzssStoreRaw entries count as raw length).
[[nodiscard]] std::size_t lzss_stream_size(
    std::size_t raw_size, std::size_t block_size,
    std::span<const std::uint64_t> enc_size);

/// Stitches header + offset table + per-block payloads into `dst` (size
/// must equal lzss_stream_size(...)). `slices` holds the encoded blocks at
/// `stride`-byte spacing; raw-fallback payloads are copied from `raw`.
void lzss_assemble(std::span<const std::byte> raw, std::size_t block_size,
                   std::span<const std::byte> slices, std::size_t stride,
                   std::span<const std::uint64_t> enc_size,
                   std::span<std::byte> dst);

/// A validated view of an LZSS stream: header parsed, the offset table
/// copied into `ws` memory (archive offsets are unaligned), every offset
/// bounds-checked. Blocks can then be decoded independently in any order.
struct LzssFrame {
  std::size_t raw_size = 0;
  std::size_t block_size = 0;
  std::size_t nblocks = 0;
  std::size_t stream_size = 0;             ///< total framed stream bytes
  std::span<const std::uint64_t> offsets;  ///< ws-owned, one per block
  /// The full input stream; empty for frames parsed from header bytes only
  /// (lzss_parse_frame_header), whose blocks decode via
  /// lzss_decompress_block_bytes instead.
  std::span<const std::byte> stream;
};

/// Parses and validates the stream header. Throws core::CorruptArchive on
/// malformed input; also guards raw_size against absurd allocations.
[[nodiscard]] LzssFrame lzss_parse_frame(std::span<const std::byte> data,
                                         dev::Workspace& ws);

/// lzss_parse_frame over only the stream's leading header bytes (through
/// the offset table) — for random-access readers that fetch block payloads
/// selectively. `stream_size` is the framed stream's total byte size;
/// offsets are validated against it exactly as lzss_parse_frame validates
/// them against the in-memory stream. The frame's `stream` view stays
/// empty.
[[nodiscard]] LzssFrame lzss_parse_frame_header(std::span<const std::byte> head,
                                                std::size_t stream_size,
                                                dev::Workspace& ws);

/// Decodes block `b` of a parsed frame into `raw_out`, which must be
/// exactly the block's raw extent (min(block_size, raw_size - b*block_size)
/// bytes). Throws core::CorruptArchive on corrupt tokens.
void lzss_decompress_block(const LzssFrame& frame, std::size_t b,
                           std::span<std::byte> raw_out);

/// Byte extent [begin, end) block `b` occupies within the framed stream
/// (mode byte included) — what a random-access reader must fetch to hand
/// lzss_decompress_block_bytes.
[[nodiscard]] std::pair<std::size_t, std::size_t> lzss_block_extent(
    const LzssFrame& frame, std::size_t b);

/// lzss_decompress_block for frames without an in-memory stream:
/// `block_bytes` is exactly the stream slice lzss_block_extent(frame, b)
/// names. Identical validation and output.
void lzss_decompress_block_bytes(const LzssFrame& frame, std::size_t b,
                                 std::span<const std::byte> block_bytes,
                                 std::span<std::byte> raw_out);

}  // namespace szi::lossless
