// Block-parallel LZSS byte codec.
//
// This is the repository's de-redundancy pass (§VI-B). The paper uses
// NVIDIA's proprietary Bitcomp-lossless purely as a *repeated-pattern-
// canceling* encoder applied after Huffman ("continuous 0x00 bytes");
// bitcomp.hh wraps this codec under that role. Blocks are compressed
// independently (the window never crosses a block), so compression and
// decompression parallelize exactly like a GPU implementation would.
//
// Stream layout:
//   u64 raw_size | u32 block_size | u32 n_blocks |
//   u64 block_offset[n_blocks] | per-block: u8 mode | payload
// mode 0 = stored raw (incompressible fallback), 1 = LZSS tokens.
// Token format: control bytes carry 8 flags (LSB first; 1 = match);
// literal = 1 byte; match = u16 little-endian backward distance (>= 1)
// followed by length bytes: len = kMinMatch + sum, where each 0xFF byte
// adds 255 and continues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"

namespace szi::lossless {

inline constexpr std::size_t kLzssBlock = 64 * 1024;
inline constexpr std::size_t kMinMatch = 4;

/// Match-finder strategy. Both emit the same token format (the decoder does
/// not distinguish them); they differ only in which matches get chosen.
///  - Greedy: always commit the longest match at the current position.
///  - Lazy (default): one-step lazy evaluation — before committing a short
///    match, probe the next position and prefer a strictly longer match
///    there; plus an LZ4-style skip-ahead through long literal runs so
///    incompressible stretches cost O(n / step) match searches instead of
///    O(n). Ratio is within 1% of greedy on the Huffman-output corpus
///    (usually better); test_lossless asserts this.
enum class LzssMode { Greedy, Lazy };

[[nodiscard]] std::vector<std::byte> lzss_compress(
    std::span<const std::byte> data, std::size_t block_size = kLzssBlock,
    LzssMode mode = LzssMode::Lazy);

/// Workspace form: the stream is assembled in pooled memory (valid until the
/// Workspace resets); per-block token buffers and the hash-chain match
/// tables are pooled too instead of allocated per block. Byte-identical to
/// lzss_compress().
[[nodiscard]] std::span<const std::byte> lzss_compress(
    std::span<const std::byte> data, std::size_t block_size, dev::Workspace& ws,
    LzssMode mode = LzssMode::Lazy);

/// Throws std::runtime_error on malformed streams.
[[nodiscard]] std::vector<std::byte> lzss_decompress(
    std::span<const std::byte> data);

}  // namespace szi::lossless
