// Block-parallel LZSS byte codec.
//
// This is the repository's de-redundancy pass (§VI-B). The paper uses
// NVIDIA's proprietary Bitcomp-lossless purely as a *repeated-pattern-
// canceling* encoder applied after Huffman ("continuous 0x00 bytes");
// bitcomp.hh wraps this codec under that role. Blocks are compressed
// independently (the window never crosses a block), so compression and
// decompression parallelize exactly like a GPU implementation would.
//
// Stream layout:
//   u64 raw_size | u32 block_size | u32 n_blocks |
//   u64 block_offset[n_blocks] | per-block: u8 mode | payload
// mode 0 = stored raw (incompressible fallback), 1 = LZSS tokens.
// Token format: control bytes carry 8 flags (LSB first; 1 = match);
// literal = 1 byte; match = u16 little-endian backward distance (>= 1)
// followed by length bytes: len = kMinMatch + sum, where each 0xFF byte
// adds 255 and continues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "device/arena.hh"

namespace szi::lossless {

inline constexpr std::size_t kLzssBlock = 64 * 1024;
inline constexpr std::size_t kMinMatch = 4;

[[nodiscard]] std::vector<std::byte> lzss_compress(
    std::span<const std::byte> data, std::size_t block_size = kLzssBlock);

/// Workspace form: the stream is assembled in pooled memory (valid until the
/// Workspace resets); per-block token buffers and the hash-chain match
/// tables are pooled too instead of allocated per block. Byte-identical to
/// lzss_compress().
[[nodiscard]] std::span<const std::byte> lzss_compress(
    std::span<const std::byte> data, std::size_t block_size,
    dev::Workspace& ws);

/// Throws std::runtime_error on malformed streams.
[[nodiscard]] std::vector<std::byte> lzss_decompress(
    std::span<const std::byte> data);

}  // namespace szi::lossless
